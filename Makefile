GO ?= go

.PHONY: check build vet test race racecheck bench golden

## check: the full gate — build, vet, race-enabled tests, and the
## single-owner assertion build.
check: build vet race racecheck

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## racecheck: build with the storage single-owner assertions compiled in and
## run the ownership tests against them.
racecheck:
	$(GO) build -tags racecheck ./...
	$(GO) test -tags racecheck ./internal/storage/

## bench: the hot-path comparison quoted in PR descriptions
## (nil-hook must stay allocation-free and within noise of untraced).
bench:
	$(GO) test ./internal/obs -bench BenchmarkInstrumentedGet -benchtime=2s -run '^$$'

## golden: regenerate exporter golden files after an intended format change.
golden:
	$(GO) test ./internal/obs -run Golden -update
