GO ?= go

.PHONY: check build vet test race bench golden

## check: the full gate — build, vet, and race-enabled tests.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: the hot-path comparison quoted in PR descriptions
## (nil-hook must stay allocation-free and within noise of untraced).
bench:
	$(GO) test ./internal/obs -bench BenchmarkInstrumentedGet -benchtime=2s -run '^$$'

## golden: regenerate exporter golden files after an intended format change.
golden:
	$(GO) test ./internal/obs -run Golden -update
