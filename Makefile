GO ?= go

.PHONY: check build vet test race racecheck bench golden chaos-smoke serve-smoke serve-live-smoke mvcc-smoke mvcc-race wal-smoke qdsweep-smoke drift-smoke benchjson

## check: the full gate — build, vet, race-enabled tests, and the
## single-owner assertion build.
check: build vet race racecheck

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## race: the full suite under the race detector — this is what holds the
## serving layer (internal/serve) and the bench runner to their concurrency
## contracts on every push.
race:
	$(GO) test -race ./...

## racecheck: build with the storage single-owner assertions compiled in and
## run the ownership tests against them.
racecheck:
	$(GO) build -tags racecheck ./...
	$(GO) test -tags racecheck ./internal/storage/

## bench: the hot-path comparison quoted in PR descriptions
## (nil-hook must stay allocation-free and within noise of untraced).
bench:
	$(GO) test ./internal/obs -bench BenchmarkInstrumentedGet -benchtime=2s -run '^$$'

## golden: regenerate golden files (exporters, CLI usage) after an
## intended format change.
golden:
	$(GO) test ./internal/obs -run Golden -update
	$(GO) test ./cmd/rumbench -run Golden -update

## chaos-smoke: a tiny end-to-end pass over the fault paths — the chaos
## experiment with a non-trivial plan at two pool widths, diffed to hold
## the determinism contract on every push.
chaos-smoke:
	$(GO) run ./cmd/rumbench -exp chaos -quick -n 2048 -ops 1000 -parallel 1 \
		-faults seed=7,p_read=0.02,p_write=0.02,p_torn=0.5,crash=120 >/tmp/chaos-seq.txt
	$(GO) run ./cmd/rumbench -exp chaos -quick -n 2048 -ops 1000 -parallel 8 \
		-faults seed=7,p_read=0.02,p_write=0.02,p_torn=0.5,crash=120 >/tmp/chaos-par.txt
	diff /tmp/chaos-seq.txt /tmp/chaos-par.txt

## serve-smoke: the serving-layer determinism gate, mirroring chaos-smoke —
## the serve experiment's stdout must be byte-identical no matter how the
## run is sharded, batched, or pooled; only the stderr timing report moves.
serve-smoke:
	$(GO) run ./cmd/rumbench -exp serve -quick -n 2048 -ops 1000 \
		-shards 1 -batch 32 -parallel 1 >/tmp/serve-seq.txt
	$(GO) run ./cmd/rumbench -exp serve -quick -n 2048 -ops 1000 \
		-shards 8 -batch 64 -parallel 8 >/tmp/serve-par.txt
	diff /tmp/serve-seq.txt /tmp/serve-par.txt

## mvcc-smoke: the snapshot-read determinism gate — the mvcc experiment's
## stdout (clean replay RUM point, retained bytes, outcome verification)
## must be byte-identical no matter how the live runs are sharded, batched,
## or pooled; throughput and speedup live on stderr only.
mvcc-smoke:
	$(GO) run ./cmd/rumbench -exp mvcc -quick -n 2048 -ops 1000 \
		-shards 1 -batch 32 -parallel 1 >/tmp/mvcc-seq.txt
	$(GO) run ./cmd/rumbench -exp mvcc -quick -n 2048 -ops 1000 \
		-shards 8 -batch 64 -parallel 8 >/tmp/mvcc-par.txt
	diff /tmp/mvcc-seq.txt /tmp/mvcc-par.txt

## wal-smoke: the durability determinism gate — the walsweep experiment
## (cost-unit throughput, per-op cost quantiles, log ledger, crash trials)
## must render byte-identical stdout at any pool width.
wal-smoke:
	$(GO) run ./cmd/rumbench -exp walsweep -quick -n 2048 -ops 1000 \
		-parallel 1 >/tmp/wal-seq.txt
	$(GO) run ./cmd/rumbench -exp walsweep -quick -n 2048 -ops 1000 \
		-parallel 8 >/tmp/wal-par.txt
	diff /tmp/wal-seq.txt /tmp/wal-par.txt

## qdsweep-smoke: the queue-depth determinism gate — the qdsweep experiment
## (batched I/O on the multi-queue SSD: ops/kcost, batch ledger, achieved
## depth, re-ranking summary) must render byte-identical stdout at any pool
## width.
qdsweep-smoke:
	$(GO) run ./cmd/rumbench -exp qdsweep -quick -n 2048 -ops 1000 \
		-parallel 1 >/tmp/qd-seq.txt
	$(GO) run ./cmd/rumbench -exp qdsweep -quick -n 2048 -ops 1000 \
		-parallel 8 >/tmp/qd-par.txt
	diff /tmp/qd-seq.txt /tmp/qd-par.txt

## drift-smoke: the workload-observability determinism gate — the drift
## experiment (12 fingerprint windows, drift latches, advisor verdicts)
## must render byte-identical stdout at any pool width.
drift-smoke:
	$(GO) run ./cmd/rumbench -exp drift -parallel 1 >/tmp/drift-seq.txt
	$(GO) run ./cmd/rumbench -exp drift -parallel 8 >/tmp/drift-par.txt
	diff /tmp/drift-seq.txt /tmp/drift-par.txt

## benchjson: regenerate BENCH_10.json, the machine-readable per-cell perf
## summary (ops per 1000 medium-weighted cost units for every walsweep and
## qdsweep cell). Deterministic — no wall-clock — so CI diffs it against
## the committed artifact and the bench trajectory accumulates across PRs.
benchjson:
	$(GO) run ./cmd/rumbench -exp walsweep,qdsweep -quick -n 2048 -ops 1000 \
		-benchjson BENCH_10.json >/dev/null

## mvcc-race: the single-writer/many-reader packages under the race
## detector alone — quicker signal than the full `race` target when
## iterating on the snapshot path.
mvcc-race:
	$(GO) test -race ./internal/serve ./internal/btree ./internal/lsm

## serve-live-smoke: the live telemetry plane end to end — start rumserve
## on an ephemeral port, scrape /healthz, /metrics and /debug/rum, assert
## the rum_* series are present, and require a clean SIGINT shutdown with
## a final report.
serve-live-smoke:
	$(GO) build -o /tmp/rumserve-smoke ./cmd/rumserve
	./scripts/serve-live-smoke.sh /tmp/rumserve-smoke
