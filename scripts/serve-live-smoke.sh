#!/usr/bin/env bash
# serve-live-smoke: end-to-end check of the live telemetry plane.
#
# Starts rumserve on an ephemeral port, waits for /healthz, scrapes
# /metrics and /debug/rum, asserts the load-bearing series are present,
# then sends SIGINT and requires a clean exit with a final report on
# stdout. Run via `make serve-live-smoke`.
set -euo pipefail

BIN="${1:?usage: serve-live-smoke.sh <rumserve binary>}"
TMP="$(mktemp -d)"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

"$BIN" -method btree -shards 2 -clients 2 -batch 16 -n 2048 \
  -rate 20000 -scrape 100ms -window 2s -addr 127.0.0.1:0 \
  -workload -workload-window 256 -dist zipf:1.1 \
  >"$TMP/stdout" 2>"$TMP/stderr" &
PID=$!

# The daemon prints its resolved address to stderr once listening.
ADDR=""
for _ in $(seq 1 100); do
  ADDR="$(sed -n 's/^rumserve: listening on //p' "$TMP/stderr" | head -1)"
  [ -n "$ADDR" ] && break
  kill -0 "$PID" 2>/dev/null || { echo "rumserve died at startup:"; cat "$TMP/stderr"; exit 1; }
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "rumserve never reported its address"; cat "$TMP/stderr"; exit 1; }

for _ in $(seq 1 50); do
  curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
[ "$(curl -fsS "http://$ADDR/healthz")" = "ok" ] || { echo "/healthz not ok"; exit 1; }

# Let a few scrape ticks land so the window gauges are live.
sleep 1
curl -fsS "http://$ADDR/metrics" >"$TMP/metrics"
curl -fsS "http://$ADDR/debug/rum" >"$TMP/debug"
curl -fsS "http://$ADDR/debug/slow" >"$TMP/slow"
curl -fsS "http://$ADDR/debug/workload" >"$TMP/workload"

for series in rum_ro rum_uo rum_mo rum_ro_window rum_uo_window rum_mo_window \
  rum_requests_total rum_window_ops_per_sec rum_shard_balance \
  rum_request_latency_ns_bucket rum_request_latency_ns_sum \
  rum_request_latency_ns_count rum_fault_events_total \
  rum_outcome_mismatches_total rum_shard_ops_total \
  rum_queue_wait_seconds_bucket rum_queue_wait_seconds_sum \
  rum_queue_wait_seconds_count rum_service_seconds_bucket \
  rum_service_seconds_sum rum_service_seconds_count \
  rum_batch_size_bucket rum_mailbox_depth \
  rum_window_queue_p99_seconds rum_window_service_p99_seconds \
  rum_uptime_seconds rum_snapshot_age_seconds rum_goroutines; do
  grep -q "^$series" "$TMP/metrics" || {
    echo "missing series $series in /metrics:"; cat "$TMP/metrics"; exit 1; }
done
grep -q 'le="+Inf"' "$TMP/metrics" || { echo "latency histogram lacks +Inf bucket"; exit 1; }
# The phase histograms must have seen real traffic, not just exist.
awk '/^rum_service_seconds_count/ { if ($2+0 > 0) found=1 } END { exit !found }' "$TMP/metrics" || {
  echo "rum_service_seconds_count is zero under load:"; grep rum_service "$TMP/metrics"; exit 1; }
grep -q '"shards": \[' "$TMP/debug" || { echo "/debug/rum has no shards:"; cat "$TMP/debug"; exit 1; }
grep -q '"window"' "$TMP/debug" || { echo "/debug/rum has no rolling window:"; cat "$TMP/debug"; exit 1; }
# The flight recorder holds traces under load, and each trace decomposes.
grep -q '"total_ns"' "$TMP/slow" || { echo "/debug/slow has no traces:"; cat "$TMP/slow"; exit 1; }
grep -q '"queue_ns"' "$TMP/slow" || { echo "/debug/slow traces lack decomposition:"; cat "$TMP/slow"; exit 1; }
# The workload plane is on: its series are live and the fingerprint windows
# have rotated under load.
for series in rum_workload_windows_total rum_workload_ops_total \
  rum_workload_mix rum_workload_hot_share rum_workload_zipf_slope \
  rum_workload_distinct_keys rum_workload_drift_score \
  rum_workload_advice_delta rum_workload_advice; do
  grep -q "^$series" "$TMP/metrics" || {
    echo "missing series $series in /metrics:"; cat "$TMP/metrics"; exit 1; }
done
awk '/^rum_workload_windows_total/ { if ($2+0 > 0) found=1 } END { exit !found }' "$TMP/metrics" || {
  echo "no fingerprint window completed under load:"; grep rum_workload "$TMP/metrics"; exit 1; }
grep -q '"enabled": true' "$TMP/workload" || { echo "/debug/workload not enabled:"; cat "$TMP/workload"; exit 1; }
grep -q '"snapshot"' "$TMP/workload" || { echo "/debug/workload has no snapshot:"; cat "$TMP/workload"; exit 1; }
grep -q '"ranked"' "$TMP/workload" || { echo "/debug/workload has no advisor ranking:"; cat "$TMP/workload"; exit 1; }

kill -INT "$PID"
for _ in $(seq 1 100); do
  kill -0 "$PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$PID" 2>/dev/null; then echo "rumserve ignored SIGINT"; exit 1; fi
wait "$PID" || { echo "rumserve exited non-zero:"; cat "$TMP/stderr"; exit 1; }

grep -q "btree" "$TMP/stdout" || { echo "no final report on stdout:"; cat "$TMP/stdout"; exit 1; }
grep -q "^workload:" "$TMP/stdout" || { echo "final report lacks workload lines:"; cat "$TMP/stdout"; exit 1; }
grep -q "^advisor:" "$TMP/stdout" || { echo "final report lacks the advisor verdict:"; cat "$TMP/stdout"; exit 1; }
echo "serve-live-smoke: ok ($ADDR)"
