package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// suiteArtifacts runs the whole program in-process at the given pool width
// and returns stdout plus the three exported observability artifacts.
func suiteArtifacts(t *testing.T, parallel string) map[string][]byte {
	t.Helper()
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	ts := filepath.Join(dir, "ts.csv")
	metrics := filepath.Join(dir, "metrics.txt")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-exp", "all", "-quick", "-n", "2048", "-ops", "1000", "-seed", "42",
		"-parallel", parallel,
		"-faults", "seed=7,p_read=0.02,p_write=0.02,p_torn=0.5,crash=120",
		"-trace", trace, "-timeseries", ts, "-metrics", metrics,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run(-parallel %s) exited %d; stderr:\n%s", parallel, code, stderr.String())
	}
	out := map[string][]byte{"stdout": stdout.Bytes()}
	for name, path := range map[string]string{"trace": trace, "timeseries": ts, "metrics": metrics} {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("-parallel %s wrote no %s: %v", parallel, name, err)
		}
		if len(b) == 0 {
			t.Fatalf("-parallel %s: empty %s", parallel, name)
		}
		out[name] = b
	}
	return out
}

// TestParallelDeterminism is the tentpole guarantee: the full suite at
// -parallel 1 and -parallel 8 must produce byte-identical stdout, trace
// JSONL, time-series CSV, and metrics text for a fixed seed. Only wall-clock
// time may differ between pool widths. The suite includes the chaos
// experiment under a non-trivial -faults plan, so fault injection, retries,
// and the crash trial are all inside the determinism contract.
func TestParallelDeterminism(t *testing.T) {
	seq := suiteArtifacts(t, "1")
	par := suiteArtifacts(t, "8")
	for _, name := range []string{"stdout", "trace", "timeseries", "metrics"} {
		a, b := seq[name], par[name]
		if bytes.Equal(a, b) {
			continue
		}
		// Locate the first divergent line for a readable failure.
		la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
		for i := 0; i < len(la) && i < len(lb); i++ {
			if !bytes.Equal(la[i], lb[i]) {
				t.Fatalf("%s differs between -parallel 1 and -parallel 8 at line %d:\n  seq: %s\n  par: %s",
					name, i+1, la[i], lb[i])
			}
		}
		t.Fatalf("%s differs in length: %d vs %d bytes", name, len(a), len(b))
	}
}

// TestServeShardDeterminism extends the determinism contract to the serving
// layer: the serve experiment's stdout must be byte-identical no matter how
// the serving run is sharded, batched, or pooled — only the stderr timing
// report may differ.
func TestServeShardDeterminism(t *testing.T) {
	runServe := func(shards, batch, parallel string) []byte {
		t.Helper()
		var stdout, stderr bytes.Buffer
		code := run([]string{
			"-exp", "serve", "-quick", "-n", "2048", "-ops", "1000", "-seed", "42",
			"-shards", shards, "-batch", batch, "-parallel", parallel,
		}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("run(-shards %s) exited %d; stderr:\n%s", shards, code, stderr.String())
		}
		return stdout.Bytes()
	}
	base := runServe("1", "32", "1")
	if got := runServe("8", "64", "1"); !bytes.Equal(base, got) {
		t.Errorf("serve stdout differs between -shards 1 and -shards 8:\n--- shards=1\n%s--- shards=8\n%s", base, got)
	}
	if got := runServe("3", "16", "8"); !bytes.Equal(base, got) {
		t.Errorf("serve stdout differs under -parallel 8:\n--- base\n%s--- parallel\n%s", base, got)
	}
}

// TestUsageGolden pins the -h output: the flag set is the CLI's public
// surface, so additions and wording changes must be deliberate. Regenerate
// with `go test ./cmd/rumbench -run Golden -update` (part of `make golden`).
func TestUsageGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-h"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-h) = %d, want 0", code)
	}
	if stdout.Len() != 0 {
		t.Fatalf("run(-h) wrote to stdout: %q", stdout.String())
	}
	path := filepath.Join("testdata", "usage.golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, stderr.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/rumbench -run Golden -update` to create)", err)
	}
	if !bytes.Equal(stderr.Bytes(), want) {
		t.Fatalf("usage drifted from golden file (rerun with -update if intended)\ngot:\n%s\nwant:\n%s", stderr.Bytes(), want)
	}
}

// TestRunUsageErrors checks argument validation exits 2 without running.
func TestRunUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-exp", "nonsense"},
		{"-exp", ""},
		{"stray"},
		{"-badflag"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
		if stdout.Len() != 0 {
			t.Errorf("run(%v) wrote to stdout: %q", args, stdout.String())
		}
	}
}
