// Command rumbench regenerates the paper's experimental artifacts from the
// implemented structures: the Section-2 propositions, Table 1, Figures 1–3,
// the Section-3 conjecture grid, and the Section-4/5 adaptivity runs.
//
// Usage:
//
//	rumbench -exp all
//	rumbench -exp table1,fig1 -n 65536 -ops 20000
//	rumbench -exp fig3 -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exps  = flag.String("exp", "all", "comma-separated experiments: props,table1,fig1,fig2,fig3,conjecture,adaptive,extensions,all")
		n     = flag.Int("n", 0, "dataset size in records (0 = per-experiment default)")
		ops   = flag.Int("ops", 0, "measured operations per run (0 = default)")
		seed  = flag.Int64("seed", 1, "deterministic seed")
		m     = flag.Int("m", 256, "range query result size for table1")
		quick = flag.Bool("quick", false, "small sizes for a fast pass")
	)
	flag.Parse()

	cfg := bench.Config{Seed: *seed, N: *n, Ops: *ops}
	if *quick {
		if cfg.N == 0 {
			cfg.N = 8192
		}
		if cfg.Ops == 0 {
			cfg.Ops = 4000
		}
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	run := func(name string, fn func() string) {
		if !all && !want[name] {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		start := time.Now()
		fmt.Println(fn())
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("props", func() string { return bench.RunProps(cfg).Render() })
	run("table1", func() string {
		ns := []int{1 << 14, 1 << 16, 1 << 18}
		if *quick {
			ns = []int{1 << 12, 1 << 14}
		}
		return bench.RunTable1(cfg, ns, *m).Render()
	})
	run("fig1", func() string { return bench.RunFig1(cfg).Render() })
	run("fig2", func() string { return bench.RunFig2(cfg).Render() })
	run("fig3", func() string {
		c := cfg
		if c.N == 0 {
			c.N = 16384
		}
		if c.Ops == 0 {
			c.Ops = 8000
		}
		return bench.RunFig3(c).Render()
	})
	run("conjecture", func() string {
		c := cfg
		if c.N == 0 {
			c.N = 16384
		}
		if c.Ops == 0 {
			c.Ops = 8000
		}
		return bench.RunConjecture(c).Render()
	})
	run("adaptive", func() string { return bench.RunAdaptive(cfg).Render() })
	run("extensions", func() string { return bench.RunExtensions(cfg).Render() })

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
}
