// Command rumbench regenerates the paper's experimental artifacts from the
// implemented structures: the Section-2 propositions, Table 1, Figures 1–3,
// the Section-3 conjecture grid, and the Section-4/5 adaptivity runs.
//
// Usage:
//
//	rumbench -exp all
//	rumbench -exp table1,fig1 -n 65536 -ops 20000
//	rumbench -exp fig3 -quick
//	rumbench -exp all -parallel 8
//	rumbench -exp table1 -trace out.jsonl -timeseries ts.csv -metrics metrics.txt
//	rumbench -exp chaos -faults seed=7,p_read=0.02,p_write=0.02,p_torn=0.5
//	rumbench -exp serve -shards 8 -clients 16 -batch 128
//	rumbench -exp mvcc -staleness 1,256 -mix read50,read99
//
// The serve experiment puts the access methods behind the sharded serving
// layer (internal/serve): conflict-free concurrent client streams, per-shard
// single-owner structures, merged RUM accounting. Its stdout (clean RUM
// point, outcome verification) is byte-identical at any -shards/-clients/
// -batch/-parallel setting; throughput and latency print to stderr.
//
// The mvcc experiment turns on the serving layer's snapshot read path
// (single-writer/many-reader shards, lock-free concurrent readers) and
// sweeps snapshot lifetime (-staleness, writes between publishes) against
// read/write mix (-mix, preset names like read99). Its stdout carries the
// deterministic replay's RUM point and retained-version footprint; read
// throughput, p99, and speedup over the single-owner baseline go to
// stderr.
//
// The chaos experiment re-runs the page-backed Table-1 methods on a degraded
// device (internal/faults): transient/permanent read and write faults, torn
// writes, and a seeded crash trial that holds each method to its declared
// durability contract. The -faults flag sets the plan; empty selects a
// default degradation profile.
//
// The drift experiment drives one serving instance through a diurnal,
// phase-shifting workload (write-heavy ingest → zipf read serving → scan
// storm) with the online workload fingerprinter attached, and maps every
// fingerprint window through the report-only RUM advisor — drift events
// latch at the phase boundaries and the advised configuration changes with
// the traffic. Its stdout is byte-deterministic at any -parallel width.
//
// The -benchjson flag writes a machine-readable perf summary: every device-
// metered cell's deterministic ops-per-kilocost figure, for tracking the
// bench trajectory across revisions.
//
// The -trace/-timeseries/-metrics flags attach an observability layer
// (internal/obs) to every traced experiment (table1, fig1, fig3,
// conjecture): per-operation JSONL spans, a CSV RUM time series, and a
// Prometheus-style metrics exposition.
//
// The -parallel flag sizes the run-cell worker pool (0 = GOMAXPROCS,
// 1 = fully sequential). Every run cell owns an isolated storage stack and
// results are merged in enumeration order, so stdout and every exported
// artifact are byte-identical regardless of worker count; only wall-clock
// time changes. Timing lines go to stderr for the same reason.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/faults"
	"repro/internal/obs"
)

// knownExps lists every experiment name, in run order.
var knownExps = []string{"props", "table1", "fig1", "fig2", "fig3", "conjecture", "adaptive", "extensions", "chaos", "serve", "mvcc", "walsweep", "qdsweep", "drift"}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program behind main: parse args, execute the selected
// experiments, write artifacts. stdout carries only deterministic content
// (experiment output, export summaries); timing, stacks, and pool chatter go
// to stderr. Returns the process exit code: 0 clean, 1 if any experiment
// failed or an export could not be written, 2 on usage errors.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rumbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exps       = fs.String("exp", "all", "comma-separated experiments: "+strings.Join(knownExps, ",")+",all")
		n          = fs.Int("n", 0, "dataset size in records (0 = per-experiment default)")
		ops        = fs.Int("ops", 0, "measured operations per run (0 = default)")
		seed       = fs.Int64("seed", 1, "deterministic seed")
		m          = fs.Int("m", 256, "range query result size for table1")
		quick      = fs.Bool("quick", false, "small sizes for a fast pass")
		parallel   = fs.Int("parallel", 0, "run-cell worker pool size (0 = GOMAXPROCS, 1 = sequential)")
		trace      = fs.String("trace", "", "write per-operation JSONL spans to this file")
		timeseries = fs.String("timeseries", "", "write the RUM time-series CSV to this file")
		metrics    = fs.String("metrics", "", "write a Prometheus-style metrics exposition to this file")
		sample     = fs.Int("sample", 256, "operations between time-series samples")
		faultSpec  = fs.String("faults", "", "fault plan for the chaos experiment, e.g. seed=1,p_read=0.01,p_write=0.01,p_torn=0.5,crash=200 (empty = default degradation profile)")
		shards     = fs.Int("shards", 4, "serve experiment: keyspace shard count")
		clients    = fs.Int("clients", 8, "serve experiment: concurrent client goroutines")
		batch      = fs.Int("batch", 64, "serve experiment: requests per client batch")
		mixSpec    = fs.String("mix", "", "mvcc experiment: comma-separated mix presets (empty = read50,read99)")
		staleSpec  = fs.String("staleness", "", "mvcc experiment: comma-separated publish cadences in writes between snapshot publishes (empty = 1,256)")
		benchjson  = fs.String("benchjson", "", "write a machine-readable per-cell perf summary (deterministic ops/kcost JSON) to this file")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0 // -h/-help: usage was requested, not a mistake
		}
		return 2
	}
	plan, err := faults.ParsePlan(*faultSpec)
	if err != nil {
		fmt.Fprintf(stderr, "rumbench: -faults: %v\n", err)
		return 2
	}
	mvccMixes, err := splitMixes(*mixSpec)
	if err != nil {
		fmt.Fprintf(stderr, "rumbench: -mix: %v\n", err)
		return 2
	}
	mvccStaleness, err := splitStaleness(*staleSpec)
	if err != nil {
		fmt.Fprintf(stderr, "rumbench: -staleness: %v\n", err)
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "rumbench: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	runner := bench.NewRunner(*parallel)
	cfg := bench.Config{Seed: *seed, N: *n, Ops: *ops, Runner: runner}
	if *quick {
		if cfg.N == 0 {
			cfg.N = 8192
		}
		if cfg.Ops == 0 {
			cfg.Ops = 4000
		}
	}

	valid := map[string]bool{"all": true}
	for _, e := range knownExps {
		valid[e] = true
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		e = strings.TrimSpace(e)
		if e == "" {
			continue
		}
		if !valid[e] {
			fmt.Fprintf(stderr, "rumbench: unknown experiment %q; known experiments: %s, all\n",
				e, strings.Join(knownExps, ", "))
			return 2
		}
		want[e] = true
	}
	if len(want) == 0 {
		fmt.Fprintf(stderr, "rumbench: no experiments selected; known experiments: %s, all\n",
			strings.Join(knownExps, ", "))
		return 2
	}
	all := want["all"]

	var observer *obs.Observer
	if *trace != "" || *timeseries != "" || *metrics != "" {
		observer = obs.New(obs.Config{SampleEvery: *sample})
		cfg.Obs = observer
		cfg.Storage.Hook = observer
	}
	var perf *bench.Perf
	if *benchjson != "" {
		perf = &bench.Perf{}
		cfg.Perf = perf
	}

	// Experiments return (stdout, stderr) text: stdout is the deterministic
	// artifact, stderr carries anything wall-clock (the serve experiment's
	// throughput/latency report). Both print in enumeration order.
	type expJob struct {
		name string
		fn   func(bench.Config) (string, string)
	}
	quiet := func(render func(bench.Config) string) func(bench.Config) (string, string) {
		return func(c bench.Config) (string, string) { return render(c), "" }
	}
	byName := map[string]func(bench.Config) (string, string){
		"props": quiet(func(c bench.Config) string { return bench.RunProps(c).Render() }),
		"table1": quiet(func(c bench.Config) string {
			ns := []int{1 << 14, 1 << 16, 1 << 18}
			if *quick {
				ns = []int{1 << 12, 1 << 14}
			}
			return bench.RunTable1(c, ns, *m).Render()
		}),
		"fig1": quiet(func(c bench.Config) string { return bench.RunFig1(c).Render() }),
		"fig2": quiet(func(c bench.Config) string { return bench.RunFig2(c).Render() }),
		"fig3": quiet(func(c bench.Config) string {
			if c.N == 0 {
				c.N = 16384
			}
			if c.Ops == 0 {
				c.Ops = 8000
			}
			return bench.RunFig3(c).Render()
		}),
		"conjecture": quiet(func(c bench.Config) string {
			if c.N == 0 {
				c.N = 16384
			}
			if c.Ops == 0 {
				c.Ops = 8000
			}
			return bench.RunConjecture(c).Render()
		}),
		"adaptive":   quiet(func(c bench.Config) string { return bench.RunAdaptive(c).Render() }),
		"extensions": quiet(func(c bench.Config) string { return bench.RunExtensions(c).Render() }),
		"chaos": quiet(func(c bench.Config) string {
			if c.N == 0 {
				c.N = 16384
			}
			if c.Ops == 0 {
				c.Ops = 8000
			}
			return bench.RunChaos(c, plan).Render()
		}),
		"walsweep": quiet(func(c bench.Config) string {
			if c.N == 0 {
				c.N = 16384
			}
			if c.Ops == 0 {
				c.Ops = 8000
			}
			return bench.RunWALSweep(c).Render()
		}),
		"qdsweep": quiet(func(c bench.Config) string {
			if c.N == 0 {
				c.N = 16384
			}
			if c.Ops == 0 {
				c.Ops = 8000
			}
			return bench.RunQDSweep(c).Render()
		}),
		"drift": quiet(func(c bench.Config) string {
			if c.N == 0 {
				c.N = 16384
			}
			if c.Ops == 0 {
				c.Ops = 12000
			}
			return bench.RunDrift(c).Render()
		}),
		"serve": func(c bench.Config) (string, string) {
			if c.N == 0 {
				c.N = 16384
			}
			if c.Ops == 0 {
				c.Ops = 8000
			}
			r := bench.RunServe(c, bench.ServeConfig{Shards: *shards, Clients: *clients, Batch: *batch})
			return r.Render(), r.RenderTiming()
		},
		"mvcc": func(c bench.Config) (string, string) {
			if c.N == 0 {
				c.N = 16384
			}
			if c.Ops == 0 {
				c.Ops = 8000
			}
			r := bench.RunMVCC(c, bench.MVCCConfig{
				Shards: *shards, Clients: *clients, Batch: *batch,
				Mixes: mvccMixes, Stalenesses: mvccStaleness,
			})
			return r.Render(), r.RenderTiming()
		},
	}
	var jobs []expJob
	for _, name := range knownExps {
		if all || want[name] {
			jobs = append(jobs, expJob{name: name, fn: byName[name]})
		}
	}

	// Each experiment runs against a child observer and buffers its rendered
	// output; the main goroutine prints results and absorbs children strictly
	// in enumeration order, so worker count never shows in the artifacts. A
	// panic (including the *bench.SuiteError a partially failed experiment
	// raises after finishing its surviving cells) is reported deterministically
	// on stdout, the stack on stderr, and the remaining experiments still run.
	type expResult struct {
		out     string
		errout  string // non-deterministic report, printed to stderr in order
		errText string
		stack   []byte
		dur     time.Duration
		child   *obs.Observer
	}
	results := make([]expResult, len(jobs))
	runExp := func(i int) {
		ecfg := cfg
		if observer != nil {
			child := observer.Child()
			results[i].child = child
			ecfg.Obs = child
			ecfg.Storage.Hook = child
		}
		start := time.Now()
		defer func() {
			results[i].dur = time.Since(start)
			if v := recover(); v != nil {
				results[i].errText = fmt.Sprintf("FAILED: %v", v)
				results[i].stack = debug.Stack()
			}
		}()
		results[i].out, results[i].errout = jobs[i].fn(ecfg)
	}

	failures := 0
	report := func(i int) {
		r := &results[i]
		fmt.Fprintf(stdout, "==== %s ====\n", jobs[i].name)
		if r.errText != "" {
			failures++
			fmt.Fprintln(stdout, r.errText)
			fmt.Fprintf(stderr, "rumbench: %s failed:\n%s", jobs[i].name, r.stack)
		} else {
			fmt.Fprintln(stdout, r.out)
		}
		fmt.Fprintln(stdout)
		if r.errout != "" {
			fmt.Fprint(stderr, r.errout)
		}
		fmt.Fprintf(stderr, "(%s in %v)\n", jobs[i].name, r.dur.Round(time.Millisecond))
		if r.child != nil {
			r.child.Finish()
			observer.Absorb(r.child)
		}
	}

	if runner.Workers() > 1 && len(jobs) > 1 {
		// Experiments overlap on plain goroutines — cheap coordinators whose
		// run cells share the runner's bounded pool (experiment goroutines
		// must not hold pool slots themselves, or nested scheduling could
		// starve). Reporting still waits for jobs in enumeration order.
		done := make([]chan struct{}, len(jobs))
		var wg sync.WaitGroup
		for i := range jobs {
			done[i] = make(chan struct{})
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer close(done[i])
				runExp(i)
			}(i)
		}
		for i := range jobs {
			<-done[i]
			report(i)
		}
		wg.Wait()
	} else {
		for i := range jobs {
			runExp(i)
			report(i)
		}
	}
	stats := runner.Stats()
	fmt.Fprintf(stderr, "(pool: %d workers, %d cells, %d failed)\n", runner.Workers(), stats.Cells, stats.Failed)

	if observer != nil {
		exportErr := false
		export := func(path, what string, write func(io.Writer) error) {
			if path == "" {
				return
			}
			f, err := os.Create(path)
			if err == nil {
				err = write(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(stderr, "rumbench: %s: %v\n", what, err)
				exportErr = true
				return
			}
			fmt.Fprintf(stderr, "  %s → %s\n", what, path)
		}
		export(*trace, "trace", observer.WriteTrace)
		export(*timeseries, "timeseries", observer.WriteTimeSeries)
		export(*metrics, "metrics", observer.WriteMetrics)
		fmt.Fprintf(stdout, "observability: %d spans (%d dropped), %d samples, %d page events attributed\n",
			len(observer.Spans()), observer.Dropped(), len(observer.Samples()), observer.Totals().Touched())
		if exportErr {
			return 1
		}
	}
	if perf != nil {
		// The perf artifact is deterministic (ops per kilocost, no wall
		// clock), so revisions of it diff cleanly across hosts and runs.
		doc := struct {
			Schema string            `json:"schema"`
			Seed   int64             `json:"seed"`
			N      int               `json:"n"`
			Ops    int               `json:"ops"`
			Cells  []bench.PerfEntry `json:"cells"`
		}{Schema: "rumbench-perf/v1", Seed: *seed, N: *n, Ops: *ops, Cells: perf.Entries()}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err == nil {
			err = os.WriteFile(*benchjson, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(stderr, "rumbench: -benchjson: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "  benchjson (%d cells) → %s\n", len(doc.Cells), *benchjson)
	}
	if failures > 0 {
		fmt.Fprintf(stderr, "rumbench: %d experiment(s) failed\n", failures)
		return 1
	}
	return 0
}

// splitMixes parses the -mix flag: comma-separated ServeMix preset names,
// validated against the bench package's preset table. Empty selects the
// mvcc experiment's default sweep.
func splitMixes(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	valid := map[string]bool{}
	for _, p := range bench.ServeMixPresets() {
		valid[p] = true
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !valid[part] {
			return nil, fmt.Errorf("unknown preset %q (want %s)", part, strings.Join(bench.ServeMixPresets(), "/"))
		}
		out = append(out, part)
	}
	return out, nil
}

// splitStaleness parses the -staleness flag: comma-separated positive write
// counts between snapshot publishes. Empty selects the default sweep.
func splitStaleness(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("%q: %v", part, err)
		}
		if k <= 0 {
			return nil, fmt.Errorf("%d: staleness must be positive", k)
		}
		out = append(out, k)
	}
	return out, nil
}
