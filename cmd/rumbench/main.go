// Command rumbench regenerates the paper's experimental artifacts from the
// implemented structures: the Section-2 propositions, Table 1, Figures 1–3,
// the Section-3 conjecture grid, and the Section-4/5 adaptivity runs.
//
// Usage:
//
//	rumbench -exp all
//	rumbench -exp table1,fig1 -n 65536 -ops 20000
//	rumbench -exp fig3 -quick
//	rumbench -exp table1 -trace out.jsonl -timeseries ts.csv -metrics metrics.txt
//
// The -trace/-timeseries/-metrics flags attach an observability layer
// (internal/obs) to every traced experiment (table1, fig1, fig3,
// conjecture): per-operation JSONL spans, a CSV RUM time series, and a
// Prometheus-style metrics exposition.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
)

// knownExps lists every experiment name, in run order.
var knownExps = []string{"props", "table1", "fig1", "fig2", "fig3", "conjecture", "adaptive", "extensions"}

func main() {
	var (
		exps       = flag.String("exp", "all", "comma-separated experiments: "+strings.Join(knownExps, ",")+",all")
		n          = flag.Int("n", 0, "dataset size in records (0 = per-experiment default)")
		ops        = flag.Int("ops", 0, "measured operations per run (0 = default)")
		seed       = flag.Int64("seed", 1, "deterministic seed")
		m          = flag.Int("m", 256, "range query result size for table1")
		quick      = flag.Bool("quick", false, "small sizes for a fast pass")
		trace      = flag.String("trace", "", "write per-operation JSONL spans to this file")
		timeseries = flag.String("timeseries", "", "write the RUM time-series CSV to this file")
		metrics    = flag.String("metrics", "", "write a Prometheus-style metrics exposition to this file")
		sample     = flag.Int("sample", 256, "operations between time-series samples")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	cfg := bench.Config{Seed: *seed, N: *n, Ops: *ops}
	if *quick {
		if cfg.N == 0 {
			cfg.N = 8192
		}
		if cfg.Ops == 0 {
			cfg.Ops = 4000
		}
	}

	valid := map[string]bool{"all": true}
	for _, e := range knownExps {
		valid[e] = true
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		e = strings.TrimSpace(e)
		if e == "" {
			continue
		}
		if !valid[e] {
			fmt.Fprintf(os.Stderr, "rumbench: unknown experiment %q; known experiments: %s, all\n",
				e, strings.Join(knownExps, ", "))
			os.Exit(2)
		}
		want[e] = true
	}
	if len(want) == 0 {
		fmt.Fprintf(os.Stderr, "rumbench: no experiments selected; known experiments: %s, all\n",
			strings.Join(knownExps, ", "))
		os.Exit(2)
	}
	all := want["all"]

	var observer *obs.Observer
	if *trace != "" || *timeseries != "" || *metrics != "" {
		observer = obs.New(obs.Config{SampleEvery: *sample})
		cfg.Obs = observer
		cfg.Storage.Hook = observer
	}

	run := func(name string, fn func() string) {
		if !all && !want[name] {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		start := time.Now()
		fmt.Println(fn())
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("props", func() string { return bench.RunProps(cfg).Render() })
	run("table1", func() string {
		ns := []int{1 << 14, 1 << 16, 1 << 18}
		if *quick {
			ns = []int{1 << 12, 1 << 14}
		}
		return bench.RunTable1(cfg, ns, *m).Render()
	})
	run("fig1", func() string { return bench.RunFig1(cfg).Render() })
	run("fig2", func() string { return bench.RunFig2(cfg).Render() })
	run("fig3", func() string {
		c := cfg
		if c.N == 0 {
			c.N = 16384
		}
		if c.Ops == 0 {
			c.Ops = 8000
		}
		return bench.RunFig3(c).Render()
	})
	run("conjecture", func() string {
		c := cfg
		if c.N == 0 {
			c.N = 16384
		}
		if c.Ops == 0 {
			c.Ops = 8000
		}
		return bench.RunConjecture(c).Render()
	})
	run("adaptive", func() string { return bench.RunAdaptive(cfg).Render() })
	run("extensions", func() string { return bench.RunExtensions(cfg).Render() })

	if observer != nil {
		export := func(path, what string, write func(io.Writer) error) {
			if path == "" {
				return
			}
			f, err := os.Create(path)
			if err == nil {
				err = write(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "rumbench: %s: %v\n", what, err)
				os.Exit(1)
			}
		}
		export(*trace, "trace", observer.WriteTrace)
		export(*timeseries, "timeseries", observer.WriteTimeSeries)
		export(*metrics, "metrics", observer.WriteMetrics)
		fmt.Printf("observability: %d spans (%d dropped), %d samples, %d page events attributed\n",
			len(observer.Spans()), observer.Dropped(), len(observer.Samples()), observer.Totals().Touched())
		if *trace != "" {
			fmt.Printf("  trace      → %s\n", *trace)
		}
		if *timeseries != "" {
			fmt.Printf("  timeseries → %s\n", *timeseries)
		}
		if *metrics != "" {
			fmt.Printf("  metrics    → %s\n", *metrics)
		}
	}
}
