// Command rumviz profiles chosen access methods under a chosen workload mix
// and renders their positions in the RUM triangle — an interactive
// counterpart to the fixed Figure-1 experiment.
//
// Usage:
//
//	rumviz                                  # full catalog, balanced mix
//	rumviz -methods btree,hash,lsm-level -get 0.9 -update 0.1
//	rumviz -absolute                        # plot absolute amplifications
//	rumviz -trajectory                      # RUM trajectory sparklines per method
//	rumviz -parallel 8                      # profile methods concurrently
//
// Each method profiles on its own isolated storage stack; with -parallel the
// profiles run concurrently and are merged in catalog order, so the rendered
// triangle and trajectories are identical at any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/methods"
	"repro/internal/obs"
	"repro/internal/rum"
	"repro/internal/workload"
)

func main() {
	var (
		list       = flag.String("methods", "", "comma-separated catalog names (default: all)")
		n          = flag.Int("n", 16384, "records preloaded")
		ops        = flag.Int("ops", 8000, "measured operations")
		get        = flag.Float64("get", 0.58, "point query fraction")
		rng        = flag.Float64("range", 0.0, "range query fraction")
		insert     = flag.Float64("insert", 0.2, "insert fraction")
		update     = flag.Float64("update", 0.17, "update fraction")
		del        = flag.Float64("delete", 0.05, "delete fraction")
		width      = flag.Int("width", 61, "triangle width in characters")
		absolute   = flag.Bool("absolute", false, "plot absolute amplification instead of cohort-relative position")
		trajectory = flag.Bool("trajectory", false, "render RUM trajectory sparklines (windowed RO/UO and MO over the run)")
		sample     = flag.Int("sample", 0, "operations between trajectory samples (0 = ops/60)")
		parallel   = flag.Int("parallel", 0, "profile worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()

	var tracer *obs.Observer
	if *trajectory {
		every := *sample
		if every <= 0 {
			every = *ops / 60
		}
		tracer = obs.New(obs.Config{SampleEvery: every})
	}

	// Resolve the method list up front (against throwaway options — each
	// profile re-looks its spec up with its own hook) so bad names fail fast.
	var names []string
	if *list != "" {
		for _, name := range strings.Split(*list, ",") {
			name = strings.TrimSpace(name)
			if _, err := methods.Lookup(methods.Options{}, name); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			names = append(names, name)
		}
	} else {
		for _, s := range methods.Catalog(methods.Options{}) {
			names = append(names, s.Name)
		}
	}

	mix := workload.Mix{Get: *get, Range: *rng, Insert: *insert, Update: *update, Delete: *del}
	runner := bench.NewRunner(*parallel)
	points := make([]rum.Point, len(names))
	children := make([]*obs.Observer, len(names))
	errs := runner.Map(len(names), func(i int) {
		opt := methods.Options{PoolPages: 8}
		var child *obs.Observer
		if tracer != nil {
			child = tracer.Child()
			children[i] = child
			opt.Hook = child
		}
		spec, err := methods.Lookup(opt, names[i])
		if err != nil {
			panic(err)
		}
		gen := workload.New(workload.Config{Seed: 1, Mix: mix, InitialLen: *n, RangeLen: 1 << 30})
		am := spec.New()
		if child != nil {
			child.Target(am, spec.Name)
		}
		prof, err := core.RunProfile(am, gen, *ops)
		if err != nil {
			panic(err)
		}
		if child != nil {
			child.Finish()
		}
		points[i] = prof.Point
	})

	failed := false
	var pts []bench.NamedPoint
	var raw []rum.Point
	for i, name := range names {
		if e := errs[i]; e != nil {
			fmt.Fprintf(os.Stderr, "rumviz: %s: %v\n", name, e.Value)
			failed = true
			continue
		}
		if children[i] != nil {
			tracer.Absorb(children[i])
		}
		pts = append(pts, bench.NamedPoint{Label: name, Point: points[i]})
		raw = append(raw, points[i])
	}
	if failed {
		os.Exit(1)
	}
	if !*absolute {
		ws := rum.RelativeWeights(raw)
		for i := range pts {
			w := ws[i]
			pts[i].W = &w
		}
	}
	fmt.Printf("RUM triangle: N=%d, ops=%d, mix get=%.2f range=%.2f insert=%.2f update=%.2f delete=%.2f\n\n",
		*n, *ops, *get, *rng, *insert, *update, *del)
	fmt.Println(bench.RenderTriangle(pts, *width))
	if tracer != nil {
		fmt.Println("RUM trajectory (one sparkline column per sampling window):")
		fmt.Print(obs.RenderTrajectory(tracer.Samples(), 60))
	}
}
