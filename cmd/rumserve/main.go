// Command rumserve is the live half of the repository's telemetry story: a
// long-running daemon that stands up the sharded serving layer
// (internal/serve) over one access method, drives it with the same
// deterministic conflict-free client streams as `rumbench -exp serve`
// (bench.StreamGen), and exposes the system's RUM position *while it runs*:
//
//	GET /metrics      Prometheus text format: cumulative rum_ro/rum_uo/rum_mo
//	                  gauges, rolling-window rates over the last -window,
//	                  request-latency histograms with le buckets, per-shard
//	                  op counters, shard-balance gauge, fault counters.
//	GET /debug/rum    JSON snapshot: per-shard meters, rolling-window stats,
//	                  uptime, config, verification counters.
//	GET /healthz      liveness probe.
//	GET /debug/pprof/ the standard Go profiler endpoints.
//
// A sampling loop calls serve.Server.Snapshot every -scrape interval — a
// non-destructive broadcast answered by each shard on its own goroutine —
// and publishes the points into an obs.Rolling ring; scrape handlers read
// the ring lock-free, so an aggressive scraper never blocks a shard. With
// no scraper attached the only telemetry cost is the snapshot itself:
// O(shards) per -scrape tick, microseconds against a 1-second default.
//
// Every live outcome is still verified against its generation-time
// prediction, exactly like the serve experiment; mismatches surface in
// /metrics and in the final report. On SIGINT/SIGTERM the daemon drains its
// clients, stops the server, and prints the same final report as
// `rumbench -exp serve` — with the one honest difference that the R/U/M
// columns are the live run's cumulative amplifications (there is no
// separate clean replay in a daemon).
//
// Usage:
//
//	rumserve -method lsm-level -shards 8 -rate 50000 -addr :9090
//	rumserve -method btree -mix get=0.8,insert=0.1,update=0.05,delete=0.05
//	rumserve -method btree -mvcc -mix read99
//	rumserve -method lsm-level -wal -commit-batch 32
//	rumserve -faults seed=7,p_read=0.001 -window 30s -scrape 500ms
//
// With -mvcc, pure-read batches are served lock-free from published MVCC
// snapshots on the client goroutines (DESIGN.md §9); /metrics gains
// rum_snapshot_versions{shard}, rum_reader_concurrency, and
// rum_snapshot_reads_total, and -staleness sets the publish cadence.
//
// With -wal, every mutation is framed into its shard's write-ahead log
// before it is acknowledged and the shard group-commits once per mailbox
// batch (DESIGN.md §10) — the durability contract becomes DurableToCommit;
// /metrics gains the rum_wal_* families (commits, syncs, checkpoints, log
// pages and bytes, the committed watermark).
//
// With -workload, every shard fingerprints its op stream in op-count
// windows (DESIGN.md §12): mix, heavy-hitter skew, working-set cardinality,
// and window-to-window drift, with a report-only RUM advisor pricing each
// window against the catalog. /metrics gains the rum_workload_* families,
// /debug/workload serves the merged snapshot plus the advisor's full
// ranking, and the final report carries the advisor's verdict. -dist skews
// the driver streams' key popularity (zipf:1.1, hotspot:90/10) to give the
// fingerprinter something to see. Without -workload the scrape is
// byte-identical to unfingerprinted builds.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/methods"
	"repro/internal/obs"
	"repro/internal/rum"
	"repro/internal/serve"
	"repro/internal/storage"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// config is the parsed command line.
type config struct {
	method  string
	shards  int
	clients int
	batch   int
	n       int
	pool    int
	// medium is the simulated storage medium under every shard. On a
	// multi-queue medium (mqssd) each shard's pool submits batched I/O and
	// /metrics gains the rum_live_batch_* families.
	medium     storage.Medium
	mediumSpec string
	rate       float64
	mix     bench.ServeMix
	mixSpec string
	seed    int64
	plan    faults.Plan
	addr    string
	window  time.Duration
	scrape  time.Duration
	// mvcc turns on the serving layer's snapshot read path: pure-read
	// batches bypass the mailbox onto the client goroutine. staleness is
	// serve.Config.StalenessOps (writes between snapshot publishes).
	mvcc      bool
	staleness int
	// wal builds the structures behind a write-ahead log
	// (faults.DurableToCommit); commitBatch is the group-commit size — the
	// shards additionally commit at the end of every mailbox batch.
	wal         bool
	commitBatch int
	// workload turns on the shards' workload fingerprinter (op-count
	// windows of workloadWindow ops); dist sets the generated streams' key
	// popularity (uniform, zipf:θ, hotspot:HOT/KEYS).
	workload       bool
	workloadWindow int
	dist           bench.KeyDist
	distSpec       string
}

// atomicHook counts storage events across all shard goroutines — the
// concurrency-safe subset of what a full obs.Observer attributes. It feeds
// the live rum_live_pages_total and rum_fault_events_total series.
type atomicHook struct {
	reads, writes                  atomic.Uint64
	faults, torn, crashes, retries atomic.Uint64
	batches, batchedPages          atomic.Uint64
}

// StorageBatch implements storage.BatchHook: on a multi-queue medium each
// shard pool's amortized submissions land here. The per-page events of the
// batch have already arrived through StorageEvent.
func (h *atomicHook) StorageBatch(_ bool, pages, _ int, _ uint64) {
	h.batches.Add(1)
	h.batchedPages.Add(uint64(pages))
}

// teeHook fans one shard's storage events out to the process-wide atomic
// counters and to the shard's own phase recorder. Both sinks are safe for
// the shard goroutine: the atomics by construction, the recorder because it
// is only ever touched by its owning shard.
type teeHook struct {
	global *atomicHook
	shard  *obs.PhaseRecorder
}

// StorageEvent implements storage.Hook.
func (t teeHook) StorageEvent(ev storage.Event, id storage.PageID, class rum.Class, cost uint64) {
	t.global.StorageEvent(ev, id, class, cost)
	t.shard.StorageEvent(ev, id, class, cost)
}

// StorageBatch implements storage.BatchHook, feeding the process-wide batch
// counters. The shard's phase recorder already saw the batch's per-page
// events through StorageEvent, so only the global sink needs the summary.
func (t teeHook) StorageBatch(write bool, pages, depth int, cost uint64) {
	t.global.StorageBatch(write, pages, depth, cost)
}

// StorageEvent implements storage.Hook.
func (h *atomicHook) StorageEvent(ev storage.Event, _ storage.PageID, _ rum.Class, _ uint64) {
	switch ev {
	case storage.EvRead:
		h.reads.Add(1)
	case storage.EvWrite:
		h.writes.Add(1)
	case storage.EvFault:
		h.faults.Add(1)
	case storage.EvTorn:
		h.faults.Add(1)
		h.torn.Add(1)
	case storage.EvCrash:
		h.crashes.Add(1)
	case storage.EvRetry:
		h.retries.Add(1)
	}
}

// latencyRecorder is one client's latency histogram, mutex-guarded so the
// sampling loop can clone it at snapshot instants. The lock is taken once
// per batch (client side) and once per scrape tick (sampler side).
type latencyRecorder struct {
	mu sync.Mutex
	h  *obs.Histogram
}

func newLatencyRecorder() *latencyRecorder {
	return &latencyRecorder{h: obs.NewLatencyHistogram()}
}

func (l *latencyRecorder) record(d time.Duration) {
	l.mu.Lock()
	l.h.RecordDuration(d)
	l.mu.Unlock()
}

func (l *latencyRecorder) clone() *obs.Histogram {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h.Clone()
}

// daemon owns the running system: the sharded server, the driving clients,
// the sampling loop, and the telemetry plane the HTTP handlers read.
type daemon struct {
	cfg  config
	srv  *serve.Server
	ring *obs.Rolling
	reg  *obs.Registry
	hook *atomicHook
	// recs[i] is shard i's phase recorder, written by the TraceConfig
	// Recorder callback on shard i's goroutine just before Build reads it
	// back to wire the tee hook — same goroutine, disjoint slots, no race.
	recs []*obs.PhaseRecorder

	gens []*bench.StreamGen
	lats []*latencyRecorder

	preload    int
	start      time.Time
	submitted  atomic.Uint64 // requests submitted by drivers
	hits       atomic.Uint64 // predicted-and-confirmed get hits
	mismatches atomic.Uint64 // outcomes that diverged from prediction
	doErrs     atomic.Uint64 // Do calls that failed outright

	stopCh  chan struct{}
	wg      sync.WaitGroup // drivers + sampler
	stopped bool
	// finalWorkload is the merged fingerprint snapshot captured at Stop —
	// the state behind the final report's advisor lines.
	finalWorkload *obs.WorkloadSnapshot
}

// slowTraceCap is the flight-recorder capacity: the slowest recent requests
// retained for /debug/slow and the shutdown report.
const slowTraceCap = 64

// mvccRetention is the per-shard version window under -mvcc: how many
// published snapshots each structure keeps readable before reclamation.
const mvccRetention = 3

// newDaemon builds the serving stack, preloads it, and starts the client
// drivers and the snapshot sampler.
func newDaemon(cfg config) (*daemon, error) {
	d := &daemon{
		cfg:    cfg,
		ring:   obs.NewRolling(ringCapacity(cfg.window, cfg.scrape)),
		reg:    obs.NewRegistry(),
		hook:   &atomicHook{},
		stopCh: make(chan struct{}),
		start:  time.Now(),
	}
	opt := methods.Options{PoolPages: cfg.pool, Medium: cfg.medium, Hook: d.hook}
	if cfg.mvcc {
		opt.Versions = mvccRetention
	}
	if cfg.wal {
		opt.WAL = true
		opt.CommitBatch = cfg.commitBatch
	}
	if _, err := methods.Lookup(opt, cfg.method); err != nil {
		return nil, err
	}
	d.recs = make([]*obs.PhaseRecorder, cfg.shards)
	var wl *serve.WorkloadConfig
	if cfg.workload {
		wl = &serve.WorkloadConfig{WindowOps: cfg.workloadWindow}
	}
	srv, err := serve.New(serve.Config{
		Shards:       cfg.shards,
		MaxBatch:     cfg.batch,
		Snapshots:    cfg.mvcc,
		StalenessOps: cfg.staleness,
		Workload:     wl,
		Trace: &serve.TraceConfig{
			SlowK:   slowTraceCap,
			SlowTTL: time.Minute,
			Recorder: func(i int) *obs.PhaseRecorder {
				d.recs[i] = obs.NewPhaseRecorder()
				return d.recs[i]
			},
		},
		Build: func(i int) *core.Instrumented {
			o := opt
			// The Recorder callback already ran on this goroutine, so the
			// shard's storage stack can tee its events into the recorder:
			// traces then carry per-op page/fault/retry attribution.
			o.Hook = teeHook{global: d.hook, shard: d.recs[i]}
			if cfg.plan.Active() {
				o.Faults = cfg.plan.Salted(fmt.Sprintf("rumserve-shard-%d", i))
			}
			spec, err := methods.Lookup(o, cfg.method)
			if err != nil {
				panic(err)
			}
			return spec.New()
		},
	})
	if err != nil {
		return nil, err
	}
	d.srv = srv

	var init []core.Record
	for c := 0; c < cfg.clients; c++ {
		g := bench.NewStreamGenDist(cfg.seed, c, cfg.mix, cfg.dist)
		d.gens = append(d.gens, g)
		d.lats = append(d.lats, newLatencyRecorder())
		init = append(init, g.InitRecords(cfg.n/cfg.clients)...)
	}
	init = bench.MergeRecords(init)
	d.preload = len(init)
	if err := srv.Preload(init); err != nil {
		srv.Stop()
		return nil, err
	}

	d.reg.Register(obs.SourceFunc(d.collectProcessMetrics))
	d.reg.Register(obs.SourceFunc(d.collectMetrics))
	d.wg.Add(1)
	go d.runSampler()
	for c := 0; c < cfg.clients; c++ {
		d.wg.Add(1)
		go d.runClient(c)
	}
	return d, nil
}

// ringCapacity sizes the snapshot ring to hold several windows' worth of
// scrape-interval points.
func ringCapacity(window, scrape time.Duration) int {
	if scrape <= 0 {
		scrape = time.Second
	}
	n := int(4 * window / scrape)
	if n < 16 {
		n = 16
	}
	if n > 4096 {
		n = 4096
	}
	return n
}

// runClient is one driver: generate a batch, submit it, verify the
// outcomes, pace to the configured rate.
func (d *daemon) runClient(c int) {
	defer d.wg.Done()
	g := d.gens[c]
	lat := d.lats[c]
	reqs := make([]serve.Request, d.cfg.batch)
	want := make([]serve.Result, d.cfg.batch)
	res := make([]serve.Result, d.cfg.batch)
	var interval time.Duration
	if d.cfg.rate > 0 {
		perClient := d.cfg.rate / float64(d.cfg.clients)
		interval = time.Duration(float64(d.cfg.batch) / perClient * float64(time.Second))
	}
	next := time.Now()
	for {
		select {
		case <-d.stopCh:
			return
		default:
		}
		for i := range reqs {
			reqs[i], want[i] = g.Next()
		}
		t0 := time.Now()
		if err := d.srv.Do(reqs, res); err != nil {
			d.doErrs.Add(1)
			return
		}
		lat.record(time.Since(t0))
		d.submitted.Add(uint64(len(reqs)))
		for i := range res {
			if res[i] != want[i] {
				d.mismatches.Add(1)
			} else if reqs[i].Op == serve.OpGet && want[i].OK {
				d.hits.Add(1)
			}
		}
		if interval > 0 {
			next = next.Add(interval)
			if wait := time.Until(next); wait > 0 {
				select {
				case <-d.stopCh:
					return
				case <-time.After(wait):
				}
			} else if wait < -time.Second {
				next = time.Now() // fell behind by over a second: don't burst
			}
		}
	}
}

// runSampler publishes one WindowPoint per scrape interval: a
// non-destructive server snapshot plus a merged clone of the clients'
// cumulative latency histograms.
func (d *daemon) runSampler() {
	defer d.wg.Done()
	tick := time.NewTicker(d.cfg.scrape)
	defer tick.Stop()
	for {
		select {
		case <-d.stopCh:
			return
		case <-tick.C:
		}
		d.sampleOnce()
	}
}

// sampleOnce takes one snapshot and pushes it into the ring. A snapshot
// error (a dead shard) still publishes the live shards' state.
func (d *daemon) sampleOnce() {
	reports, err := d.srv.Snapshot()
	if err != nil && reports == nil {
		return
	}
	merged := obs.NewLatencyHistogram()
	for _, l := range d.lats {
		merged.Merge(l.clone())
	}
	p := &obs.WindowPoint{
		At: time.Now(), Latency: merged,
		Phases:   serve.AggregatePhases(reports),
		Workload: serve.AggregateWorkload(reports),
	}
	for _, r := range reports {
		p.Shards = append(p.Shards, obs.ShardPoint{
			Shard: r.Shard, Ops: r.Ops, Meter: r.Meter, Size: r.Size, Len: r.Len,
			SnapVersions: r.SnapVersions, WAL: r.WAL,
		})
	}
	d.ring.Push(p)
}

// collectProcessMetrics is the daemon's own health as a metric source:
// uptime, staleness of the newest snapshot (a wedged sampler shows up as
// this gauge climbing), and the goroutine count.
func (d *daemon) collectProcessMetrics(e *obs.Encoder) {
	e.Family("rum_uptime_seconds", "gauge", "Seconds since the daemon started.")
	e.Float("rum_uptime_seconds", nil, time.Since(d.start).Seconds())
	e.Family("rum_snapshot_age_seconds", "gauge", "Age of the newest shard snapshot (uptime until the first sample lands).")
	age := time.Since(d.start)
	if last := d.ring.Last(); last != nil {
		age = time.Since(last.At)
	}
	e.Float("rum_snapshot_age_seconds", nil, age.Seconds())
	e.Family("rum_goroutines", "gauge", "Goroutines in the daemon process.")
	e.Uint("rum_goroutines", nil, uint64(runtime.NumGoroutine()))
}

// collectMetrics is the daemon's live metric source, rendered by the
// obs.Registry on every /metrics scrape. All values derive from the
// snapshot ring and atomic counters — nothing here touches the shards.
func (d *daemon) collectMetrics(e *obs.Encoder) {
	var m rum.Meter
	var sz rum.SizeInfo
	var ops uint64
	var records int
	last := d.ring.Last()
	lat := obs.NewLatencyHistogram()
	if last != nil {
		m, sz, ops, records = last.Totals()
		if last.Latency != nil {
			lat = last.Latency
		}
	}
	e.Family("rum_requests_total", "counter", "Requests executed by the shards, from the newest snapshot.")
	e.Uint("rum_requests_total", nil, ops)
	e.Family("rum_records", "gauge", "Records live across all shards.")
	e.Uint("rum_records", nil, uint64(records))
	e.Family("rum_ro", "gauge", "Cumulative read amplification (physical read bytes per logical read byte).")
	e.Float("rum_ro", nil, m.ReadAmplification())
	e.Family("rum_uo", "gauge", "Cumulative write amplification (physical written bytes per logical written byte).")
	e.Float("rum_uo", nil, m.WriteAmplification())
	e.Family("rum_mo", "gauge", "Space amplification at the newest snapshot (stored bytes per base byte).")
	e.Float("rum_mo", nil, sz.SpaceAmplification())

	st, haveWin := d.ring.Window(d.cfg.window)
	e.Family("rum_window_seconds", "gauge", "Actual span of the rolling window behind the _window gauges.")
	e.Float("rum_window_seconds", nil, st.Span.Seconds())
	e.Family("rum_ro_window", "gauge", "Read amplification of the traffic inside the rolling window alone.")
	e.Float("rum_ro_window", nil, st.RO)
	e.Family("rum_uo_window", "gauge", "Write amplification of the traffic inside the rolling window alone.")
	e.Float("rum_uo_window", nil, st.UO)
	e.Family("rum_mo_window", "gauge", "Space amplification at the window's newest instant.")
	e.Float("rum_mo_window", nil, st.MO)
	e.Family("rum_window_ops_per_sec", "gauge", "Request throughput over the rolling window.")
	e.Float("rum_window_ops_per_sec", nil, st.OpsPerSec)
	e.Family("rum_window_read_bytes_per_op", "gauge", "Physical bytes read per request over the rolling window.")
	e.Float("rum_window_read_bytes_per_op", nil, st.ReadBytesPerOp)
	e.Family("rum_window_write_bytes_per_op", "gauge", "Physical bytes written per request over the rolling window.")
	e.Float("rum_window_write_bytes_per_op", nil, st.WriteBytesPerOp)
	e.Family("rum_window_p50_ns", "gauge", "Median batch latency of requests completed inside the rolling window.")
	e.Float("rum_window_p50_ns", nil, float64(st.P50))
	e.Family("rum_window_p99_ns", "gauge", "p99 batch latency of requests completed inside the rolling window.")
	e.Float("rum_window_p99_ns", nil, float64(st.P99))
	e.Family("rum_window_queue_p99_seconds", "gauge", "p99 mailbox queue wait of ops executed inside the rolling window.")
	e.Float("rum_window_queue_p99_seconds", nil, st.QueueP99.Seconds())
	e.Family("rum_window_service_p99_seconds", "gauge", "p99 service time of ops executed inside the rolling window.")
	e.Float("rum_window_service_p99_seconds", nil, st.ServiceP99.Seconds())
	e.Family("rum_shard_balance", "gauge", "min/max per-shard ops inside the rolling window (1 = even).")
	if haveWin {
		e.Float("rum_shard_balance", nil, st.Balance)
	} else {
		e.Float("rum_shard_balance", nil, 1)
	}

	e.Family("rum_shard_ops_total", "counter", "Requests executed per shard, from the newest snapshot.")
	if last != nil {
		for _, s := range last.Shards {
			e.Uint("rum_shard_ops_total", obs.L("shard", fmt.Sprintf("%d", s.Shard)), s.Ops)
		}
	}

	e.Family("rum_snapshot_versions", "gauge", "Retained MVCC snapshot versions per shard (0 when snapshot serving is off).")
	if last != nil {
		for _, s := range last.Shards {
			e.Uint("rum_snapshot_versions", obs.L("shard", fmt.Sprintf("%d", s.Shard)), uint64(s.SnapVersions))
		}
	}
	active, snapReads := d.srv.ReaderStats()
	e.Family("rum_reader_concurrency", "gauge", "Snapshot bypass readers executing right now on client goroutines.")
	e.Uint("rum_reader_concurrency", nil, uint64(active))
	e.Family("rum_snapshot_reads_total", "counter", "Requests served from MVCC snapshots, bypassing the shard mailbox.")
	e.Uint("rum_snapshot_reads_total", nil, snapReads)

	// Durability plane: present only when at least one shard is write-ahead
	// logged, so an unlogged daemon's scrape stays byte-identical to before.
	var wp obs.WALPoint
	haveWAL := false
	if last != nil {
		for _, s := range last.Shards {
			if s.WAL == nil {
				continue
			}
			haveWAL = true
			wp.Committed += s.WAL.Committed
			wp.Commits += s.WAL.Commits
			wp.Syncs += s.WAL.Syncs
			wp.Checkpoints += s.WAL.Checkpoints
			wp.LogPagesWritten += s.WAL.LogPagesWritten
			wp.LogBytesWritten += s.WAL.LogBytesWritten
			wp.PagesRecycled += s.WAL.PagesRecycled
			wp.LiveLogPages += s.WAL.LiveLogPages
			wp.OverlayRecords += s.WAL.OverlayRecords
		}
	}
	if haveWAL {
		e.Family("rum_wal_committed_total", "counter", "Records durably group-committed across all shards (the DurableToCommit watermark).")
		e.Uint("rum_wal_committed_total", nil, wp.Committed)
		e.Family("rum_wal_commits_total", "counter", "Group commits across all shards.")
		e.Uint("rum_wal_commits_total", nil, wp.Commits)
		e.Family("rum_wal_syncs_total", "counter", "Simulated log syncs across all shards (one per commit, one per checkpoint record).")
		e.Uint("rum_wal_syncs_total", nil, wp.Syncs)
		e.Family("rum_wal_checkpoints_total", "counter", "Completed checkpoints across all shards.")
		e.Uint("rum_wal_checkpoints_total", nil, wp.Checkpoints)
		e.Family("rum_wal_log_pages_total", "counter", "Log pages across all shards, by disposition.")
		e.Uint("rum_wal_log_pages_total", obs.L("event", "written"), wp.LogPagesWritten)
		e.Uint("rum_wal_log_pages_total", obs.L("event", "recycled"), wp.PagesRecycled)
		e.Family("rum_wal_log_bytes_total", "counter", "Log bytes appended across all shards (headers and payload, not page slack).")
		e.Uint("rum_wal_log_bytes_total", nil, wp.LogBytesWritten)
		e.Family("rum_wal_live_log_pages", "gauge", "Log pages not yet recycled, across all shards.")
		e.Uint("rum_wal_live_log_pages", nil, uint64(wp.LiveLogPages))
		e.Family("rum_wal_overlay_records", "gauge", "Logged records not yet absorbed into the structures by a checkpoint.")
		e.Uint("rum_wal_overlay_records", nil, uint64(wp.OverlayRecords))
	}

	// Workload fingerprint plane: present only with -workload, so the
	// default scrape stays byte-identical to unfingerprinted builds.
	if last != nil && last.Workload != nil {
		d.collectWorkloadMetrics(e, last.Workload)
	}

	e.Family("rum_request_latency_ns", "histogram", "Per-batch request latency in nanoseconds (power-of-two buckets).")
	e.Histo("rum_request_latency_ns", nil, lat)

	// Lifecycle decomposition: per-op queue wait and service time, rendered
	// in base-unit seconds from the same nanosecond buckets. The service
	// histogram's bucket lines carry exemplars — the worst recent op that
	// landed in each bucket, with its full decomposition.
	if last != nil && last.Phases != nil {
		ph := last.Phases
		e.Family("rum_queue_wait_seconds", "histogram", "Per-op mailbox queue wait (enqueue to execution start) in seconds.")
		e.HistoScaled("rum_queue_wait_seconds", nil, ph.Queue, 1e-9, nil)
		e.Family("rum_service_seconds", "histogram", "Per-op service time (execution only) in seconds; bucket exemplars carry the worst recent op.")
		e.HistoScaled("rum_service_seconds", nil, ph.Service, 1e-9, ph.Exemplars)
		e.Family("rum_batch_size", "histogram", "Operations carried per mailbox message.")
		e.Histo("rum_batch_size", nil, ph.Batch)
	}
	e.Family("rum_mailbox_depth", "gauge", "Mailbox occupancy in messages, per shard.")
	for i, depth := range d.srv.MailboxDepths() {
		e.Uint("rum_mailbox_depth", obs.L("shard", fmt.Sprintf("%d", i)), uint64(depth))
	}

	e.Family("rum_outcome_mismatches_total", "counter", "Live outcomes that diverged from their generation-time prediction.")
	e.Uint("rum_outcome_mismatches_total", nil, d.mismatches.Load())

	e.Family("rum_live_pages_total", "counter", "Device page operations across all shards, by direction.")
	e.Uint("rum_live_pages_total", obs.L("dir", "read"), d.hook.reads.Load())
	e.Uint("rum_live_pages_total", obs.L("dir", "write"), d.hook.writes.Load())

	e.Family("rum_fault_events_total", "counter", "Fault-path events across all shards: injected faults, torn writes, crash points, retry attempts.")
	e.Uint("rum_fault_events_total", obs.L("event", "fault"), d.hook.faults.Load())
	e.Uint("rum_fault_events_total", obs.L("event", "torn"), d.hook.torn.Load())
	e.Uint("rum_fault_events_total", obs.L("event", "crash"), d.hook.crashes.Load())
	e.Uint("rum_fault_events_total", obs.L("event", "retry"), d.hook.retries.Load())

	// Batch families only exist on a multi-queue medium: the default (flat)
	// scrape stays byte-identical to builds without batched I/O.
	if d.cfg.medium.Model().Channels > 1 {
		e.Family("rum_live_batch_submissions_total", "counter", "Amortized batch submissions across all shards.")
		e.Uint("rum_live_batch_submissions_total", nil, d.hook.batches.Load())
		e.Family("rum_live_batched_pages_total", "counter", "Pages carried by amortized batch submissions across all shards.")
		e.Uint("rum_live_batched_pages_total", nil, d.hook.batchedPages.Load())
	}
}

// collectWorkloadMetrics renders the rum_workload_* families from the
// newest merged fingerprint snapshot. Mix/skew/working-set gauges describe
// the last completed window; ops and drift-event counters are cumulative.
func (d *daemon) collectWorkloadMetrics(e *obs.Encoder, w *obs.WorkloadSnapshot) {
	e.Family("rum_workload_windows_total", "counter", "Completed fingerprint windows across all shards.")
	e.Uint("rum_workload_windows_total", nil, w.Windows)
	e.Family("rum_workload_window_ops", "gauge", "Configured ops per fingerprint window (per shard).")
	e.Uint("rum_workload_window_ops", nil, w.WindowOps)
	e.Family("rum_workload_ops_total", "counter", "Fingerprinted operations by kind, cumulative.")
	for op := obs.WorkloadOp(0); op < obs.NumWorkloadOps; op++ {
		e.Uint("rum_workload_ops_total", obs.L("op", op.String()), w.Cum[op])
	}
	if last := w.Last; last != nil {
		st := last.Stats()
		e.Family("rum_workload_mix", "gauge", "Operation-mix fraction of the last completed fingerprint window.")
		for op := obs.WorkloadOp(0); op < obs.NumWorkloadOps; op++ {
			e.Float("rum_workload_mix", obs.L("op", op.String()), last.MixFrac(op))
		}
		e.Family("rum_workload_hot_share", "gauge", "Fraction of last-window keyed ops on the heavy-hitter set.")
		e.Float("rum_workload_hot_share", nil, st.HotShare)
		e.Family("rum_workload_zipf_slope", "gauge", "Estimated key-skew exponent of the last window's heavy hitters.")
		e.Float("rum_workload_zipf_slope", nil, st.ZipfSlope)
		e.Family("rum_workload_distinct_keys", "gauge", "Estimated working-set cardinality of the last window.")
		e.Float("rum_workload_distinct_keys", nil, st.Distinct)
		e.Family("rum_workload_hot_key_ops", "gauge", "Estimated op count of the last window's heavy hitters (exemplar keys).")
		for rank, h := range last.Hot {
			e.Uint("rum_workload_hot_key_ops",
				obs.L("rank", fmt.Sprintf("%d", rank), "key", fmt.Sprintf("%d", h.Key)), h.Count)
		}
	}
	if w.CumScanRows != nil {
		e.Family("rum_workload_scan_rows", "histogram", "Rows returned per range scan, cumulative.")
		e.Histo("rum_workload_scan_rows", nil, w.CumScanRows)
	}
	e.Family("rum_workload_drift_score", "gauge", "Distance between the two newest fingerprint windows (max across shards).")
	e.Float("rum_workload_drift_score", nil, w.Drift)
	e.Family("rum_workload_drift_events_total", "counter", "Workload drift events latched across all shards.")
	e.Uint("rum_workload_drift_events_total", nil, w.DriftCount)
	if adv, ok := d.advise(w); ok {
		e.Family("rum_workload_advice_delta", "gauge", "Predicted per-op page-access saving of moving to the advisor's pick (0 = best placed).")
		e.Float("rum_workload_advice_delta", nil, adv.Delta)
		e.Family("rum_workload_advice", "gauge", "Advisor verdict for the last window: current and advised configuration as labels.")
		e.Uint("rum_workload_advice", obs.L("current", adv.Current.Config, "advised", adv.Best.Config), 1)
	}
}

// advise prices the newest merged fingerprint against the catalog. The
// dataset size comes from the newest snapshot's record total.
func (d *daemon) advise(w *obs.WorkloadSnapshot) (obs.Advice, bool) {
	if w == nil || w.Last == nil {
		return obs.Advice{}, false
	}
	records := 0
	if last := d.ring.Last(); last != nil {
		_, _, _, records = last.Totals()
	}
	return obs.Advise(w.Last, float64(records), d.cfg.method), true
}

// debugRUM is the /debug/rum JSON document.
type debugRUM struct {
	Config struct {
		Method  string  `json:"method"`
		Shards  int     `json:"shards"`
		Clients int     `json:"clients"`
		Batch   int     `json:"batch"`
		Rate    float64 `json:"rate"`
		Mix     string  `json:"mix"`
		Seed    int64   `json:"seed"`
		Preload int     `json:"preload"`
	} `json:"config"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      uint64  `json:"requests"`
	Mismatches    uint64  `json:"mismatches"`
	Cumulative    struct {
		RO      float64 `json:"ro"`
		UO      float64 `json:"uo"`
		MO      float64 `json:"mo"`
		Records int     `json:"records"`
	} `json:"cumulative"`
	WindowSeconds float64          `json:"window_seconds"`
	Window        *obs.WindowStats `json:"window,omitempty"`
	At            time.Time        `json:"at"`
	Shards        []obs.ShardPoint `json:"shards"`
}

// handleDebugRUM renders the live JSON snapshot.
func (d *daemon) handleDebugRUM(w http.ResponseWriter, _ *http.Request) {
	var doc debugRUM
	doc.Config.Method = d.cfg.method
	doc.Config.Shards = d.cfg.shards
	doc.Config.Clients = d.cfg.clients
	doc.Config.Batch = d.cfg.batch
	doc.Config.Rate = d.cfg.rate
	doc.Config.Mix = d.cfg.mix.String()
	doc.Config.Seed = d.cfg.seed
	doc.Config.Preload = d.preload
	doc.UptimeSeconds = time.Since(d.start).Seconds()
	doc.Mismatches = d.mismatches.Load()
	doc.WindowSeconds = d.cfg.window.Seconds()
	if last := d.ring.Last(); last != nil {
		m, sz, ops, records := last.Totals()
		doc.Requests = ops
		doc.Cumulative.RO = jsonSafe(m.ReadAmplification())
		doc.Cumulative.UO = jsonSafe(m.WriteAmplification())
		doc.Cumulative.MO = jsonSafe(sz.SpaceAmplification())
		doc.Cumulative.Records = records
		doc.At = last.At
		doc.Shards = last.Shards
	}
	if st, ok := d.ring.Window(d.cfg.window); ok {
		st.RO, st.UO, st.MO = jsonSafe(st.RO), jsonSafe(st.UO), jsonSafe(st.MO)
		doc.Window = &st
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// jsonSafe clamps +Inf (legal in our amplification algebra, illegal in
// JSON) to a large sentinel.
func jsonSafe(v float64) float64 {
	if v > 1e308 || v != v {
		return -1
	}
	return v
}

// handleDebugWorkload renders the fingerprinter's view: the merged
// snapshot (last window, retained history, drift events) plus the advisor's
// full ranking for the newest window. Lock-free — everything derives from
// the sampler's ring.
func (d *daemon) handleDebugWorkload(w http.ResponseWriter, _ *http.Request) {
	doc := struct {
		Enabled   bool                  `json:"enabled"`
		WindowOps int                   `json:"window_ops"`
		Dist      string                `json:"dist"`
		Snapshot  *obs.WorkloadSnapshot `json:"snapshot,omitempty"`
		Last      *obs.FingerprintStats `json:"last,omitempty"`
		Advice    *obs.Advice           `json:"advice,omitempty"`
	}{Enabled: d.cfg.workload, WindowOps: d.cfg.workloadWindow, Dist: d.cfg.dist.String()}
	if last := d.ring.Last(); last != nil && last.Workload != nil {
		doc.Snapshot = last.Workload
		if fp := last.Workload.Last; fp != nil {
			st := fp.Stats()
			doc.Last = &st
		}
		if adv, ok := d.advise(last.Workload); ok {
			doc.Advice = &adv
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// handleDebugSlow renders the flight recorder: the slowest recent requests,
// slowest first, each with its queue/service/device decomposition. The read
// is lock-free, so an aggressive poller never blocks a shard.
func (d *daemon) handleDebugSlow(w http.ResponseWriter, _ *http.Request) {
	traces := d.srv.SlowTraces()
	if traces == nil {
		traces = []obs.SlowTrace{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Cap    int             `json:"cap"`
		Traces []obs.SlowTrace `json:"traces"`
	}{Cap: slowTraceCap, Traces: traces})
}

// handler builds the daemon's HTTP mux.
func (d *daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", d.reg)
	mux.HandleFunc("/debug/rum", d.handleDebugRUM)
	mux.HandleFunc("/debug/slow", d.handleDebugSlow)
	mux.HandleFunc("/debug/workload", d.handleDebugWorkload)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// stop drains the drivers, stops the server, and assembles the final
// report — the daemon's equivalent of the serve experiment's result row.
func (d *daemon) stop() (bench.ServeResult, error) {
	if d.stopped {
		return bench.ServeResult{}, serve.ErrStopped
	}
	d.stopped = true
	close(d.stopCh)
	d.wg.Wait()
	elapsed := time.Since(d.start)
	flushErr := d.srv.Flush()
	reports, err := d.srv.Stop()
	if err == nil {
		err = flushErr
	}
	meter, size, n := serve.Aggregate(reports)
	d.finalWorkload = serve.AggregateWorkload(reports)

	latency := obs.NewLatencyHistogram()
	for _, l := range d.lats {
		latency.Merge(l.h) // drivers are joined; direct reads are safe
	}
	wantLen := 0
	for _, g := range d.gens {
		wantLen += g.Live()
	}
	row := bench.ServeRow{
		Method:     d.cfg.method,
		Clean:      rum.PointOf(meter, size),
		Requests:   int(d.submitted.Load()),
		Hits:       int(d.hits.Load()),
		FinalLen:   wantLen,
		Mismatches: int(d.mismatches.Load()),
		Elapsed:    elapsed,
		P50:        latency.QuantileDuration(0.50),
		P99:        latency.QuantileDuration(0.99),
		ServeMeter: meter,
	}
	if ph := serve.AggregatePhases(reports); ph != nil {
		row.QueueP50 = ph.Queue.QuantileDuration(0.50)
		row.QueueP99 = ph.Queue.QuantileDuration(0.99)
		row.ServiceP50 = ph.Service.QuantileDuration(0.50)
		row.ServiceP99 = ph.Service.QuantileDuration(0.99)
	}
	if err != nil {
		row.ServeErr = err.Error()
	}
	row.Verified = row.Mismatches == 0 && row.ServeErr == "" && d.doErrs.Load() == 0 && n == wantLen
	if s := elapsed.Seconds(); s > 0 {
		row.Throughput = float64(row.Requests) / s
	}
	for _, r := range reports {
		row.ShardOps = append(row.ShardOps, r.Ops)
	}
	res := bench.ServeResult{
		N:       d.preload,
		Ops:     row.Requests,
		Clients: d.cfg.clients,
		Shards:  d.cfg.shards,
		Batch:   d.cfg.batch,
		Rows:    []bench.ServeRow{row},
	}
	return res, err
}

// run is the whole program behind main: parse flags, start the daemon,
// serve HTTP until a signal (or until ready is closed in tests), then shut
// down and print the final report. Returns the process exit code.
func run(args []string, stdout, stderr io.Writer, testSignal <-chan struct{}) int {
	fs := flag.NewFlagSet("rumserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	var faultSpec string
	fs.StringVar(&cfg.method, "method", "btree", "access method to serve (any catalog name: btree, hash, lsm-level, skiplist, ...)")
	fs.IntVar(&cfg.shards, "shards", 4, "keyspace shard count")
	fs.IntVar(&cfg.clients, "clients", 4, "concurrent driver clients")
	fs.IntVar(&cfg.batch, "batch", 64, "requests per client batch")
	fs.IntVar(&cfg.n, "n", 16384, "records to preload")
	fs.IntVar(&cfg.pool, "pool", 8, "buffer pool pages per shard")
	fs.StringVar(&cfg.mediumSpec, "medium", "ram", "storage medium per shard: ram, ssd, hdd, smr, or mqssd (multi-queue: shard pools submit batched I/O)")
	fs.Float64Var(&cfg.rate, "rate", 0, "target requests/second across all clients (0 = unthrottled)")
	fs.StringVar(&cfg.mixSpec, "mix", "", "operation mix, e.g. get=0.5,insert=0.2,update=0.15,delete=0.15,getmiss=0.1 (empty = serve experiment default)")
	fs.Int64Var(&cfg.seed, "seed", 1, "deterministic workload seed")
	fs.StringVar(&faultSpec, "faults", "", "fault plan, e.g. seed=7,p_read=0.01 (empty = no injected faults)")
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:8080", "HTTP listen address (use :0 for an ephemeral port)")
	fs.DurationVar(&cfg.window, "window", 10*time.Second, "rolling window for the _window gauges")
	fs.DurationVar(&cfg.scrape, "scrape", time.Second, "interval between shard snapshots")
	fs.BoolVar(&cfg.mvcc, "mvcc", false, "serve pure-read batches from MVCC snapshots, bypassing the shard mailbox (btree and lsm methods)")
	fs.IntVar(&cfg.staleness, "staleness", 1, "with -mvcc: writes between snapshot publishes (1 = read-your-writes)")
	fs.BoolVar(&cfg.wal, "wal", false, "write-ahead log every mutation (btree and lsm methods); upgrades durability to commit, /metrics gains rum_wal_*")
	fs.IntVar(&cfg.commitBatch, "commit-batch", 64, "with -wal: records per group commit; shards also commit at the end of every mailbox batch")
	fs.BoolVar(&cfg.workload, "workload", false, "fingerprint the op stream per shard; /metrics gains rum_workload_*, /debug/workload reports the advisor")
	fs.IntVar(&cfg.workloadWindow, "workload-window", 4096, "with -workload: ops per fingerprint window")
	fs.StringVar(&cfg.distSpec, "dist", "", "key-popularity distribution of the driver streams: uniform, zipf:THETA, hotspot:HOT/KEYS (empty = uniform)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	// Per-flag validation: each bad value names its flag and prints the full
	// usage, so a typo'd unit (`-window 10` meaning 10ns) fails loudly
	// instead of silently misbehaving.
	badFlag := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "rumserve: "+format+"\n", args...)
		fs.Usage()
		return 2
	}
	if fs.NArg() > 0 {
		return badFlag("unexpected arguments: %v", fs.Args())
	}
	var err error
	if cfg.mix, err = bench.ParseServeMix(cfg.mixSpec); err != nil {
		return badFlag("-mix: %v", err)
	}
	if cfg.plan, err = faults.ParsePlan(faultSpec); err != nil {
		return badFlag("-faults: %v", err)
	}
	if cfg.medium, err = storage.ParseMedium(cfg.mediumSpec); err != nil {
		return badFlag("-medium: %v", err)
	}
	if cfg.dist, err = bench.ParseKeyDist(cfg.distSpec); err != nil {
		return badFlag("-dist: %v", err)
	}
	if cfg.mix.Scan > 0 {
		return badFlag("-mix: scans are not driven by the live daemon (use `rumbench -exp drift` for the scan-storm scenario)")
	}
	switch {
	case cfg.shards < 1:
		return badFlag("-shards must be ≥ 1 (got %d)", cfg.shards)
	case cfg.clients < 1:
		return badFlag("-clients must be ≥ 1 (got %d)", cfg.clients)
	case cfg.batch < 1:
		return badFlag("-batch must be ≥ 1 (got %d)", cfg.batch)
	case cfg.n < cfg.clients:
		return badFlag("-n must be ≥ -clients (got n=%d, clients=%d)", cfg.n, cfg.clients)
	case cfg.rate < 0:
		return badFlag("-rate must be ≥ 0, 0 meaning unthrottled (got %g)", cfg.rate)
	case cfg.window <= 0:
		return badFlag("-window must be a positive duration (got %v)", cfg.window)
	case cfg.scrape <= 0:
		return badFlag("-scrape must be a positive duration (got %v)", cfg.scrape)
	case cfg.staleness < 1:
		return badFlag("-staleness must be ≥ 1 (got %d)", cfg.staleness)
	case cfg.commitBatch < 1:
		return badFlag("-commit-batch must be ≥ 1 (got %d)", cfg.commitBatch)
	case cfg.workloadWindow < 1:
		return badFlag("-workload-window must be ≥ 1 (got %d)", cfg.workloadWindow)
	case cfg.wal && cfg.mvcc:
		return badFlag("-wal and -mvcc are mutually exclusive: the log owns the checkpoint machinery the snapshot read path would share")
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		fmt.Fprintf(stderr, "rumserve: listen: %v\n", err)
		return 1
	}
	d, err := newDaemon(cfg)
	if err != nil {
		ln.Close()
		fmt.Fprintf(stderr, "rumserve: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "rumserve: listening on %s\n", ln.Addr())
	fmt.Fprintf(stderr, "rumserve: serving %s across %d shards, %d clients, mix %s\n",
		cfg.method, cfg.shards, cfg.clients, cfg.mix)
	if cfg.mvcc {
		fmt.Fprintf(stderr, "rumserve: mvcc snapshot reads on (staleness %d writes, retention %d versions)\n",
			cfg.staleness, mvccRetention)
	}
	if cfg.wal {
		fmt.Fprintf(stderr, "rumserve: write-ahead logging on (commit batch %d, durable to commit)\n",
			cfg.commitBatch)
	}
	if m := cfg.medium.Model(); m.Channels > 1 {
		fmt.Fprintf(stderr, "rumserve: multi-queue medium %s (read %d, write %d, %d channels; shard pools batch I/O)\n",
			cfg.medium, m.ReadCost, m.WriteCost, m.Channels)
	}

	httpSrv := &http.Server{Handler: d.handler()}
	httpDone := make(chan error, 1)
	go func() { httpDone <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(stderr, "rumserve: %v, shutting down\n", sig)
	case <-testSignal:
	case err := <-httpDone:
		fmt.Fprintf(stderr, "rumserve: http: %v\n", err)
		d.stop()
		return 1
	}

	res, stopErr := d.stop()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx)

	fmt.Fprint(stdout, res.Render())
	// Fingerprint + advisor lines of the final report: what the traffic
	// looked like and where the paper's cost model says it would be cheaper.
	if w := d.finalWorkload; w != nil {
		fmt.Fprintf(stdout, "workload: %d window(s) of %d ops, %d drift event(s) latched\n",
			w.Windows, w.WindowOps, w.DriftCount)
		if fp := w.Last; fp != nil {
			st := fp.Stats()
			fmt.Fprintf(stdout, "workload: last window mix g/i/u/d/s %.2f/%.2f/%.2f/%.2f/%.2f, hot share %.2f, zipf %.2f, ~%.0f distinct keys\n",
				st.Get, st.Insert, st.Update, st.Delete, st.Scan, st.HotShare, st.ZipfSlope, st.Distinct)
		}
		if adv, ok := d.advise(w); ok {
			fmt.Fprintf(stdout, "%s\n", adv)
		}
	}
	fmt.Fprint(stderr, res.RenderTiming())
	// The flight recorder outlives Stop; dump the worst offenders so a
	// Ctrl-C'd run leaves its slowest requests on record.
	if traces := d.srv.SlowTraces(); len(traces) > 0 {
		n := len(traces)
		if n > 5 {
			n = 5
		}
		fmt.Fprintf(stderr, "(slowest %d of %d retained traces)\n", n, len(traces))
		for _, tr := range traces[:n] {
			fmt.Fprintf(stderr, "(  %-6s key=%-20d shard=%d total=%-10v queue=%-10v service=%-10v pages=%d faults=%d)\n",
				tr.Op, tr.Key, tr.Shard, tr.Total.Round(time.Microsecond),
				tr.Queue.Round(time.Microsecond), tr.Service.Round(time.Microsecond),
				tr.Pages, tr.Faults)
		}
	}
	if stopErr != nil {
		fmt.Fprintf(stderr, "rumserve: %v\n", stopErr)
		return 1
	}
	if !res.Rows[0].Verified {
		fmt.Fprintf(stderr, "rumserve: %d outcome mismatches\n", res.Rows[0].Mismatches)
		return 1
	}
	return 0
}
