package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
)

// syncBuffer is a bytes.Buffer safe to read while run() writes to it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func testConfig() config {
	return config{
		method:  "skiplist",
		shards:  2,
		clients: 2,
		batch:   16,
		n:       256,
		pool:    8,
		rate:    0,
		mix:     bench.DefaultServeMix(),
		seed:    1,
		addr:    "127.0.0.1:0",
		window:  250 * time.Millisecond,
		scrape:  5 * time.Millisecond,
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// get performs one in-process request against the daemon's mux.
func get(t *testing.T, d *daemon, path string) (int, string, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	d.handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.String(), rec.Header().Get("Content-Type")
}

// TestDaemonEndpoints drives a live daemon and exercises every HTTP surface:
// healthz, the Prometheus exposition, and the JSON debug snapshot.
func TestDaemonEndpoints(t *testing.T) {
	d, err := newDaemon(testConfig())
	if err != nil {
		t.Fatalf("newDaemon: %v", err)
	}
	waitFor(t, "first snapshot with traffic", func() bool {
		last := d.ring.Last()
		if last == nil {
			return false
		}
		_, _, ops, _ := last.Totals()
		return ops > 0 && d.ring.Len() >= 3
	})

	code, body, _ := get(t, d, "/healthz")
	if code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body, ctype := get(t, d, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type = %q", ctype)
	}
	for _, series := range []string{
		"rum_uptime_seconds", "rum_requests_total", "rum_records",
		"rum_ro ", "rum_uo ", "rum_mo ",
		"rum_ro_window", "rum_uo_window", "rum_mo_window",
		"rum_window_ops_per_sec", "rum_shard_balance",
		`rum_shard_ops_total{shard="0"}`, `rum_shard_ops_total{shard="1"}`,
		`rum_request_latency_ns_bucket{le="+Inf"}`,
		"rum_request_latency_ns_sum", "rum_request_latency_ns_count",
		"rum_outcome_mismatches_total",
		`rum_fault_events_total{event="fault"}`,
		`rum_live_pages_total{dir="read"}`,
		"rum_snapshot_age_seconds", "rum_goroutines",
		`rum_queue_wait_seconds_bucket{le="+Inf"}`,
		"rum_queue_wait_seconds_count",
		`rum_service_seconds_bucket{le="+Inf"}`,
		"rum_service_seconds_count",
		`rum_batch_size_bucket{le="+Inf"}`,
		`rum_mailbox_depth{shard="0"}`, `rum_mailbox_depth{shard="1"}`,
		"rum_window_queue_p99_seconds", "rum_window_service_p99_seconds",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %q", series)
		}
	}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			t.Error("/metrics contains an empty line")
		}
	}

	code, body, ctype = get(t, d, "/debug/rum")
	if code != 200 || ctype != "application/json" {
		t.Fatalf("/debug/rum = %d %q", code, ctype)
	}
	var doc debugRUM
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/rum is not JSON: %v\n%s", err, body)
	}
	if doc.Config.Method != "skiplist" || doc.Config.Shards != 2 {
		t.Fatalf("/debug/rum config = %+v", doc.Config)
	}
	if doc.Requests == 0 || len(doc.Shards) != 2 {
		t.Fatalf("/debug/rum snapshot empty: requests=%d shards=%d", doc.Requests, len(doc.Shards))
	}
	if doc.Cumulative.Records != doc.Shards[0].Len+doc.Shards[1].Len {
		t.Fatalf("/debug/rum records inconsistent: %+v", doc)
	}

	code, body, ctype = get(t, d, "/debug/slow")
	if code != 200 || ctype != "application/json" {
		t.Fatalf("/debug/slow = %d %q", code, ctype)
	}
	var slow struct {
		Cap    int `json:"cap"`
		Traces []struct {
			Op      string        `json:"op"`
			Shard   int           `json:"shard"`
			Queue   time.Duration `json:"queue_ns"`
			Service time.Duration `json:"service_ns"`
			Total   time.Duration `json:"total_ns"`
		} `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &slow); err != nil {
		t.Fatalf("/debug/slow is not JSON: %v\n%s", err, body)
	}
	if slow.Cap != slowTraceCap || len(slow.Traces) == 0 {
		t.Fatalf("/debug/slow empty under load: cap=%d traces=%d", slow.Cap, len(slow.Traces))
	}
	for _, tr := range slow.Traces {
		if tr.Total != tr.Queue+tr.Service {
			t.Fatalf("/debug/slow trace breaks decomposition: %+v", tr)
		}
		if tr.Op == "" || tr.Shard < 0 || tr.Shard > 1 {
			t.Fatalf("/debug/slow malformed trace: %+v", tr)
		}
	}

	code, body, _ = get(t, d, "/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}

	res, err := d.stop()
	if err != nil {
		t.Fatalf("stop: %v", err)
	}
	row := res.Rows[0]
	if !row.Verified {
		t.Fatalf("live run not verified: %+v", row)
	}
	if row.Requests == 0 || row.Hits == 0 || len(row.ShardOps) != 2 {
		t.Fatalf("empty final row: %+v", row)
	}
	if !strings.Contains(res.Render(), "skiplist") {
		t.Fatalf("final report missing method:\n%s", res.Render())
	}
	// A second stop fails cleanly rather than double-closing.
	if _, err := d.stop(); err == nil {
		t.Fatal("second stop did not error")
	}
}

// TestRunLifecycle runs the whole binary in-process: flags, listen, serve,
// simulated signal, final report, exit code.
func TestRunLifecycle(t *testing.T) {
	var stdout, stderr syncBuffer
	sig := make(chan struct{})
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-method", "skiplist", "-shards", "2", "-clients", "2",
			"-batch", "16", "-n", "256", "-rate", "50000",
			"-addr", "127.0.0.1:0", "-scrape", "5ms", "-window", "250ms",
		}, &stdout, &stderr, sig)
	}()
	waitFor(t, "listening line", func() bool {
		return strings.Contains(stderr.String(), "listening on")
	})
	time.Sleep(50 * time.Millisecond)
	close(sig)
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("run exited %d\nstderr:\n%s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after signal")
	}
	if !strings.Contains(stdout.String(), "skiplist") {
		t.Fatalf("final report missing:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "verified=true") && !strings.Contains(stdout.String(), "verified") {
		t.Logf("stdout:\n%s\nstderr:\n%s", stdout.String(), stderr.String())
	}
}

// TestRunFlagErrors locks in the exit codes for bad invocations.
func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"bad flag", []string{"-nonsense"}, 2},
		{"bad mix", []string{"-mix", "get=2"}, 2},
		{"unknown mix preset", []string{"-mix", "read42"}, 2},
		{"bad staleness", []string{"-staleness", "0"}, 2},
		{"bad faults", []string{"-faults", "bogus"}, 2},
		{"bad medium", []string{"-medium", "floppy"}, 2},
		{"positional args", []string{"extra"}, 2},
		{"bad shards", []string{"-shards", "0"}, 2},
		{"negative shards", []string{"-shards", "-3"}, 2},
		{"bad clients", []string{"-clients", "0"}, 2},
		{"bad batch", []string{"-batch", "-1"}, 2},
		{"n below clients", []string{"-n", "1", "-clients", "4"}, 2},
		{"negative rate", []string{"-rate", "-100"}, 2},
		{"zero window", []string{"-window", "0s"}, 2},
		{"negative window", []string{"-window", "-5s"}, 2},
		{"zero scrape", []string{"-scrape", "0s"}, 2},
		{"negative scrape", []string{"-scrape", "-1ms"}, 2},
		{"bad commit batch", []string{"-commit-batch", "0"}, 2},
		{"wal with mvcc", []string{"-wal", "-mvcc"}, 2},
		{"bad dist", []string{"-dist", "latest"}, 2},
		{"bad zipf theta", []string{"-dist", "zipf:0"}, 2},
		{"scan mix", []string{"-mix", "get=0.6,scan=0.4"}, 2},
		{"bad workload window", []string{"-workload", "-workload-window", "0"}, 2},
		{"unknown method", []string{"-method", "no-such-method", "-addr", "127.0.0.1:0"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			code := run(tc.args, &out, &errb, nil)
			if code != tc.code {
				t.Fatalf("run(%v) = %d, want %d\nstderr:\n%s", tc.args, code, tc.code, errb.String())
			}
			// Every exit-2 rejection explains itself: the offending flag is
			// named and the usage text follows.
			if tc.code == 2 && !strings.Contains(errb.String(), "Usage") && !strings.Contains(errb.String(), "-method string") {
				t.Fatalf("rejection printed no usage:\n%s", errb.String())
			}
		})
	}
}

// TestDaemonMVCC drives the daemon with snapshot reads on: the new metric
// series must appear, snapshot reads must actually flow, and the final
// report must still verify every outcome.
func TestDaemonMVCC(t *testing.T) {
	cfg := testConfig()
	cfg.method = "btree"
	cfg.mvcc = true
	cfg.staleness = 1
	mix, err := bench.ParseServeMix("read99")
	if err != nil {
		t.Fatalf("ParseServeMix: %v", err)
	}
	cfg.mix = mix
	d, err := newDaemon(cfg)
	if err != nil {
		t.Fatalf("newDaemon: %v", err)
	}
	waitFor(t, "snapshot-served reads", func() bool {
		_, ops := d.srv.ReaderStats()
		return ops > 0 && d.ring.Last() != nil
	})

	_, body, _ := get(t, d, "/metrics")
	for _, series := range []string{
		`rum_snapshot_versions{shard="0"}`, `rum_snapshot_versions{shard="1"}`,
		"rum_reader_concurrency", "rum_snapshot_reads_total",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %q", series)
		}
	}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "rum_snapshot_reads_total ") && strings.TrimSpace(line) == "rum_snapshot_reads_total 0" {
			t.Errorf("rum_snapshot_reads_total stayed zero under a read-heavy mix")
		}
	}

	res, err := d.stop()
	if err != nil {
		t.Fatalf("stop: %v", err)
	}
	if row := res.Rows[0]; !row.Verified {
		t.Fatalf("mvcc live run not verified: %+v", row)
	}
}

// TestDaemonWorkload drives the daemon with fingerprinting on and a skewed
// stream: the rum_workload_* series must appear with live values, the
// /debug/workload document must carry the snapshot and the advisor's
// ranking, and the final report must still verify. The unfingerprinted
// daemon's scrape must carry no rum_workload_ series at all.
func TestDaemonWorkload(t *testing.T) {
	cfg := testConfig()
	cfg.workload = true
	cfg.workloadWindow = 64
	dist, err := bench.ParseKeyDist("zipf:1.1")
	if err != nil {
		t.Fatalf("ParseKeyDist: %v", err)
	}
	cfg.dist = dist
	d, err := newDaemon(cfg)
	if err != nil {
		t.Fatalf("newDaemon: %v", err)
	}
	waitFor(t, "a completed fingerprint window", func() bool {
		last := d.ring.Last()
		return last != nil && last.Workload != nil && last.Workload.Windows > 0
	})

	_, body, _ := get(t, d, "/metrics")
	for _, series := range []string{
		"rum_workload_windows_total", "rum_workload_window_ops",
		`rum_workload_ops_total{op="get"}`, `rum_workload_ops_total{op="insert"}`,
		`rum_workload_mix{op="get"}`, "rum_workload_hot_share",
		"rum_workload_zipf_slope", "rum_workload_distinct_keys",
		`rum_workload_hot_key_ops{rank="0"`, "rum_workload_drift_score",
		"rum_workload_drift_events_total", "rum_workload_advice_delta",
		`rum_workload_advice{current="`,
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %q", series)
		}
	}

	code, body, ctype := get(t, d, "/debug/workload")
	if code != 200 || ctype != "application/json" {
		t.Fatalf("/debug/workload = %d %q", code, ctype)
	}
	var doc struct {
		Enabled   bool `json:"enabled"`
		WindowOps int  `json:"window_ops"`
		Snapshot  *struct {
			Windows uint64 `json:"windows"`
		} `json:"snapshot"`
		Last *struct {
			Ops      uint64  `json:"ops"`
			HotShare float64 `json:"hot_share"`
		} `json:"last"`
		Advice *struct {
			Ranked []struct {
				Config string  `json:"config"`
				Cost   float64 `json:"cost"`
			} `json:"ranked"`
			Best struct {
				Config string `json:"config"`
			} `json:"best"`
		} `json:"advice"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/workload is not JSON: %v\n%s", err, body)
	}
	if !doc.Enabled || doc.WindowOps != 64 {
		t.Fatalf("/debug/workload config wrong: %+v", doc)
	}
	if doc.Snapshot == nil || doc.Snapshot.Windows == 0 || doc.Last == nil || doc.Last.Ops == 0 {
		t.Fatalf("/debug/workload snapshot empty:\n%s", body)
	}
	if doc.Advice == nil || len(doc.Advice.Ranked) < 5 || doc.Advice.Best.Config == "" {
		t.Fatalf("/debug/workload advice missing:\n%s", body)
	}

	res, err := d.stop()
	if err != nil {
		t.Fatalf("stop: %v", err)
	}
	if row := res.Rows[0]; !row.Verified {
		t.Fatalf("fingerprinted live run not verified: %+v", row)
	}
	if d.finalWorkload == nil || d.finalWorkload.Windows == 0 {
		t.Fatal("stop captured no final workload snapshot")
	}

	// The unfingerprinted daemon must expose no workload series and report
	// /debug/workload as disabled — the byte-identical default scrape.
	d2, err := newDaemon(testConfig())
	if err != nil {
		t.Fatalf("newDaemon: %v", err)
	}
	defer d2.stop()
	waitFor(t, "plain daemon snapshot", func() bool { return d2.ring.Last() != nil })
	_, body, _ = get(t, d2, "/metrics")
	if strings.Contains(body, "rum_workload_") {
		t.Error("unfingerprinted /metrics leaks rum_workload_ series")
	}
	_, body, _ = get(t, d2, "/debug/workload")
	if !strings.Contains(body, `"enabled": false`) {
		t.Errorf("/debug/workload on a plain daemon: %s", body)
	}
}

// TestDaemonWAL drives the daemon with write-ahead logging on: the rum_wal_*
// series must appear with a nonzero committed watermark, and the final
// report must still verify every outcome against its prediction.
func TestDaemonWAL(t *testing.T) {
	cfg := testConfig()
	cfg.method = "lsm-level"
	cfg.wal = true
	cfg.commitBatch = 8
	d, err := newDaemon(cfg)
	if err != nil {
		t.Fatalf("newDaemon: %v", err)
	}
	committed := func() uint64 {
		last := d.ring.Last()
		if last == nil {
			return 0
		}
		var total uint64
		for _, s := range last.Shards {
			if s.WAL != nil {
				total += s.WAL.Committed
			}
		}
		return total
	}
	waitFor(t, "committed records in a snapshot", func() bool { return committed() > 0 })

	_, body, _ := get(t, d, "/metrics")
	for _, series := range []string{
		"rum_wal_committed_total", "rum_wal_commits_total", "rum_wal_syncs_total",
		"rum_wal_checkpoints_total", `rum_wal_log_pages_total{event="written"}`,
		`rum_wal_log_pages_total{event="recycled"}`, "rum_wal_log_bytes_total",
		"rum_wal_live_log_pages", "rum_wal_overlay_records",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %q", series)
		}
	}
	if strings.Contains(body, "rum_wal_committed_total 0\n") {
		t.Error("rum_wal_committed_total stayed zero under a write-carrying mix")
	}

	res, err := d.stop()
	if err != nil {
		t.Fatalf("stop: %v", err)
	}
	if row := res.Rows[0]; !row.Verified {
		t.Fatalf("wal live run not verified: %+v", row)
	}
}
