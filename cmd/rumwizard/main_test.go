package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRankingSmoke: a read-heavy memtight ask must produce a ranking that
// names at least one method and explains the scores.
func TestRankingSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-get", "0.8", "-insert", "0.1", "-update", "0.1", "-delete", "0", "-memtight"},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("run = %d, want 0; stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "predicted ranking") {
		t.Errorf("missing ranking header:\n%s", out)
	}
	if !strings.Contains(out, "btree") && !strings.Contains(out, "hash") {
		t.Errorf("ranking names no catalog methods:\n%s", out)
	}
}

// TestMixValidation: malformed fractions are usage errors (exit 2) caught
// before any ranking prints.
func TestMixValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"negative fraction", []string{"-get", "-0.5", "-insert", "1.5"}},
		{"sum below one", []string{"-get", "0.2", "-insert", "0.1", "-update", "0", "-delete", "0"}},
		{"sum above one", []string{"-get", "0.9", "-insert", "0.9"}},
		{"NaN fraction", []string{"-get", "NaN", "-insert", "0.5"}},
		{"stray argument", []string{"stray"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Errorf("run(%v) = %d, want 2; stderr:\n%s", tc.args, code, stderr.String())
			}
			if stdout.Len() != 0 {
				t.Errorf("run(%v) wrote to stdout before failing validation:\n%s", tc.args, stdout.String())
			}
		})
	}
}

// TestMixSumTolerance: decimal round-off within mixEpsilon must pass.
func TestMixSumTolerance(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-get", "0.33", "-insert", "0.33", "-update", "0.34", "-delete", "0"},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("run = %d, want 0; stderr:\n%s", code, stderr.String())
	}
}

// TestVerifyTiny: -verify on a tiny size must profile the top picks and
// report a measured RUM point per method.
func TestVerifyTiny(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-get", "0.6", "-insert", "0.3", "-update", "0.1", "-delete", "0",
		"-size", "512", "-ops", "200", "-verify"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run = %d, want 0; stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "Measured validation") {
		t.Errorf("missing validation section:\n%s", out)
	}
	if !strings.Contains(out, "measured") {
		t.Errorf("no measured points printed:\n%s", out)
	}
}
