// Command rumwizard is the Section-5 "access method wizard": describe a
// workload and the hardware's RUM priorities, get a ranked list of access
// methods with suggested tuning — and optionally a measured validation of
// the top picks.
//
// Usage:
//
//	rumwizard -get 0.7 -insert 0.2 -update 0.1 -size 1000000
//	rumwizard -get 0.2 -insert 0.7 -flash         # endurance-limited device
//	rumwizard -range 0.6 -get 0.3 -memtight -verify
//
// The operation fractions must be non-negative and sum to 1 (within a small
// epsilon); anything else is a usage error, since a malformed mix would
// silently skew both the predicted ranking and the -verify workload.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/methods"
	"repro/internal/workload"
)

// mixEpsilon is the tolerance on the fraction sum: wide enough for decimal
// round-off (0.33+0.33+0.34), far tighter than any real misconfiguration.
const mixEpsilon = 1e-6

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program behind main, factored for tests. Returns 0 on
// success, 1 if -verify could not profile any pick, 2 on usage errors.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rumwizard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		get      = fs.Float64("get", 0.5, "point query fraction")
		rng      = fs.Float64("range", 0.0, "range query fraction")
		insert   = fs.Float64("insert", 0.25, "insert fraction")
		update   = fs.Float64("update", 0.2, "update fraction")
		del      = fs.Float64("delete", 0.05, "delete fraction")
		size     = fs.Int("size", 1<<16, "expected record count")
		read     = fs.Float64("wr", 1, "priority weight on read cost")
		write    = fs.Float64("wu", 1, "priority weight on write cost")
		space    = fs.Float64("wm", 1, "priority weight on space")
		flash    = fs.Bool("flash", false, "endurance-limited storage: bias against write amplification")
		memtight = fs.Bool("memtight", false, "scarce memory: bias against space amplification")
		verify   = fs.Bool("verify", false, "profile the top 3 picks on the described workload")
		ops      = fs.Int("ops", 8000, "operations for -verify")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "rumwizard: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	mix := workload.Mix{Get: *get, Range: *rng, Insert: *insert, Update: *update, Delete: *del}
	sum := 0.0
	for _, f := range []struct {
		name string
		val  float64
	}{
		{"get", mix.Get}, {"range", mix.Range}, {"insert", mix.Insert},
		{"update", mix.Update}, {"delete", mix.Delete},
	} {
		if f.val < 0 || math.IsNaN(f.val) {
			fmt.Fprintf(stderr, "rumwizard: -%s must be a non-negative fraction, got %v\n", f.name, f.val)
			return 2
		}
		sum += f.val
	}
	if math.Abs(sum-1) > mixEpsilon {
		fmt.Fprintf(stderr, "rumwizard: operation fractions must sum to 1, got %g (get+range+insert+update+delete)\n", sum)
		return 2
	}

	req := core.Requirements{
		Mix:         mix,
		DataSize:    *size,
		Priorities:  core.Priorities{Read: *read, Write: *write, Space: *space},
		FlashLike:   *flash,
		MemoryTight: *memtight,
	}
	recs := core.Recommend(req)
	fmt.Fprintln(stdout, "Access-method wizard (predicted ranking, lower score = better):")
	fmt.Fprint(stdout, core.Explain(recs))

	if !*verify {
		return 0
	}
	fmt.Fprintln(stdout, "\nMeasured validation of the top picks:")
	opt := methods.Options{}
	catalogName := map[string]string{
		"btree": "btree", "hash": "hash", "lsm": "lsm-level", "zonemap": "zonemap",
		"sorted-column": "sorted-column", "unsorted-column": "unsorted-column", "cracking": "cracking",
	}
	shown := 0
	for _, r := range recs {
		if shown == 3 {
			break
		}
		name, ok := catalogName[r.Method]
		if !ok {
			continue
		}
		spec, err := methods.Lookup(opt, name)
		if err != nil {
			fmt.Fprintln(stderr, err)
			continue
		}
		gen := workload.New(workload.Config{Seed: 1, Mix: req.Mix, InitialLen: *size, RangeLen: 1 << 30})
		prof, err := core.RunProfile(spec.New(), gen, *ops)
		if err != nil {
			fmt.Fprintln(stderr, err)
			continue
		}
		fmt.Fprintf(stdout, "  %-16s measured %s\n", name, prof.Point)
		shown++
	}
	if shown == 0 {
		fmt.Fprintln(stderr, "rumwizard: -verify profiled no methods")
		return 1
	}
	return 0
}
