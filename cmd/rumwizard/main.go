// Command rumwizard is the Section-5 "access method wizard": describe a
// workload and the hardware's RUM priorities, get a ranked list of access
// methods with suggested tuning — and optionally a measured validation of
// the top picks.
//
// Usage:
//
//	rumwizard -get 0.7 -insert 0.2 -update 0.1 -size 1000000
//	rumwizard -get 0.2 -insert 0.7 -flash         # endurance-limited device
//	rumwizard -range 0.6 -get 0.3 -memtight -verify
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/methods"
	"repro/internal/workload"
)

func main() {
	var (
		get      = flag.Float64("get", 0.5, "point query fraction")
		rng      = flag.Float64("range", 0.0, "range query fraction")
		insert   = flag.Float64("insert", 0.25, "insert fraction")
		update   = flag.Float64("update", 0.2, "update fraction")
		del      = flag.Float64("delete", 0.05, "delete fraction")
		size     = flag.Int("size", 1<<16, "expected record count")
		read     = flag.Float64("wr", 1, "priority weight on read cost")
		write    = flag.Float64("wu", 1, "priority weight on write cost")
		space    = flag.Float64("wm", 1, "priority weight on space")
		flash    = flag.Bool("flash", false, "endurance-limited storage: bias against write amplification")
		memtight = flag.Bool("memtight", false, "scarce memory: bias against space amplification")
		verify   = flag.Bool("verify", false, "profile the top 3 picks on the described workload")
		ops      = flag.Int("ops", 8000, "operations for -verify")
	)
	flag.Parse()

	req := core.Requirements{
		Mix:         workload.Mix{Get: *get, Range: *rng, Insert: *insert, Update: *update, Delete: *del},
		DataSize:    *size,
		Priorities:  core.Priorities{Read: *read, Write: *write, Space: *space},
		FlashLike:   *flash,
		MemoryTight: *memtight,
	}
	recs := core.Recommend(req)
	fmt.Println("Access-method wizard (predicted ranking, lower score = better):")
	fmt.Print(core.Explain(recs))

	if !*verify {
		return
	}
	fmt.Println("\nMeasured validation of the top picks:")
	opt := methods.Options{}
	catalogName := map[string]string{
		"btree": "btree", "hash": "hash", "lsm": "lsm-level", "zonemap": "zonemap",
		"sorted-column": "sorted-column", "unsorted-column": "unsorted-column", "cracking": "cracking",
	}
	shown := 0
	for _, r := range recs {
		if shown == 3 {
			break
		}
		name, ok := catalogName[r.Method]
		if !ok {
			continue
		}
		spec, err := methods.Lookup(opt, name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			continue
		}
		gen := workload.New(workload.Config{Seed: 1, Mix: req.Mix, InitialLen: *size, RangeLen: 1 << 30})
		prof, err := core.RunProfile(spec.New(), gen, *ops)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			continue
		}
		fmt.Printf("  %-16s measured %s\n", name, prof.Point)
		shown++
	}
}
