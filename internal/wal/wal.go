// Package wal adds a write-ahead log — and with it the DurableToCommit
// contract — on top of the btree and lsm access methods, paying the paper's
// update-overhead (UO) tax explicitly: every acknowledged mutation is first
// framed into an append-only log on the shared storage.Device, and a group
// commit makes a whole batch of mutations durable with a single simulated
// sync (one log append of freshly allocated pages).
//
// # Structure
//
// Logged wraps an inner access method (the "structure") with two volatile
// layers and one durable one:
//
//   - pending: mutations appended to the log buffer but not yet committed.
//     A group commit (Commit, or automatically every CommitBatch records)
//     encodes them into CRC32-framed log pages and writes those pages to
//     the device — the records are durable from that point on.
//   - overlay: every mutation since the last checkpoint, applied to an
//     in-memory map that shadows the inner structure on reads. The inner
//     structure itself is NOT touched between checkpoints, so the page
//     image its last checkpoint left on the device stays intact.
//   - the inner structure: absorbs the overlay only at a checkpoint
//     (Flush/Checkpoint), which makes it durable through its own barrier —
//     btree.CheckpointBarrier for the B+-tree, the manifest commit for the
//     LSM — then seals a checkpoint record opening a fresh log segment and
//     recycles every earlier log page.
//
// # Log format
//
// Each log page is one device page, allocated as auxiliary data:
//
//	bytes 0:4    magic "WALP"
//	bytes 4:8    CRC32 (IEEE) of bytes 8 : 28+used
//	bytes 8:16   sequence number (uint64, global, monotonic, starts at 1)
//	bytes 16:24  segment number (uint64, monotonic; the recycling unit)
//	bytes 24:28  used payload bytes (uint32)
//	bytes 28:    payload: records, never split across pages
//
// Records: upsert = kind 1, key, value (17 bytes); delete = kind 2, key
// (9 bytes); checkpoint = kind 3, uint16 blob length, blob — an opaque
// structure-specific anchor (the btree checkpoint root; empty for the LSM,
// whose manifest is self-anchoring). Log pages are append-only: a page,
// once written, is never rewritten, so a torn write can only damage pages
// whose records were never reported committed. Recovery (recover.go) sorts
// the CRC-valid pages by sequence number, adopts the newest checkpoint
// record as the anchor, rebuilds the inner structure at that anchor, and
// replays every later record into the overlay.
//
// # Failure discipline
//
// A failed commit or checkpoint poisons the log: the error is latched,
// every later mutation is refused (Insert and Commit return the error,
// Update and Delete report false), and reads keep serving. This keeps the
// committed records a strict prefix of the append order — retrying a torn
// append onto a new page could otherwise interleave durable and lost
// records. A poisoned log is abandoned, not repaired: recovery from the
// device image is the only way forward, exactly as after a crash.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"slices"

	"repro/internal/core"
	"repro/internal/rum"
	"repro/internal/storage"
)

const (
	walMagic  = 0x504C4157 // "WALP"
	walHeader = 28

	recUpsert     = 1
	recDelete     = 2
	recCheckpoint = 3

	upsertSize = 1 + core.KeySize + core.ValueSize
	deleteSize = 1 + core.KeySize
)

// Config tunes the log.
type Config struct {
	// CommitBatch is the group-commit knob: the number of appended records
	// that triggers an automatic commit. 1 syncs every mutation (strictest,
	// most expensive); larger batches amortize one log append + sync over
	// the whole group, at the price of a longer un-committed tail. 0
	// defaults to 1. The serving layer additionally commits at the end of
	// every shard mailbox batch, whichever comes first.
	CommitBatch int
	// CheckpointEvery triggers an automatic checkpoint once the overlay
	// holds this many distinct keys; 0 leaves checkpointing to explicit
	// Flush calls. Checkpoints bound both the overlay (memory overhead) and
	// the log length recovery must replay.
	CheckpointEvery int
}

func (c *Config) defaults() {
	if c.CommitBatch <= 0 {
		c.CommitBatch = 1
	}
}

// Stats counts log activity.
type Stats struct {
	// Commits counts group commits; Syncs counts simulated syncs (one per
	// commit and one per checkpoint record) — the denominator of the
	// group-commit amortization story.
	Commits, Syncs uint64
	// Checkpoints counts completed checkpoints (overlay absorbed, inner
	// barrier done, checkpoint record sealed, old segments recycled).
	Checkpoints uint64
	// LogPagesWritten and LogBytesWritten count cumulative appended log
	// traffic (bytes are header + payload, not page slack).
	LogPagesWritten, LogBytesWritten uint64
	// PagesRecycled counts log pages returned to the device after a
	// checkpoint superseded their segment.
	PagesRecycled uint64
	// LiveLogPages and OverlayRecords report the current footprint: log
	// pages not yet recycled, and overlay entries not yet absorbed.
	LiveLogPages, OverlayRecords int
}

// entry is one overlay slot: the newest uncheckpointed version of a key.
type entry struct {
	val  core.Value
	tomb bool
}

// logRecord is one data record bound for the log.
type logRecord struct {
	kind byte
	key  core.Key
	val  core.Value
}

// inner is the structure under the log: a full access method plus the three
// hooks the checkpoint protocol needs.
type inner interface {
	core.AccessMethod
	// validate rejects values the structure cannot represent (the LSM
	// tombstone) before they are acknowledged into the log.
	validate(v core.Value) error
	// apply installs one overlay entry during a checkpoint.
	apply(k core.Key, e entry) error
	// barrier makes the structure's current state durable on the device and
	// returns the opaque blob the checkpoint record stores to find that
	// state again at recovery.
	barrier() ([]byte, error)
}

// Logged is a write-ahead-logged access method (core.AccessMethod,
// core.Flusher). Not safe for concurrent use — in the serving layer each
// shard owns one instance, which is exactly what makes group commit free:
// the batch is already sitting in the shard's mailbox.
type Logged struct {
	in   inner
	pool *storage.BufferPool
	cfg  Config

	overlay map[core.Key]entry
	pending []logRecord
	count   int // logical record count (estimate under the LSM, like lsm.Len)

	seq       uint64 // last page sequence number issued
	seg       uint64 // current segment number
	livePages []storage.PageID
	committed uint64 // data records durably committed, in append order
	corrupt   error  // latched first failure: the log is poisoned

	stats Stats
}

// open wraps a freshly built structure and seals the initial checkpoint so
// recovery always finds an anchor, even before the first explicit Flush.
func open(pool *storage.BufferPool, in inner, cfg Config) (*Logged, error) {
	cfg.defaults()
	if pool.Device().PageSize()-walHeader < upsertSize+2 {
		return nil, fmt.Errorf("wal: page size %d too small for log records", pool.Device().PageSize())
	}
	l := &Logged{
		in:      in,
		pool:    pool,
		cfg:     cfg,
		overlay: make(map[core.Key]entry),
		count:   in.Len(),
	}
	if err := l.Checkpoint(); err != nil {
		return nil, err
	}
	return l, nil
}

// Name identifies the wrapper, its structure, and the group-commit batch.
func (l *Logged) Name() string {
	return fmt.Sprintf("wal(%s,b=%d)", l.in.Name(), l.cfg.CommitBatch)
}

// Len returns the number of live records (an estimate when the inner
// structure's own count is one, as the LSM's is).
func (l *Logged) Len() int { return l.count }

// Meter exposes the shared device meter: log appends surface as auxiliary
// write traffic next to the structure's own page writes.
func (l *Logged) Meter() *rum.Meter { return l.in.Meter() }

// Stats reports log activity counters.
func (l *Logged) Stats() Stats {
	s := l.stats
	s.LiveLogPages = len(l.livePages)
	s.OverlayRecords = len(l.overlay)
	return s
}

// Committed returns the number of data records made durable so far, in
// append order: after a crash, the first Committed() acknowledged mutations
// are guaranteed to survive recovery (faults.Committer — the watermark the
// DurableToCommit contract is checked against).
func (l *Logged) Committed() uint64 { return l.committed }

// Poisoned returns the latched error after a failed commit or checkpoint,
// or nil while the log is healthy.
func (l *Logged) Poisoned() error { return l.corrupt }

// Size adds the log's footprint to the structure's: live log pages, plus
// the volatile overlay and pending buffer, count as auxiliary bytes — the
// memory-overhead side of the durability tax.
func (l *Logged) Size() rum.SizeInfo {
	s := l.in.Size()
	s.AuxBytes += uint64(len(l.livePages)) * uint64(l.pool.Device().PageSize())
	s.AuxBytes += uint64(len(l.overlay)+len(l.pending)) * core.RecordSize
	return s
}

// lookup resolves k through the overlay, then the structure.
func (l *Logged) lookup(k core.Key) (core.Value, bool) {
	if e, ok := l.overlay[k]; ok {
		if e.tomb {
			return 0, false
		}
		return e.val, true
	}
	return l.in.Get(k)
}

// Get returns the value for k and whether it was found.
func (l *Logged) Get(k core.Key) (core.Value, bool) { return l.lookup(k) }

// Insert adds a new record: append to the log buffer, apply to the overlay,
// acknowledge. The record becomes durable at the next commit.
func (l *Logged) Insert(k core.Key, v core.Value) error {
	if l.corrupt != nil {
		return l.poisonedErr()
	}
	if err := l.in.validate(v); err != nil {
		return err
	}
	if _, ok := l.lookup(k); ok {
		return core.ErrKeyExists
	}
	l.pending = append(l.pending, logRecord{kind: recUpsert, key: k, val: v})
	l.overlay[k] = entry{val: v}
	l.count++
	l.maintain()
	return nil
}

// Update modifies an existing record, reporting whether it existed. A
// poisoned log refuses every mutation.
func (l *Logged) Update(k core.Key, v core.Value) bool {
	if l.corrupt != nil || l.in.validate(v) != nil {
		return false
	}
	if _, ok := l.lookup(k); !ok {
		return false
	}
	l.pending = append(l.pending, logRecord{kind: recUpsert, key: k, val: v})
	l.overlay[k] = entry{val: v}
	l.maintain()
	return true
}

// Delete removes a record, reporting whether it existed.
func (l *Logged) Delete(k core.Key) bool {
	if l.corrupt != nil {
		return false
	}
	if _, ok := l.lookup(k); !ok {
		return false
	}
	l.pending = append(l.pending, logRecord{kind: recDelete, key: k})
	l.overlay[k] = entry{tomb: true}
	l.count--
	l.maintain()
	return true
}

// RangeScan merges the overlay into the structure's ordered scan: overlay
// versions shadow structure versions, tombstones hide them, and overlay-only
// keys are emitted in their key-order position.
func (l *Logged) RangeScan(lo, hi core.Key, emit func(core.Key, core.Value) bool) int {
	keys := make([]core.Key, 0, len(l.overlay))
	for k := range l.overlay {
		if k >= lo && k <= hi {
			keys = append(keys, k)
		}
	}
	slices.Sort(keys)
	i, n := 0, 0
	stopped := false
	emitOverlay := func(k core.Key) bool {
		if e := l.overlay[k]; !e.tomb {
			n++
			if !emit(k, e.val) {
				return false
			}
		}
		return true
	}
	l.in.RangeScan(lo, hi, func(k core.Key, v core.Value) bool {
		for i < len(keys) && keys[i] < k {
			if !emitOverlay(keys[i]) {
				stopped = true
				return false
			}
			i++
		}
		if i < len(keys) && keys[i] == k {
			i++
			if !emitOverlay(k) {
				stopped = true
				return false
			}
			return true
		}
		n++
		if !emit(k, v) {
			stopped = true
			return false
		}
		return true
	})
	for !stopped && i < len(keys) {
		if !emitOverlay(keys[i]) {
			break
		}
		i++
	}
	return n
}

// maintain runs the automatic commit and checkpoint triggers after a
// mutation. Failures poison the log rather than un-acknowledge the mutation:
// the record is in the buffer either way, and the poison guarantees nothing
// after the failure point is ever reported durable.
func (l *Logged) maintain() {
	if l.corrupt == nil && len(l.pending) >= l.cfg.CommitBatch {
		_ = l.Commit()
	}
	if l.corrupt == nil && l.cfg.CheckpointEvery > 0 && len(l.overlay) >= l.cfg.CheckpointEvery {
		_ = l.Checkpoint()
	}
}

// Commit group-commits the pending records: one log append — freshly
// allocated, CRC-framed, append-only pages — and one simulated sync make the
// whole batch durable. An empty buffer commits for free.
func (l *Logged) Commit() error {
	if l.corrupt != nil {
		return l.poisonedErr()
	}
	if len(l.pending) == 0 {
		return nil
	}
	// The group's records are framed into page payloads first, then the
	// whole run of log pages is appended as one submission (appendPages):
	// on a multi-queue device a large commit group streams its pages at
	// queue depth instead of one append at a time.
	per := l.pool.Device().PageSize() - walHeader
	var payloads [][]byte
	payload := make([]byte, 0, per)
	for _, r := range l.pending {
		need := deleteSize
		if r.kind == recUpsert {
			need = upsertSize
		}
		if len(payload)+need > per {
			payloads = append(payloads, payload)
			payload = make([]byte, 0, per)
		}
		payload = append(payload, r.kind)
		payload = binary.LittleEndian.AppendUint64(payload, r.key)
		if r.kind == recUpsert {
			payload = binary.LittleEndian.AppendUint64(payload, r.val)
		}
	}
	if len(payload) > 0 {
		payloads = append(payloads, payload)
	}
	if err := l.appendPages(payloads); err != nil {
		l.poison(err)
		return err
	}
	l.committed += uint64(len(l.pending))
	l.pending = l.pending[:0]
	l.stats.Commits++
	l.stats.Syncs++
	return nil
}

// Checkpoint absorbs the overlay into the inner structure, makes the
// structure durable through its barrier, seals a checkpoint record that
// opens a fresh log segment, and only then recycles every earlier log page.
// The happens-before chain is strict: records committed, overlay applied,
// barrier durable, checkpoint record durable, old segments freed — a crash
// between any two steps leaves the previous checkpoint authoritative and
// every committed record still replayable.
func (l *Logged) Checkpoint() error {
	if l.corrupt != nil {
		return l.poisonedErr()
	}
	if err := l.Commit(); err != nil {
		return err
	}
	keys := make([]core.Key, 0, len(l.overlay))
	for k := range l.overlay {
		keys = append(keys, k)
	}
	slices.Sort(keys) // deterministic structure shape regardless of map order
	for _, k := range keys {
		if err := l.in.apply(k, l.overlay[k]); err != nil {
			l.poison(err)
			return err
		}
	}
	blob, err := l.in.barrier()
	if err != nil {
		l.poison(err)
		return err
	}
	per := l.pool.Device().PageSize() - walHeader
	if len(blob) > per-3 || len(blob) > 1<<16-1 {
		err := fmt.Errorf("wal: checkpoint blob of %d bytes does not fit a log page", len(blob))
		l.poison(err)
		return err
	}
	l.seg++
	payload := make([]byte, 0, 3+len(blob))
	payload = append(payload, recCheckpoint)
	payload = binary.LittleEndian.AppendUint16(payload, uint16(len(blob)))
	payload = append(payload, blob...)
	old := l.livePages
	id, err := l.appendPage(payload)
	if err != nil {
		l.poison(err)
		return err
	}
	l.stats.Syncs++
	l.livePages = []storage.PageID{id}
	// Recycle: every log page of earlier segments is superseded by the
	// checkpoint record. Through the pool, so cached frames are evicted too.
	for _, p := range old {
		if l.pool.FreePage(p) == nil {
			l.stats.PagesRecycled++
		}
	}
	clear(l.overlay)
	l.stats.Checkpoints++
	return nil
}

// Flush checkpoints (core.Flusher). Errors poison the log and surface on
// the next mutation or Commit.
func (l *Logged) Flush() { _ = l.Checkpoint() }

// appendPages appends a run of framed log pages. On a clean multi-queue
// device the run goes through Device.WriteBatch — sequence numbers, page
// allocations, framing, stats, and livePages order are identical to the
// sequential path; only the charging (amortized at depth) and the submission
// shape change. On flat media, or with a fault injector armed, it degrades
// to per-page appendPage calls so fault consultation order and torn-page
// semantics are exactly the pre-batching ones.
func (l *Logged) appendPages(payloads [][]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	dev := l.pool.Device()
	if len(payloads) == 1 || dev.CostModel().Channels <= 1 || dev.Faulty() || dev.Crashed() {
		for _, payload := range payloads {
			id, err := l.appendPage(payload)
			if err != nil {
				return err
			}
			l.livePages = append(l.livePages, id)
		}
		return nil
	}
	ids := make([]storage.PageID, len(payloads))
	pages := make([][]byte, len(payloads))
	for i, payload := range payloads {
		pages[i] = l.framePage(payload)
		ids[i] = dev.Alloc(rum.Aux)
	}
	if err := dev.WriteBatch(ids, pages); err != nil {
		return err
	}
	for i, payload := range payloads {
		l.stats.LogPagesWritten++
		l.stats.LogBytesWritten += uint64(walHeader + len(payload))
		l.livePages = append(l.livePages, ids[i])
	}
	return nil
}

// framePage builds one CRC-framed log page image around payload, consuming
// the next sequence number.
func (l *Logged) framePage(payload []byte) []byte {
	page := make([]byte, l.pool.Device().PageSize())
	l.seq++
	binary.LittleEndian.PutUint32(page[0:4], walMagic)
	binary.LittleEndian.PutUint64(page[8:16], l.seq)
	binary.LittleEndian.PutUint64(page[16:24], l.seg)
	binary.LittleEndian.PutUint32(page[24:28], uint32(len(payload)))
	copy(page[walHeader:], payload)
	binary.LittleEndian.PutUint32(page[4:8], crc32.ChecksumIEEE(page[8:walHeader+len(payload)]))
	return page
}

// appendPage frames payload into a fresh log page and writes it to the
// device. The sequence number is consumed even on failure — sequence order
// is append order, holes included.
func (l *Logged) appendPage(payload []byte) (storage.PageID, error) {
	dev := l.pool.Device()
	page := l.framePage(payload)
	id := dev.Alloc(rum.Aux)
	if err := dev.Write(id, page); err != nil {
		return id, err
	}
	l.stats.LogPagesWritten++
	l.stats.LogBytesWritten += uint64(walHeader + len(payload))
	return id, nil
}

func (l *Logged) poison(err error) {
	if l.corrupt == nil {
		l.corrupt = err
	}
}

func (l *Logged) poisonedErr() error {
	return fmt.Errorf("wal: log poisoned by earlier failure: %w", l.corrupt)
}
