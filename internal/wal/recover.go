package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/core"
	"repro/internal/storage"
)

// Recovery reads the device image cold: every live page is probed for the
// log framing (magic, bounded used-length, CRC over the used region). A torn
// final append — the torn-write injector persists a prefix of the page —
// fails the CRC and is discarded wholesale: records never span pages, so
// dropping the page drops only records that were never reported committed.
// The CRC-valid pages, ordered by sequence number, are the log; the newest
// checkpoint record among them is the anchor. Pages older than the anchor
// are stale segments an interrupted recycle left behind; pages newer are the
// committed tail to replay. Everything invalid or stale is handed to the
// structure's recovery as garbage to free.

// scanResult is the decoded state of the on-device log.
type scanResult struct {
	keep     map[storage.PageID]bool // anchor + tail pages: the log's property
	keepList []storage.PageID        // same, in sequence order (anchor first)
	records  []logRecord             // data records after the anchor, in order
	blob     []byte                  // anchor checkpoint blob
	maxSeq   uint64                  // newest valid sequence number seen
	maxSeg   uint64                  // newest valid segment number seen
}

// walPage is one CRC-valid log page during recovery.
type walPage struct {
	id      storage.PageID
	seq     uint64
	seg     uint64
	payload []byte
}

// scanLog collects and orders the valid log pages and locates the anchor.
func scanLog(dev *storage.Device) (*scanResult, error) {
	var pages []walPage
	for _, id := range dev.LivePageIDs() {
		data, err := dev.Read(id)
		if err != nil {
			return nil, fmt.Errorf("wal: recovery read of page %d: %w", id, err)
		}
		if len(data) < walHeader || binary.LittleEndian.Uint32(data[0:4]) != walMagic {
			continue
		}
		used := int(binary.LittleEndian.Uint32(data[24:28]))
		if used > len(data)-walHeader {
			continue // header torn mid-write: length field is garbage
		}
		if binary.LittleEndian.Uint32(data[4:8]) != crc32.ChecksumIEEE(data[8:walHeader+used]) {
			continue // torn or stale page
		}
		pages = append(pages, walPage{
			id:      id,
			seq:     binary.LittleEndian.Uint64(data[8:16]),
			seg:     binary.LittleEndian.Uint64(data[16:24]),
			payload: append([]byte(nil), data[walHeader:walHeader+used]...),
		})
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i].seq < pages[j].seq })

	res := &scanResult{keep: make(map[storage.PageID]bool)}
	anchor := -1
	for i, p := range pages {
		if p.seq > res.maxSeq {
			res.maxSeq = p.seq
		}
		if p.seg > res.maxSeg {
			res.maxSeg = p.seg
		}
		if len(p.payload) > 0 && p.payload[0] == recCheckpoint {
			anchor = i
		}
	}
	if anchor < 0 {
		return nil, fmt.Errorf("wal: no checkpoint record among %d valid log pages", len(pages))
	}
	ap := pages[anchor]
	if len(ap.payload) < 3 {
		return nil, fmt.Errorf("wal: checkpoint record on page %d truncated", ap.id)
	}
	n := int(binary.LittleEndian.Uint16(ap.payload[1:3]))
	if 3+n != len(ap.payload) {
		return nil, fmt.Errorf("wal: checkpoint record on page %d has blob length %d, payload %d", ap.id, n, len(ap.payload))
	}
	res.blob = ap.payload[3 : 3+n]
	res.keep[ap.id] = true
	res.keepList = append(res.keepList, ap.id)

	for _, p := range pages[anchor+1:] {
		recs, err := decodeRecords(p.payload)
		if err != nil {
			return nil, fmt.Errorf("wal: page %d: %w", p.id, err)
		}
		res.records = append(res.records, recs...)
		res.keep[p.id] = true
		res.keepList = append(res.keepList, p.id)
	}
	return res, nil
}

// decodeRecords parses one data page's payload.
func decodeRecords(payload []byte) ([]logRecord, error) {
	var recs []logRecord
	for off := 0; off < len(payload); {
		kind := payload[off]
		switch kind {
		case recUpsert:
			if off+upsertSize > len(payload) {
				return nil, fmt.Errorf("truncated upsert record at byte %d", off)
			}
			recs = append(recs, logRecord{
				kind: recUpsert,
				key:  binary.LittleEndian.Uint64(payload[off+1:]),
				val:  binary.LittleEndian.Uint64(payload[off+1+8:]),
			})
			off += upsertSize
		case recDelete:
			if off+deleteSize > len(payload) {
				return nil, fmt.Errorf("truncated delete record at byte %d", off)
			}
			recs = append(recs, logRecord{
				kind: recDelete,
				key:  binary.LittleEndian.Uint64(payload[off+1:]),
			})
			off += deleteSize
		default:
			return nil, fmt.Errorf("unknown record kind %d at byte %d", kind, off)
		}
	}
	return recs, nil
}

// reopen is the shared recovery driver: scan the log, rebuild the structure
// at the anchor (keeping the log's pages out of its orphan GC), replay the
// committed tail into the overlay, and resume appending in a fresh segment.
func reopen(pool *storage.BufferPool, cfg Config, build func(keep map[storage.PageID]bool, blob []byte) (inner, error)) (*Logged, error) {
	cfg.defaults()
	scan, err := scanLog(pool.Device())
	if err != nil {
		return nil, err
	}
	in, err := build(scan.keep, scan.blob)
	if err != nil {
		return nil, err
	}
	l := &Logged{
		in:        in,
		pool:      pool,
		cfg:       cfg,
		overlay:   make(map[core.Key]entry),
		count:     in.Len(),
		seq:       scan.maxSeq,
		seg:       scan.maxSeg + 1,
		livePages: scan.keepList,
		committed: uint64(len(scan.records)),
	}
	for _, r := range scan.records {
		switch r.kind {
		case recUpsert:
			_, existed := l.lookup(r.key)
			l.overlay[r.key] = entry{val: r.val}
			if !existed {
				l.count++
			}
		case recDelete:
			if _, existed := l.lookup(r.key); existed {
				l.count--
			}
			l.overlay[r.key] = entry{tomb: true}
		}
	}
	return l, nil
}
