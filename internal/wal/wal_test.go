package wal_test

import (
	"fmt"
	"testing"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/lsm"
	"repro/internal/storage"
	"repro/internal/wal"
)

func newStack(t *testing.T, pages int) (*storage.Device, *storage.BufferPool) {
	t.Helper()
	dev := storage.NewDevice(512, storage.SSD, nil)
	return dev, storage.NewBufferPool(dev, pages)
}

// builders for the two logged structures, so shared tests run over both.
type builder struct {
	name    string
	open    func(pool *storage.BufferPool, cfg wal.Config) (*wal.Logged, error)
	recover func(pool *storage.BufferPool, cfg wal.Config) (*wal.Logged, error)
}

func builders() []builder {
	return []builder{
		{
			name: "btree",
			open: func(pool *storage.BufferPool, cfg wal.Config) (*wal.Logged, error) {
				return wal.NewBTree(pool, btree.Config{}, cfg)
			},
			recover: func(pool *storage.BufferPool, cfg wal.Config) (*wal.Logged, error) {
				return wal.RecoverBTree(pool, btree.Config{}, cfg)
			},
		},
		{
			name: "lsm",
			open: func(pool *storage.BufferPool, cfg wal.Config) (*wal.Logged, error) {
				return wal.NewLSM(pool, lsm.Config{MemtableRecords: 16}, cfg)
			},
			recover: func(pool *storage.BufferPool, cfg wal.Config) (*wal.Logged, error) {
				return wal.RecoverLSM(pool, lsm.Config{MemtableRecords: 16}, cfg)
			},
		},
	}
}

// TestLoggedBasic drives the full mutation surface through the overlay and
// checks reads, scans, and Len against a model, across checkpoints.
func TestLoggedBasic(t *testing.T) {
	for _, b := range builders() {
		t.Run(b.name, func(t *testing.T) {
			_, pool := newStack(t, 16)
			l, err := b.open(pool, wal.Config{CommitBatch: 4})
			if err != nil {
				t.Fatal(err)
			}
			model := make(map[core.Key]core.Value)
			for k := core.Key(1); k <= 100; k++ {
				if err := l.Insert(k, k*10); err != nil {
					t.Fatalf("insert %d: %v", k, err)
				}
				model[k] = k * 10
			}
			if err := l.Insert(7, 1); err != core.ErrKeyExists {
				t.Fatalf("duplicate insert: got %v, want ErrKeyExists", err)
			}
			if !l.Update(7, 77) {
				t.Fatal("update of existing key failed")
			}
			model[7] = 77
			if l.Update(1000, 1) {
				t.Fatal("update of missing key succeeded")
			}
			if !l.Delete(13) {
				t.Fatal("delete of existing key failed")
			}
			delete(model, 13)
			if l.Delete(13) {
				t.Fatal("double delete succeeded")
			}
			if err := l.Checkpoint(); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
			// Mutate again after the checkpoint so reads mix overlay/inner.
			if !l.Update(2, 22) {
				t.Fatal("post-checkpoint update failed")
			}
			model[2] = 22
			if !l.Delete(3) {
				t.Fatal("post-checkpoint delete failed")
			}
			delete(model, 3)
			if err := l.Insert(13, 130); err != nil {
				t.Fatalf("re-insert of deleted key: %v", err)
			}
			model[13] = 130

			if l.Len() != len(model) {
				t.Fatalf("Len = %d, want %d", l.Len(), len(model))
			}
			for k, want := range model {
				if got, ok := l.Get(k); !ok || got != want {
					t.Fatalf("Get(%d) = %d,%v, want %d", k, got, ok, want)
				}
			}
			if _, ok := l.Get(3); ok {
				t.Fatal("deleted key served")
			}
			got := make(map[core.Key]core.Value)
			var prev core.Key
			n := l.RangeScan(0, ^core.Key(0), func(k core.Key, v core.Value) bool {
				if len(got) > 0 && k <= prev {
					t.Fatalf("scan out of order: %d after %d", k, prev)
				}
				prev = k
				got[k] = v
				return true
			})
			if n != len(model) || len(got) != len(model) {
				t.Fatalf("scan emitted %d (%d distinct), want %d", n, len(got), len(model))
			}
			for k, want := range model {
				if got[k] != want {
					t.Fatalf("scan value for %d = %d, want %d", k, got[k], want)
				}
			}
		})
	}
}

// TestLoggedRecovery crashes after committed-but-uncheckpointed mutations
// and requires recovery to serve exactly the model: the checkpointed state
// plus the committed tail replayed from the log.
func TestLoggedRecovery(t *testing.T) {
	for _, b := range builders() {
		t.Run(b.name, func(t *testing.T) {
			dev, pool := newStack(t, 16)
			l, err := b.open(pool, wal.Config{CommitBatch: 1})
			if err != nil {
				t.Fatal(err)
			}
			model := make(map[core.Key]core.Value)
			for k := core.Key(1); k <= 60; k++ {
				if err := l.Insert(k, k+1000); err != nil {
					t.Fatal(err)
				}
				model[k] = k + 1000
			}
			if err := l.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			// Committed tail after the checkpoint: inserts, updates, deletes.
			for k := core.Key(61); k <= 80; k++ {
				if err := l.Insert(k, k+2000); err != nil {
					t.Fatal(err)
				}
				model[k] = k + 2000
			}
			l.Update(5, 55)
			model[5] = 55
			l.Delete(6)
			delete(model, 6)

			// Crash: volatile state gone, device image as-is.
			pool.Crash()
			pool2 := storage.NewBufferPool(dev, 16)
			l2, err := b.recover(pool2, wal.Config{})
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			if l2.Len() != len(model) {
				t.Fatalf("recovered Len = %d, want %d", l2.Len(), len(model))
			}
			for k, want := range model {
				if got, ok := l2.Get(k); !ok || got != want {
					t.Fatalf("recovered Get(%d) = %d,%v, want %d", k, got, ok, want)
				}
			}
			if _, ok := l2.Get(6); ok {
				t.Fatal("deleted key survived recovery")
			}
			l2.RangeScan(0, ^core.Key(0), func(k core.Key, v core.Value) bool {
				if want, ok := model[k]; !ok || want != v {
					t.Fatalf("recovered scan served %d=%d, model says %d,%v", k, v, model[k], ok)
				}
				return true
			})
			// The recovered log must keep working: mutate, checkpoint, read.
			if err := l2.Insert(999, 9990); err != nil {
				t.Fatalf("post-recovery insert: %v", err)
			}
			if err := l2.Checkpoint(); err != nil {
				t.Fatalf("post-recovery checkpoint: %v", err)
			}
			if got, ok := l2.Get(999); !ok || got != 9990 {
				t.Fatal("post-recovery record lost")
			}
		})
	}
}

// TestSegmentRecycling checks the segment lifecycle: checkpoints recycle all
// earlier log pages, so the live log footprint stays bounded by the traffic
// since the last checkpoint instead of growing with history.
func TestSegmentRecycling(t *testing.T) {
	_, pool := newStack(t, 16)
	l, err := wal.NewBTree(pool, btree.Config{}, wal.Config{CommitBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	k := core.Key(0)
	for round := 0; round < 5; round++ {
		for i := 0; i < 50; i++ {
			k++
			if err := l.Insert(k, k); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if live := l.Stats().LiveLogPages; live != 1 {
			t.Fatalf("round %d: %d live log pages after checkpoint, want 1 (the checkpoint record)", round, live)
		}
	}
	st := l.Stats()
	if st.PagesRecycled == 0 {
		t.Fatal("no log pages recycled across 5 checkpoints")
	}
	if st.LogPagesWritten < 250 {
		t.Fatalf("LogPagesWritten = %d, want >= 250 with per-op commits", st.LogPagesWritten)
	}
}

// TestGroupCommitAmortization checks the knob does what the experiment
// claims: the sync count shrinks with the batch size.
func TestGroupCommitAmortization(t *testing.T) {
	syncs := func(batch int) uint64 {
		_, pool := newStack(t, 16)
		l, err := wal.NewBTree(pool, btree.Config{}, wal.Config{CommitBatch: batch})
		if err != nil {
			t.Fatal(err)
		}
		for k := core.Key(1); k <= 256; k++ {
			if err := l.Insert(k, k); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Commit(); err != nil {
			t.Fatal(err)
		}
		return l.Stats().Syncs
	}
	s1, s32 := syncs(1), syncs(32)
	if s1 < 256 {
		t.Fatalf("batch=1 syncs = %d, want >= 256", s1)
	}
	if s32 > s1/8 {
		t.Fatalf("batch=32 syncs = %d, batch=1 = %d: group commit is not amortizing", s32, s1)
	}
}

// TestTornTailTruncated is the recovery property test for torn final
// appends: with the torn-write injector armed, the last group commit's page
// is persisted only as a prefix. Recovery must detect the tear by CRC and
// truncate the log cleanly — the torn batch is recovered all-or-nothing
// (the tear can land past the used region, leaving the page whole), and the
// committed prefix survives exactly. No partial replay, ever.
func TestTornTailTruncated(t *testing.T) {
	for _, b := range builders() {
		for seed := uint64(1); seed <= 24; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", b.name, seed), func(t *testing.T) {
				dev, pool := newStack(t, 16)
				l, err := b.open(pool, wal.Config{CommitBatch: 8})
				if err != nil {
					t.Fatal(err)
				}
				for k := core.Key(1); k <= 40; k++ {
					if err := l.Insert(k, k*3); err != nil {
						t.Fatal(err)
					}
				}
				if got := l.Committed(); got != 40 {
					t.Fatalf("committed = %d, want 40 before the tear", got)
				}
				// Every write from here on is torn.
				dev.SetInjector(faults.New(faults.Plan{Seed: seed, PWrite: 1, PTorn: 1}))
				tornBatch := make([]core.Key, 0, 8)
				for k := core.Key(101); k <= 108; k++ {
					if err := l.Insert(k, k*3); err != nil {
						t.Fatal(err) // append is in-memory; the tear hits the commit
					}
					tornBatch = append(tornBatch, k)
				}
				if l.Poisoned() == nil {
					t.Fatal("torn commit did not poison the log")
				}
				if err := l.Insert(500, 1); err == nil {
					t.Fatal("poisoned log accepted an insert")
				}

				pool.Crash()
				dev.SetInjector(nil)
				pool2 := storage.NewBufferPool(dev, 16)
				l2, err := b.recover(pool2, wal.Config{})
				if err != nil {
					t.Fatalf("recover after torn tail: %v", err)
				}
				// Committed prefix: intact, exact values.
				for k := core.Key(1); k <= 40; k++ {
					if got, ok := l2.Get(k); !ok || got != k*3 {
						t.Fatalf("committed key %d = %d,%v after recovery, want %d", k, got, ok, k*3)
					}
				}
				// Torn batch: all-or-nothing, never a partial prefix replay.
				present := 0
				for _, k := range tornBatch {
					if got, ok := l2.Get(k); ok {
						if got != k*3 {
							t.Fatalf("torn-batch key %d recovered with garbage value %d", k, got)
						}
						present++
					}
				}
				if present != 0 && present != len(tornBatch) {
					t.Fatalf("torn batch partially replayed: %d of %d records", present, len(tornBatch))
				}
				// No garbage keys anywhere.
				l2.RangeScan(0, ^core.Key(0), func(k core.Key, v core.Value) bool {
					if k >= 1 && k <= 40 || k >= 101 && k <= 108 {
						return true
					}
					t.Fatalf("recovery served garbage key %d", k)
					return false
				})
			})
		}
	}
}

// TestCheckpointBoundsFootprint checks that a checkpoint actually returns
// log pages to the device: per-op commits inflate the live page set, the
// checkpoint collapses it back to the structure plus one checkpoint record.
func TestCheckpointBoundsFootprint(t *testing.T) {
	dev, pool := newStack(t, 16)
	l, err := wal.NewBTree(pool, btree.Config{}, wal.Config{CommitBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	for k := core.Key(1); k <= 40; k++ {
		if err := l.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	liveBefore := len(dev.LivePageIDs())
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if live := len(dev.LivePageIDs()); live >= liveBefore {
		t.Fatalf("checkpoint left %d live pages, had %d before: log pages were not recycled", live, liveBefore)
	}
}
