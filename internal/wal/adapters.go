package wal

import (
	"encoding/binary"
	"fmt"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/lsm"
	"repro/internal/storage"
)

// The two structures under the log differ in what their barrier is and what
// the checkpoint record must remember:
//
//   - B+-tree: the barrier is btree.CheckpointBarrier — a copy-on-write
//     publish without a reader view. The tree keeps no superblock, so the
//     checkpoint blob stores the barriered root page id; recovery validates
//     exactly that tree with btree.RecoverAt. The tree runs with at least
//     two retained versions: the reclamation lag guarantees the previous
//     barrier's pages are still byte-stable when a crash forces recovery
//     back to them, even mid-way through the next checkpoint.
//   - LSM: the barrier is the manifest commit lsm.Flush performs; the
//     manifest is generation-numbered and self-anchoring, so the blob is
//     empty and recovery is lsm.RecoverKeep (keep = the log's own pages).

// btreeWALConfig normalizes a tree config for life under the log: the
// copy-on-write discipline needs a retention window of at least two barriers
// (see above), and reader snapshots are not handed out, so Versions is a
// floor, not a choice.
func btreeWALConfig(cfg btree.Config) btree.Config {
	if cfg.Versions < 2 {
		cfg.Versions = 2
	}
	return cfg
}

type btreeInner struct{ *btree.Tree }

func (btreeInner) validate(core.Value) error { return nil }

func (b btreeInner) apply(k core.Key, e entry) error {
	if e.tomb {
		b.Tree.Delete(k)
		return nil
	}
	if b.Tree.Update(k, e.val) {
		return nil
	}
	return b.Tree.Insert(k, e.val)
}

func (b btreeInner) barrier() ([]byte, error) {
	if err := b.Tree.CheckpointBarrier(); err != nil {
		return nil, err
	}
	var blob [8]byte
	binary.LittleEndian.PutUint64(blob[:], uint64(b.Tree.Root()))
	return blob[:], nil
}

type lsmInner struct{ *lsm.Tree }

func (lsmInner) validate(v core.Value) error {
	if v == lsm.Tombstone {
		return fmt.Errorf("wal: value %d is the reserved lsm tombstone", v)
	}
	return nil
}

func (i lsmInner) apply(k core.Key, e entry) error {
	// The LSM's Delete and Insert adjust its count estimate unconditionally;
	// probing first keeps the estimate honest when a replayed record is
	// already absorbed in a newer manifest.
	_, exists := i.Tree.Get(k)
	switch {
	case e.tomb && exists:
		i.Tree.Delete(k)
	case e.tomb:
		// already gone: nothing to write
	case exists:
		i.Tree.Update(k, e.val)
	default:
		return i.Tree.Insert(k, e.val)
	}
	return nil
}

func (i lsmInner) barrier() ([]byte, error) {
	before := i.Tree.Stats().ManifestWrites
	i.Tree.Flush()
	if i.Tree.Stats().ManifestWrites == before {
		return nil, fmt.Errorf("wal: lsm manifest checkpoint did not commit")
	}
	return nil, nil
}

// NewBTree builds a fresh write-ahead-logged B+-tree on pool and seals its
// initial checkpoint. cfg.Versions is raised to the minimum retention the
// checkpoint protocol needs (2) if lower.
func NewBTree(pool *storage.BufferPool, cfg btree.Config, wcfg Config) (*Logged, error) {
	t, err := btree.New(pool, btreeWALConfig(cfg))
	if err != nil {
		return nil, err
	}
	return open(pool, btreeInner{t}, wcfg)
}

// RecoverBTree rebuilds a write-ahead-logged B+-tree from the device image
// under pool: newest checkpoint record, btree.RecoverAt at its root, log
// replay into the overlay. cfg must match the configuration the image was
// written under.
func RecoverBTree(pool *storage.BufferPool, cfg btree.Config, wcfg Config) (*Logged, error) {
	cfg = btreeWALConfig(cfg)
	return reopen(pool, wcfg, func(keep map[storage.PageID]bool, blob []byte) (inner, error) {
		if len(blob) != 8 {
			return nil, fmt.Errorf("wal: btree checkpoint blob is %d bytes, want 8", len(blob))
		}
		root := storage.PageID(binary.LittleEndian.Uint64(blob))
		t, err := btree.RecoverAt(pool, cfg, root, func(id storage.PageID) bool { return keep[id] })
		if err != nil {
			return nil, err
		}
		return btreeInner{t}, nil
	})
}

// NewLSM builds a fresh write-ahead-logged LSM-tree on pool and seals its
// initial checkpoint. The manifest is forced on (it is the LSM's barrier);
// snapshot versions are unsupported under the log.
func NewLSM(pool *storage.BufferPool, cfg lsm.Config, wcfg Config) (*Logged, error) {
	if cfg.Versions > 0 {
		return nil, fmt.Errorf("wal: lsm snapshot versions are unsupported under the write-ahead log")
	}
	cfg.Manifest = true
	return open(pool, lsmInner{lsm.New(pool, cfg)}, wcfg)
}

// RecoverLSM rebuilds a write-ahead-logged LSM-tree from the device image
// under pool: newest checkpoint record, lsm.RecoverKeep (the manifest finds
// its own newest generation), log replay into the overlay.
func RecoverLSM(pool *storage.BufferPool, cfg lsm.Config, wcfg Config) (*Logged, error) {
	if cfg.Versions > 0 {
		return nil, fmt.Errorf("wal: lsm snapshot versions are unsupported under the write-ahead log")
	}
	cfg.Manifest = true
	return reopen(pool, wcfg, func(keep map[storage.PageID]bool, blob []byte) (inner, error) {
		if len(blob) != 0 {
			return nil, fmt.Errorf("wal: lsm checkpoint blob is %d bytes, want 0", len(blob))
		}
		t, err := lsm.RecoverKeep(pool, cfg, func(id storage.PageID) bool { return keep[id] })
		if err != nil {
			return nil, err
		}
		return lsmInner{t}, nil
	})
}
