package rum

import "sync/atomic"

// AtomicMeter is the goroutine-safe counterpart of Meter for parallel
// workloads: every counter is an atomic, so concurrent operations may meter
// into one AtomicMeter without locks or data races.
//
// The single-threaded hot path of the repository stays on the plain Meter —
// atomics cost a serialized RMW per count and defeat the compiler's ability
// to coalesce adjacent counter updates. The intended pattern for parallel
// runs is per-goroutine plain Meters drained into a shared AtomicMeter with
// Merge, or direct atomic counting when per-shard meters are impractical.
// The zero value is ready to use.
type AtomicMeter struct {
	baseRead       atomic.Uint64
	auxRead        atomic.Uint64
	baseWritten    atomic.Uint64
	auxWritten     atomic.Uint64
	logicalRead    atomic.Uint64
	logicalWritten atomic.Uint64
	readOps        atomic.Uint64
	writeOps       atomic.Uint64
}

// CountRead records n physical bytes read from data of class c.
func (m *AtomicMeter) CountRead(c Class, n int) {
	if c == Base {
		m.baseRead.Add(uint64(n))
	} else {
		m.auxRead.Add(uint64(n))
	}
}

// CountWrite records n physical bytes written to data of class c.
func (m *AtomicMeter) CountWrite(c Class, n int) {
	if c == Base {
		m.baseWritten.Add(uint64(n))
	} else {
		m.auxWritten.Add(uint64(n))
	}
}

// CountLogicalRead records n bytes of logically retrieved data and one read
// operation.
func (m *AtomicMeter) CountLogicalRead(n int) {
	m.logicalRead.Add(uint64(n))
	m.readOps.Add(1)
}

// CountLogicalWrite records n bytes of a logical update and one write
// operation.
func (m *AtomicMeter) CountLogicalWrite(n int) {
	m.logicalWritten.Add(uint64(n))
	m.writeOps.Add(1)
}

// Merge accumulates a plain Meter's counts — the drain step of the
// per-goroutine sharding pattern.
func (m *AtomicMeter) Merge(o Meter) {
	m.baseRead.Add(o.BaseRead)
	m.auxRead.Add(o.AuxRead)
	m.baseWritten.Add(o.BaseWritten)
	m.auxWritten.Add(o.AuxWritten)
	m.logicalRead.Add(o.LogicalRead)
	m.logicalWritten.Add(o.LogicalWritten)
	m.readOps.Add(o.ReadOps)
	m.writeOps.Add(o.WriteOps)
}

// Snapshot returns the current counters as a plain Meter. Each counter is
// loaded atomically; the combination is not a single atomic cut, which is
// the usual (and here acceptable) monitoring tradeoff.
func (m *AtomicMeter) Snapshot() Meter {
	return Meter{
		BaseRead:       m.baseRead.Load(),
		AuxRead:        m.auxRead.Load(),
		BaseWritten:    m.baseWritten.Load(),
		AuxWritten:     m.auxWritten.Load(),
		LogicalRead:    m.logicalRead.Load(),
		LogicalWritten: m.logicalWritten.Load(),
		ReadOps:        m.readOps.Load(),
		WriteOps:       m.writeOps.Load(),
	}
}

// Reset zeroes all counters (not atomically with respect to each other).
func (m *AtomicMeter) Reset() {
	m.baseRead.Store(0)
	m.auxRead.Store(0)
	m.baseWritten.Store(0)
	m.auxWritten.Store(0)
	m.logicalRead.Store(0)
	m.logicalWritten.Store(0)
	m.readOps.Store(0)
	m.writeOps.Store(0)
}
