// Package rum implements the accounting model of the RUM Conjecture
// (Athanassoulis et al., EDBT 2016): every access method is measured by its
// Read Overhead (read amplification), Update Overhead (write amplification),
// and Memory Overhead (space amplification).
//
// All three ratios are defined exactly as in Section 2 of the paper:
//
//   - RO = total bytes read (auxiliary + base) / bytes of logically retrieved data
//   - UO = total bytes physically written / bytes of the logical update
//   - MO = (auxiliary + base) bytes stored / base bytes stored
//
// The theoretical minimum for each is 1.0.
//
// A Meter accumulates the physical and logical byte counts that these ratios
// are computed from. Structures built on the simulated storage layer
// (internal/storage) feed the meter automatically, page by page; purely
// in-memory structures meter the logical bytes they touch.
package rum

import (
	"fmt"
	"math"
)

// LineSize is the minimum transfer unit charged for a discrete random
// access by in-memory structures. The paper's Section 4 observes that "the
// fundamental assumption that data has a minimum access granularity holds
// for all storage mediums today, including main memory"; 64 bytes is the
// ubiquitous cache-line size. Contiguous scans stream and are charged their
// exact bytes.
const LineSize = 64

// LineCost rounds a discrete random access of n bytes up to whole cache
// lines.
func LineCost(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + LineSize - 1) / LineSize * LineSize
}

// Class distinguishes base data (the stored relation itself) from auxiliary
// data (indexes, filters, metadata) when accounting accesses, as the paper's
// overhead definitions require.
type Class int

const (
	// Base is the main data stored in the system ("base data" in the paper).
	Base Class = iota
	// Aux is auxiliary data kept to accelerate access ("auxiliary data").
	Aux
)

// String returns "base" or "aux".
func (c Class) String() string {
	if c == Base {
		return "base"
	}
	return "aux"
}

// Meter accumulates physical and logical byte counts for one access method
// (or one level of a memory hierarchy). The zero value is ready to use.
// Meter is not safe for concurrent use; wrap it externally if needed.
type Meter struct {
	// Physical bytes read, split by data class.
	BaseRead uint64
	AuxRead  uint64
	// Physical bytes written, split by data class.
	BaseWritten uint64
	AuxWritten  uint64
	// Logical payload: bytes the caller asked to retrieve (results actually
	// returned) and bytes the caller asked to change.
	LogicalRead    uint64
	LogicalWritten uint64
	// Operation counters, useful for per-op averages.
	ReadOps  uint64
	WriteOps uint64
}

// CountRead records n physical bytes read from data of class c.
func (m *Meter) CountRead(c Class, n int) {
	if c == Base {
		m.BaseRead += uint64(n)
	} else {
		m.AuxRead += uint64(n)
	}
}

// CountWrite records n physical bytes written to data of class c.
func (m *Meter) CountWrite(c Class, n int) {
	if c == Base {
		m.BaseWritten += uint64(n)
	} else {
		m.AuxWritten += uint64(n)
	}
}

// CountLogicalRead records n bytes of logically retrieved data (the payload
// the query returned) and one read operation.
func (m *Meter) CountLogicalRead(n int) {
	m.LogicalRead += uint64(n)
	m.ReadOps++
}

// CountLogicalWrite records n bytes of a logical update and one write
// operation.
func (m *Meter) CountLogicalWrite(n int) {
	m.LogicalWritten += uint64(n)
	m.WriteOps++
}

// Add accumulates the counts of o into m.
func (m *Meter) Add(o Meter) {
	m.BaseRead += o.BaseRead
	m.AuxRead += o.AuxRead
	m.BaseWritten += o.BaseWritten
	m.AuxWritten += o.AuxWritten
	m.LogicalRead += o.LogicalRead
	m.LogicalWritten += o.LogicalWritten
	m.ReadOps += o.ReadOps
	m.WriteOps += o.WriteOps
}

// Reset zeroes all counters.
func (m *Meter) Reset() { *m = Meter{} }

// Snapshot returns a copy of the current counters.
func (m *Meter) Snapshot() Meter { return *m }

// Diff returns the counts accumulated since the earlier snapshot prev.
func (m *Meter) Diff(prev Meter) Meter {
	return Meter{
		BaseRead:       m.BaseRead - prev.BaseRead,
		AuxRead:        m.AuxRead - prev.AuxRead,
		BaseWritten:    m.BaseWritten - prev.BaseWritten,
		AuxWritten:     m.AuxWritten - prev.AuxWritten,
		LogicalRead:    m.LogicalRead - prev.LogicalRead,
		LogicalWritten: m.LogicalWritten - prev.LogicalWritten,
		ReadOps:        m.ReadOps - prev.ReadOps,
		WriteOps:       m.WriteOps - prev.WriteOps,
	}
}

// PhysicalRead returns the total physical bytes read (base + auxiliary).
func (m Meter) PhysicalRead() uint64 { return m.BaseRead + m.AuxRead }

// PhysicalWritten returns the total physical bytes written (base + auxiliary).
func (m Meter) PhysicalWritten() uint64 { return m.BaseWritten + m.AuxWritten }

// ReadAmplification returns RO: physical bytes read per logically retrieved
// byte. If nothing was logically read it returns 0 when nothing was
// physically read either, and +Inf otherwise (reads that retrieved nothing).
func (m Meter) ReadAmplification() float64 {
	return amplification(m.PhysicalRead(), m.LogicalRead)
}

// WriteAmplification returns UO: physical bytes written per logically updated
// byte, with the same edge-case conventions as ReadAmplification.
func (m Meter) WriteAmplification() float64 {
	return amplification(m.PhysicalWritten(), m.LogicalWritten)
}

func amplification(physical, logical uint64) float64 {
	if logical == 0 {
		if physical == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return float64(physical) / float64(logical)
}

// SizeInfo reports how much space an access method occupies, split by class.
type SizeInfo struct {
	BaseBytes uint64 // bytes holding the base data itself
	AuxBytes  uint64 // bytes holding auxiliary data (index nodes, filters, …)
}

// Total returns BaseBytes + AuxBytes.
func (s SizeInfo) Total() uint64 { return s.BaseBytes + s.AuxBytes }

// SpaceAmplification returns MO: total stored bytes divided by base bytes.
// An empty structure reports 1.0 (no overhead). A structure with auxiliary
// data but no base data reports +Inf, matching the paper's unbounded MO of
// the Prop-1 direct-address array.
func (s SizeInfo) SpaceAmplification() float64 {
	if s.BaseBytes == 0 {
		if s.AuxBytes == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return float64(s.Total()) / float64(s.BaseBytes)
}

// Add returns the element-wise sum of two SizeInfos.
func (s SizeInfo) Add(o SizeInfo) SizeInfo {
	return SizeInfo{BaseBytes: s.BaseBytes + o.BaseBytes, AuxBytes: s.AuxBytes + o.AuxBytes}
}

// Point is a position in RUM space: the three measured amplification factors.
// Each coordinate is >= 1 for a structure that does real work (the paper's
// theoretical minimum is 1.0 in every dimension).
type Point struct {
	R float64 // read amplification (RO)
	U float64 // write amplification (UO)
	M float64 // space amplification (MO)
}

// PointOf combines an access meter with a size report into a RUM point.
func PointOf(m Meter, s SizeInfo) Point {
	return Point{R: m.ReadAmplification(), U: m.WriteAmplification(), M: s.SpaceAmplification()}
}

// String formats the point as "R=… U=… M=…".
func (p Point) String() string {
	return fmt.Sprintf("R=%s U=%s M=%s", fmtAmp(p.R), fmtAmp(p.U), fmtAmp(p.M))
}

func fmtAmp(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case v >= 1000:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Dominates reports whether p is at least as good as q in every dimension and
// strictly better in at least one. The RUM Conjecture predicts that over the
// reachable configurations of any one tunable structure, no configuration
// dominates the whole frontier.
func (p Point) Dominates(q Point) bool {
	le := p.R <= q.R && p.U <= q.U && p.M <= q.M
	lt := p.R < q.R || p.U < q.U || p.M < q.M
	return le && lt
}

// cost converts an amplification factor into a non-negative "distance from
// optimal" on a log scale: amp 1.0 (optimal) costs 0, each doubling adds 1.
// Infinite amplification saturates at a large constant so projections stay
// renderable.
func cost(amp float64) float64 {
	const inf = 64 // 2^64 amplification: beyond anything measurable here
	if math.IsInf(amp, 1) || amp <= 0 {
		return inf
	}
	c := math.Log2(amp)
	if c < 0 {
		c = 0
	}
	if c > inf {
		c = inf
	}
	return c
}

// Barycentric projects the point onto the RUM triangle of Figures 1 and 3.
// The returned weights (wr, wu, wm) are each in [0,1] and sum to 1; a larger
// weight means the structure is more optimized for (i.e. closer to) that
// corner. The projection is the normalized inverse log-cost in each
// dimension, so a structure with RO=1 and huge UO, MO sits at the Read corner.
func (p Point) Barycentric() (wr, wu, wm float64) {
	// 1/(1+cost) maps optimal (cost 0) to 1 and saturated cost to ~0.
	or := 1 / (1 + cost(p.R))
	ou := 1 / (1 + cost(p.U))
	om := 1 / (1 + cost(p.M))
	sum := or + ou + om
	if sum == 0 {
		return 1.0 / 3, 1.0 / 3, 1.0 / 3
	}
	return or / sum, ou / sum, om / sum
}

// TriangleXY maps the point into 2-D coordinates of the RUM triangle as drawn
// in the paper: Read-optimized at the top (0.5, 1), Write-optimized at the
// bottom left (0, 0), Space-optimized at the bottom right (1, 0).
func (p Point) TriangleXY() (x, y float64) {
	wr, wu, wm := p.Barycentric()
	x = wr*0.5 + wu*0 + wm*1
	y = wr * 1
	return x, y
}

// Corner identifies the RUM corner a point is closest to.
type Corner int

const (
	// ReadOptimized is the top corner of the triangle (low RO).
	ReadOptimized Corner = iota
	// WriteOptimized is the bottom-left corner (low UO).
	WriteOptimized
	// SpaceOptimized is the bottom-right corner (low MO).
	SpaceOptimized
	// Balanced marks points with no dominant corner (the adaptive middle).
	Balanced
)

// String names the corner as in Figure 1.
func (c Corner) String() string {
	switch c {
	case ReadOptimized:
		return "read-optimized"
	case WriteOptimized:
		return "write-optimized"
	case SpaceOptimized:
		return "space-optimized"
	default:
		return "balanced"
	}
}

// Classify reports which corner of the RUM triangle the point belongs to.
// A point is Balanced when no barycentric weight exceeds the others by more
// than the tolerance 0.10.
func (p Point) Classify() Corner {
	wr, wu, wm := p.Barycentric()
	const tol = 0.10
	switch {
	case wr > wu+tol && wr > wm+tol:
		return ReadOptimized
	case wu > wr+tol && wu > wm+tol:
		return WriteOptimized
	case wm > wr+tol && wm > wu+tol:
		return SpaceOptimized
	default:
		return Balanced
	}
}
