package rum

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeterCounts(t *testing.T) {
	var m Meter
	m.CountRead(Base, 100)
	m.CountRead(Aux, 50)
	m.CountWrite(Base, 30)
	m.CountWrite(Aux, 20)
	m.CountLogicalRead(10)
	m.CountLogicalWrite(5)

	if m.BaseRead != 100 || m.AuxRead != 50 {
		t.Fatalf("reads: %d/%d", m.BaseRead, m.AuxRead)
	}
	if m.PhysicalRead() != 150 || m.PhysicalWritten() != 50 {
		t.Fatalf("totals: %d/%d", m.PhysicalRead(), m.PhysicalWritten())
	}
	if m.ReadOps != 1 || m.WriteOps != 1 {
		t.Fatalf("ops: %d/%d", m.ReadOps, m.WriteOps)
	}
	if got := m.ReadAmplification(); got != 15 {
		t.Fatalf("RO = %v, want 15", got)
	}
	if got := m.WriteAmplification(); got != 10 {
		t.Fatalf("UO = %v, want 10", got)
	}
}

func TestAmplificationEdgeCases(t *testing.T) {
	var m Meter
	if got := m.ReadAmplification(); got != 0 {
		t.Fatalf("empty meter RO = %v", got)
	}
	m.CountRead(Base, 10)
	if got := m.ReadAmplification(); !math.IsInf(got, 1) {
		t.Fatalf("reads without retrieval: RO = %v, want +Inf", got)
	}
}

func TestDiffAndAdd(t *testing.T) {
	var m Meter
	m.CountRead(Base, 100)
	snap := m.Snapshot()
	m.CountRead(Base, 40)
	m.CountWrite(Aux, 7)
	d := m.Diff(snap)
	if d.BaseRead != 40 || d.AuxWritten != 7 {
		t.Fatalf("diff: %+v", d)
	}
	var sum Meter
	sum.Add(snap)
	sum.Add(d)
	if sum != m.Snapshot() {
		t.Fatalf("snapshot+diff != meter: %+v vs %+v", sum, m)
	}
}

// TestDiffAddRoundTrip: for any two count sequences, meter = prefix + diff.
func TestDiffAddRoundTrip(t *testing.T) {
	f := func(a, b [6]uint16) bool {
		var m Meter
		m.CountRead(Base, int(a[0]))
		m.CountRead(Aux, int(a[1]))
		m.CountWrite(Base, int(a[2]))
		m.CountWrite(Aux, int(a[3]))
		m.CountLogicalRead(int(a[4]))
		m.CountLogicalWrite(int(a[5]))
		snap := m.Snapshot()
		m.CountRead(Base, int(b[0]))
		m.CountRead(Aux, int(b[1]))
		m.CountWrite(Base, int(b[2]))
		m.CountWrite(Aux, int(b[3]))
		m.CountLogicalRead(int(b[4]))
		m.CountLogicalWrite(int(b[5]))
		var sum Meter
		sum.Add(snap)
		sum.Add(m.Diff(snap))
		return sum == m.Snapshot()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceAmplification(t *testing.T) {
	cases := []struct {
		s    SizeInfo
		want float64
	}{
		{SizeInfo{}, 1},
		{SizeInfo{BaseBytes: 100}, 1},
		{SizeInfo{BaseBytes: 100, AuxBytes: 50}, 1.5},
		{SizeInfo{AuxBytes: 50}, math.Inf(1)},
	}
	for _, c := range cases {
		if got := c.s.SpaceAmplification(); got != c.want {
			t.Fatalf("%+v: MO = %v, want %v", c.s, got, c.want)
		}
	}
	a := SizeInfo{BaseBytes: 1, AuxBytes: 2}
	b := SizeInfo{BaseBytes: 3, AuxBytes: 4}
	if got := a.Add(b); got.BaseBytes != 4 || got.AuxBytes != 6 {
		t.Fatalf("Add: %+v", got)
	}
}

func TestPointClassify(t *testing.T) {
	cases := []struct {
		p    Point
		want Corner
	}{
		{Point{R: 1, U: 100, M: 100}, ReadOptimized},
		{Point{R: 100, U: 1, M: 100}, WriteOptimized},
		{Point{R: 100, U: 100, M: 1}, SpaceOptimized},
		{Point{R: 4, U: 4, M: 4}, Balanced},
	}
	for _, c := range cases {
		if got := c.p.Classify(); got != c.want {
			t.Fatalf("%v: corner %v, want %v", c.p, got, c.want)
		}
	}
}

func TestBarycentricSumsToOne(t *testing.T) {
	f := func(r, u, m uint16) bool {
		p := Point{R: 1 + float64(r), U: 1 + float64(u), M: 1 + float64(m)}
		wr, wu, wm := p.Barycentric()
		sum := wr + wu + wm
		return math.Abs(sum-1) < 1e-9 && wr >= 0 && wu >= 0 && wm >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBarycentricInfinity(t *testing.T) {
	p := Point{R: 1, U: math.Inf(1), M: math.Inf(1)}
	wr, wu, wm := p.Barycentric()
	if wr <= wu || wr <= wm {
		t.Fatalf("read-perfect point not read-dominant: %v %v %v", wr, wu, wm)
	}
	x, y := p.TriangleXY()
	if y < 0.9 {
		t.Fatalf("read-perfect point should be near the apex: x=%v y=%v", x, y)
	}
}

func TestDominates(t *testing.T) {
	a := Point{R: 1, U: 1, M: 1}
	b := Point{R: 2, U: 1, M: 1}
	if !a.Dominates(b) {
		t.Fatal("a should dominate b")
	}
	if b.Dominates(a) {
		t.Fatal("b should not dominate a")
	}
	if a.Dominates(a) {
		t.Fatal("a point must not dominate itself")
	}
}

func TestCornerStrings(t *testing.T) {
	for c, want := range map[Corner]string{
		ReadOptimized:  "read-optimized",
		WriteOptimized: "write-optimized",
		SpaceOptimized: "space-optimized",
		Balanced:       "balanced",
	} {
		if c.String() != want {
			t.Fatalf("%d: %q", c, c.String())
		}
	}
	if Base.String() != "base" || Aux.String() != "aux" {
		t.Fatal("class strings")
	}
}

func TestLineCost(t *testing.T) {
	cases := map[int]int{0: 0, -5: 0, 1: 64, 63: 64, 64: 64, 65: 128, 200: 256}
	for in, want := range cases {
		if got := LineCost(in); got != want {
			t.Fatalf("LineCost(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestRelativeWeights(t *testing.T) {
	pts := []Point{
		{R: 1, U: 100, M: 10},  // best reader
		{R: 100, U: 1, M: 10},  // best writer
		{R: 100, U: 100, M: 1}, // best storer
		{R: 10, U: 10, M: 10},  // middle
	}
	ws := RelativeWeights(pts)
	if len(ws) != 4 {
		t.Fatalf("len %d", len(ws))
	}
	for i, w := range ws {
		sum := w[0] + w[1] + w[2]
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("weights %d don't sum to 1: %v", i, w)
		}
	}
	if ws[0].Classify(0.05) != ReadOptimized {
		t.Fatalf("point 0: %v -> %v", ws[0], ws[0].Classify(0.05))
	}
	if ws[1].Classify(0.05) != WriteOptimized {
		t.Fatalf("point 1: %v", ws[1])
	}
	if ws[2].Classify(0.05) != SpaceOptimized {
		t.Fatalf("point 2: %v", ws[2])
	}
}

func TestRelativeWeightsDegenerate(t *testing.T) {
	if ws := RelativeWeights(nil); ws != nil {
		t.Fatal("nil input should return nil")
	}
	ws := RelativeWeights([]Point{{R: 5, U: 5, M: 5}})
	if math.Abs(ws[0][0]-1.0/3) > 1e-9 {
		t.Fatalf("single point should be centered: %v", ws[0])
	}
	// A constant cohort: every point centered.
	ws = RelativeWeights([]Point{{R: 2, U: 2, M: 2}, {R: 2, U: 2, M: 2}})
	for _, w := range ws {
		if w.Classify(0.05) != Balanced {
			t.Fatalf("constant cohort not balanced: %v", w)
		}
	}
}

func TestWeightsXY(t *testing.T) {
	read := Weights{1, 0, 0}
	if x, y := read.XY(); x != 0.5 || y != 1 {
		t.Fatalf("read corner at (%v,%v)", x, y)
	}
	write := Weights{0, 1, 0}
	if x, y := write.XY(); x != 0 || y != 0 {
		t.Fatalf("write corner at (%v,%v)", x, y)
	}
	space := Weights{0, 0, 1}
	if x, y := space.XY(); x != 1 || y != 0 {
		t.Fatalf("space corner at (%v,%v)", x, y)
	}
}

func TestPointString(t *testing.T) {
	p := Point{R: 2, U: math.Inf(1), M: 1234}
	s := p.String()
	if s == "" || len(s) < 10 {
		t.Fatalf("String: %q", s)
	}
}
