package rum

import (
	"sync"
	"testing"
)

// TestAtomicMeterConcurrent hammers one AtomicMeter from many goroutines and
// checks the totals are exact — run under -race this also proves safety.
func TestAtomicMeterConcurrent(t *testing.T) {
	var m AtomicMeter
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m.CountRead(Base, 64)
				m.CountRead(Aux, 16)
				m.CountWrite(Base, 32)
				m.CountLogicalRead(16)
				m.CountLogicalWrite(16)
			}
		}()
	}
	wg.Wait()
	got := m.Snapshot()
	const n = workers * perWorker
	want := Meter{
		BaseRead: 64 * n, AuxRead: 16 * n, BaseWritten: 32 * n,
		LogicalRead: 16 * n, LogicalWritten: 16 * n,
		ReadOps: n, WriteOps: n,
	}
	if got != want {
		t.Fatalf("concurrent totals: got %+v want %+v", got, want)
	}
	if ra := got.ReadAmplification(); ra != 5 {
		t.Fatalf("ReadAmplification = %v, want 5", ra)
	}
}

// TestAtomicMeterMerge drains per-goroutine plain Meters into a shared
// AtomicMeter — the documented sharding pattern.
func TestAtomicMeterMerge(t *testing.T) {
	var shared AtomicMeter
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local Meter
			for i := 0; i < 1000; i++ {
				local.CountWrite(Aux, 8)
				local.CountLogicalWrite(8)
			}
			shared.Merge(local)
		}()
	}
	wg.Wait()
	got := shared.Snapshot()
	if got.AuxWritten != 4*1000*8 || got.WriteOps != 4000 {
		t.Fatalf("merged totals wrong: %+v", got)
	}
	shared.Reset()
	if s := shared.Snapshot(); s != (Meter{}) {
		t.Fatalf("Reset left counts: %+v", s)
	}
}
