package rum

import (
	"math/rand"
	"sync"
	"testing"
)

// TestAtomicMeterConcurrent hammers one AtomicMeter from many goroutines and
// checks the totals are exact — run under -race this also proves safety.
func TestAtomicMeterConcurrent(t *testing.T) {
	var m AtomicMeter
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m.CountRead(Base, 64)
				m.CountRead(Aux, 16)
				m.CountWrite(Base, 32)
				m.CountLogicalRead(16)
				m.CountLogicalWrite(16)
			}
		}()
	}
	wg.Wait()
	got := m.Snapshot()
	const n = workers * perWorker
	want := Meter{
		BaseRead: 64 * n, AuxRead: 16 * n, BaseWritten: 32 * n,
		LogicalRead: 16 * n, LogicalWritten: 16 * n,
		ReadOps: n, WriteOps: n,
	}
	if got != want {
		t.Fatalf("concurrent totals: got %+v want %+v", got, want)
	}
	if ra := got.ReadAmplification(); ra != 5 {
		t.Fatalf("ReadAmplification = %v, want 5", ra)
	}
}

// TestAtomicMeterMerge drains per-goroutine plain Meters into a shared
// AtomicMeter — the documented sharding pattern.
func TestAtomicMeterMerge(t *testing.T) {
	var shared AtomicMeter
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local Meter
			for i := 0; i < 1000; i++ {
				local.CountWrite(Aux, 8)
				local.CountLogicalWrite(8)
			}
			shared.Merge(local)
		}()
	}
	wg.Wait()
	got := shared.Snapshot()
	if got.AuxWritten != 4*1000*8 || got.WriteOps != 4000 {
		t.Fatalf("merged totals wrong: %+v", got)
	}
	shared.Reset()
	if s := shared.Snapshot(); s != (Meter{}) {
		t.Fatalf("Reset left counts: %+v", s)
	}
}

// TestAtomicMeterEquivalence runs the same seeded mixed read/write workload
// through both counting strategies — per-goroutine plain Meters drained with
// Merge, and direct concurrent counting into one AtomicMeter — and requires
// identical totals. This is the invariant the parallel bench runner depends
// on: sharding the accounting must never change the numbers.
func TestAtomicMeterEquivalence(t *testing.T) {
	const workers = 8
	const perWorker = 5000
	work := func(seed int64, read func(Class, int), write func(Class, int), lread, lwrite func(int)) {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < perWorker; i++ {
			n := 1 + rng.Intn(4096)
			c := Base
			if rng.Intn(3) == 0 {
				c = Aux
			}
			switch rng.Intn(4) {
			case 0:
				read(c, n)
				lread(n)
			case 1:
				write(c, n)
				lwrite(n)
			case 2:
				read(c, n)
			default:
				write(c, n)
			}
		}
	}

	var sharded AtomicMeter
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			var local Meter
			work(seed, local.CountRead, local.CountWrite, local.CountLogicalRead, local.CountLogicalWrite)
			sharded.Merge(local)
		}(int64(w))
	}
	wg.Wait()

	var direct AtomicMeter
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			work(seed, direct.CountRead, direct.CountWrite, direct.CountLogicalRead, direct.CountLogicalWrite)
		}(int64(w))
	}
	wg.Wait()

	if s, d := sharded.Snapshot(), direct.Snapshot(); s != d {
		t.Fatalf("sharded Meters and direct AtomicMeter disagree:\nsharded %+v\ndirect  %+v", s, d)
	}
	if s := sharded.Snapshot(); s == (Meter{}) {
		t.Fatal("workload counted nothing")
	}
}
