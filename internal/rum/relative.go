package rum

import "math"

// Weights is a barycentric position in the RUM triangle: (read, write,
// space) affinities in [0,1] summing to 1.
type Weights [3]float64

// XY maps barycentric weights to the 2-D triangle coordinates used by the
// renderers: Read at (0.5, 1), Write at (0, 0), Space at (1, 0).
func (w Weights) XY() (x, y float64) {
	return w[0]*0.5 + w[2], w[0]
}

// Classify returns the corner with the dominant weight, or Balanced when no
// weight exceeds the others by more than tol.
func (w Weights) Classify(tol float64) Corner {
	switch {
	case w[0] > w[1]+tol && w[0] > w[2]+tol:
		return ReadOptimized
	case w[1] > w[0]+tol && w[1] > w[2]+tol:
		return WriteOptimized
	case w[2] > w[0]+tol && w[2] > w[1]+tol:
		return SpaceOptimized
	default:
		return Balanced
	}
}

// RelativeWeights positions each point in the triangle *relative to the
// cohort*, the way Figure 1 of the paper compares structures to each other
// rather than to the theoretical optimum of 1.0. Affinity in each dimension
// is the rank percentile of the point's amplification within the cohort
// (best amplification → 1, worst → 0; ties share their mean percentile),
// which is robust to the cohort's extreme outliers; the three affinities are
// then normalized to barycentric weights.
func RelativeWeights(points []Point) []Weights {
	n := len(points)
	if n == 0 {
		return nil
	}
	get := func(p Point, d int) float64 {
		switch d {
		case 0:
			return cost(p.R)
		case 1:
			return cost(p.U)
		default:
			return cost(p.M)
		}
	}
	out := make([]Weights, n)
	for d := 0; d < 3; d++ {
		for i, p := range points {
			ci := get(p, d)
			below, equal := 0, 0
			for _, q := range points {
				cq := get(q, d)
				switch {
				case cq < ci-1e-12:
					below++
				case math.Abs(cq-ci) <= 1e-12:
					equal++
				}
			}
			// Mean rank of the tie group, converted to a percentile where
			// lower amplification is better.
			rank := float64(below) + float64(equal-1)/2
			if n == 1 {
				out[i][d] = 0.5
			} else {
				out[i][d] = 1 - rank/float64(n-1)
			}
		}
	}
	for i := range out {
		sum := out[i][0] + out[i][1] + out[i][2]
		if sum <= 0 {
			out[i] = Weights{1.0 / 3, 1.0 / 3, 1.0 / 3}
			continue
		}
		out[i][0] /= sum
		out[i][1] /= sum
		out[i][2] /= sum
	}
	return out
}
