package methods

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// semantics captures the per-structure relaxations documented in the
// packages, so one contract test can drive every catalog entry.
type semantics struct {
	blindWrites bool // LSM: Insert never rejects, Update/Delete return true
	lossyValues bool // bitmap: values stored modulo cardinality
	card        uint64
}

func catalogSemantics(name string) semantics {
	switch name {
	case "lsm-level", "lsm-tier":
		return semantics{blindWrites: true}
	case "bitmap":
		return semantics{lossyValues: true, card: 16}
	default:
		return semantics{}
	}
}

// TestCatalogContract drives every catalog structure with the same random
// operation stream and cross-checks against a reference map, honoring each
// structure's documented semantics.
func TestCatalogContract(t *testing.T) {
	opt := Options{PageSize: 512, PoolPages: 16}
	for _, spec := range Catalog(opt) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			sem := catalogSemantics(spec.Name)
			am := spec.New()
			rng := rand.New(rand.NewSource(42))
			ref := map[uint64]uint64{}
			val := func() uint64 {
				v := rng.Uint64() >> 1
				if sem.lossyValues {
					v %= sem.card
				}
				return v
			}
			for i := 0; i < 4000; i++ {
				k := uint64(rng.Intn(1200))
				switch rng.Intn(5) {
				case 0: // insert
					v := val()
					if _, exists := ref[k]; exists {
						if sem.blindWrites {
							continue // blind stores treat this as overwrite; skip
						}
						if err := am.Insert(k, v); err != core.ErrKeyExists {
							t.Fatalf("op %d: dup insert err=%v", i, err)
						}
					} else {
						if err := am.Insert(k, v); err != nil {
							t.Fatalf("op %d: insert: %v", i, err)
						}
						ref[k] = v
					}
				case 1: // get
					v, ok := am.Get(k)
					rv, rok := ref[k]
					if ok != rok || (ok && v != rv) {
						t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", i, k, v, ok, rv, rok)
					}
				case 2: // update live keys only (blind stores require it)
					if _, ok := ref[k]; !ok {
						continue
					}
					v := val()
					if !am.Update(k, v) {
						t.Fatalf("op %d: update of live key failed", i)
					}
					ref[k] = v
				case 3: // delete live keys only
					if _, ok := ref[k]; !ok {
						continue
					}
					if !am.Delete(k) {
						t.Fatalf("op %d: delete of live key failed", i)
					}
					delete(ref, k)
				case 4: // range
					lo := uint64(rng.Intn(1200))
					hi := lo + uint64(rng.Intn(200))
					want := 0
					for rk := range ref {
						if rk >= lo && rk <= hi {
							want++
						}
					}
					got := am.RangeScan(lo, hi, func(k core.Key, v core.Value) bool {
						if rv, ok := ref[k]; !ok || rv != v {
							t.Fatalf("op %d: scan saw %d=%d", i, k, v)
						}
						return true
					})
					if got != want {
						t.Fatalf("op %d: range [%d,%d] emitted %d want %d", i, lo, hi, got, want)
					}
				}
				if am.Len() != len(ref) {
					t.Fatalf("op %d: Len %d want %d", i, am.Len(), len(ref))
				}
			}
			// Final sanity: flush and re-check a sample.
			am.Flush()
			for k, v := range ref {
				got, ok := am.Get(k)
				if !ok || got != v {
					t.Fatalf("final Get(%d) = %d,%v want %d", k, got, ok, v)
				}
				break
			}
			if am.Size().Total() == 0 && len(ref) > 0 {
				t.Fatal("zero size with live data")
			}
		})
	}
}

func TestLookup(t *testing.T) {
	opt := Options{}
	if _, err := Lookup(opt, "btree"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup(opt, "nope"); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestCatalogNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Catalog(Options{}) {
		if seen[s.Name] {
			t.Fatalf("duplicate catalog name %q", s.Name)
		}
		seen[s.Name] = true
		if s.New == nil {
			t.Fatalf("%s: nil constructor", s.Name)
		}
	}
	if len(seen) < 10 {
		t.Fatalf("catalog too small: %d", len(seen))
	}
}

func TestFlavorsRunnable(t *testing.T) {
	opt := Options{PageSize: 512, PoolPages: 8}
	flavors := Flavors(opt)
	if len(flavors) < 3 {
		t.Fatalf("flavors: %d", len(flavors))
	}
	for _, f := range flavors {
		am := f.New(nil)
		if err := am.Insert(1, 2); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if v, ok := am.Get(1); !ok || v != 2 {
			t.Fatalf("%s: get", f.Name)
		}
		if f.Score(workload.ReadHeavy) == f.Score(workload.WriteHeavy) &&
			f.Score(workload.ReadHeavy) == f.Score(workload.ScanHeavy) {
			t.Fatalf("%s: score is constant across mixes", f.Name)
		}
	}
}

func TestFlavorScoresSteerCorrectly(t *testing.T) {
	flavors := Flavors(Options{})
	score := map[string]func(workload.Mix) float64{}
	for _, f := range flavors {
		score[f.Name] = f.Score
	}
	if score["lsm"](workload.WriteHeavy) <= score["btree"](workload.WriteHeavy) {
		t.Fatal("write-heavy should favor lsm")
	}
	if score["btree"](workload.ReadHeavy) <= score["lsm"](workload.ReadHeavy) {
		t.Fatal("read-heavy should favor btree")
	}
	if score["zonemap"](workload.ScanHeavy) <= score["lsm"](workload.ScanHeavy) {
		t.Fatal("scan-heavy should favor zonemap")
	}
}
