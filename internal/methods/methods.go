// Package methods is the catalog of every access method in the repository,
// constructed with standard configurations and wrapped in core.Instrument so
// their RUM overheads are measured identically. The experiment harness
// (internal/bench), the binaries (cmd/...), and the examples all build
// structures through this package.
package methods

import (
	"fmt"

	"repro/internal/approx"
	"repro/internal/bitmap"
	"repro/internal/btree"
	"repro/internal/column"
	"repro/internal/core"
	"repro/internal/cracking"
	"repro/internal/faults"
	"repro/internal/hashindex"
	"repro/internal/lsm"
	"repro/internal/pbt"
	"repro/internal/rum"
	"repro/internal/skiplist"
	"repro/internal/storage"
	"repro/internal/trie"
	"repro/internal/wal"
	"repro/internal/workload"
	"repro/internal/zonemap"
)

// Options configures the simulated substrate under page-based structures.
type Options struct {
	// PageSize in bytes (default 4096).
	PageSize int
	// PoolPages is the buffer pool capacity — the MEM parameter of Table 1
	// (default 64).
	PoolPages int
	// Medium is the simulated storage technology (the zero value is RAM).
	Medium storage.Medium
	// IOBatch overrides the buffer pool's batch-submission width: how many
	// pages one vectored write-back or readahead submits together. 0 keeps
	// the pool default — the medium's channel parallelism, so multi-queue
	// media batch out of the box and flat media stay on exact per-page I/O.
	IOBatch int
	// Hook, when non-nil, observes every page event of every device and
	// buffer pool built through this Options (e.g. an *obs.Observer). The
	// default nil keeps the storage hot path untraced.
	Hook storage.Hook
	// Faults, when active, arms a seed-driven fault injector
	// (internal/faults) on every device built through this Options. Salt
	// the plan per structure (faults.Plan.Salted) when several share one
	// Options, or they will draw identical fault streams.
	Faults faults.Plan
	// RetryBudget is the buffer pool's transparent retry allowance for
	// transient device faults (0 = surface every fault to the caller).
	RetryBudget int
	// Versions, when positive, turns on MVCC snapshot retention for the
	// catalog's snapshot-capable structures (btree, lsm-level, lsm-tier):
	// each keeps up to Versions published versions readable. The default 0
	// builds them without snapshot support, exactly as before.
	Versions int
	// WAL, when true, builds the catalog's loggable structures (btree,
	// lsm-level, lsm-tier) behind a write-ahead log (internal/wal): every
	// mutation is framed into the log before it is acknowledged, upgrading
	// the durability contract to faults.DurableToCommit. WAL and Versions
	// are mutually exclusive — the log owns the checkpoint/epoch machinery
	// the MVCC read path would need to share.
	WAL bool
	// CommitBatch is the group-commit knob when WAL is on: the number of
	// logged records one commit (one simulated sync) amortizes over.
	// 0 defaults to 1 — sync every mutation.
	CommitBatch int
}

func (o *Options) defaults() {
	if o.PageSize <= 0 {
		o.PageSize = 4096
	}
	if o.PoolPages <= 0 {
		o.PoolPages = 64
	}
}

// NewPool builds a device + buffer pool reporting to meter.
func NewPool(opt Options, meter *rum.Meter) *storage.BufferPool {
	opt.defaults()
	dev := storage.NewDevice(opt.PageSize, opt.Medium, meter)
	pool := storage.NewBufferPool(dev, opt.PoolPages)
	if opt.Hook != nil {
		dev.SetHook(opt.Hook)
		pool.SetHook(opt.Hook)
	}
	if opt.Faults.Active() {
		dev.SetInjector(faults.New(opt.Faults))
	}
	if opt.IOBatch > 0 {
		pool.SetIOBatch(opt.IOBatch)
	}
	pool.SetRetryBudget(opt.RetryBudget)
	return pool
}

// NewBTree builds an instrumented B+-tree.
func NewBTree(opt Options, cfg btree.Config) *core.Instrumented {
	t, err := btree.New(NewPool(opt, nil), cfg)
	if err != nil {
		panic(fmt.Sprintf("methods: btree: %v", err))
	}
	return core.Instrument(t)
}

// NewHash builds an instrumented hash index.
func NewHash(opt Options, cfg hashindex.Config) *core.Instrumented {
	x, err := hashindex.New(NewPool(opt, nil), cfg)
	if err != nil {
		panic(fmt.Sprintf("methods: hash: %v", err))
	}
	return core.Instrument(x)
}

// NewLSM builds an instrumented LSM tree.
func NewLSM(opt Options, cfg lsm.Config) *core.Instrumented {
	return core.Instrument(lsm.New(NewPool(opt, nil), cfg))
}

// walConfig is the log tuning an Options selects: the caller's group-commit
// batch, with checkpoints bounding the overlay at a few thousand records so
// long runs neither hoard memory nor grow an unbounded replay tail.
func (o Options) walConfig() wal.Config {
	return wal.Config{CommitBatch: o.CommitBatch, CheckpointEvery: 4096}
}

// NewWALBTree builds an instrumented write-ahead-logged B+-tree
// (faults.DurableToCommit).
func NewWALBTree(opt Options, cfg btree.Config) *core.Instrumented {
	t, err := wal.NewBTree(NewPool(opt, nil), cfg, opt.walConfig())
	if err != nil {
		panic(fmt.Sprintf("methods: wal btree: %v", err))
	}
	return core.Instrument(t)
}

// NewWALLSM builds an instrumented write-ahead-logged LSM tree
// (faults.DurableToCommit). The log forces the manifest on — its checkpoint
// barrier is the manifest commit.
func NewWALLSM(opt Options, cfg lsm.Config) *core.Instrumented {
	t, err := wal.NewLSM(NewPool(opt, nil), cfg, opt.walConfig())
	if err != nil {
		panic(fmt.Sprintf("methods: wal lsm: %v", err))
	}
	return core.Instrument(t)
}

// NewSkiplist builds an instrumented skip list.
func NewSkiplist() *core.Instrumented {
	return core.Instrument(skiplist.New(1, 0.5, nil))
}

// NewTrie builds an instrumented radix trie.
func NewTrie(stride uint) *core.Instrumented {
	t, err := trie.New(stride, nil)
	if err != nil {
		panic(fmt.Sprintf("methods: trie: %v", err))
	}
	return core.Instrument(t)
}

// NewZoneMap builds an instrumented zone-mapped store.
func NewZoneMap(partition int) *core.Instrumented {
	return core.Instrument(zonemap.New(partition, nil))
}

// NewSortedColumn builds an instrumented sorted column.
func NewSortedColumn() *core.Instrumented {
	return core.Instrument(column.NewSorted(nil))
}

// NewUnsortedColumn builds an instrumented unsorted column.
func NewUnsortedColumn() *core.Instrumented {
	return core.Instrument(column.NewUnsorted(nil))
}

// NewCracking builds an instrumented cracked store.
func NewCracking(mergeThreshold int) *core.Instrumented {
	return core.Instrument(cracking.New(mergeThreshold, nil))
}

// NewPBT builds an instrumented partitioned B-tree.
func NewPBT(opt Options, cfg pbt.Config) *core.Instrumented {
	t, err := pbt.New(NewPool(opt, nil), cfg)
	if err != nil {
		panic(fmt.Sprintf("methods: pbt: %v", err))
	}
	return core.Instrument(t)
}

// NewApprox builds an instrumented approximate (quotient-filter) index.
func NewApprox(cfg approx.Config) *core.Instrumented {
	return core.Instrument(approx.New(cfg, nil))
}

// NewBitmap builds an instrumented bitmap index store.
func NewBitmap(cfg bitmap.Config) *core.Instrumented {
	return core.Instrument(bitmap.New(cfg, nil))
}

// Spec names a catalog entry and builds a fresh instance of it.
type Spec struct {
	Name   string
	Corner rum.Corner // the Figure-1 region the structure is expected in
	New    func() *core.Instrumented
}

// Catalog returns every access method in its standard configuration — the
// cast of Figure 1.
func Catalog(opt Options) []Spec {
	opt.defaults()
	if opt.WAL && opt.Versions > 0 {
		panic("methods: Options.WAL and Options.Versions are mutually exclusive")
	}
	return []Spec{
		{Name: "btree", Corner: rum.ReadOptimized, New: func() *core.Instrumented {
			if opt.WAL {
				return NewWALBTree(opt, btree.Config{})
			}
			return NewBTree(opt, btree.Config{Versions: opt.Versions})
		}},
		{Name: "hash", Corner: rum.ReadOptimized, New: func() *core.Instrumented {
			return NewHash(opt, hashindex.Config{})
		}},
		{Name: "skiplist", Corner: rum.ReadOptimized, New: func() *core.Instrumented {
			return NewSkiplist()
		}},
		{Name: "trie", Corner: rum.ReadOptimized, New: func() *core.Instrumented {
			return NewTrie(8)
		}},
		// The catalog LSMs carry no Bloom filters: Figure 1 plots the plain
		// LSM-tree; per-run filters are the Section-5 enhancement whose RUM
		// effect Figure 3 sweeps explicitly.
		{Name: "lsm-level", Corner: rum.WriteOptimized, New: func() *core.Instrumented {
			if opt.WAL {
				return NewWALLSM(opt, lsm.Config{MemtableRecords: 1024, SizeRatio: 10})
			}
			return NewLSM(opt, lsm.Config{MemtableRecords: 1024, SizeRatio: 10, Versions: opt.Versions})
		}},
		{Name: "lsm-tier", Corner: rum.WriteOptimized, New: func() *core.Instrumented {
			if opt.WAL {
				return NewWALLSM(opt, lsm.Config{MemtableRecords: 1024, SizeRatio: 10, Tiering: true})
			}
			return NewLSM(opt, lsm.Config{MemtableRecords: 1024, SizeRatio: 10, Tiering: true, Versions: opt.Versions})
		}},
		{Name: "zonemap", Corner: rum.SpaceOptimized, New: func() *core.Instrumented {
			return NewZoneMap(256)
		}},
		{Name: "bitmap", Corner: rum.SpaceOptimized, New: func() *core.Instrumented {
			return NewBitmap(bitmap.Config{Cardinality: 16, MergeThreshold: 64})
		}},
		{Name: "sorted-column", Corner: rum.SpaceOptimized, New: func() *core.Instrumented {
			return NewSortedColumn()
		}},
		{Name: "unsorted-column", Corner: rum.SpaceOptimized, New: func() *core.Instrumented {
			return NewUnsortedColumn()
		}},
		{Name: "cracking", Corner: rum.Balanced, New: func() *core.Instrumented {
			return NewCracking(1 << 16)
		}},
	}
}

// Lookup returns the catalog entry with the given name.
func Lookup(opt Options, name string) (Spec, error) {
	for _, s := range Catalog(opt) {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("methods: unknown access method %q", name)
}

// Flavors returns the shape set for the morphing engine (core.Morphing):
// a read-optimized B+-tree, a write-optimized LSM, and a space-optimized
// zone map, with mix-fitness scores steering the engine between them.
func Flavors(opt Options) []core.Flavor {
	opt.defaults()
	poolFor := func(meter *rum.Meter) *storage.BufferPool {
		return NewPool(opt, meter)
	}
	return []core.Flavor{
		{
			Name: "btree",
			New: func(meter *rum.Meter) core.AccessMethod {
				t, err := btree.New(poolFor(meter), btree.Config{})
				if err != nil {
					panic(err)
				}
				return t
			},
			Score: func(m workload.Mix) float64 {
				return m.Get + 1.2*m.Range - 0.5*(m.Insert+m.Update+m.Delete)
			},
		},
		{
			Name: "lsm",
			New: func(meter *rum.Meter) core.AccessMethod {
				return lsm.New(poolFor(meter), lsm.Config{MemtableRecords: 1024, SizeRatio: 8, BloomBitsPerKey: 10})
			},
			Score: func(m workload.Mix) float64 {
				return 1.5*(m.Insert+m.Update+m.Delete) + 0.3*m.Get
			},
		},
		{
			Name: "zonemap",
			New: func(meter *rum.Meter) core.AccessMethod {
				return zonemap.New(256, meter)
			},
			Score: func(m workload.Mix) float64 {
				return 1.5*m.Range + 0.2*m.Insert
			},
		},
	}
}
