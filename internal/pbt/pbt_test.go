package pbt

import (
	"math/rand"
	"testing"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/storage"
)

func newTree(t *testing.T, cfg Config) *Tree {
	t.Helper()
	dev := storage.NewDevice(512, storage.SSD, nil)
	pool := storage.NewBufferPool(dev, 32)
	tr, err := New(pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBasicOps(t *testing.T) {
	tr := newTree(t, Config{})
	if _, ok := tr.Get(1); ok {
		t.Fatal("get on empty")
	}
	if err := tr.Insert(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(1, 11); err != core.ErrKeyExists {
		t.Fatalf("dup: %v", err)
	}
	if v, ok := tr.Get(1); !ok || v != 10 {
		t.Fatal("get")
	}
	if !tr.Update(1, 20) {
		t.Fatal("update")
	}
	if !tr.Delete(1) {
		t.Fatal("delete")
	}
	if tr.Delete(1) || tr.Len() != 0 {
		t.Fatal("state after delete")
	}
}

func TestSealingAndMerging(t *testing.T) {
	tr := newTree(t, Config{PartitionRecords: 64, MergeFanIn: 3})
	const n = 1000
	for k := uint64(0); k < n; k++ {
		if err := tr.Insert(k, k*2); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Stats().Seals == 0 || tr.Stats().Merges == 0 {
		t.Fatalf("no structural activity: %+v", tr.Stats())
	}
	// Merging bounds the partition count.
	if tr.Partitions() > 3+2 {
		t.Fatalf("%d partitions", tr.Partitions())
	}
	for k := uint64(0); k < n; k++ {
		v, ok := tr.Get(k)
		if !ok || v != k*2 {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
	if tr.Len() != n {
		t.Fatalf("len %d", tr.Len())
	}
}

func TestCrossPartitionSemantics(t *testing.T) {
	tr := newTree(t, Config{PartitionRecords: 32, MergeFanIn: 100}) // no merges
	for k := uint64(0); k < 200; k++ {
		if err := tr.Insert(k, 1); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Partitions() < 4 {
		t.Fatalf("expected sealed partitions, have %d", tr.Partitions())
	}
	// Duplicate of a key now living in a sealed partition must be rejected.
	if err := tr.Insert(5, 9); err != core.ErrKeyExists {
		t.Fatalf("cross-partition dup: %v", err)
	}
	// Update and delete must reach sealed partitions.
	if !tr.Update(5, 99) {
		t.Fatal("cross-partition update")
	}
	if v, _ := tr.Get(5); v != 99 {
		t.Fatal("update not visible")
	}
	if !tr.Delete(5) {
		t.Fatal("cross-partition delete")
	}
	if _, ok := tr.Get(5); ok {
		t.Fatal("deleted key visible")
	}
	// Re-insert after delete works (no tombstone shadowing).
	if err := tr.Insert(5, 7); err != nil {
		t.Fatalf("reinsert: %v", err)
	}
	if v, _ := tr.Get(5); v != 7 {
		t.Fatal("reinsert value")
	}
}

func TestRandomizedAgainstMap(t *testing.T) {
	tr := newTree(t, Config{PartitionRecords: 48, MergeFanIn: 3})
	rng := rand.New(rand.NewSource(9))
	ref := map[uint64]uint64{}
	for i := 0; i < 10000; i++ {
		k := uint64(rng.Intn(2000))
		switch rng.Intn(5) {
		case 0:
			err := tr.Insert(k, k)
			if _, ok := ref[k]; ok != (err == core.ErrKeyExists) {
				t.Fatalf("op %d: insert consistency on %d: %v", i, k, err)
			}
			if err == nil {
				ref[k] = k
			}
		case 1:
			v, ok := tr.Get(k)
			rv, rok := ref[k]
			if ok != rok || (ok && v != rv) {
				t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", i, k, v, ok, rv, rok)
			}
		case 2:
			nv := rng.Uint64()
			if tr.Update(k, nv) {
				if _, ok := ref[k]; !ok {
					t.Fatalf("op %d: phantom update", i)
				}
				ref[k] = nv
			} else if _, ok := ref[k]; ok {
				t.Fatalf("op %d: missed update", i)
			}
		case 3:
			_, want := ref[k]
			if tr.Delete(k) != want {
				t.Fatalf("op %d: delete(%d)", i, k)
			}
			delete(ref, k)
		case 4:
			lo := uint64(rng.Intn(2000))
			hi := lo + uint64(rng.Intn(150))
			want := 0
			for rk := range ref {
				if rk >= lo && rk <= hi {
					want++
				}
			}
			prev, first := uint64(0), true
			got := tr.RangeScan(lo, hi, func(k core.Key, v core.Value) bool {
				if !first && k <= prev {
					t.Fatalf("op %d: scan not ascending", i)
				}
				first, prev = false, k
				if ref[k] != v {
					t.Fatalf("op %d: scan value", i)
				}
				return true
			})
			if got != want {
				t.Fatalf("op %d: range emitted %d want %d", i, got, want)
			}
		}
		if tr.Len() != len(ref) {
			t.Fatalf("op %d: len %d want %d", i, tr.Len(), len(ref))
		}
	}
}

// TestWriteOptimization: per-insert page writes must undercut a single
// plain B-tree of the same total size (the structure's reason to exist).
func TestWriteOptimization(t *testing.T) {
	devP := storage.NewDevice(4096, storage.SSD, nil)
	poolP := storage.NewBufferPool(devP, 8)
	p, err := New(poolP, Config{PartitionRecords: 2048, MergeFanIn: 4})
	if err != nil {
		t.Fatal(err)
	}
	devB := storage.NewDevice(4096, storage.SSD, nil)
	poolB := storage.NewBufferPool(devB, 8)
	b, err := btree.New(poolB, btree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	const n = 20000
	for i := 0; i < n; i++ {
		k := rng.Uint64() >> 20
		_ = p.Insert(k, 1)
		_ = b.Insert(k, 1)
	}
	p.Flush()
	b.Flush()
	pw := devP.Stats().PageWrites
	bw := devB.Stats().PageWrites
	if pw >= bw {
		t.Fatalf("pbt should write fewer pages: pbt=%d btree=%d", pw, bw)
	}
}

func TestBulkLoad(t *testing.T) {
	tr := newTree(t, Config{PartitionRecords: 64})
	recs := make([]core.Record, 2000)
	for i := range recs {
		recs[i] = core.Record{Key: uint64(i * 2), Value: uint64(i)}
	}
	if err := tr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2000 {
		t.Fatalf("len %d", tr.Len())
	}
	// Layer inserts on top of the bulk.
	for k := uint64(1); k < 500; k += 2 {
		if err := tr.Insert(k, 7); err != nil {
			t.Fatal(err)
		}
	}
	if v, ok := tr.Get(3); !ok || v != 7 {
		t.Fatal("layered insert")
	}
	if v, ok := tr.Get(4); !ok || v != 2 {
		t.Fatal("bulk record")
	}
}

func TestKnobs(t *testing.T) {
	tr := newTree(t, Config{})
	if len(tr.Knobs()) != 2 {
		t.Fatal("knobs")
	}
	if err := tr.SetKnob("partition_records", 256); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetKnob("merge_fanin", 8); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetKnob("merge_fanin", 1); err == nil {
		t.Fatal("invalid fanin accepted")
	}
	if err := tr.SetKnob("zz", 2); err == nil {
		t.Fatal("unknown knob accepted")
	}
}

func TestAccessorsAndEarlyStop(t *testing.T) {
	tr := newTree(t, Config{PartitionRecords: 32, MergeFanIn: 100})
	if tr.Name() == "" || tr.Pool() == nil || tr.Meter() == nil {
		t.Fatal("accessors")
	}
	for k := uint64(0); k < 100; k++ {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	tr.Flush()
	if n := tr.RangeScan(0, ^uint64(0), func(core.Key, core.Value) bool { return false }); n != 1 {
		t.Fatalf("early stop emitted %d", n)
	}
	s := tr.Size()
	if s.BaseBytes != 100*core.RecordSize || s.AuxBytes == 0 {
		t.Fatalf("size %+v", s)
	}
}
