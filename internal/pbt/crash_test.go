package pbt

import (
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/storage"
)

// TestCrashContractDeclaredLossy: the partitioned B-tree keeps its partition
// directory (active, sealed, main) in memory only, so it has no recovery
// path — the crash checker must report that as the declared no-recovery
// contract, never a violation. The per-partition page images on the device
// are individually recoverable B-trees, but without a persisted directory
// there is no sound way to tell active from sealed from main; recovering
// them is future work (see ROADMAP.md).
func TestCrashContractDeclaredLossy(t *testing.T) {
	sub := faults.Subject{
		Open: func(pool *storage.BufferPool) (core.AccessMethod, error) {
			return New(pool, Config{PartitionRecords: 64})
		},
		Reopen:     nil, // no persisted partition directory: fully lossy
		Durability: faults.Lossy,
	}
	for seed := uint64(1); seed <= 10; seed++ {
		res := faults.CheckCrash(faults.CheckConfig{Seed: seed}, sub)
		if res.Verdict != faults.NoRecovery && res.Verdict != faults.NoCrash {
			t.Fatalf("seed %d: %s", seed, res)
		}
		if !res.Verdict.Acceptable() {
			t.Fatalf("seed %d: unacceptable verdict %s", seed, res)
		}
	}
}
