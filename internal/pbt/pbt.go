// Package pbt implements the Partitioned B-tree (Graefe, CIDR 2003), one of
// Section 4's write-optimized differential structures: inserts go into a
// small active B-tree partition, so they touch shallow, hot pages instead of
// a cold leaf of one large tree; full partitions are sealed and periodically
// merged into the main partition in bulk, consolidating updates exactly as
// the paper describes ("consolidate updates and apply them in bulk to the
// base data").
//
// Compared with the LSM-tree, the PBT keeps every partition a real B-tree:
// deletes and updates are performed in place in whichever partition holds
// the key (no tombstones), and uniqueness can be enforced by probing — the
// read-price of which is charged honestly on the insert path.
package pbt

import (
	"fmt"
	"sort"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/rum"
	"repro/internal/storage"
)

// Config tunes the tree.
type Config struct {
	// PartitionRecords seals the active partition at this size (default 1024).
	PartitionRecords int
	// MergeFanIn merges once this many sealed partitions exist (default 4).
	MergeFanIn int
	// BTree configures the per-partition trees.
	BTree btree.Config
}

func (c *Config) defaults() {
	if c.PartitionRecords <= 0 {
		c.PartitionRecords = 1024
	}
	if c.MergeFanIn < 2 {
		c.MergeFanIn = 4
	}
}

// Stats counts structural events.
type Stats struct {
	Seals  uint64
	Merges uint64
}

// Tree is a partitioned B-tree. All partitions share one buffer pool.
// Not safe for concurrent use.
type Tree struct {
	pool   *storage.BufferPool
	cfg    Config
	main   *btree.Tree   // merged bulk, oldest data (may be nil)
	sealed []*btree.Tree // immutable-by-convention, oldest first
	active *btree.Tree
	stats  Stats
}

// New creates an empty partitioned B-tree on pool.
func New(pool *storage.BufferPool, cfg Config) (*Tree, error) {
	cfg.defaults()
	active, err := btree.New(pool, cfg.BTree)
	if err != nil {
		return nil, err
	}
	return &Tree{pool: pool, cfg: cfg, active: active}, nil
}

// Name identifies the tree and its shape.
func (t *Tree) Name() string {
	return fmt.Sprintf("pbt(part=%d,fan=%d)", t.cfg.PartitionRecords, t.cfg.MergeFanIn)
}

// Len returns the number of records.
func (t *Tree) Len() int {
	n := t.active.Len()
	for _, p := range t.sealed {
		n += p.Len()
	}
	if t.main != nil {
		n += t.main.Len()
	}
	return n
}

// Partitions returns the current partition count (active + sealed + main).
func (t *Tree) Partitions() int {
	n := 1 + len(t.sealed)
	if t.main != nil {
		n++
	}
	return n
}

// Stats returns structural counters.
func (t *Tree) Stats() Stats { return t.stats }

// Pool returns the shared buffer pool.
func (t *Tree) Pool() *storage.BufferPool { return t.pool }

// Meter returns the shared device meter.
func (t *Tree) Meter() *rum.Meter { return t.pool.Device().Meter() }

// Size aggregates all partitions: records as base bytes, page overhead as
// auxiliary bytes.
func (t *Tree) Size() rum.SizeInfo {
	var s rum.SizeInfo
	for _, p := range t.partitions() {
		s = s.Add(p.Size())
	}
	// Re-split: records are base, everything else aux.
	base := uint64(t.Len()) * core.RecordSize
	total := s.Total()
	if base > total {
		base = total
	}
	return rum.SizeInfo{BaseBytes: base, AuxBytes: total - base}
}

// Flush writes all buffered dirty pages.
func (t *Tree) Flush() { t.pool.FlushAll() }

// partitions returns every partition, newest first.
func (t *Tree) partitions() []*btree.Tree {
	out := make([]*btree.Tree, 0, 2+len(t.sealed))
	out = append(out, t.active)
	for i := len(t.sealed) - 1; i >= 0; i-- {
		out = append(out, t.sealed[i])
	}
	if t.main != nil {
		out = append(out, t.main)
	}
	return out
}

// Get probes partitions newest to oldest.
func (t *Tree) Get(k core.Key) (core.Value, bool) {
	for _, p := range t.partitions() {
		if v, ok := p.Get(k); ok {
			return v, true
		}
	}
	return 0, false
}

// Insert adds a record to the active partition, enforcing uniqueness by
// probing every partition (the read-price of uniqueness in a differential
// structure, charged honestly).
func (t *Tree) Insert(k core.Key, v core.Value) error {
	for _, p := range t.partitions() {
		if p == t.active {
			continue // the active partition's own check happens on insert
		}
		if _, ok := p.Get(k); ok {
			return core.ErrKeyExists
		}
	}
	if err := t.active.Insert(k, v); err != nil {
		return err
	}
	if t.active.Len() >= t.cfg.PartitionRecords {
		t.seal()
	}
	return nil
}

// seal retires the active partition and starts a fresh one, merging when
// enough sealed partitions accumulated.
func (t *Tree) seal() {
	t.sealed = append(t.sealed, t.active)
	fresh, err := btree.New(t.pool, t.cfg.BTree)
	if err != nil {
		return
	}
	t.active = fresh
	t.stats.Seals++
	if len(t.sealed) >= t.cfg.MergeFanIn {
		t.merge()
	}
}

// merge consolidates every sealed partition (and the main partition) into a
// new main partition via a bulk build — the PBT's deferred, sequential
// write path.
func (t *Tree) merge() {
	victims := append([]*btree.Tree{}, t.sealed...)
	if t.main != nil {
		victims = append(victims, t.main)
	}
	var recs []core.Record
	for _, p := range victims {
		p.RangeScan(0, ^core.Key(0), func(k core.Key, v core.Value) bool {
			recs = append(recs, core.Record{Key: k, Value: v})
			return true
		})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
	merged, err := btree.New(t.pool, t.cfg.BTree)
	if err != nil {
		return
	}
	if err := merged.BulkLoad(recs); err != nil {
		return
	}
	for _, p := range victims {
		_ = p.Drop()
	}
	t.sealed = nil
	t.main = merged
	t.stats.Merges++
}

// Update modifies the record in place in whichever partition holds it.
func (t *Tree) Update(k core.Key, v core.Value) bool {
	for _, p := range t.partitions() {
		if p.Update(k, v) {
			return true
		}
	}
	return false
}

// Delete removes the record in place — no tombstones needed, every
// partition is a mutable B-tree.
func (t *Tree) Delete(k core.Key) bool {
	for _, p := range t.partitions() {
		if p.Delete(k) {
			return true
		}
	}
	return false
}

// RangeScan merges the partitions' sorted streams, emitting ascending keys.
func (t *Tree) RangeScan(lo, hi core.Key, emit func(core.Key, core.Value) bool) int {
	// Collect per-partition results (each sorted, mutually disjoint by key
	// uniqueness) and merge.
	var recs []core.Record
	for _, p := range t.partitions() {
		p.RangeScan(lo, hi, func(k core.Key, v core.Value) bool {
			recs = append(recs, core.Record{Key: k, Value: v})
			return true
		})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
	emitted := 0
	for _, r := range recs {
		emitted++
		if !emit(r.Key, r.Value) {
			break
		}
	}
	return emitted
}

// BulkLoad replaces the contents with the key-sorted recs as the main
// partition.
func (t *Tree) BulkLoad(recs []core.Record) error {
	for _, p := range t.partitions() {
		_ = p.Drop()
	}
	t.sealed = nil
	fresh, err := btree.New(t.pool, t.cfg.BTree)
	if err != nil {
		return err
	}
	t.active = fresh
	main, err := btree.New(t.pool, t.cfg.BTree)
	if err != nil {
		return err
	}
	if err := main.BulkLoad(recs); err != nil {
		return err
	}
	t.main = main
	return nil
}

// Knobs exposes the tunable parameters (core.Tunable).
func (t *Tree) Knobs() []core.Knob {
	return []core.Knob{
		{
			Name: "partition_records", Min: 64, Max: 1 << 20, Current: float64(t.cfg.PartitionRecords),
			Doc: "active partition size; larger = fewer seals and merges (lower UO) but more unmerged partitions to probe (higher RO)",
		},
		{
			Name: "merge_fanin", Min: 2, Max: 64, Current: float64(t.cfg.MergeFanIn),
			Doc: "sealed partitions before a merge; larger = lazier merging (lower UO, higher RO/MO)",
		},
	}
}

// SetKnob adjusts a tuning parameter (core.Tunable).
func (t *Tree) SetKnob(name string, value float64) error {
	switch name {
	case "partition_records":
		if value < 1 {
			return fmt.Errorf("pbt: partition_records must be >= 1")
		}
		t.cfg.PartitionRecords = int(value)
	case "merge_fanin":
		if value < 2 {
			return fmt.Errorf("pbt: merge_fanin must be >= 2")
		}
		t.cfg.MergeFanIn = int(value)
	default:
		return fmt.Errorf("pbt: unknown knob %q", name)
	}
	return nil
}
