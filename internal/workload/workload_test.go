package workload

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, Mix: Balanced, InitialLen: 100}
	a := New(cfg)
	b := New(cfg)
	ia, ib := a.InitialRecords(), b.InitialRecords()
	if len(ia) != len(ib) || len(ia) != 100 {
		t.Fatalf("initial lengths %d/%d", len(ia), len(ib))
	}
	for i := range ia {
		if ia[i] != ib[i] {
			t.Fatalf("initial record %d differs", i)
		}
	}
	for i := 0; i < 1000; i++ {
		oa, ob := a.Next(), b.Next()
		if oa != ob {
			t.Fatalf("op %d differs: %+v vs %+v", i, oa, ob)
		}
	}
}

func TestInitialKeysUnique(t *testing.T) {
	g := New(Config{Seed: 1, Mix: Balanced, InitialLen: 5000})
	seen := map[uint64]bool{}
	for _, op := range g.InitialRecords() {
		if op.Kind != OpInsert {
			t.Fatalf("initial op kind %v", op.Kind)
		}
		if seen[op.Key] {
			t.Fatalf("duplicate initial key %d", op.Key)
		}
		seen[op.Key] = true
	}
}

func TestMixFractions(t *testing.T) {
	g := New(Config{Seed: 3, Mix: Mix{Get: 0.5, Insert: 0.5}, InitialLen: 100})
	g.InitialRecords()
	counts := map[OpKind]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[g.Next().Kind]++
	}
	if counts[OpUpdate] != 0 || counts[OpDelete] != 0 || counts[OpRange] != 0 {
		t.Fatalf("unexpected kinds: %v", counts)
	}
	getFrac := float64(counts[OpGet]) / n
	if getFrac < 0.45 || getFrac > 0.55 {
		t.Fatalf("get fraction %v", getFrac)
	}
}

// TestLiveSetConsistency: updates and deletes only target keys previously
// inserted and not yet deleted; inserts are always fresh.
func TestLiveSetConsistency(t *testing.T) {
	g := New(Config{Seed: 7, Mix: Balanced, InitialLen: 200})
	live := map[uint64]bool{}
	for _, op := range g.InitialRecords() {
		live[op.Key] = true
	}
	for i := 0; i < 30000; i++ {
		op := g.Next()
		switch op.Kind {
		case OpInsert:
			if live[op.Key] {
				t.Fatalf("op %d: insert of live key %d", i, op.Key)
			}
			live[op.Key] = true
		case OpUpdate:
			if !live[op.Key] {
				t.Fatalf("op %d: update of dead key %d", i, op.Key)
			}
		case OpDelete:
			if !live[op.Key] {
				t.Fatalf("op %d: delete of dead key %d", i, op.Key)
			}
			delete(live, op.Key)
		case OpRange:
			if op.Hi < op.Key {
				t.Fatalf("op %d: inverted range", i)
			}
		}
	}
	if g.Live() != len(live) {
		t.Fatalf("generator live %d, model %d", g.Live(), len(live))
	}
}

func TestMissRatio(t *testing.T) {
	g := New(Config{Seed: 9, Mix: LookupOnly, InitialLen: 500, MissRatio: 0.5})
	live := map[uint64]bool{}
	for _, op := range g.InitialRecords() {
		live[op.Key] = true
	}
	misses := 0
	const n = 4000
	for i := 0; i < n; i++ {
		op := g.Next()
		if !live[op.Key] {
			misses++
		}
	}
	frac := float64(misses) / n
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("miss fraction %v", frac)
	}
}

func TestSequentialKeys(t *testing.T) {
	g := New(Config{Seed: 1, Mix: Mix{Insert: 1}, Keys: SequentialKeys})
	for i := uint64(0); i < 100; i++ {
		op := g.Next()
		if op.Key != i {
			t.Fatalf("sequential key %d != %d", op.Key, i)
		}
	}
}

func TestScatteredKeysStayInDomain(t *testing.T) {
	f := func(seed int64) bool {
		g := New(Config{Seed: seed, Mix: Mix{Insert: 1}, Domain: 1 << 20})
		for i := 0; i < 200; i++ {
			if g.Next().Key >= 1<<20 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAccessSkews(t *testing.T) {
	for _, acc := range []Access{UniformAccess, ZipfAccess, LatestAccess} {
		g := New(Config{Seed: 5, Mix: Mix{Get: 1}, InitialLen: 1000, Access: acc})
		g.InitialRecords()
		for i := 0; i < 500; i++ {
			op := g.Next()
			if op.Kind != OpGet {
				t.Fatalf("access %v: kind %v", acc, op.Kind)
			}
		}
	}
}

func TestEmptyMixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty mix did not panic")
		}
	}()
	New(Config{Seed: 1})
}

func TestFallbackToInsertWhenEmpty(t *testing.T) {
	// No initial records: gets/updates/deletes must degrade to inserts
	// rather than emit ops on nonexistent keys.
	g := New(Config{Seed: 2, Mix: Mix{Update: 1}})
	op := g.Next()
	if op.Kind != OpInsert {
		t.Fatalf("first op on empty store: %v", op.Kind)
	}
}

func TestRegisterLive(t *testing.T) {
	g := New(Config{Seed: 2, Mix: Mix{Update: 1}})
	g.RegisterLive(77)
	g.RegisterLive(77) // idempotent
	if g.Live() != 1 {
		t.Fatalf("live %d", g.Live())
	}
	op := g.Next()
	if op.Kind != OpUpdate || op.Key != 77 {
		t.Fatalf("op %+v", op)
	}
}

func TestStream(t *testing.T) {
	g := New(Config{Seed: 4, Mix: Balanced, InitialLen: 10})
	g.InitialRecords()
	ops := g.Stream(50)
	if len(ops) != 50 {
		t.Fatalf("stream length %d", len(ops))
	}
}

func TestOpKindString(t *testing.T) {
	names := map[OpKind]string{
		OpGet: "get", OpRange: "range", OpInsert: "insert", OpUpdate: "update", OpDelete: "delete",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%v", k)
		}
	}
}

func TestSplitmixIsInjectiveOnPrefix(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 100000; i++ {
		v := splitmix64(i)
		if seen[v] {
			t.Fatalf("collision at %d", i)
		}
		seen[v] = true
	}
}
