// Package workload generates deterministic operation streams — point
// queries, range queries, inserts, updates, and deletes over integer keys —
// matching the workload model of Section 2 of the paper. Generators are
// seeded and reproducible, so every experiment replays the same stream
// against every access method.
package workload

import (
	"fmt"
	"math/rand"
)

// OpKind enumerates the operation types of the paper's workload model.
type OpKind int

const (
	// OpGet is a point query.
	OpGet OpKind = iota
	// OpRange is a range query of a configured result size m.
	OpRange
	// OpInsert adds a fresh key.
	OpInsert
	// OpUpdate modifies an existing key's value.
	OpUpdate
	// OpDelete removes an existing key.
	OpDelete
	numOpKinds
)

// String names the operation.
func (k OpKind) String() string {
	switch k {
	case OpGet:
		return "get"
	case OpRange:
		return "range"
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Op is one generated operation. Hi is only meaningful for OpRange.
type Op struct {
	Kind  OpKind
	Key   uint64
	Hi    uint64
	Value uint64
}

// Mix gives the relative weight of each operation kind; weights need not sum
// to one.
type Mix struct {
	Get    float64
	Range  float64
	Insert float64
	Update float64
	Delete float64
}

// Canonical presets used across the experiments.
var (
	// ReadHeavy is 95% point reads, 5% updates (YCSB-B-like).
	ReadHeavy = Mix{Get: 0.95, Update: 0.05}
	// WriteHeavy is 10% reads, 60% inserts, 30% updates — the churn that
	// motivates write-optimized differential structures.
	WriteHeavy = Mix{Get: 0.10, Insert: 0.60, Update: 0.30}
	// ScanHeavy is 70% range scans, 25% point reads, 5% inserts — the
	// analytics pattern that motivates sparse indexes.
	ScanHeavy = Mix{Get: 0.25, Range: 0.70, Insert: 0.05}
	// Balanced is the canonical mixed workload used to place structures in
	// the RUM triangle (Figure 1): 45% reads, 10% ranges, 20% inserts,
	// 20% updates, 5% deletes.
	Balanced = Mix{Get: 0.45, Range: 0.10, Insert: 0.20, Update: 0.20, Delete: 0.05}
	// UpdateOnly exercises pure in-place modification.
	UpdateOnly = Mix{Update: 1}
	// LookupOnly exercises pure point reads.
	LookupOnly = Mix{Get: 1}
)

// KeyPattern controls how fresh insert keys are drawn.
type KeyPattern int

const (
	// ScatteredKeys draws unique keys scattered over a bounded domain
	// (a bijective scramble of a counter), the general case.
	ScatteredKeys KeyPattern = iota
	// SequentialKeys inserts 0,1,2,… — the pattern that favors append-style
	// and clustered structures.
	SequentialKeys
)

// Access controls which existing key a read/update/delete targets.
type Access int

const (
	// UniformAccess picks existing keys uniformly.
	UniformAccess Access = iota
	// ZipfAccess skews accesses to hot keys (s=1.1).
	ZipfAccess
	// LatestAccess skews accesses to recently inserted keys.
	LatestAccess
)

// Config describes a generated workload.
type Config struct {
	Seed       int64
	Mix        Mix
	Keys       KeyPattern
	Access     Access
	RangeLen   uint64  // key-span of a range query (result size for dense keys)
	Domain     uint64  // key domain size for ScatteredKeys (0 = 1<<40)
	MissRatio  float64 // fraction of point reads that target absent keys
	InitialLen int     // records preloaded before the stream starts
}

// Generator produces a deterministic operation stream and tracks the live
// key set so updates and deletes always target existing keys and inserts
// always use fresh keys.
type Generator struct {
	cfg     Config
	rng     *rand.Rand
	zipf    *rand.Zipf
	live    []uint64
	pos     map[uint64]int
	counter uint64
	cdf     [numOpKinds]float64
}

// New creates a generator for cfg. Call Preload (or replay InitialRecords)
// to populate the store it will drive.
func New(cfg Config) *Generator {
	if cfg.Domain == 0 {
		cfg.Domain = 1 << 40
	}
	if cfg.RangeLen == 0 {
		cfg.RangeLen = 128
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &Generator{
		cfg:  cfg,
		rng:  rng,
		pos:  make(map[uint64]int),
		zipf: rand.NewZipf(rng, 1.1, 1, 1<<20),
	}
	total := cfg.Mix.Get + cfg.Mix.Range + cfg.Mix.Insert + cfg.Mix.Update + cfg.Mix.Delete
	if total <= 0 {
		panic("workload: empty mix")
	}
	acc := 0.0
	for i, w := range []float64{cfg.Mix.Get, cfg.Mix.Range, cfg.Mix.Insert, cfg.Mix.Update, cfg.Mix.Delete} {
		acc += w / total
		g.cdf[i] = acc
	}
	return g
}

// splitmix64 is a bijective scramble used to generate unique scattered keys.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// freshKey returns a key never handed out before.
func (g *Generator) freshKey() uint64 {
	k := g.counter
	g.counter++
	if g.cfg.Keys == SequentialKeys {
		return k
	}
	return splitmix64(k) % g.cfg.Domain
}

// Live returns the number of keys currently live.
func (g *Generator) Live() int { return len(g.live) }

// LiveKeys returns a copy of the live key set (test support).
func (g *Generator) LiveKeys() []uint64 {
	out := make([]uint64, len(g.live))
	copy(out, g.live)
	return out
}

// InitialRecords returns cfg.InitialLen fresh records to preload the store
// with, registering them as live. It must be called exactly once, before Next.
func (g *Generator) InitialRecords() []Op {
	ops := make([]Op, 0, g.cfg.InitialLen)
	for i := 0; i < g.cfg.InitialLen; i++ {
		k := g.freshKey()
		g.addLive(k)
		ops = append(ops, Op{Kind: OpInsert, Key: k, Value: g.rng.Uint64()})
	}
	return ops
}

// RegisterLive adds k to the live key set without emitting an operation —
// used when a generator is attached to a store that already holds data.
func (g *Generator) RegisterLive(k uint64) {
	if _, ok := g.pos[k]; ok {
		return
	}
	g.addLive(k)
}

func (g *Generator) addLive(k uint64) {
	g.pos[k] = len(g.live)
	g.live = append(g.live, k)
}

func (g *Generator) removeLive(k uint64) {
	i, ok := g.pos[k]
	if !ok {
		return
	}
	last := len(g.live) - 1
	moved := g.live[last]
	g.live[i] = moved
	g.pos[moved] = i
	g.live = g.live[:last]
	delete(g.pos, k)
}

// pickLive chooses an existing key according to the configured access skew.
// It reports false when no keys are live.
func (g *Generator) pickLive() (uint64, bool) {
	n := len(g.live)
	if n == 0 {
		return 0, false
	}
	var idx int
	switch g.cfg.Access {
	case ZipfAccess:
		idx = int(g.zipf.Uint64()) % n
	case LatestAccess:
		// Exponential-ish skew toward the most recent tail.
		off := int(g.zipf.Uint64()) % n
		idx = n - 1 - off
	default:
		idx = g.rng.Intn(n)
	}
	return g.live[idx], true
}

// Next returns the next operation of the stream.
func (g *Generator) Next() Op {
	r := g.rng.Float64()
	kind := OpDelete
	for i := OpGet; i < numOpKinds; i++ {
		if r <= g.cdf[i] {
			kind = i
			break
		}
	}
	switch kind {
	case OpGet:
		if g.cfg.MissRatio > 0 && g.rng.Float64() < g.cfg.MissRatio {
			return Op{Kind: OpGet, Key: g.freshKey()}
		}
		if k, ok := g.pickLive(); ok {
			return Op{Kind: OpGet, Key: k}
		}
		return g.insertOp()
	case OpRange:
		if k, ok := g.pickLive(); ok {
			hi := k + g.cfg.RangeLen
			if hi < k { // overflow
				hi = ^uint64(0)
			}
			return Op{Kind: OpRange, Key: k, Hi: hi}
		}
		return g.insertOp()
	case OpInsert:
		return g.insertOp()
	case OpUpdate:
		if k, ok := g.pickLive(); ok {
			return Op{Kind: OpUpdate, Key: k, Value: g.rng.Uint64()}
		}
		return g.insertOp()
	default: // OpDelete
		if k, ok := g.pickLive(); ok {
			g.removeLive(k)
			return Op{Kind: OpDelete, Key: k}
		}
		return g.insertOp()
	}
}

func (g *Generator) insertOp() Op {
	k := g.freshKey()
	g.addLive(k)
	return Op{Kind: OpInsert, Key: k, Value: g.rng.Uint64()}
}

// Stream returns the next n operations.
func (g *Generator) Stream(n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = g.Next()
	}
	return ops
}
