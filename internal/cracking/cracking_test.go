package cracking

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func loaded(t *testing.T, n int, threshold int) *Store {
	t.Helper()
	s := New(threshold, nil)
	rng := rand.New(rand.NewSource(1))
	recs := make([]core.Record, n)
	perm := rng.Perm(n)
	for i, p := range perm {
		recs[i] = core.Record{Key: uint64(p), Value: uint64(p) * 2}
	}
	if err := s.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBasicOps(t *testing.T) {
	s := New(1<<20, nil)
	if _, ok := s.Get(1); ok {
		t.Fatal("get on empty")
	}
	if err := s.Insert(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(1, 11); err != core.ErrKeyExists {
		t.Fatalf("dup: %v", err)
	}
	if v, ok := s.Get(1); !ok || v != 10 {
		t.Fatal("get")
	}
	if !s.Update(1, 20) {
		t.Fatal("update")
	}
	if !s.Delete(1) {
		t.Fatal("delete")
	}
	if s.Delete(1) || s.Len() != 0 {
		t.Fatal("state after delete")
	}
}

func TestGetAfterCracking(t *testing.T) {
	s := loaded(t, 2000, 1<<20)
	for k := uint64(0); k < 2000; k += 7 {
		v, ok := s.Get(k)
		if !ok || v != k*2 {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
	if _, ok := s.Get(5000); ok {
		t.Fatal("phantom key")
	}
}

func TestPieceInvariants(t *testing.T) {
	s := loaded(t, 3000, 1<<20)
	rng := rand.New(rand.NewSource(2))
	for q := 0; q < 200; q++ {
		lo := uint64(rng.Intn(3000))
		s.RangeScan(lo, lo+50, func(core.Key, core.Value) bool { return true })
	}
	// Invariant: bounds sorted by key and by start; every record in a piece
	// respects its bounds.
	for i := 1; i < len(s.bounds); i++ {
		if s.bounds[i].key <= s.bounds[i-1].key {
			t.Fatalf("bounds keys not increasing at %d", i)
		}
		if s.bounds[i].start < s.bounds[i-1].start {
			t.Fatalf("bounds starts not monotone at %d", i)
		}
	}
	for bi, b := range s.bounds {
		end := len(s.recs)
		if bi+1 < len(s.bounds) {
			end = s.bounds[bi+1].start
		}
		var hi uint64 = ^uint64(0)
		if bi+1 < len(s.bounds) {
			hi = s.bounds[bi+1].key
		}
		for i := b.start; i < end; i++ {
			k := s.recs[i].Key
			if k < b.key || k >= hi {
				t.Fatalf("record %d (key %d) violates piece [%d,%d)", i, k, b.key, hi)
			}
		}
	}
}

func TestRandomizedAgainstMap(t *testing.T) {
	s := New(64, nil) // small threshold: exercise merges
	rng := rand.New(rand.NewSource(5))
	ref := map[uint64]uint64{}
	for i := 0; i < 8000; i++ {
		k := uint64(rng.Intn(1500))
		switch rng.Intn(5) {
		case 0:
			err := s.Insert(k, k)
			if _, ok := ref[k]; ok != (err == core.ErrKeyExists) {
				t.Fatalf("op %d: insert consistency on %d: %v", i, k, err)
			}
			if err == nil {
				ref[k] = k
			}
		case 1:
			v, ok := s.Get(k)
			rv, rok := ref[k]
			if ok != rok || (ok && v != rv) {
				t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", i, k, v, ok, rv, rok)
			}
		case 2:
			nv := rng.Uint64() >> 1
			if s.Update(k, nv) {
				if _, ok := ref[k]; !ok {
					t.Fatalf("op %d: phantom update", i)
				}
				ref[k] = nv
			} else if _, ok := ref[k]; ok {
				t.Fatalf("op %d: missed update", i)
			}
		case 3:
			_, want := ref[k]
			if s.Delete(k) != want {
				t.Fatalf("op %d: delete(%d) want %v", i, k, want)
			}
			delete(ref, k)
		case 4:
			lo := uint64(rng.Intn(1500))
			hi := lo + uint64(rng.Intn(100))
			want := 0
			for rk := range ref {
				if rk >= lo && rk <= hi {
					want++
				}
			}
			got := s.RangeScan(lo, hi, func(k core.Key, v core.Value) bool {
				if ref[k] != v {
					t.Fatalf("op %d: scan value of %d", i, k)
				}
				return true
			})
			if got != want {
				t.Fatalf("op %d: range [%d,%d] = %d want %d", i, lo, hi, got, want)
			}
		}
		if s.Len() != len(ref) {
			t.Fatalf("op %d: len %d want %d", i, s.Len(), len(ref))
		}
	}
}

func TestConvergence(t *testing.T) {
	s := loaded(t, 1<<14, 1<<20)
	costOf := func(queries int) uint64 {
		m0 := s.Meter().Snapshot()
		rng := rand.New(rand.NewSource(9))
		for q := 0; q < queries; q++ {
			lo := uint64(rng.Intn(1 << 14))
			s.RangeScan(lo, lo+32, func(core.Key, core.Value) bool { return true })
		}
		return s.Meter().Diff(m0).PhysicalRead() / uint64(queries)
	}
	early := costOf(20)
	_ = costOf(200) // keep cracking
	late := costOf(20)
	if late*5 > early {
		t.Fatalf("no convergence: early %d late %d", early, late)
	}
	if s.Stats().Cracks == 0 || s.Stats().Swaps == 0 {
		t.Fatal("no cracking work recorded")
	}
}

func TestDeleteThenReinsert(t *testing.T) {
	s := loaded(t, 100, 1<<20)
	if !s.Delete(50) {
		t.Fatal("delete")
	}
	if err := s.Insert(50, 999); err != nil {
		t.Fatalf("reinsert: %v", err)
	}
	if v, ok := s.Get(50); !ok || v != 999 {
		t.Fatalf("Get after reinsert = %d,%v", v, ok)
	}
	// The stale copy in the cracked column must stay hidden in scans too.
	seen := 0
	s.RangeScan(50, 50, func(k core.Key, v core.Value) bool {
		seen++
		if v != 999 {
			t.Fatalf("scan surfaced stale copy: %d", v)
		}
		return true
	})
	if seen != 1 {
		t.Fatalf("key 50 emitted %d times", seen)
	}
	// And merge must not resurrect it.
	s.merge()
	if v, ok := s.Get(50); !ok || v != 999 {
		t.Fatalf("after merge: %d,%v", v, ok)
	}
	if s.Len() != 100 {
		t.Fatalf("len %d", s.Len())
	}
}

func TestMergeFoldsPending(t *testing.T) {
	s := loaded(t, 100, 16)
	for k := uint64(1000); k < 1020; k++ {
		if err := s.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().Merges == 0 {
		t.Fatal("threshold 16 never merged")
	}
	if len(s.pending) >= 16 {
		t.Fatalf("pending %d after merges", len(s.pending))
	}
	for k := uint64(1000); k < 1020; k++ {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("key %d lost in merge", k)
		}
	}
}

func TestScanAscendingProperty(t *testing.T) {
	f := func(keys []uint16, q uint16) bool {
		s := New(1<<20, nil)
		seen := map[uint64]bool{}
		for _, k := range keys {
			if !seen[uint64(k)] {
				seen[uint64(k)] = true
				if err := s.Insert(uint64(k), 1); err != nil {
					return false
				}
			}
		}
		prev, first, ok := uint64(0), true, true
		s.RangeScan(uint64(q), uint64(q)+1000, func(k core.Key, v core.Value) bool {
			if !first && k <= prev {
				ok = false
				return false
			}
			first, prev = false, k
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFullRangeBoundary(t *testing.T) {
	s := loaded(t, 100, 1<<20)
	n := s.RangeScan(0, ^uint64(0), func(core.Key, core.Value) bool { return true })
	if n != 100 {
		t.Fatalf("full scan emitted %d", n)
	}
}

func TestKnobs(t *testing.T) {
	s := New(100, nil)
	if err := s.SetKnob("merge_threshold", 500); err != nil {
		t.Fatal(err)
	}
	if s.threshold != 500 {
		t.Fatal("knob not applied")
	}
	if err := s.SetKnob("merge_threshold", 0); err == nil {
		t.Fatal("invalid threshold accepted")
	}
	if err := s.SetKnob("y", 5); err == nil {
		t.Fatal("unknown knob accepted")
	}
}
