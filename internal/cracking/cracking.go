// Package cracking implements database cracking (Idreos, Kersten, Manegold,
// CIDR 2007), the paper's flagship *adaptive* access method in the middle of
// the RUM triangle: each incoming query physically partitions ("cracks") the
// column around its predicate bounds, so index structure accrues exactly
// where the workload looks. Early queries pay near-scan cost plus swap
// writes; repeated queries over the same region converge toward index-probe
// cost — read overhead is traded against update overhead and a slowly
// growing cracker index over time, the dynamic RUM behaviour of Section 4.
//
// Inserts are buffered in a pending tail that every query also scans;
// deletes are tombstoned; both are folded in by a full reorganization when
// the pending set passes a threshold (cracking literature calls this
// merging; the reorganization resets cracking progress for simplicity).
package cracking

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/rum"
)

// boundary marks that recs[start:] (up to the next boundary) holds keys
// >= key.
type boundary struct {
	key   core.Key
	start int
}

const boundarySize = 16 // key (8) + offset (8)

// Stats counts adaptive reorganization work.
type Stats struct {
	Cracks uint64 // partition operations performed
	Swaps  uint64 // record swaps during partitioning
	Merges uint64 // pending-tail reorganizations
}

// Store is a cracked column store. Not safe for concurrent use.
type Store struct {
	recs      []core.Record // the cracker column, physically reorganized
	bounds    []boundary    // cracker index, sorted by key; bounds[0] = {0,0}
	pending   []core.Record // buffered inserts, scanned by every query
	deleted   map[core.Key]bool
	count     int
	threshold int
	stats     Stats
	meter     *rum.Meter
}

// New creates an empty store that reorganizes once mergeThreshold records are
// pending (default 4096). A nil meter gets a private one.
func New(mergeThreshold int, meter *rum.Meter) *Store {
	if mergeThreshold < 1 {
		mergeThreshold = 4096
	}
	if meter == nil {
		meter = &rum.Meter{}
	}
	return &Store{
		bounds:    []boundary{{key: 0, start: 0}},
		deleted:   make(map[core.Key]bool),
		threshold: mergeThreshold,
		meter:     meter,
	}
}

// Name returns "cracking".
func (s *Store) Name() string { return "cracking" }

// Len returns the number of live records.
func (s *Store) Len() int { return s.count }

// Stats returns the adaptive work counters.
func (s *Store) Stats() Stats { return s.stats }

// Meter returns the RUM accounting.
func (s *Store) Meter() *rum.Meter { return s.meter }

// Pieces returns the number of cracked pieces (testing/experiments).
func (s *Store) Pieces() int { return len(s.bounds) }

// Size reports live records as base bytes; dead records still in the
// column, the pending tail, tombstones, and the cracker index as auxiliary
// bytes.
func (s *Store) Size() rum.SizeInfo {
	stored := uint64(len(s.recs)+len(s.pending))*core.RecordSize +
		uint64(len(s.bounds))*boundarySize +
		uint64(len(s.deleted))*8
	base := uint64(s.count) * core.RecordSize
	if base > stored {
		base = stored
	}
	return rum.SizeInfo{BaseBytes: base, AuxBytes: stored - base}
}

// pieceFor returns the index into bounds of the piece whose key range
// contains k, charging the binary probes on the cracker index.
func (s *Store) pieceFor(k core.Key) int {
	probes := 0
	i := sort.Search(len(s.bounds), func(i int) bool {
		probes++
		return s.bounds[i].key > k
	}) - 1
	s.meter.CountRead(rum.Aux, probes*rum.LineSize)
	return i
}

// crack partitions the column so that all keys < k precede position p and
// all keys >= k follow it, returning p. The partition work — reading the
// piece and swapping misplaced records — is the adaptive indexing cost.
func (s *Store) crack(k core.Key) int {
	bi := s.pieceFor(k)
	b := s.bounds[bi]
	if b.key == k {
		return b.start // already cracked on k
	}
	end := len(s.recs)
	if bi+1 < len(s.bounds) {
		end = s.bounds[bi+1].start
	}
	// Partition recs[b.start:end) around k.
	s.meter.CountRead(rum.Base, (end-b.start)*core.RecordSize)
	i, j := b.start, end-1
	swaps := uint64(0)
	for i <= j {
		for i <= j && s.recs[i].Key < k {
			i++
		}
		for i <= j && s.recs[j].Key >= k {
			j--
		}
		if i < j {
			s.recs[i], s.recs[j] = s.recs[j], s.recs[i]
			swaps++
			i++
			j--
		}
	}
	s.meter.CountWrite(rum.Base, int(swaps)*2*rum.LineSize)
	s.meter.CountWrite(rum.Aux, rum.LineCost(boundarySize))
	s.stats.Cracks++
	s.stats.Swaps += swaps
	// Insert the new boundary after bi.
	s.bounds = append(s.bounds, boundary{})
	copy(s.bounds[bi+2:], s.bounds[bi+1:])
	s.bounds[bi+1] = boundary{key: k, start: i}
	return i
}

// segment cracks out [lo, hi] and returns the covered slice indexes.
func (s *Store) segment(lo, hi core.Key) (int, int) {
	p1 := s.crack(lo)
	p2 := len(s.recs)
	if hi != ^core.Key(0) {
		p2 = s.crack(hi + 1)
	}
	return p1, p2
}

// scanPending charges a pass over the pending tail and returns the index of
// k in it, or -1.
func (s *Store) scanPending(k core.Key) int {
	s.meter.CountRead(rum.Base, len(s.pending)*core.RecordSize)
	for i, r := range s.pending {
		if r.Key == k {
			return i
		}
	}
	return -1
}

// Get cracks the column on [k, k+1) and scans the pending tail.
func (s *Store) Get(k core.Key) (core.Value, bool) {
	if i := s.scanPending(k); i >= 0 {
		return s.pending[i].Value, true
	}
	if s.deleted[k] {
		return 0, false
	}
	p1, p2 := s.segment(k, k)
	for i := p1; i < p2; i++ {
		s.meter.CountRead(rum.Base, core.RecordSize)
		if s.recs[i].Key == k {
			return s.recs[i].Value, true
		}
	}
	return 0, false
}

// Insert appends to the pending tail, reorganizing past the threshold.
func (s *Store) Insert(k core.Key, v core.Value) error {
	if i := s.scanPending(k); i >= 0 {
		return core.ErrKeyExists
	}
	if !s.deleted[k] {
		// Membership in the cracked column requires a (cracking) lookup.
		p1, p2 := s.segment(k, k)
		for i := p1; i < p2; i++ {
			s.meter.CountRead(rum.Base, core.RecordSize)
			if s.recs[i].Key == k {
				return core.ErrKeyExists
			}
		}
	}
	// A tombstone for k (if any) is kept: it hides the stale copy still
	// sitting in the cracked column, while the fresh record lives in the
	// pending tail, which every read consults first.
	s.pending = append(s.pending, core.Record{Key: k, Value: v})
	s.meter.CountWrite(rum.Base, rum.LineCost(core.RecordSize))
	s.count++
	if len(s.pending) >= s.threshold {
		s.merge()
	}
	return nil
}

// merge folds the pending tail and tombstones into a fresh column,
// resetting cracking progress.
func (s *Store) merge() {
	live := make([]core.Record, 0, len(s.recs)+len(s.pending))
	for _, r := range s.recs {
		if !s.deleted[r.Key] {
			live = append(live, r)
		}
	}
	live = append(live, s.pending...)
	s.meter.CountRead(rum.Base, (len(s.recs)+len(s.pending))*core.RecordSize)
	s.meter.CountWrite(rum.Base, len(live)*core.RecordSize)
	s.recs = live
	s.pending = nil
	s.deleted = make(map[core.Key]bool)
	s.bounds = []boundary{{key: 0, start: 0}}
	s.stats.Merges++
}

// Update overwrites the record in place (cracking to locate it).
func (s *Store) Update(k core.Key, v core.Value) bool {
	if i := s.scanPending(k); i >= 0 {
		s.pending[i].Value = v
		s.meter.CountWrite(rum.Base, rum.LineCost(core.RecordSize))
		return true
	}
	if s.deleted[k] {
		return false
	}
	p1, p2 := s.segment(k, k)
	for i := p1; i < p2; i++ {
		s.meter.CountRead(rum.Base, core.RecordSize)
		if s.recs[i].Key == k {
			s.recs[i].Value = v
			s.meter.CountWrite(rum.Base, rum.LineCost(core.RecordSize))
			return true
		}
	}
	return false
}

// Delete tombstones the record.
func (s *Store) Delete(k core.Key) bool {
	if i := s.scanPending(k); i >= 0 {
		last := len(s.pending) - 1
		s.pending[i] = s.pending[last]
		s.pending = s.pending[:last]
		s.meter.CountWrite(rum.Base, rum.LineCost(core.RecordSize))
		s.count--
		return true
	}
	if s.deleted[k] {
		return false
	}
	p1, p2 := s.segment(k, k)
	for i := p1; i < p2; i++ {
		s.meter.CountRead(rum.Base, core.RecordSize)
		if s.recs[i].Key == k {
			s.deleted[k] = true
			s.meter.CountWrite(rum.Aux, rum.LineCost(8))
			s.count--
			return true
		}
	}
	return false
}

// RangeScan cracks out [lo, hi]; the matching segment is contiguous but
// internally unordered, so it is sorted in memory before emission (CPU, not
// I/O), then merged with the pending tail.
func (s *Store) RangeScan(lo, hi core.Key, emit func(core.Key, core.Value) bool) int {
	p1, p2 := s.segment(lo, hi)
	s.meter.CountRead(rum.Base, (p2-p1)*core.RecordSize)
	out := make([]core.Record, 0, p2-p1)
	for i := p1; i < p2; i++ {
		if !s.deleted[s.recs[i].Key] {
			out = append(out, s.recs[i])
		}
	}
	s.meter.CountRead(rum.Base, len(s.pending)*core.RecordSize)
	for _, r := range s.pending {
		if r.Key >= lo && r.Key <= hi {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	emitted := 0
	for _, r := range out {
		emitted++
		if !emit(r.Key, r.Value) {
			break
		}
	}
	return emitted
}

// BulkLoad replaces the contents with recs (sorted or not: cracking does not
// care — structure accrues with queries).
func (s *Store) BulkLoad(recs []core.Record) error {
	s.recs = make([]core.Record, len(recs))
	copy(s.recs, recs)
	s.pending = nil
	s.deleted = make(map[core.Key]bool)
	s.bounds = []boundary{{key: 0, start: 0}}
	s.count = len(recs)
	s.meter.CountWrite(rum.Base, len(recs)*core.RecordSize)
	return nil
}

// Knobs exposes the tunable parameters (core.Tunable).
func (s *Store) Knobs() []core.Knob {
	return []core.Knob{{
		Name: "merge_threshold", Min: 16, Max: 1 << 20, Current: float64(s.threshold),
		Doc: "pending inserts before reorganization; higher = cheaper inserts (lower UO) but longer pending scans (higher RO)",
	}}
}

// SetKnob adjusts a tuning parameter (core.Tunable).
func (s *Store) SetKnob(name string, value float64) error {
	if name != "merge_threshold" {
		return fmt.Errorf("cracking: unknown knob %q", name)
	}
	if value < 1 {
		return fmt.Errorf("cracking: merge_threshold must be >= 1")
	}
	s.threshold = int(value)
	return nil
}
