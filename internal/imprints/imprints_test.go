package imprints

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func loadRandom(t *testing.T, n int, valueDomain int, seed int64) (*Index, []core.Record) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	recs := make([]core.Record, n)
	for i := range recs {
		recs[i] = core.Record{Key: uint64(i), Value: uint64(rng.Intn(valueDomain))}
	}
	x := New(nil)
	if err := x.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	return x, recs
}

func TestScanValuesExact(t *testing.T) {
	x, recs := loadRandom(t, 5000, 10000, 1)
	for _, rng := range [][2]uint64{{0, 100}, {5000, 6000}, {9990, 20000}, {3, 3}} {
		want := map[uint64]uint64{}
		for _, r := range recs {
			if r.Value >= rng[0] && r.Value <= rng[1] {
				want[r.Key] = r.Value
			}
		}
		got := map[uint64]uint64{}
		n := x.ScanValues(rng[0], rng[1], func(row core.Key, v core.Value) bool {
			got[row] = v
			return true
		})
		if n != len(want) || len(got) != len(want) {
			t.Fatalf("range %v: emitted %d want %d", rng, n, len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("range %v: row %d", rng, k)
			}
		}
	}
}

func TestScanValuesProperty(t *testing.T) {
	f := func(vals []uint16, lo, hi uint16) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		recs := make([]core.Record, len(vals))
		for i, v := range vals {
			recs[i] = core.Record{Key: uint64(i), Value: uint64(v)}
		}
		x := New(nil)
		if err := x.BulkLoad(recs); err != nil {
			return false
		}
		want := 0
		for _, v := range vals {
			if uint64(v) >= uint64(lo) && uint64(v) <= uint64(hi) {
				want++
			}
		}
		got := x.ScanValues(uint64(lo), uint64(hi), func(core.Key, core.Value) bool { return true })
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPruningOnUnsortedData: the point of imprints — selective value
// predicates over unsorted data read far fewer lines than a full scan.
func TestPruningOnUnsortedData(t *testing.T) {
	x, _ := loadRandom(t, 1<<16, 1<<30, 2) // wide domain: selective bins
	m0 := x.Meter().Snapshot()
	x.ScanValues(0, 1<<20, func(core.Key, core.Value) bool { return true }) // ~0.1% selectivity
	pruned := x.Meter().Diff(m0).BaseRead

	m0 = x.Meter().Snapshot()
	x.FullScan(0, 1<<20, func(core.Key, core.Value) bool { return true })
	full := x.Meter().Diff(m0).BaseRead
	if pruned*5 > full {
		t.Fatalf("imprints read %d of %d full-scan bytes", pruned, full)
	}
}

// TestIndexIsTiny: a few bits per record, per the paper.
func TestIndexIsTiny(t *testing.T) {
	x, _ := loadRandom(t, 1<<16, 1<<30, 3)
	aux := x.Size().AuxBytes
	perRecordBits := float64(aux*8) / float64(1<<16)
	if perRecordBits > 32 {
		t.Fatalf("imprint costs %.1f bits/record", perRecordBits)
	}
	if x.Size().SpaceAmplification() > 1.25 {
		t.Fatalf("MO %v", x.Size().SpaceAmplification())
	}
}

func TestRLECompressesClusteredValues(t *testing.T) {
	// Clustered values produce long identical-imprint runs.
	recs := make([]core.Record, 8192)
	for i := range recs {
		recs[i] = core.Record{Key: uint64(i), Value: uint64(i / 1024)} // 8 plateaus
	}
	clustered := New(nil)
	if err := clustered.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := range recs {
		recs[i].Value = uint64(rng.Intn(1 << 30))
	}
	random := New(nil)
	if err := random.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if clustered.Runs()*4 > random.Runs() {
		t.Fatalf("clustered runs %d not well below random %d", clustered.Runs(), random.Runs())
	}
}

func TestInsertAppends(t *testing.T) {
	x, recs := loadRandom(t, 1000, 10000, 5)
	for i := 0; i < 500; i++ {
		x.Insert(uint64(1000+i), uint64(i%10000))
	}
	if x.Len() != 1500 {
		t.Fatalf("len %d", x.Len())
	}
	// Appended records must be findable by value.
	found := 0
	x.ScanValues(0, 10000, func(row core.Key, v core.Value) bool {
		found++
		return true
	})
	if found != 1500 {
		t.Fatalf("scan found %d of 1500", found)
	}
	_ = recs
}

func TestEmptyAndEdge(t *testing.T) {
	x := New(nil)
	if n := x.ScanValues(0, ^uint64(0), func(core.Key, core.Value) bool { return true }); n != 0 {
		t.Fatalf("empty scan emitted %d", n)
	}
	x.Insert(1, 42)
	if n := x.ScanValues(42, 42, func(core.Key, core.Value) bool { return true }); n != 1 {
		t.Fatalf("single-record scan emitted %d", n)
	}
	if x.String() == "" {
		t.Fatal("string")
	}
}

func TestEarlyStop(t *testing.T) {
	x, _ := loadRandom(t, 1000, 100, 6)
	n := x.ScanValues(0, 100, func(core.Key, core.Value) bool { return false })
	if n != 1 {
		t.Fatalf("early stop emitted %d", n)
	}
}
