// Package imprints implements Column Imprints (Sidirourgos & Kersten,
// SIGMOD 2013), one of the space-optimized secondary indexes Section 4 of
// the paper cites: for every cache line of an *unclustered* column, a
// 64-bit imprint records which value bins occur in that line. A range
// predicate over the value compiles to a bitmask; only lines whose imprint
// intersects the mask are read.
//
// RUM position: the index is a few bits per record (consecutive identical
// imprints are run-length collapsed), appends extend it in O(1), and reads
// skip the bulk of a scan — space-optimized read pruning for value
// predicates, the same corner as zone maps but effective on *unsorted*
// data where zone min/max summaries cannot prune.
package imprints

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/rum"
)

// recordsPerLine is how many 16-byte records share one 64-byte cache line.
const recordsPerLine = rum.LineSize / core.RecordSize

// bins is the imprint width: one bit per value bin.
const bins = 64

// imprintEntry is one run of identical imprints (the paper's cache-line
// dictionary, simplified to RLE).
type imprintEntry struct {
	mask  uint64
	count uint32 // consecutive lines sharing the mask
}

// imprintEntrySize is the accounted footprint of one run: mask + counter.
const imprintEntrySize = 12

// Index is a column-imprints index over (row, value) records stored in
// arrival order. It is a *secondary* index: the native query is a value
// predicate (ScanValues); keys are row identifiers. Not safe for concurrent
// use.
type Index struct {
	recs    []core.Record
	edges   [bins - 1]uint64 // bin b holds values in (edges[b-1], edges[b]]
	sampled bool
	runs    []imprintEntry
	lastImp uint64 // imprint of the (possibly partial) last line
	meter   *rum.Meter
}

// New creates an empty index. Bin edges are sampled on the first BulkLoad;
// before that, values map by their high bits. A nil meter gets a private
// one.
func New(meter *rum.Meter) *Index {
	if meter == nil {
		meter = &rum.Meter{}
	}
	x := &Index{meter: meter}
	for i := range x.edges {
		// Default equi-width edges over the full domain.
		x.edges[i] = (uint64(i+1) << 58)
	}
	return x
}

// Name returns "imprints".
func (x *Index) Name() string { return "imprints" }

// Len returns the number of records.
func (x *Index) Len() int { return len(x.recs) }

// Meter returns the RUM accounting.
func (x *Index) Meter() *rum.Meter { return x.meter }

// Size reports records as base bytes and the imprint runs plus bin edges as
// auxiliary bytes.
func (x *Index) Size() rum.SizeInfo {
	return rum.SizeInfo{
		BaseBytes: uint64(len(x.recs)) * core.RecordSize,
		AuxBytes:  uint64(len(x.runs))*imprintEntrySize + (bins-1)*8,
	}
}

// Runs returns the number of RLE imprint runs (compression inspection).
func (x *Index) Runs() int { return len(x.runs) }

// binOf maps a value to its bin.
func (x *Index) binOf(v uint64) int {
	return sort.Search(bins-1, func(i int) bool { return v <= x.edges[i] })
}

// maskFor compiles a value range into an imprint bitmask.
func (x *Index) maskFor(vlo, vhi uint64) uint64 {
	lo, hi := x.binOf(vlo), x.binOf(vhi)
	var m uint64
	for b := lo; b <= hi; b++ {
		m |= 1 << b
	}
	return m
}

// appendImprint registers the imprint of a completed or partial last line.
func (x *Index) pushRun(mask uint64) {
	if n := len(x.runs); n > 0 && x.runs[n-1].mask == mask {
		x.runs[n-1].count++
		return
	}
	x.runs = append(x.runs, imprintEntry{mask: mask, count: 1})
}

// rebuildLastRun replaces the imprint of the last (partial) line.
func (x *Index) setLastLineMask(mask uint64) {
	n := len(x.runs)
	if n == 0 {
		x.pushRun(mask)
		return
	}
	last := &x.runs[n-1]
	if last.mask == mask {
		return
	}
	if last.count == 1 {
		x.runs = x.runs[:n-1]
	} else {
		last.count--
	}
	x.pushRun(mask)
}

// Insert appends a record, extending the last line's imprint in O(1) —
// the append-friendliness the paper credits imprints with.
func (x *Index) Insert(row core.Key, v core.Value) {
	x.recs = append(x.recs, core.Record{Key: row, Value: v})
	bit := uint64(1) << x.binOf(v)
	if (len(x.recs)-1)%recordsPerLine == 0 {
		// New line begins.
		x.lastImp = bit
		x.pushRun(bit)
	} else {
		x.lastImp |= bit
		x.setLastLineMask(x.lastImp)
	}
	x.meter.CountWrite(rum.Base, rum.LineCost(core.RecordSize))
	x.meter.CountWrite(rum.Aux, rum.LineCost(imprintEntrySize))
}

// BulkLoad replaces the contents with recs (any order — imprints do not
// need clustering), sampling bin edges from the data.
func (x *Index) BulkLoad(recs []core.Record) error {
	x.recs = make([]core.Record, len(recs))
	copy(x.recs, recs)
	x.runs = nil
	x.sampleEdges()
	for start := 0; start < len(x.recs); start += recordsPerLine {
		end := start + recordsPerLine
		if end > len(x.recs) {
			end = len(x.recs)
		}
		var mask uint64
		for _, r := range x.recs[start:end] {
			mask |= 1 << x.binOf(r.Value)
		}
		x.lastImp = mask
		x.pushRun(mask)
	}
	x.meter.CountWrite(rum.Base, len(recs)*core.RecordSize)
	x.meter.CountWrite(rum.Aux, len(x.runs)*imprintEntrySize)
	return nil
}

// sampleEdges picks 63 equi-depth bin edges from the loaded values.
func (x *Index) sampleEdges() {
	if len(x.recs) == 0 {
		x.sampled = false
		return
	}
	vals := make([]uint64, len(x.recs))
	for i, r := range x.recs {
		vals[i] = r.Value
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for i := range x.edges {
		x.edges[i] = vals[(i+1)*len(vals)/bins]
	}
	x.sampled = true
}

// ScanValues emits every record whose value lies in [vlo, vhi], in arrival
// order, reading only the cache lines whose imprint intersects the query
// mask. The imprint runs themselves are streamed (charged as auxiliary
// reads).
func (x *Index) ScanValues(vlo, vhi uint64, emit func(row core.Key, v core.Value) bool) int {
	mask := x.maskFor(vlo, vhi)
	x.meter.CountRead(rum.Aux, len(x.runs)*imprintEntrySize)
	emitted := 0
	line := 0
	for _, run := range x.runs {
		if run.mask&mask == 0 {
			line += int(run.count) // whole run pruned
			continue
		}
		for c := uint32(0); c < run.count; c++ {
			start := (line + int(c)) * recordsPerLine
			end := start + recordsPerLine
			if start >= len(x.recs) {
				break
			}
			if end > len(x.recs) {
				end = len(x.recs)
			}
			x.meter.CountRead(rum.Base, rum.LineSize)
			for _, r := range x.recs[start:end] {
				if r.Value >= vlo && r.Value <= vhi {
					emitted++
					if !emit(r.Key, r.Value) {
						return emitted
					}
				}
			}
		}
		line += int(run.count)
	}
	return emitted
}

// FullScan reads every record (the comparator ScanValues is measured
// against).
func (x *Index) FullScan(vlo, vhi uint64, emit func(row core.Key, v core.Value) bool) int {
	x.meter.CountRead(rum.Base, len(x.recs)*core.RecordSize)
	n := 0
	for _, r := range x.recs {
		if r.Value >= vlo && r.Value <= vhi {
			n++
			if !emit(r.Key, r.Value) {
				break
			}
		}
	}
	return n
}

// String describes the index shape.
func (x *Index) String() string {
	return fmt.Sprintf("imprints(n=%d, runs=%d, %.2f bits/record)",
		len(x.recs), len(x.runs),
		float64(len(x.runs)*imprintEntrySize*8)/float64(maxInt(len(x.recs), 1)))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
