package storage

import (
	"container/list"
	"errors"
	"fmt"

	"repro/internal/rum"
)

// PoolStats aggregates buffer pool behaviour.
type PoolStats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	WriteBacks uint64
	Overflows  uint64 // frames allocated beyond capacity because all were pinned
	// Retries counts device operations re-attempted after a transient
	// injected fault (see SetRetryBudget).
	Retries uint64
	// RetryFailures counts operations that still failed after the retry
	// budget was exhausted.
	RetryFailures uint64
	// FlushFailures counts dirty-frame write-backs that failed; the frame
	// stays cached and dirty so no acknowledged data is silently dropped.
	FlushFailures uint64
}

// HitRatio returns hits / (hits+misses), or 0 for an untouched pool.
func (s PoolStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Frame is a pinned page held in the buffer pool. Callers must Release every
// frame they Fetch or create; the data slice is only valid while pinned.
type Frame struct {
	id    PageID
	data  []byte
	dirty bool
	pins  int
	elem  *list.Element
}

// ID returns the page this frame caches.
func (f *Frame) ID() PageID { return f.id }

// Data returns the frame's page buffer. Mutating it requires MarkDirty.
func (f *Frame) Data() []byte { return f.data }

// MarkDirty records that the frame's contents diverge from the device and
// must be written back on eviction or flush.
func (f *Frame) MarkDirty() { f.dirty = true }

// BufferPool caches device pages with LRU replacement. It models the MEM
// parameter of Table 1: a structure whose working set fits in the pool pays
// no device traffic after warm-up, one that does not pays per page.
//
// A BufferPool is single-owner, like the Device beneath it: not safe for
// concurrent use, and never to be shared between run cells — each cell builds
// its own pool over its own device. Builds with -tags racecheck bind the pool
// to the first goroutine that touches it and panic on use from any other.
type BufferPool struct {
	owner    owner
	dev      *Device
	capacity int
	frames   map[PageID]*Frame
	lru      *list.List // front = most recently used; holds *Frame
	stats    PoolStats
	hook     Hook
	retries  int // extra attempts per device op after a transient fault
}

// NewBufferPool creates a pool of capacity pages over dev. Capacity must be
// at least 1.
func NewBufferPool(dev *Device, capacity int) *BufferPool {
	if capacity < 1 {
		panic("storage: buffer pool capacity must be >= 1")
	}
	return &BufferPool{
		dev:      dev,
		capacity: capacity,
		frames:   make(map[PageID]*Frame, capacity),
		lru:      list.New(),
	}
}

// Device returns the underlying device.
func (p *BufferPool) Device() *Device { return p.dev }

// SetHook attaches (or, with nil, detaches) an observer for pool events.
// Device-level traffic is hooked separately via Device.SetHook.
func (p *BufferPool) SetHook(h Hook) { p.hook = h }

// Capacity returns the pool capacity in pages.
func (p *BufferPool) Capacity() int { return p.capacity }

// SetRetryBudget sets how many extra attempts the pool makes when a device
// operation fails with a transient injected fault (storage.ErrTransient).
// Zero (the default) disables retries; permanent faults and crashes are
// never retried. Each retry emits an EvRetry pool event and counts in
// PoolStats.Retries.
func (p *BufferPool) SetRetryBudget(n int) {
	if n < 0 {
		n = 0
	}
	p.retries = n
}

// RetryBudget returns the current retry budget.
func (p *BufferPool) RetryBudget() int { return p.retries }

// DirtyCount returns the number of cached frames whose contents diverge from
// the device. After FlushAll it is zero unless write-backs failed; durability
// checkpoints (e.g. the LSM manifest) must verify it before advancing.
func (p *BufferPool) DirtyCount() int {
	n := 0
	for _, f := range p.frames {
		if f.dirty {
			n++
		}
	}
	return n
}

// Crash simulates losing the pool's volatile state: every frame — pinned or
// not, dirty or not — is discarded with no write-back. The device image is
// left exactly as the last successful writes left it. Frames still held by
// callers become dangling; a crash ends the structure's life, so the only
// valid next step is recovery against the reopened device.
func (p *BufferPool) Crash() {
	p.owner.assert("BufferPool")
	p.frames = make(map[PageID]*Frame, p.capacity)
	p.lru.Init()
}

// Stats returns a copy of the pool counters.
func (p *BufferPool) Stats() PoolStats { return p.stats }

// Len returns the number of frames currently cached.
func (p *BufferPool) Len() int { return len(p.frames) }

// Fetch pins the frame for page id, reading it from the device on a miss.
func (p *BufferPool) Fetch(id PageID) (*Frame, error) {
	p.owner.assert("BufferPool")
	if f, ok := p.frames[id]; ok {
		p.stats.Hits++
		f.pins++
		p.lru.MoveToFront(f.elem)
		if p.hook != nil {
			p.hook.StorageEvent(EvHit, id, p.dev.Class(id), 0)
		}
		return f, nil
	}
	p.stats.Misses++
	if p.hook != nil {
		p.hook.StorageEvent(EvMiss, id, p.dev.Class(id), 0)
	}
	src, err := p.readWithRetry(id)
	if err != nil {
		return nil, err
	}
	f := p.install(id)
	copy(f.data, src)
	return f, nil
}

// readWithRetry reads a page, re-attempting up to the retry budget when the
// failure is a transient injected fault. Permanent faults, crashes, and
// structural errors (ErrFreed, ErrBadPage) fail immediately.
func (p *BufferPool) readWithRetry(id PageID) ([]byte, error) {
	src, err := p.dev.Read(id)
	for attempt := 0; err != nil && errors.Is(err, ErrTransient) && attempt < p.retries; attempt++ {
		p.stats.Retries++
		if p.hook != nil {
			p.hook.StorageEvent(EvRetry, id, p.dev.Class(id), 0)
		}
		src, err = p.dev.Read(id)
	}
	if err != nil && errors.Is(err, ErrTransient) && p.retries > 0 {
		p.stats.RetryFailures++
	}
	return src, err
}

// writeWithRetry writes a page image, re-attempting transient injected
// faults up to the retry budget. Used for write-backs when an injector is
// armed (the copying path keeps the frame intact across a torn write).
func (p *BufferPool) writeWithRetry(id PageID, data []byte) error {
	err := p.dev.Write(id, data)
	for attempt := 0; err != nil && errors.Is(err, ErrTransient) && attempt < p.retries; attempt++ {
		p.stats.Retries++
		if p.hook != nil {
			p.hook.StorageEvent(EvRetry, id, p.dev.Class(id), 0)
		}
		err = p.dev.Write(id, data)
	}
	if err != nil && errors.Is(err, ErrTransient) && p.retries > 0 {
		p.stats.RetryFailures++
	}
	return err
}

// NewPage allocates a fresh zeroed page of class c on the device and returns
// it pinned and dirty, without any device read (a blind write).
func (p *BufferPool) NewPage(c rum.Class) (*Frame, error) {
	p.owner.assert("BufferPool")
	id := p.dev.Alloc(c)
	f := p.install(id)
	f.dirty = true
	return f, nil
}

// install makes room if needed and registers a new pinned frame for id.
func (p *BufferPool) install(id PageID) *Frame {
	if len(p.frames) >= p.capacity {
		if !p.evictOne() {
			p.stats.Overflows++
		}
	}
	f := &Frame{id: id, data: make([]byte, p.dev.PageSize()), pins: 1}
	f.elem = p.lru.PushFront(f)
	p.frames[id] = f
	return f
}

// evictOne removes the least recently used unpinned frame, flushing it if
// dirty. Frames whose write-back fails (an injected device fault) are kept
// cached and dirty rather than dropped — losing an acknowledged write to an
// eviction would be silent corruption — so the search moves on to the next
// victim. It reports whether a victim was found.
func (p *BufferPool) evictOne() bool {
	for e := p.lru.Back(); e != nil; e = e.Prev() {
		f := e.Value.(*Frame)
		if f.pins > 0 {
			continue
		}
		if f.dirty && !p.flushFrame(f) {
			continue
		}
		p.lru.Remove(e)
		delete(p.frames, f.id)
		p.stats.Evictions++
		if p.hook != nil {
			p.hook.StorageEvent(EvEvict, f.id, p.dev.Class(f.id), 0)
		}
		return true
	}
	return false
}

// flushFrame writes a dirty frame back to the device, reporting success.
// A frame whose page was freed while cached (ErrFreed, ErrBadPage) has
// nothing left to persist: its contents are dropped and the flush counts as
// success. Any other failure — injected faults surviving the retry budget,
// a crashed device — leaves the frame dirty and counts a FlushFailure.
func (p *BufferPool) flushFrame(f *Frame) bool {
	var err error
	if p.dev.Faulty() {
		// Copying path: a torn write must tear the device image, not the
		// frame we may still need to retry from.
		err = p.writeWithRetry(f.id, f.data)
	} else {
		var dst []byte
		dst, err = p.dev.WriteInPlace(f.id)
		if err == nil {
			copy(dst, f.data)
		}
	}
	if errors.Is(err, ErrFreed) || errors.Is(err, ErrBadPage) {
		f.dirty = false
		return true
	}
	if err != nil {
		p.stats.FlushFailures++
		return false
	}
	f.dirty = false
	p.stats.WriteBacks++
	if p.hook != nil {
		p.hook.StorageEvent(EvWriteBack, f.id, p.dev.Class(f.id), 0)
	}
	return true
}

// Release unpins a frame previously returned by Fetch or NewPage.
func (p *BufferPool) Release(f *Frame) {
	p.owner.assert("BufferPool")
	if f.pins <= 0 {
		panic(fmt.Sprintf("storage: release of unpinned frame %d", f.id))
	}
	f.pins--
}

// FreePage drops any cached frame for id without write-back and frees the
// page on the device. The frame must not be pinned.
func (p *BufferPool) FreePage(id PageID) error {
	p.owner.assert("BufferPool")
	if f, ok := p.frames[id]; ok {
		if f.pins > 0 {
			return fmt.Errorf("storage: freeing pinned page %d", id)
		}
		p.lru.Remove(f.elem)
		delete(p.frames, id)
	}
	return p.dev.Free(id)
}

// FlushAll writes back every dirty frame, leaving them cached and clean.
// Frames whose write-back fails stay dirty (PoolStats.FlushFailures counts
// them; DirtyCount reports how many remain). Frames are visited in LRU
// order, not map order, so an armed fault injector sees the same write
// sequence on every run — part of the determinism contract with the
// parallel bench runner.
func (p *BufferPool) FlushAll() {
	p.owner.assert("BufferPool")
	for e := p.lru.Back(); e != nil; e = e.Prev() {
		if f := e.Value.(*Frame); f.dirty {
			p.flushFrame(f)
		}
	}
}

// DropAll flushes and then discards every unpinned frame, emptying the
// cache. Frames that are pinned, or that could not be flushed, stay cached.
func (p *BufferPool) DropAll() {
	p.owner.assert("BufferPool")
	p.FlushAll()
	var next *list.Element
	for e := p.lru.Front(); e != nil; e = next {
		next = e.Next()
		f := e.Value.(*Frame)
		if f.pins > 0 || f.dirty {
			continue
		}
		p.lru.Remove(e)
		delete(p.frames, f.id)
	}
}
