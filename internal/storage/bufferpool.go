package storage

import (
	"container/list"
	"errors"
	"fmt"

	"repro/internal/rum"
)

// PoolStats aggregates buffer pool behaviour.
type PoolStats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	WriteBacks uint64
	Overflows  uint64 // frames allocated beyond capacity because all were pinned
	// Retries counts device operations re-attempted after a transient
	// injected fault (see SetRetryBudget).
	Retries uint64
	// RetryFailures counts operations that still failed after the retry
	// budget was exhausted.
	RetryFailures uint64
	// FlushFailures counts dirty-frame write-backs that failed; the frame
	// stays cached and dirty so no acknowledged data is silently dropped.
	FlushFailures uint64
	// FetchFailures counts Fetch calls whose device read failed (after any
	// retries). A failed fetch installs no frame and counts neither a hit
	// nor a miss, so HitRatio stays a statement about served requests and
	// Misses reconciles exactly with successful device reads.
	FetchFailures uint64
}

// HitRatio returns hits / (hits+misses), or 0 for an untouched pool.
func (s PoolStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Frame is a pinned page held in the buffer pool. Callers must Release every
// frame they Fetch or create; the data slice is only valid while pinned.
type Frame struct {
	id    PageID
	data  []byte
	dirty bool
	pins  int
	elem  *list.Element
}

// ID returns the page this frame caches.
func (f *Frame) ID() PageID { return f.id }

// Data returns the frame's page buffer. Mutating it requires MarkDirty.
func (f *Frame) Data() []byte { return f.data }

// MarkDirty records that the frame's contents diverge from the device and
// must be written back on eviction or flush.
func (f *Frame) MarkDirty() { f.dirty = true }

// BufferPool caches device pages with LRU replacement. It models the MEM
// parameter of Table 1: a structure whose working set fits in the pool pays
// no device traffic after warm-up, one that does not pays per page.
//
// A BufferPool is single-owner, like the Device beneath it: not safe for
// concurrent use, and never to be shared between run cells — each cell builds
// its own pool over its own device. Builds with -tags racecheck bind the pool
// to the first goroutine that touches it and panic on use from any other.
type BufferPool struct {
	owner    owner
	dev      *Device
	capacity int
	frames   map[PageID]*Frame
	lru      *list.List // front = most recently used; holds *Frame
	stats    PoolStats
	hook     Hook
	retries  int // extra attempts per device op after a transient fault
	ioBatch  int // pages per batch submission (1 = per-page I/O)
}

// NewBufferPool creates a pool of capacity pages over dev. Capacity must be
// at least 1. The I/O batch defaults to the device's channel parallelism:
// multi-queue media get vectored write-back out of the box, flat media keep
// exact per-page submission (see SetIOBatch).
func NewBufferPool(dev *Device, capacity int) *BufferPool {
	if capacity < 1 {
		panic("storage: buffer pool capacity must be >= 1")
	}
	ioBatch := dev.CostModel().Channels
	if ioBatch < 1 {
		ioBatch = 1
	}
	return &BufferPool{
		dev:      dev,
		capacity: capacity,
		frames:   make(map[PageID]*Frame, capacity),
		lru:      list.New(),
		ioBatch:  ioBatch,
	}
}

// Device returns the underlying device.
func (p *BufferPool) Device() *Device { return p.dev }

// SetHook attaches (or, with nil, detaches) an observer for pool events.
// Device-level traffic is hooked separately via Device.SetHook.
func (p *BufferPool) SetHook(h Hook) { p.hook = h }

// Capacity returns the pool capacity in pages.
func (p *BufferPool) Capacity() int { return p.capacity }

// SetRetryBudget sets how many extra attempts the pool makes when a device
// operation fails with a transient injected fault (storage.ErrTransient).
// Zero (the default) disables retries; permanent faults and crashes are
// never retried. Each retry emits an EvRetry pool event and counts in
// PoolStats.Retries.
func (p *BufferPool) SetRetryBudget(n int) {
	if n < 0 {
		n = 0
	}
	p.retries = n
}

// RetryBudget returns the current retry budget.
func (p *BufferPool) RetryBudget() int { return p.retries }

// SetIOBatch sets the pool's batch-submission width: how many dirty frames
// one vectored write-back (FlushAll, eviction groups) gathers into a single
// Device.WriteBatch, and how many pages one Readahead submission carries.
// Values below 1 clamp to 1, which disables batching (per-page I/O, the
// exact pre-batching behaviour). Widths beyond the device's channel
// parallelism are allowed — the device prices the excess as extra waves, so
// sweeping past the channel limit shows saturation.
func (p *BufferPool) SetIOBatch(n int) {
	if n < 1 {
		n = 1
	}
	p.ioBatch = n
}

// IOBatch returns the current batch-submission width.
func (p *BufferPool) IOBatch() int { return p.ioBatch }

// batchIO reports whether the pool currently submits batched I/O: a batch
// width above 1 and a clean device. With an injector armed the pool stays on
// the per-frame path, preserving per-fault semantics and the copying flush
// (a torn batch must not corrupt frames it may retry from).
func (p *BufferPool) batchIO() bool {
	return p.ioBatch > 1 && !p.dev.Faulty() && !p.dev.Crashed()
}

// DirtyCount returns the number of cached frames whose contents diverge from
// the device. After FlushAll it is zero unless write-backs failed; durability
// checkpoints (e.g. the LSM manifest) must verify it before advancing.
func (p *BufferPool) DirtyCount() int {
	n := 0
	for _, f := range p.frames {
		if f.dirty {
			n++
		}
	}
	return n
}

// Crash simulates losing the pool's volatile state: every frame — pinned or
// not, dirty or not — is discarded with no write-back. The device image is
// left exactly as the last successful writes left it. Frames still held by
// callers become dangling; a crash ends the structure's life, so the only
// valid next step is recovery against the reopened device.
func (p *BufferPool) Crash() {
	p.owner.assert("BufferPool")
	p.frames = make(map[PageID]*Frame, p.capacity)
	p.lru.Init()
}

// Stats returns a copy of the pool counters.
func (p *BufferPool) Stats() PoolStats { return p.stats }

// Len returns the number of frames currently cached.
func (p *BufferPool) Len() int { return len(p.frames) }

// Fetch pins the frame for page id, reading it from the device on a miss.
func (p *BufferPool) Fetch(id PageID) (*Frame, error) {
	p.owner.assert("BufferPool")
	if f, ok := p.frames[id]; ok {
		p.stats.Hits++
		f.pins++
		p.lru.MoveToFront(f.elem)
		if p.hook != nil {
			p.hook.StorageEvent(EvHit, id, p.dev.Class(id), 0)
		}
		return f, nil
	}
	// The miss is counted only once the repairing device read has
	// succeeded: a failed read installs nothing and counts a FetchFailure,
	// not a miss, so HitRatio and the miss ledger stay reconciled with the
	// device's successful reads.
	src, err := p.readWithRetry(id)
	if err != nil {
		p.stats.FetchFailures++
		return nil, err
	}
	p.stats.Misses++
	if p.hook != nil {
		p.hook.StorageEvent(EvMiss, id, p.dev.Class(id), 0)
	}
	f := p.install(id)
	copy(f.data, src)
	return f, nil
}

// readWithRetry reads a page, re-attempting up to the retry budget when the
// failure is a transient injected fault. Permanent faults, crashes, and
// structural errors (ErrFreed, ErrBadPage) fail immediately.
func (p *BufferPool) readWithRetry(id PageID) ([]byte, error) {
	src, err := p.dev.Read(id)
	for attempt := 0; err != nil && errors.Is(err, ErrTransient) && attempt < p.retries; attempt++ {
		p.stats.Retries++
		if p.hook != nil {
			p.hook.StorageEvent(EvRetry, id, p.dev.Class(id), 0)
		}
		src, err = p.dev.Read(id)
	}
	if err != nil && errors.Is(err, ErrTransient) && p.retries > 0 {
		p.stats.RetryFailures++
	}
	return src, err
}

// writeWithRetry writes a page image, re-attempting transient injected
// faults up to the retry budget. Used for write-backs when an injector is
// armed (the copying path keeps the frame intact across a torn write).
func (p *BufferPool) writeWithRetry(id PageID, data []byte) error {
	err := p.dev.Write(id, data)
	for attempt := 0; err != nil && errors.Is(err, ErrTransient) && attempt < p.retries; attempt++ {
		p.stats.Retries++
		if p.hook != nil {
			p.hook.StorageEvent(EvRetry, id, p.dev.Class(id), 0)
		}
		err = p.dev.Write(id, data)
	}
	if err != nil && errors.Is(err, ErrTransient) && p.retries > 0 {
		p.stats.RetryFailures++
	}
	return err
}

// NewPage allocates a fresh zeroed page of class c on the device and returns
// it pinned and dirty, without any device read (a blind write).
func (p *BufferPool) NewPage(c rum.Class) (*Frame, error) {
	p.owner.assert("BufferPool")
	id := p.dev.Alloc(c)
	f := p.install(id)
	f.dirty = true
	return f, nil
}

// install makes room if needed and registers a new pinned frame for id.
func (p *BufferPool) install(id PageID) *Frame {
	if len(p.frames) >= p.capacity {
		if !p.evictOne() {
			p.stats.Overflows++
		}
	}
	f := &Frame{id: id, data: make([]byte, p.dev.PageSize()), pins: 1}
	f.elem = p.lru.PushFront(f)
	p.frames[id] = f
	return f
}

// evictOne removes the least recently used unpinned frame, flushing it if
// dirty. Frames whose write-back fails (an injected device fault) are kept
// cached and dirty rather than dropped — losing an acknowledged write to an
// eviction would be silent corruption — so the search moves on to the next
// victim. It reports whether a victim was found. Under a batch width above
// 1 a dirty victim's write-back is amortized (see flushVictim); victim
// choice (strict LRU order among unpinned frames) is unchanged.
func (p *BufferPool) evictOne() bool {
	for e := p.lru.Back(); e != nil; e = e.Prev() {
		f := e.Value.(*Frame)
		if f.pins > 0 {
			continue
		}
		if f.dirty && !p.flushVictim(f) {
			continue
		}
		p.lru.Remove(e)
		delete(p.frames, f.id)
		p.stats.Evictions++
		if p.hook != nil {
			p.hook.StorageEvent(EvEvict, f.id, p.dev.Class(f.id), 0)
		}
		return true
	}
	return false
}

// flushFrame writes a dirty frame back to the device, reporting success.
// A frame whose page was freed while cached (ErrFreed, ErrBadPage) has
// nothing left to persist: its contents are dropped and the flush counts as
// success. Any other failure — injected faults surviving the retry budget,
// a crashed device — leaves the frame dirty and counts a FlushFailure.
func (p *BufferPool) flushFrame(f *Frame) bool {
	var err error
	if p.dev.Faulty() {
		// Copying path: a torn write must tear the device image, not the
		// frame we may still need to retry from.
		err = p.writeWithRetry(f.id, f.data)
	} else {
		var dst []byte
		dst, err = p.dev.WriteInPlace(f.id)
		if err == nil {
			copy(dst, f.data)
		}
	}
	if errors.Is(err, ErrFreed) || errors.Is(err, ErrBadPage) {
		f.dirty = false
		return true
	}
	if err != nil {
		p.stats.FlushFailures++
		return false
	}
	f.dirty = false
	p.stats.WriteBacks++
	if p.hook != nil {
		p.hook.StorageEvent(EvWriteBack, f.id, p.dev.Class(f.id), 0)
	}
	return true
}

// flushGroup writes a group of dirty frames back as one batch submission.
// Callers have already excluded freed pages; a group of one degrades to the
// ordinary per-frame flush. Should the batch fail anyway (a crash latched
// mid-run), the group falls back to per-frame flushes so the failure ledger
// (FlushFailures, dirty retention) is exactly the unbatched one.
func (p *BufferPool) flushGroup(group []*Frame) {
	if len(group) == 1 {
		p.flushFrame(group[0])
		return
	}
	ids := make([]PageID, len(group))
	data := make([][]byte, len(group))
	for i, f := range group {
		ids[i], data[i] = f.id, f.data
	}
	if err := p.dev.WriteBatch(ids, data); err != nil {
		for _, f := range group {
			p.flushFrame(f)
		}
		return
	}
	for _, f := range group {
		f.dirty = false
		p.stats.WriteBacks++
		if p.hook != nil {
			p.hook.StorageEvent(EvWriteBack, f.id, p.dev.Class(f.id), 0)
		}
	}
}

// flushVictim writes back a dirty eviction victim, reporting whether the
// frame came out clean. Under batched I/O the victim's unavoidable
// write-back is amortized: up to IOBatch-1 other cold dirty unpinned frames
// join the same submission, so eviction pressure under a write burst drains
// at queue depth instead of one page per eviction. The group forms only
// around a victim that must be written anyway — the pool never flushes more
// eagerly than per-frame eviction would, so dirty frames that would have
// been freed before eviction still cost nothing. Frames whose page was
// freed while cached have nothing to persist and are marked clean instead
// of joining the group.
func (p *BufferPool) flushVictim(victim *Frame) bool {
	if !p.batchIO() {
		return p.flushFrame(victim)
	}
	group := []*Frame{victim}
	for e := p.lru.Back(); e != nil && len(group) < p.ioBatch; e = e.Prev() {
		f := e.Value.(*Frame)
		if f == victim || f.pins > 0 || !f.dirty {
			continue
		}
		if p.dev.check(f.id) != nil {
			f.dirty = false
			continue
		}
		group = append(group, f)
	}
	p.flushGroup(group)
	return !victim.dirty
}

// Release unpins a frame previously returned by Fetch or NewPage.
func (p *BufferPool) Release(f *Frame) {
	p.owner.assert("BufferPool")
	if f.pins <= 0 {
		panic(fmt.Sprintf("storage: release of unpinned frame %d", f.id))
	}
	f.pins--
}

// FreePage drops any cached frame for id without write-back and frees the
// page on the device. The frame must not be pinned.
func (p *BufferPool) FreePage(id PageID) error {
	p.owner.assert("BufferPool")
	if f, ok := p.frames[id]; ok {
		if f.pins > 0 {
			return fmt.Errorf("storage: freeing pinned page %d", id)
		}
		p.lru.Remove(f.elem)
		delete(p.frames, id)
	}
	return p.dev.Free(id)
}

// FlushAll writes back every dirty frame, leaving them cached and clean.
// Frames whose write-back fails stay dirty (PoolStats.FlushFailures counts
// them; DirtyCount reports how many remain). Frames are visited in LRU
// order, not map order, so an armed fault injector sees the same write
// sequence on every run — part of the determinism contract with the
// parallel bench runner. Under a batch width above 1 the dirty frames are
// gathered (still in LRU order) into IOBatch-sized Device.WriteBatch
// submissions, so a full-pool flush drains at queue depth.
func (p *BufferPool) FlushAll() {
	p.owner.assert("BufferPool")
	if !p.batchIO() {
		for e := p.lru.Back(); e != nil; e = e.Prev() {
			if f := e.Value.(*Frame); f.dirty {
				p.flushFrame(f)
			}
		}
		return
	}
	var group []*Frame
	for e := p.lru.Back(); e != nil; e = e.Prev() {
		f := e.Value.(*Frame)
		if !f.dirty {
			continue
		}
		if p.dev.check(f.id) != nil {
			f.dirty = false // freed while cached: nothing left to persist
			continue
		}
		group = append(group, f)
		if len(group) == p.ioBatch {
			p.flushGroup(group)
			group = group[:0]
		}
	}
	if len(group) > 0 {
		p.flushGroup(group)
	}
}

// Readahead batch-reads the given pages into the pool ahead of demand,
// installing them unpinned and clean, and returns how many were installed.
// Pages already cached or no longer live are skipped; the prefetch is
// clamped to half the pool — a prefetch must never wipe the demand working
// set — and submitted in IOBatch-sized batches. Each
// installed page counts a miss (it cost a device read; the later Fetch that
// finds it is an honest hit), so the miss ledger still reconciles with
// device reads. On flat media, or with a fault injector armed, Readahead is
// a no-op — prefetching only pays when the device can serve the batch in
// parallel, and fault streams must see demand-order reads.
func (p *BufferPool) Readahead(ids []PageID) int {
	p.owner.assert("BufferPool")
	if !p.batchIO() {
		return 0
	}
	limit := p.capacity / 2
	if limit < 1 {
		limit = 1
	}
	want := make([]PageID, 0, len(ids))
	for _, id := range ids {
		if _, ok := p.frames[id]; ok {
			continue
		}
		if p.dev.check(id) != nil {
			continue
		}
		want = append(want, id)
		if len(want) == limit {
			break
		}
	}
	installed := 0
	for len(want) > 0 {
		chunk := want
		if len(chunk) > p.ioBatch {
			chunk = chunk[:p.ioBatch]
		}
		want = want[len(chunk):]
		pages, err := p.dev.ReadBatch(chunk)
		if err != nil {
			return installed
		}
		for i, id := range chunk {
			if _, ok := p.frames[id]; ok {
				continue // duplicate id within the request
			}
			if len(p.frames) >= p.capacity && !p.evictOne() {
				return installed // everything pinned: never overflow for a prefetch
			}
			f := &Frame{id: id, data: make([]byte, p.dev.PageSize())}
			copy(f.data, pages[i])
			f.elem = p.lru.PushFront(f)
			p.frames[id] = f
			p.stats.Misses++
			if p.hook != nil {
				p.hook.StorageEvent(EvMiss, id, p.dev.Class(id), 0)
			}
			installed++
		}
	}
	return installed
}

// DropAll flushes and then discards every unpinned frame, emptying the
// cache. Frames that are pinned, or that could not be flushed, stay cached.
func (p *BufferPool) DropAll() {
	p.owner.assert("BufferPool")
	p.FlushAll()
	var next *list.Element
	for e := p.lru.Front(); e != nil; e = next {
		next = e.Next()
		f := e.Value.(*Frame)
		if f.pins > 0 || f.dirty {
			continue
		}
		p.lru.Remove(e)
		delete(p.frames, f.id)
	}
}
