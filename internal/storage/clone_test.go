package storage

import (
	"bytes"
	"testing"

	"repro/internal/rum"
)

// TestDeviceClone checks that Clone produces an identical, fully independent
// device image: same pages, classes, and free list, but mutations and meter
// traffic on one side never show on the other.
func TestDeviceClone(t *testing.T) {
	var meter rum.Meter
	d := NewDevice(128, SSD, &meter)
	base := d.Alloc(rum.Base)
	aux := d.Alloc(rum.Aux)
	freed := d.Alloc(rum.Aux)
	if err := d.Free(freed); err != nil {
		t.Fatal(err)
	}
	buf, err := d.WriteInPlace(base)
	if err != nil {
		t.Fatal(err)
	}
	copy(buf, []byte("original"))

	var cmeter rum.Meter
	c := d.Clone(&cmeter)
	if c.PageSize() != 128 || c.Medium() != SSD {
		t.Fatalf("clone geometry %d/%v", c.PageSize(), c.Medium())
	}
	if c.Stats() != d.Stats() {
		t.Fatalf("clone stats %+v != template %+v", c.Stats(), d.Stats())
	}
	if c.LiveBytes() != d.LiveBytes() {
		t.Fatalf("clone live bytes %+v != %+v", c.LiveBytes(), d.LiveBytes())
	}
	got, err := c.Read(base)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("original")) {
		t.Fatalf("clone page contents %q", got[:8])
	}
	if c.Class(aux) != rum.Aux {
		t.Fatalf("clone lost class of page %d", aux)
	}

	// The freed page must be reusable on both sides, independently.
	if id := c.Alloc(rum.Base); id != freed {
		t.Fatalf("clone recycled page %d, want %d", id, freed)
	}
	if id := d.Alloc(rum.Base); id != freed {
		t.Fatalf("template recycled page %d, want %d", id, freed)
	}

	// Mutating the clone leaves the template untouched.
	cb, err := c.WriteInPlace(base)
	if err != nil {
		t.Fatal(err)
	}
	copy(cb, []byte("mutated!"))
	orig, err := d.Read(base)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(orig, []byte("original")) {
		t.Fatalf("clone mutation leaked into template: %q", orig[:8])
	}

	// Clone traffic lands on the clone's meter only.
	tmpl := meter
	if _, err := c.Read(base); err != nil {
		t.Fatal(err)
	}
	if meter != tmpl {
		t.Fatalf("clone read moved the template meter: %+v -> %+v", tmpl, meter)
	}
	if cmeter.BaseRead == 0 {
		t.Fatalf("clone traffic unmetered: %+v", cmeter)
	}
}
