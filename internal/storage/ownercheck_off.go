//go:build !racecheck

package storage

// owner is the no-op release build of the single-writer assertion. See
// ownercheck_on.go (built with -tags racecheck) for the checked variant.
type owner struct{}

func (*owner) assert(string) {}
