package storage

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/rum"
)

// scriptInjector is a test FaultInjector failing exact 1-based operation
// indices. The canonical seed-driven implementation lives in internal/faults
// (which imports this package, so in-package tests script faults locally).
type scriptInjector struct {
	reads, writes uint64
	failRead      map[uint64]error
	failWrite     map[uint64]error
	tornAt        map[uint64]int
}

func (s *scriptInjector) ReadFault(PageID) error {
	s.reads++
	return s.failRead[s.reads]
}

func (s *scriptInjector) WriteFault(PageID, int) (int, error) {
	s.writes++
	return s.tornAt[s.writes], s.failWrite[s.writes]
}

func transient() error { return fmt.Errorf("%w: scripted", ErrTransient) }
func permanent() error { return fmt.Errorf("%w: scripted", ErrInjected) }
func crashErr() error  { return fmt.Errorf("%w: scripted", ErrCrash) }

func TestFaultInjectionRead(t *testing.T) {
	d := NewDevice(64, RAM, nil)
	id := d.Alloc(rum.Base)
	d.SetInjector(&scriptInjector{failRead: map[uint64]error{3: permanent()}})
	for i := 0; i < 2; i++ {
		if _, err := d.Read(id); err != nil {
			t.Fatalf("read %d failed early: %v", i, err)
		}
	}
	if _, err := d.Read(id); !errors.Is(err, ErrInjected) {
		t.Fatalf("third read: %v", err)
	}
	// The failed read must not have counted as traffic.
	if got := d.Stats().PageReads; got != 2 {
		t.Fatalf("failed read counted: %d", got)
	}
	if _, err := d.Read(id); err != nil {
		t.Fatalf("post-fault read: %v", err)
	}
	d.SetInjector(nil)
	if _, err := d.Read(id); err != nil {
		t.Fatal(err)
	}
}

func TestFaultInjectionWrite(t *testing.T) {
	d := NewDevice(64, RAM, nil)
	id := d.Alloc(rum.Base)
	d.SetInjector(&scriptInjector{failWrite: map[uint64]error{1: permanent()}})
	if err := d.Write(id, make([]byte, 64)); !errors.Is(err, ErrInjected) {
		t.Fatalf("write: %v", err)
	}
	// The failed write must not have counted as traffic.
	if st := d.Stats(); st.PageWrites != 0 || st.CostUnits != 0 {
		t.Fatalf("failed write counted: %+v", st)
	}
}

func TestPoolSurvivesReadFault(t *testing.T) {
	d := NewDevice(64, RAM, nil)
	p := NewBufferPool(d, 4)
	a := d.Alloc(rum.Base)
	d.SetInjector(&scriptInjector{failRead: map[uint64]error{1: permanent()}})
	if _, err := p.Fetch(a); !errors.Is(err, ErrInjected) {
		t.Fatalf("fetch: %v", err)
	}
	// The pool must not cache a frame for the failed fetch.
	if p.Len() != 0 {
		t.Fatalf("pool cached a failed frame: %d", p.Len())
	}
	// And must recover on the next attempt.
	f, err := p.Fetch(a)
	if err != nil {
		t.Fatalf("recovery fetch: %v", err)
	}
	p.Release(f)
}

// TestTornWrite: a torn write persists exactly the reported prefix of the
// new image, leaves the rest of the old image intact, and counts no traffic.
func TestTornWrite(t *testing.T) {
	d := NewDevice(64, SSD, nil)
	id := d.Alloc(rum.Base)
	old := bytes.Repeat([]byte{0xAA}, 64)
	if err := d.Write(id, old); err != nil {
		t.Fatal(err)
	}
	writesBefore := d.Stats().PageWrites
	d.SetInjector(&scriptInjector{
		failWrite: map[uint64]error{1: transient()},
		tornAt:    map[uint64]int{1: 16},
	})
	fresh := bytes.Repeat([]byte{0xBB}, 64)
	err := d.Write(id, fresh)
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("torn write error: %v", err)
	}
	if got := d.Stats().PageWrites; got != writesBefore {
		t.Fatalf("torn write counted as traffic: %d", got)
	}
	d.SetInjector(nil)
	data, err := d.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data[:16], fresh[:16]) || !bytes.Equal(data[16:], old[16:]) {
		t.Fatalf("torn page: %x", data)
	}
}

// TestCrashLatch: a crash fault latches the device — reads, writes, and
// frees all fail with ErrCrash until Reopen; Alloc stays available.
func TestCrashLatch(t *testing.T) {
	d := NewDevice(64, RAM, nil)
	id := d.Alloc(rum.Base)
	d.SetInjector(&scriptInjector{failWrite: map[uint64]error{1: crashErr()}})
	if err := d.Write(id, make([]byte, 64)); !errors.Is(err, ErrCrash) {
		t.Fatalf("crash write: %v", err)
	}
	if !d.Crashed() {
		t.Fatal("device not latched after crash")
	}
	if _, err := d.Read(id); !errors.Is(err, ErrCrash) {
		t.Fatalf("post-crash read: %v", err)
	}
	if err := d.Write(id, make([]byte, 64)); !errors.Is(err, ErrCrash) {
		t.Fatalf("post-crash write: %v", err)
	}
	if err := d.Free(id); !errors.Is(err, ErrCrash) {
		t.Fatalf("post-crash free: %v", err)
	}
	// Recovery may allocate; orphans are its problem to collect.
	_ = d.Alloc(rum.Aux)
	d.SetInjector(nil)
	d.Reopen()
	if d.Crashed() {
		t.Fatal("Reopen did not clear the latch")
	}
	if _, err := d.Read(id); err != nil {
		t.Fatalf("post-reopen read: %v", err)
	}
}

// TestRetryBudget: transient faults are retried up to the budget and the
// operation succeeds once the injector relents.
func TestRetryBudget(t *testing.T) {
	d := NewDevice(64, RAM, nil)
	p := NewBufferPool(d, 4)
	a := d.Alloc(rum.Base)
	d.SetInjector(&scriptInjector{failRead: map[uint64]error{1: transient(), 2: transient()}})
	p.SetRetryBudget(2)
	f, err := p.Fetch(a)
	if err != nil {
		t.Fatalf("fetch within budget: %v", err)
	}
	p.Release(f)
	st := p.Stats()
	if st.Retries != 2 || st.RetryFailures != 0 {
		t.Fatalf("retry ledger: %+v", st)
	}
}

// TestRetryBudgetExhaustion: a fault outlasting the budget surfaces, counts
// a RetryFailure, and permanent faults consume no retries at all.
func TestRetryBudgetExhaustion(t *testing.T) {
	d := NewDevice(64, RAM, nil)
	p := NewBufferPool(d, 4)
	a := d.Alloc(rum.Base)
	si := &scriptInjector{failRead: map[uint64]error{
		1: transient(), 2: transient(), 3: transient(),
		4: permanent(),
	}}
	d.SetInjector(si)
	p.SetRetryBudget(2)
	if _, err := p.Fetch(a); !errors.Is(err, ErrTransient) {
		t.Fatalf("exhausted fetch: %v", err)
	}
	st := p.Stats()
	if st.Retries != 2 || st.RetryFailures != 1 {
		t.Fatalf("retry ledger: %+v", st)
	}
	// Attempt 4 fails permanently: no retry spent on it.
	if _, err := p.Fetch(a); !errors.Is(err, ErrInjected) || errors.Is(err, ErrTransient) {
		t.Fatalf("permanent fetch: %v", err)
	}
	if got := p.Stats().Retries; got != 2 {
		t.Fatalf("permanent fault consumed retries: %d", got)
	}
}

// TestFlushFailureKeepsFrameDirty: a write-back that fails must not drop the
// acknowledged contents — the frame stays cached and dirty, and succeeds
// once the device recovers.
func TestFlushFailureKeepsFrameDirty(t *testing.T) {
	d := NewDevice(64, RAM, nil)
	p := NewBufferPool(d, 2)
	f, err := p.NewPage(rum.Base)
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	copy(f.Data(), bytes.Repeat([]byte{7}, 64))
	f.MarkDirty()
	p.Release(f)

	d.SetInjector(&scriptInjector{failWrite: map[uint64]error{1: permanent()}})
	p.FlushAll()
	st := p.Stats()
	if st.FlushFailures != 1 {
		t.Fatalf("flush failures: %+v", st)
	}
	if p.DirtyCount() != 1 {
		t.Fatalf("dirty after failed flush: %d", p.DirtyCount())
	}
	// Second flush succeeds (fault was one-shot) and the data lands.
	p.FlushAll()
	if p.DirtyCount() != 0 {
		t.Fatalf("dirty after recovery flush: %d", p.DirtyCount())
	}
	d.SetInjector(nil)
	data, err := d.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 7 {
		t.Fatalf("flushed contents lost: %x", data[0])
	}
}

// TestEvictionSkipsUnflushableFrame: with one frame unflushable, eviction
// moves on to another victim rather than dropping dirty data.
func TestEvictionSkipsUnflushableFrame(t *testing.T) {
	d := NewDevice(64, RAM, nil)
	p := NewBufferPool(d, 2)
	// Frame A: dirty, and its flush will fail on every write attempt.
	fa, err := p.NewPage(rum.Base)
	if err != nil {
		t.Fatal(err)
	}
	copy(fa.Data(), bytes.Repeat([]byte{1}, 64))
	fa.MarkDirty()
	idA := fa.ID()
	p.Release(fa)
	// Frame B: clean (freshly flushed).
	fb, err := p.NewPage(rum.Base)
	if err != nil {
		t.Fatal(err)
	}
	idB := fb.ID()
	p.Release(fb)

	si := &scriptInjector{failWrite: map[uint64]error{}}
	for i := uint64(1); i <= 16; i++ {
		si.failWrite[i] = permanent()
	}
	d.SetInjector(si)
	p.FlushAll() // A fails, B fails — both dirty? B was dirty from NewPage too.
	// Force an install: the pool must evict something, and it cannot be a
	// frame whose flush fails.
	c := d.Alloc(rum.Base)
	d.SetInjector(&scriptInjector{failWrite: map[uint64]error{}, failRead: map[uint64]error{}})
	// A and B are both dirty and now flushable; eviction picks the LRU one.
	fc, err := p.Fetch(c)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(fc)
	if p.Stats().Evictions != 1 {
		t.Fatalf("evictions: %+v", p.Stats())
	}
	_ = idA
	_ = idB
}

// TestPoolCrashDropsEverything: Crash empties the pool without any device
// write, modelling the loss of volatile state.
func TestPoolCrashDropsEverything(t *testing.T) {
	d := NewDevice(64, RAM, nil)
	p := NewBufferPool(d, 4)
	for i := 0; i < 3; i++ {
		f, err := p.NewPage(rum.Base)
		if err != nil {
			t.Fatal(err)
		}
		copy(f.Data(), bytes.Repeat([]byte{byte(i + 1)}, 64))
		f.MarkDirty()
		p.Release(f)
	}
	writes := d.Stats().PageWrites
	p.Crash()
	if p.Len() != 0 || p.DirtyCount() != 0 {
		t.Fatalf("pool after crash: len=%d dirty=%d", p.Len(), p.DirtyCount())
	}
	if d.Stats().PageWrites != writes {
		t.Fatal("Crash wrote to the device")
	}
}
