package storage

import "repro/internal/rum"

// PageView is an immutable, read-only view of a device's page images, the
// storage half of the single-writer/many-reader contract: the owner goroutine
// keeps mutating the Device through the usual owner-asserted entry points,
// while any number of reader goroutines traverse a PageView concurrently with
// zero coordination — no locks, no atomics, no meter traffic.
//
// Safety rests on three invariants the caller (an MVCC structure such as the
// btree's versioned snapshots) must uphold:
//
//  1. Materialized capture: View is taken after every page reachable from the
//     snapshot root has been flushed to the device (BufferPool.FlushAll), so
//     readers never need the pool and no dirty frame shadows a page image.
//  2. Copy-on-write: pages reachable from a published snapshot are never
//     written in place again; mutations allocate fresh pages. A page image a
//     reader can reach is therefore byte-immutable for the view's lifetime.
//  3. Deferred reclamation: pages superseded by copy-on-write are not freed
//     (and hence never reused by Alloc, which clears the buffer in place)
//     until no live view can reach them.
//
// The view captures the device's page-table slice header, not a copy: Go
// slice growth leaves the old backing array intact, so pages allocated after
// capture are simply invisible to the view, and invariants 2 and 3 keep every
// visible page stable. Builds with -tags racecheck additionally stamp each
// page with a generation counter and panic when a reader touches a page that
// was freed or reused after capture — the reader-side half of the contract
// (see viewcheck_on.go), complementing the writer-side owner binding.
//
// A PageView counts no traffic: readers charge their own rum.Meter at the
// call site so that per-reader accounting can be merged exactly into the
// owning ledger when the snapshot is released.
type PageView struct {
	pages    [][]byte
	class    []rum.Class
	pageSize int
	stamp    viewstamp
}

// View captures a read-only view of the current device image. Writer-side
// call: it is owner-asserted like every other Device entry point. The caller
// must have flushed all dirty buffer-pool frames first (invariant 1 above).
func (d *Device) View() *PageView {
	d.owner.assert("Device")
	return &PageView{
		pages:    d.pages,
		class:    d.class,
		pageSize: d.pageSize,
		stamp:    d.gen.capture(len(d.pages)),
	}
}

// PageSize returns the device page size in bytes.
func (v *PageView) PageSize() int { return v.pageSize }

// NumPages returns the number of pages visible to the view.
func (v *PageView) NumPages() int { return len(v.pages) }

// Page returns the image of a page captured by the view. The returned slice
// aliases device memory that the copy-on-write and deferred-reclamation
// invariants keep immutable; callers must treat it as read-only. Safe for
// concurrent use by any goroutine. Counts no traffic — the caller meters.
func (v *PageView) Page(id PageID) []byte {
	v.stamp.check(id)
	return v.pages[id]
}

// Class returns the data class a visible page was allocated under.
func (v *PageView) Class(id PageID) rum.Class { return v.class[id] }
