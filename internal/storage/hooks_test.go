package storage

import (
	"bytes"
	"testing"

	"repro/internal/rum"
)

// recordedEvent is one captured hook emission.
type recordedEvent struct {
	Ev    Event
	ID    PageID
	Class rum.Class
	Cost  uint64
}

// recorder is a test Hook capturing every event in order.
type recorder struct {
	events []recordedEvent
}

func (r *recorder) StorageEvent(ev Event, id PageID, class rum.Class, cost uint64) {
	r.events = append(r.events, recordedEvent{ev, id, class, cost})
}

func (r *recorder) count(ev Event) int {
	n := 0
	for _, e := range r.events {
		if e.Ev == ev {
			n++
		}
	}
	return n
}

func TestDeviceHookEvents(t *testing.T) {
	rec := &recorder{}
	d := NewDevice(64, SSD, nil)
	d.SetHook(rec)
	base := d.Alloc(rum.Base)
	aux := d.Alloc(rum.Aux)

	if _, err := d.Read(base); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(aux, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteInPlace(base); err != nil {
		t.Fatal(err)
	}

	want := []recordedEvent{
		{EvRead, base, rum.Base, 4},   // SSD read cost
		{EvWrite, aux, rum.Aux, 20},   // SSD write cost
		{EvWrite, base, rum.Base, 20}, // in-place write costs the same
	}
	if len(rec.events) != len(want) {
		t.Fatalf("events: got %v want %v", rec.events, want)
	}
	for i, e := range rec.events {
		if e != want[i] {
			t.Fatalf("event %d: got %+v want %+v", i, e, want[i])
		}
	}

	// A failed (injected) read emits an EvFault event instead of an EvRead.
	// The event carries the attempted operation's weighted cost (the SSD
	// read cost here) even though the failed transfer counts no traffic in
	// stats or the meter — the event is the failure's only cost trace.
	d.SetInjector(&scriptInjector{failRead: map[uint64]error{1: permanent()}})
	before := len(rec.events)
	if _, err := d.Read(base); err == nil {
		t.Fatal("expected injected fault")
	}
	if len(rec.events) != before+1 {
		t.Fatalf("failed read emitted %d events, want 1", len(rec.events)-before)
	}
	if e := rec.events[before]; e.Ev != EvFault || e.ID != base || e.Cost != 4 {
		t.Fatalf("fault event: %+v", e)
	}
	if st := d.Stats(); st.PageReads != 1 || st.CostUnits != 44 {
		t.Fatalf("failed read counted traffic: %+v", st)
	}
	before = len(rec.events)
	d.SetInjector(nil)

	// Detaching stops emissions.
	d.SetHook(nil)
	if _, err := d.Read(base); err != nil {
		t.Fatal(err)
	}
	if len(rec.events) != before {
		t.Fatal("detached hook still received events")
	}
}

func TestPoolHookEvents(t *testing.T) {
	rec := &recorder{}
	d := NewDevice(64, RAM, nil)
	p := NewBufferPool(d, 1)
	p.SetHook(rec)
	a := d.Alloc(rum.Base)
	b := d.Alloc(rum.Aux)

	f, _ := p.Fetch(a) // miss
	p.Release(f)
	f, _ = p.Fetch(a) // hit
	p.Release(f)
	f, _ = p.Fetch(a) // hit again
	copy(f.Data(), bytes.Repeat([]byte{1}, 64))
	f.MarkDirty()
	p.Release(f)
	f, _ = p.Fetch(b) // miss; evicts dirty a → writeback + eviction
	p.Release(f)

	if got := rec.count(EvMiss); got != 2 {
		t.Fatalf("misses: %d", got)
	}
	if got := rec.count(EvHit); got != 2 {
		t.Fatalf("hits: %d", got)
	}
	if got := rec.count(EvWriteBack); got != 1 {
		t.Fatalf("writebacks: %d", got)
	}
	if got := rec.count(EvEvict); got != 1 {
		t.Fatalf("evictions: %d", got)
	}
	// Hook counts must agree with PoolStats.
	st := p.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Evictions != 1 || st.WriteBacks != 1 {
		t.Fatalf("stats diverge from hook: %+v", st)
	}
	// Hit events carry the page's class and zero cost.
	for _, e := range rec.events {
		if e.Ev == EvHit && (e.Class != rum.Base || e.Cost != 0) {
			t.Fatalf("hit event: %+v", e)
		}
	}
}

func TestEventString(t *testing.T) {
	names := map[Event]string{
		EvRead: "read", EvWrite: "write", EvHit: "hit", EvMiss: "miss",
		EvEvict: "eviction", EvWriteBack: "writeback",
		EvFault: "fault", EvTorn: "torn", EvCrash: "crash", EvRetry: "retry",
		Event(99): "unknown",
	}
	for ev, want := range names {
		if got := ev.String(); got != want {
			t.Fatalf("Event(%d).String() = %q, want %q", ev, got, want)
		}
	}
}

// TestPoolStatsEvictionWriteBackCounts drives a capacity-2 pool through a
// scan of 6 pages, half of them dirtied, and checks the exact eviction and
// write-back ledger.
func TestPoolStatsEvictionWriteBackCounts(t *testing.T) {
	d := NewDevice(64, RAM, nil)
	p := NewBufferPool(d, 2)
	ids := make([]PageID, 6)
	for i := range ids {
		ids[i] = d.Alloc(rum.Base)
	}
	for i, id := range ids {
		f, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			f.Data()[0] = byte(i + 1)
			f.MarkDirty()
		}
		p.Release(f)
	}
	st := p.Stats()
	// 6 distinct pages through 2 frames: 6 misses, 0 hits, 4 evictions
	// (the last 2 frames stay resident), and write-backs only for the dirty
	// evicted pages (ids 0, 2; id 4 is still cached dirty).
	if st.Misses != 6 || st.Hits != 0 {
		t.Fatalf("hit/miss: %+v", st)
	}
	if st.Evictions != 4 {
		t.Fatalf("evictions: %d", st.Evictions)
	}
	if st.WriteBacks != 2 {
		t.Fatalf("writebacks: %d", st.WriteBacks)
	}
	if st.HitRatio() != 0 {
		t.Fatalf("hit ratio: %v", st.HitRatio())
	}
	p.FlushAll()
	if got := p.Stats().WriteBacks; got != 3 {
		t.Fatalf("writebacks after flush: %d", got)
	}
}

// TestPoolStatsOverflowsAllPinned pins more frames than the pool holds and
// checks every extra frame is an overflow, then verifies the pool drains
// back under capacity once pins are released.
func TestPoolStatsOverflowsAllPinned(t *testing.T) {
	d := NewDevice(64, RAM, nil)
	p := NewBufferPool(d, 2)
	var frames []*Frame
	for i := 0; i < 5; i++ {
		f, err := p.NewPage(rum.Base)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	if got := p.Stats().Overflows; got != 3 {
		t.Fatalf("overflows: %d", got)
	}
	if p.Len() != 5 {
		t.Fatalf("len with pins: %d", p.Len())
	}
	for _, f := range frames {
		p.Release(f)
	}
	// With pins gone, the next install can evict instead of overflowing.
	f, err := p.NewPage(rum.Base)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(f)
	if got := p.Stats().Overflows; got != 3 {
		t.Fatalf("overflow after release: %d", got)
	}
	if p.Stats().Evictions == 0 {
		t.Fatal("expected an eviction once pins were released")
	}
}

// TestHitRatioUntouchedPool asserts the untouched-pool convention directly
// on a live pool, not just the zero PoolStats value.
func TestHitRatioUntouchedPool(t *testing.T) {
	d := NewDevice(64, RAM, nil)
	p := NewBufferPool(d, 4)
	if r := p.Stats().HitRatio(); r != 0 {
		t.Fatalf("untouched pool hit ratio: %v", r)
	}
}
