package storage

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/rum"
)

// batchRecorder is a recorder that also captures batch submissions.
type batchRecorder struct {
	recorder
	batches []recordedBatch
}

type recordedBatch struct {
	Write bool
	Pages int
	Depth int
	Cost  uint64
}

func (r *batchRecorder) StorageBatch(write bool, pages, depth int, cost uint64) {
	r.batches = append(r.batches, recordedBatch{write, pages, depth, cost})
}

func allocN(t *testing.T, d *Device, n int, c rum.Class) []PageID {
	t.Helper()
	ids := make([]PageID, n)
	for i := range ids {
		ids[i] = d.Alloc(c)
	}
	return ids
}

// TestBatchCostModel pins the charging rule: a batch of n pages costs
// ceil(n/channels) waves of the per-page service time, and the achieved
// depth clamps at the channel limit.
func TestBatchCostModel(t *testing.T) {
	m := MQSSD.Model() // read 4, write 20, 8 channels
	cases := []struct {
		n     int
		read  uint64
		write uint64
		depth int
	}{
		{1, 4, 20, 1},
		{7, 4, 20, 7},
		{8, 4, 20, 8},
		{9, 8, 40, 8},
		{16, 8, 40, 8},
		{17, 12, 60, 8},
		{64, 32, 160, 8},
	}
	for _, c := range cases {
		if got := m.BatchCost(c.n, false); got != c.read {
			t.Fatalf("BatchCost(%d, read) = %d, want %d", c.n, got, c.read)
		}
		if got := m.BatchCost(c.n, true); got != c.write {
			t.Fatalf("BatchCost(%d, write) = %d, want %d", c.n, got, c.write)
		}
		if got := m.Depth(c.n); got != c.depth {
			t.Fatalf("Depth(%d) = %d, want %d", c.n, got, c.depth)
		}
	}
	// Flat media: a batch prices exactly like sequential accesses.
	flat := SSD.Model()
	if got := flat.BatchCost(16, true); got != 16*flat.WriteCost {
		t.Fatalf("flat batch cost %d, want %d", got, 16*flat.WriteCost)
	}
}

// TestDeviceBatchCharging drives ReadBatch/WriteBatch on an MQSSD and checks
// the ledger: batch cost at achieved depth, per-page event cost shares that
// sum exactly to it, and the batch counters.
func TestDeviceBatchCharging(t *testing.T) {
	rec := &batchRecorder{}
	d := NewDevice(64, MQSSD, nil)
	d.SetHook(rec)
	ids := allocN(t, d, 12, rum.Base)

	data := make([][]byte, len(ids))
	for i := range data {
		data[i] = bytes.Repeat([]byte{byte(i + 1)}, 64)
	}
	if err := d.WriteBatch(ids, data); err != nil {
		t.Fatal(err)
	}
	// 12 pages over 8 channels: 2 waves of write cost 20 → 40 units.
	if st := d.Stats(); st.PageWrites != 12 || st.CostUnits != 40 || st.Batches != 1 || st.BatchedPages != 12 {
		t.Fatalf("write batch stats: %+v", st)
	}
	pages, err := d.ReadBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, pg := range pages {
		if pg[0] != byte(i+1) {
			t.Fatalf("page %d contents %x", i, pg[0])
		}
	}
	// 12 reads: 2 waves of read cost 4 → 8 more units.
	if st := d.Stats(); st.PageReads != 12 || st.CostUnits != 48 || st.Batches != 2 || st.BatchedPages != 24 {
		t.Fatalf("read batch stats: %+v", st)
	}

	// Per-page event shares sum exactly to each batch's cost, and the batch
	// events arrive after their pages with the achieved depth.
	var wrote, read uint64
	for _, e := range rec.events {
		switch e.Ev {
		case EvWrite:
			wrote += e.Cost
		case EvRead:
			read += e.Cost
		}
	}
	if wrote != 40 || read != 8 {
		t.Fatalf("event cost shares: write %d read %d", wrote, read)
	}
	want := []recordedBatch{{true, 12, 8, 40}, {false, 12, 8, 8}}
	if len(rec.batches) != len(want) {
		t.Fatalf("batch events: %+v", rec.batches)
	}
	for i, b := range rec.batches {
		if b != want[i] {
			t.Fatalf("batch event %d: %+v want %+v", i, b, want[i])
		}
	}
}

// TestBatchSequentialEquivalence checks the fallback contract: on flat media,
// and on any media with an injector armed, batch calls are exactly equivalent
// to per-page calls — same stats, same cost, no batch accounting.
func TestBatchSequentialEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name   string
		medium Medium
		arm    bool
	}{
		{"flat-ssd", SSD, false},
		{"mqssd-injector", MQSSD, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			batched := NewDevice(64, tc.medium, nil)
			plain := NewDevice(64, tc.medium, nil)
			if tc.arm {
				batched.SetInjector(&scriptInjector{})
				plain.SetInjector(&scriptInjector{})
			}
			ids := allocN(t, batched, 6, rum.Base)
			allocN(t, plain, 6, rum.Base)
			data := make([][]byte, len(ids))
			for i := range data {
				data[i] = bytes.Repeat([]byte{byte(i)}, 64)
			}
			if err := batched.WriteBatch(ids, data); err != nil {
				t.Fatal(err)
			}
			if _, err := batched.ReadBatch(ids); err != nil {
				t.Fatal(err)
			}
			for i, id := range ids {
				if err := plain.Write(id, data[i]); err != nil {
					t.Fatal(err)
				}
			}
			for _, id := range ids {
				if _, err := plain.Read(id); err != nil {
					t.Fatal(err)
				}
			}
			bs, ps := batched.Stats(), plain.Stats()
			if bs != ps {
				t.Fatalf("batched stats %+v diverge from sequential %+v", bs, ps)
			}
			if bs.Batches != 0 || bs.BatchedPages != 0 {
				t.Fatalf("sequential fallback counted batches: %+v", bs)
			}
		})
	}
}

// TestBatchValidation: a bad page or short image fails the whole batch
// before any traffic is counted or any page image changes.
func TestBatchValidation(t *testing.T) {
	d := NewDevice(64, MQSSD, nil)
	ids := allocN(t, d, 3, rum.Base)
	good := [][]byte{make([]byte, 64), make([]byte, 64), make([]byte, 64)}
	if err := d.WriteBatch(ids, good[:2]); err == nil {
		t.Fatal("mismatched batch accepted")
	}
	bad := [][]byte{good[0], make([]byte, 10), good[2]}
	if err := d.WriteBatch(ids, bad); err == nil {
		t.Fatal("short image accepted")
	}
	if _, err := d.ReadBatch([]PageID{ids[0], 99, ids[2]}); !errors.Is(err, ErrBadPage) {
		t.Fatalf("bad page in batch: %v", err)
	}
	if st := d.Stats(); st.PageReads != 0 || st.PageWrites != 0 || st.CostUnits != 0 {
		t.Fatalf("failed batch counted traffic: %+v", st)
	}
}

// TestFetchFailureNotCountedAsMiss is the satellite-1 regression: a fetch
// whose device read fails must count a FetchFailure, not a miss, so HitRatio
// is a statement about served requests only.
func TestFetchFailureNotCountedAsMiss(t *testing.T) {
	rec := &recorder{}
	d := NewDevice(64, RAM, nil)
	p := NewBufferPool(d, 4)
	p.SetHook(rec)
	a := d.Alloc(rum.Base)
	d.SetInjector(&scriptInjector{failRead: map[uint64]error{1: permanent()}})
	if _, err := p.Fetch(a); !errors.Is(err, ErrInjected) {
		t.Fatalf("fetch: %v", err)
	}
	st := p.Stats()
	if st.Misses != 0 || st.FetchFailures != 1 {
		t.Fatalf("failed fetch miscounted: %+v", st)
	}
	if got := rec.count(EvMiss); got != 0 {
		t.Fatalf("failed fetch emitted %d EvMiss", got)
	}
	if st.HitRatio() != 0 {
		t.Fatalf("hit ratio after failed fetch: %v", st.HitRatio())
	}
	// The recovery fetch counts the miss — exactly one, matching exactly one
	// successful device read.
	f, err := p.Fetch(a)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(f)
	st = p.Stats()
	if st.Misses != 1 || st.FetchFailures != 1 {
		t.Fatalf("recovery fetch ledger: %+v", st)
	}
	if d.Stats().PageReads != st.Misses {
		t.Fatalf("misses (%d) diverge from device reads (%d)", st.Misses, d.Stats().PageReads)
	}
}

// TestFailureEventCosts is the satellite-2/3 regression: every injected
// failure routes through one path and its events carry the attempted
// operation's weighted cost — including the torn-write crash, which used to
// emit a hand-rolled EvCrash with cost 0.
func TestFailureEventCosts(t *testing.T) {
	rec := &recorder{}
	d := NewDevice(64, SSD, nil)
	d.SetHook(rec)
	id := d.Alloc(rum.Base)

	// Clean write fault: one EvFault at write cost.
	d.SetInjector(&scriptInjector{failWrite: map[uint64]error{1: permanent()}})
	if err := d.Write(id, make([]byte, 64)); err == nil {
		t.Fatal("expected fault")
	}
	if len(rec.events) != 1 || rec.events[0] != (recordedEvent{EvFault, id, rum.Base, 20}) {
		t.Fatalf("write fault events: %+v", rec.events)
	}

	// Torn write without crash: one EvTorn at write cost.
	rec.events = nil
	d.SetInjector(&scriptInjector{
		failWrite: map[uint64]error{1: transient()},
		tornAt:    map[uint64]int{1: 8},
	})
	if err := d.Write(id, make([]byte, 64)); !errors.Is(err, ErrTransient) {
		t.Fatalf("torn write: %v", err)
	}
	if len(rec.events) != 1 || rec.events[0] != (recordedEvent{EvTorn, id, rum.Base, 20}) {
		t.Fatalf("torn write events: %+v", rec.events)
	}

	// Torn write at a crash point: EvTorn then EvCrash, both at write cost,
	// and the device latches.
	rec.events = nil
	d.SetInjector(&scriptInjector{
		failWrite: map[uint64]error{1: crashErr()},
		tornAt:    map[uint64]int{1: 8},
	})
	if err := d.Write(id, make([]byte, 64)); !errors.Is(err, ErrCrash) {
		t.Fatalf("torn crash write: %v", err)
	}
	wantTornCrash := []recordedEvent{
		{EvTorn, id, rum.Base, 20},
		{EvCrash, id, rum.Base, 20},
	}
	if len(rec.events) != 2 || rec.events[0] != wantTornCrash[0] || rec.events[1] != wantTornCrash[1] {
		t.Fatalf("torn crash events: %+v", rec.events)
	}
	if !d.Crashed() {
		t.Fatal("torn crash did not latch the device")
	}
	// No failure counted any traffic.
	if st := d.Stats(); st.PageWrites != 0 || st.CostUnits != 0 {
		t.Fatalf("failures counted traffic: %+v", st)
	}
}

// TestCloneCarriesCostModel is the satellite-5 coverage: a cloned MQSSD
// charges batches exactly like its template.
func TestCloneCarriesCostModel(t *testing.T) {
	d := NewDevice(64, MQSSD, nil)
	allocN(t, d, 16, rum.Base)
	c := d.Clone(nil)
	if c.Medium() != MQSSD {
		t.Fatalf("clone medium %v", c.Medium())
	}
	if cm := c.CostModel(); cm != d.CostModel() || cm.Channels != 8 {
		t.Fatalf("clone cost model %+v, template %+v", cm, d.CostModel())
	}
	before := c.Stats().CostUnits
	if _, err := c.ReadBatch(c.LivePageIDs()); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().CostUnits - before; got != 8 { // 16 pages / 8 channels = 2 waves of 4
		t.Fatalf("clone batch read cost %d, want 8", got)
	}
	if c.Stats().Batches != d.Stats().Batches+1 {
		t.Fatalf("clone batch counter: %d", c.Stats().Batches)
	}
}

// TestPoolBatchedFlushAll: on a multi-queue device the pool drains dirty
// frames in IOBatch-sized submissions, in LRU order, with the same
// write-back ledger as the per-page path.
func TestPoolBatchedFlushAll(t *testing.T) {
	rec := &batchRecorder{}
	d := NewDevice(64, MQSSD, nil)
	p := NewBufferPool(d, 16)
	d.SetHook(rec)
	p.SetHook(rec)
	if p.IOBatch() != 8 {
		t.Fatalf("default IOBatch on MQSSD: %d", p.IOBatch())
	}
	var ids []PageID
	for i := 0; i < 12; i++ {
		f, err := p.NewPage(rum.Base)
		if err != nil {
			t.Fatal(err)
		}
		f.Data()[0] = byte(i + 1)
		ids = append(ids, f.ID())
		p.Release(f)
	}
	p.FlushAll()
	st := p.Stats()
	if st.WriteBacks != 12 || p.DirtyCount() != 0 {
		t.Fatalf("batched flush ledger: %+v dirty=%d", st, p.DirtyCount())
	}
	// 12 dirty frames drain as one 8-page and one 4-page submission:
	// 1 wave of 20 + 1 wave of 20 = 40 cost units, against 240 per-page.
	if got := d.Stats().CostUnits; got != 40 {
		t.Fatalf("batched flush cost %d, want 40", got)
	}
	if d.Stats().Batches != 2 || d.Stats().BatchedPages != 12 {
		t.Fatalf("batched flush submissions: %+v", d.Stats())
	}
	// Write order is LRU order: oldest page first.
	var order []PageID
	for _, e := range rec.events {
		if e.Ev == EvWrite {
			order = append(order, e.ID)
		}
	}
	if len(order) != 12 {
		t.Fatalf("writes: %d", len(order))
	}
	for i, id := range order {
		if id != ids[i] {
			t.Fatalf("write order %v, want LRU order %v", order, ids)
		}
	}
	// The device image carries the frame contents.
	for i, id := range ids {
		pg, err := d.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		if pg[0] != byte(i+1) {
			t.Fatalf("page %d contents %x", id, pg[0])
		}
	}
}

// TestPoolBatchedEvictionGroup: under eviction pressure the pool pre-flushes
// a group of cold dirty frames in one submission, then evicts the strict LRU
// victim.
func TestPoolBatchedEvictionGroup(t *testing.T) {
	d := NewDevice(64, MQSSD, nil)
	p := NewBufferPool(d, 8)
	p.SetIOBatch(4)
	var ids []PageID
	for i := 0; i < 8; i++ {
		f, err := p.NewPage(rum.Base)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, f.ID())
		p.Release(f)
	}
	// The 9th page forces an eviction: the group flush drains the 4 coldest
	// dirty frames in one batch (1 wave of 20), then evicts ids[0].
	f, err := p.NewPage(rum.Base)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(f)
	st := p.Stats()
	if st.Evictions != 1 || st.WriteBacks != 4 {
		t.Fatalf("eviction group ledger: %+v", st)
	}
	if _, cached := p.frames[ids[0]]; cached {
		t.Fatal("LRU victim still cached")
	}
	if _, cached := p.frames[ids[1]]; !cached {
		t.Fatal("eviction group evicted more than the victim")
	}
	if got := d.Stats().CostUnits; got != 20 {
		t.Fatalf("eviction group cost %d, want 20", got)
	}
}

// TestPoolOverflowsAllPinnedBatched: the overflow path is unchanged by
// batched write-back — an all-pinned multi-queue pool still overflows
// rather than evicting, and no batch is submitted for pinned frames.
func TestPoolOverflowsAllPinnedBatched(t *testing.T) {
	d := NewDevice(64, MQSSD, nil)
	p := NewBufferPool(d, 2)
	var frames []*Frame
	for i := 0; i < 5; i++ {
		f, err := p.NewPage(rum.Base)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	if got := p.Stats().Overflows; got != 3 {
		t.Fatalf("overflows: %d", got)
	}
	if d.Stats().PageWrites != 0 || d.Stats().Batches != 0 {
		t.Fatalf("pinned frames were flushed: %+v", d.Stats())
	}
	for _, f := range frames {
		p.Release(f)
	}
	f, err := p.NewPage(rum.Base)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(f)
	st := p.Stats()
	if st.Overflows != 3 || st.Evictions == 0 {
		t.Fatalf("post-release ledger: %+v", st)
	}
}

// TestPoolBatchSkipsUnflushableVictim: with an injector armed the pool
// abandons batching entirely (batch submissions must not blur per-fault
// semantics), and the existing skip-unflushable-victim behaviour holds.
func TestPoolBatchSkipsUnflushableVictim(t *testing.T) {
	d := NewDevice(64, MQSSD, nil)
	p := NewBufferPool(d, 2)
	fa, err := p.NewPage(rum.Base)
	if err != nil {
		t.Fatal(err)
	}
	idA := fa.ID()
	p.Release(fa)
	fb, err := p.NewPage(rum.Base)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(fb)

	// A's flush fails on every attempt; B's succeeds.
	si := &scriptInjector{failWrite: map[uint64]error{}}
	si.failWrite[1] = permanent() // first write attempt (A, the LRU victim)
	d.SetInjector(si)
	c := d.Alloc(rum.Base)
	fc, err := p.Fetch(c)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(fc)
	st := p.Stats()
	if st.Evictions != 1 || st.FlushFailures != 1 {
		t.Fatalf("faulted eviction ledger: %+v", st)
	}
	if _, cached := p.frames[idA]; !cached {
		t.Fatal("unflushable frame was dropped")
	}
	if d.Stats().Batches != 0 {
		t.Fatal("batch submitted with injector armed")
	}
}

// TestPoolReadahead: prefetched pages install unpinned and clean, count
// misses matching their device reads, and turn the demand fetches into hits.
func TestPoolReadahead(t *testing.T) {
	rec := &batchRecorder{}
	d := NewDevice(64, MQSSD, nil)
	p := NewBufferPool(d, 24)
	ids := allocN(t, d, 12, rum.Base)
	for i, id := range ids {
		if err := d.Write(id, bytes.Repeat([]byte{byte(i + 1)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	d.ResetStats()
	d.SetHook(rec)
	p.SetHook(rec)

	if got := p.Readahead(ids); got != 12 {
		t.Fatalf("readahead installed %d, want 12", got)
	}
	// 12 pages in two submissions (8 + 4): 2 waves of 4 = 8 cost units.
	if st := d.Stats(); st.PageReads != 12 || st.CostUnits != 8 || st.Batches != 2 {
		t.Fatalf("readahead device ledger: %+v", st)
	}
	st := p.Stats()
	if st.Misses != 12 || st.Hits != 0 {
		t.Fatalf("readahead pool ledger: %+v", st)
	}
	if st.Misses != d.Stats().PageReads {
		t.Fatalf("misses (%d) diverge from device reads (%d)", st.Misses, d.Stats().PageReads)
	}
	// Demand fetches are now hits, at no further device cost.
	for i, id := range ids {
		f, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		if f.Data()[0] != byte(i+1) {
			t.Fatalf("prefetched page %d contents %x", id, f.Data()[0])
		}
		p.Release(f)
	}
	st = p.Stats()
	if st.Hits != 12 || st.Misses != 12 {
		t.Fatalf("post-fetch ledger: %+v", st)
	}
	if got := d.Stats().PageReads; got != 12 {
		t.Fatalf("demand fetches re-read the device: %d", got)
	}
	// Already-cached pages are skipped; a second readahead is free.
	if got := p.Readahead(ids); got != 0 {
		t.Fatalf("second readahead installed %d", got)
	}
	// A prefetch is clamped to half the pool: it must never wipe the demand
	// working set.
	sp := NewBufferPool(d, 8)
	if got := sp.Readahead(ids); got != 4 {
		t.Fatalf("half-pool clamp installed %d, want 4", got)
	}
	// Flat media: readahead declines to prefetch at all.
	fd := NewDevice(64, SSD, nil)
	fp := NewBufferPool(fd, 8)
	fids := allocN(t, fd, 4, rum.Base)
	if got := fp.Readahead(fids); got != 0 {
		t.Fatalf("flat-media readahead installed %d", got)
	}
	if fd.Stats().PageReads != 0 {
		t.Fatal("flat-media readahead touched the device")
	}
}
