// Package storage simulates the block storage substrate that the paper's
// cost model (the Aggarwal–Vitter I/O model used in Table 1) assumes: data
// lives in fixed-size pages, every access moves whole pages, and the cost of
// an operation is the number of pages it touches, weighted by the medium.
//
// A Device counts page reads and writes and feeds them into a rum.Meter so
// that read and write amplification of page-based access methods fall out of
// the accounting automatically. A BufferPool models the MEM parameter of
// Table 1: pages cached in the pool are served without device traffic.
package storage

import (
	"errors"
	"fmt"

	"repro/internal/rum"
)

// PageID identifies a page on a Device. Zero is a valid page.
type PageID uint32

// InvalidPage is a sentinel PageID used for "no page".
const InvalidPage = PageID(^uint32(0))

// Medium describes the simulated storage technology. It sets relative access
// costs, used to produce the paper's observation that different hardware
// shifts RUM priorities (flash penalizes writes, disk penalizes random reads).
type Medium int

const (
	// RAM has symmetric, cheap accesses.
	RAM Medium = iota
	// SSD reads cheaply but pays a write penalty (flash asymmetry, §2).
	SSD
	// HDD pays a large cost on every page access (seek-dominated).
	HDD
	// SMR models shingled disks: HDD reads, very expensive random writes.
	SMR
)

// String names the medium.
func (m Medium) String() string {
	switch m {
	case RAM:
		return "ram"
	case SSD:
		return "ssd"
	case HDD:
		return "hdd"
	case SMR:
		return "smr"
	default:
		return fmt.Sprintf("medium(%d)", int(m))
	}
}

// costs returns (readCost, writeCost) per page in abstract time units.
func (m Medium) costs() (read, write uint64) {
	switch m {
	case RAM:
		return 1, 1
	case SSD:
		return 4, 20
	case HDD:
		return 100, 100
	case SMR:
		return 100, 400
	default:
		return 1, 1
	}
}

// DeviceStats aggregates the traffic a Device has served.
type DeviceStats struct {
	PageReads      uint64
	PageWrites     uint64
	PagesAllocated uint64
	PagesFreed     uint64
	CostUnits      uint64 // medium-weighted access cost
}

// Errors returned by Device operations.
var (
	ErrBadPage  = errors.New("storage: invalid page id")
	ErrFreed    = errors.New("storage: page already freed")
	ErrInjected = errors.New("storage: injected fault")
)

// FaultPlan injects deterministic I/O failures for resilience tests: after
// the countdown reaches zero, every Nth matching operation fails with
// ErrInjected.
type FaultPlan struct {
	// FailReadAfter fails page reads once this many have succeeded
	// (0 disables).
	FailReadAfter uint64
	// FailWriteAfter fails page writes once this many have succeeded
	// (0 disables).
	FailWriteAfter uint64
}

// Device is a simulated page-granular storage device. It is the single point
// through which page-based access methods touch data, so its counters are the
// ground truth for read and write amplification.
//
// A Device is single-owner: it is not safe for concurrent use, and the
// parallel bench runner relies on every run cell constructing (or Cloning)
// its own Device rather than sharing one — sharing would corrupt the meter
// and stats silently. Builds with -tags racecheck bind each Device to the
// first goroutine that touches it and panic on use from any other.
type Device struct {
	owner     owner
	pageSize  int
	medium    Medium
	pages     [][]byte
	class     []rum.Class
	live      []bool
	freeList  []PageID
	stats     DeviceStats
	meter     *rum.Meter
	readCost  uint64
	writeCost uint64
	faults    *FaultPlan
	hook      Hook
}

// NewDevice creates a device with the given page size and medium, feeding its
// traffic into meter. A nil meter is replaced with a private one.
func NewDevice(pageSize int, medium Medium, meter *rum.Meter) *Device {
	if pageSize <= 0 {
		panic("storage: page size must be positive")
	}
	if meter == nil {
		meter = &rum.Meter{}
	}
	r, w := medium.costs()
	return &Device{
		pageSize:  pageSize,
		medium:    medium,
		meter:     meter,
		readCost:  r,
		writeCost: w,
	}
}

// InjectFaults arms (or, with nil, disarms) deterministic I/O failures.
func (d *Device) InjectFaults(plan *FaultPlan) { d.faults = plan }

// SetHook attaches (or, with nil, detaches) an observer for page events.
func (d *Device) SetHook(h Hook) { d.hook = h }

// faultRead reports whether this read should fail, consuming the budget.
func (d *Device) faultRead() bool {
	if d.faults == nil || d.faults.FailReadAfter == 0 {
		return false
	}
	d.faults.FailReadAfter--
	return d.faults.FailReadAfter == 0
}

func (d *Device) faultWrite() bool {
	if d.faults == nil || d.faults.FailWriteAfter == 0 {
		return false
	}
	d.faults.FailWriteAfter--
	return d.faults.FailWriteAfter == 0
}

// PageSize returns the device page size in bytes.
func (d *Device) PageSize() int { return d.pageSize }

// Medium returns the simulated storage technology.
func (d *Device) Medium() Medium { return d.medium }

// Meter returns the rum.Meter the device reports traffic to.
func (d *Device) Meter() *rum.Meter { return d.meter }

// Stats returns a copy of the device traffic counters.
func (d *Device) Stats() DeviceStats { return d.stats }

// ResetStats zeroes the traffic counters (allocation counts are kept, since
// they describe current occupancy rather than traffic).
func (d *Device) ResetStats() {
	d.stats.PageReads = 0
	d.stats.PageWrites = 0
	d.stats.CostUnits = 0
}

// LivePages returns the number of currently allocated pages.
func (d *Device) LivePages() int {
	return int(d.stats.PagesAllocated - d.stats.PagesFreed)
}

// LiveBytes returns SizeInfo for the currently allocated pages, split by the
// rum.Class they were allocated under.
func (d *Device) LiveBytes() rum.SizeInfo {
	var s rum.SizeInfo
	for id, alive := range d.live {
		if !alive {
			continue
		}
		if d.class[id] == rum.Base {
			s.BaseBytes += uint64(d.pageSize)
		} else {
			s.AuxBytes += uint64(d.pageSize)
		}
	}
	return s
}

// Alloc allocates a zeroed page of the given data class and returns its id.
func (d *Device) Alloc(c rum.Class) PageID {
	d.owner.assert("Device")
	d.stats.PagesAllocated++
	if n := len(d.freeList); n > 0 {
		id := d.freeList[n-1]
		d.freeList = d.freeList[:n-1]
		clear(d.pages[id])
		d.class[id] = c
		d.live[id] = true
		return id
	}
	id := PageID(len(d.pages))
	d.pages = append(d.pages, make([]byte, d.pageSize))
	d.class = append(d.class, c)
	d.live = append(d.live, true)
	return id
}

// Free releases a page back to the device.
func (d *Device) Free(id PageID) error {
	d.owner.assert("Device")
	if err := d.check(id); err != nil {
		return err
	}
	d.live[id] = false
	d.freeList = append(d.freeList, id)
	d.stats.PagesFreed++
	return nil
}

func (d *Device) check(id PageID) error {
	if int(id) >= len(d.pages) {
		return fmt.Errorf("%w: %d", ErrBadPage, id)
	}
	if !d.live[id] {
		return fmt.Errorf("%w: %d", ErrFreed, id)
	}
	return nil
}

// Read returns the contents of a page, counting one page read. The returned
// slice aliases device memory; callers must copy it if they intend to keep it
// across a Write to the same page.
func (d *Device) Read(id PageID) ([]byte, error) {
	d.owner.assert("Device")
	if err := d.check(id); err != nil {
		return nil, err
	}
	if d.faultRead() {
		return nil, fmt.Errorf("%w: read of page %d", ErrInjected, id)
	}
	d.stats.PageReads++
	d.stats.CostUnits += d.readCost
	d.meter.CountRead(d.class[id], d.pageSize)
	if d.hook != nil {
		d.hook.StorageEvent(EvRead, id, d.class[id], d.readCost)
	}
	return d.pages[id], nil
}

// Write replaces the contents of a page, counting one page write. data must
// be exactly one page long.
func (d *Device) Write(id PageID, data []byte) error {
	d.owner.assert("Device")
	if err := d.check(id); err != nil {
		return err
	}
	if len(data) != d.pageSize {
		return fmt.Errorf("storage: write of %d bytes to page of %d", len(data), d.pageSize)
	}
	if d.faultWrite() {
		return fmt.Errorf("%w: write of page %d", ErrInjected, id)
	}
	d.stats.PageWrites++
	d.stats.CostUnits += d.writeCost
	d.meter.CountWrite(d.class[id], d.pageSize)
	if d.hook != nil {
		d.hook.StorageEvent(EvWrite, id, d.class[id], d.writeCost)
	}
	copy(d.pages[id], data)
	return nil
}

// WriteInPlace counts a page write and returns the page buffer for the caller
// to mutate directly, avoiding a copy. It is the fast path used by the buffer
// pool when flushing dirty frames it already owns.
func (d *Device) WriteInPlace(id PageID) ([]byte, error) {
	d.owner.assert("Device")
	if err := d.check(id); err != nil {
		return nil, err
	}
	if d.faultWrite() {
		return nil, fmt.Errorf("%w: write of page %d", ErrInjected, id)
	}
	d.stats.PageWrites++
	d.stats.CostUnits += d.writeCost
	d.meter.CountWrite(d.class[id], d.pageSize)
	if d.hook != nil {
		d.hook.StorageEvent(EvWrite, id, d.class[id], d.writeCost)
	}
	return d.pages[id], nil
}

// Clone returns a deep copy of the device — page images, classes, free list,
// and stats — reporting its traffic to meter (nil selects a private one).
// Cloning is how concurrent run cells start from an identical preloaded
// image without sharing mutable state: preload a template once, then each
// cell clones it and owns the copy. The clone has no fault plan or hook, and
// under -tags racecheck it is unowned until first touched.
func (d *Device) Clone(meter *rum.Meter) *Device {
	if meter == nil {
		meter = &rum.Meter{}
	}
	nd := &Device{
		pageSize:  d.pageSize,
		medium:    d.medium,
		meter:     meter,
		readCost:  d.readCost,
		writeCost: d.writeCost,
		stats:     d.stats,
		pages:     make([][]byte, len(d.pages)),
		class:     append([]rum.Class(nil), d.class...),
		live:      append([]bool(nil), d.live...),
		freeList:  append([]PageID(nil), d.freeList...),
	}
	for i, pg := range d.pages {
		nd.pages[i] = append([]byte(nil), pg...)
	}
	return nd
}

// Class returns the data class a page was allocated under.
func (d *Device) Class(id PageID) rum.Class {
	if int(id) >= len(d.class) {
		return rum.Aux
	}
	return d.class[id]
}
