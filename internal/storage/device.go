// Package storage simulates the block storage substrate that the paper's
// cost model (the Aggarwal–Vitter I/O model used in Table 1) assumes: data
// lives in fixed-size pages, every access moves whole pages, and the cost of
// an operation is the number of pages it touches, weighted by the medium.
//
// A Device counts page reads and writes and feeds them into a rum.Meter so
// that read and write amplification of page-based access methods fall out of
// the accounting automatically. A BufferPool models the MEM parameter of
// Table 1: pages cached in the pool are served without device traffic.
package storage

import (
	"errors"
	"fmt"

	"repro/internal/rum"
)

// PageID identifies a page on a Device. Zero is a valid page.
type PageID uint32

// InvalidPage is a sentinel PageID used for "no page".
const InvalidPage = PageID(^uint32(0))

// Medium describes the simulated storage technology. It sets relative access
// costs, used to produce the paper's observation that different hardware
// shifts RUM priorities (flash penalizes writes, disk penalizes random reads).
type Medium int

const (
	// RAM has symmetric, cheap accesses.
	RAM Medium = iota
	// SSD reads cheaply but pays a write penalty (flash asymmetry, §2).
	SSD
	// HDD pays a large cost on every page access (seek-dominated).
	HDD
	// SMR models shingled disks: HDD reads, very expensive random writes.
	SMR
	// MQSSD is a multi-queue NVMe SSD: per-page service times identical to
	// SSD, but with internal channel parallelism, so batched submissions
	// amortize their service time across the achieved queue depth (see
	// CostModel). Depth-1 traffic prices exactly like SSD.
	MQSSD
)

// String names the medium.
func (m Medium) String() string {
	switch m {
	case RAM:
		return "ram"
	case SSD:
		return "ssd"
	case HDD:
		return "hdd"
	case SMR:
		return "smr"
	case MQSSD:
		return "mqssd"
	default:
		// Invalid media cannot reach a Device (NewDevice panics), but the
		// diagnostic form is kept for error paths that print a raw value.
		return fmt.Sprintf("medium(%d)", int(m))
	}
}

// DeviceStats aggregates the traffic a Device has served.
type DeviceStats struct {
	PageReads      uint64
	PageWrites     uint64
	PagesAllocated uint64
	PagesFreed     uint64
	CostUnits      uint64 // medium-weighted access cost
	// Batches counts batch submissions charged at depth (ReadBatch and
	// WriteBatch calls that took the amortized path); BatchedPages is the
	// pages they carried. Per-page traffic within batches still counts in
	// PageReads/PageWrites.
	Batches      uint64
	BatchedPages uint64
}

// Errors returned by Device operations.
var (
	ErrBadPage  = errors.New("storage: invalid page id")
	ErrFreed    = errors.New("storage: page already freed")
	ErrInjected = errors.New("storage: injected fault")
	// ErrTransient marks an injected fault as retryable: a repeated attempt
	// may succeed (the buffer pool's retry budget only retries these). It
	// wraps ErrInjected, so errors.Is(err, ErrInjected) also holds.
	ErrTransient = fmt.Errorf("%w (transient)", ErrInjected)
	// ErrCrash is the crash sentinel: once an injected fault wraps it, the
	// device latches into the crashed state and every subsequent Read,
	// Write, and Free fails with it until Reopen is called. It simulates
	// the process dying at that instant — whatever was not yet written to
	// the device (dirty buffer-pool frames, in-memory metadata) is lost.
	ErrCrash = errors.New("storage: device crashed")
)

// FaultInjector decides, per device operation, whether to inject a failure.
// The canonical implementation is internal/faults.Injector, a deterministic
// seed-driven scheduler; tests may supply their own. An injector is
// single-owner like the Device it is armed on: it is consulted from the
// device's goroutine only, and never shared between run cells.
type FaultInjector interface {
	// ReadFault is consulted once per page read. A non-nil error fails the
	// read (no traffic is counted). Errors wrapping ErrTransient are
	// retryable; errors wrapping ErrCrash latch the device.
	ReadFault(id PageID) error
	// WriteFault is consulted once per page write. A non-nil error fails
	// the write; torn > 0 additionally persists the first torn bytes of
	// the page image before failing — a torn (partial) page write. torn is
	// ignored when err is nil.
	WriteFault(id PageID, pageSize int) (torn int, err error)
}

// Device is a simulated page-granular storage device. It is the single point
// through which page-based access methods touch data, so its counters are the
// ground truth for read and write amplification.
//
// A Device is single-writer: its mutating and metering entry points are not
// safe for concurrent use, and the parallel bench runner relies on every run
// cell constructing (or Cloning) its own Device rather than sharing one —
// sharing would corrupt the meter and stats silently. Builds with
// -tags racecheck bind each Device to the first goroutine that touches it
// and panic on use from any other. Concurrent readers are supported only
// through PageView (see view.go): an immutable capture of the page table
// that MVCC structures hand to snapshot readers, guarded in racecheck builds
// by per-page generation stamps instead of the goroutine binding.
type Device struct {
	owner     owner
	gen       pagegen
	pageSize  int
	medium    Medium
	pages     [][]byte
	class     []rum.Class
	live      []bool
	freeList  []PageID
	stats     DeviceStats
	meter     *rum.Meter
	model     CostModel
	injector  FaultInjector
	crashed   bool
	hook      Hook
	batchHook BatchHook // hook's BatchHook side, cached at SetHook; nil if none
}

// NewDevice creates a device with the given page size and medium, feeding its
// traffic into meter. A nil meter is replaced with a private one. An unknown
// medium panics: a silently-wrong cost ledger is worse than a crash at
// construction time.
func NewDevice(pageSize int, medium Medium, meter *rum.Meter) *Device {
	if pageSize <= 0 {
		panic("storage: page size must be positive")
	}
	if !medium.valid() {
		panic(fmt.Sprintf("storage: invalid medium %d (want RAM/SSD/HDD/SMR/MQSSD)", int(medium)))
	}
	if meter == nil {
		meter = &rum.Meter{}
	}
	return &Device{
		pageSize: pageSize,
		medium:   medium,
		meter:    meter,
		model:    medium.Model(),
	}
}

// SetInjector arms (or, with nil, disarms) a fault injector. The injector is
// consulted on every subsequent Read, Write, and WriteInPlace.
func (d *Device) SetInjector(inj FaultInjector) { d.injector = inj }

// Injector returns the currently armed fault injector, or nil.
func (d *Device) Injector() FaultInjector { return d.injector }

// Faulty reports whether a fault injector is armed. The buffer pool uses it
// to pick the copying Write path for flushes (so a torn write cannot corrupt
// the frame it flushes from) instead of the zero-copy WriteInPlace fast path.
func (d *Device) Faulty() bool { return d.injector != nil }

// Crashed reports whether the device is latched in the crashed state.
func (d *Device) Crashed() bool { return d.crashed }

// Reopen clears the crash latch, simulating a process restart against the
// surviving device image. Page contents, allocation state, and traffic
// counters are untouched; the injector stays armed (callers that want a
// clean post-crash device also call SetInjector(nil)).
func (d *Device) Reopen() { d.crashed = false }

// SetHook attaches (or, with nil, detaches) an observer for page events.
// Hooks that also implement BatchHook additionally receive one batch event
// per amortized ReadBatch/WriteBatch submission.
func (d *Device) SetHook(h Hook) {
	d.hook = h
	d.batchHook, _ = h.(BatchHook)
}

// fail is the single exit for every injected failure: it classifies err,
// latches the crash state when err wraps ErrCrash, emits the matching hook
// event(s), and returns the error annotated with the operation. cost is the
// medium-weighted cost of the attempted operation — the event carries what
// the failure cost, even though the failed transfer counts no traffic in
// stats or the meter (the hook event is its only trace). torn > 0 marks a
// torn write (that many bytes persisted before the failure): the event is
// EvTorn, followed by EvCrash when the tear was also the crash point.
func (d *Device) fail(err error, op string, id PageID, torn int, cost uint64) error {
	crash := errors.Is(err, ErrCrash)
	if crash {
		d.crashed = true
	}
	if torn > 0 {
		if d.hook != nil {
			d.hook.StorageEvent(EvTorn, id, d.class[id], cost)
			if crash {
				d.hook.StorageEvent(EvCrash, id, d.class[id], cost)
			}
		}
		return fmt.Errorf("%w: torn %s of page %d (%d/%d bytes persisted)",
			err, op, id, torn, d.pageSize)
	}
	if d.hook != nil {
		ev := EvFault
		if crash {
			ev = EvCrash
		}
		d.hook.StorageEvent(ev, id, d.class[id], cost)
	}
	return fmt.Errorf("%w: %s of page %d", err, op, id)
}

// PageSize returns the device page size in bytes.
func (d *Device) PageSize() int { return d.pageSize }

// Medium returns the simulated storage technology.
func (d *Device) Medium() Medium { return d.medium }

// CostModel returns the pricing model the device charges traffic under.
func (d *Device) CostModel() CostModel { return d.model }

// Meter returns the rum.Meter the device reports traffic to.
func (d *Device) Meter() *rum.Meter { return d.meter }

// Stats returns a copy of the device traffic counters.
func (d *Device) Stats() DeviceStats { return d.stats }

// ResetStats zeroes the traffic counters (allocation counts are kept, since
// they describe current occupancy rather than traffic).
func (d *Device) ResetStats() {
	d.stats.PageReads = 0
	d.stats.PageWrites = 0
	d.stats.CostUnits = 0
}

// LivePages returns the number of currently allocated pages.
func (d *Device) LivePages() int {
	return int(d.stats.PagesAllocated - d.stats.PagesFreed)
}

// LivePageIDs returns the ids of all currently allocated pages in ascending
// order. Recovery code uses it to scan the surviving image after a crash.
func (d *Device) LivePageIDs() []PageID {
	ids := make([]PageID, 0, d.LivePages())
	for id, alive := range d.live {
		if alive {
			ids = append(ids, PageID(id))
		}
	}
	return ids
}

// LiveBytes returns SizeInfo for the currently allocated pages, split by the
// rum.Class they were allocated under.
func (d *Device) LiveBytes() rum.SizeInfo {
	var s rum.SizeInfo
	for id, alive := range d.live {
		if !alive {
			continue
		}
		if d.class[id] == rum.Base {
			s.BaseBytes += uint64(d.pageSize)
		} else {
			s.AuxBytes += uint64(d.pageSize)
		}
	}
	return s
}

// Alloc allocates a zeroed page of the given data class and returns its id.
func (d *Device) Alloc(c rum.Class) PageID {
	d.owner.assert("Device")
	d.stats.PagesAllocated++
	if n := len(d.freeList); n > 0 {
		id := d.freeList[n-1]
		d.freeList = d.freeList[:n-1]
		clear(d.pages[id])
		d.class[id] = c
		d.live[id] = true
		return id
	}
	id := PageID(len(d.pages))
	d.pages = append(d.pages, make([]byte, d.pageSize))
	d.class = append(d.class, c)
	d.live = append(d.live, true)
	d.gen.grow(len(d.pages))
	return id
}

// Free releases a page back to the device. After a crash Free fails with
// ErrCrash: the surviving image is evidence for recovery, and a structure
// must not be able to release pages it no longer remembers owning. (Alloc
// stays available post-crash — recovery legitimately allocates, and any
// orphaned zeroed pages it abandons are garbage-collected by the reopened
// structure.)
func (d *Device) Free(id PageID) error {
	d.owner.assert("Device")
	if d.crashed {
		return fmt.Errorf("%w: free of page %d", ErrCrash, id)
	}
	if err := d.check(id); err != nil {
		return err
	}
	d.live[id] = false
	d.freeList = append(d.freeList, id)
	d.stats.PagesFreed++
	d.gen.bump(id)
	return nil
}

func (d *Device) check(id PageID) error {
	if int(id) >= len(d.pages) {
		return fmt.Errorf("%w: %d", ErrBadPage, id)
	}
	if !d.live[id] {
		return fmt.Errorf("%w: %d", ErrFreed, id)
	}
	return nil
}

// Read returns the contents of a page, counting one page read. The returned
// slice aliases device memory; callers must copy it if they intend to keep it
// across a Write to the same page.
func (d *Device) Read(id PageID) ([]byte, error) {
	d.owner.assert("Device")
	if d.crashed {
		return nil, fmt.Errorf("%w: read of page %d", ErrCrash, id)
	}
	if err := d.check(id); err != nil {
		return nil, err
	}
	if d.injector != nil {
		if err := d.injector.ReadFault(id); err != nil {
			return nil, d.fail(err, "read", id, 0, d.model.ReadCost)
		}
	}
	d.stats.PageReads++
	d.stats.CostUnits += d.model.ReadCost
	d.meter.CountRead(d.class[id], d.pageSize)
	if d.hook != nil {
		d.hook.StorageEvent(EvRead, id, d.class[id], d.model.ReadCost)
	}
	return d.pages[id], nil
}

// Write replaces the contents of a page, counting one page write. data must
// be exactly one page long.
func (d *Device) Write(id PageID, data []byte) error {
	d.owner.assert("Device")
	if d.crashed {
		return fmt.Errorf("%w: write of page %d", ErrCrash, id)
	}
	if err := d.check(id); err != nil {
		return err
	}
	if len(data) != d.pageSize {
		return fmt.Errorf("storage: write of %d bytes to page of %d", len(data), d.pageSize)
	}
	if d.injector != nil {
		if torn, err := d.injector.WriteFault(id, d.pageSize); err != nil {
			if torn > 0 {
				// Torn write: a prefix of the page image reached the
				// medium before the failure. The head did move, so the
				// event carries the write cost, but the failed write
				// still counts no stats or meter traffic.
				if torn > d.pageSize {
					torn = d.pageSize
				}
				copy(d.pages[id][:torn], data[:torn])
				return d.fail(err, "write", id, torn, d.model.WriteCost)
			}
			return d.fail(err, "write", id, 0, d.model.WriteCost)
		}
	}
	d.stats.PageWrites++
	d.stats.CostUnits += d.model.WriteCost
	d.meter.CountWrite(d.class[id], d.pageSize)
	if d.hook != nil {
		d.hook.StorageEvent(EvWrite, id, d.class[id], d.model.WriteCost)
	}
	copy(d.pages[id], data)
	return nil
}

// WriteInPlace counts a page write and returns the page buffer for the caller
// to mutate directly, avoiding a copy. It is the fast path used by the buffer
// pool when flushing dirty frames it already owns and no injector is armed.
// Injected write faults degrade to clean failures here (nothing is persisted):
// a torn write needs the new image to copy a prefix from, and in-place callers
// have not handed one over yet.
func (d *Device) WriteInPlace(id PageID) ([]byte, error) {
	d.owner.assert("Device")
	if d.crashed {
		return nil, fmt.Errorf("%w: write of page %d", ErrCrash, id)
	}
	if err := d.check(id); err != nil {
		return nil, err
	}
	if d.injector != nil {
		if _, err := d.injector.WriteFault(id, d.pageSize); err != nil {
			return nil, d.fail(err, "write", id, 0, d.model.WriteCost)
		}
	}
	d.stats.PageWrites++
	d.stats.CostUnits += d.model.WriteCost
	d.meter.CountWrite(d.class[id], d.pageSize)
	if d.hook != nil {
		d.hook.StorageEvent(EvWrite, id, d.class[id], d.model.WriteCost)
	}
	return d.pages[id], nil
}

// batchable reports whether a batch of n pages takes the amortized
// charging path. It requires real channel parallelism and a clean device:
// with an injector armed (or the device crashed) batches degrade to the
// sequential per-page path, so fault consultation order, per-fault
// semantics, and the resulting ledgers are identical to unbatched callers.
func (d *Device) batchable(n int) bool {
	return n > 1 && d.model.Channels > 1 && d.injector == nil && !d.crashed
}

// ReadBatch reads every page in ids as one batch submission. On a
// multi-queue medium the whole batch is charged CostModel.BatchCost — the
// service time amortized across the achieved queue depth — instead of n
// sequential reads; per-page EvRead events carry cost shares that sum
// exactly to the batch cost, followed by one BatchHook event carrying the
// achieved depth. On flat media, or whenever an injector is armed, it is
// exactly equivalent to calling Read per page. The returned slices alias
// device memory, like Read. Invalid pages fail the whole batch before any
// traffic is counted.
func (d *Device) ReadBatch(ids []PageID) ([][]byte, error) {
	d.owner.assert("Device")
	if !d.batchable(len(ids)) {
		out := make([][]byte, len(ids))
		for i, id := range ids {
			pg, err := d.Read(id)
			if err != nil {
				return nil, err
			}
			out[i] = pg
		}
		return out, nil
	}
	for _, id := range ids {
		if err := d.check(id); err != nil {
			return nil, err
		}
	}
	n := len(ids)
	cost := d.model.BatchCost(n, false)
	d.stats.PageReads += uint64(n)
	d.stats.CostUnits += cost
	d.stats.Batches++
	d.stats.BatchedPages += uint64(n)
	out := make([][]byte, n)
	share, extra := cost/uint64(n), int(cost%uint64(n))
	for i, id := range ids {
		d.meter.CountRead(d.class[id], d.pageSize)
		if d.hook != nil {
			c := share
			if i < extra {
				c++
			}
			d.hook.StorageEvent(EvRead, id, d.class[id], c)
		}
		out[i] = d.pages[id]
	}
	if d.batchHook != nil {
		d.batchHook.StorageBatch(false, n, d.model.Depth(n), cost)
	}
	return out, nil
}

// WriteBatch writes data[i] to ids[i] as one batch submission, with the same
// charging rule as ReadBatch: amortized at the achieved depth on multi-queue
// media, exactly equivalent to per-page Write calls on flat media or with an
// injector armed. Every data slice must be exactly one page. Invalid pages
// or lengths fail the whole batch before any traffic is counted or any page
// image changes.
func (d *Device) WriteBatch(ids []PageID, data [][]byte) error {
	d.owner.assert("Device")
	if len(ids) != len(data) {
		return fmt.Errorf("storage: batch write of %d pages with %d images", len(ids), len(data))
	}
	if !d.batchable(len(ids)) {
		for i, id := range ids {
			if err := d.Write(id, data[i]); err != nil {
				return err
			}
		}
		return nil
	}
	for i, id := range ids {
		if err := d.check(id); err != nil {
			return err
		}
		if len(data[i]) != d.pageSize {
			return fmt.Errorf("storage: write of %d bytes to page of %d", len(data[i]), d.pageSize)
		}
	}
	n := len(ids)
	cost := d.model.BatchCost(n, true)
	d.stats.PageWrites += uint64(n)
	d.stats.CostUnits += cost
	d.stats.Batches++
	d.stats.BatchedPages += uint64(n)
	share, extra := cost/uint64(n), int(cost%uint64(n))
	for i, id := range ids {
		d.meter.CountWrite(d.class[id], d.pageSize)
		if d.hook != nil {
			c := share
			if i < extra {
				c++
			}
			d.hook.StorageEvent(EvWrite, id, d.class[id], c)
		}
		copy(d.pages[id], data[i])
	}
	if d.batchHook != nil {
		d.batchHook.StorageBatch(true, n, d.model.Depth(n), cost)
	}
	return nil
}

// Clone returns a deep copy of the device — page images, classes, free list,
// cost model, and stats — reporting its traffic to meter (nil selects a
// private one).
// Cloning is how concurrent run cells start from an identical preloaded
// image without sharing mutable state: preload a template once, then each
// cell clones it and owns the copy. The clone has no injector, crash latch,
// or hook, and under -tags racecheck it is unowned until first touched.
func (d *Device) Clone(meter *rum.Meter) *Device {
	if meter == nil {
		meter = &rum.Meter{}
	}
	nd := &Device{
		pageSize: d.pageSize,
		medium:   d.medium,
		meter:    meter,
		model:    d.model,
		stats:    d.stats,
		pages:     make([][]byte, len(d.pages)),
		class:     append([]rum.Class(nil), d.class...),
		live:      append([]bool(nil), d.live...),
		freeList:  append([]PageID(nil), d.freeList...),
	}
	for i, pg := range d.pages {
		nd.pages[i] = append([]byte(nil), pg...)
	}
	return nd
}

// Class returns the data class a page was allocated under.
func (d *Device) Class(id PageID) rum.Class {
	if int(id) >= len(d.class) {
		return rum.Aux
	}
	return d.class[id]
}
