//go:build racecheck

package storage

import (
	"testing"

	"repro/internal/rum"
)

// TestOwnercheckCrossGoroutine verifies the racecheck build turns cross-
// goroutine use of a Device into a panic instead of silent meter corruption.
func TestOwnercheckCrossGoroutine(t *testing.T) {
	d := NewDevice(64, RAM, nil)
	id := d.Alloc(rum.Base) // binds d to this goroutine
	if _, err := d.Read(id); err != nil {
		t.Fatal(err)
	}
	violated := make(chan bool, 1)
	go func() {
		defer func() { violated <- recover() != nil }()
		d.Read(id)
	}()
	if !<-violated {
		t.Fatal("cross-goroutine Device use did not panic under -tags racecheck")
	}
}

// TestOwnercheckSameGoroutine verifies repeated use from the owner stays
// silent, including through a BufferPool.
func TestOwnercheckSameGoroutine(t *testing.T) {
	p := NewBufferPool(NewDevice(64, RAM, nil), 2)
	f, err := p.NewPage(rum.Base)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(f)
	p.FlushAll()
	p.DropAll()
}
