//go:build racecheck

package storage

import (
	"fmt"
	"sync/atomic"
)

// pagegen extends the racecheck contract from single-owner to single-writer/
// many-reader: the writer goroutine still binds the Device via owner.assert,
// and reader goroutines — which touch pages only through a PageView — get
// their own assertion that every page they read is still covered by the view
// they acquired. Each page carries a generation counter, bumped when the page
// is freed (the first step of any reuse); a PageView captures the counters at
// View() time and every Page() access re-reads the live counter. A mismatch
// means deferred reclamation was violated: the writer freed or reused a page
// while a reader could still reach it — exactly the class of bug that would
// silently return torn or recycled bytes in a release build.
//
// The live counters are published through an atomic pointer to an array of
// atomics: the writer (alone) grows and bumps, readers only load, so the
// check is lock-free on the read path. The O(pages) capture at View() is the
// debug-build price of making every reader access individually attributable.
type pagegen struct {
	arr atomic.Pointer[[]atomic.Uint64]
}

// grow ensures capacity for n pages. Writer goroutine only.
func (g *pagegen) grow(n int) {
	old := g.arr.Load()
	if old != nil && len(*old) >= n {
		return
	}
	cap := 64
	if old != nil {
		cap = len(*old) * 2
	}
	for cap < n {
		cap *= 2
	}
	next := make([]atomic.Uint64, cap)
	if old != nil {
		for i := range *old {
			next[i].Store((*old)[i].Load())
		}
	}
	g.arr.Store(&next)
}

// bump marks a page as retired from the current image. Writer goroutine only.
func (g *pagegen) bump(id PageID) {
	g.grow(int(id) + 1)
	(*g.arr.Load())[id].Add(1)
}

// capture snapshots the first n generation counters for a new PageView.
// Writer goroutine only.
func (g *pagegen) capture(n int) viewstamp {
	g.grow(n)
	arr := g.arr.Load()
	gens := make([]uint64, n)
	for i := range gens {
		gens[i] = (*arr)[i].Load()
	}
	return viewstamp{gens: gens, live: g}
}

// viewstamp carries the captured generations plus a handle to the live
// counters; check compares the two on every reader access.
type viewstamp struct {
	gens []uint64
	live *pagegen
}

func (s viewstamp) check(id PageID) {
	if int(id) >= len(s.gens) {
		panic(fmt.Sprintf(
			"storage: page %d allocated after view capture read through PageView (single-writer/many-reader violation)", id))
	}
	cur := (*s.live.arr.Load())[id].Load()
	if cur != s.gens[id] {
		panic(fmt.Sprintf(
			"storage: page %d freed or reused under a live PageView (gen %d -> %d, single-writer/many-reader violation)",
			id, s.gens[id], cur))
	}
}
