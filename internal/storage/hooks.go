package storage

import "repro/internal/rum"

// Event identifies one kind of physical storage event, emitted by a Device
// or BufferPool to an attached Hook. Together the events let an observer
// attribute every physical page touch — and its medium-weighted cost — to
// the logical operation that caused it.
type Event uint8

const (
	// EvRead is a device page read.
	EvRead Event = iota
	// EvWrite is a device page write (including in-place writes).
	EvWrite
	// EvHit is a buffer pool hit: the page was served without device traffic.
	EvHit
	// EvMiss is a buffer pool miss; the device read that repaired it
	// arrives as a separate EvRead, emitted just before the miss (the pool
	// only counts a miss once the read succeeded and the frame installs —
	// failed fetches count in PoolStats.FetchFailures instead).
	EvMiss
	// EvEvict is a buffer pool eviction of an unpinned frame.
	EvEvict
	// EvWriteBack is a dirty frame flushed to the device; the underlying
	// device write also arrives as EvWrite.
	EvWriteBack
	// EvFault is a device operation failed by an injected fault (see
	// FaultInjector); the failed operation counts no traffic, so the event
	// is the only visible trace of it.
	EvFault
	// EvTorn is a torn page write: an injected write fault that persisted
	// only a prefix of the page before failing. The cost carried by the
	// event is the medium write cost (the device did move the head), but
	// neither stats nor meters count the failed write.
	EvTorn
	// EvCrash is the crash sentinel firing: the device latches into the
	// crashed state and every subsequent operation fails with ErrCrash.
	EvCrash
	// EvRetry is a buffer pool retry of a device operation that failed with
	// a transient injected fault (see BufferPool.SetRetryBudget).
	EvRetry
)

// String names the event as used in exported metrics.
func (e Event) String() string {
	switch e {
	case EvRead:
		return "read"
	case EvWrite:
		return "write"
	case EvHit:
		return "hit"
	case EvMiss:
		return "miss"
	case EvEvict:
		return "eviction"
	case EvWriteBack:
		return "writeback"
	case EvFault:
		return "fault"
	case EvTorn:
		return "torn"
	case EvCrash:
		return "crash"
	case EvRetry:
		return "retry"
	default:
		return "unknown"
	}
}

// Hook observes physical storage events. Implementations must be cheap and
// must not call back into the emitting Device or BufferPool. A nil hook is
// the default and costs a single pointer comparison per event site, keeping
// the untraced path allocation-free.
//
// cost is the medium-weighted access cost of the event in abstract time
// units (0 for pool-level events such as hits, whose whole point is that
// they are free).
type Hook interface {
	StorageEvent(ev Event, id PageID, class rum.Class, cost uint64)
}

// BatchHook is the optional batch-submission side of a Hook. A hook that
// implements it additionally receives one StorageBatch call per amortized
// ReadBatch/WriteBatch submission, carrying the batch's page count, achieved
// queue depth (CostModel.Depth), and total medium-weighted cost.
//
// The happens-before contract per batch: the per-page EvRead/EvWrite events
// of the batch are emitted first, in submission order, with cost shares
// summing exactly to the batch cost; the StorageBatch call follows last.
// Observers may therefore treat StorageBatch as the batch commit point —
// when it arrives, every page event of that batch has already arrived —
// and totals reconcile whether or not they track batches at all.
type BatchHook interface {
	Hook
	StorageBatch(write bool, pages, depth int, cost uint64)
}
