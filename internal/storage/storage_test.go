package storage

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/rum"
)

func TestDeviceAllocReadWrite(t *testing.T) {
	meter := &rum.Meter{}
	d := NewDevice(128, SSD, meter)
	id := d.Alloc(rum.Base)

	page, err := d.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range page {
		if b != 0 {
			t.Fatal("fresh page not zeroed")
		}
	}
	data := bytes.Repeat([]byte{0xAB}, 128)
	if err := d.Write(id, data); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read back mismatch")
	}
	if meter.BaseRead != 256 || meter.BaseWritten != 128 {
		t.Fatalf("meter: read=%d written=%d", meter.BaseRead, meter.BaseWritten)
	}
	st := d.Stats()
	if st.PageReads != 2 || st.PageWrites != 1 || st.PagesAllocated != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDeviceClassAccounting(t *testing.T) {
	meter := &rum.Meter{}
	d := NewDevice(64, RAM, meter)
	base := d.Alloc(rum.Base)
	aux := d.Alloc(rum.Aux)
	if _, err := d.Read(base); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read(aux); err != nil {
		t.Fatal(err)
	}
	if meter.BaseRead != 64 || meter.AuxRead != 64 {
		t.Fatalf("class split: base=%d aux=%d", meter.BaseRead, meter.AuxRead)
	}
	live := d.LiveBytes()
	if live.BaseBytes != 64 || live.AuxBytes != 64 {
		t.Fatalf("live bytes: %+v", live)
	}
	if d.Class(base) != rum.Base || d.Class(aux) != rum.Aux {
		t.Fatal("class lookup")
	}
}

func TestDeviceFreeAndReuse(t *testing.T) {
	d := NewDevice(64, RAM, nil)
	a := d.Alloc(rum.Base)
	if err := d.Free(a); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read(a); !errors.Is(err, ErrFreed) {
		t.Fatalf("read after free: %v", err)
	}
	if err := d.Free(a); !errors.Is(err, ErrFreed) {
		t.Fatalf("double free: %v", err)
	}
	b := d.Alloc(rum.Aux)
	if b != a {
		t.Fatalf("freed page not reused: got %d want %d", b, a)
	}
	page, err := d.Read(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, by := range page {
		if by != 0 {
			t.Fatal("reused page not zeroed")
		}
	}
	if d.LivePages() != 1 {
		t.Fatalf("live pages %d", d.LivePages())
	}
}

func TestDeviceErrors(t *testing.T) {
	d := NewDevice(64, RAM, nil)
	if _, err := d.Read(99); !errors.Is(err, ErrBadPage) {
		t.Fatalf("bad page read: %v", err)
	}
	id := d.Alloc(rum.Base)
	if err := d.Write(id, make([]byte, 10)); err == nil {
		t.Fatal("short write accepted")
	}
}

func TestMediumCosts(t *testing.T) {
	// The full valid set, with the channel parallelism each model carries.
	wantChannels := map[Medium]int{RAM: 1, SSD: 1, HDD: 1, SMR: 1, MQSSD: 8}
	for m, ch := range wantChannels {
		if m.String() == "" {
			t.Fatal("empty medium name")
		}
		cm := m.Model()
		if cm.ReadCost == 0 || cm.WriteCost == 0 {
			t.Fatalf("%v: zero cost", m)
		}
		if cm.Channels != ch {
			t.Fatalf("%v: channels %d, want %d", m, cm.Channels, ch)
		}
		if got, err := ParseMedium(m.String()); err != nil || got != m {
			t.Fatalf("ParseMedium(%q) = %v, %v", m.String(), got, err)
		}
	}
	// Flash asymmetry: SSD writes cost more than reads; SMR worse still.
	if cm := SSD.Model(); cm.WriteCost <= cm.ReadCost {
		t.Fatal("SSD write should cost more than read")
	}
	if cm := SMR.Model(); cm.WriteCost <= 100 {
		t.Fatal("SMR writes should be punitive")
	}
	// MQSSD is the SSD behind a queue: identical service times, so any cost
	// difference between the two media is attributable to batching alone.
	if ssd, mq := SSD.Model(), MQSSD.Model(); ssd.ReadCost != mq.ReadCost || ssd.WriteCost != mq.WriteCost {
		t.Fatalf("MQSSD service times diverge from SSD: %+v vs %+v", mq, ssd)
	}
	d := NewDevice(64, HDD, nil)
	id := d.Alloc(rum.Base)
	if _, err := d.Read(id); err != nil {
		t.Fatal(err)
	}
	if d.Stats().CostUnits != 100 {
		t.Fatalf("HDD read cost: %d", d.Stats().CostUnits)
	}
	if _, err := ParseMedium("floppy"); err == nil {
		t.Fatal("ParseMedium accepted an unknown medium")
	}
}

// TestInvalidMediumPanics pins the satellite contract: a misconfigured
// medium must fail at construction, not silently price like RAM.
func TestInvalidMediumPanics(t *testing.T) {
	for _, m := range []Medium{Medium(-1), Medium(99)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewDevice(%d) did not panic", int(m))
				}
			}()
			NewDevice(64, m, nil)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Medium(%d).Model() did not panic", int(m))
				}
			}()
			m.Model()
		}()
	}
}

func TestBufferPoolHitMiss(t *testing.T) {
	d := NewDevice(64, RAM, nil)
	p := NewBufferPool(d, 2)
	a := d.Alloc(rum.Base)
	b := d.Alloc(rum.Base)
	c := d.Alloc(rum.Base)

	f, err := p.Fetch(a)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(f)
	f, err = p.Fetch(a) // hit
	if err != nil {
		t.Fatal(err)
	}
	p.Release(f)
	if st := p.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats: %+v", st)
	}

	// Fill and evict: a is LRU after touching b.
	f, _ = p.Fetch(b)
	p.Release(f)
	f, _ = p.Fetch(c) // evicts a
	p.Release(f)
	if p.Len() != 2 {
		t.Fatalf("len %d", p.Len())
	}
	before := d.Stats().PageReads
	f, _ = p.Fetch(a) // must go to the device again
	p.Release(f)
	if d.Stats().PageReads != before+1 {
		t.Fatal("evicted page served without device read")
	}
	if p.Stats().Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
}

func TestBufferPoolWriteBack(t *testing.T) {
	d := NewDevice(64, RAM, nil)
	p := NewBufferPool(d, 1)
	a := d.Alloc(rum.Base)

	f, _ := p.Fetch(a)
	copy(f.Data(), bytes.Repeat([]byte{7}, 64))
	f.MarkDirty()
	p.Release(f)

	// Evict a by fetching another page.
	b := d.Alloc(rum.Base)
	f, _ = p.Fetch(b)
	p.Release(f)
	if p.Stats().WriteBacks != 1 {
		t.Fatalf("writebacks: %d", p.Stats().WriteBacks)
	}
	// The device must hold the flushed contents.
	page, _ := d.Read(a)
	if page[0] != 7 {
		t.Fatal("dirty eviction lost data")
	}
}

func TestBufferPoolNewPageIsBlindWrite(t *testing.T) {
	d := NewDevice(64, RAM, nil)
	p := NewBufferPool(d, 4)
	f, err := p.NewPage(rum.Aux)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(f)
	if d.Stats().PageReads != 0 {
		t.Fatal("NewPage caused a device read")
	}
	p.FlushAll()
	if d.Stats().PageWrites != 1 {
		t.Fatalf("flush writes: %d", d.Stats().PageWrites)
	}
}

func TestBufferPoolPinnedOverflow(t *testing.T) {
	d := NewDevice(64, RAM, nil)
	p := NewBufferPool(d, 1)
	a := d.Alloc(rum.Base)
	b := d.Alloc(rum.Base)
	fa, _ := p.Fetch(a)
	fb, err := p.Fetch(b) // pool full of pinned frames: must overflow, not fail
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats().Overflows != 1 {
		t.Fatalf("overflows: %d", p.Stats().Overflows)
	}
	p.Release(fa)
	p.Release(fb)
}

func TestBufferPoolFreePage(t *testing.T) {
	d := NewDevice(64, RAM, nil)
	p := NewBufferPool(d, 4)
	f, _ := p.NewPage(rum.Base)
	id := f.ID()
	if err := p.FreePage(id); err == nil {
		t.Fatal("freeing a pinned page must fail")
	}
	p.Release(f)
	if err := p.FreePage(id); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Fetch(id); err == nil {
		t.Fatal("fetch of freed page succeeded")
	}
}

func TestBufferPoolDropAll(t *testing.T) {
	d := NewDevice(64, RAM, nil)
	p := NewBufferPool(d, 8)
	for i := 0; i < 4; i++ {
		f, _ := p.NewPage(rum.Base)
		f.Data()[0] = byte(i)
		f.MarkDirty()
		p.Release(f)
	}
	p.DropAll()
	if p.Len() != 0 {
		t.Fatalf("frames after DropAll: %d", p.Len())
	}
	if d.Stats().PageWrites != 4 {
		t.Fatalf("DropAll flushed %d pages", d.Stats().PageWrites)
	}
}

func TestHitRatio(t *testing.T) {
	var s PoolStats
	if s.HitRatio() != 0 {
		t.Fatal("empty ratio")
	}
	s.Hits, s.Misses = 3, 1
	if s.HitRatio() != 0.75 {
		t.Fatalf("ratio %v", s.HitRatio())
	}
}

// TestDeviceRoundTripProperty: what is written is what is read, for any
// contents.
func TestDeviceRoundTripProperty(t *testing.T) {
	d := NewDevice(32, RAM, nil)
	id := d.Alloc(rum.Base)
	f := func(content [32]byte) bool {
		if err := d.Write(id, content[:]); err != nil {
			return false
		}
		got, err := d.Read(id)
		return err == nil && bytes.Equal(got, content[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
