package storage

import "fmt"

// CostModel prices page traffic on a Medium. The classic media (RAM, SSD,
// HDD, SMR) are flat Aggarwal–Vitter devices: every page access costs the
// per-page service time and Channels is 1, so a batch of n pages costs
// exactly n sequential accesses. MQSSD models a multi-queue NVMe device
// ("Multi-Queue SSD I/O Modeling & Its Implications for Data Structure
// Design", PAPERS.md): per-page service times are unchanged, but up to
// Channels submissions proceed in parallel, so a batch amortizes its service
// time across the achieved queue depth — near-linear speedup up to the
// channel limit, saturation beyond it.
type CostModel struct {
	// ReadCost and WriteCost are the per-page service times in abstract
	// cost units.
	ReadCost  uint64
	WriteCost uint64
	// Channels is the device's internal parallelism: the number of
	// submissions one batch can have in flight at once. 1 is the flat
	// model — batching buys nothing.
	Channels int
}

// PageCost returns the per-page service time for one direction.
func (c CostModel) PageCost(write bool) uint64 {
	if write {
		return c.WriteCost
	}
	return c.ReadCost
}

// Depth returns the queue depth a batch of n pages achieves: n submissions
// in flight, clamped at the channel limit.
func (c CostModel) Depth(n int) int {
	if ch := c.Channels; ch > 1 && n > ch {
		return ch
	}
	if n < 1 {
		return 1
	}
	return n
}

// BatchCost prices a batch of n same-direction page accesses submitted
// together: the device drains the batch in ceil(n/Channels) waves of
// parallel service times. With Channels=1 (flat media) this is exactly
// n*PageCost — identical to n sequential accesses — so flat-media ledgers
// are unaffected by whether callers batch.
func (c CostModel) BatchCost(n int, write bool) uint64 {
	if n <= 0 {
		return 0
	}
	ch := c.Channels
	if ch < 1 {
		ch = 1
	}
	waves := uint64((n + ch - 1) / ch)
	return waves * c.PageCost(write)
}

// valid reports whether m is one of the defined media.
func (m Medium) valid() bool {
	switch m {
	case RAM, SSD, HDD, SMR, MQSSD:
		return true
	}
	return false
}

// Model returns the medium's cost model. The MQSSD shares the SSD's per-page
// service times — what changes is not the flash, it is the queue in front of
// it — so any cost difference between the two media is attributable to
// batching alone.
func (m Medium) Model() CostModel {
	switch m {
	case RAM:
		return CostModel{ReadCost: 1, WriteCost: 1, Channels: 1}
	case SSD:
		return CostModel{ReadCost: 4, WriteCost: 20, Channels: 1}
	case HDD:
		return CostModel{ReadCost: 100, WriteCost: 100, Channels: 1}
	case SMR:
		return CostModel{ReadCost: 100, WriteCost: 400, Channels: 1}
	case MQSSD:
		return CostModel{ReadCost: 4, WriteCost: 20, Channels: mqssdChannels}
	default:
		panic(fmt.Sprintf("storage: no cost model for invalid medium %d", int(m)))
	}
}

// mqssdChannels is the MQSSD's internal parallelism. Eight lanes is in the
// regime real NVMe exposes per submission queue pair; deep enough that
// batching pays visibly, shallow enough that experiment batch sweeps can
// show saturation past it.
const mqssdChannels = 8

// ParseMedium resolves a medium name as used in CLI flags. It accepts the
// String() form of every valid medium.
func ParseMedium(s string) (Medium, error) {
	for _, m := range []Medium{RAM, SSD, HDD, SMR, MQSSD} {
		if s == m.String() {
			return m, nil
		}
	}
	return 0, fmt.Errorf("storage: unknown medium %q (want ram/ssd/hdd/smr/mqssd)", s)
}
