//go:build racecheck

package storage

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
	"sync/atomic"
)

// owner enforces the writer half of the single-writer/many-reader contract
// when built with -tags racecheck: the first goroutine to touch the guarded
// object becomes its owner (the single writer), and any touch from a
// different goroutine panics. This turns accidental cross-cell sharing of a
// Device or BufferPool — which would silently corrupt meters in a release
// build — into a loud, attributed failure. Reader goroutines never trip this
// guard because they are only allowed to touch pages through an acquired
// PageView, whose own racecheck assertion (per-page generation stamps, see
// viewcheck_on.go) verifies the reader half of the contract. The check costs
// a stack capture per call, so it stays out of release builds.
type owner struct {
	gid atomic.Int64
}

// goid parses the current goroutine id from the stack header ("goroutine N
// [running]:"). There is no public API for this; a debug-only guard is the
// accepted use for the trick.
func goid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	fields := bytes.Fields(buf[:n])
	if len(fields) < 2 {
		panic("storage: cannot parse goroutine id")
	}
	id, err := strconv.ParseInt(string(fields[1]), 10, 64)
	if err != nil {
		panic("storage: cannot parse goroutine id: " + err.Error())
	}
	return id
}

// assert binds the object to the calling goroutine on first use and panics if
// a different goroutine touches it afterwards.
func (o *owner) assert(what string) {
	g := goid()
	if o.gid.CompareAndSwap(0, g) {
		return
	}
	if got := o.gid.Load(); got != g {
		panic(fmt.Sprintf("storage: %s used by goroutine %d but owned by goroutine %d (single-owner violation)", what, g, got))
	}
}
