//go:build !racecheck

package storage

// pagegen is the no-op release build of the per-page generation stamps that
// back PageView's reader-side assertions. See viewcheck_on.go (built with
// -tags racecheck) for the checked variant. Both the field on Device and the
// stamp inside PageView are zero-size here, so the release-build view read
// path is a bare bounds-checked slice index.
type pagegen struct{}

func (pagegen) grow(int)    {}
func (pagegen) bump(PageID) {}

func (pagegen) capture(int) viewstamp { return viewstamp{} }

// viewstamp is the reader-side half: release builds check nothing.
type viewstamp struct{}

func (viewstamp) check(PageID) {}
