// Package extsort simulates external multi-way merge sort, the algorithm
// Table 1 assumes for bulk-loading sorted structures: with N/B pages of input
// and MEM/B pages of memory, sorting costs O(N/B · log_{MEM/B}(N/B)) page
// transfers. The records are sorted in process memory (the result is exact),
// while the page traffic of the run-formation and merge passes is charged to
// the meter so that measured bulk-creation cost follows the model.
package extsort

import (
	"sort"

	"repro/internal/core"
	"repro/internal/rum"
)

// Stats reports the simulated I/O of one external sort.
type Stats struct {
	Passes     int    // run formation + merge passes
	PageReads  uint64 // simulated page reads
	PageWrites uint64 // simulated page writes
}

// Sort sorts recs by key in place and returns the simulated I/O statistics
// of an external multi-way merge sort with memPages pages of memory over
// pageSize-byte pages. The page traffic is charged to meter (class Aux:
// scratch runs are auxiliary data) when meter is non-nil.
//
// memPages must be at least 3 (two inputs and one output frame); smaller
// values are clamped.
func Sort(recs []core.Record, memPages, pageSize int, meter *rum.Meter) Stats {
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })

	if memPages < 3 {
		memPages = 3
	}
	if pageSize < core.RecordSize {
		pageSize = core.RecordSize
	}
	perPage := pageSize / core.RecordSize
	dataPages := (len(recs) + perPage - 1) / perPage
	if dataPages == 0 {
		return Stats{}
	}

	var st Stats
	charge := func(pages int) {
		st.PageReads += uint64(pages)
		st.PageWrites += uint64(pages)
		if meter != nil {
			meter.CountRead(rum.Aux, pages*pageSize)
			meter.CountWrite(rum.Aux, pages*pageSize)
		}
	}

	// Pass 0: run formation — read everything, write sorted runs of memPages.
	st.Passes = 1
	charge(dataPages)
	runs := (dataPages + memPages - 1) / memPages

	// Merge passes: each merges up to memPages-1 runs, touching all pages.
	fanIn := memPages - 1
	for runs > 1 {
		st.Passes++
		charge(dataPages)
		runs = (runs + fanIn - 1) / fanIn
	}
	return st
}
