package extsort

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/rum"
)

func TestSortsCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	recs := make([]core.Record, 10000)
	for i := range recs {
		recs[i] = core.Record{Key: rng.Uint64(), Value: uint64(i)}
	}
	Sort(recs, 8, 4096, nil)
	for i := 1; i < len(recs); i++ {
		if recs[i].Key < recs[i-1].Key {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestSortProperty(t *testing.T) {
	f := func(keys []uint64) bool {
		recs := make([]core.Record, len(keys))
		for i, k := range keys {
			recs[i] = core.Record{Key: k, Value: uint64(i)}
		}
		Sort(recs, 4, 256, nil)
		for i := 1; i < len(recs); i++ {
			if recs[i].Key < recs[i-1].Key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPassCountMatchesModel(t *testing.T) {
	// 256-byte pages hold 16 records; runs of memPages pages merge with
	// fan-in memPages-1: passes = 1 + merge levels.
	cases := []struct {
		n, mem     int
		wantPasses int
	}{
		{16 * 4, 4, 1},  // 4 pages → 1 run
		{16 * 16, 4, 3}, // 16 pages → 4 runs → 2 → 1: two merge passes
		{16 * 64, 4, 4}, // 64 pages → 16 runs → 6 → 2 → 1: three merges
	}
	for _, c := range cases {
		recs := make([]core.Record, c.n)
		for i := range recs {
			recs[i] = core.Record{Key: uint64(c.n - i)}
		}
		st := Sort(recs, c.mem, 256, nil)
		if st.Passes != c.wantPasses {
			t.Fatalf("n=%d mem=%d: passes=%d want %d", c.n, c.mem, st.Passes, c.wantPasses)
		}
	}
}

func TestIOChargedToMeter(t *testing.T) {
	meter := &rum.Meter{}
	recs := make([]core.Record, 4096)
	for i := range recs {
		recs[i] = core.Record{Key: uint64(4096 - i)}
	}
	st := Sort(recs, 4, 4096, meter)
	if st.PageReads == 0 || st.PageWrites != st.PageReads {
		t.Fatalf("stats: %+v", st)
	}
	if meter.AuxRead != st.PageReads*4096 {
		t.Fatalf("meter reads %d, stats %d pages", meter.AuxRead, st.PageReads)
	}
	// More memory → fewer or equal passes and page moves.
	recs2 := make([]core.Record, 4096)
	for i := range recs2 {
		recs2[i] = core.Record{Key: uint64(4096 - i)}
	}
	st2 := Sort(recs2, 64, 4096, nil)
	if st2.PageReads > st.PageReads {
		t.Fatalf("more memory moved more pages: %d > %d", st2.PageReads, st.PageReads)
	}
}

func TestEmptyAndTiny(t *testing.T) {
	if st := Sort(nil, 4, 4096, nil); st.Passes != 0 {
		t.Fatalf("empty sort: %+v", st)
	}
	one := []core.Record{{Key: 5}}
	if st := Sort(one, 0, 0, nil); st.Passes != 1 {
		t.Fatalf("tiny sort: %+v", st)
	}
}
