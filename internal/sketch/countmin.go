// Package sketch implements the count-min sketch (Cormode & Muthukrishnan,
// J. Algorithms 2005), the paper's example of a lossy hash-based index in the
// space-optimized corner of Figure 1: sublinear space buys point estimates
// with bounded one-sided error, and no exact reads are possible at all —
// the extreme end of trading read fidelity for memory.
package sketch

import (
	"fmt"
	"math"

	"repro/internal/rum"
)

const counterSize = 8

// CountMin estimates per-key counts within factor epsilon·total with
// probability 1-delta, in d = ln(1/delta) rows of w = e/epsilon counters.
// Not safe for concurrent use.
type CountMin struct {
	rows  [][]uint64
	w     uint64
	d     int
	total uint64
	meter *rum.Meter
}

// New creates a sketch with error bound epsilon and failure probability
// delta (defaults 0.01 and 0.01 when out of range). A nil meter gets a
// private one.
func New(epsilon, delta float64, meter *rum.Meter) *CountMin {
	if epsilon <= 0 || epsilon >= 1 {
		epsilon = 0.01
	}
	if delta <= 0 || delta >= 1 {
		delta = 0.01
	}
	if meter == nil {
		meter = &rum.Meter{}
	}
	w := uint64(math.Ceil(math.E / epsilon))
	d := int(math.Ceil(math.Log(1 / delta)))
	if d < 1 {
		d = 1
	}
	rows := make([][]uint64, d)
	for i := range rows {
		rows[i] = make([]uint64, w)
	}
	return &CountMin{rows: rows, w: w, d: d, meter: meter}
}

// Name identifies the sketch and its shape.
func (c *CountMin) Name() string { return fmt.Sprintf("countmin(%dx%d)", c.d, c.w) }

func (c *CountMin) hash(key uint64, row int) uint64 {
	x := key ^ (uint64(row+1) * 0x9e3779b97f4a7c15)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x % c.w
}

// Add increments key's count by delta, one counter write per row.
func (c *CountMin) Add(key uint64, delta uint64) {
	for i := 0; i < c.d; i++ {
		c.rows[i][c.hash(key, i)] += delta
	}
	c.total += delta
	c.meter.CountWrite(rum.Aux, c.d*counterSize)
}

// Estimate returns an upper bound on key's count (never an underestimate),
// one counter read per row.
func (c *CountMin) Estimate(key uint64) uint64 {
	min := uint64(math.MaxUint64)
	for i := 0; i < c.d; i++ {
		if v := c.rows[i][c.hash(key, i)]; v < min {
			min = v
		}
	}
	c.meter.CountRead(rum.Aux, c.d*counterSize)
	return min
}

// Merge folds o into c counter-wise. Both sketches must share the same
// (depth, width) shape — they then share the same hash family, so the merged
// sketch estimates the union stream exactly as if every Add had landed on c.
// Merging is commutative and associative.
func (c *CountMin) Merge(o *CountMin) error {
	if o == nil {
		return nil
	}
	if c.d != o.d || c.w != o.w {
		return fmt.Errorf("sketch: merge shape mismatch: %s vs %s", c.Name(), o.Name())
	}
	for i := 0; i < c.d; i++ {
		row, orow := c.rows[i], o.rows[i]
		for j := range row {
			row[j] += orow[j]
		}
	}
	c.total += o.total
	c.meter.CountWrite(rum.Aux, c.d*int(c.w)*counterSize)
	return nil
}

// Clear zeroes every counter and the total, keeping the shape (and therefore
// the hash family) intact — the rotation primitive for windowed use.
func (c *CountMin) Clear() {
	for i := range c.rows {
		row := c.rows[i]
		for j := range row {
			row[j] = 0
		}
	}
	c.total = 0
}

// Total returns the sum of all added deltas.
func (c *CountMin) Total() uint64 { return c.total }

// Depth returns the number of rows d.
func (c *CountMin) Depth() int { return c.d }

// Width returns the counters per row w.
func (c *CountMin) Width() uint64 { return c.w }

// SizeBytes returns the sketch's storage footprint.
func (c *CountMin) SizeBytes() uint64 { return uint64(c.d) * c.w * counterSize }

// Meter returns the RUM accounting.
func (c *CountMin) Meter() *rum.Meter { return c.meter }
