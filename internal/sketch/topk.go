package sketch

import "slices"

// TopK tracks the heaviest keys of a stream with bounded memory: exact
// per-key counters for the keys it retains, and a deterministic compaction
// that drops the lightest entries when the table overflows. It is the
// heavy-hitter half of the workload fingerprinter — the count-min sketch
// answers "how often was this key seen", TopK answers "which keys dominate".
//
// Determinism contract. Items ranks by (count desc, key asc), so the output
// is a pure function of the retained counter table. Absorb only sums counts
// (no compaction), so folding per-shard trackers is commutative and
// associative: any absorb order yields the same merged table, and therefore
// the same ranking. Compaction happens only on Add, only when the table
// exceeds its slack bound, and keeps the top retain entries under the same
// (count desc, key asc) order — deterministic given the table contents.
//
// Accuracy. Dropping a light entry forgets its count; if the key returns it
// restarts from zero. Heavy hitters under skew re-arrive constantly, so
// their counters are exact in practice; uniform tails churn through the
// slack region. This is the usual space-saving trade, biased toward
// simplicity and determinism over tight error bounds.
type TopK struct {
	k      int
	retain int // table size kept after a compaction
	slack  int // table size that triggers a compaction
	counts map[uint64]uint64

	// scratch is the reusable sort buffer — the read path (ItemsInto) and the
	// compaction path share it, so neither allocates in steady state.
	scratch []KeyCount
}

// KeyCount is one ranked heavy hitter.
type KeyCount struct {
	Key   uint64 `json:"key"`
	Count uint64 `json:"count"`
}

// NewTopK tracks the top k keys (minimum 1), retaining 4k counters and
// compacting at 8k — enough slack that a heavy hitter's counter survives
// tail churn.
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	t := &TopK{k: k, retain: 4 * k, slack: 8 * k}
	t.counts = make(map[uint64]uint64, t.slack)
	return t
}

// K returns the configured rank depth.
func (t *TopK) K() int { return t.k }

// Add charges delta to key, compacting the table if it overflowed.
func (t *TopK) Add(key uint64, delta uint64) {
	t.counts[key] += delta
	if len(t.counts) > t.slack {
		t.compact()
	}
}

// Absorb folds o's counters into t without compacting, so absorb order
// cannot affect the merged table. Compaction resumes on the next Add.
func (t *TopK) Absorb(o *TopK) {
	if o == nil {
		return
	}
	for k, c := range o.counts {
		t.counts[k] += c
	}
}

// Clear drops every counter, keeping capacity — the rotation primitive.
func (t *TopK) Clear() {
	clear(t.counts)
}

// Len returns the number of retained counters.
func (t *TopK) Len() int { return len(t.counts) }

// compact keeps the heaviest retain entries under (count desc, key asc).
func (t *TopK) compact() {
	t.scratch = t.rank(t.scratch[:0])
	for _, it := range t.scratch[t.retain:] {
		delete(t.counts, it.Key)
	}
}

// rank appends every entry to dst and sorts by (count desc, key asc).
func (t *TopK) rank(dst []KeyCount) []KeyCount {
	for k, c := range t.counts {
		dst = append(dst, KeyCount{Key: k, Count: c})
	}
	slices.SortFunc(dst, func(a, b KeyCount) int {
		if a.Count != b.Count {
			if a.Count > b.Count {
				return -1
			}
			return 1
		}
		switch {
		case a.Key < b.Key:
			return -1
		case a.Key > b.Key:
			return 1
		}
		return 0
	})
	return dst
}

// Items returns the top k entries, heaviest first, ties broken by key.
func (t *TopK) Items() []KeyCount {
	return append([]KeyCount(nil), t.ItemsInto(nil)...)
}

// ItemsInto appends the top k entries to dst and returns it — the zero-alloc
// read path: with a nil dst it ranks into the tracker's reusable scratch
// buffer and returns a view of it, valid until the next Add/ItemsInto.
func (t *TopK) ItemsInto(dst []KeyCount) []KeyCount {
	if dst == nil {
		t.scratch = t.rank(t.scratch[:0])
		if len(t.scratch) > t.k {
			return t.scratch[:t.k]
		}
		return t.scratch
	}
	ranked := t.rank(t.scratch[:0])
	t.scratch = ranked
	n := len(ranked)
	if n > t.k {
		n = t.k
	}
	return append(dst, ranked[:n]...)
}
