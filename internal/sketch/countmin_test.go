package sketch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNeverUnderestimates(t *testing.T) {
	f := func(adds []uint8) bool {
		c := New(0.01, 0.01, nil)
		truth := map[uint64]uint64{}
		for _, a := range adds {
			k := uint64(a % 32)
			c.Add(k, 1)
			truth[k]++
		}
		for k, want := range truth {
			if c.Estimate(k) < want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestErrorBound(t *testing.T) {
	eps := 0.001
	c := New(eps, 0.01, nil)
	rng := rand.New(rand.NewSource(2))
	truth := map[uint64]uint64{}
	const total = 100000
	for i := 0; i < total; i++ {
		k := uint64(rng.Intn(5000))
		c.Add(k, 1)
		truth[k]++
	}
	if c.Total() != total {
		t.Fatalf("total %d", c.Total())
	}
	// The CM guarantee: est <= true + eps*total with prob 1-delta. Check the
	// overwhelming majority comply (the bound is per-query probabilistic).
	bad := 0
	for k, want := range truth {
		if c.Estimate(k) > want+uint64(3*eps*total) {
			bad++
		}
	}
	if bad > len(truth)/100 {
		t.Fatalf("%d/%d estimates blew the error bound", bad, len(truth))
	}
}

func TestUnseenKeysMostlyZero(t *testing.T) {
	c := New(0.001, 0.01, nil)
	for k := uint64(0); k < 1000; k++ {
		c.Add(k, 1)
	}
	zero := 0
	for k := uint64(1 << 30); k < 1<<30+1000; k++ {
		if c.Estimate(k) == 0 {
			zero++
		}
	}
	if zero < 900 {
		t.Fatalf("only %d/1000 unseen keys estimated zero", zero)
	}
}

func TestShapeFromParameters(t *testing.T) {
	c := New(0.01, 0.001, nil)
	if c.Width() < 250 {
		t.Fatalf("width %d too small for eps=0.01", c.Width())
	}
	if c.Depth() < 6 {
		t.Fatalf("depth %d too small for delta=0.001", c.Depth())
	}
	if c.SizeBytes() != uint64(c.Depth())*c.Width()*8 {
		t.Fatal("size formula")
	}
	// Defaults applied for nonsense parameters.
	d := New(-1, 2, nil)
	if d.Width() == 0 || d.Depth() == 0 {
		t.Fatal("defaults")
	}
}

func TestDeltaWeights(t *testing.T) {
	c := New(0.01, 0.01, nil)
	c.Add(7, 5)
	c.Add(7, 3)
	if got := c.Estimate(7); got < 8 {
		t.Fatalf("estimate %d < 8", got)
	}
}

func TestSublinearSpace(t *testing.T) {
	// The space-corner property: the sketch is much smaller than exact
	// storage of distinct keys.
	c := New(0.01, 0.01, nil)
	for k := uint64(0); k < 1<<20; k++ {
		c.Add(k, 1)
	}
	exact := uint64(1<<20) * 16
	if c.SizeBytes() > exact/10 {
		t.Fatalf("sketch %d bytes not sublinear vs %d", c.SizeBytes(), exact)
	}
}

func TestMeterCharges(t *testing.T) {
	c := New(0.01, 0.01, nil)
	c.Add(1, 1)
	if c.Meter().AuxWritten == 0 {
		t.Fatal("Add not charged")
	}
	c.Estimate(1)
	if c.Meter().AuxRead == 0 {
		t.Fatal("Estimate not charged")
	}
	if c.Name() == "" {
		t.Fatal("name")
	}
}
