package sketch

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestCountMinMerge(t *testing.T) {
	a := New(0.01, 0.01, nil)
	b := New(0.01, 0.01, nil)
	whole := New(0.01, 0.01, nil)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Intn(500))
		whole.Add(k, 1)
		if i%2 == 0 {
			a.Add(k, 1)
		} else {
			b.Add(k, 1)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != whole.Total() {
		t.Fatalf("merged total %d, want %d", a.Total(), whole.Total())
	}
	// Same shape + same hash family: the merged sketch is counter-identical
	// to one that saw the whole stream.
	for k := uint64(0); k < 500; k++ {
		if got, want := a.Estimate(k), whole.Estimate(k); got != want {
			t.Fatalf("key %d: merged estimate %d, whole-stream estimate %d", k, got, want)
		}
	}
}

func TestCountMinMergeShapeMismatch(t *testing.T) {
	a := New(0.01, 0.01, nil)
	b := New(0.001, 0.01, nil)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging mismatched shapes did not error")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("merging nil: %v", err)
	}
}

func TestCountMinClear(t *testing.T) {
	c := New(0.01, 0.01, nil)
	for i := 0; i < 1000; i++ {
		c.Add(uint64(i%10), 1)
	}
	c.Clear()
	if c.Total() != 0 {
		t.Fatalf("total %d after Clear", c.Total())
	}
	for k := uint64(0); k < 10; k++ {
		if c.Estimate(k) != 0 {
			t.Fatalf("key %d estimates %d after Clear", k, c.Estimate(k))
		}
	}
	// The shape survives, so a cleared sketch still merges with its peers.
	if err := c.Merge(New(0.01, 0.01, nil)); err != nil {
		t.Fatal(err)
	}
}

// zipfStream feeds a skewed stream where key k arrives ~total/(k+1) times —
// rank order is known exactly.
func zipfStream(t *TopK, keys int) {
	for k := 0; k < keys; k++ {
		for i := 0; i < 1<<(keys-k); i++ {
			t.Add(uint64(k), 1)
		}
	}
}

func TestTopKRanksHeavyHitters(t *testing.T) {
	tk := NewTopK(4)
	zipfStream(tk, 12)
	items := tk.Items()
	if len(items) != 4 {
		t.Fatalf("got %d items, want 4", len(items))
	}
	for i, it := range items {
		if it.Key != uint64(i) {
			t.Fatalf("rank %d is key %d, want %d (items %v)", i, it.Key, i, items)
		}
		if want := uint64(1 << (12 - i)); it.Count != want {
			t.Fatalf("rank %d count %d, want %d", i, it.Count, want)
		}
	}
}

func TestTopKTieBreakByKey(t *testing.T) {
	tk := NewTopK(3)
	for _, k := range []uint64{9, 3, 7} {
		tk.Add(k, 5)
	}
	want := []KeyCount{{Key: 3, Count: 5}, {Key: 7, Count: 5}, {Key: 9, Count: 5}}
	if got := tk.Items(); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestTopKAbsorbOrderIndependent is the determinism contract: folding shard
// trackers in any order yields identical rankings.
func TestTopKAbsorbOrderIndependent(t *testing.T) {
	mk := func() []*TopK {
		parts := make([]*TopK, 4)
		for i := range parts {
			parts[i] = NewTopK(8)
			rng := rand.New(rand.NewSource(int64(100 + i)))
			for j := 0; j < 5000; j++ {
				// Skewed: low keys heavy, long uniform tail.
				k := uint64(rng.Intn(16))
				if rng.Intn(4) == 0 {
					k = uint64(1000 + rng.Intn(5000))
				}
				parts[i].Add(k, 1)
			}
		}
		return parts
	}
	forward, backward := mk(), mk()
	aFwd := NewTopK(8)
	for _, p := range forward {
		aFwd.Absorb(p)
	}
	aBwd := NewTopK(8)
	for i := len(backward) - 1; i >= 0; i-- {
		aBwd.Absorb(backward[i])
	}
	if !reflect.DeepEqual(aFwd.Items(), aBwd.Items()) {
		t.Fatalf("absorb order changed ranking:\n fwd %v\n bwd %v", aFwd.Items(), aBwd.Items())
	}
}

func TestTopKCompactionKeepsHeavies(t *testing.T) {
	tk := NewTopK(2) // retain 8, compact at 16
	tk.Add(42, 1000)
	tk.Add(43, 999)
	for i := 0; i < 10000; i++ {
		tk.Add(uint64(100+i), 1) // unique tail keys force many compactions
	}
	if tk.Len() > 16 {
		t.Fatalf("table grew to %d entries, bound is 16", tk.Len())
	}
	items := tk.Items()
	if len(items) != 2 || items[0].Key != 42 || items[1].Key != 43 {
		t.Fatalf("heavy hitters lost through compaction: %v", items)
	}
	if items[0].Count != 1000 || items[1].Count != 999 {
		t.Fatalf("heavy-hitter counts corrupted: %v", items)
	}
}

func TestTopKClear(t *testing.T) {
	tk := NewTopK(4)
	zipfStream(tk, 8)
	tk.Clear()
	if tk.Len() != 0 || len(tk.Items()) != 0 {
		t.Fatalf("Clear left %d entries", tk.Len())
	}
	tk.Add(5, 1)
	if got := tk.Items(); len(got) != 1 || got[0].Key != 5 {
		t.Fatalf("tracker unusable after Clear: %v", got)
	}
}

// TestTopKReadPathAllocs pins the zero-alloc read contract the serving
// layer's metrics scrape depends on: ranking into the reusable scratch
// buffer must not allocate once the buffer has warmed up.
func TestTopKReadPathAllocs(t *testing.T) {
	tk := NewTopK(8)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 4096; i++ {
		tk.Add(uint64(rng.Intn(64)), 1)
	}
	tk.ItemsInto(nil) // warm the scratch buffer
	allocs := testing.AllocsPerRun(100, func() {
		if len(tk.ItemsInto(nil)) == 0 {
			t.Fatal("empty ranking")
		}
	})
	if allocs != 0 {
		t.Fatalf("ItemsInto(nil) allocates %v per call, want 0", allocs)
	}
}

func BenchmarkTopKItemsInto(b *testing.B) {
	tk := NewTopK(8)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1<<14; i++ {
		tk.Add(uint64(rng.Intn(256)), 1)
	}
	tk.ItemsInto(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.ItemsInto(nil)
	}
}

func BenchmarkCountMinEstimate(b *testing.B) {
	c := New(0.01, 0.01, nil)
	for i := 0; i < 1<<14; i++ {
		c.Add(uint64(i%256), 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Estimate(uint64(i % 256))
	}
}
