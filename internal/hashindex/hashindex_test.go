package hashindex

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/rum"
	"repro/internal/storage"
)

func newIndex(t *testing.T, pageSize, poolPages int, cfg Config) *Index {
	t.Helper()
	dev := storage.NewDevice(pageSize, storage.SSD, nil)
	pool := storage.NewBufferPool(dev, poolPages)
	x, err := New(pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestBasicOps(t *testing.T) {
	x := newIndex(t, 256, 16, Config{})
	if _, ok := x.Get(1); ok {
		t.Fatal("get on empty")
	}
	if err := x.Insert(1, 10); err != nil {
		t.Fatal(err)
	}
	if v, ok := x.Get(1); !ok || v != 10 {
		t.Fatalf("Get: %d %v", v, ok)
	}
	if err := x.Insert(1, 11); err != core.ErrKeyExists {
		t.Fatalf("dup insert: %v", err)
	}
	if !x.Update(1, 12) {
		t.Fatal("update")
	}
	if v, _ := x.Get(1); v != 12 {
		t.Fatal("update not applied")
	}
	if !x.Delete(1) {
		t.Fatal("delete")
	}
	if x.Delete(1) {
		t.Fatal("double delete")
	}
	if x.Len() != 0 {
		t.Fatalf("len %d", x.Len())
	}
}

func TestGrowthPreservesData(t *testing.T) {
	x := newIndex(t, 256, 16, Config{InitialBuckets: 2})
	const n = 5000
	for k := uint64(0); k < n; k++ {
		if err := x.Insert(k, k*2); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	if x.Buckets() <= 2 {
		t.Fatalf("directory never grew: %d", x.Buckets())
	}
	for k := uint64(0); k < n; k++ {
		v, ok := x.Get(k)
		if !ok || v != k*2 {
			t.Fatalf("Get(%d) after growth = %d,%v", k, v, ok)
		}
	}
	if _, ok := x.Get(n + 1); ok {
		t.Fatal("phantom key after growth")
	}
}

func TestOverflowChains(t *testing.T) {
	// Tiny pages + one bucket + huge load factor force chains.
	x := newIndex(t, 64, 16, Config{InitialBuckets: 1, MaxLoad: 1000})
	perPage := (64 - headerSize) / entrySize
	n := uint64(perPage*5 + 1)
	for k := uint64(0); k < n; k++ {
		if err := x.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if x.pages < 5 {
		t.Fatalf("expected overflow pages, have %d", x.pages)
	}
	for k := uint64(0); k < n; k++ {
		if v, ok := x.Get(k); !ok || v != k {
			t.Fatalf("chained Get(%d)", k)
		}
	}
	// Delete from the middle of a chain.
	if !x.Delete(n / 2) {
		t.Fatal("chain delete")
	}
	if _, ok := x.Get(n / 2); ok {
		t.Fatal("deleted key still found")
	}
}

func TestRandomizedAgainstMap(t *testing.T) {
	x := newIndex(t, 256, 8, Config{})
	rng := rand.New(rand.NewSource(5))
	ref := map[uint64]uint64{}
	for i := 0; i < 15000; i++ {
		k := uint64(rng.Intn(3000))
		switch rng.Intn(4) {
		case 0:
			err := x.Insert(k, k+1)
			if _, ok := ref[k]; ok {
				if err != core.ErrKeyExists {
					t.Fatalf("op %d: dup insert err=%v", i, err)
				}
			} else if err != nil {
				t.Fatal(err)
			} else {
				ref[k] = k + 1
			}
		case 1:
			v, ok := x.Get(k)
			rv, rok := ref[k]
			if ok != rok || (ok && v != rv) {
				t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", i, k, v, ok, rv, rok)
			}
		case 2:
			nv := rng.Uint64()
			if x.Update(k, nv) {
				ref[k] = nv
			}
		case 3:
			if x.Delete(k) != (func() bool { _, ok := ref[k]; return ok })() {
				t.Fatalf("op %d: delete(%d)", i, k)
			}
			delete(ref, k)
		}
		if x.Len() != len(ref) {
			t.Fatalf("op %d: Len %d want %d", i, x.Len(), len(ref))
		}
	}
	// Full scan must see exactly the reference contents.
	got := map[uint64]uint64{}
	x.RangeScan(0, ^uint64(0), func(k core.Key, v core.Value) bool {
		got[k] = v
		return true
	})
	if len(got) != len(ref) {
		t.Fatalf("scan %d keys want %d", len(got), len(ref))
	}
	for k, v := range ref {
		if got[k] != v {
			t.Fatalf("scan[%d] = %d want %d", k, got[k], v)
		}
	}
}

func TestRangeScanBoundsAndStop(t *testing.T) {
	x := newIndex(t, 256, 16, Config{})
	for k := uint64(0); k < 500; k++ {
		if err := x.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	n := x.RangeScan(100, 199, func(k core.Key, v core.Value) bool {
		if k < 100 || k > 199 {
			t.Fatalf("out of range key %d", k)
		}
		return true
	})
	if n != 100 {
		t.Fatalf("emitted %d", n)
	}
	if n := x.RangeScan(0, ^uint64(0), func(core.Key, core.Value) bool { return false }); n != 1 {
		t.Fatalf("early stop: %d", n)
	}
}

func TestBulkLoadSizesDirectory(t *testing.T) {
	x := newIndex(t, 256, 32, Config{})
	recs := make([]core.Record, 8000)
	for i := range recs {
		recs[i] = core.Record{Key: uint64(i), Value: uint64(i)}
	}
	if err := x.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if x.Len() != 8000 {
		t.Fatalf("len %d", x.Len())
	}
	if x.loadFactor() > x.cfg.MaxLoad*1.01 {
		t.Fatalf("bulk load overloaded: %v", x.loadFactor())
	}
	for i := 0; i < 8000; i += 97 {
		if v, ok := x.Get(uint64(i)); !ok || v != uint64(i) {
			t.Fatalf("Get(%d)", i)
		}
	}
}

func TestPointQueryCostIsConstant(t *testing.T) {
	// The defining property: point-query page reads do not grow with N.
	cost := func(n int) float64 {
		meter := &rum.Meter{}
		dev := storage.NewDevice(256, storage.SSD, meter)
		pool := storage.NewBufferPool(dev, 2) // effectively cold
		x, err := New(pool, Config{})
		if err != nil {
			t.Fatal(err)
		}
		recs := make([]core.Record, n)
		for i := range recs {
			recs[i] = core.Record{Key: uint64(i), Value: uint64(i)}
		}
		if err := x.BulkLoad(recs); err != nil {
			t.Fatal(err)
		}
		pool.FlushAll()
		before := meter.Snapshot()
		rng := rand.New(rand.NewSource(1))
		const q = 200
		for i := 0; i < q; i++ {
			x.Get(uint64(rng.Intn(n)))
		}
		return float64(meter.Diff(before).PhysicalRead()) / q
	}
	small, large := cost(1000), cost(16000)
	if large > small*1.5 {
		t.Fatalf("point cost grew with N: %v -> %v", small, large)
	}
}

func TestKnobs(t *testing.T) {
	x := newIndex(t, 256, 16, Config{})
	if len(x.Knobs()) != 1 {
		t.Fatal("knobs")
	}
	if err := x.SetKnob("max_load", 1.5); err != nil {
		t.Fatal(err)
	}
	if err := x.SetKnob("max_load", -1); err == nil {
		t.Fatal("negative load accepted")
	}
	if err := x.SetKnob("bogus", 1); err == nil {
		t.Fatal("unknown knob accepted")
	}
}

func TestSizeAccountsDirectoryAndSlack(t *testing.T) {
	x := newIndex(t, 256, 16, Config{})
	for k := uint64(0); k < 100; k++ {
		if err := x.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	s := x.Size()
	if s.BaseBytes != 100*core.RecordSize {
		t.Fatalf("base bytes %d", s.BaseBytes)
	}
	if s.AuxBytes == 0 {
		t.Fatal("no aux bytes for bucket slack + directory")
	}
	if s.SpaceAmplification() <= 1 {
		t.Fatal("hash must have MO > 1")
	}
}
