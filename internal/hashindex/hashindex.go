// Package hashindex implements a bucketed hash index over the simulated
// pager: Table 1's "Perfect Hash Index" row. Point queries and in-place
// updates touch O(1) pages; range queries must read every bucket (O(N/B));
// the directory plus bucket slack is the space price of constant-time
// access.
//
// Buckets are pages of records with overflow chaining. When the load factor
// is exceeded the index doubles its directory and rehashes — the O(N)
// reorganization that the bulk-creation row of Table 1 charges. BulkLoad
// sizes the directory up front so that buckets start overflow-free
// (the "perfect" static case).
package hashindex

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/rum"
	"repro/internal/storage"
)

// Bucket page layout:
//
//	bytes 2:4   record count (uint16)
//	bytes 4:8   overflow page id (InvalidPage when none)
//	bytes 12:   records, 16 bytes each, unordered
const (
	headerSize = 12
	entrySize  = core.RecordSize
	// dirEntrySize accounts the in-memory directory at 4 bytes per bucket.
	dirEntrySize = 4
)

type bucket struct{ data []byte }

func (b bucket) count() int     { return int(binary.LittleEndian.Uint16(b.data[2:4])) }
func (b bucket) setCount(c int) { binary.LittleEndian.PutUint16(b.data[2:4], uint16(c)) }
func (b bucket) overflow() storage.PageID {
	return storage.PageID(binary.LittleEndian.Uint32(b.data[4:8]))
}
func (b bucket) setOverflow(id storage.PageID) {
	binary.LittleEndian.PutUint32(b.data[4:8], uint32(id))
}
func (b bucket) key(i int) core.Key {
	return binary.LittleEndian.Uint64(b.data[headerSize+i*entrySize:])
}
func (b bucket) value(i int) core.Value {
	return binary.LittleEndian.Uint64(b.data[headerSize+i*entrySize+8:])
}
func (b bucket) set(i int, k core.Key, v core.Value) {
	off := headerSize + i*entrySize
	binary.LittleEndian.PutUint64(b.data[off:], k)
	binary.LittleEndian.PutUint64(b.data[off+8:], v)
}
func (b bucket) find(k core.Key) int {
	for i := 0; i < b.count(); i++ {
		if b.key(i) == k {
			return i
		}
	}
	return -1
}

// Config tunes the index.
type Config struct {
	// InitialBuckets is the starting directory size (default 8).
	InitialBuckets int
	// MaxLoad is records per bucket-page slot fraction that triggers a
	// directory doubling (default 0.8 of one page per bucket).
	MaxLoad float64
}

// Index is the hash index. Bucket pages hold the records themselves (a
// primary hash organization), so they are allocated as base data; overflow
// pages likewise; the directory is auxiliary.
type Index struct {
	pool    *storage.BufferPool
	cfg     Config
	dir     []storage.PageID
	count   int
	pages   uint64 // total bucket+overflow pages
	perPage int
}

// New creates an empty index on pool.
func New(pool *storage.BufferPool, cfg Config) (*Index, error) {
	if cfg.InitialBuckets <= 0 {
		cfg.InitialBuckets = 8
	}
	if cfg.MaxLoad <= 0 {
		cfg.MaxLoad = 0.8
	}
	perPage := (pool.Device().PageSize() - headerSize) / entrySize
	if perPage < 1 {
		return nil, fmt.Errorf("hashindex: page size %d too small", pool.Device().PageSize())
	}
	idx := &Index{pool: pool, cfg: cfg, perPage: perPage}
	if err := idx.initDir(cfg.InitialBuckets); err != nil {
		return nil, err
	}
	return idx, nil
}

func (x *Index) initDir(n int) error {
	x.dir = make([]storage.PageID, n)
	for i := range x.dir {
		f, err := x.pool.NewPage(rum.Base)
		if err != nil {
			return err
		}
		bucket{f.Data()}.setOverflow(storage.InvalidPage)
		f.MarkDirty()
		x.dir[i] = f.ID()
		x.pool.Release(f)
	}
	x.pages = uint64(n)
	return nil
}

// Name identifies the index and its directory size.
func (x *Index) Name() string { return fmt.Sprintf("hash(buckets=%d)", len(x.dir)) }

// Len returns the number of records.
func (x *Index) Len() int { return x.count }

// Buckets returns the current directory size.
func (x *Index) Buckets() int { return len(x.dir) }

// Pool returns the buffer pool the index runs on.
func (x *Index) Pool() *storage.BufferPool { return x.pool }

// Meter returns the device meter accumulating physical traffic.
func (x *Index) Meter() *rum.Meter { return x.pool.Device().Meter() }

// Size reports records as base bytes; bucket slack, overflow slack, and the
// directory as auxiliary bytes.
func (x *Index) Size() rum.SizeInfo {
	pageBytes := x.pages * uint64(x.pool.Device().PageSize())
	base := uint64(x.count) * core.RecordSize
	if base > pageBytes {
		base = pageBytes
	}
	return rum.SizeInfo{
		BaseBytes: base,
		AuxBytes:  pageBytes - base + uint64(len(x.dir))*dirEntrySize,
	}
}

// Flush writes all buffered dirty pages to the device.
func (x *Index) Flush() { x.pool.FlushAll() }

func hash(k core.Key) uint64 {
	k += 0x9e3779b97f4a7c15
	k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9
	k = (k ^ (k >> 27)) * 0x94d049bb133111eb
	return k ^ (k >> 31)
}

func (x *Index) bucketOf(k core.Key) storage.PageID {
	return x.dir[hash(k)%uint64(len(x.dir))]
}

// Get probes the bucket chain for k: O(1) pages in the non-overflowing case.
func (x *Index) Get(k core.Key) (core.Value, bool) {
	pid := x.bucketOf(k)
	for pid != storage.InvalidPage {
		f, err := x.pool.Fetch(pid)
		if err != nil {
			return 0, false
		}
		b := bucket{f.Data()}
		if i := b.find(k); i >= 0 {
			v := b.value(i)
			x.pool.Release(f)
			return v, true
		}
		pid = b.overflow()
		x.pool.Release(f)
	}
	return 0, false
}

// Insert adds a record to its bucket chain, allocating an overflow page when
// the chain is full, and doubles the directory past the load threshold.
func (x *Index) Insert(k core.Key, v core.Value) error {
	if x.loadFactor() > x.cfg.MaxLoad {
		if err := x.grow(); err != nil {
			return err
		}
	}
	return x.insertNoGrow(k, v, true)
}

func (x *Index) loadFactor() float64 {
	return float64(x.count) / float64(len(x.dir)*x.perPage)
}

func (x *Index) insertNoGrow(k core.Key, v core.Value, checkDup bool) error {
	// With uniqueness checking the whole chain must be examined before
	// inserting: deletes leave free slots in early pages while the key may
	// still live in a later overflow page.
	if checkDup {
		pid := x.bucketOf(k)
		for pid != storage.InvalidPage {
			f, err := x.pool.Fetch(pid)
			if err != nil {
				return err
			}
			b := bucket{f.Data()}
			if b.find(k) >= 0 {
				x.pool.Release(f)
				return core.ErrKeyExists
			}
			pid = b.overflow()
			x.pool.Release(f)
		}
	}
	pid := x.bucketOf(k)
	for {
		f, err := x.pool.Fetch(pid)
		if err != nil {
			return err
		}
		b := bucket{f.Data()}
		if b.count() < x.perPage {
			b.set(b.count(), k, v)
			b.setCount(b.count() + 1)
			f.MarkDirty()
			x.pool.Release(f)
			x.count++
			return nil
		}
		next := b.overflow()
		if next == storage.InvalidPage {
			of, err := x.pool.NewPage(rum.Base)
			if err != nil {
				x.pool.Release(f)
				return err
			}
			ob := bucket{of.Data()}
			ob.setOverflow(storage.InvalidPage)
			ob.set(0, k, v)
			ob.setCount(1)
			of.MarkDirty()
			b.setOverflow(of.ID())
			f.MarkDirty()
			x.pool.Release(of)
			x.pool.Release(f)
			x.pages++
			x.count++
			return nil
		}
		x.pool.Release(f)
		pid = next
	}
}

// grow doubles the directory and rehashes every record: the O(N)
// reorganization cost, charged through page traffic.
func (x *Index) grow() error {
	old := x.dir
	recs := make([]core.Record, 0, x.count)
	for _, pid := range old {
		for pid != storage.InvalidPage {
			f, err := x.pool.Fetch(pid)
			if err != nil {
				return err
			}
			b := bucket{f.Data()}
			for i := 0; i < b.count(); i++ {
				recs = append(recs, core.Record{Key: b.key(i), Value: b.value(i)})
			}
			next := b.overflow()
			x.pool.Release(f)
			if err := x.pool.FreePage(pid); err != nil {
				return err
			}
			pid = next
		}
	}
	if err := x.initDir(2 * len(old)); err != nil {
		return err
	}
	x.count = 0
	for _, r := range recs {
		if err := x.insertNoGrow(r.Key, r.Value, false); err != nil {
			return err
		}
	}
	return nil
}

// Update overwrites an existing record in place.
func (x *Index) Update(k core.Key, v core.Value) bool {
	pid := x.bucketOf(k)
	for pid != storage.InvalidPage {
		f, err := x.pool.Fetch(pid)
		if err != nil {
			return false
		}
		b := bucket{f.Data()}
		if i := b.find(k); i >= 0 {
			b.set(i, k, v)
			f.MarkDirty()
			x.pool.Release(f)
			return true
		}
		pid = b.overflow()
		x.pool.Release(f)
	}
	return false
}

// Delete removes a record, filling its slot with the bucket's last record.
func (x *Index) Delete(k core.Key) bool {
	pid := x.bucketOf(k)
	for pid != storage.InvalidPage {
		f, err := x.pool.Fetch(pid)
		if err != nil {
			return false
		}
		b := bucket{f.Data()}
		if i := b.find(k); i >= 0 {
			last := b.count() - 1
			b.set(i, b.key(last), b.value(last))
			b.setCount(last)
			f.MarkDirty()
			x.pool.Release(f)
			x.count--
			return true
		}
		pid = b.overflow()
		x.pool.Release(f)
	}
	return false
}

// RangeScan reads every bucket page — hashing destroys order, so a range
// query is a full scan (Table 1's O(N/B)). Records are emitted in physical
// (bucket) order, not key order.
func (x *Index) RangeScan(lo, hi core.Key, emit func(core.Key, core.Value) bool) int {
	n := 0
	for _, root := range x.dir {
		pid := root
		for pid != storage.InvalidPage {
			f, err := x.pool.Fetch(pid)
			if err != nil {
				return n
			}
			b := bucket{f.Data()}
			for i := 0; i < b.count(); i++ {
				k := b.key(i)
				if k >= lo && k <= hi {
					n++
					if !emit(k, b.value(i)) {
						x.pool.Release(f)
						return n
					}
				}
			}
			pid = b.overflow()
			x.pool.Release(f)
		}
	}
	return n
}

// BulkLoad replaces the contents with recs, sizing the directory so buckets
// start within the load threshold (the O(N) bulk-creation row of Table 1).
func (x *Index) BulkLoad(recs []core.Record) error {
	// Free all current pages.
	for _, root := range x.dir {
		pid := root
		for pid != storage.InvalidPage {
			f, err := x.pool.Fetch(pid)
			if err != nil {
				return err
			}
			next := bucket{f.Data()}.overflow()
			x.pool.Release(f)
			if err := x.pool.FreePage(pid); err != nil {
				return err
			}
			pid = next
		}
	}
	need := int(float64(len(recs))/(x.cfg.MaxLoad*float64(x.perPage))) + 1
	n := 1
	for n < need {
		n *= 2
	}
	if err := x.initDir(n); err != nil {
		return err
	}
	x.count = 0
	for _, r := range recs {
		if err := x.insertNoGrow(r.Key, r.Value, false); err != nil {
			return err
		}
	}
	return nil
}

// Knobs exposes the tunable parameters (core.Tunable).
func (x *Index) Knobs() []core.Knob {
	return []core.Knob{
		{
			Name: "max_load", Min: 0.2, Max: 2.0, Current: x.cfg.MaxLoad,
			Doc: "load factor before directory doubling; lower = fewer overflow probes (lower RO) at more bucket slack (higher MO)",
		},
	}
}

// SetKnob adjusts a tuning parameter (core.Tunable).
func (x *Index) SetKnob(name string, value float64) error {
	switch name {
	case "max_load":
		if value <= 0 {
			return fmt.Errorf("hashindex: max_load must be positive")
		}
		x.cfg.MaxLoad = value
	default:
		return fmt.Errorf("hashindex: unknown knob %q", name)
	}
	return nil
}
