package approx

import "math"

// Distinct is a HyperLogLog-style distinct-key estimator (Flajolet et al.,
// AofA 2007): m registers, each remembering the longest run of leading zeros
// any key hashed into it produced. It is the working-set half of the
// workload fingerprinter: the count-min sketch weighs keys by frequency,
// Distinct counts how many different keys the traffic touches at all, in
// m bytes regardless of cardinality.
//
// The hash is the repository's fixed finalizer mix, so an estimator is a
// pure function of the key *set* it saw: add order, duplicates, and merge
// order cannot change the registers. Merge is register-wise max — the
// estimate of a union — which is what lets per-shard estimators fold into a
// server-wide working set, and two window generations fold into a sliding
// window.
type Distinct struct {
	regs []uint8
	p    uint8 // log2(len(regs))
}

// distinctP is the default precision: 2^11 = 2048 registers, ~2% standard
// error, 2 KiB per estimator — cheap enough for one per shard per window
// generation.
const distinctP = 11

// NewDistinct returns an empty estimator with 2^p registers (p clamped to
// [4, 16]).
func NewDistinct(p int) *Distinct {
	if p < 4 {
		p = 4
	}
	if p > 16 {
		p = 16
	}
	return &Distinct{regs: make([]uint8, 1<<p), p: uint8(p)}
}

// NewDefaultDistinct returns an estimator at the default precision.
func NewDefaultDistinct() *Distinct { return NewDistinct(distinctP) }

// distinctHash is the 64-bit finalizer mix used across the repository —
// deterministic, well-scattered, and independent of map iteration order.
func distinctHash(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// Add observes one key. Adding the same key again is a no-op on the
// registers, which is exactly the point.
func (d *Distinct) Add(key uint64) {
	h := distinctHash(key)
	idx := h >> (64 - d.p)
	rest := h<<d.p | 1<<(uint(d.p)-1) // low bits, sentinel caps the run length
	rank := uint8(1)
	for rest&(1<<63) == 0 {
		rank++
		rest <<= 1
	}
	if rank > d.regs[idx] {
		d.regs[idx] = rank
	}
}

// Merge folds o into d register-wise (max). Estimators must share a
// precision; mismatched sizes are a programming error and panic.
func (d *Distinct) Merge(o *Distinct) {
	if o == nil {
		return
	}
	if len(d.regs) != len(o.regs) {
		panic("approx: Distinct.Merge precision mismatch")
	}
	for i, r := range o.regs {
		if r > d.regs[i] {
			d.regs[i] = r
		}
	}
}

// Clone returns an independent copy.
func (d *Distinct) Clone() *Distinct {
	if d == nil {
		return nil
	}
	return &Distinct{regs: append([]uint8(nil), d.regs...), p: d.p}
}

// Clear zeroes the registers — the rotation primitive for windowed use.
func (d *Distinct) Clear() {
	for i := range d.regs {
		d.regs[i] = 0
	}
}

// SizeBytes returns the estimator's footprint.
func (d *Distinct) SizeBytes() int { return len(d.regs) }

// Estimate returns the approximate number of distinct keys added. It uses
// the standard HyperLogLog raw estimator with the small-range (linear
// counting) correction, which is the regime window-sized working sets
// usually occupy.
func (d *Distinct) Estimate() float64 {
	m := float64(len(d.regs))
	var sum float64
	zeros := 0
	for _, r := range d.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	raw := alpha * m * m / sum
	if raw <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	return raw
}
