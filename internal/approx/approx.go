// Package approx implements an approximate tree index in the spirit of the
// BF-tree (Athanassoulis & Ailamaki, PVLDB 2014) — the Section-5 roadmap
// item "approximate (tree) indexing that supports updates with low read
// performance overhead, by absorbing them in updatable probabilistic data
// structures (like quotient filters)".
//
// The base data is range-partitioned into zones, like a sparse index, but
// each zone additionally carries a *quotient filter* over its keys. Point
// queries consult the zone's filter before scanning: a negative answer
// skips the zone entirely, so misses (and membership checks) cost a filter
// probe instead of a partition scan — most of a dense index's read benefit
// at a fraction of its space. Because the filter is a quotient filter, it
// absorbs inserts and deletes in place, which a static Bloom filter cannot.
//
// RUM position: MO slightly above a plain zone map (the filters), RO far
// below it for point queries, UO slightly above it (filter maintenance) —
// a deliberate interior point of the triangle.
package approx

import (
	"fmt"
	"sort"

	"repro/internal/bloom"
	"repro/internal/core"
	"repro/internal/rum"
)

const zoneMetaSize = 24 // min (8) + max (8) + count (4) + pointer (4)

type zone struct {
	min, max core.Key
	recs     []core.Record
	filter   *bloom.Quotient
}

// Config tunes the index.
type Config struct {
	// Partition is the target records per zone (default 256).
	Partition int
	// FingerprintBits is the quotient-filter fingerprint width (default 16:
	// ~2^-8 false-positive rate per zone at half load).
	FingerprintBits uint
}

// Tree is the approximate index. Not safe for concurrent use.
type Tree struct {
	zones []*zone
	cfg   Config
	count int
	meter *rum.Meter
	// falsePositives counts zone scans the filter failed to prevent.
	falsePositives uint64
	filterSkips    uint64
}

// New creates an empty tree. A nil meter gets a private one.
func New(cfg Config, meter *rum.Meter) *Tree {
	if cfg.Partition < 8 {
		cfg.Partition = 256
	}
	if cfg.FingerprintBits == 0 {
		cfg.FingerprintBits = 16
	}
	if meter == nil {
		meter = &rum.Meter{}
	}
	return &Tree{cfg: cfg, meter: meter}
}

// Name identifies the tree and its shape.
func (t *Tree) Name() string {
	return fmt.Sprintf("approx(P=%d,fp=%d)", t.cfg.Partition, t.cfg.FingerprintBits)
}

// Len returns the number of records.
func (t *Tree) Len() int { return t.count }

// Zones returns the number of partitions.
func (t *Tree) Zones() int { return len(t.zones) }

// FilterSkips returns how many zone scans the filters avoided; FalseHits
// how many they failed to avoid (experiments/tests).
func (t *Tree) FilterSkips() uint64 { return t.filterSkips }

// FalseHits returns zone scans triggered by filter false positives.
func (t *Tree) FalseHits() uint64 { return t.falsePositives }

// Meter returns the RUM accounting.
func (t *Tree) Meter() *rum.Meter { return t.meter }

// Size reports records as base bytes; zone summaries and filters as
// auxiliary bytes.
func (t *Tree) Size() rum.SizeInfo {
	aux := uint64(len(t.zones)) * zoneMetaSize
	for _, z := range t.zones {
		aux += z.filter.SizeBytes()
	}
	return rum.SizeInfo{BaseBytes: uint64(t.count) * core.RecordSize, AuxBytes: aux}
}

// newFilter sizes a quotient filter for the configured partition.
func (t *Tree) newFilter() *bloom.Quotient {
	q := uint(3)
	for 1<<q < 2*t.cfg.Partition {
		q++
	}
	p := q + 8
	if t.cfg.FingerprintBits > q {
		p = t.cfg.FingerprintBits
	}
	f, err := bloom.NewQuotient(q, p, t.meter)
	if err != nil {
		panic(fmt.Sprintf("approx: %v", err))
	}
	return f
}

// zoneFor returns the index of the zone covering (or nearest below) k,
// charging binary probes over the summaries.
func (t *Tree) zoneFor(k core.Key) int {
	probes := 0
	i := sort.Search(len(t.zones), func(i int) bool {
		probes++
		return t.zones[i].min > k
	}) - 1
	t.meter.CountRead(rum.Aux, probes*rum.LineSize)
	if i < 0 && len(t.zones) > 0 {
		return 0
	}
	return i
}

// scanZone charges a partition scan and returns k's position, or -1.
func (t *Tree) scanZone(z *zone, k core.Key) int {
	t.meter.CountRead(rum.Base, len(z.recs)*core.RecordSize)
	for i, r := range z.recs {
		if r.Key == k {
			return i
		}
	}
	return -1
}

// mayContain asks the zone's filter, tracking skip/false-hit statistics.
func (t *Tree) mayContain(z *zone, k core.Key) bool {
	if z.filter.MayContain(k) {
		return true
	}
	t.filterSkips++
	return false
}

// Get locates the candidate zone, asks its filter, and scans only on a
// maybe.
func (t *Tree) Get(k core.Key) (core.Value, bool) {
	i := t.zoneFor(k)
	if i < 0 {
		return 0, false
	}
	z := t.zones[i]
	if k < z.min || k > z.max {
		return 0, false
	}
	if !t.mayContain(z, k) {
		return 0, false
	}
	j := t.scanZone(z, k)
	if j < 0 {
		t.falsePositives++
		return 0, false
	}
	return z.recs[j].Value, true
}

// Insert adds the record to its covering zone and the zone's filter,
// splitting oversized zones.
func (t *Tree) Insert(k core.Key, v core.Value) error {
	i := t.zoneFor(k)
	if i < 0 {
		z := &zone{min: k, max: k, filter: t.newFilter()}
		z.recs = append(z.recs, core.Record{Key: k, Value: v})
		z.filter.Add(k)
		t.zones = append(t.zones, z)
		t.meter.CountWrite(rum.Base, rum.LineCost(core.RecordSize))
		t.meter.CountWrite(rum.Aux, rum.LineCost(zoneMetaSize))
		t.count++
		return nil
	}
	z := t.zones[i]
	if k >= z.min && k <= z.max && t.mayContain(z, k) {
		if t.scanZone(z, k) >= 0 {
			return core.ErrKeyExists
		}
		t.falsePositives++
	}
	z.recs = append(z.recs, core.Record{Key: k, Value: v})
	z.filter.Add(k)
	if k < z.min {
		z.min = k
	}
	if k > z.max {
		z.max = k
	}
	t.meter.CountWrite(rum.Base, rum.LineCost(core.RecordSize))
	t.count++
	if len(z.recs) > 2*t.cfg.Partition {
		t.splitZone(i)
	}
	return nil
}

// splitZone divides an oversized zone into two, rebuilding both filters.
func (t *Tree) splitZone(i int) {
	z := t.zones[i]
	sort.Slice(z.recs, func(a, b int) bool { return z.recs[a].Key < z.recs[b].Key })
	mid := len(z.recs) / 2
	rightRecs := make([]core.Record, len(z.recs)-mid)
	copy(rightRecs, z.recs[mid:])
	right := &zone{min: rightRecs[0].Key, max: z.max, recs: rightRecs, filter: t.newFilter()}
	z.max = z.recs[mid-1].Key
	z.recs = z.recs[:mid]
	z.filter = t.newFilter()
	for _, r := range z.recs {
		z.filter.Add(r.Key)
	}
	for _, r := range right.recs {
		right.filter.Add(r.Key)
	}
	t.zones = append(t.zones, nil)
	copy(t.zones[i+2:], t.zones[i+1:])
	t.zones[i+1] = right
	t.meter.CountWrite(rum.Base, (len(z.recs)+len(right.recs))*core.RecordSize)
	t.meter.CountWrite(rum.Aux, 2*zoneMetaSize)
}

// Update overwrites the record in its zone.
func (t *Tree) Update(k core.Key, v core.Value) bool {
	i := t.zoneFor(k)
	if i < 0 {
		return false
	}
	z := t.zones[i]
	if k < z.min || k > z.max || !t.mayContain(z, k) {
		return false
	}
	j := t.scanZone(z, k)
	if j < 0 {
		t.falsePositives++
		return false
	}
	z.recs[j].Value = v
	t.meter.CountWrite(rum.Base, rum.LineCost(core.RecordSize))
	return true
}

// Delete removes the record from its zone and the zone's filter — the
// quotient filter's updatability at work.
func (t *Tree) Delete(k core.Key) bool {
	i := t.zoneFor(k)
	if i < 0 {
		return false
	}
	z := t.zones[i]
	if k < z.min || k > z.max || !t.mayContain(z, k) {
		return false
	}
	j := t.scanZone(z, k)
	if j < 0 {
		t.falsePositives++
		return false
	}
	last := len(z.recs) - 1
	z.recs[j] = z.recs[last]
	z.recs = z.recs[:last]
	z.filter.Remove(k)
	t.meter.CountWrite(rum.Base, rum.LineCost(core.RecordSize))
	t.count--
	return true
}

// RangeScan prunes zones by their summaries (filters cannot help with
// ranges) and emits qualifying partitions in ascending key order.
func (t *Tree) RangeScan(lo, hi core.Key, emit func(core.Key, core.Value) bool) int {
	t.meter.CountRead(rum.Aux, len(t.zones)*zoneMetaSize)
	emitted := 0
	for _, z := range t.zones {
		if z.max < lo || z.min > hi {
			continue
		}
		t.meter.CountRead(rum.Base, len(z.recs)*core.RecordSize)
		tmp := make([]core.Record, 0, len(z.recs))
		for _, r := range z.recs {
			if r.Key >= lo && r.Key <= hi {
				tmp = append(tmp, r)
			}
		}
		sort.Slice(tmp, func(a, b int) bool { return tmp[a].Key < tmp[b].Key })
		for _, r := range tmp {
			emitted++
			if !emit(r.Key, r.Value) {
				return emitted
			}
		}
	}
	return emitted
}

// BulkLoad replaces the contents with the key-sorted recs, packing zones of
// exactly the configured partition size and building their filters.
func (t *Tree) BulkLoad(recs []core.Record) error {
	t.zones = nil
	t.count = len(recs)
	for start := 0; start < len(recs); start += t.cfg.Partition {
		end := start + t.cfg.Partition
		if end > len(recs) {
			end = len(recs)
		}
		part := make([]core.Record, end-start)
		copy(part, recs[start:end])
		z := &zone{min: part[0].Key, max: part[len(part)-1].Key, recs: part, filter: t.newFilter()}
		for _, r := range part {
			z.filter.Add(r.Key)
		}
		t.zones = append(t.zones, z)
	}
	t.meter.CountWrite(rum.Base, len(recs)*core.RecordSize)
	t.meter.CountWrite(rum.Aux, len(t.zones)*zoneMetaSize)
	return nil
}

// Knobs exposes the tunable parameters (core.Tunable).
func (t *Tree) Knobs() []core.Knob {
	return []core.Knob{
		{
			Name: "partition_size", Min: 8, Max: 1 << 16, Current: float64(t.cfg.Partition),
			Doc: "records per zone; smaller = more filters and summaries (higher MO), shorter scans (lower RO)",
		},
		{
			Name: "fingerprint_bits", Min: 10, Max: 32, Current: float64(t.cfg.FingerprintBits),
			Doc: "quotient-filter fingerprint width; more bits = fewer false-positive zone scans (lower RO) at more filter memory (higher MO)",
		},
	}
}

// SetKnob adjusts a tuning parameter (core.Tunable), rebuilding the tree.
func (t *Tree) SetKnob(name string, value float64) error {
	switch name {
	case "partition_size":
		if value < 8 {
			return fmt.Errorf("approx: partition_size must be >= 8")
		}
		t.cfg.Partition = int(value)
	case "fingerprint_bits":
		if value < 10 || value > 32 {
			return fmt.Errorf("approx: fingerprint_bits out of range")
		}
		t.cfg.FingerprintBits = uint(value)
	default:
		return fmt.Errorf("approx: unknown knob %q", name)
	}
	recs := make([]core.Record, 0, t.count)
	for _, z := range t.zones {
		recs = append(recs, z.recs...)
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].Key < recs[b].Key })
	return t.BulkLoad(recs)
}
