package approx

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/zonemap"
)

func TestBasicOps(t *testing.T) {
	tr := New(Config{Partition: 16}, nil)
	if _, ok := tr.Get(1); ok {
		t.Fatal("get on empty")
	}
	if err := tr.Insert(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(1, 11); err != core.ErrKeyExists {
		t.Fatalf("dup: %v", err)
	}
	if v, ok := tr.Get(1); !ok || v != 10 {
		t.Fatal("get")
	}
	if !tr.Update(1, 20) {
		t.Fatal("update")
	}
	if tr.Update(2, 0) {
		t.Fatal("phantom update")
	}
	if !tr.Delete(1) {
		t.Fatal("delete")
	}
	if tr.Delete(1) || tr.Len() != 0 {
		t.Fatal("state after delete")
	}
}

func TestRandomizedAgainstMap(t *testing.T) {
	tr := New(Config{Partition: 32}, nil)
	rng := rand.New(rand.NewSource(6))
	ref := map[uint64]uint64{}
	for i := 0; i < 10000; i++ {
		k := uint64(rng.Intn(2500))
		switch rng.Intn(4) {
		case 0:
			err := tr.Insert(k, k*3)
			if _, ok := ref[k]; ok != (err == core.ErrKeyExists) {
				t.Fatalf("op %d: insert consistency on %d: %v", i, k, err)
			}
			if err == nil {
				ref[k] = k * 3
			}
		case 1:
			v, ok := tr.Get(k)
			rv, rok := ref[k]
			if ok != rok || (ok && v != rv) {
				t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", i, k, v, ok, rv, rok)
			}
		case 2:
			nv := rng.Uint64()
			if tr.Update(k, nv) {
				if _, ok := ref[k]; !ok {
					t.Fatalf("op %d: phantom update", i)
				}
				ref[k] = nv
			} else if _, ok := ref[k]; ok {
				t.Fatalf("op %d: missed update of %d", i, k)
			}
		case 3:
			_, want := ref[k]
			if tr.Delete(k) != want {
				t.Fatalf("op %d: delete(%d) want %v", i, k, want)
			}
			delete(ref, k)
		}
		if tr.Len() != len(ref) {
			t.Fatalf("op %d: len %d want %d", i, tr.Len(), len(ref))
		}
	}
	got := map[uint64]uint64{}
	tr.RangeScan(0, ^uint64(0), func(k core.Key, v core.Value) bool {
		got[k] = v
		return true
	})
	if len(got) != len(ref) {
		t.Fatalf("scan %d want %d", len(got), len(ref))
	}
}

// TestFiltersPruneMisses: the defining win over a plain zone map — point
// misses inside a zone's key range skip the partition scan.
func TestFiltersPruneMisses(t *testing.T) {
	tr := New(Config{Partition: 256, FingerprintBits: 20}, nil)
	zm := zonemap.New(256, nil)
	recs := make([]core.Record, 1<<14)
	for i := range recs {
		recs[i] = core.Record{Key: uint64(i * 4), Value: uint64(i)} // gaps of 3
	}
	if err := tr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if err := zm.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	t0, z0 := tr.Meter().Snapshot(), zm.Meter().Snapshot()
	rng := rand.New(rand.NewSource(2))
	const probes = 2000
	for i := 0; i < probes; i++ {
		k := uint64(rng.Intn(1<<14))*4 + 1 + uint64(rng.Intn(3)) // always a miss, in range
		if _, ok := tr.Get(k); ok {
			t.Fatal("phantom hit")
		}
		zm.Get(k)
	}
	trBase := tr.Meter().Diff(t0).BaseRead
	zmBase := zm.Meter().Diff(z0).BaseRead
	if trBase*5 > zmBase {
		t.Fatalf("filters should prune miss scans: approx=%d zonemap=%d", trBase, zmBase)
	}
	if tr.FilterSkips() < probes/2 {
		t.Fatalf("filters skipped only %d of %d misses", tr.FilterSkips(), probes)
	}
	// False positives exist but are rare at 20-bit fingerprints.
	if tr.FalseHits() > probes/20 {
		t.Fatalf("too many false hits: %d", tr.FalseHits())
	}
}

// TestUpdatability: unlike a static Bloom filter, deletes shrink the filter
// so re-probing a deleted key skips the scan again.
func TestUpdatability(t *testing.T) {
	tr := New(Config{Partition: 64, FingerprintBits: 20}, nil)
	for k := uint64(0); k < 512; k++ {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 512; k += 2 {
		if !tr.Delete(k) {
			t.Fatal("delete")
		}
	}
	skipsBefore := tr.FilterSkips()
	for k := uint64(0); k < 512; k += 2 {
		if _, ok := tr.Get(k); ok {
			t.Fatal("deleted key found")
		}
	}
	// The filters absorbed the deletes: most re-probes skip the zone scan.
	if tr.FilterSkips()-skipsBefore < 200 {
		t.Fatalf("deleted keys not pruned: %d skips", tr.FilterSkips()-skipsBefore)
	}
	// Odd keys survive.
	for k := uint64(1); k < 512; k += 2 {
		if v, ok := tr.Get(k); !ok || v != k {
			t.Fatalf("Get(%d)", k)
		}
	}
}

func TestMoreFingerprintBitsMoreSpaceFewerFalseHits(t *testing.T) {
	run := func(bits uint) (uint64, uint64) {
		tr := New(Config{Partition: 256, FingerprintBits: bits}, nil)
		recs := make([]core.Record, 1<<13)
		for i := range recs {
			recs[i] = core.Record{Key: uint64(i * 8), Value: uint64(i)}
		}
		if err := tr.BulkLoad(recs); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 3000; i++ {
			tr.Get(uint64(rng.Intn(1<<13))*8 + 3)
		}
		return tr.FalseHits(), tr.Size().AuxBytes
	}
	looseFP, looseAux := run(12)
	tightFP, tightAux := run(24)
	if tightAux <= looseAux {
		t.Fatalf("more bits should cost more space: %d vs %d", tightAux, looseAux)
	}
	if tightFP > looseFP {
		t.Fatalf("more bits should cut false hits: %d vs %d", tightFP, looseFP)
	}
}

func TestRangeScanOrdered(t *testing.T) {
	tr := New(Config{Partition: 32}, nil)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		_ = tr.Insert(uint64(rng.Intn(10000)), uint64(i))
	}
	prev, first := uint64(0), true
	tr.RangeScan(100, 9000, func(k core.Key, v core.Value) bool {
		if k < 100 || k > 9000 {
			t.Fatalf("out of range %d", k)
		}
		if !first && k <= prev {
			t.Fatal("not ascending")
		}
		first, prev = false, k
		return true
	})
}

func TestKnobsRebuild(t *testing.T) {
	tr := New(Config{Partition: 32}, nil)
	for k := uint64(0); k < 500; k++ {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.SetKnob("partition_size", 128); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 500 {
		t.Fatal("records lost in rebuild")
	}
	for k := uint64(0); k < 500; k += 23 {
		if v, ok := tr.Get(k); !ok || v != k {
			t.Fatalf("Get(%d) after rebuild", k)
		}
	}
	if err := tr.SetKnob("fingerprint_bits", 24); err != nil {
		t.Fatal(err)
	}
	if err := tr.SetKnob("fingerprint_bits", 5); err == nil {
		t.Fatal("invalid bits accepted")
	}
	if err := tr.SetKnob("x", 1); err == nil {
		t.Fatal("unknown knob accepted")
	}
}

func TestSizeAccountsFilters(t *testing.T) {
	tr := New(Config{Partition: 64}, nil)
	zm := zonemap.New(64, nil)
	recs := make([]core.Record, 4096)
	for i := range recs {
		recs[i] = core.Record{Key: uint64(i), Value: uint64(i)}
	}
	if err := tr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if err := zm.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if tr.Size().AuxBytes <= zm.Size().AuxBytes {
		t.Fatal("filters must cost space beyond the plain zone map")
	}
	if tr.Size().SpaceAmplification() > 2 {
		t.Fatalf("filters too expensive: MO %v", tr.Size().SpaceAmplification())
	}
}
