package approx

import (
	"math"
	"math/rand"
	"testing"
)

func TestDistinctAccuracy(t *testing.T) {
	for _, n := range []int{100, 1000, 10000, 100000} {
		d := NewDefaultDistinct()
		rng := rand.New(rand.NewSource(1))
		seen := map[uint64]bool{}
		for len(seen) < n {
			k := rng.Uint64()
			seen[k] = true
			d.Add(k)
			d.Add(k) // duplicates must not move the estimate
		}
		got := d.Estimate()
		if err := math.Abs(got-float64(n)) / float64(n); err > 0.08 {
			t.Fatalf("n=%d: estimate %.0f, relative error %.3f > 0.08", n, got, err)
		}
	}
}

func TestDistinctDeterministicSetFunction(t *testing.T) {
	keys := make([]uint64, 5000)
	rng := rand.New(rand.NewSource(9))
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	fwd, bwd := NewDefaultDistinct(), NewDefaultDistinct()
	for _, k := range keys {
		fwd.Add(k)
	}
	for i := len(keys) - 1; i >= 0; i-- {
		bwd.Add(keys[i])
		bwd.Add(keys[i])
	}
	if fwd.Estimate() != bwd.Estimate() {
		t.Fatalf("add order moved the estimate: %v vs %v", fwd.Estimate(), bwd.Estimate())
	}
}

func TestDistinctMergeIsUnion(t *testing.T) {
	a, b, whole := NewDefaultDistinct(), NewDefaultDistinct(), NewDefaultDistinct()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20000; i++ {
		k := rng.Uint64() % 30000 // overlapping sets
		whole.Add(k)
		if i%2 == 0 {
			a.Add(k)
		} else {
			b.Add(k)
		}
	}
	merged := a.Clone()
	merged.Merge(b)
	if merged.Estimate() != whole.Estimate() {
		t.Fatalf("merge is not the union: merged %v, whole %v", merged.Estimate(), whole.Estimate())
	}
	// Merge must not mutate its argument, and Clone must be independent.
	aBefore := a.Estimate()
	b.Merge(a)
	if a.Estimate() != aBefore {
		t.Fatal("Merge mutated its argument")
	}
}

func TestDistinctClear(t *testing.T) {
	d := NewDefaultDistinct()
	for i := 0; i < 1000; i++ {
		d.Add(uint64(i))
	}
	d.Clear()
	if got := d.Estimate(); got != 0 {
		t.Fatalf("estimate %v after Clear, want 0", got)
	}
}

func TestDistinctPrecisionClamp(t *testing.T) {
	if got := NewDistinct(1).SizeBytes(); got != 1<<4 {
		t.Fatalf("p=1 clamps to 16 registers, got %d", got)
	}
	if got := NewDistinct(99).SizeBytes(); got != 1<<16 {
		t.Fatalf("p=99 clamps to 65536 registers, got %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("precision-mismatched Merge did not panic")
		}
	}()
	NewDistinct(4).Merge(NewDistinct(8))
}
