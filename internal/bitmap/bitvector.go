// Package bitmap implements compressed bitmap indexes, the space-optimized
// structure the paper cites via FastBit's word-aligned lossy/lossless
// encodings, plus the Section-5 roadmap item "update-friendly bitmap
// indexes, where updates are absorbed using additional, highly compressible,
// bitvectors which are gradually merged".
//
// A Compressed bitvector uses word-aligned run-length coding (WAH-style,
// with 63-bit groups): dense runs of identical bits collapse into fill
// words, making sparse or clustered bitmaps far smaller than N bits — but
// random single-bit updates require rebuilding the vector, which is exactly
// the update overhead the RUM Conjecture predicts for the space-optimized
// corner. The Index therefore absorbs updates in per-value delta sets and
// merges them into the compressed vectors past a threshold.
package bitmap

import "math/bits"

// Word-aligned encoding: each 64-bit word is either
//
//	MSB 0: literal — the low 63 bits are a bit group, LSB = lowest position;
//	MSB 1: fill — bit 62 is the fill value, low 62 bits count groups.
const (
	groupBits = 63
	fillFlag  = uint64(1) << 63
	fillValue = uint64(1) << 62
	countMask = fillValue - 1
)

// Compressed is an immutable run-length-compressed bitvector. Build one with
// FromPositions; mutate by rebuilding (see Index for the delta-absorbing
// update path).
type Compressed struct {
	words []uint64
	nbits uint64 // logical length in bits
	ones  uint64
}

// FromPositions builds a compressed vector of length nbits with ones at the
// given strictly-ascending positions.
func FromPositions(positions []uint64, nbits uint64) *Compressed {
	c := &Compressed{nbits: nbits, ones: uint64(len(positions))}
	group := uint64(0)
	var cur uint64 // literal accumulator for group `group`
	flushTo := func(g uint64) {
		// Emit accumulated literal for the current group, then zero-fill up
		// to group g.
		if g == group {
			return
		}
		c.appendLiteral(cur)
		cur = 0
		group++
		if g > group {
			c.appendFill(false, g-group)
			group = g
		}
	}
	for _, p := range positions {
		g := p / groupBits
		flushTo(g)
		cur |= 1 << (p % groupBits)
	}
	lastGroup := (nbits + groupBits - 1) / groupBits
	if lastGroup == 0 {
		lastGroup = 1
	}
	flushTo(lastGroup - 1)
	c.appendLiteral(cur)
	return c
}

func (c *Compressed) appendLiteral(w uint64) {
	w &= (1 << groupBits) - 1
	switch w {
	case 0:
		c.appendFill(false, 1)
		return
	case (1 << groupBits) - 1:
		c.appendFill(true, 1)
		return
	}
	c.words = append(c.words, w)
}

func (c *Compressed) appendFill(one bool, groups uint64) {
	if groups == 0 {
		return
	}
	// Coalesce with a preceding fill of the same polarity.
	if n := len(c.words); n > 0 {
		last := c.words[n-1]
		if last&fillFlag != 0 && (last&fillValue != 0) == one {
			c.words[n-1] = last + groups
			return
		}
	}
	w := fillFlag | groups
	if one {
		w |= fillValue
	}
	c.words = append(c.words, w)
}

// Len returns the logical length in bits.
func (c *Compressed) Len() uint64 { return c.nbits }

// Ones returns the number of set bits.
func (c *Compressed) Ones() uint64 { return c.ones }

// SizeBytes returns the compressed footprint.
func (c *Compressed) SizeBytes() uint64 { return uint64(len(c.words)) * 8 }

// Words returns the number of encoded words (testing/inspection).
func (c *Compressed) Words() int { return len(c.words) }

// Test reports whether bit pos is set, and the number of words scanned to
// find it (the caller charges that as read cost).
func (c *Compressed) Test(pos uint64) (set bool, wordsScanned int) {
	target := pos / groupBits
	group := uint64(0)
	for i, w := range c.words {
		if w&fillFlag != 0 {
			n := w & countMask
			if target < group+n {
				return w&fillValue != 0, i + 1
			}
			group += n
			continue
		}
		if group == target {
			return w&(1<<(pos%groupBits)) != 0, i + 1
		}
		group++
	}
	return false, len(c.words)
}

// Iterate calls fn with each set position in ascending order, stopping early
// if fn returns false. It returns the number of words decoded.
func (c *Compressed) Iterate(fn func(pos uint64) bool) int {
	group := uint64(0)
	for i, w := range c.words {
		if w&fillFlag != 0 {
			n := w & countMask
			if w&fillValue != 0 {
				for g := group; g < group+n; g++ {
					for b := uint64(0); b < groupBits; b++ {
						p := g*groupBits + b
						if p >= c.nbits {
							return i + 1
						}
						if !fn(p) {
							return i + 1
						}
					}
				}
			}
			group += n
			continue
		}
		rem := w
		for rem != 0 {
			b := uint64(bits.TrailingZeros64(rem))
			p := group*groupBits + b
			if p >= c.nbits {
				return i + 1
			}
			if !fn(p) {
				return i + 1
			}
			rem &= rem - 1
		}
		group++
	}
	return len(c.words)
}

// Positions decodes every set position.
func (c *Compressed) Positions() []uint64 {
	out := make([]uint64, 0, c.ones)
	c.Iterate(func(p uint64) bool {
		out = append(out, p)
		return true
	})
	return out
}
