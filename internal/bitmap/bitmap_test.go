package bitmap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestBitvectorRoundTripProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		// Dedup + sort into valid positions.
		seen := map[uint64]bool{}
		var pos []uint64
		for _, r := range raw {
			p := uint64(r)
			if !seen[p] {
				seen[p] = true
				pos = append(pos, p)
			}
		}
		sort.Slice(pos, func(i, j int) bool { return pos[i] < pos[j] })
		nbits := uint64(1 << 32)
		c := FromPositions(pos, nbits)
		got := c.Positions()
		if len(got) != len(pos) {
			return false
		}
		for i := range pos {
			if got[i] != pos[i] {
				return false
			}
		}
		return c.Ones() == uint64(len(pos))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBitvectorTest(t *testing.T) {
	pos := []uint64{0, 1, 63, 64, 100, 1000, 1 << 20}
	c := FromPositions(pos, 1<<21)
	want := map[uint64]bool{}
	for _, p := range pos {
		want[p] = true
	}
	for _, p := range []uint64{0, 1, 2, 62, 63, 64, 65, 99, 100, 101, 999, 1000, 1 << 20, 1<<20 + 1} {
		got, scanned := c.Test(p)
		if got != want[p] {
			t.Fatalf("Test(%d) = %v", p, got)
		}
		if scanned <= 0 {
			t.Fatalf("Test(%d) scanned %d words", p, scanned)
		}
	}
}

func TestCompressionOfRuns(t *testing.T) {
	// A long run of ones followed by zeros should collapse into few words.
	var pos []uint64
	for p := uint64(0); p < 63*1000; p++ {
		pos = append(pos, p)
	}
	c := FromPositions(pos, 1<<30)
	if c.Words() > 4 {
		t.Fatalf("dense run encoded in %d words", c.Words())
	}
	// Scattered bits do not compress: one literal each.
	var sparse []uint64
	for p := uint64(0); p < 1000; p++ {
		sparse = append(sparse, p*1000)
	}
	s := FromPositions(sparse, 1<<30)
	if s.Words() < 1000 {
		t.Fatalf("scattered bits in only %d words", s.Words())
	}
}

func TestIterateEarlyStop(t *testing.T) {
	c := FromPositions([]uint64{1, 2, 3, 4, 5}, 100)
	n := 0
	c.Iterate(func(p uint64) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("iterated %d", n)
	}
}

func TestEmptyVector(t *testing.T) {
	c := FromPositions(nil, 0)
	if c.Ones() != 0 {
		t.Fatal("ones")
	}
	if set, _ := c.Test(5); set {
		t.Fatal("empty vector has a bit")
	}
	if got := c.Positions(); len(got) != 0 {
		t.Fatalf("positions: %v", got)
	}
}

// --- Index tests ---

func newIdx(card, merge int) *Index {
	return New(Config{Cardinality: card, MergeThreshold: merge}, nil)
}

func TestIndexBasicOps(t *testing.T) {
	x := newIdx(8, 16)
	if _, ok := x.Get(5); ok {
		t.Fatal("get on empty")
	}
	if err := x.Insert(5, 3); err != nil {
		t.Fatal(err)
	}
	if v, ok := x.Get(5); !ok || v != 3 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if err := x.Insert(5, 4); err != core.ErrKeyExists {
		t.Fatalf("dup: %v", err)
	}
	if !x.Update(5, 6) {
		t.Fatal("update")
	}
	if v, _ := x.Get(5); v != 6 {
		t.Fatalf("updated value %d", v)
	}
	if !x.Delete(5) {
		t.Fatal("delete")
	}
	if x.Delete(5) || x.Len() != 0 {
		t.Fatal("state after delete")
	}
}

func TestIndexValuesReducedModCardinality(t *testing.T) {
	x := newIdx(8, 16)
	if err := x.Insert(1, 8+3); err != nil {
		t.Fatal(err)
	}
	if v, _ := x.Get(1); v != 3 {
		t.Fatalf("stored code %d, want 3", v)
	}
}

func TestIndexRandomizedAgainstMap(t *testing.T) {
	x := newIdx(16, 32)
	rng := rand.New(rand.NewSource(4))
	ref := map[uint64]uint64{}
	for i := 0; i < 4000; i++ {
		k := uint64(rng.Intn(2000))
		switch rng.Intn(4) {
		case 0:
			v := uint64(rng.Intn(16))
			err := x.Insert(k, v)
			if _, ok := ref[k]; ok != (err == core.ErrKeyExists) {
				t.Fatalf("op %d: insert consistency", i)
			}
			if err == nil {
				ref[k] = v
			}
		case 1:
			v, ok := x.Get(k)
			rv, rok := ref[k]
			if ok != rok || (ok && v != rv) {
				t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", i, k, v, ok, rv, rok)
			}
		case 2:
			v := uint64(rng.Intn(16))
			if x.Update(k, v) {
				if _, ok := ref[k]; !ok {
					t.Fatalf("op %d: phantom update", i)
				}
				ref[k] = v
			}
		case 3:
			_, want := ref[k]
			if x.Delete(k) != want {
				t.Fatalf("op %d: delete", i)
			}
			delete(ref, k)
		}
		if x.Len() != len(ref) {
			t.Fatalf("op %d: len %d want %d", i, x.Len(), len(ref))
		}
	}
	// Scan must agree exactly.
	got := map[uint64]uint64{}
	x.RangeScan(0, ^uint64(0), func(k core.Key, v core.Value) bool {
		got[k] = v
		return true
	})
	if len(got) != len(ref) {
		t.Fatalf("scan %d want %d", len(got), len(ref))
	}
	for k, v := range ref {
		if got[k] != v {
			t.Fatalf("scan[%d] = %d want %d", k, got[k], v)
		}
	}
}

func TestIndexMergeThreshold(t *testing.T) {
	x := newIdx(4, 8)
	for k := uint64(0); k < 100; k++ {
		if err := x.Insert(k, k%4); err != nil {
			t.Fatal(err)
		}
	}
	// Deltas merge at 8 entries, so pending stays below cardinality*8.
	if p := x.PendingUpdates(); p >= 4*8 {
		t.Fatalf("pending %d not bounded by merges", p)
	}
	for k := uint64(0); k < 100; k++ {
		if v, ok := x.Get(k); !ok || v != k%4 {
			t.Fatalf("Get(%d) after merges", k)
		}
	}
}

func TestIndexUpdateFriendliness(t *testing.T) {
	// The Section-5 design point: a high merge threshold absorbs updates
	// cheaply (low UO), a low threshold pays merge rewrites eagerly.
	churn := func(threshold int) uint64 {
		x := newIdx(8, threshold)
		recs := make([]core.Record, 2000)
		for i := range recs {
			recs[i] = core.Record{Key: uint64(i), Value: uint64(i % 8)}
		}
		if err := x.BulkLoad(recs); err != nil {
			t.Fatal(err)
		}
		m0 := x.Meter().Snapshot()
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 1000; i++ {
			x.Update(uint64(rng.Intn(2000)), uint64(rng.Intn(8)))
		}
		return x.Meter().Diff(m0).PhysicalWritten()
	}
	lazy, eager := churn(1<<20), churn(4)
	if lazy >= eager {
		t.Fatalf("lazy merging should write less: lazy=%d eager=%d", lazy, eager)
	}
}

func TestIndexRows(t *testing.T) {
	x := newIdx(4, 16)
	for k := uint64(0); k < 40; k++ {
		if err := x.Insert(k, k%4); err != nil {
			t.Fatal(err)
		}
	}
	var rows []uint64
	n := x.Rows(2, func(p uint64) bool {
		rows = append(rows, p)
		return true
	})
	if n != 10 {
		t.Fatalf("Rows(2) = %d", n)
	}
	for _, p := range rows {
		if p%4 != 2 {
			t.Fatalf("row %d has wrong code", p)
		}
	}
}

func TestIndexBulkLoadAndScan(t *testing.T) {
	x := newIdx(8, 64)
	recs := make([]core.Record, 1000)
	for i := range recs {
		recs[i] = core.Record{Key: uint64(i * 3), Value: uint64(i % 8)}
	}
	if err := x.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if x.Len() != 1000 {
		t.Fatal("len")
	}
	prev, first := uint64(0), true
	n := x.RangeScan(0, ^uint64(0), func(k core.Key, v core.Value) bool {
		if !first && k <= prev {
			t.Fatal("scan not ascending")
		}
		first, prev = false, k
		return true
	})
	if n != 1000 {
		t.Fatalf("scan emitted %d", n)
	}
}

func TestIndexKnobs(t *testing.T) {
	x := newIdx(8, 16)
	if err := x.SetKnob("merge_threshold", 128); err != nil {
		t.Fatal(err)
	}
	if x.threshold != 128 {
		t.Fatal("knob not applied")
	}
	if err := x.SetKnob("merge_threshold", 0); err == nil {
		t.Fatal("invalid threshold accepted")
	}
	if err := x.SetKnob("x", 1); err == nil {
		t.Fatal("unknown knob accepted")
	}
}
