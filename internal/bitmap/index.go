package bitmap

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/rum"
)

const wordBytes = 8

// deltaEntrySize accounts one pending update: position (8) + set/clear flag,
// padded to a word.
const deltaEntrySize = 16

// Index is a bitmap index used as a complete store over a *low-cardinality*
// attribute: record keys are row positions and values are attribute codes in
// [0, cardinality). Insert reduces arbitrary values modulo the cardinality
// (bitmap indexes model categorical attributes; the reduction is documented
// lossiness, Get returns the stored code).
//
// Reads probe the compressed vectors (cheap space, expensive point access);
// updates are absorbed in per-value delta sets and merged into the
// compressed vectors once a delta exceeds MergeThreshold — the paper's
// update-friendly bitmap design. Not safe for concurrent use.
type Index struct {
	cardinality int
	vectors     []*Compressed
	deltas      []map[uint64]bool // position → set (true) / clear (false)
	deltaLive   []int             // net live rows per value in the delta
	count       int
	maxRow      uint64
	threshold   int
	meter       *rum.Meter
}

// Config tunes the index.
type Config struct {
	// Cardinality is the attribute domain size (default 16).
	Cardinality int
	// MergeThreshold is the pending-update count that triggers merging a
	// delta into its compressed vector (default 256).
	MergeThreshold int
}

// New creates an empty index. A nil meter gets a private one.
func New(cfg Config, meter *rum.Meter) *Index {
	if cfg.Cardinality < 2 {
		cfg.Cardinality = 16
	}
	if cfg.MergeThreshold < 1 {
		cfg.MergeThreshold = 256
	}
	if meter == nil {
		meter = &rum.Meter{}
	}
	x := &Index{
		cardinality: cfg.Cardinality,
		threshold:   cfg.MergeThreshold,
		meter:       meter,
	}
	x.initVectors()
	return x
}

func (x *Index) initVectors() {
	x.vectors = make([]*Compressed, x.cardinality)
	x.deltas = make([]map[uint64]bool, x.cardinality)
	x.deltaLive = make([]int, x.cardinality)
	for v := range x.vectors {
		x.vectors[v] = FromPositions(nil, 0)
		x.deltas[v] = make(map[uint64]bool)
	}
}

// Name identifies the index and its cardinality.
func (x *Index) Name() string { return fmt.Sprintf("bitmap(card=%d)", x.cardinality) }

// Len returns the number of live rows.
func (x *Index) Len() int { return x.count }

// Cardinality returns the attribute domain size.
func (x *Index) Cardinality() int { return x.cardinality }

// Meter returns the RUM accounting.
func (x *Index) Meter() *rum.Meter { return x.meter }

// Size reports the logical rows as base bytes, capped at the stored
// footprint — compression can store less than the logical data, the point of
// the space-optimized corner — with everything stored beyond that as
// auxiliary bytes.
func (x *Index) Size() rum.SizeInfo {
	stored := uint64(0)
	for v := range x.vectors {
		stored += x.vectors[v].SizeBytes()
		stored += uint64(len(x.deltas[v])) * deltaEntrySize
	}
	base := uint64(x.count) * core.RecordSize
	if base > stored {
		base = stored
	}
	return rum.SizeInfo{BaseBytes: base, AuxBytes: stored - base}
}

// testValue reports whether row pos currently has attribute v, charging the
// probe.
func (x *Index) testValue(v int, pos uint64) bool {
	if set, ok := x.deltas[v][pos]; ok {
		x.meter.CountRead(rum.Aux, rum.LineSize)
		return set
	}
	x.meter.CountRead(rum.Aux, rum.LineSize) // delta miss probe
	set, scanned := x.vectors[v].Test(pos)
	x.meter.CountRead(rum.Aux, scanned*wordBytes)
	return set
}

// find returns the attribute code of row k, or -1.
func (x *Index) find(k core.Key) int {
	for v := 0; v < x.cardinality; v++ {
		if x.testValue(v, k) {
			return v
		}
	}
	return -1
}

// Get probes each value's vector for the row bit.
func (x *Index) Get(k core.Key) (core.Value, bool) {
	v := x.find(k)
	if v < 0 {
		return 0, false
	}
	return core.Value(v), true
}

// setDelta records a pending bit change and merges past the threshold.
func (x *Index) setDelta(v int, pos uint64, set bool) {
	x.deltas[v][pos] = set
	if set {
		x.deltaLive[v]++
	} else {
		x.deltaLive[v]--
	}
	x.meter.CountWrite(rum.Aux, rum.LineSize)
	if len(x.deltas[v]) >= x.threshold {
		x.merge(v)
	}
}

// merge folds value v's delta into its compressed vector, rebuilding it —
// the "gradually merged" consolidation whose cost is the deferred update
// overhead.
func (x *Index) merge(v int) {
	old := x.vectors[v]
	pos := old.Positions()
	x.meter.CountRead(rum.Aux, old.Words()*wordBytes)
	x.meter.CountRead(rum.Aux, len(x.deltas[v])*deltaEntrySize)

	keep := pos[:0]
	for _, p := range pos {
		if set, ok := x.deltas[v][p]; ok && !set {
			continue // cleared
		}
		keep = append(keep, p)
	}
	for p, set := range x.deltas[v] {
		if set {
			if s, _ := old.Test(p); !s {
				keep = append(keep, p)
			}
		}
	}
	sort.Slice(keep, func(i, j int) bool { return keep[i] < keep[j] })
	nbits := x.maxRow + 1
	x.vectors[v] = FromPositions(keep, nbits)
	x.deltas[v] = make(map[uint64]bool)
	x.deltaLive[v] = 0
	x.meter.CountWrite(rum.Aux, int(x.vectors[v].SizeBytes()))
}

// Insert stores row k with attribute code v % cardinality. Uniqueness
// requires probing every value's vector — a row could exist under any code.
func (x *Index) Insert(k core.Key, v core.Value) error {
	code := int(v % core.Value(x.cardinality))
	if x.find(k) >= 0 {
		return core.ErrKeyExists
	}
	if k > x.maxRow {
		x.maxRow = k
	}
	x.setDelta(code, k, true)
	x.count++
	return nil
}

// Update moves row k to a new attribute code, clearing its old bit and
// setting the new one (two bitvector updates, as in the paper's
// direct-address analysis of content-addressed structures).
func (x *Index) Update(k core.Key, v core.Value) bool {
	old := x.find(k)
	if old < 0 {
		return false
	}
	code := int(v % core.Value(x.cardinality))
	if code == old {
		return true
	}
	x.setDelta(old, k, false)
	x.setDelta(code, k, true)
	return true
}

// Delete clears row k's bit.
func (x *Index) Delete(k core.Key) bool {
	old := x.find(k)
	if old < 0 {
		return false
	}
	x.setDelta(old, k, false)
	x.count--
	return true
}

// RangeScan emits rows lo..hi in ascending row order with their attribute
// codes, decoding every vector across the range.
func (x *Index) RangeScan(lo, hi core.Key, emit func(core.Key, core.Value) bool) int {
	type hit struct {
		pos uint64
		val core.Value
	}
	var hits []hit
	for v := 0; v < x.cardinality; v++ {
		scanned := x.vectors[v].Iterate(func(p uint64) bool {
			if p > hi {
				return false
			}
			if p >= lo {
				if set, ok := x.deltas[v][p]; !ok || set {
					hits = append(hits, hit{p, core.Value(v)})
				}
			}
			return true
		})
		x.meter.CountRead(rum.Aux, scanned*wordBytes)
		for p, set := range x.deltas[v] {
			if set && p >= lo && p <= hi {
				if s, _ := x.vectors[v].Test(p); !s {
					hits = append(hits, hit{p, core.Value(v)})
				}
			}
		}
		x.meter.CountRead(rum.Aux, len(x.deltas[v])*deltaEntrySize)
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].pos < hits[j].pos })
	emitted := 0
	for _, h := range hits {
		emitted++
		if !emit(h.pos, h.val) {
			break
		}
	}
	return emitted
}

// Rows calls emit with every row whose attribute code equals v — the native
// bitmap-index query shape.
func (x *Index) Rows(v core.Value, emit func(pos uint64) bool) int {
	code := int(v % core.Value(x.cardinality))
	n := 0
	scanned := x.vectors[code].Iterate(func(p uint64) bool {
		if set, ok := x.deltas[code][p]; ok && !set {
			return true
		}
		n++
		return emit(p)
	})
	x.meter.CountRead(rum.Aux, scanned*wordBytes)
	for p, set := range x.deltas[code] {
		if set {
			if s, _ := x.vectors[code].Test(p); !s {
				n++
				if !emit(p) {
					break
				}
			}
		}
	}
	return n
}

// BulkLoad replaces the contents with the key-sorted recs.
func (x *Index) BulkLoad(recs []core.Record) error {
	perValue := make([][]uint64, x.cardinality)
	x.maxRow = 0
	for _, r := range recs {
		code := int(r.Value % core.Value(x.cardinality))
		perValue[code] = append(perValue[code], r.Key)
		if r.Key > x.maxRow {
			x.maxRow = r.Key
		}
	}
	x.initVectors()
	for v := range perValue {
		x.vectors[v] = FromPositions(perValue[v], x.maxRow+1)
		x.meter.CountWrite(rum.Aux, int(x.vectors[v].SizeBytes()))
	}
	x.count = len(recs)
	return nil
}

// PendingUpdates returns the total delta entries not yet merged (testing).
func (x *Index) PendingUpdates() int {
	n := 0
	for _, d := range x.deltas {
		n += len(d)
	}
	return n
}

// Knobs exposes the tunable parameters (core.Tunable).
func (x *Index) Knobs() []core.Knob {
	return []core.Knob{
		{
			Name: "merge_threshold", Min: 1, Max: 1 << 16, Current: float64(x.threshold),
			Doc: "delta size before merging into the compressed vector; higher = cheaper updates (lower UO) but bigger deltas (higher MO, RO)",
		},
	}
}

// SetKnob adjusts a tuning parameter (core.Tunable).
func (x *Index) SetKnob(name string, value float64) error {
	if name != "merge_threshold" {
		return fmt.Errorf("bitmap: unknown knob %q", name)
	}
	if value < 1 {
		return fmt.Errorf("bitmap: merge_threshold must be >= 1")
	}
	x.threshold = int(value)
	return nil
}
