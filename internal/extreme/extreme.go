// Package extreme implements the three thought-experiment structures of
// Section 2 of the paper, each minimizing exactly one RUM overhead, used to
// verify Propositions 1–3 empirically:
//
//	Prop 1: min(RO) = 1.0 ⇒ UO = 2.0 and MO → ∞   (direct-address array)
//	Prop 2: min(UO) = 1.0 ⇒ RO → ∞ and MO → ∞     (append-only log)
//	Prop 3: min(MO) = 1.0 ⇒ RO = N and UO = 1.0   (dense in-place array)
//
// The paper's model is a relation of N integer values stored in fixed-size
// blocks; the workload is membership queries, inserts, deletes, and value
// changes. IntStore captures exactly that model (it is deliberately narrower
// than core.AccessMethod: the structures are content-addressed sets, not
// key-value maps).
package extreme

import (
	"repro/internal/rum"
)

// SlotSize is the size of one block in the paper's model: a block holds one
// value.
const SlotSize = 8

// IntStore is the paper's Section-2 abstraction: a set of integers supporting
// membership, insert, delete, and value change.
type IntStore interface {
	// Name identifies the structure.
	Name() string
	// Has reports whether v is in the set.
	Has(v uint64) bool
	// Insert adds v (no-op if present; idempotency is structure-specific and
	// documented per implementation).
	Insert(v uint64)
	// Delete removes v, reporting whether it was present.
	Delete(v uint64) bool
	// Change replaces old with new, reporting whether old was present.
	Change(old, new uint64) bool
	// Len returns the number of live values.
	Len() int
	// Meter exposes the RUM accounting.
	Meter() *rum.Meter
	// Size reports current space usage.
	Size() rum.SizeInfo
}

// DirectArray is the Prop-1 structure: value v is stored in the block with
// blkid = v, so every lookup reads exactly the one block that can hold the
// answer (RO = 1). Changing a value must empty the old block and fill the new
// one (UO = 2), and the array must span the whole value domain (MO unbounded).
//
// The slot array is materialized sparsely in process memory but *accounted*
// densely: space usage covers every block up to the configured domain,
// exactly as the paper's analysis requires.
type DirectArray struct {
	domain uint64
	slots  map[uint64]struct{}
	meter  rum.Meter
}

// NewDirectArray creates a direct-address array over the value domain
// [0, domain).
func NewDirectArray(domain uint64) *DirectArray {
	return &DirectArray{domain: domain, slots: make(map[uint64]struct{})}
}

// Name returns "direct-array".
func (d *DirectArray) Name() string { return "direct-array" }

// Has reads exactly one block.
func (d *DirectArray) Has(v uint64) bool {
	d.meter.CountRead(rum.Base, SlotSize)
	d.meter.CountLogicalRead(SlotSize)
	_, ok := d.slots[v]
	return ok
}

// Insert writes exactly one block.
func (d *DirectArray) Insert(v uint64) {
	d.meter.CountWrite(rum.Base, SlotSize)
	d.meter.CountLogicalWrite(SlotSize)
	d.slots[v] = struct{}{}
}

// Delete empties exactly one block.
func (d *DirectArray) Delete(v uint64) bool {
	d.meter.CountWrite(rum.Base, SlotSize)
	d.meter.CountLogicalWrite(SlotSize)
	_, ok := d.slots[v]
	delete(d.slots, v)
	return ok
}

// Change empties the old block and fills the new one: two physical writes
// for one logical update, the paper's UO = 2.0 worst case.
func (d *DirectArray) Change(old, new uint64) bool {
	_, ok := d.slots[old]
	if !ok {
		return false
	}
	delete(d.slots, old)
	d.slots[new] = struct{}{}
	d.meter.CountWrite(rum.Base, 2*SlotSize)
	d.meter.CountLogicalWrite(SlotSize)
	return true
}

// Len returns the number of stored values.
func (d *DirectArray) Len() int { return len(d.slots) }

// Meter returns the RUM accounting.
func (d *DirectArray) Meter() *rum.Meter { return &d.meter }

// Size accounts the full domain-sized array: live slots are base data, the
// null slots in between are pure overhead.
func (d *DirectArray) Size() rum.SizeInfo {
	live := uint64(len(d.slots)) * SlotSize
	total := d.domain * SlotSize
	if total < live {
		total = live
	}
	return rum.SizeInfo{BaseBytes: live, AuxBytes: total - live}
}

// logEntry is one appended record of the AppendLog.
type logKind uint8

const (
	logInsert logKind = iota
	logDelete
)

type logEntry struct {
	kind logKind
	v    uint64
}

// logEntrySize is the on-disk footprint of one log entry: a value plus a
// one-byte tombstone tag, padded to the block slot.
const logEntrySize = SlotSize

// AppendLog is the Prop-2 structure: every modification is appended to an
// ever-growing log, so each logical update performs exactly one physical
// write of its own size (UO = 1). Reads must scan the log backwards for the
// latest entry, and nothing is ever reclaimed, so both RO and MO grow without
// bound as updates accumulate.
//
// Insert appends unconditionally; the newest entry for a value shadows older
// ones.
type AppendLog struct {
	entries []logEntry
	liveLen int
	meter   rum.Meter
}

// NewAppendLog creates an empty log.
func NewAppendLog() *AppendLog { return &AppendLog{} }

// Name returns "append-log".
func (l *AppendLog) Name() string { return "append-log" }

// Has scans the log from the tail until it finds the newest entry for v.
func (l *AppendLog) Has(v uint64) bool {
	found := false
	scanned := 0
	for i := len(l.entries) - 1; i >= 0; i-- {
		scanned++
		if l.entries[i].v == v {
			found = l.entries[i].kind == logInsert
			break
		}
	}
	l.meter.CountRead(rum.Base, scanned*logEntrySize)
	l.meter.CountLogicalRead(SlotSize)
	return found
}

func (l *AppendLog) append(e logEntry) {
	l.entries = append(l.entries, e)
	l.meter.CountWrite(rum.Base, logEntrySize)
	l.meter.CountLogicalWrite(SlotSize)
}

// Insert appends one entry: exactly one physical write per logical write.
func (l *AppendLog) Insert(v uint64) {
	l.append(logEntry{kind: logInsert, v: v})
	l.liveLen++
}

// Delete appends a tombstone. The scan needed to know whether v was present
// is charged as read overhead, not write overhead, so UO stays 1.
func (l *AppendLog) Delete(v uint64) bool {
	present := l.Has(v)
	l.append(logEntry{kind: logDelete, v: v})
	if present {
		l.liveLen--
	}
	return present
}

// Change appends a tombstone for old and an insert for new — but each append
// is itself a logical update of the pair, so physical writes equal logical
// writes and UO remains exactly 1.0.
func (l *AppendLog) Change(old, new uint64) bool {
	present := l.Has(old)
	if !present {
		return false
	}
	l.entries = append(l.entries, logEntry{kind: logDelete, v: old}, logEntry{kind: logInsert, v: new})
	l.meter.CountWrite(rum.Base, 2*logEntrySize)
	l.meter.CountLogicalWrite(2 * SlotSize)
	return true
}

// Len returns the number of live (non-shadowed, non-deleted) values.
func (l *AppendLog) Len() int { return l.liveLen }

// Meter returns the RUM accounting.
func (l *AppendLog) Meter() *rum.Meter { return &l.meter }

// Size reports the whole log as stored bytes; only the live values count as
// base data, everything shadowed or deleted is overhead that never shrinks.
func (l *AppendLog) Size() rum.SizeInfo {
	total := uint64(len(l.entries)) * logEntrySize
	base := uint64(l.liveLen) * SlotSize
	if base > total {
		base = total
	}
	return rum.SizeInfo{BaseBytes: base, AuxBytes: total - base}
}

// DenseArray is the Prop-3 structure: the values are kept in a dense,
// unordered array with no auxiliary data at all, so MO = 1.0 exactly.
// Membership must scan the array (RO grows linearly with N) while updates,
// once located, are performed in place (UO = 1).
type DenseArray struct {
	vals  []uint64
	meter rum.Meter
}

// NewDenseArray creates an empty dense array.
func NewDenseArray() *DenseArray { return &DenseArray{} }

// Name returns "dense-array".
func (a *DenseArray) Name() string { return "dense-array" }

// scan returns the index of v, charging the scanned bytes as read overhead.
func (a *DenseArray) scan(v uint64) int {
	for i, x := range a.vals {
		if x == v {
			a.meter.CountRead(rum.Base, (i+1)*SlotSize)
			return i
		}
	}
	a.meter.CountRead(rum.Base, len(a.vals)*SlotSize)
	return -1
}

// Has scans the array.
func (a *DenseArray) Has(v uint64) bool {
	i := a.scan(v)
	a.meter.CountLogicalRead(SlotSize)
	return i >= 0
}

// Insert appends in place: one physical write per logical insert.
func (a *DenseArray) Insert(v uint64) {
	a.vals = append(a.vals, v)
	a.meter.CountWrite(rum.Base, SlotSize)
	a.meter.CountLogicalWrite(SlotSize)
}

// Delete locates v (read cost) and fills the hole with the last element
// (one in-place write), keeping the array dense with UO = 1.
func (a *DenseArray) Delete(v uint64) bool {
	i := a.scan(v)
	if i < 0 {
		a.meter.CountLogicalWrite(SlotSize)
		return false
	}
	last := len(a.vals) - 1
	a.vals[i] = a.vals[last]
	a.vals = a.vals[:last]
	a.meter.CountWrite(rum.Base, SlotSize)
	a.meter.CountLogicalWrite(SlotSize)
	return true
}

// Change locates old (read cost) and overwrites it in place: exactly one
// physical write for one logical update, the paper's UO = 1.0.
func (a *DenseArray) Change(old, new uint64) bool {
	i := a.scan(old)
	if i < 0 {
		return false
	}
	a.vals[i] = new
	a.meter.CountWrite(rum.Base, SlotSize)
	a.meter.CountLogicalWrite(SlotSize)
	return true
}

// Len returns the number of stored values.
func (a *DenseArray) Len() int { return len(a.vals) }

// Meter returns the RUM accounting.
func (a *DenseArray) Meter() *rum.Meter { return &a.meter }

// Size reports zero auxiliary bytes: MO is exactly 1.0 by construction.
func (a *DenseArray) Size() rum.SizeInfo {
	return rum.SizeInfo{BaseBytes: uint64(len(a.vals)) * SlotSize}
}
