package extreme

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// stores builds one of each extreme structure for shared behavioural tests.
func stores() []IntStore {
	return []IntStore{
		NewDirectArray(1 << 20),
		NewAppendLog(),
		NewDenseArray(),
	}
}

func TestBasicSetSemantics(t *testing.T) {
	for _, s := range stores() {
		if s.Has(5) {
			t.Fatalf("%s: Has on empty", s.Name())
		}
		s.Insert(5)
		if !s.Has(5) {
			t.Fatalf("%s: inserted value missing", s.Name())
		}
		if s.Len() != 1 {
			t.Fatalf("%s: Len %d", s.Name(), s.Len())
		}
		if !s.Change(5, 9) {
			t.Fatalf("%s: Change failed", s.Name())
		}
		if s.Has(5) || !s.Has(9) {
			t.Fatalf("%s: Change semantics", s.Name())
		}
		if !s.Delete(9) {
			t.Fatalf("%s: Delete failed", s.Name())
		}
		if s.Has(9) || s.Len() != 0 {
			t.Fatalf("%s: state after delete", s.Name())
		}
		if s.Delete(9) {
			t.Fatalf("%s: double delete returned true", s.Name())
		}
		if s.Change(9, 10) {
			t.Fatalf("%s: Change of absent value returned true", s.Name())
		}
	}
}

func TestRandomizedAgainstSet(t *testing.T) {
	for _, s := range stores() {
		rng := rand.New(rand.NewSource(7))
		ref := map[uint64]bool{}
		for i := 0; i < 3000; i++ {
			v := uint64(rng.Intn(1 << 12))
			switch rng.Intn(4) {
			case 0:
				if !ref[v] {
					s.Insert(v)
					ref[v] = true
				}
			case 1:
				if s.Has(v) != ref[v] {
					t.Fatalf("%s op %d: Has(%d) mismatch", s.Name(), i, v)
				}
			case 2:
				nv := uint64(rng.Intn(1 << 12))
				if ref[v] && !ref[nv] || (ref[v] && v == nv) {
					if s.Change(v, nv) != true {
						t.Fatalf("%s: Change(%d,%d) failed", s.Name(), v, nv)
					}
					delete(ref, v)
					ref[nv] = true
				}
			case 3:
				got := s.Delete(v)
				if got != ref[v] {
					t.Fatalf("%s op %d: Delete(%d) = %v want %v", s.Name(), i, v, got, ref[v])
				}
				delete(ref, v)
			}
			if s.Len() != len(ref) {
				t.Fatalf("%s op %d: Len %d want %d", s.Name(), i, s.Len(), len(ref))
			}
		}
	}
}

// TestProp1Accounting: the direct-address array must show RO exactly 1 and
// UO exactly 2 for changes.
func TestProp1Accounting(t *testing.T) {
	d := NewDirectArray(1 << 16)
	for v := uint64(0); v < 100; v++ {
		d.Insert(v * 7)
	}
	m0 := d.Meter().Snapshot()
	for v := uint64(0); v < 100; v++ {
		d.Has(v * 7)
	}
	if ro := d.Meter().Diff(m0).ReadAmplification(); ro != 1.0 {
		t.Fatalf("RO = %v", ro)
	}
	m0 = d.Meter().Snapshot()
	for v := uint64(0); v < 100; v++ {
		d.Change(v*7, v*7+1)
	}
	if uo := d.Meter().Diff(m0).WriteAmplification(); uo != 2.0 {
		t.Fatalf("UO = %v", uo)
	}
	// MO is domain-bound, not content-bound.
	if mo := d.Size().SpaceAmplification(); mo < float64(1<<16)/200 {
		t.Fatalf("MO = %v", mo)
	}
}

// TestProp2Accounting: the log's UO is exactly 1 and its size never shrinks.
func TestProp2Accounting(t *testing.T) {
	l := NewAppendLog()
	for v := uint64(0); v < 500; v++ {
		l.Insert(v)
	}
	if uo := l.Meter().WriteAmplification(); uo != 1.0 {
		t.Fatalf("UO = %v", uo)
	}
	sizeBefore := l.Size().Total()
	for v := uint64(0); v < 500; v++ {
		l.Delete(v)
	}
	if l.Len() != 0 {
		t.Fatalf("Len %d", l.Len())
	}
	if l.Size().Total() <= sizeBefore {
		t.Fatal("deletes must grow the log, never shrink it")
	}
	if uo := l.Meter().WriteAmplification(); uo != 1.0 {
		t.Fatalf("UO after deletes = %v", uo)
	}
}

// TestProp2ReadCostGrows: the log's probe cost grows with churn.
func TestProp2ReadCostGrows(t *testing.T) {
	l := NewAppendLog()
	l.Insert(1)
	m0 := l.Meter().Snapshot()
	l.Has(1)
	early := l.Meter().Diff(m0).PhysicalRead()
	for v := uint64(2); v < 1000; v++ {
		l.Insert(v)
	}
	m0 = l.Meter().Snapshot()
	l.Has(1) // oldest entry: scans the whole log
	late := l.Meter().Diff(m0).PhysicalRead()
	if late <= early*100 {
		t.Fatalf("read cost did not grow: %d -> %d", early, late)
	}
}

// TestProp3Accounting: the dense array has MO exactly 1 always.
func TestProp3Accounting(t *testing.T) {
	a := NewDenseArray()
	f := func(vals []uint64) bool {
		for _, v := range vals {
			a.Insert(v)
		}
		return a.Size().SpaceAmplification() == 1.0 && a.Size().AuxBytes == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseArrayScanCost(t *testing.T) {
	a := NewDenseArray()
	const n = 2000
	for v := uint64(0); v < n; v++ {
		a.Insert(v)
	}
	m0 := a.Meter().Snapshot()
	a.Has(n + 5) // absent: full scan
	read := a.Meter().Diff(m0).PhysicalRead()
	if read != n*SlotSize {
		t.Fatalf("miss scan read %d bytes, want %d", read, n*SlotSize)
	}
}

func TestDirectArrayUnboundedMO(t *testing.T) {
	small := NewDirectArray(1 << 10)
	big := NewDirectArray(1 << 30)
	small.Insert(1)
	big.Insert(1)
	if big.Size().SpaceAmplification() <= small.Size().SpaceAmplification() {
		t.Fatal("MO must grow with the domain")
	}
	empty := NewDirectArray(1 << 10)
	if mo := empty.Size().SpaceAmplification(); !math.IsInf(mo, 1) {
		t.Fatalf("empty direct array MO = %v, want +Inf (pure overhead)", mo)
	}
}

func TestAppendLogShadowing(t *testing.T) {
	l := NewAppendLog()
	l.Insert(7)
	l.Delete(7)
	if l.Has(7) {
		t.Fatal("tombstone not respected")
	}
	l.Insert(7)
	if !l.Has(7) {
		t.Fatal("re-insert after tombstone not visible")
	}
}
