package faults_test

import (
	"testing"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/lsm"
	"repro/internal/storage"
	"repro/internal/wal"
)

// btreeSubject: no WAL, in-place page writes — the tree only promises not to
// serve garbage after a crash (faults.Lossy).
func btreeSubject() faults.Subject {
	return faults.Subject{
		Open: func(pool *storage.BufferPool) (core.AccessMethod, error) {
			return btree.New(pool, btree.Config{})
		},
		Reopen: func(pool *storage.BufferPool) (core.AccessMethod, error) {
			return btree.Recover(pool, btree.Config{})
		},
		Durability: faults.Lossy,
	}
}

// lsmSubject: manifest checkpoints on every successful flush make the tree
// durable to its last checkpoint (faults.DurableToFlush). A small memtable
// forces run writes (and compactions) inside the checker's op budget.
func lsmSubject() faults.Subject {
	cfg := lsm.Config{MemtableRecords: 64, Manifest: true}
	return faults.Subject{
		Open: func(pool *storage.BufferPool) (core.AccessMethod, error) {
			return lsm.New(pool, cfg), nil
		},
		Reopen: func(pool *storage.BufferPool) (core.AccessMethod, error) {
			return lsm.Recover(pool, cfg)
		},
		Durability: faults.DurableToFlush,
	}
}

// runCrashProperty drives the crash-consistency property across many seeds
// and requires every verdict to be acceptable — recovered or failed loudly,
// never a contract violation — and the crash point to actually fire often
// enough for the run to mean something.
func runCrashProperty(t *testing.T, sub faults.Subject, seeds int) {
	t.Helper()
	crashes, recovered := 0, 0
	for seed := 1; seed <= seeds; seed++ {
		res := faults.CheckCrash(faults.CheckConfig{Seed: uint64(seed)}, sub)
		if !res.Verdict.Acceptable() {
			t.Fatalf("seed %d: %s", seed, res)
		}
		if res.Verdict != faults.NoCrash {
			crashes++
		}
		if res.Verdict == faults.Recovered {
			recovered++
		}
	}
	if crashes != seeds {
		t.Fatalf("crash fired on only %d/%d seeds — calibration should guarantee it", crashes, seeds)
	}
	if recovered == 0 {
		t.Fatalf("no seed recovered (crashes %d/%d) — recovery path never validated", crashes, seeds)
	}
	t.Logf("%d seeds: %d crashes, %d recovered", seeds, crashes, recovered)
}

// walBTreeSubject / walLSMSubject: the write-ahead-logged structures promise
// every committed record back (faults.DurableToCommit) — the checker samples
// the Committed watermark and holds recovery to exactly that prefix.
func walBTreeSubject(batch int) faults.Subject {
	wcfg := wal.Config{CommitBatch: batch}
	return faults.Subject{
		Open: func(pool *storage.BufferPool) (core.AccessMethod, error) {
			return wal.NewBTree(pool, btree.Config{}, wcfg)
		},
		Reopen: func(pool *storage.BufferPool) (core.AccessMethod, error) {
			return wal.RecoverBTree(pool, btree.Config{}, wcfg)
		},
		Durability: faults.DurableToCommit,
	}
}

func walLSMSubject(batch int) faults.Subject {
	lcfg := lsm.Config{MemtableRecords: 64}
	wcfg := wal.Config{CommitBatch: batch}
	return faults.Subject{
		Open: func(pool *storage.BufferPool) (core.AccessMethod, error) {
			return wal.NewLSM(pool, lcfg, wcfg)
		},
		Reopen: func(pool *storage.BufferPool) (core.AccessMethod, error) {
			return wal.RecoverLSM(pool, lcfg, wcfg)
		},
		Durability: faults.DurableToCommit,
	}
}

func TestCrashConsistencyBTree(t *testing.T) {
	runCrashProperty(t, btreeSubject(), 40)
}

func TestCrashConsistencyLSM(t *testing.T) {
	runCrashProperty(t, lsmSubject(), 40)
}

func TestCrashConsistencyWALBTree(t *testing.T) {
	for _, batch := range []int{1, 8} {
		runCrashProperty(t, walBTreeSubject(batch), 40)
	}
}

func TestCrashConsistencyWALLSM(t *testing.T) {
	for _, batch := range []int{1, 8} {
		runCrashProperty(t, walLSMSubject(batch), 40)
	}
}

// TestCrashCheckCommittedWatermark: with per-op commits every acknowledged
// insert is committed before it returns, so on any seed that recovers the
// committed watermark must cover the whole acked sequence — and the
// contract then makes them all survive.
func TestCrashCheckCommittedWatermark(t *testing.T) {
	sawRecovered := false
	for seed := uint64(1); seed <= 10; seed++ {
		res := faults.CheckCrash(faults.CheckConfig{Seed: seed}, walBTreeSubject(1))
		if !res.Verdict.Acceptable() {
			t.Fatalf("seed %d: %s", seed, res)
		}
		if res.Verdict != faults.Recovered {
			continue
		}
		sawRecovered = true
		if res.Committed != res.Acked {
			t.Fatalf("seed %d: committed %d != acked %d with per-op commits: %s", seed, res.Committed, res.Acked, res)
		}
		if res.Survived < res.Committed {
			t.Fatalf("seed %d: survived %d < committed %d: %s", seed, res.Survived, res.Committed, res)
		}
	}
	if !sawRecovered {
		t.Fatal("no seed recovered; watermark property never exercised")
	}
}

// TestCrashCheckDeterminism: the checker is a pure function of its config —
// same seed, same subject shape, byte-identical result line.
func TestCrashCheckDeterminism(t *testing.T) {
	cfg := faults.CheckConfig{Seed: 3}
	a := faults.CheckCrash(cfg, lsmSubject())
	b := faults.CheckCrash(cfg, lsmSubject())
	if a.String() != b.String() {
		t.Fatalf("diverged:\n  %s\n  %s", a, b)
	}
}

// TestCrashCheckNoRecoveryPath: a subject without a Reopen hook is reported
// as no-recovery, which is acceptable (declared fully lossy).
func TestCrashCheckNoRecoveryPath(t *testing.T) {
	sub := btreeSubject()
	sub.Reopen = nil
	res := faults.CheckCrash(faults.CheckConfig{Seed: 1, CrashAtWrite: 5}, sub)
	if res.Verdict != faults.NoRecovery {
		t.Fatalf("verdict: %s", res)
	}
	if !res.Verdict.Acceptable() {
		t.Fatal("no-recovery must be acceptable")
	}
}

// TestCrashCheckNoCrash: a crash point beyond the workload's writes reports
// no-crash rather than inventing a verdict.
func TestCrashCheckNoCrash(t *testing.T) {
	res := faults.CheckCrash(faults.CheckConfig{Seed: 1, Ops: 20, CrashAtWrite: 1 << 40}, btreeSubject())
	if res.Verdict != faults.NoCrash {
		t.Fatalf("verdict: %s", res)
	}
}
