// Package faults is the deterministic fault-injection and crash-consistency
// layer: a seed-driven scheduler that decides, per device operation, whether
// to fail it — transiently, permanently, torn, or with a full crash — plus a
// property-based checker that verifies an access method recovers (or fails
// loudly) from a crash against its declared durability contract.
//
// The paper's Section 5 roadmap asks how access methods behave off the happy
// path: a structure's RUM position is only meaningful if it survives the
// device degrading under it. A Plan describes the misbehaviour declaratively
// (probabilities, fail-at-op schedules, a crash point); an Injector plays it
// back through the storage.FaultInjector interface armed on a
// storage.Device. Every decision comes from a PCG stream seeded by the plan,
// so a given (plan, operation history) pair always fails the same ops — the
// same determinism contract the parallel bench runner relies on. Plans are
// salted per run cell (Plan.Salted) so concurrent cells draw independent but
// reproducible fault streams regardless of execution order.
package faults

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"

	"repro/internal/storage"
)

// planStream is the second PCG seed word, fixed so a Plan's fault stream is
// a pure function of its Seed.
const planStream = 0x9e3779b97f4a7c15

// Plan declares a fault schedule. The zero value injects nothing. Plans are
// plain data: copy them freely, then arm an Injector built with New.
type Plan struct {
	// Seed drives every probabilistic decision. Two injectors built from
	// identical plans produce identical fault streams.
	Seed uint64
	// PRead is the per-read probability of a transient read fault
	// (retryable; the same page succeeds on a later attempt).
	PRead float64
	// PWrite is the per-write probability of a transient write fault.
	PWrite float64
	// PTorn is the probability that an injected transient write fault is
	// torn: a prefix of the page image reaches the medium before the error.
	PTorn float64
	// ReadFailAt lists 1-based read indices that fail permanently: the
	// page being read at that index becomes bad and every later access to
	// it fails (a grown media defect).
	ReadFailAt []uint64
	// WriteFailAt lists 1-based write indices that fail permanently,
	// marking the target page bad like ReadFailAt.
	WriteFailAt []uint64
	// CrashAtWrite, when non-zero, crashes the device at the 1-based write
	// of that index: the in-flight write never reaches the medium, the
	// device latches, and all volatile state is lost. The crash write is
	// deliberately clean — without page checksums a torn crash write is
	// indistinguishable from valid data, so tearing is exercised on the
	// transient path (PTorn), where the retry repairs it.
	CrashAtWrite uint64
}

// Active reports whether the plan injects any fault at all.
func (p Plan) Active() bool {
	return p.PRead > 0 || p.PWrite > 0 || p.CrashAtWrite != 0 ||
		len(p.ReadFailAt) > 0 || len(p.WriteFailAt) > 0
}

// Salted derives the plan for one named run cell: same schedule, with the
// seed re-keyed by label. Cells salted by their (stable) enumeration label
// draw independent fault streams that do not depend on worker count or
// execution order — the parallel determinism contract.
func (p Plan) Salted(label string) Plan {
	h := fnv64(p.Seed, label)
	p.Seed = h
	p.ReadFailAt = append([]uint64(nil), p.ReadFailAt...)
	p.WriteFailAt = append([]uint64(nil), p.WriteFailAt...)
	return p
}

// fnv64 folds seed and label through FNV-1a.
func fnv64(seed uint64, label string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= (seed >> (8 * i)) & 0xff
		h *= prime
	}
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime
	}
	return h
}

// String renders the plan in the canonical -faults flag syntax (only the
// fields that are set), e.g. "seed=1,p_read=0.01,crash=200".
func (p Plan) String() string {
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	add("seed", strconv.FormatUint(p.Seed, 10))
	if p.PRead > 0 {
		add("p_read", strconv.FormatFloat(p.PRead, 'g', -1, 64))
	}
	if p.PWrite > 0 {
		add("p_write", strconv.FormatFloat(p.PWrite, 'g', -1, 64))
	}
	if p.PTorn > 0 {
		add("p_torn", strconv.FormatFloat(p.PTorn, 'g', -1, 64))
	}
	if len(p.ReadFailAt) > 0 {
		add("read_fail_at", joinUints(p.ReadFailAt))
	}
	if len(p.WriteFailAt) > 0 {
		add("write_fail_at", joinUints(p.WriteFailAt))
	}
	if p.CrashAtWrite != 0 {
		add("crash", strconv.FormatUint(p.CrashAtWrite, 10))
	}
	return strings.Join(parts, ",")
}

func joinUints(xs []uint64) string {
	ss := make([]string, len(xs))
	for i, x := range xs {
		ss[i] = strconv.FormatUint(x, 10)
	}
	return strings.Join(ss, ";")
}

// ParsePlan parses the -faults flag syntax: comma-separated key=value pairs
// with keys seed, p_read, p_write, p_torn, crash, read_fail_at and
// write_fail_at (the *_fail_at lists are semicolon-separated op indices).
// An empty string parses to the inactive zero Plan.
func ParsePlan(s string) (Plan, error) {
	var p Plan
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, field := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return Plan{}, fmt.Errorf("faults: %q is not key=value", field)
		}
		var err error
		switch k {
		case "seed":
			p.Seed, err = strconv.ParseUint(v, 10, 64)
		case "p_read":
			p.PRead, err = parseProb(v)
		case "p_write":
			p.PWrite, err = parseProb(v)
		case "p_torn":
			p.PTorn, err = parseProb(v)
		case "crash":
			p.CrashAtWrite, err = strconv.ParseUint(v, 10, 64)
		case "read_fail_at":
			p.ReadFailAt, err = parseUints(v)
		case "write_fail_at":
			p.WriteFailAt, err = parseUints(v)
		default:
			return Plan{}, fmt.Errorf("faults: unknown key %q (want seed, p_read, p_write, p_torn, crash, read_fail_at, write_fail_at)", k)
		}
		if err != nil {
			return Plan{}, fmt.Errorf("faults: bad value for %s: %v", k, err)
		}
	}
	return p, nil
}

func parseProb(v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if f < 0 || f > 1 {
		return 0, fmt.Errorf("probability %g outside [0,1]", f)
	}
	return f, nil
}

func parseUints(v string) ([]uint64, error) {
	var out []uint64
	for _, s := range strings.Split(v, ";") {
		x, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Stats counts the faults an Injector has delivered, by kind.
type Stats struct {
	TransientReads  uint64 // retryable read faults injected
	TransientWrites uint64 // retryable write faults injected
	PermanentReads  uint64 // reads failed on (or creating) a bad page
	PermanentWrites uint64 // writes failed on (or creating) a bad page
	Torn            uint64 // write faults that persisted a partial page
	Crashes         uint64 // crash points fired (0 or 1 per injector)
}

// Total returns the number of injected faults of every kind.
func (s Stats) Total() uint64 {
	return s.TransientReads + s.TransientWrites + s.PermanentReads +
		s.PermanentWrites + s.Crashes
}

// Injector plays a Plan back against one device, implementing
// storage.FaultInjector. Like the Device it is armed on, an Injector is
// single-owner: one injector per device per run cell, never shared.
//
// Transient faults are re-rolled independently on every attempt, so a retry
// of the same page can succeed; permanent faults mark the target page bad
// for the injector's lifetime. The crash point fires exactly once.
type Injector struct {
	plan    Plan
	rng     *rand.Rand
	reads   uint64
	writes  uint64
	bad     map[storage.PageID]struct{}
	crashed bool
	stats   Stats
}

// New builds an injector for plan. Identical plans yield identical injectors.
func New(plan Plan) *Injector {
	return &Injector{
		plan: plan,
		rng:  rand.New(rand.NewPCG(plan.Seed, planStream)),
		bad:  make(map[storage.PageID]struct{}),
	}
}

// Plan returns the plan the injector was built from.
func (in *Injector) Plan() Plan { return in.plan }

// Stats returns a copy of the injected-fault counters.
func (in *Injector) Stats() Stats { return in.stats }

// Ops returns how many reads and writes the injector has been consulted on.
func (in *Injector) Ops() (reads, writes uint64) { return in.reads, in.writes }

// failAt reports whether the sorted schedule contains op.
func failAt(schedule []uint64, op uint64) bool {
	i := sort.Search(len(schedule), func(i int) bool { return schedule[i] >= op })
	return i < len(schedule) && schedule[i] == op
}

// ReadFault implements storage.FaultInjector.
func (in *Injector) ReadFault(id storage.PageID) error {
	in.reads++
	if _, bad := in.bad[id]; bad {
		in.stats.PermanentReads++
		return fmt.Errorf("%w: permanent fault on bad page", storage.ErrInjected)
	}
	if failAt(in.plan.ReadFailAt, in.reads) {
		in.bad[id] = struct{}{}
		in.stats.PermanentReads++
		return fmt.Errorf("%w: permanent fault at read %d", storage.ErrInjected, in.reads)
	}
	if in.plan.PRead > 0 && in.rng.Float64() < in.plan.PRead {
		in.stats.TransientReads++
		return fmt.Errorf("%w at read %d", storage.ErrTransient, in.reads)
	}
	return nil
}

// WriteFault implements storage.FaultInjector.
func (in *Injector) WriteFault(id storage.PageID, pageSize int) (int, error) {
	in.writes++
	if in.plan.CrashAtWrite != 0 && in.writes == in.plan.CrashAtWrite && !in.crashed {
		in.crashed = true
		in.stats.Crashes++
		return 0, fmt.Errorf("%w at write %d", storage.ErrCrash, in.writes)
	}
	if _, bad := in.bad[id]; bad {
		in.stats.PermanentWrites++
		return 0, fmt.Errorf("%w: permanent fault on bad page", storage.ErrInjected)
	}
	if failAt(in.plan.WriteFailAt, in.writes) {
		in.bad[id] = struct{}{}
		in.stats.PermanentWrites++
		return 0, fmt.Errorf("%w: permanent fault at write %d", storage.ErrInjected, in.writes)
	}
	if in.plan.PWrite > 0 && in.rng.Float64() < in.plan.PWrite {
		in.stats.TransientWrites++
		if in.plan.PTorn > 0 && pageSize > 1 && in.rng.Float64() < in.plan.PTorn {
			in.stats.Torn++
			torn := 1 + in.rng.IntN(pageSize-1)
			return torn, fmt.Errorf("%w (torn) at write %d", storage.ErrTransient, in.writes)
		}
		return 0, fmt.Errorf("%w at write %d", storage.ErrTransient, in.writes)
	}
	return 0, nil
}
