package faults

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/storage"
)

func TestParsePlanRoundTrip(t *testing.T) {
	plans := []Plan{
		{Seed: 42},
		{Seed: 1, PRead: 0.01, PWrite: 0.02, PTorn: 0.5},
		{Seed: 7, ReadFailAt: []uint64{3, 9}, WriteFailAt: []uint64{5}},
		{Seed: 99, CrashAtWrite: 200},
		{Seed: 3, PRead: 0.125, ReadFailAt: []uint64{1}, CrashAtWrite: 17},
		{Seed: 11, WriteFailAt: []uint64{2, 8}, CrashAtWrite: 31},
		{Seed: 13, ReadFailAt: []uint64{4}, WriteFailAt: []uint64{6, 10}, CrashAtWrite: 150},
	}
	for _, p := range plans {
		q, err := ParsePlan(p.String())
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", p.String(), err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("round trip of %q: got %+v want %+v", p.String(), q, p)
		}
	}
}

// TestParsePlanCrashWithSchedules is the regression test for the round-trip
// gap: a crash point combined with permanent fail-at schedules (especially
// write schedules, which share the write path with the crash counter) must
// encode and parse back field-for-field.
func TestParsePlanCrashWithSchedules(t *testing.T) {
	p := Plan{
		Seed:         5,
		PWrite:       0.25,
		PTorn:        1,
		ReadFailAt:   []uint64{7, 19},
		WriteFailAt:  []uint64{3, 12, 40},
		CrashAtWrite: 64,
	}
	s := p.String()
	q, err := ParsePlan(s)
	if err != nil {
		t.Fatalf("ParsePlan(%q): %v", s, err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("round trip of %q: got %+v want %+v", s, q, p)
	}
	// And the re-encoding is stable: String is a canonical form.
	if s2 := q.String(); s2 != s {
		t.Fatalf("re-encode drifted: %q then %q", s, s2)
	}
}

func TestParsePlanEmpty(t *testing.T) {
	p, err := ParsePlan("")
	if err != nil {
		t.Fatal(err)
	}
	if p.Active() {
		t.Fatalf("empty spec is active: %+v", p)
	}
}

func TestParsePlanSortsSchedules(t *testing.T) {
	p, err := ParsePlan("seed=1,read_fail_at=9;3;5")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.ReadFailAt, []uint64{3, 5, 9}) {
		t.Fatalf("schedule not sorted: %v", p.ReadFailAt)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, spec := range []string{
		"seed",              // not key=value
		"bogus=1",           // unknown key
		"p_read=1.5",        // probability out of range
		"p_write=-0.1",      // probability out of range
		"seed=x",            // not a number
		"crash=-1",          // not a uint
		"read_fail_at=1;x",  // bad list element
		"seed=1,,p_read=.1", // empty field
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted", spec)
		}
	}
}

func TestPlanActive(t *testing.T) {
	if (Plan{Seed: 5}).Active() {
		t.Fatal("seed-only plan is active")
	}
	for _, p := range []Plan{
		{PRead: 0.1}, {PWrite: 0.1}, {CrashAtWrite: 1},
		{ReadFailAt: []uint64{1}}, {WriteFailAt: []uint64{1}},
	} {
		if !p.Active() {
			t.Fatalf("plan %+v not active", p)
		}
	}
}

// driveInjector records the outcome of a fixed op sequence as strings.
func driveInjector(in *Injector, n int) []string {
	var out []string
	for i := 0; i < n; i++ {
		id := storage.PageID(i % 7)
		if i%3 == 0 {
			torn, err := in.WriteFault(id, 512)
			out = append(out, fmt.Sprintf("w%d:%d:%v", i, torn, err))
		} else {
			out = append(out, fmt.Sprintf("r%d:%v", i, in.ReadFault(id)))
		}
	}
	return out
}

// TestInjectorDeterminism: identical plans produce identical fault streams
// over an identical operation history.
func TestInjectorDeterminism(t *testing.T) {
	plan := Plan{Seed: 11, PRead: 0.3, PWrite: 0.3, PTorn: 0.5, CrashAtWrite: 40}
	a := driveInjector(New(plan), 200)
	b := driveInjector(New(plan), 200)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical plans diverged")
	}
	if reflect.DeepEqual(a, driveInjector(New(Plan{Seed: 12, PRead: 0.3, PWrite: 0.3, PTorn: 0.5, CrashAtWrite: 40}), 200)) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSalted(t *testing.T) {
	p := Plan{Seed: 1, PRead: 0.5, ReadFailAt: []uint64{2, 4}}
	a, b := p.Salted("cell-a"), p.Salted("cell-b")
	if a.Seed == b.Seed || a.Seed == p.Seed {
		t.Fatalf("salting did not re-key: %d %d %d", p.Seed, a.Seed, b.Seed)
	}
	if a.PRead != p.PRead || !reflect.DeepEqual(a.ReadFailAt, p.ReadFailAt) {
		t.Fatalf("salting changed the schedule: %+v", a)
	}
	// Salted must deep-copy the schedules: mutating the copy cannot alias.
	a.ReadFailAt[0] = 99
	if p.ReadFailAt[0] != 2 {
		t.Fatal("Salted aliased the schedule slice")
	}
	// And it must be a pure function of (seed, label).
	if p.Salted("cell-a").Seed != a.Seed {
		t.Fatal("Salted is not deterministic")
	}
}

func TestReadFailAtMarksPageBad(t *testing.T) {
	in := New(Plan{ReadFailAt: []uint64{2}})
	if err := in.ReadFault(5); err != nil {
		t.Fatalf("read 1: %v", err)
	}
	if err := in.ReadFault(7); !errors.Is(err, storage.ErrInjected) || errors.Is(err, storage.ErrTransient) {
		t.Fatalf("read 2 should fail permanently: %v", err)
	}
	// Page 7 is now bad for reads and writes; page 5 is untouched.
	if err := in.ReadFault(7); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("bad page read: %v", err)
	}
	if _, err := in.WriteFault(7, 512); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("bad page write: %v", err)
	}
	if err := in.ReadFault(5); err != nil {
		t.Fatalf("good page read: %v", err)
	}
	st := in.Stats()
	if st.PermanentReads != 2 || st.PermanentWrites != 1 || st.Total() != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCrashAtWriteFiresOnce(t *testing.T) {
	in := New(Plan{CrashAtWrite: 2})
	if _, err := in.WriteFault(1, 512); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	torn, err := in.WriteFault(1, 512)
	if !errors.Is(err, storage.ErrCrash) {
		t.Fatalf("write 2: %v", err)
	}
	if torn != 0 {
		t.Fatalf("crash write torn=%d, must be clean", torn)
	}
	// The crash point is one-shot: recovery-time writes pass.
	if _, err := in.WriteFault(1, 512); err != nil {
		t.Fatalf("write 3: %v", err)
	}
	if st := in.Stats(); st.Crashes != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestTornBounds(t *testing.T) {
	in := New(Plan{Seed: 9, PWrite: 1, PTorn: 1})
	for i := 0; i < 100; i++ {
		torn, err := in.WriteFault(storage.PageID(i), 64)
		if !errors.Is(err, storage.ErrTransient) {
			t.Fatalf("write %d: %v", i, err)
		}
		if torn < 1 || torn >= 64 {
			t.Fatalf("torn %d outside [1,63]", torn)
		}
	}
	if st := in.Stats(); st.Torn != 100 || st.TransientWrites != 100 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDurabilityVerdictStrings(t *testing.T) {
	if Lossy.String() != "lossy" || DurableToFlush.String() != "durable-to-flush" ||
		DurableToCommit.String() != "durable-to-commit" {
		t.Fatal("durability names")
	}
	names := map[Verdict]string{
		NoCrash: "no-crash", Recovered: "recovered", FailedLoudly: "failed-loudly",
		NoRecovery: "no-recovery", Violated: "VIOLATED",
	}
	for v, want := range names {
		if v.String() != want {
			t.Fatalf("%d.String() = %q want %q", v, v.String(), want)
		}
		if got := v.Acceptable(); got != (v != Violated) {
			t.Fatalf("%s.Acceptable() = %v", v, got)
		}
	}
}

func TestCheckResultString(t *testing.T) {
	r := CheckResult{Verdict: Recovered, CrashWrite: 87, Acked: 120, Checkpointed: 64, Survived: 64}
	want := "recovered (crash@w87, acked 120, checkpointed 64, survived 64/120)"
	if got := r.String(); got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}
