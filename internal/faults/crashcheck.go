package faults

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/core"
	"repro/internal/storage"
)

// opStream seeds the workload generator of the checker, distinct from the
// injector's planStream so op choice and fault choice are independent.
// crashStream seeds the crash-point draw, distinct from both so the workload
// stream stays a pure function of the seed.
const (
	opStream    = 0xc4a5
	crashStream = 0xc4a6
)

// Durability is the contract an access method declares for crash recovery.
// The checker holds the method to exactly what it promises — a structure
// without a write-ahead log is not wrong for losing buffered data, only for
// serving garbage.
type Durability int

const (
	// Lossy promises only no-garbage: after recovery every record served
	// must have been acknowledged before the crash with that exact value,
	// but any amount of acknowledged data may be missing. The B+-tree (no
	// WAL; in-place page writes) declares Lossy.
	Lossy Durability = iota
	// DurableToFlush promises that every write acknowledged before the
	// last fully-successful Flush (all dirty frames written back) survives
	// recovery, plus no-garbage for everything after. The LSM with a
	// manifest declares DurableToFlush.
	DurableToFlush
	// DurableToCommit promises that every write covered by the method's
	// committed watermark (Committer.Committed, sampled by the checker after
	// each acknowledged op and each flush) survives recovery, plus
	// no-garbage for everything after. With per-op commits this is full
	// durability of every acknowledged write; with group commit the
	// un-committed tail of the current batch is the only exposure. The
	// write-ahead-logged structures declare DurableToCommit.
	DurableToCommit
)

// Committer is implemented by methods whose durability is defined by a
// commit watermark (a write-ahead log): Committed returns the number of
// acknowledged mutations, in acknowledgement order, that are already
// durable. The checker samples it to learn which prefix of the acked
// sequence the DurableToCommit contract covers.
type Committer interface {
	Committed() uint64
}

// String names the contract.
func (d Durability) String() string {
	switch d {
	case Lossy:
		return "lossy"
	case DurableToFlush:
		return "durable-to-flush"
	case DurableToCommit:
		return "durable-to-commit"
	default:
		return fmt.Sprintf("durability(%d)", int(d))
	}
}

// Verdict is the outcome of one crash-consistency check.
type Verdict int

const (
	// NoCrash: the crash point never fired within the op budget; nothing
	// was verified. Usually means CrashAtWrite was set past the workload's
	// total write count.
	NoCrash Verdict = iota
	// Recovered: reopen succeeded and the declared contract held.
	Recovered
	// FailedLoudly: reopen returned an error instead of a structure — the
	// acceptable outcome when the surviving image is beyond repair,
	// provided the contract promised nothing about it (Lossy), or nothing
	// had been checkpointed yet (DurableToFlush).
	FailedLoudly
	// NoRecovery: the subject declares no recovery path (Reopen is nil).
	NoRecovery
	// Violated: the contract was broken — a checkpointed record is gone, a
	// recovered record was never acknowledged, or reopen failed loudly
	// after promising checkpointed data back.
	Violated
)

// String names the verdict as printed by the chaos experiment.
func (v Verdict) String() string {
	switch v {
	case NoCrash:
		return "no-crash"
	case Recovered:
		return "recovered"
	case FailedLoudly:
		return "failed-loudly"
	case NoRecovery:
		return "no-recovery"
	case Violated:
		return "VIOLATED"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Acceptable reports whether the verdict satisfies "recovers or fails
// loudly" — everything except Violated.
func (v Verdict) Acceptable() bool { return v != Violated }

// Subject describes one access method under crash test: how to build it on
// a fresh storage stack and how to recover it from a surviving image.
type Subject struct {
	// Open builds a fresh, empty instance over pool.
	Open func(pool *storage.BufferPool) (core.AccessMethod, error)
	// Reopen recovers an instance from the device image under pool after a
	// crash (the pool is fresh and empty; the device holds whatever the
	// last successful writes left). It must return an error — fail loudly
	// — rather than a structure that would serve garbage. nil declares
	// that the method has no recovery path.
	Reopen func(pool *storage.BufferPool) (core.AccessMethod, error)
	// Durability is the contract Reopen is held to.
	Durability Durability
}

// CheckConfig parameterizes one crash-consistency check.
type CheckConfig struct {
	// Seed drives both the workload and the injected crash point.
	Seed uint64
	// Ops is the number of insert attempts to drive before giving up on
	// crashing (the op loop stops early at the crash).
	Ops int
	// PageSize and PoolPages shape the storage stack (defaults 512 and 8:
	// a small pool keeps plenty of state volatile at the crash).
	PageSize  int
	PoolPages int
	// CrashAtWrite pins the crash to a 1-based device write index; 0 first
	// calibrates the workload's total write count with a fault-free dry run,
	// then draws a crash point inside that range from Seed — so an
	// unpinned check always crashes somewhere the workload actually writes.
	CrashAtWrite uint64
	// FlushEvery checkpoints (core.Flush + dirty-count verification) every
	// this many acknowledged ops; 0 defaults to Ops/4.
	FlushEvery int
}

// CheckResult reports what one crash-consistency check observed.
type CheckResult struct {
	Verdict Verdict
	// CrashWrite is the device write index the crash fired at (0 if it
	// never fired).
	CrashWrite uint64
	// Acked counts inserts acknowledged before the crash; Checkpointed
	// counts those covered by the last fully-successful flush; Survived
	// counts acked records served correctly after recovery.
	Acked, Checkpointed, Survived int
	// Committed counts acked inserts covered by the method's committed
	// watermark at the crash (0 unless the subject implements Committer).
	Committed int
	// Detail explains a Violated or FailedLoudly verdict.
	Detail string
}

// String renders the result as one stable line, e.g.
// "recovered (crash@w87, acked 120, checkpointed 64, survived 64/120)".
func (r CheckResult) String() string {
	s := r.Verdict.String()
	if r.CrashWrite != 0 {
		// Committed appears only for Committer subjects, so the historical
		// lossy/durable-to-flush lines render byte-identically.
		if r.Committed > 0 {
			s += fmt.Sprintf(" (crash@w%d, acked %d, committed %d, checkpointed %d, survived %d/%d)",
				r.CrashWrite, r.Acked, r.Committed, r.Checkpointed, r.Survived, r.Acked)
		} else {
			s += fmt.Sprintf(" (crash@w%d, acked %d, checkpointed %d, survived %d/%d)",
				r.CrashWrite, r.Acked, r.Checkpointed, r.Survived, r.Acked)
		}
	}
	if r.Detail != "" {
		s += ": " + r.Detail
	}
	return s
}

// workloadWrites replays the checker's workload fault-free and returns the
// device writes it performs — the calibration run that lets an unpinned
// CheckCrash draw a crash point the workload is guaranteed to reach. It must
// consume the op RNG exactly as CheckCrash's main loop does.
func workloadWrites(cfg CheckConfig, sub Subject) uint64 {
	rng := rand.New(rand.NewPCG(cfg.Seed, opStream))
	dev := storage.NewDevice(cfg.PageSize, storage.SSD, nil)
	pool := storage.NewBufferPool(dev, cfg.PoolPages)
	m, err := sub.Open(pool)
	if err != nil {
		return 0
	}
	seen := make(map[core.Key]struct{})
	for op := 0; op < cfg.Ops; op++ {
		k := rng.Uint64N(1 << 40)
		if _, dup := seen[k]; dup {
			continue
		}
		v := rng.Uint64() >> 1
		if err := m.Insert(k, v); err == nil {
			seen[k] = struct{}{}
		}
		if (op+1)%cfg.FlushEvery == 0 {
			core.Flush(m)
		}
	}
	core.Flush(m)
	return dev.Stats().PageWrites
}

// CheckCrash drives the property: a random acknowledged op prefix, a crash
// at a seeded device write, a reopen from the surviving image — then every
// recovered record must have been acknowledged (no garbage), and, under
// DurableToFlush, every checkpointed record must have survived.
//
// The fault plan is crash-only (no transient or permanent faults), so every
// operation before the crash point behaves normally — the property isolates
// crash atomicity from fault tolerance, which the unit tests cover.
func CheckCrash(cfg CheckConfig, sub Subject) CheckResult {
	if cfg.PageSize == 0 {
		cfg.PageSize = 512
	}
	if cfg.PoolPages == 0 {
		cfg.PoolPages = 8
	}
	if cfg.Ops == 0 {
		cfg.Ops = 400
	}
	if cfg.FlushEvery == 0 {
		cfg.FlushEvery = cfg.Ops / 4
		if cfg.FlushEvery == 0 {
			cfg.FlushEvery = 1
		}
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, opStream))
	crashAt := cfg.CrashAtWrite
	if crashAt == 0 {
		w := workloadWrites(cfg, sub)
		if w < 2 {
			w = 2
		}
		crashRng := rand.New(rand.NewPCG(cfg.Seed, crashStream))
		crashAt = 1 + crashRng.Uint64N(w) // in [1, w]: guaranteed to fire
	}

	dev := storage.NewDevice(cfg.PageSize, storage.SSD, nil)
	dev.SetInjector(New(Plan{Seed: cfg.Seed, CrashAtWrite: crashAt}))
	pool := storage.NewBufferPool(dev, cfg.PoolPages)

	model := make(map[core.Key]core.Value) // every acknowledged insert
	var checkpointed map[core.Key]core.Value

	m, err := sub.Open(pool)
	crashed := err != nil && (errors.Is(err, storage.ErrCrash) || dev.Crashed())
	if err != nil && !crashed {
		return CheckResult{Verdict: Violated, Detail: fmt.Sprintf("open failed without a crash: %v", err)}
	}
	// The committed watermark: acked inserts in acknowledgement order, and
	// the highest Committed() observed. Sampling after every acked op and
	// every flush can only lag the true watermark, which under-constrains
	// the check — never the reverse.
	var ackedSeq []core.Record
	var durable uint64
	var committer Committer
	if m != nil {
		committer, _ = m.(Committer)
	}
	sample := func() {
		if committer == nil || dev.Crashed() {
			return
		}
		if w := committer.Committed(); w > durable {
			durable = w
		}
	}
	// pending is the record in flight when the crash fired: the crash
	// models instant process death, so its insert was never acknowledged —
	// but its pages may be half-applied, so recovery serving it (with
	// exactly this value) is atomicity, not garbage.
	var pending *core.Record
	for op := 0; !crashed && op < cfg.Ops; op++ {
		k := rng.Uint64N(1 << 40)
		if _, dup := model[k]; dup {
			continue
		}
		v := rng.Uint64() >> 1 // keep clear of the LSM tombstone
		err := m.Insert(k, v)
		if dev.Crashed() {
			// Process death at the crash point: nothing after it counts,
			// even an insert that "returned" into volatile memory.
			pending = &core.Record{Key: k, Value: v}
			crashed = true
			break
		}
		switch {
		case err == nil:
			model[k] = v
			ackedSeq = append(ackedSeq, core.Record{Key: k, Value: v})
			sample()
		case errors.Is(err, core.ErrKeyExists):
			// fine: not acknowledged, nothing promised
		case errors.Is(err, storage.ErrInjected):
			// crash-only plan: unreachable, but tolerated as un-acked
		default:
			return CheckResult{Verdict: Violated, Detail: fmt.Sprintf("insert failed unexpectedly: %v", err)}
		}
		if (op+1)%cfg.FlushEvery == 0 {
			core.Flush(m)
			if dev.Crashed() {
				crashed = true
			} else {
				sample()
				if pool.DirtyCount() == 0 {
					checkpointed = make(map[core.Key]core.Value, len(model))
					for k, v := range model {
						checkpointed[k] = v
					}
				}
			}
		}
	}
	if int(durable) > len(ackedSeq) {
		durable = uint64(len(ackedSeq))
	}
	res := CheckResult{Acked: len(model), Checkpointed: len(checkpointed), Committed: int(durable)}
	if !crashed {
		// One last chance for the crash point to fire: the closing flush.
		core.Flush(m)
		if !dev.Crashed() {
			res.Verdict = NoCrash
			return res
		}
	}
	_, writes := dev.Injector().(*Injector).Ops()
	res.CrashWrite = crashAt
	if writes < crashAt {
		// Crashed() latched without the injector firing cannot happen with
		// a crash-only plan; record the real fire point regardless.
		res.CrashWrite = writes
	}

	// The crash: volatile state gone, device image frozen as-is.
	pool.Crash()
	dev.SetInjector(nil)
	dev.Reopen()

	if sub.Reopen == nil {
		res.Verdict = NoRecovery
		return res
	}
	pool2 := storage.NewBufferPool(dev, cfg.PoolPages)
	m2, err := sub.Reopen(pool2)
	if err != nil {
		switch {
		case sub.Durability == DurableToFlush && len(checkpointed) > 0:
			res.Verdict = Violated
			res.Detail = fmt.Sprintf("reopen failed with %d checkpointed records promised durable: %v", len(checkpointed), err)
			return res
		case sub.Durability == DurableToCommit && durable > 0:
			res.Verdict = Violated
			res.Detail = fmt.Sprintf("reopen failed with %d committed records promised durable: %v", durable, err)
			return res
		}
		res.Verdict = FailedLoudly
		res.Detail = err.Error()
		return res
	}

	// No-garbage: everything served must match an acknowledged write.
	var violations []string
	recovered := make(map[core.Key]core.Value)
	m2.RangeScan(0, ^core.Key(0), func(k core.Key, v core.Value) bool {
		recovered[k] = v
		want, acked := model[k]
		switch {
		case acked && want == v:
		case pending != nil && k == pending.Key && v == pending.Value:
			// The in-flight record, fully applied: atomicity allows it.
		case !acked:
			violations = append(violations, fmt.Sprintf("garbage key %d (never acknowledged)", k))
		default:
			violations = append(violations, fmt.Sprintf("key %d recovered with value %d, acknowledged %d", k, v, want))
		}
		return true
	})
	for k, v := range recovered {
		if want, acked := model[k]; acked && want == v {
			res.Survived++
		}
	}
	// Durability: checkpointed records must be back, point-readable.
	if sub.Durability == DurableToFlush {
		for k, want := range checkpointed {
			if got, ok := m2.Get(k); !ok || got != want {
				violations = append(violations, fmt.Sprintf("checkpointed key %d lost (got %d,%v, want %d)", k, got, ok, want))
			}
		}
	}
	// Durability: the committed prefix of the acked sequence must be back.
	if sub.Durability == DurableToCommit {
		for _, rec := range ackedSeq[:durable] {
			if got, ok := m2.Get(rec.Key); !ok || got != rec.Value {
				violations = append(violations, fmt.Sprintf("committed key %d lost (got %d,%v, want %d)", rec.Key, got, ok, rec.Value))
			}
		}
	}
	if len(violations) > 0 {
		sort.Strings(violations)
		res.Verdict = Violated
		res.Detail = fmt.Sprintf("%d violations, first: %s", len(violations), violations[0])
		return res
	}
	res.Verdict = Recovered
	return res
}
