package column

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// am is the common surface of both column types under test.
type am interface {
	Name() string
	Get(core.Key) (core.Value, bool)
	Insert(core.Key, core.Value) error
	Update(core.Key, core.Value) bool
	Delete(core.Key) bool
	RangeScan(core.Key, core.Key, func(core.Key, core.Value) bool) int
	Len() int
	BulkLoad([]core.Record) error
}

func both() []am {
	return []am{NewSorted(nil), NewUnsorted(nil)}
}

func TestRandomizedAgainstMap(t *testing.T) {
	for _, c := range both() {
		rng := rand.New(rand.NewSource(2))
		ref := map[uint64]uint64{}
		for i := 0; i < 8000; i++ {
			k := uint64(rng.Intn(2000))
			switch rng.Intn(4) {
			case 0:
				err := c.Insert(k, k*3)
				if _, ok := ref[k]; ok {
					if err != core.ErrKeyExists {
						t.Fatalf("%s: dup insert err=%v", c.Name(), err)
					}
				} else if err != nil {
					t.Fatalf("%s: insert: %v", c.Name(), err)
				} else {
					ref[k] = k * 3
				}
			case 1:
				v, ok := c.Get(k)
				rv, rok := ref[k]
				if ok != rok || (ok && v != rv) {
					t.Fatalf("%s op %d: Get(%d)", c.Name(), i, k)
				}
			case 2:
				nv := rng.Uint64()
				if c.Update(k, nv) {
					if _, ok := ref[k]; !ok {
						t.Fatalf("%s: phantom update", c.Name())
					}
					ref[k] = nv
				} else if _, ok := ref[k]; ok {
					t.Fatalf("%s: missed update", c.Name())
				}
			case 3:
				got := c.Delete(k)
				_, want := ref[k]
				if got != want {
					t.Fatalf("%s: Delete(%d) = %v", c.Name(), k, got)
				}
				delete(ref, k)
			}
			if c.Len() != len(ref) {
				t.Fatalf("%s: Len %d want %d", c.Name(), c.Len(), len(ref))
			}
		}
	}
}

func TestSortedRangeIsOrdered(t *testing.T) {
	s := NewSorted(nil)
	keys := []uint64{5, 1, 9, 3, 7}
	for _, k := range keys {
		if err := s.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	n := s.RangeScan(2, 8, func(k core.Key, v core.Value) bool {
		got = append(got, k)
		return true
	})
	want := []uint64{3, 5, 7}
	if n != len(want) {
		t.Fatalf("emitted %d", n)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestUnsortedRangeFindsAll(t *testing.T) {
	u := NewUnsorted(nil)
	for k := uint64(0); k < 100; k++ {
		if err := u.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[uint64]bool{}
	u.RangeScan(10, 20, func(k core.Key, v core.Value) bool {
		seen[k] = true
		return true
	})
	for k := uint64(10); k <= 20; k++ {
		if !seen[k] {
			t.Fatalf("missing %d", k)
		}
	}
	if len(seen) != 11 {
		t.Fatalf("extra keys: %v", seen)
	}
}

func TestBulkLoadBoth(t *testing.T) {
	recs := make([]core.Record, 1000)
	for i := range recs {
		recs[i] = core.Record{Key: uint64(i * 2), Value: uint64(i)}
	}
	for _, c := range both() {
		if err := c.BulkLoad(recs); err != nil {
			t.Fatal(err)
		}
		if c.Len() != 1000 {
			t.Fatalf("%s: Len %d", c.Name(), c.Len())
		}
		for i := 0; i < 1000; i += 37 {
			v, ok := c.Get(uint64(i * 2))
			if !ok || v != uint64(i) {
				t.Fatalf("%s: Get(%d)", c.Name(), i*2)
			}
		}
	}
}

// TestSortedStaysSortedProperty: after any batch of inserts the scan is
// ascending.
func TestSortedStaysSortedProperty(t *testing.T) {
	f := func(keys []uint64) bool {
		s := NewSorted(nil)
		for _, k := range keys {
			_ = s.Insert(k, k) // duplicates rejected, fine
		}
		prev := uint64(0)
		first := true
		ok := true
		s.RangeScan(0, ^uint64(0), func(k core.Key, v core.Value) bool {
			if !first && k <= prev {
				ok = false
				return false
			}
			first, prev = false, k
			return true
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestInsertCostAsymmetry: the sorted column pays linear shift writes, the
// unsorted column constant appends — the Table-1 contrast.
func TestInsertCostAsymmetry(t *testing.T) {
	s := NewSorted(nil)
	u := NewUnsorted(nil)
	rng := rand.New(rand.NewSource(3))
	keys := rng.Perm(4000)
	for _, k := range keys {
		if err := s.Insert(uint64(k), 0); err != nil {
			t.Fatal(err)
		}
		if err := u.Insert(uint64(k), 0); err != nil {
			t.Fatal(err)
		}
	}
	sw := s.Meter().PhysicalWritten()
	uw := u.Meter().PhysicalWritten()
	if sw < uw*10 {
		t.Fatalf("sorted writes %d should dwarf unsorted %d", sw, uw)
	}
}

// TestReadCostAsymmetry: the sorted column searches in logarithmic probes,
// the unsorted column scans.
func TestReadCostAsymmetry(t *testing.T) {
	s := NewSorted(nil)
	u := NewUnsorted(nil)
	recs := make([]core.Record, 1<<14)
	for i := range recs {
		recs[i] = core.Record{Key: uint64(i), Value: 0}
	}
	if err := s.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if err := u.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	s0, u0 := s.Meter().Snapshot(), u.Meter().Snapshot()
	for k := uint64(0); k < 100; k++ {
		s.Get(k * 37)
		u.Get(k * 37)
	}
	sr := s.Meter().Diff(s0).PhysicalRead()
	ur := u.Meter().Diff(u0).PhysicalRead()
	if ur < sr*4 {
		t.Fatalf("unsorted reads %d should dwarf sorted %d", ur, sr)
	}
}

func TestMOIsExactlyOne(t *testing.T) {
	for _, c := range both() {
		for k := uint64(0); k < 100; k++ {
			if err := c.Insert(k, k); err != nil {
				t.Fatal(err)
			}
		}
	}
	s, u := NewSorted(nil), NewUnsorted(nil)
	_ = s.Insert(1, 1)
	_ = u.Insert(1, 1)
	if s.Size().SpaceAmplification() != 1 || u.Size().SpaceAmplification() != 1 {
		t.Fatal("columns must have MO exactly 1.0")
	}
}

func TestAt(t *testing.T) {
	recs := []core.Record{{Key: 1, Value: 10}, {Key: 2, Value: 20}}
	s := NewSorted(nil)
	if err := s.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if r := s.At(1); r.Key != 2 || r.Value != 20 {
		t.Fatalf("At: %+v", r)
	}
	u := NewUnsorted(nil)
	if err := u.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if r := u.At(0); r.Key != 1 {
		t.Fatalf("At: %+v", r)
	}
}

func TestScanEarlyStop(t *testing.T) {
	for _, c := range both() {
		for k := uint64(0); k < 50; k++ {
			if err := c.Insert(k, k); err != nil {
				t.Fatal(err)
			}
		}
		n := c.RangeScan(0, ^uint64(0), func(core.Key, core.Value) bool { return false })
		if n != 1 {
			t.Fatalf("%s: early stop emitted %d", c.Name(), n)
		}
	}
}

func TestSortedDeleteKeepsOrder(t *testing.T) {
	s := NewSorted(nil)
	var want []uint64
	for k := uint64(0); k < 200; k++ {
		if err := s.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 200; k += 3 {
		s.Delete(k)
	}
	for k := uint64(0); k < 200; k++ {
		if k%3 != 0 {
			want = append(want, k)
		}
	}
	var got []uint64
	s.RangeScan(0, ^uint64(0), func(k core.Key, v core.Value) bool {
		got = append(got, k)
		return true
	})
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("not sorted after deletes")
	}
	if len(got) != len(want) {
		t.Fatalf("lengths %d/%d", len(got), len(want))
	}
}
