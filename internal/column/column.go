// Package column implements the two base-data organizations of Table 1:
// a sorted column (logarithmic search, linear in-place insert) and an
// unsorted column (constant-time append, linear scan). They are the
// "even without any additional secondary index" rows of the table, and they
// also serve as the base data that sparse indexes (zone maps, bitmaps) and
// adaptive indexes (cracking) are layered on.
package column

import (
	"sort"

	"repro/internal/core"
	"repro/internal/rum"
)

// Sorted is a column kept physically sorted by key. Lookups are binary
// searches over the base data itself; inserts shift the tail of the array,
// the Table-1 O(N/B/2) update cost.
type Sorted struct {
	recs  []core.Record
	meter *rum.Meter
}

// NewSorted creates an empty sorted column. If meter is nil a private meter
// is used; pass a shared meter when the column is the base data under an
// index so the composite's accounting stays unified.
func NewSorted(meter *rum.Meter) *Sorted {
	if meter == nil {
		meter = &rum.Meter{}
	}
	return &Sorted{meter: meter}
}

// Name returns "sorted-column".
func (s *Sorted) Name() string { return "sorted-column" }

// search returns the insertion position of k, charging one record read per
// binary-search probe.
func (s *Sorted) search(k core.Key) int {
	probes := 0
	i := sort.Search(len(s.recs), func(i int) bool {
		probes++
		return s.recs[i].Key >= k
	})
	s.meter.CountRead(rum.Base, probes*rum.LineSize)
	return i
}

// Get binary-searches the column.
func (s *Sorted) Get(k core.Key) (core.Value, bool) {
	i := s.search(k)
	if i < len(s.recs) && s.recs[i].Key == k {
		s.meter.CountRead(rum.Base, rum.LineCost(core.RecordSize))
		return s.recs[i].Value, true
	}
	return 0, false
}

// Insert places the record at its sorted position, physically shifting every
// record after it — the linear write cost the paper attributes to keeping
// base data sorted.
func (s *Sorted) Insert(k core.Key, v core.Value) error {
	i := s.search(k)
	if i < len(s.recs) && s.recs[i].Key == k {
		return core.ErrKeyExists
	}
	s.recs = append(s.recs, core.Record{})
	copy(s.recs[i+1:], s.recs[i:])
	s.recs[i] = core.Record{Key: k, Value: v}
	moved := len(s.recs) - i
	s.meter.CountWrite(rum.Base, rum.LineCost(moved*core.RecordSize))
	return nil
}

// Update overwrites the record in place: one physical record write.
func (s *Sorted) Update(k core.Key, v core.Value) bool {
	i := s.search(k)
	if i >= len(s.recs) || s.recs[i].Key != k {
		return false
	}
	s.recs[i].Value = v
	s.meter.CountWrite(rum.Base, rum.LineCost(core.RecordSize))
	return true
}

// Delete removes the record, shifting the tail down to stay dense and sorted.
func (s *Sorted) Delete(k core.Key) bool {
	i := s.search(k)
	if i >= len(s.recs) || s.recs[i].Key != k {
		return false
	}
	copy(s.recs[i:], s.recs[i+1:])
	s.recs = s.recs[:len(s.recs)-1]
	moved := len(s.recs) - i
	if moved < 1 {
		moved = 1
	}
	s.meter.CountWrite(rum.Base, rum.LineCost(moved*core.RecordSize))
	return true
}

// RangeScan binary-searches for lo and reads sequentially to hi: the
// Table-1 O(log2 N + m) range cost.
func (s *Sorted) RangeScan(lo, hi core.Key, emit func(core.Key, core.Value) bool) int {
	i := s.search(lo)
	n := 0
	for ; i < len(s.recs) && s.recs[i].Key <= hi; i++ {
		s.meter.CountRead(rum.Base, core.RecordSize)
		n++
		if !emit(s.recs[i].Key, s.recs[i].Value) {
			break
		}
	}
	return n
}

// Len returns the record count.
func (s *Sorted) Len() int { return len(s.recs) }

// Meter returns the RUM accounting.
func (s *Sorted) Meter() *rum.Meter { return s.meter }

// Size reports pure base data: a sorted column has MO exactly 1.0.
func (s *Sorted) Size() rum.SizeInfo {
	return rum.SizeInfo{BaseBytes: uint64(len(s.recs)) * core.RecordSize}
}

// BulkLoad replaces the contents with the presorted recs, charging one
// sequential write pass.
func (s *Sorted) BulkLoad(recs []core.Record) error {
	s.recs = make([]core.Record, len(recs))
	copy(s.recs, recs)
	s.meter.CountWrite(rum.Base, len(recs)*core.RecordSize)
	return nil
}

// At returns the record at row position i without bounds checking overhead,
// charging one record read. It is the positional access used by layered
// indexes (zone maps, cracking).
func (s *Sorted) At(i int) core.Record {
	s.meter.CountRead(rum.Base, rum.LineCost(core.RecordSize))
	return s.recs[i]
}

// Unsorted is a heap-ordered column: inserts append, every search scans.
type Unsorted struct {
	recs  []core.Record
	pos   map[core.Key]int // row id per key; maintained for O(1) membership in Insert
	meter *rum.Meter
}

// NewUnsorted creates an empty unsorted column. The pos map is bookkeeping
// for duplicate rejection only; operations still pay scan-cost accounting as
// the physical organization dictates.
func NewUnsorted(meter *rum.Meter) *Unsorted {
	if meter == nil {
		meter = &rum.Meter{}
	}
	return &Unsorted{meter: meter, pos: make(map[core.Key]int)}
}

// Name returns "unsorted-column".
func (u *Unsorted) Name() string { return "unsorted-column" }

// scan locates k by a linear pass, charging the scanned prefix.
func (u *Unsorted) scan(k core.Key) int {
	i, ok := u.pos[k]
	if !ok {
		u.meter.CountRead(rum.Base, len(u.recs)*core.RecordSize)
		return -1
	}
	u.meter.CountRead(rum.Base, (i+1)*core.RecordSize)
	return i
}

// Get scans for k.
func (u *Unsorted) Get(k core.Key) (core.Value, bool) {
	i := u.scan(k)
	if i < 0 {
		return 0, false
	}
	return u.recs[i].Value, true
}

// Insert appends: the O(1) update cost of Table 1.
func (u *Unsorted) Insert(k core.Key, v core.Value) error {
	if _, ok := u.pos[k]; ok {
		return core.ErrKeyExists
	}
	u.pos[k] = len(u.recs)
	u.recs = append(u.recs, core.Record{Key: k, Value: v})
	u.meter.CountWrite(rum.Base, rum.LineCost(core.RecordSize))
	return nil
}

// Update scans for k and overwrites in place.
func (u *Unsorted) Update(k core.Key, v core.Value) bool {
	i := u.scan(k)
	if i < 0 {
		return false
	}
	u.recs[i].Value = v
	u.meter.CountWrite(rum.Base, rum.LineCost(core.RecordSize))
	return true
}

// Delete scans for k and fills the hole with the last record.
func (u *Unsorted) Delete(k core.Key) bool {
	i := u.scan(k)
	if i < 0 {
		return false
	}
	last := len(u.recs) - 1
	moved := u.recs[last]
	u.recs[i] = moved
	u.recs = u.recs[:last]
	u.pos[moved.Key] = i
	delete(u.pos, k)
	u.meter.CountWrite(rum.Base, rum.LineCost(core.RecordSize))
	return true
}

// RangeScan must read the whole column: the Table-1 O(N/B) range cost.
// Results are emitted in physical (not key) order.
func (u *Unsorted) RangeScan(lo, hi core.Key, emit func(core.Key, core.Value) bool) int {
	u.meter.CountRead(rum.Base, len(u.recs)*core.RecordSize)
	n := 0
	for _, r := range u.recs {
		if r.Key >= lo && r.Key <= hi {
			n++
			if !emit(r.Key, r.Value) {
				break
			}
		}
	}
	return n
}

// Len returns the record count.
func (u *Unsorted) Len() int { return len(u.recs) }

// Meter returns the RUM accounting.
func (u *Unsorted) Meter() *rum.Meter { return u.meter }

// Size reports pure base data: MO is exactly 1.0.
func (u *Unsorted) Size() rum.SizeInfo {
	return rum.SizeInfo{BaseBytes: uint64(len(u.recs)) * core.RecordSize}
}

// BulkLoad replaces the contents with recs in one append pass — the O(1)
// (amortized per record) bulk-creation row of Table 1.
func (u *Unsorted) BulkLoad(recs []core.Record) error {
	u.recs = make([]core.Record, len(recs))
	copy(u.recs, recs)
	u.pos = make(map[core.Key]int, len(recs))
	for i, r := range recs {
		u.pos[r.Key] = i
	}
	u.meter.CountWrite(rum.Base, len(recs)*core.RecordSize)
	return nil
}

// At returns the record at row position i, charging one record read.
func (u *Unsorted) At(i int) core.Record {
	u.meter.CountRead(rum.Base, rum.LineCost(core.RecordSize))
	return u.recs[i]
}
