package lsm

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/storage"
)

func newTestTree(t *testing.T, cfg Config) *Tree {
	t.Helper()
	dev := storage.NewDevice(512, storage.SSD, nil)
	pool := storage.NewBufferPool(dev, 32)
	return New(pool, cfg)
}

func TestEmpty(t *testing.T) {
	tr := newTestTree(t, Config{})
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get on empty returned ok")
	}
	if n := tr.RangeScan(0, ^uint64(0), func(core.Key, core.Value) bool { return true }); n != 0 {
		t.Fatalf("scan emitted %d", n)
	}
}

func TestInsertGetAcrossFlushes(t *testing.T) {
	tr := newTestTree(t, Config{MemtableRecords: 64, SizeRatio: 4})
	const n = 5000
	for k := uint64(0); k < n; k++ {
		if err := tr.Insert(k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Stats().Flushes == 0 {
		t.Fatal("no memtable flushes for 5000 inserts at threshold 64")
	}
	for k := uint64(0); k < n; k++ {
		v, ok := tr.Get(k)
		if !ok || v != k*3 {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
	if _, ok := tr.Get(n + 5); ok {
		t.Fatal("found absent key")
	}
	if tr.Len() != n {
		t.Fatalf("Len=%d", tr.Len())
	}
}

func TestUpdateShadowsOldVersion(t *testing.T) {
	tr := newTestTree(t, Config{MemtableRecords: 32, SizeRatio: 3})
	for k := uint64(0); k < 500; k++ {
		if err := tr.Insert(k, 1); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 500; k++ {
		if !tr.Update(k, 2) {
			t.Fatal("update returned false")
		}
	}
	for k := uint64(0); k < 500; k++ {
		v, ok := tr.Get(k)
		if !ok || v != 2 {
			t.Fatalf("Get(%d) = %d,%v after update", k, v, ok)
		}
	}
}

func TestDeleteTombstones(t *testing.T) {
	tr := newTestTree(t, Config{MemtableRecords: 32, SizeRatio: 3})
	for k := uint64(0); k < 1000; k++ {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 1000; k += 2 {
		tr.Delete(k)
	}
	// Force everything through at least one flush.
	tr.Flush()
	for k := uint64(0); k < 1000; k++ {
		_, ok := tr.Get(k)
		want := k%2 == 1
		if ok != want {
			t.Fatalf("Get(%d) ok=%v want %v", k, ok, want)
		}
	}
	if tr.Len() != 500 {
		t.Fatalf("Len=%d want 500", tr.Len())
	}
}

func TestRangeScanMergesVersions(t *testing.T) {
	tr := newTestTree(t, Config{MemtableRecords: 16, SizeRatio: 2})
	for k := uint64(0); k < 300; k++ {
		if err := tr.Insert(k, 1); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(100); k < 200; k++ {
		tr.Update(k, 9)
	}
	for k := uint64(250); k < 300; k++ {
		tr.Delete(k)
	}
	var keys []uint64
	n := tr.RangeScan(50, 299, func(k core.Key, v core.Value) bool {
		keys = append(keys, k)
		want := core.Value(1)
		if k >= 100 && k < 200 {
			want = 9
		}
		if v != want {
			t.Fatalf("key %d: value %d want %d", k, v, want)
		}
		return true
	})
	if n != 200 { // 50..249
		t.Fatalf("scan emitted %d, want 200", n)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("scan not ascending at %d", i)
		}
	}
}

func TestTieringVsLevelingRunCounts(t *testing.T) {
	level := newTestTree(t, Config{MemtableRecords: 32, SizeRatio: 4})
	tier := newTestTree(t, Config{MemtableRecords: 32, SizeRatio: 4, Tiering: true})
	for k := uint64(0); k < 4000; k++ {
		if err := level.Insert(k, k); err != nil {
			t.Fatal(err)
		}
		if err := tier.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	// Leveling keeps at most one run per level.
	for i, lv := range level.levels {
		if len(lv) > 1 {
			t.Fatalf("leveling: level %d has %d runs", i, len(lv))
		}
	}
	// Tiering accumulates runs, so it must hold at least as many.
	if tier.Runs() < level.Runs() {
		t.Fatalf("tiering runs %d < leveling runs %d", tier.Runs(), level.Runs())
	}
	// Both must still answer correctly.
	for k := uint64(0); k < 4000; k += 97 {
		if v, ok := level.Get(k); !ok || v != k {
			t.Fatalf("leveling Get(%d)=%d,%v", k, v, ok)
		}
		if v, ok := tier.Get(k); !ok || v != k {
			t.Fatalf("tiering Get(%d)=%d,%v", k, v, ok)
		}
	}
}

func TestWriteAmpLevelingAboveTiering(t *testing.T) {
	level := newTestTree(t, Config{MemtableRecords: 64, SizeRatio: 3})
	tier := newTestTree(t, Config{MemtableRecords: 64, SizeRatio: 3, Tiering: true})
	for k := uint64(0); k < 20000; k++ {
		if err := level.Insert(k, k); err != nil {
			t.Fatal(err)
		}
		if err := tier.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	level.Flush()
	tier.Flush()
	lw := level.Meter().PhysicalWritten()
	tw := tier.Meter().PhysicalWritten()
	if tw >= lw {
		t.Fatalf("tiering should write less: tiering=%d leveling=%d", tw, lw)
	}
}

func TestBloomFilterCutsReadsForMisses(t *testing.T) {
	with := newTestTree(t, Config{MemtableRecords: 64, SizeRatio: 4, BloomBitsPerKey: 10})
	without := newTestTree(t, Config{MemtableRecords: 64, SizeRatio: 4})
	for k := uint64(0); k < 10000; k += 2 {
		if err := with.Insert(k, k); err != nil {
			t.Fatal(err)
		}
		if err := without.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	with.Flush()
	without.Flush()
	wb := with.Meter().Snapshot()
	wob := without.Meter().Snapshot()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		k := uint64(rng.Intn(10000))*2 + 1 // always a miss
		with.Get(k)
		without.Get(k)
	}
	wd := with.Meter().Diff(wb)
	wod := without.Meter().Diff(wob)
	if wd.BaseRead >= wod.BaseRead {
		t.Fatalf("bloom should cut page reads on misses: with=%d without=%d", wd.BaseRead, wod.BaseRead)
	}
}

func TestBulkLoad(t *testing.T) {
	tr := newTestTree(t, Config{MemtableRecords: 64, SizeRatio: 4, BloomBitsPerKey: 8})
	recs := make([]core.Record, 3000)
	for i := range recs {
		recs[i] = core.Record{Key: uint64(i * 2), Value: uint64(i)}
	}
	if err := tr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3000 {
		t.Fatalf("Len=%d", tr.Len())
	}
	for i := 0; i < 3000; i += 113 {
		v, ok := tr.Get(uint64(i * 2))
		if !ok || v != uint64(i) {
			t.Fatalf("Get(%d)=%d,%v", i*2, v, ok)
		}
	}
	if _, ok := tr.Get(1); ok {
		t.Fatal("found absent odd key")
	}
	// Keep inserting on top of the bulk-loaded bottom level.
	for k := uint64(1); k < 2000; k += 2 {
		if err := tr.Insert(k, 7); err != nil {
			t.Fatal(err)
		}
	}
	if v, ok := tr.Get(999); !ok || v != 7 {
		t.Fatalf("Get(999)=%d,%v", v, ok)
	}
}

func TestTombstoneValueRejected(t *testing.T) {
	tr := newTestTree(t, Config{})
	if err := tr.Insert(1, Tombstone); err == nil {
		t.Fatal("tombstone value accepted by Insert")
	}
	if tr.Update(1, Tombstone) {
		t.Fatal("tombstone value accepted by Update")
	}
}

func TestRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := newTestTree(t, Config{MemtableRecords: 48, SizeRatio: 3, BloomBitsPerKey: 8})
	ref := make(map[uint64]uint64)
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Intn(3000))
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // put (insert or overwrite; LSM blind-writes)
			v := uint64(rng.Int63())
			if _, ok := ref[k]; ok {
				tr.Update(k, v)
			} else {
				if err := tr.Insert(k, v); err != nil {
					t.Fatal(err)
				}
			}
			ref[k] = v
		case 4, 5: // delete only live keys (blind-delete contract)
			if _, ok := ref[k]; ok {
				tr.Delete(k)
				delete(ref, k)
			}
		default: // get
			v, ok := tr.Get(k)
			rv, rok := ref[k]
			if ok != rok || (ok && v != rv) {
				t.Fatalf("op %d: Get(%d)=%d,%v want %d,%v", i, k, v, ok, rv, rok)
			}
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len=%d ref=%d", tr.Len(), len(ref))
	}
	got := 0
	tr.RangeScan(0, ^uint64(0), func(k core.Key, v core.Value) bool {
		if ref[k] != v {
			t.Fatalf("scan key %d: %d want %d", k, v, ref[k])
		}
		got++
		return true
	})
	if got != len(ref) {
		t.Fatalf("scan emitted %d want %d", got, len(ref))
	}
}

func TestKnobs(t *testing.T) {
	tr := newTestTree(t, Config{})
	if len(tr.Knobs()) != 4 {
		t.Fatalf("expected 4 knobs, got %d", len(tr.Knobs()))
	}
	if err := tr.SetKnob("size_ratio", 6); err != nil {
		t.Fatal(err)
	}
	if tr.cfg.SizeRatio != 6 {
		t.Fatalf("size_ratio not applied")
	}
	if err := tr.SetKnob("size_ratio", 1); err == nil {
		t.Fatal("invalid size_ratio accepted")
	}
	if err := tr.SetKnob("bogus", 1); err == nil {
		t.Fatal("unknown knob accepted")
	}
}

// TestFaultToleranceOnReads: run-page read failures surface as misses and
// clear once the device recovers.
func TestFaultToleranceOnReads(t *testing.T) {
	dev := storage.NewDevice(512, storage.SSD, nil)
	pool := storage.NewBufferPool(dev, 2)
	tr := New(pool, Config{MemtableRecords: 64, SizeRatio: 4})
	for k := uint64(0); k < 2000; k++ {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	tr.Flush()
	dev.SetInjector(faults.New(faults.Plan{Seed: 7, PRead: 0.5}))
	misses := 0
	for k := uint64(0); k < 10; k++ {
		if _, ok := tr.Get(k * 150); !ok {
			misses++
		}
	}
	if misses == 0 {
		t.Fatal("injected fault never surfaced")
	}
	dev.SetInjector(nil)
	for k := uint64(0); k < 2000; k += 137 {
		if v, ok := tr.Get(k); !ok || v != k {
			t.Fatalf("post-fault Get(%d) = %d,%v", k, v, ok)
		}
	}
}

// TestFencePruningOnRanges: a narrow range over a large bulk-loaded run must
// read only the overlapping pages, not the whole run.
func TestFencePruningOnRanges(t *testing.T) {
	dev := storage.NewDevice(512, storage.SSD, nil)
	pool := storage.NewBufferPool(dev, 2)
	tr := New(pool, Config{MemtableRecords: 64, SizeRatio: 4})
	recs := make([]core.Record, 1<<14)
	for i := range recs {
		recs[i] = core.Record{Key: uint64(i), Value: uint64(i)}
	}
	if err := tr.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	tr.Flush()
	before := tr.Meter().Snapshot()
	n := tr.RangeScan(1000, 1030, func(core.Key, core.Value) bool { return true })
	if n != 31 {
		t.Fatalf("emitted %d", n)
	}
	read := tr.Meter().Diff(before).BaseRead
	full := uint64(len(recs) * core.RecordSize)
	if read > full/20 {
		t.Fatalf("narrow range read %d of %d run bytes: fences not pruning", read, full)
	}
}

// TestTieringKnobTakesEffectMidStream: switching leveling→tiering at
// runtime changes compaction behaviour for subsequent flushes.
func TestTieringKnobTakesEffectMidStream(t *testing.T) {
	tr := newTestTree(t, Config{MemtableRecords: 32, SizeRatio: 4})
	for k := uint64(0); k < 2000; k++ {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	// Leveling: one run per level.
	for i, lv := range tr.levels {
		if len(lv) > 1 {
			t.Fatalf("leveling invariant broken at level %d", i)
		}
	}
	if err := tr.SetKnob("tiering", 1); err != nil {
		t.Fatal(err)
	}
	for k := uint64(10000); k < 14000; k++ {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	multi := false
	for _, lv := range tr.levels {
		if len(lv) > 1 {
			multi = true
		}
	}
	if !multi {
		t.Fatal("tiering knob had no effect: no level accumulated runs")
	}
	// Data from both regimes stays readable.
	for _, k := range []uint64{5, 1999, 10000, 13999} {
		if v, ok := tr.Get(k); !ok || v != k {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
}

// TestSizeIncludesFiltersAndFences: auxiliary bytes must grow when filters
// are enabled.
func TestSizeIncludesFiltersAndFences(t *testing.T) {
	with := newTestTree(t, Config{MemtableRecords: 64, SizeRatio: 4, BloomBitsPerKey: 12})
	without := newTestTree(t, Config{MemtableRecords: 64, SizeRatio: 4})
	recs := make([]core.Record, 4096)
	for i := range recs {
		recs[i] = core.Record{Key: uint64(i), Value: uint64(i)}
	}
	if err := with.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if err := without.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if with.Size().AuxBytes <= without.Size().AuxBytes {
		t.Fatalf("filters not accounted: %d vs %d", with.Size().AuxBytes, without.Size().AuxBytes)
	}
}
