package lsm

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/rum"
	"repro/internal/storage"
)

func newMVCCTree(t *testing.T, versions int) *Tree {
	t.Helper()
	return newTestTree(t, Config{MemtableRecords: 64, BloomBitsPerKey: 10, Versions: versions})
}

func TestLSMMVCCPublishRequired(t *testing.T) {
	tr := newTestTree(t, Config{MemtableRecords: 64})
	if err := tr.Publish(); err != core.ErrNoSnapshots {
		t.Fatalf("Publish on non-MVCC tree: %v, want ErrNoSnapshots", err)
	}
	tr2 := newMVCCTree(t, 2)
	if s := tr2.Acquire(); s != nil {
		t.Fatal("Acquire before first Publish returned a snapshot")
	}
	if err := tr2.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if s := tr2.Acquire(); s == nil {
		t.Fatal("Acquire after Publish returned nil")
	} else {
		s.Release()
	}
}

func TestLSMMVCCSnapshotIsolation(t *testing.T) {
	tr := newMVCCTree(t, 4)
	for k := uint64(0); k < 500; k++ {
		if err := tr.Insert(k, k); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	if err := tr.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	snap := tr.Acquire()
	if snap == nil {
		t.Fatal("Acquire returned nil")
	}
	defer snap.Release()

	// Mutate heavily after the publish: updates, deletes, inserts. The blind
	// writes force flushes and compactions, rewriting the run directory the
	// snapshot froze.
	for k := uint64(0); k < 500; k++ {
		tr.Update(k, k+1000)
	}
	for k := uint64(0); k < 100; k++ {
		tr.Delete(k)
	}
	for k := uint64(500); k < 900; k++ {
		if err := tr.Insert(k, k); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}

	// The snapshot still sees the published state, exactly.
	var m rum.Meter
	for k := uint64(0); k < 500; k++ {
		v, ok := snap.Get(k, &m)
		if !ok || v != k {
			t.Fatalf("snap.Get(%d) = %d,%v; want %d,true", k, v, ok, k)
		}
	}
	if _, ok := snap.Get(700, &m); ok {
		t.Fatal("snap.Get(700) sees a post-publish insert")
	}
	want := uint64(0)
	n := snap.RangeScan(0, ^uint64(0), &m, func(k core.Key, v core.Value) bool {
		if k != want || v != want {
			t.Fatalf("snap scan got (%d,%d), want (%d,%d)", k, v, want, want)
		}
		want++
		return true
	})
	if n != 500 {
		t.Fatalf("snap scan emitted %d, want 500", n)
	}
	if m.BaseRead+m.AuxRead == 0 {
		t.Fatal("snapshot reads charged no physical traffic")
	}

	// The live tree sees the mutations.
	if v, ok := tr.Get(250); !ok || v != 1250 {
		t.Fatalf("tree.Get(250) = %d,%v; want 1250,true", v, ok)
	}
	if _, ok := tr.Get(50); ok {
		t.Fatal("tree.Get(50) sees a deleted key")
	}
}

func TestLSMMVCCSnapshotSeesMemtable(t *testing.T) {
	// Records still in the memtable at publish time must be visible through
	// the frozen copy, including tombstones shadowing older run entries.
	tr := newMVCCTree(t, 2)
	for k := uint64(0); k < 200; k++ {
		tr.Insert(k, k)
	}
	tr.Flush()
	tr.Delete(7)        // tombstone in memtable shadows run entry
	tr.Insert(1000, 42) // fresh insert only in memtable
	tr.Update(11, 999)  // update only in memtable
	if err := tr.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	snap := tr.Acquire()
	defer snap.Release()
	var m rum.Meter
	if _, ok := snap.Get(7, &m); ok {
		t.Fatal("snapshot sees a key deleted before publish")
	}
	if v, ok := snap.Get(1000, &m); !ok || v != 42 {
		t.Fatalf("snap.Get(1000) = %d,%v; want 42,true", v, ok)
	}
	if v, ok := snap.Get(11, &m); !ok || v != 999 {
		t.Fatalf("snap.Get(11) = %d,%v; want 999,true", v, ok)
	}
	// RangeScan sees the merged view: 0..199 minus 7, with 11 updated.
	got := 0
	snap.RangeScan(0, 500, &m, func(k core.Key, v core.Value) bool {
		if k == 7 {
			t.Fatal("scan emitted deleted key 7")
		}
		if k == 11 && v != 999 {
			t.Fatalf("scan emitted stale value %d for key 11", v)
		}
		got++
		return true
	})
	if got != 199 {
		t.Fatalf("scan emitted %d keys, want 199", got)
	}
}

func TestLSMMVCCEpochsMonotone(t *testing.T) {
	tr := newMVCCTree(t, 2)
	var last uint64
	for i := 0; i < 10; i++ {
		tr.Insert(uint64(i), uint64(i))
		if err := tr.Publish(); err != nil {
			t.Fatalf("Publish: %v", err)
		}
		s := tr.Acquire()
		if s.Epoch() <= last {
			t.Fatalf("epoch %d not greater than previous %d", s.Epoch(), last)
		}
		last = s.Epoch()
		s.Release()
	}
}

func TestLSMMVCCReclamation(t *testing.T) {
	tr := newMVCCTree(t, 2)
	for k := uint64(0); k < 2000; k++ {
		tr.Insert(k, k)
	}
	if err := tr.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	base := tr.pool.Device().LivePages()

	// Sustained update churn forces flushes and compactions; with retention
	// bounded at 2 and no pinned snapshots, the retire queue must drain and
	// the device must not grow without bound.
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 30; round++ {
		for i := 0; i < 100; i++ {
			k := uint64(rng.Intn(2000))
			tr.Update(k, k+uint64(round))
		}
		if err := tr.Publish(); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	live := tr.pool.Device().LivePages()
	if live > base*4 {
		t.Fatalf("device grew from %d to %d live pages: reclamation is not keeping up", base, live)
	}
	if st := tr.SnapshotStats(); st.Versions != 2 {
		t.Fatalf("retained versions = %d, want 2", st.Versions)
	}

	// A pinned out-of-window snapshot keeps its run pages alive until
	// released; afterwards the next publish reclaims them.
	snap := tr.Acquire()
	for round := 0; round < 10; round++ {
		for i := 0; i < 100; i++ {
			tr.Update(uint64(rng.Intn(2000)), 5)
		}
		if err := tr.Publish(); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	pinnedLive := tr.pool.Device().LivePages()
	var m rum.Meter
	if _, ok := snap.Get(42, &m); !ok {
		t.Fatal("pinned snapshot lost key 42")
	}
	snap.Release()
	tr.Update(1, 1)
	if err := tr.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	released := tr.pool.Device().LivePages()
	if released >= pinnedLive {
		t.Fatalf("releasing the pinned snapshot freed nothing (%d -> %d live pages)", pinnedLive, released)
	}
}

// TestLSMMVCCConcurrentReaders is the LSM half of the single-writer/
// many-reader stress: one goroutine keeps mutating, flushing, compacting and
// publishing while eight readers hammer an acquired snapshot. Run with
// -race and -tags racecheck.
func TestLSMMVCCConcurrentReaders(t *testing.T) {
	tr := newMVCCTree(t, 3)
	const n = 2000
	for k := uint64(0); k < n; k++ {
		tr.Insert(k, k^0xabcd)
	}
	if err := tr.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	snap := tr.Acquire()

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var m rum.Meter
			for i := 0; i < 3000; i++ {
				k := uint64(rng.Intn(n))
				v, ok := snap.Get(k, &m)
				if !ok || v != k^0xabcd {
					errs <- "torn or stale read"
					return
				}
			}
		}(int64(r))
	}

	for round := 0; round < 30; round++ {
		for i := 0; i < 100; i++ {
			k := uint64((round*100 + i) % n)
			tr.Update(k, uint64(round))
		}
		if err := tr.Publish(); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	snap.Release()
}

// BenchmarkLSMSnapshotGet guards the concurrent-reader point-read path.
func BenchmarkLSMSnapshotGet(b *testing.B) {
	dev := storage.NewDevice(4096, storage.SSD, nil)
	pool := storage.NewBufferPool(dev, 256)
	tr := New(pool, Config{MemtableRecords: 1024, BloomBitsPerKey: 10, Versions: 2})
	for k := uint64(0); k < 100000; k++ {
		tr.Insert(k, k)
	}
	if err := tr.Publish(); err != nil {
		b.Fatal(err)
	}
	snap := tr.Acquire()
	defer snap.Release()
	var m rum.Meter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := snap.Get(uint64(i)%100000, &m); !ok {
			b.Fatal("lost key")
		}
	}
}
