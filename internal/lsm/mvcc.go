// MVCC snapshot reads for the LSM tree. The LSM is naturally close to
// multi-versioned: runs are immutable once built, so a snapshot is just (a
// frozen copy of the memtable contents, a copy of the run directory, a
// storage.PageView over the device). Publish freezes those three under an
// epoch stamp; compaction keeps rewriting the live run directory, and the
// pages of compacted-away runs are retired to an epoch-ordered queue,
// reclaimed once the minimum live version epoch passes them — the same
// reclamation rule as the btree's path-copying (see btree/mvcc.go), with
// compaction playing the role of copy-on-write.
package lsm

import (
	"encoding/binary"
	"sort"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/rum"
	"repro/internal/storage"
)

// version is one published immutable view. refs counts outstanding acquired
// snapshots; atomic because Release may run on reader goroutines while the
// writer's reclamation pass inspects it.
type version struct {
	epoch  uint64
	mem    []core.Record // frozen memtable contents, key-sorted
	levels [][]*run      // frozen run directory (runs are immutable)
	count  int
	view   *storage.PageView
	refs   atomic.Int64
}

// retiredPage is a run page compacted away during the given epoch, awaiting
// reclamation.
type retiredPage struct {
	pid   storage.PageID
	epoch uint64
}

func (t *Tree) mvccOn() bool { return t.cfg.Versions > 0 }

func (t *Tree) retainedBytes() uint64 {
	if !t.mvccOn() {
		return 0
	}
	b := uint64(len(t.retired)) * uint64(t.pool.Device().PageSize())
	for _, v := range t.versions {
		b += uint64(len(v.mem)) * core.RecordSize
	}
	return b
}

// Publish makes the current state available to Acquire as a new immutable
// version (core.SnapshotReader): it freezes the memtable contents (one
// sequential memtable read, charged), flushes dirty run pages so the view is
// fully materialized, copies the run directory, stamps the version with the
// current epoch, advances the epoch, and reclaims what no live version pins.
func (t *Tree) Publish() error {
	if !t.mvccOn() {
		return core.ErrNoSnapshots
	}
	frozen := make([]core.Record, 0, t.mem.Len())
	t.mem.Ascend(0, func(k core.Key, v core.Value) bool {
		frozen = append(frozen, core.Record{Key: k, Value: v})
		return true
	})
	t.meter.CountRead(rum.Base, len(frozen)*core.RecordSize)
	t.pool.FlushAll()
	levels := make([][]*run, len(t.levels))
	for i, lv := range t.levels {
		levels[i] = append([]*run(nil), lv...)
	}
	v := &version{
		epoch:  t.epoch,
		mem:    frozen,
		levels: levels,
		count:  t.count,
		view:   t.pool.Device().View(),
	}
	t.versions = append(t.versions, v)
	t.epoch++
	t.trimAndReclaim()
	return nil
}

// Acquire returns the newest published version with a reference held, or
// nil if nothing has been published yet (core.SnapshotReader).
func (t *Tree) Acquire() core.Snapshot {
	if len(t.versions) == 0 {
		return nil
	}
	v := t.versions[len(t.versions)-1]
	v.refs.Add(1)
	return &Snapshot{v: v, pageSize: t.pool.Device().PageSize()}
}

// SnapshotStats reports the current version state (core.SnapshotReader).
func (t *Tree) SnapshotStats() core.SnapshotStats {
	return core.SnapshotStats{
		Epoch:         t.epoch,
		Versions:      len(t.versions),
		RetainedBytes: t.retainedBytes(),
	}
}

// trimAndReclaim bounds retention to cfg.Versions and frees retired pages no
// live version can reach (same rule as btree: a version published at epoch e
// references only pages retired strictly after e).
func (t *Tree) trimAndReclaim() {
	for len(t.versions) > t.cfg.Versions {
		old := t.versions[0]
		t.versions = t.versions[1:]
		if old.refs.Load() > 0 {
			t.pinned = append(t.pinned, old)
		}
	}
	live := t.pinned[:0]
	for _, v := range t.pinned {
		if v.refs.Load() > 0 {
			live = append(live, v)
		}
	}
	t.pinned = live

	minLive := t.epoch
	for _, v := range t.versions {
		if v.epoch < minLive {
			minLive = v.epoch
		}
	}
	for _, v := range t.pinned {
		if v.epoch < minLive {
			minLive = v.epoch
		}
	}

	i := 0
	for i < len(t.retired) && t.retired[i].epoch <= minLive {
		_ = t.pool.FreePage(t.retired[i].pid)
		i++
	}
	if i > 0 {
		t.retired = append(t.retired[:0], t.retired[i:]...)
	}
}

// Snapshot is an immutable point-in-time view of the LSM tree
// (core.Snapshot). Get and RangeScan are safe for concurrent use from any
// goroutine: they touch only the frozen memtable slice, immutable runs, the
// version's PageView, and the caller's own meter.
type Snapshot struct {
	v        *version
	pageSize int
}

// Epoch returns the write epoch the snapshot was published at.
func (s *Snapshot) Epoch() uint64 { return s.v.epoch }

// Len returns the live record estimate as of the snapshot.
func (s *Snapshot) Len() int { return s.v.count }

// Release drops the reference; must be called exactly once.
func (s *Snapshot) Release() { s.v.refs.Add(-1) }

// Get consults the frozen memtable, then runs newest to oldest, exactly like
// the live read path, charging all probe and page traffic to m.
func (s *Snapshot) Get(k core.Key, m *rum.Meter) (core.Value, bool) {
	if v, ok := s.memGet(k, m); ok {
		if v == Tombstone {
			return 0, false
		}
		return v, true
	}
	for _, lv := range s.v.levels {
		for i := len(lv) - 1; i >= 0; i-- { // newest run last
			v, status := s.searchRun(lv[i], k, m)
			if status == foundValue {
				return v, true
			}
			if status == foundTombstone {
				return 0, false
			}
		}
	}
	return 0, false
}

// memGet binary-searches the frozen memtable, charging one record read per
// probe (the frozen copy has no skiplist towers to traverse).
func (s *Snapshot) memGet(k core.Key, m *rum.Meter) (core.Value, bool) {
	lo, hi := 0, len(s.v.mem)
	for lo < hi {
		mid := (lo + hi) / 2
		m.CountRead(rum.Base, core.RecordSize)
		if s.v.mem[mid].Key < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.v.mem) && s.v.mem[lo].Key == k {
		return s.v.mem[lo].Value, true
	}
	return 0, false
}

// searchRun mirrors Tree.searchRun over the view: fence checks, an
// unshared-meter bloom probe, one page read, in-page binary search.
func (s *Snapshot) searchRun(r *run, k core.Key, m *rum.Meter) (core.Value, searchStatus) {
	if r.count == 0 || k < r.first || k > r.last {
		m.CountRead(rum.Aux, 16) // min/max fence check
		return 0, notFound
	}
	if r.filter != nil && !r.filter.MayContainMetered(k, m) {
		return 0, notFound
	}
	probes := 0
	pi := sort.Search(len(r.fences), func(i int) bool {
		probes++
		return r.fences[i] > k
	}) - 1
	m.CountRead(rum.Aux, probes*fenceSize)
	if pi < 0 {
		pi = 0
	}
	data := s.v.view.Page(r.pages[pi])
	m.CountRead(rum.Base, s.pageSize)
	n := int(binary.LittleEndian.Uint32(data[0:4]))
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if binary.LittleEndian.Uint64(data[pageHeader+mid*core.RecordSize:]) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < n {
		off := pageHeader + lo*core.RecordSize
		if binary.LittleEndian.Uint64(data[off:]) == k {
			v := binary.LittleEndian.Uint64(data[off+8:])
			if v == Tombstone {
				return 0, foundTombstone
			}
			return v, foundValue
		}
	}
	return 0, notFound
}

// RangeScan merges the frozen memtable and every overlapping run, emitting
// live records in ascending key order and charging traffic to m.
func (s *Snapshot) RangeScan(lo, hi core.Key, m *rum.Meter, emit func(core.Key, core.Value) bool) int {
	latest := make(map[core.Key]core.Value)
	for i := len(s.v.levels) - 1; i >= 0; i-- { // oldest to newest
		for _, r := range s.v.levels[i] {
			s.scanRunInto(r, lo, hi, m, latest)
		}
	}
	memScanned := 0
	start := sort.Search(len(s.v.mem), func(i int) bool { return s.v.mem[i].Key >= lo })
	for _, rec := range s.v.mem[start:] {
		if rec.Key > hi {
			break
		}
		memScanned++
		latest[rec.Key] = rec.Value
	}
	m.CountRead(rum.Base, memScanned*core.RecordSize)

	keys := make([]core.Key, 0, len(latest))
	for k, v := range latest {
		if v == Tombstone {
			continue
		}
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	emitted := 0
	for _, k := range keys {
		emitted++
		if !emit(k, latest[k]) {
			break
		}
	}
	return emitted
}

// scanRunInto mirrors Tree.scanRunInto over the view.
func (s *Snapshot) scanRunInto(r *run, lo, hi core.Key, m *rum.Meter, latest map[core.Key]core.Value) {
	if r.count == 0 || hi < r.first || lo > r.last {
		m.CountRead(rum.Aux, 16)
		return
	}
	start := sort.Search(len(r.fences), func(i int) bool { return r.fences[i] > lo }) - 1
	if start < 0 {
		start = 0
	}
	m.CountRead(rum.Aux, 16) // fence probe, flat charge
	for pi := start; pi < len(r.pages); pi++ {
		if pi > start && r.fences[pi] > hi {
			break
		}
		data := s.v.view.Page(r.pages[pi])
		m.CountRead(rum.Base, s.pageSize)
		n := int(binary.LittleEndian.Uint32(data[0:4]))
		for j := 0; j < n; j++ {
			rec := core.DecodeRecord(data[pageHeader+j*core.RecordSize:])
			if rec.Key >= lo && rec.Key <= hi {
				latest[rec.Key] = rec.Value
			}
		}
	}
}
