package lsm

import (
	"testing"

	"repro/internal/storage"
)

func crashStack(t *testing.T, cfg Config) (*storage.Device, *storage.BufferPool, *Tree) {
	t.Helper()
	dev := storage.NewDevice(512, storage.SSD, nil)
	pool := storage.NewBufferPool(dev, 32)
	return dev, pool, New(pool, cfg)
}

var manifestCfg = Config{MemtableRecords: 64, SizeRatio: 4, Manifest: true}

// TestManifestRecoverAfterFlush: every record covered by the last committed
// manifest survives a crash, point reads and scans intact.
func TestManifestRecoverAfterFlush(t *testing.T) {
	dev, pool, tr := crashStack(t, manifestCfg)
	const n = 1000
	for k := uint64(0); k < n; k++ {
		if err := tr.Insert(k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	tr.Flush()
	if tr.Stats().ManifestWrites == 0 {
		t.Fatal("Flush committed no manifest")
	}
	pool.Crash()

	tr2, err := Recover(storage.NewBufferPool(dev, 32), manifestCfg)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if tr2.Len() != n {
		t.Fatalf("recovered Len=%d want %d", tr2.Len(), n)
	}
	for k := uint64(0); k < n; k++ {
		v, ok := tr2.Get(k)
		if !ok || v != k*3 {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
	// The recovered tree keeps working: new inserts, flushes, compactions.
	for k := uint64(n); k < n+500; k++ {
		if err := tr2.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	tr2.Flush()
	if v, ok := tr2.Get(n + 100); !ok || v != n+100 {
		t.Fatalf("post-recovery Get = %d,%v", v, ok)
	}
}

// TestManifestRecoverDropsUncheckpointed: records acknowledged after the
// last commit are gone after recovery — lost, not garbled.
func TestManifestRecoverDropsUncheckpointed(t *testing.T) {
	dev, pool, tr := crashStack(t, manifestCfg)
	for k := uint64(0); k < 300; k++ {
		if err := tr.Insert(k, 1); err != nil {
			t.Fatal(err)
		}
	}
	tr.Flush() // checkpoint covers [0,300)
	for k := uint64(300); k < 400; k++ {
		if err := tr.Insert(k, 2); err != nil {
			t.Fatal(err)
		}
	}
	// No flush: [300,400) lives in the memtable and dies with the pool.
	pool.Crash()

	tr2, err := Recover(storage.NewBufferPool(dev, 32), manifestCfg)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	for k := uint64(0); k < 300; k++ {
		if v, ok := tr2.Get(k); !ok || v != 1 {
			t.Fatalf("checkpointed Get(%d) = %d,%v", k, v, ok)
		}
	}
	for k := uint64(300); k < 400; k++ {
		if _, ok := tr2.Get(k); ok {
			t.Fatalf("uncheckpointed key %d survived without a flush", k)
		}
	}
}

// TestManifestRecoverPicksNewestGeneration: with several committed
// generations on the device, recovery adopts the newest complete one.
func TestManifestRecoverPicksNewestGeneration(t *testing.T) {
	dev, pool, tr := crashStack(t, manifestCfg)
	for round := uint64(0); round < 3; round++ {
		for k := round * 200; k < (round+1)*200; k++ {
			if err := tr.Insert(k, round+1); err != nil {
				t.Fatal(err)
			}
		}
		tr.Flush()
	}
	if tr.gen < 3 {
		t.Fatalf("expected ≥3 manifest generations, got %d", tr.gen)
	}
	pool.Crash()
	tr2, err := Recover(storage.NewBufferPool(dev, 32), manifestCfg)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if tr2.Len() != 600 {
		t.Fatalf("Len=%d want 600", tr2.Len())
	}
	if v, ok := tr2.Get(550); !ok || v != 3 {
		t.Fatalf("Get(550) = %d,%v, want 3", v, ok)
	}
	if tr2.gen != tr.gen {
		t.Fatalf("recovered generation %d, committed %d", tr2.gen, tr.gen)
	}
}

// TestManifestRecoverCorruptPageFailsOrFallsBack: flipping a byte in the
// newest manifest breaks its checksum; recovery must not trust it. With no
// older complete generation surviving, it fails loudly.
func TestManifestRecoverCorruptPageFailsOrFallsBack(t *testing.T) {
	dev, pool, tr := crashStack(t, manifestCfg)
	for k := uint64(0); k < 200; k++ {
		if err := tr.Insert(k, 1); err != nil {
			t.Fatal(err)
		}
	}
	tr.Flush()
	if len(tr.manifest) == 0 {
		t.Fatal("no manifest chain")
	}
	id := tr.manifest[0]
	pool.Crash()
	page, err := dev.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	tampered := append([]byte(nil), page...)
	tampered[manifestHeader] ^= 0xFF // corrupt the payload under the CRC
	if err := dev.Write(id, tampered); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(storage.NewBufferPool(dev, 32), manifestCfg); err == nil {
		t.Fatal("Recover trusted a checksum-broken manifest")
	}
}

// TestManifestQuarantine: pages freed by compaction stay allocated until the
// next manifest commit, so a committed manifest never references a reused
// page. The commit then releases them.
func TestManifestQuarantine(t *testing.T) {
	_, _, tr := crashStack(t, manifestCfg)
	for k := uint64(0); k < 2000; k++ {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Stats().Compactions == 0 {
		t.Fatal("workload produced no compactions")
	}
	if len(tr.pendingFree) == 0 {
		t.Fatal("compaction quarantined no pages")
	}
	tr.Flush()
	if len(tr.pendingFree) != 0 {
		t.Fatalf("%d pages still quarantined after commit", len(tr.pendingFree))
	}
}

// TestManifestRecoverEmptyDevice: no live pages means a fresh, empty tree —
// the state before the first flush is legitimately empty.
func TestManifestRecoverEmptyDevice(t *testing.T) {
	dev := storage.NewDevice(512, storage.SSD, nil)
	tr, err := Recover(storage.NewBufferPool(dev, 32), manifestCfg)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len=%d", tr.Len())
	}
}

// TestManifestOffByDefault: without Config.Manifest, Flush writes no
// manifest pages — Table-1 accounting stays untouched by the chaos layer.
func TestManifestOffByDefault(t *testing.T) {
	_, _, tr := crashStack(t, Config{MemtableRecords: 64})
	for k := uint64(0); k < 500; k++ {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	tr.Flush()
	if tr.Stats().ManifestWrites != 0 || len(tr.manifest) != 0 {
		t.Fatalf("manifest written without opt-in: %+v", tr.Stats())
	}
}
