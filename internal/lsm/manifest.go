package lsm

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/bloom"
	"repro/internal/core"
	"repro/internal/rum"
	"repro/internal/skiplist"
	"repro/internal/storage"
)

// The manifest is the LSM's durability anchor (Config.Manifest): a snapshot
// of the run directory — which pages belong to which run on which level —
// written straight to the device after every fully-successful Flush, the way
// a real LSM fsyncs its MANIFEST. Each checkpoint writes a fresh chain of
// checksummed pages under a new generation number and only then releases the
// previous chain, so a crash at any write leaves at least one complete
// manifest on the device. Run pages freed by compaction are quarantined
// (pendingFree) until the next checkpoint commits, which keeps every page a
// committed manifest references unallocated-for-reuse and byte-stable.
//
// Manifest page layout (one device page):
//
//	bytes 0:4    magic "LSMM"
//	bytes 4:8    CRC32 (IEEE) of bytes 8:end
//	bytes 8:16   generation (uint64, starts at 1)
//	bytes 16:20  page index within the chain (uint32)
//	bytes 20:24  total pages in the chain (uint32)
//	bytes 24:28  payload bytes in this page (uint32)
//	bytes 28:    payload
//
// Payload, concatenated across the chain (little-endian):
//
//	uint64 record count estimate
//	uint32 number of levels
//	per level:  uint32 number of runs
//	per run:    uint64 first key, uint64 last key,
//	            uint32 record count, uint32 page count, pages (uint32 each)
const (
	manifestMagic  = 0x4D4D534C // "LSMM"
	manifestHeader = 28
)

// writeManifest checkpoints the current run directory under the next
// generation. On success it frees the previous manifest chain and every
// quarantined run page; on any error it changes nothing durable — the
// previous checkpoint stays authoritative (freshly allocated pages are left
// for recovery's orphan GC, exactly like a torn real-world checkpoint).
func (t *Tree) writeManifest() error {
	payload := t.encodeManifest()
	dev := t.pool.Device()
	per := dev.PageSize() - manifestHeader
	if per <= 0 {
		return fmt.Errorf("lsm: page size %d too small for a manifest", dev.PageSize())
	}
	total := (len(payload) + per - 1) / per
	if total == 0 {
		total = 1
	}
	gen := t.gen + 1
	page := make([]byte, dev.PageSize())
	var chain []storage.PageID
	for i := 0; i < total; i++ {
		lo := i * per
		hi := lo + per
		if hi > len(payload) {
			hi = len(payload)
		}
		clear(page)
		binary.LittleEndian.PutUint32(page[0:4], manifestMagic)
		binary.LittleEndian.PutUint64(page[8:16], gen)
		binary.LittleEndian.PutUint32(page[16:20], uint32(i))
		binary.LittleEndian.PutUint32(page[20:24], uint32(total))
		binary.LittleEndian.PutUint32(page[24:28], uint32(hi-lo))
		copy(page[manifestHeader:], payload[lo:hi])
		binary.LittleEndian.PutUint32(page[4:8], crc32.ChecksumIEEE(page[8:]))
		id := dev.Alloc(rum.Aux)
		if err := dev.Write(id, page); err != nil {
			return err
		}
		chain = append(chain, id)
	}
	// Commit point: the new chain is fully on the device. Release the old
	// chain and the quarantined run pages.
	for _, id := range t.manifest {
		_ = dev.Free(id)
	}
	for _, id := range t.pendingFree {
		_ = t.pool.FreePage(id)
	}
	t.manifest = chain
	t.pendingFree = nil
	t.gen = gen
	t.stats.ManifestWrites++
	return nil
}

// encodeManifest serializes the run directory.
func (t *Tree) encodeManifest() []byte {
	var b []byte
	u32 := func(v uint32) { b = binary.LittleEndian.AppendUint32(b, v) }
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	u64(uint64(t.count))
	u32(uint32(len(t.levels)))
	for _, lv := range t.levels {
		u32(uint32(len(lv)))
		for _, r := range lv {
			u64(r.first)
			u64(r.last)
			u32(uint32(r.count))
			u32(uint32(len(r.pages)))
			for _, pid := range r.pages {
				u32(uint32(pid))
			}
		}
	}
	return b
}

// manifestPage is one decoded manifest page header during recovery.
type manifestPage struct {
	id      storage.PageID
	gen     uint64
	index   uint32
	total   uint32
	payload []byte
}

// Recover rebuilds a tree from the surviving device image under pool. It
// requires cfg.Manifest (a tree without checkpoints has nothing durable to
// recover — use New). The newest complete, checksum-valid manifest chain
// wins; every run it lists is re-read and validated (page counts, key
// order, fences, filters are rebuilt), and every live page outside that
// manifest — orphan runs of an interrupted compaction, stale chains,
// zeroed allocations — is freed. An image with live pages but no decodable
// manifest fails loudly.
func Recover(pool *storage.BufferPool, cfg Config) (*Tree, error) {
	return RecoverKeep(pool, cfg, nil)
}

// RecoverKeep is Recover with a carve-out for pages owned by another
// subsystem sharing the device: orphan GC skips every live page keep reports
// true for. The write-ahead log recovers the LSM this way — log pages are
// not the manifest's to free. keep == nil behaves exactly like Recover.
func RecoverKeep(pool *storage.BufferPool, cfg Config, keep func(storage.PageID) bool) (*Tree, error) {
	cfg.defaults()
	if !cfg.Manifest {
		return nil, fmt.Errorf("lsm: recovery requires Config.Manifest")
	}
	dev := pool.Device()
	live := dev.LivePageIDs()
	if len(live) == 0 {
		return New(pool, cfg), nil
	}

	// Collect checksum-valid manifest pages, grouped by generation.
	chains := make(map[uint64][]manifestPage)
	for _, id := range live {
		data, err := dev.Read(id)
		if err != nil {
			return nil, fmt.Errorf("lsm: recovery read of page %d: %w", id, err)
		}
		if len(data) < manifestHeader || binary.LittleEndian.Uint32(data[0:4]) != manifestMagic {
			continue
		}
		if binary.LittleEndian.Uint32(data[4:8]) != crc32.ChecksumIEEE(data[8:]) {
			continue // torn or stale manifest page
		}
		mp := manifestPage{
			id:    id,
			gen:   binary.LittleEndian.Uint64(data[8:16]),
			index: binary.LittleEndian.Uint32(data[16:20]),
			total: binary.LittleEndian.Uint32(data[20:24]),
		}
		n := binary.LittleEndian.Uint32(data[24:28])
		if int(n) > len(data)-manifestHeader {
			continue
		}
		mp.payload = append([]byte(nil), data[manifestHeader:manifestHeader+int(n)]...)
		chains[mp.gen] = append(chains[mp.gen], mp)
	}

	// Pick the newest complete chain.
	var best uint64
	var bestChain []manifestPage
	for gen, pages := range chains {
		if gen <= best {
			continue
		}
		if chain, ok := assembleChain(pages); ok {
			best, bestChain = gen, chain
		}
	}
	if bestChain == nil {
		return nil, fmt.Errorf("lsm: no complete manifest among %d live pages", len(live))
	}
	var payload []byte
	var chainIDs []storage.PageID
	for _, mp := range bestChain {
		payload = append(payload, mp.payload...)
		chainIDs = append(chainIDs, mp.id)
	}

	t := New(pool, cfg)
	t.gen = best
	t.manifest = chainIDs
	used := make(map[storage.PageID]bool)
	for _, id := range chainIDs {
		used[id] = true
	}
	if err := t.decodeManifest(payload, used); err != nil {
		return nil, err
	}
	// Re-read every run to rebuild fences and filters, validating as we go.
	for _, lv := range t.levels {
		for _, r := range lv {
			if err := t.rebuildRun(r); err != nil {
				return nil, err
			}
		}
	}
	// Orphan GC: anything alive that neither the manifest nor keep owns.
	for _, id := range live {
		if used[id] || (keep != nil && keep(id)) {
			continue
		}
		if err := pool.FreePage(id); err != nil {
			return nil, fmt.Errorf("lsm: recovery GC of orphan page %d: %w", id, err)
		}
	}
	return t, nil
}

// assembleChain orders one generation's pages 0..total-1, rejecting gaps,
// duplicates, and inconsistent totals.
func assembleChain(pages []manifestPage) ([]manifestPage, bool) {
	if len(pages) == 0 {
		return nil, false
	}
	total := pages[0].total
	if int(total) != len(pages) {
		return nil, false
	}
	out := make([]manifestPage, total)
	seen := make([]bool, total)
	for _, mp := range pages {
		if mp.total != total || mp.index >= total || seen[mp.index] {
			return nil, false
		}
		seen[mp.index] = true
		out[mp.index] = mp
	}
	return out, true
}

// decodeManifest parses payload into t.levels and t.count, marking every
// referenced run page in used.
func (t *Tree) decodeManifest(payload []byte, used map[storage.PageID]bool) error {
	off := 0
	fail := func() error { return fmt.Errorf("lsm: manifest payload truncated at byte %d", off) }
	u32 := func() (uint32, bool) {
		if off+4 > len(payload) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(payload[off:])
		off += 4
		return v, true
	}
	u64 := func() (uint64, bool) {
		if off+8 > len(payload) {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(payload[off:])
		off += 8
		return v, true
	}
	count, ok := u64()
	if !ok {
		return fail()
	}
	t.count = int(count)
	nLevels, ok := u32()
	if !ok {
		return fail()
	}
	t.levels = make([][]*run, nLevels)
	for li := range t.levels {
		nRuns, ok := u32()
		if !ok {
			return fail()
		}
		for ri := uint32(0); ri < nRuns; ri++ {
			r := &run{}
			var rc, np uint32
			if r.first, ok = u64(); !ok {
				return fail()
			}
			if r.last, ok = u64(); !ok {
				return fail()
			}
			if rc, ok = u32(); !ok {
				return fail()
			}
			if np, ok = u32(); !ok {
				return fail()
			}
			r.count = int(rc)
			for pi := uint32(0); pi < np; pi++ {
				pid, ok := u32()
				if !ok {
					return fail()
				}
				if used[storage.PageID(pid)] {
					return fmt.Errorf("lsm: manifest references page %d twice", pid)
				}
				used[storage.PageID(pid)] = true
				r.pages = append(r.pages, storage.PageID(pid))
			}
			t.levels[li] = append(t.levels[li], r)
		}
	}
	if off != len(payload) {
		return fmt.Errorf("lsm: %d trailing bytes in manifest payload", len(payload)-off)
	}
	return nil
}

// rebuildRun re-reads a recovered run's pages, validating record counts and
// key order and reconstructing the fences and Bloom filter the manifest
// does not store.
func (t *Tree) rebuildRun(r *run) error {
	if r.count == 0 {
		if len(r.pages) != 0 {
			return fmt.Errorf("lsm: empty run with %d pages", len(r.pages))
		}
		return nil
	}
	if t.cfg.BloomBitsPerKey > 0 {
		r.filter = bloom.NewFilter(r.count, t.cfg.BloomBitsPerKey, t.meter)
	}
	seen := 0
	var prev core.Key
	for _, pid := range r.pages {
		f, err := t.pool.Fetch(pid)
		if err != nil {
			return fmt.Errorf("lsm: recovery read of run page %d: %w", pid, err)
		}
		data := f.Data()
		n := int(binary.LittleEndian.Uint32(data[0:4]))
		if n <= 0 || n > t.perPage() {
			t.pool.Release(f)
			return fmt.Errorf("lsm: run page %d has impossible record count %d", pid, n)
		}
		r.fences = append(r.fences, binary.LittleEndian.Uint64(data[pageHeader:]))
		for j := 0; j < n; j++ {
			rec := core.DecodeRecord(data[pageHeader+j*core.RecordSize:])
			if seen > 0 && rec.Key <= prev {
				t.pool.Release(f)
				return fmt.Errorf("lsm: run page %d breaks key order at %d", pid, rec.Key)
			}
			prev = rec.Key
			seen++
			if r.filter != nil {
				r.filter.Add(rec.Key)
			}
		}
		t.pool.Release(f)
	}
	if seen != r.count {
		return fmt.Errorf("lsm: run holds %d records, manifest says %d", seen, r.count)
	}
	if r.fences[0] != r.first || prev != r.last {
		return fmt.Errorf("lsm: run key range [%d,%d] disagrees with manifest [%d,%d]", r.fences[0], prev, r.first, r.last)
	}
	return nil
}

// newMemtable builds the volatile memtable New and Recover share.
func newMemtable(meter *rum.Meter) *skiplist.List {
	return skiplist.New(42, 0.5, meter)
}
