// Package lsm implements a log-structured merge tree (O'Neil et al., Acta
// Informatica 1996), the canonical write-optimized differential structure at
// the left corner of Figure 1: updates are absorbed in a memtable and
// consolidated into sorted runs by merging, so one logical write costs far
// less than an in-place page update — at the price of reads that must
// consult multiple runs and of space held by not-yet-merged duplicates.
//
// The tree is the paper's Section-5 showcase of tunability:
//
//   - the size ratio T moves it between write-optimized (large T, tiering)
//     and read-optimized (small T, leveling) — "changing the number of merge
//     trees dynamically, the depth of the merge hierarchy and the frequency
//     of merging";
//   - per-run Bloom filters and fence pointers are "iterative logs enhanced
//     by probabilistic data structures that allow for more efficient reads
//     … at the expense of additional space".
//
// Semantics: the LSM performs *blind* writes, its defining property.
// Insert never returns ErrKeyExists (a uniqueness check would cost a read
// and forfeit the structure's advantage); Update and Delete return true
// unconditionally and apply to whatever version exists. Len relies on the
// caller inserting fresh keys and deleting live ones, as the workload
// generator guarantees.
package lsm

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/bloom"
	"repro/internal/core"
	"repro/internal/rum"
	"repro/internal/skiplist"
	"repro/internal/storage"
)

// Tombstone is the reserved value marking a deleted key inside runs and the
// memtable. User values must not equal Tombstone.
const Tombstone = ^core.Value(0)

// Run page layout: bytes 0:4 record count, records of 16 bytes from byte 8.
const (
	pageHeader = 8
	fenceSize  = 12 // first key (8) + page index (4), accounted per probe
)

// Config tunes the tree.
type Config struct {
	// MemtableRecords is the flush threshold (default 1024).
	MemtableRecords int
	// SizeRatio is T, the capacity ratio between adjacent levels (default 10).
	SizeRatio int
	// Tiering selects tiering compaction (up to T runs per level) instead of
	// the default leveling (one run per level).
	Tiering bool
	// BloomBitsPerKey sizes the per-run Bloom filters; 0 disables them.
	BloomBitsPerKey float64
	// Manifest enables crash recovery (the faults.DurableToFlush
	// contract): every fully-successful Flush checkpoints the run
	// directory to checksummed manifest pages on the device, Recover
	// rebuilds the tree from the newest complete checkpoint, and pages
	// freed by compaction are quarantined until the next checkpoint so a
	// committed manifest never references reused pages. Off by default:
	// the checkpoint writes are extra device traffic the paper's Table-1
	// accounting does not include (see manifest.go).
	Manifest bool
	// Versions enables MVCC snapshot reads when > 0 (see mvcc.go): Publish
	// freezes the memtable contents plus the immutable run list as an
	// epoch-stamped version, retaining up to Versions of them for lock-free
	// concurrent readers; run pages freed by compaction are held back until
	// no retained version references them. Combining Versions with Manifest
	// is unsupported: epoch reclamation frees pages the committed manifest
	// may still reference, voiding the recovery contract.
	Versions int
}

func (c *Config) defaults() {
	if c.MemtableRecords <= 0 {
		c.MemtableRecords = 1024
	}
	if c.SizeRatio < 2 {
		c.SizeRatio = 10
	}
}

// Stats counts structural events.
type Stats struct {
	Flushes     uint64
	Compactions uint64
	RunsBuilt   uint64
	// ManifestWrites counts committed manifest checkpoints (Config.Manifest).
	ManifestWrites uint64
}

// run is one immutable sorted run stored across device pages.
type run struct {
	pages       []storage.PageID
	fences      []core.Key // first key of each page
	first, last core.Key
	count       int
	filter      *bloom.Filter
}

// Tree is the LSM tree. Not safe for concurrent use.
type Tree struct {
	pool   *storage.BufferPool
	cfg    Config
	mem    *skiplist.List
	levels [][]*run // levels[i]: runs, newest last
	count  int
	stats  Stats
	meter  *rum.Meter

	// Manifest state (Config.Manifest; see manifest.go).
	gen         uint64           // generation of the committed manifest
	manifest    []storage.PageID // pages of the committed manifest chain
	pendingFree []storage.PageID // run pages quarantined until next commit

	// MVCC state (unused when cfg.Versions == 0; see mvcc.go).
	epoch    uint64        // current write epoch, starts at 1
	versions []*version    // retained published versions, oldest first
	pinned   []*version    // out-of-window versions still referenced
	retired  []retiredPage // compacted-away pages awaiting reclamation
}

// New creates an empty tree on pool.
func New(pool *storage.BufferPool, cfg Config) *Tree {
	cfg.defaults()
	meter := pool.Device().Meter()
	t := &Tree{
		pool:  pool,
		cfg:   cfg,
		mem:   newMemtable(meter),
		meter: meter,
	}
	if t.mvccOn() {
		t.epoch = 1
	}
	return t
}

// Name identifies the tree and its shape.
func (t *Tree) Name() string {
	mode := "level"
	if t.cfg.Tiering {
		mode = "tier"
	}
	return fmt.Sprintf("lsm(T=%d,%s,bloom=%g)", t.cfg.SizeRatio, mode, t.cfg.BloomBitsPerKey)
}

// Len returns the live record estimate (see the package comment on blind
// writes).
func (t *Tree) Len() int { return t.count }

// Stats returns structural counters.
func (t *Tree) Stats() Stats { return t.stats }

// Pool returns the buffer pool the tree runs on.
func (t *Tree) Pool() *storage.BufferPool { return t.pool }

// Meter returns the shared RUM accounting.
func (t *Tree) Meter() *rum.Meter { return t.meter }

// Depth returns the number of materialized levels.
func (t *Tree) Depth() int { return len(t.levels) }

// Runs returns the total number of on-device runs.
func (t *Tree) Runs() int {
	n := 0
	for _, lv := range t.levels {
		n += len(lv)
	}
	return n
}

// Size reports live records as base bytes; run-page slack, shadowed
// duplicates, tombstones, fences, filters, and the memtable towers as
// auxiliary bytes.
func (t *Tree) Size() rum.SizeInfo {
	pageBytes := uint64(0)
	auxMeta := uint64(0)
	for _, lv := range t.levels {
		for _, r := range lv {
			pageBytes += uint64(len(r.pages)) * uint64(t.pool.Device().PageSize())
			auxMeta += uint64(len(r.fences)) * fenceSize
			if r.filter != nil {
				auxMeta += r.filter.SizeBytes()
			}
		}
	}
	memSize := t.mem.Size()
	total := pageBytes + auxMeta + memSize.BaseBytes + memSize.AuxBytes
	total += t.retainedBytes()
	base := uint64(t.count) * core.RecordSize
	if base > total {
		base = total
	}
	return rum.SizeInfo{BaseBytes: base, AuxBytes: total - base}
}

// Flush drains the memtable into a run and writes all dirty pages. With
// Config.Manifest, a flush that leaves zero dirty frames additionally
// commits a manifest checkpoint — the durability point the recovery
// contract is defined against; a flush cut short by device faults leaves
// the previous checkpoint authoritative.
func (t *Tree) Flush() {
	t.flushMemtable()
	t.pool.FlushAll()
	if t.cfg.Manifest && t.pool.DirtyCount() == 0 {
		_ = t.writeManifest()
	}
}

// Insert blind-writes the record into the memtable.
func (t *Tree) Insert(k core.Key, v core.Value) error {
	if v == Tombstone {
		return fmt.Errorf("lsm: value %d is the reserved tombstone", v)
	}
	t.put(k, v)
	t.count++
	return nil
}

// Update blind-writes the new version; it returns true unconditionally (see
// the package comment).
func (t *Tree) Update(k core.Key, v core.Value) bool {
	if v == Tombstone {
		return false
	}
	t.put(k, v)
	return true
}

// Delete blind-writes a tombstone; it returns true unconditionally (see the
// package comment).
func (t *Tree) Delete(k core.Key) bool {
	t.put(k, Tombstone)
	if t.count > 0 {
		t.count--
	}
	return true
}

func (t *Tree) put(k core.Key, v core.Value) {
	t.mem.Put(k, v)
	if t.mem.Len() >= t.cfg.MemtableRecords {
		t.flushMemtable()
	}
}

// Get consults the memtable, then runs from newest to oldest, stopping at
// the first version found. Bloom filters and fences prune runs before any
// page is read.
func (t *Tree) Get(k core.Key) (core.Value, bool) {
	if v, ok := t.mem.Get(k); ok {
		if v == Tombstone {
			return 0, false
		}
		return v, true
	}
	for _, lv := range t.levels {
		for i := len(lv) - 1; i >= 0; i-- { // newest run last
			r := lv[i]
			v, status := t.searchRun(r, k)
			if status == foundValue {
				return v, true
			}
			if status == foundTombstone {
				return 0, false
			}
		}
	}
	return 0, false
}

type searchStatus int

const (
	notFound searchStatus = iota
	foundValue
	foundTombstone
)

func (t *Tree) searchRun(r *run, k core.Key) (core.Value, searchStatus) {
	if r.count == 0 || k < r.first || k > r.last {
		t.meter.CountRead(rum.Aux, 16) // min/max fence check
		return 0, notFound
	}
	if r.filter != nil && !r.filter.MayContain(k) {
		return 0, notFound
	}
	// Binary search the fences for the page that covers k.
	probes := 0
	pi := sort.Search(len(r.fences), func(i int) bool {
		probes++
		return r.fences[i] > k
	}) - 1
	t.meter.CountRead(rum.Aux, probes*fenceSize)
	if pi < 0 {
		pi = 0
	}
	f, err := t.pool.Fetch(r.pages[pi])
	if err != nil {
		return 0, notFound
	}
	defer t.pool.Release(f)
	data := f.Data()
	n := int(binary.LittleEndian.Uint32(data[0:4]))
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if binary.LittleEndian.Uint64(data[pageHeader+mid*core.RecordSize:]) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < n {
		off := pageHeader + lo*core.RecordSize
		if binary.LittleEndian.Uint64(data[off:]) == k {
			v := binary.LittleEndian.Uint64(data[off+8:])
			if v == Tombstone {
				return 0, foundTombstone
			}
			return v, foundValue
		}
	}
	return 0, notFound
}

// perPage returns records per run page.
func (t *Tree) perPage() int {
	return (t.pool.Device().PageSize() - pageHeader) / core.RecordSize
}

// buildRun writes the sorted records into fresh pages and returns the run.
func (t *Tree) buildRun(recs []core.Record) (*run, error) {
	r := &run{count: len(recs)}
	if len(recs) == 0 {
		return r, nil
	}
	r.first = recs[0].Key
	r.last = recs[len(recs)-1].Key
	if t.cfg.BloomBitsPerKey > 0 {
		r.filter = bloom.NewFilter(len(recs), t.cfg.BloomBitsPerKey, t.meter)
	}
	per := t.perPage()
	for start := 0; start < len(recs); start += per {
		end := start + per
		if end > len(recs) {
			end = len(recs)
		}
		f, err := t.pool.NewPage(rum.Base)
		if err != nil {
			return nil, err
		}
		data := f.Data()
		binary.LittleEndian.PutUint32(data[0:4], uint32(end-start))
		for j, rec := range recs[start:end] {
			core.EncodeRecord(data[pageHeader+j*core.RecordSize:], rec)
		}
		f.MarkDirty()
		r.pages = append(r.pages, f.ID())
		r.fences = append(r.fences, recs[start].Key)
		t.pool.Release(f)
	}
	if r.filter != nil {
		for _, rec := range recs {
			r.filter.Add(rec.Key)
		}
	}
	t.stats.RunsBuilt++
	return r, nil
}

// readRun reads every record of a run in order, charging page reads. On a
// multi-queue device the run is streamed through the pool's readahead
// window: each IOBatch-sized chunk of run pages is prefetched as one deep
// batch submission, so sequential run scans (compaction inputs, range
// merges) pay the amortized batch cost instead of depth-1 reads. On flat
// media Readahead is a no-op and the loop below is exactly the old path.
func (t *Tree) readRun(r *run) ([]core.Record, error) {
	recs := make([]core.Record, 0, r.count)
	ra, next := t.pool.IOBatch(), 0
	for i, pid := range r.pages {
		if ra > 1 && i == next {
			end := i + ra
			if end > len(r.pages) {
				end = len(r.pages)
			}
			// Advance the window by what the pool actually covered (it clamps
			// a prefetch to half its capacity); already-cached pages are
			// skipped by Readahead, so a short answer just re-arms sooner.
			next = i + t.pool.Readahead(r.pages[i:end])
			if next <= i {
				next = i + 1
			}
		}
		f, err := t.pool.Fetch(pid)
		if err != nil {
			return nil, err
		}
		data := f.Data()
		n := int(binary.LittleEndian.Uint32(data[0:4]))
		for j := 0; j < n; j++ {
			recs = append(recs, core.DecodeRecord(data[pageHeader+j*core.RecordSize:]))
		}
		t.pool.Release(f)
	}
	return recs, nil
}

// freeRun releases a run's pages. Under Config.Versions the pages are
// retired to the reclamation queue instead: a published version's run list
// may still reference them, so they are only freed once the reclamation
// epoch passes them (trimAndReclaim). Under Config.Manifest they are
// quarantined until the next checkpoint commits (writeManifest).
func (t *Tree) freeRun(r *run) {
	if t.mvccOn() {
		for _, pid := range r.pages {
			t.retired = append(t.retired, retiredPage{pid: pid, epoch: t.epoch})
		}
		return
	}
	if t.cfg.Manifest {
		t.pendingFree = append(t.pendingFree, r.pages...)
		return
	}
	for _, pid := range r.pages {
		_ = t.pool.FreePage(pid)
	}
}

// mergeRecs merges sources ordered oldest to newest: the newest version of
// each key wins. When dropTombs is true (merging into the bottom of the
// tree) tombstones are discarded.
func mergeRecs(sources [][]core.Record, dropTombs bool) []core.Record {
	latest := make(map[core.Key]core.Value)
	total := 0
	for _, src := range sources {
		total += len(src)
		for _, rec := range src {
			latest[rec.Key] = rec.Value
		}
	}
	out := make([]core.Record, 0, len(latest))
	for k, v := range latest {
		if dropTombs && v == Tombstone {
			continue
		}
		out = append(out, core.Record{Key: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// flushMemtable turns the memtable into a level-0 run and triggers
// compaction as capacities overflow.
func (t *Tree) flushMemtable() {
	if t.mem.Len() == 0 {
		return
	}
	recs := make([]core.Record, 0, t.mem.Len())
	t.mem.Ascend(0, func(k core.Key, v core.Value) bool {
		recs = append(recs, core.Record{Key: k, Value: v})
		return true
	})
	// Draining the memtable reads it once.
	t.meter.CountRead(rum.Base, len(recs)*core.RecordSize)
	t.mem.Reset()
	r, err := t.buildRun(recs)
	if err != nil {
		return
	}
	if len(t.levels) == 0 {
		t.levels = append(t.levels, nil)
	}
	t.levels[0] = append(t.levels[0], r)
	t.stats.Flushes++
	t.compact()
}

// levelCapacityRuns is the run-count trigger per level: tiering compacts a
// level once it accumulates T runs; leveling once it has more than one.
func (t *Tree) levelCapacityRuns() int {
	if t.cfg.Tiering {
		return t.cfg.SizeRatio
	}
	return 1
}

// levelCapacityRecords is the record capacity of a leveled level i:
// memtable · T^(i+1).
func (t *Tree) levelCapacityRecords(i int) int {
	c := float64(t.cfg.MemtableRecords) * math.Pow(float64(t.cfg.SizeRatio), float64(i+1))
	if c > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(c)
}

// compact restores the level invariants after a flush.
func (t *Tree) compact() {
	for i := 0; i < len(t.levels); i++ {
		if !t.needsCompaction(i) {
			continue
		}
		t.compactLevel(i)
	}
}

func (t *Tree) needsCompaction(i int) bool {
	lv := t.levels[i]
	if len(lv) == 0 {
		return false
	}
	if t.cfg.Tiering {
		return len(lv) >= t.levelCapacityRuns()
	}
	// Leveling: multiple runs always merge; a single run spills when over
	// capacity.
	if len(lv) > 1 {
		return true
	}
	return lv[0].count > t.levelCapacityRecords(i)
}

// readRuns drains the given runs (oldest first) into record sources.
func (t *Tree) readRuns(runs []*run) ([][]core.Record, bool) {
	sources := make([][]core.Record, 0, len(runs))
	for _, r := range runs {
		recs, err := t.readRun(r)
		if err != nil {
			return nil, false
		}
		sources = append(sources, recs)
	}
	return sources, true
}

// compactLevel restores level i's invariant. Under tiering, its runs merge
// into one run appended to level i+1 (lazy: level i+1 keeps accumulating
// runs). Under leveling, runs first consolidate within level i; once the
// level exceeds its record capacity they merge with level i+1's run and the
// result replaces it (eager: one run per level).
func (t *Tree) compactLevel(i int) {
	if t.cfg.Tiering {
		sources, ok := t.readRuns(t.levels[i])
		if !ok {
			return
		}
		if i+1 >= len(t.levels) {
			t.levels = append(t.levels, nil)
		}
		out, err := t.buildRun(mergeRecs(sources, t.isBottom(i+1)))
		if err != nil {
			return
		}
		for _, r := range t.levels[i] {
			t.freeRun(r)
		}
		t.levels[i] = nil
		t.levels[i+1] = append(t.levels[i+1], out)
		t.stats.Compactions++
		return
	}

	// Leveling.
	total := 0
	for _, r := range t.levels[i] {
		total += r.count
	}
	if total <= t.levelCapacityRecords(i) {
		// Consolidate within the level.
		if len(t.levels[i]) <= 1 {
			return
		}
		sources, ok := t.readRuns(t.levels[i])
		if !ok {
			return
		}
		out, err := t.buildRun(mergeRecs(sources, t.isBottom(i)))
		if err != nil {
			return
		}
		for _, r := range t.levels[i] {
			t.freeRun(r)
		}
		t.levels[i] = []*run{out}
		t.stats.Compactions++
		return
	}

	// Spill into the next level.
	if i+1 >= len(t.levels) {
		t.levels = append(t.levels, nil)
	}
	victims := append(append([]*run(nil), t.levels[i+1]...), t.levels[i]...)
	sources, ok := t.readRuns(victims)
	if !ok {
		return
	}
	out, err := t.buildRun(mergeRecs(sources, t.isBottom(i+1)))
	if err != nil {
		return
	}
	for _, r := range victims {
		t.freeRun(r)
	}
	t.levels[i] = nil
	t.levels[i+1] = []*run{out}
	t.stats.Compactions++
}

// isBottom reports whether no level below i holds data.
func (t *Tree) isBottom(i int) bool {
	for j := i + 1; j < len(t.levels); j++ {
		if len(t.levels[j]) > 0 {
			return false
		}
	}
	return true
}

// RangeScan merges the memtable and every overlapping run, emitting live
// records in ascending key order.
func (t *Tree) RangeScan(lo, hi core.Key, emit func(core.Key, core.Value) bool) int {
	latest := make(map[core.Key]core.Value)
	// Oldest to newest so newer versions overwrite.
	for i := len(t.levels) - 1; i >= 0; i-- {
		for _, r := range t.levels[i] {
			t.scanRunInto(r, lo, hi, latest)
		}
	}
	memScanned := 0
	t.mem.Ascend(lo, func(k core.Key, v core.Value) bool {
		if k > hi {
			return false
		}
		memScanned++
		latest[k] = v
		return true
	})
	t.meter.CountRead(rum.Base, memScanned*core.RecordSize)

	keys := make([]core.Key, 0, len(latest))
	for k, v := range latest {
		if v == Tombstone {
			continue
		}
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	emitted := 0
	for _, k := range keys {
		emitted++
		if !emit(k, latest[k]) {
			break
		}
	}
	return emitted
}

// scanRunInto reads the pages of r overlapping [lo, hi] and merges their
// records into latest.
func (t *Tree) scanRunInto(r *run, lo, hi core.Key, latest map[core.Key]core.Value) {
	if r.count == 0 || hi < r.first || lo > r.last {
		t.meter.CountRead(rum.Aux, 16)
		return
	}
	start := sort.Search(len(r.fences), func(i int) bool { return r.fences[i] > lo }) - 1
	if start < 0 {
		start = 0
	}
	t.meter.CountRead(rum.Aux, 16) // fence probe, flat charge
	for pi := start; pi < len(r.pages); pi++ {
		if pi > start && r.fences[pi] > hi {
			break
		}
		f, err := t.pool.Fetch(r.pages[pi])
		if err != nil {
			return
		}
		data := f.Data()
		n := int(binary.LittleEndian.Uint32(data[0:4]))
		for j := 0; j < n; j++ {
			rec := core.DecodeRecord(data[pageHeader+j*core.RecordSize:])
			if rec.Key >= lo && rec.Key <= hi {
				latest[rec.Key] = rec.Value
			}
		}
		t.pool.Release(f)
	}
}

// BulkLoad replaces the contents with the key-sorted recs as a single
// bottom-level run.
func (t *Tree) BulkLoad(recs []core.Record) error {
	t.mem.Reset()
	for _, lv := range t.levels {
		for _, r := range lv {
			t.freeRun(r)
		}
	}
	t.levels = nil
	t.count = 0
	// Place the run at the level whose capacity fits it.
	lvl := 0
	for t.levelCapacityRecords(lvl) < len(recs) {
		lvl++
	}
	r, err := t.buildRun(recs)
	if err != nil {
		return err
	}
	t.levels = make([][]*run, lvl+1)
	t.levels[lvl] = []*run{r}
	t.count = len(recs)
	return nil
}

// Knobs exposes the tunable parameters (core.Tunable).
func (t *Tree) Knobs() []core.Knob {
	tier := 0.0
	if t.cfg.Tiering {
		tier = 1
	}
	knobs := []core.Knob{
		{
			Name: "size_ratio", Min: 2, Max: 32, Current: float64(t.cfg.SizeRatio),
			Doc: "level size ratio T; larger = fewer levels (lower RO) but bigger merges (higher UO under leveling)",
		},
		{
			Name: "bloom_bits", Min: 0, Max: 20, Current: t.cfg.BloomBitsPerKey,
			Doc: "bloom bits per key per run; more bits = fewer wasted run probes (lower RO) at more memory (higher MO)",
		},
		{
			Name: "memtable_records", Min: 64, Max: 1 << 20, Current: float64(t.cfg.MemtableRecords),
			Doc: "memtable flush threshold; larger = fewer flushes (lower UO) at more buffered memory (higher MO)",
		},
		{
			Name: "tiering", Min: 0, Max: 1, Current: tier,
			Doc: "1 = tiering (write-optimized: lazy merges, more runs), 0 = leveling (read-optimized: eager merges, one run per level)",
		},
	}
	if t.mvccOn() {
		knobs = append(knobs, core.Knob{
			Name: "versions", Min: 1, Max: 64, Current: float64(t.cfg.Versions),
			Doc: "published MVCC versions retained; more = longer snapshot lifetimes for concurrent readers at higher MO (retired run pages pinned)",
		})
	}
	return knobs
}

// SetKnob adjusts a tuning parameter (core.Tunable); it takes effect on
// subsequent flushes and compactions.
func (t *Tree) SetKnob(name string, value float64) error {
	switch name {
	case "size_ratio":
		if value < 2 {
			return fmt.Errorf("lsm: size_ratio must be >= 2")
		}
		t.cfg.SizeRatio = int(value)
	case "bloom_bits":
		if value < 0 {
			return fmt.Errorf("lsm: bloom_bits must be >= 0")
		}
		t.cfg.BloomBitsPerKey = value
	case "memtable_records":
		if value < 1 {
			return fmt.Errorf("lsm: memtable_records must be >= 1")
		}
		t.cfg.MemtableRecords = int(value)
	case "tiering":
		t.cfg.Tiering = value >= 0.5
	case "versions":
		if !t.mvccOn() {
			return fmt.Errorf("lsm: versions knob requires a tree built with Config.Versions > 0")
		}
		if int(value) < 1 {
			return fmt.Errorf("lsm: versions must be >= 1")
		}
		t.cfg.Versions = int(value)
		t.trimAndReclaim()
	default:
		return fmt.Errorf("lsm: unknown knob %q", name)
	}
	return nil
}
