package obs

import (
	"testing"
	"time"
)

func TestLatencyHistogram(t *testing.T) {
	h := NewLatencyHistogram()
	for _, d := range []time.Duration{3 * time.Microsecond, 5 * time.Microsecond, 120 * time.Microsecond, -time.Second} {
		h.RecordDuration(d)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	// 3µs and 5µs land in the 4096ns and 8192ns buckets; the median reports
	// the upper bound of its bucket (HDR semantics).
	if got := h.QuantileDuration(0.5); got != 4096*time.Nanosecond {
		t.Fatalf("p50 = %v, want 4.096µs", got)
	}
	if got := h.QuantileDuration(0.99); got < 120*time.Microsecond || got > 256*time.Microsecond {
		t.Fatalf("p99 = %v, want within one bucket above 120µs", got)
	}
}

func TestLatencyHistogramMergeAndSaturation(t *testing.T) {
	a, b := NewLatencyHistogram(), NewLatencyHistogram()
	a.RecordDuration(time.Millisecond)
	b.RecordDuration(time.Hour) // beyond the last bucket
	a.Merge(b)
	if a.Count() != 2 {
		t.Fatalf("merged Count = %d, want 2", a.Count())
	}
	if got := a.QuantileDuration(1.0); got != time.Duration(1)<<(latencyBuckets-1) {
		t.Fatalf("saturated quantile = %v, want top bucket bound", got)
	}
}
