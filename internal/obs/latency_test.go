package obs

import (
	"testing"
	"time"
)

func TestLatencyHistogram(t *testing.T) {
	h := NewLatencyHistogram()
	for _, d := range []time.Duration{3 * time.Microsecond, 5 * time.Microsecond, 120 * time.Microsecond, -time.Second} {
		h.RecordDuration(d)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	// 3µs and 5µs land in the 4096ns and 8192ns buckets; the median reports
	// the upper bound of its bucket (HDR semantics).
	if got := h.QuantileDuration(0.5); got != 4096*time.Nanosecond {
		t.Fatalf("p50 = %v, want 4.096µs", got)
	}
	if got := h.QuantileDuration(0.99); got < 120*time.Microsecond || got > 256*time.Microsecond {
		t.Fatalf("p99 = %v, want within one bucket above 120µs", got)
	}
}

// TestLatencyMergeBracketsQuantiles merges per-client histograms the way the
// serving layer does and checks the invariant live dashboards rely on: every
// quantile of the merged distribution lies within [min, max] of the
// per-client quantiles at the same q.
func TestLatencyMergeBracketsQuantiles(t *testing.T) {
	clients := []*Histogram{NewLatencyHistogram(), NewLatencyHistogram(), NewLatencyHistogram()}
	// Three deliberately skewed clients: fast, slow, bimodal.
	for i := 0; i < 100; i++ {
		clients[0].RecordDuration(2 * time.Microsecond)
		clients[1].RecordDuration(500 * time.Microsecond)
		if i%2 == 0 {
			clients[2].RecordDuration(4 * time.Microsecond)
		} else {
			clients[2].RecordDuration(2 * time.Millisecond)
		}
	}
	merged := NewLatencyHistogram()
	var total uint64
	for _, c := range clients {
		merged.Merge(c)
		total += c.Count()
	}
	if merged.Count() != total {
		t.Fatalf("merged Count = %d, want %d", merged.Count(), total)
	}
	for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.99, 1.0} {
		lo, hi := time.Duration(1)<<62, time.Duration(0)
		for _, c := range clients {
			d := c.QuantileDuration(q)
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		if got := merged.QuantileDuration(q); got < lo || got > hi {
			t.Errorf("merged q=%g = %v outside per-client bracket [%v, %v]", q, got, lo, hi)
		}
	}
}

// TestQuantileDurationEdges pins the contract at the edges: an empty
// histogram yields zero at every q, q=0 reports the smallest occupied
// bucket's bound, q=1 the largest.
func TestQuantileDurationEdges(t *testing.T) {
	empty := NewLatencyHistogram()
	for _, q := range []float64{0, 0.5, 1} {
		if got := empty.QuantileDuration(q); got != 0 {
			t.Errorf("empty histogram q=%g = %v, want 0", q, got)
		}
	}
	h := NewLatencyHistogram()
	h.RecordDuration(3 * time.Microsecond)   // 4096ns bucket
	h.RecordDuration(100 * time.Microsecond) // 131072ns bucket
	if got := h.QuantileDuration(0); got != 4096*time.Nanosecond {
		t.Errorf("q=0 = %v, want smallest occupied bound 4.096µs", got)
	}
	if got := h.QuantileDuration(1); got != 131072*time.Nanosecond {
		t.Errorf("q=1 = %v, want largest occupied bound 131.072µs", got)
	}
	if got, want := h.QuantileDuration(0), h.QuantileDuration(0.0001); got != want {
		t.Errorf("q=0 (%v) and q→0 (%v) disagree", got, want)
	}
}

func TestLatencyHistogramMergeAndSaturation(t *testing.T) {
	a, b := NewLatencyHistogram(), NewLatencyHistogram()
	a.RecordDuration(time.Millisecond)
	b.RecordDuration(time.Hour) // beyond the last bucket
	a.Merge(b)
	if a.Count() != 2 {
		t.Fatalf("merged Count = %d, want 2", a.Count())
	}
	if got := a.QuantileDuration(1.0); got != time.Duration(1)<<(latencyBuckets-1) {
		t.Fatalf("saturated quantile = %v, want top bucket bound", got)
	}
}
