package obs_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"unicode/utf8"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/methods"
	"repro/internal/obs"
	"repro/internal/rum"
	"repro/internal/storage"
	"repro/internal/workload"
)

// runTraced profiles a pool-backed B+-tree with an attached observer: the
// observer receives both storage events (via Options.Hook) and operation
// spans (via Target), exactly as cmd/rumbench wires it.
func runTraced(t testing.TB, cfg obs.Config, n, ops int) (*obs.Observer, *core.Instrumented) {
	t.Helper()
	o := obs.New(cfg)
	opt := methods.Options{PageSize: 512, PoolPages: 4, Hook: o}
	am := methods.NewBTree(opt, btree.Config{})
	o.Target(am, "btree")
	gen := workload.New(workload.Config{
		Seed:       7,
		Mix:        workload.Balanced,
		InitialLen: n,
		RangeLen:   1 << 30,
	})
	if _, err := core.RunProfile(am, gen, ops); err != nil {
		t.Fatal(err)
	}
	return o, am
}

// TestSpanConservation is the acceptance invariant of the tracing layer:
// summing the per-span meter deltas reconstructs the structure's final meter
// exactly, no physical traffic escapes span attribution, and span byte
// counts agree with span page counts at page granularity.
func TestSpanConservation(t *testing.T) {
	o, am := runTraced(t, obs.Config{SampleEvery: 64}, 300, 600)

	final := am.Meter().Snapshot()
	if traced := o.TracedMeter(); traced != final {
		t.Fatalf("span deltas do not sum to meter totals:\n traced %+v\n final  %+v", traced, final)
	}

	// Re-sum from the exported JSONL, proving the trace file itself is
	// conservative, not just the in-memory accumulator.
	var buf bytes.Buffer
	if err := o.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var sum rum.Meter
	var pages obs.PageCounts
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		lines++
		var s obs.SpanJSON
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		sum.BaseRead += s.BaseRead
		sum.AuxRead += s.AuxRead
		sum.BaseWritten += s.BaseWritten
		sum.AuxWritten += s.AuxWritten
		sum.LogicalRead += s.LogicalRead
		sum.LogicalWritten += s.LogicalWritten
		pages.BaseReads += s.PageReadsBase
		pages.AuxReads += s.PageReadsAux
		pages.BaseWrites += s.PageWritesBase
		pages.AuxWrites += s.PageWritesAux
		pages.Hits += s.PoolHits
		pages.Misses += s.PoolMisses
		pages.Cost += s.CostUnits

		// Pool-backed structures move whole pages: bytes must equal pages
		// at page granularity, span by span.
		if s.BaseRead != s.PageReadsBase*512 || s.AuxRead != s.PageReadsAux*512 {
			t.Fatalf("span %d: read bytes %d/%d disagree with %d/%d pages of 512",
				s.Seq, s.BaseRead, s.AuxRead, s.PageReadsBase, s.PageReadsAux)
		}
		if s.BaseWritten != s.PageWritesBase*512 || s.AuxWritten != s.PageWritesAux*512 {
			t.Fatalf("span %d: written bytes disagree with page counts", s.Seq)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 || lines != len(o.Spans()) {
		t.Fatalf("trace lines %d, spans %d", lines, len(o.Spans()))
	}
	if sum.BaseRead != final.BaseRead || sum.AuxRead != final.AuxRead ||
		sum.BaseWritten != final.BaseWritten || sum.AuxWritten != final.AuxWritten ||
		sum.LogicalRead != final.LogicalRead || sum.LogicalWritten != final.LogicalWritten {
		t.Fatalf("JSONL sums diverge from meter totals:\n sum   %+v\n final %+v", sum, final)
	}

	// Every physical event must have been attributed to some span.
	un := o.Untraced()
	if un.Reads() != 0 || un.Writes() != 0 {
		t.Fatalf("untraced page events: %+v", un)
	}
	tot := o.Totals()
	if pages.Reads() != tot.Reads() || pages.Writes() != tot.Writes() || pages.Cost != tot.Cost {
		t.Fatalf("span page sums %+v diverge from totals %+v", pages, tot)
	}
}

// TestObserverNesting: a BulkLoad that falls back to per-record Inserts must
// produce one outer span absorbing the nested work, so trace totals stay
// conservative without double counting.
func TestObserverNesting(t *testing.T) {
	o := obs.New(obs.Config{SampleEvery: 1 << 20})
	am := core.Instrument(newMemAM())
	o.Target(am, "mem")
	recs := make([]core.Record, 10)
	for i := range recs {
		recs[i] = core.Record{Key: core.Key(i), Value: core.Value(i)}
	}
	if err := am.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	spans := o.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans: %d, want 1 outer bulkload span", len(spans))
	}
	sp := spans[0]
	if sp.Op != core.OpNameBulkLoad {
		t.Fatalf("op: %q", sp.Op)
	}
	// All ten nested inserts' bytes land in the one span.
	if sp.Meter.LogicalWritten != 10*core.RecordSize || sp.Meter.BaseWritten != 10*core.RecordSize {
		t.Fatalf("outer span meter: %+v", sp.Meter)
	}
	if o.TracedMeter() != am.Meter().Snapshot() {
		t.Fatal("nested bulkload broke conservation")
	}
}

// TestUntracedAttribution: meter or device traffic outside any span lands in
// the untraced bucket rather than vanishing or corrupting a span.
func TestUntracedAttribution(t *testing.T) {
	o := obs.New(obs.Config{})
	opt := methods.Options{PageSize: 512, PoolPages: 4, Hook: o}
	pool := methods.NewPool(opt, nil)
	f, err := pool.NewPage(rum.Base)
	if err != nil {
		t.Fatal(err)
	}
	pool.Release(f)
	pool.FlushAll()
	if got := o.Untraced().Writes(); got != 1 {
		t.Fatalf("untraced writes: %d", got)
	}
	if len(o.Spans()) != 0 {
		t.Fatal("spanless traffic created spans")
	}
}

// TestMaxSpansCap: spans past the cap are dropped but keep feeding totals.
func TestMaxSpansCap(t *testing.T) {
	o := obs.New(obs.Config{MaxSpans: 5, SampleEvery: 1 << 20})
	am := core.Instrument(newMemAM())
	o.Target(am, "mem")
	for i := 0; i < 12; i++ {
		if err := am.Insert(core.Key(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	if len(o.Spans()) != 5 {
		t.Fatalf("retained spans: %d", len(o.Spans()))
	}
	if o.Dropped() != 7 {
		t.Fatalf("dropped: %d", o.Dropped())
	}
	if o.TracedMeter() != am.Meter().Snapshot() {
		t.Fatal("dropped spans must still feed the traced totals")
	}
	key := obs.OpKey{Method: "mem", Op: core.OpNameInsert}
	if h := o.Hist(key); h == nil || h.Pages.Count() != 12 {
		t.Fatal("dropped spans must still feed histograms")
	}
	if o.OpCounts()[key] != 12 {
		t.Fatalf("op counts: %v", o.OpCounts())
	}
}

// TestTimeSeriesSampling checks cadence and windowed deltas.
func TestTimeSeriesSampling(t *testing.T) {
	o := obs.New(obs.Config{SampleEvery: 4})
	am := core.Instrument(newMemAM())
	o.Target(am, "mem")
	for i := 0; i < 16; i++ {
		am.Insert(core.Key(i), 1)
	}
	samples := o.Samples()
	// 1 baseline at Target + one per 4 ops.
	if len(samples) != 5 {
		t.Fatalf("samples: %d", len(samples))
	}
	if samples[0].Seq != 0 || samples[0].Cum != (rum.Meter{}) {
		t.Fatalf("baseline sample: %+v", samples[0])
	}
	var winSum rum.Meter
	for _, s := range samples {
		winSum.Add(s.Win)
	}
	if winSum != am.Meter().Snapshot() {
		t.Fatalf("window deltas do not telescope to the cumulative meter: %+v", winSum)
	}
	last := samples[len(samples)-1]
	if last.Seq != 16 || last.Cum.WriteOps != 16 {
		t.Fatalf("last sample: %+v", last)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := obs.NewHistogram(obs.PowerOfTwoBounds(8)) // 1..128
	for v := 1; v <= 100; v++ {
		h.Record(float64(v))
	}
	if h.Count() != 100 {
		t.Fatalf("count: %d", h.Count())
	}
	// The true p50 is 50; the bucket answer is its power-of-two ceiling.
	if q := h.Quantile(0.50); q != 64 {
		t.Fatalf("p50: %g", q)
	}
	if q := h.Quantile(0.99); q != 128 {
		t.Fatalf("p99: %g", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("p0: %g", q)
	}
	if h.Max() != 100 {
		t.Fatalf("max: %g", h.Max())
	}
	if h.Mean() != 50.5 {
		t.Fatalf("mean: %g", h.Mean())
	}
	// Overflow beyond the last bound reports +Inf.
	h.Record(1e9)
	if q := h.Quantile(1); !math.IsInf(q, 1) {
		t.Fatalf("overflow quantile: %g", q)
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 8 || len(cum) != 9 {
		t.Fatalf("bucket shape: %d bounds, %d cumulative", len(bounds), len(cum))
	}
	if cum[len(cum)-1] != h.Count() {
		t.Fatal("+Inf bucket must equal total count")
	}
	// Cumulative counts must be monotone.
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatal("non-monotone cumulative buckets")
		}
	}
	// An empty histogram is quiet.
	e := obs.NewHistogram(obs.PowerOfTwoBounds(4))
	if e.Quantile(0.5) != 0 || e.Mean() != 0 || e.Max() != 0 {
		t.Fatal("empty histogram")
	}
}

func TestSparkline(t *testing.T) {
	s := obs.Sparkline([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 8)
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("width: %d (%q)", utf8.RuneCountInString(s), s)
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Fatalf("monotone ramp should span the full block range: %q", s)
	}
	// Constant series stays at the floor, infinities clamp to the top.
	flat := obs.Sparkline([]float64{3, 3, 3}, 3)
	if flat != "▁▁▁" {
		t.Fatalf("flat: %q", flat)
	}
	inf := []rune(obs.Sparkline([]float64{1, math.Inf(1)}, 2))
	if inf[1] != '█' {
		t.Fatalf("inf: %q", string(inf))
	}
	if got := obs.Sparkline(nil, 4); got != "    " {
		t.Fatalf("empty: %q", got)
	}
	// Resampling: 100 points into 10 columns, still full width.
	long := make([]float64, 100)
	for i := range long {
		long[i] = float64(i % 17)
	}
	if got := obs.Sparkline(long, 10); utf8.RuneCountInString(got) != 10 {
		t.Fatalf("resample width: %q", got)
	}
}

func TestRenderTrajectory(t *testing.T) {
	o, _ := runTraced(t, obs.Config{SampleEvery: 50}, 200, 400)
	out := obs.RenderTrajectory(o.Samples(), 40)
	for _, want := range []string{"— btree", "RO(win)", "UO(win)", "MO"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trajectory missing %q:\n%s", want, out)
		}
	}
	if obs.RenderTrajectory(nil, 40) != "(no samples)\n" {
		t.Fatal("empty trajectory")
	}
}

// memAM is a minimal in-memory AccessMethod for precise span assertions:
// every operation meters exactly one record of physical base traffic.
type memAM struct {
	m    rum.Meter
	data map[core.Key]core.Value
}

func newMemAM() *memAM { return &memAM{data: map[core.Key]core.Value{}} }

func (s *memAM) Name() string { return "mem" }

func (s *memAM) Get(k core.Key) (core.Value, bool) {
	s.m.CountRead(rum.Base, core.RecordSize)
	v, ok := s.data[k]
	return v, ok
}

func (s *memAM) Insert(k core.Key, v core.Value) error {
	s.m.CountWrite(rum.Base, core.RecordSize)
	if _, ok := s.data[k]; ok {
		return core.ErrKeyExists
	}
	s.data[k] = v
	return nil
}

func (s *memAM) Update(k core.Key, v core.Value) bool {
	s.m.CountWrite(rum.Base, core.RecordSize)
	if _, ok := s.data[k]; !ok {
		return false
	}
	s.data[k] = v
	return true
}

func (s *memAM) Delete(k core.Key) bool {
	s.m.CountWrite(rum.Base, core.RecordSize)
	if _, ok := s.data[k]; !ok {
		return false
	}
	delete(s.data, k)
	return true
}

func (s *memAM) RangeScan(lo, hi core.Key, emit func(core.Key, core.Value) bool) int {
	n := 0
	for k, v := range s.data {
		if k >= lo && k <= hi {
			s.m.CountRead(rum.Base, core.RecordSize)
			n++
			if !emit(k, v) {
				break
			}
		}
	}
	return n
}

func (s *memAM) Len() int { return len(s.data) }

func (s *memAM) Meter() *rum.Meter { return &s.m }

func (s *memAM) Size() rum.SizeInfo {
	return rum.SizeInfo{BaseBytes: uint64(len(s.data) * core.RecordSize)}
}

// TestFaultEventAttribution: fault-path storage events (injected faults,
// torn writes, crashes, retries) land in the totals and in the open span's
// page counts — a failed transfer counts no read/write traffic, so these
// counters are its only trace.
func TestFaultEventAttribution(t *testing.T) {
	o := obs.New(obs.Config{SampleEvery: 1 << 20})
	var hook storage.Hook = o // Observer implements storage.Hook
	hook.StorageEvent(storage.EvFault, 1, rum.Base, 0)
	hook.StorageEvent(storage.EvTorn, 2, rum.Base, 20)
	hook.StorageEvent(storage.EvCrash, 3, rum.Aux, 0)
	hook.StorageEvent(storage.EvRetry, 1, rum.Base, 0)
	tot := o.Totals()
	if tot.Faults != 2 || tot.TornWrites != 1 || tot.Crashes != 1 || tot.Retries != 1 {
		t.Fatalf("totals: %+v", tot)
	}
	// No span open: the events are untraced, and they are not page traffic.
	if un := o.Untraced(); un.Faults != 2 || un.Touched() != 0 {
		t.Fatalf("untraced: %+v", un)
	}
	// The metrics exposition carries the fault block.
	var buf bytes.Buffer
	if err := o.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`rum_fault_events_total{event="fault"} 2`,
		`rum_fault_events_total{event="torn"} 1`,
		`rum_fault_events_total{event="crash"} 1`,
		`rum_fault_events_total{event="retry"} 1`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}
