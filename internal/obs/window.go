package obs

import (
	"sync/atomic"
	"time"

	"repro/internal/rum"
)

// This file is the rolling half of the live telemetry plane. The serving
// layer (internal/serve) can be snapshotted without stopping; a Rolling
// ring retains the recent snapshots and derives what cumulative counters
// hide: rolling-window RUM rates (bytes read/written per operation over the
// last W seconds rather than since boot), latency quantile deltas between
// snapshots, and per-shard balance. The cumulative trajectory says where a
// structure has been; the window says what it is doing right now — a
// compaction wave shows up as a UO spike in the window long before it moves
// the cumulative ratio.

// ShardPoint is one shard's ledger at a sampling instant — the live
// equivalent of a serve.ShardReport, kept serve-agnostic so obs does not
// import the serving layer.
type ShardPoint struct {
	Shard int          `json:"shard"`
	Ops   uint64       `json:"ops"`
	Meter rum.Meter    `json:"meter"`
	Size  rum.SizeInfo `json:"size"`
	Len   int          `json:"len"`
	// SnapVersions is the shard's retained MVCC snapshot count at this
	// instant (0 when snapshot serving is off).
	SnapVersions int `json:"snap_versions,omitempty"`
	// WAL is the shard's write-ahead-log ledger at this instant; nil when
	// the shard's structure is not logged.
	WAL *WALPoint `json:"wal,omitempty"`
}

// WALPoint mirrors a write-ahead-logged shard's durability counters
// (wal.Stats plus the committed watermark), kept structure-agnostic the same
// way ShardPoint mirrors serve.ShardReport.
type WALPoint struct {
	// Committed is the records durably group-committed so far — the
	// watermark the DurableToCommit contract promises back after a crash.
	Committed uint64 `json:"committed"`
	// Commits and Syncs count group commits and simulated syncs (one per
	// commit, one per checkpoint record); their ratio to Committed is the
	// group-commit amortization.
	Commits uint64 `json:"commits"`
	Syncs   uint64 `json:"syncs"`
	// Checkpoints counts completed checkpoints (overlay absorbed, inner
	// barrier durable, old log segments recycled).
	Checkpoints uint64 `json:"checkpoints"`
	// LogPagesWritten / LogBytesWritten / PagesRecycled count cumulative
	// appended log traffic and the pages returned after checkpoints.
	LogPagesWritten uint64 `json:"log_pages_written"`
	LogBytesWritten uint64 `json:"log_bytes_written"`
	PagesRecycled   uint64 `json:"pages_recycled"`
	// LiveLogPages and OverlayRecords are the current footprint: log pages
	// not yet recycled and overlay entries not yet absorbed.
	LiveLogPages   int `json:"live_log_pages"`
	OverlayRecords int `json:"overlay_records"`
}

// WindowPoint is one instant of a live system: a timestamp, every shard's
// cumulative ledger, and (optionally) the cumulative latency histogram at
// that instant. Points are immutable once published to a Rolling ring —
// that immutability is what makes the ring's reads lock-free.
type WindowPoint struct {
	At      time.Time
	Shards  []ShardPoint
	Latency *Histogram // cumulative; nil when latency is not tracked
	// Phases is the merged per-shard lifecycle decomposition at this
	// instant (cumulative queue/service/batch histograms and exemplars);
	// nil when request tracing is disabled.
	Phases *PhaseSnapshot
	// Workload is the merged per-shard workload fingerprint at this instant
	// (mix/skew/working-set/drift); nil when fingerprinting is disabled.
	Workload *WorkloadSnapshot
}

// Totals aggregates the point's shards: summed meter, summed size, total
// operations executed, and total records live.
func (p *WindowPoint) Totals() (m rum.Meter, sz rum.SizeInfo, ops uint64, n int) {
	for _, s := range p.Shards {
		m.Add(s.Meter)
		sz = sz.Add(s.Size)
		ops += s.Ops
		n += s.Len
	}
	return m, sz, ops, n
}

// Rolling is a fixed-capacity ring of recent WindowPoints with lock-free
// reads: one writer (the sampling loop) publishes immutable points; any
// number of readers (HTTP scrape handlers) traverse without blocking the
// writer or each other. Writes are bracketed by a seqlock version counter
// (odd while a store is in flight); readers snapshot the version before
// traversing and retry if it moved, so a traversal can never interleave
// with a slot overwrite. Re-checking head alone is not enough: a push
// stores into the slot the oldest retained point occupies *before* bumping
// head, so a reader racing that store could see the newest point in the
// oldest position and still pass a head re-check.
type Rolling struct {
	slots []atomic.Pointer[WindowPoint]
	head  atomic.Uint64 // number of points ever pushed
	ver   atomic.Uint64 // seqlock: odd while Push is storing
}

// NewRolling returns a ring retaining the last capacity points (minimum 2 —
// a window needs two ends).
func NewRolling(capacity int) *Rolling {
	if capacity < 2 {
		capacity = 2
	}
	return &Rolling{slots: make([]atomic.Pointer[WindowPoint], capacity)}
}

// Push publishes p as the newest point. Push is single-writer: only the
// sampling loop may call it.
func (r *Rolling) Push(p *WindowPoint) {
	r.ver.Add(1) // odd: store in progress
	h := r.head.Load()
	r.slots[h%uint64(len(r.slots))].Store(p)
	r.head.Store(h + 1)
	r.ver.Add(1) // even: store visible
}

// Len returns the number of points currently retained.
func (r *Rolling) Len() int {
	h := r.head.Load()
	if h > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(h)
}

// Last returns the newest point, or nil when nothing has been pushed.
func (r *Rolling) Last() *WindowPoint {
	h := r.head.Load()
	if h == 0 {
		return nil
	}
	return r.slots[(h-1)%uint64(len(r.slots))].Load()
}

// Points returns the retained points, oldest first. If a push lands
// mid-read the traversal restarts, so the returned slice is always a
// consistent, time-ordered suffix of the push history.
func (r *Rolling) Points() []*WindowPoint {
	n := uint64(len(r.slots))
	for {
		v := r.ver.Load()
		if v&1 == 1 {
			continue // a store is mid-flight; wait it out
		}
		h := r.head.Load()
		start := uint64(0)
		if h > n {
			start = h - n
		}
		out := make([]*WindowPoint, 0, h-start)
		for i := start; i < h; i++ {
			if p := r.slots[i%n].Load(); p != nil {
				out = append(out, p)
			}
		}
		if r.ver.Load() == v {
			return out
		}
	}
}

// WindowStats is what a Rolling ring derives from the two ends of a time
// window: rates and amplifications of the traffic inside the window, the
// latency distribution of requests completed inside it, and how evenly the
// shards shared the work.
type WindowStats struct {
	Span time.Duration `json:"span_ns"` // actual distance between the two points
	Ops  uint64        `json:"ops"`     // operations completed in the window

	OpsPerSec float64 `json:"ops_per_sec"`
	// Physical bytes moved per operation inside the window — the live
	// "pages touched per op" signal (the serving meters count bytes; divide
	// by the page size for pages).
	ReadBytesPerOp  float64 `json:"read_bytes_per_op"`
	WriteBytesPerOp float64 `json:"write_bytes_per_op"`

	// Windowed RUM point: amplifications of the window's traffic alone, and
	// the space amplification at the window's newest instant.
	RO float64 `json:"ro"`
	UO float64 `json:"uo"`
	MO float64 `json:"mo"`

	// Latency quantiles of requests completed inside the window (zero when
	// latency is not tracked).
	P50 time.Duration `json:"p50_ns"`
	P99 time.Duration `json:"p99_ns"`

	// Lifecycle decomposition of the operations executed inside the window
	// (zero when request tracing is disabled): how long operations waited
	// in mailboxes versus how long they executed. A p99 spike with a flat
	// ServiceP99 is queueing; the converse is the structure itself.
	QueueP50   time.Duration `json:"queue_p50_ns"`
	QueueP99   time.Duration `json:"queue_p99_ns"`
	ServiceP50 time.Duration `json:"service_p50_ns"`
	ServiceP99 time.Duration `json:"service_p99_ns"`

	// Balance is min/max over the per-shard operation counts of the window:
	// 1 means perfectly even, 0 means at least one shard sat idle. A single
	// shard reports 1.
	Balance float64 `json:"balance"`

	// Meter is the raw aggregate delta the rates above are derived from.
	Meter rum.Meter `json:"meter"`
}

// StatsBetween derives WindowStats from two snapshots of the same system,
// p0 the older and p1 the newer.
func StatsBetween(p0, p1 *WindowPoint) WindowStats {
	m0, _, ops0, _ := p0.Totals()
	m1, sz1, ops1, _ := p1.Totals()
	d := m1.Diff(m0)
	st := WindowStats{
		Span:  p1.At.Sub(p0.At),
		Ops:   ops1 - ops0,
		RO:    d.ReadAmplification(),
		UO:    d.WriteAmplification(),
		MO:    sz1.SpaceAmplification(),
		Meter: d,
	}
	if s := st.Span.Seconds(); s > 0 {
		st.OpsPerSec = float64(st.Ops) / s
	}
	if st.Ops > 0 {
		st.ReadBytesPerOp = float64(d.PhysicalRead()) / float64(st.Ops)
		st.WriteBytesPerOp = float64(d.PhysicalWritten()) / float64(st.Ops)
	}
	if p0.Latency != nil && p1.Latency != nil {
		lat := p1.Latency.Diff(p0.Latency)
		if lat.Count() > 0 {
			st.P50 = lat.QuantileDuration(0.50)
			st.P99 = lat.QuantileDuration(0.99)
		}
	}
	if p0.Phases != nil && p1.Phases != nil {
		if q := p1.Phases.Queue.Diff(p0.Phases.Queue); q.Count() > 0 {
			st.QueueP50 = q.QuantileDuration(0.50)
			st.QueueP99 = q.QuantileDuration(0.99)
		}
		if sv := p1.Phases.Service.Diff(p0.Phases.Service); sv.Count() > 0 {
			st.ServiceP50 = sv.QuantileDuration(0.50)
			st.ServiceP99 = sv.QuantileDuration(0.99)
		}
	}
	st.Balance = shardBalance(p0, p1)
	return st
}

// shardBalance returns min/max of per-shard op deltas between two points,
// matching shards by id. Degenerate cases (one shard, no traffic, shard
// sets that do not match) report 1 — balanced by absence of evidence.
func shardBalance(p0, p1 *WindowPoint) float64 {
	if len(p1.Shards) <= 1 || len(p0.Shards) != len(p1.Shards) {
		return 1
	}
	prev := make(map[int]uint64, len(p0.Shards))
	for _, s := range p0.Shards {
		prev[s.Shard] = s.Ops
	}
	min, max := ^uint64(0), uint64(0)
	for _, s := range p1.Shards {
		d := s.Ops - prev[s.Shard]
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if max == 0 {
		return 1
	}
	return float64(min) / float64(max)
}

// Window derives WindowStats over (approximately) the last w of wall time:
// the newest retained point versus the oldest retained point no older than
// w before it. A non-positive w is rejected (ok false) — it would silently
// degenerate to the newest pair, which is a different measurement than the
// caller asked for. With fewer than two points there is no window and ok is
// false. The ring's capacity bounds how far back a window can reach — size
// rings as capacity ≥ w / sampling interval.
func (r *Rolling) Window(w time.Duration) (stats WindowStats, ok bool) {
	if w <= 0 {
		return WindowStats{}, false
	}
	pts := r.Points()
	if len(pts) < 2 {
		return WindowStats{}, false
	}
	p1 := pts[len(pts)-1]
	cutoff := p1.At.Add(-w)
	p0 := pts[0]
	for _, p := range pts[:len(pts)-1] {
		if !p.At.Before(cutoff) {
			p0 = p
			break
		}
	}
	if p0 == p1 || !p1.At.After(p0.At) {
		p0 = pts[len(pts)-2]
	}
	return StatsBetween(p0, p1), true
}
