package obs

// This file is the parallel-run half of the observability layer. An Observer
// is single-goroutine by design (it rides the hot path of one storage stack),
// so parallel suites give every run cell its own Child observer and stitch
// the finished children back together with Absorb, in cell enumeration order.
// Because absorption renumbers spans and samples into the parent's sequence
// space, the merged trace, time series, and metrics are byte-identical to a
// fully sequential run over the same cells — worker count changes wall-clock
// only, never output.

// Child returns a fresh Observer with the same configuration, intended for
// one isolated run cell. The child must be used from a single goroutine; when
// the cell is done, call Finish on it and Absorb it into the parent from the
// parent's goroutine.
func (o *Observer) Child() *Observer { return New(o.cfg) }

// Finish closes the trailing sampling window: operations executed since the
// last periodic sample get a final time-series point, so a cell's trajectory
// always ends at its final state. Calling Finish on an observer that never
// had a target, or with an empty window, is a no-op.
func (o *Observer) Finish() {
	if o.meter != nil && o.sinceSamp > 0 {
		o.sample()
	}
}

// Absorb merges a finished child observer into o. Spans and samples are
// renumbered after o's current operation sequence and appended in the child's
// own order; sample cost counters are offset by the parent's cumulative cost
// so the merged series stays a single monotone cost line; histograms,
// operation counts, page-event totals, and traced/untraced meters are summed.
// The parent's MaxSpans cap applies to the merged span list — overflow is
// counted in Dropped, matching sequential behaviour.
//
// Absorb must be called from the goroutine that owns o, after the child's
// cell has completed; the child must not be used afterwards (its histograms
// may be adopted by the parent rather than copied).
func (o *Observer) Absorb(c *Observer) {
	if c == nil {
		return
	}
	seqOff := o.seq
	costOff := o.total.Cost
	for _, s := range c.spans {
		s.Seq += seqOff
		if uint64(len(o.spans)) < uint64(o.cfg.MaxSpans) {
			o.spans = append(o.spans, s)
		} else {
			o.dropped++
		}
	}
	for _, s := range c.samples {
		s.Seq += seqOff
		s.Cost += costOff
		o.samples = append(o.samples, s)
	}
	o.seq += c.seq
	o.dropped += c.dropped
	o.total.Merge(c.total)
	o.untraced.Merge(c.untraced)
	o.traced.Add(c.traced)
	for k, n := range c.ops {
		o.ops[k] += n
	}
	for k, h := range c.hists {
		if dst, ok := o.hists[k]; ok {
			dst.Pages.Merge(h.Pages)
			dst.Amp.Merge(h.Amp)
		} else {
			o.hists[k] = h
		}
	}
}
