// Package obs is the observability layer of the repository: per-operation
// span tracing, per-operation amplification and page-touch histograms, and a
// periodic RUM time-series sampler, with JSONL / CSV / Prometheus-style
// exporters.
//
// The paper's argument is an accounting argument — RO/UO/MO ratios and how
// they evolve as structures adapt — but end-of-run rum.Meter totals hide
// *when* amplification happens (compaction bursts), *where* (base vs
// auxiliary pages, device vs pool), and the per-operation tail. An Observer
// closes that gap: it implements core.OpObserver, so a core.Instrumented
// wrapper opens a span per logical operation, and storage.Hook, so every
// physical page event between span boundaries is attributed to the
// operation that caused it.
//
// Everything is nil-safe by construction: an unattached structure pays one
// pointer comparison per operation and per page event, and nothing
// allocates on the untraced path.
package obs

import (
	"sort"

	"repro/internal/core"
	"repro/internal/rum"
	"repro/internal/storage"
)

// Config tunes an Observer. The zero value is usable.
type Config struct {
	// SampleEvery is the number of completed operations between RUM
	// time-series samples (default 256).
	SampleEvery int
	// MaxSpans caps retained spans to bound memory on long runs; spans past
	// the cap are counted in Dropped() but still feed histograms, totals and
	// the time series (default 1 << 20).
	MaxSpans int
}

func (c *Config) defaults() {
	if c.SampleEvery <= 0 {
		c.SampleEvery = 256
	}
	if c.MaxSpans <= 0 {
		c.MaxSpans = 1 << 20
	}
}

// PageCounts aggregates physical storage events. Device-level reads and
// writes are split by rum.Class; pool-level events count pool behaviour.
// Cost accumulates the medium-weighted cost units of the device traffic.
type PageCounts struct {
	BaseReads  uint64
	AuxReads   uint64
	BaseWrites uint64
	AuxWrites  uint64
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	WriteBacks uint64
	Cost       uint64
	// Fault-path events (internal/faults): injected device faults, torn
	// writes, crash points, and pool retry attempts. A failed transfer
	// counts no read/write traffic — these counters are its only trace.
	Faults     uint64
	TornWrites uint64
	Crashes    uint64
	Retries    uint64
	// FaultCost is the medium-weighted cost of failed operations (the cost
	// payload of EvFault/EvTorn/EvCrash events). It is kept out of Cost so
	// Cost reconciles exactly with DeviceStats.CostUnits, which counts
	// successful traffic only.
	FaultCost uint64
	// Batches counts amortized batch submissions (storage.BatchHook events);
	// BatchedPages is the pages they carried. The per-page events of a batch
	// are already in the read/write counters and Cost — these two only
	// describe how the traffic was submitted.
	Batches      uint64
	BatchedPages uint64
}

// Reads returns total device page reads (base + aux).
func (c PageCounts) Reads() uint64 { return c.BaseReads + c.AuxReads }

// Writes returns total device page writes (base + aux).
func (c PageCounts) Writes() uint64 { return c.BaseWrites + c.AuxWrites }

// Touched returns the total device pages touched (reads + writes).
func (c PageCounts) Touched() uint64 { return c.Reads() + c.Writes() }

// Merge adds o's counters into c.
func (c *PageCounts) Merge(o PageCounts) {
	c.BaseReads += o.BaseReads
	c.AuxReads += o.AuxReads
	c.BaseWrites += o.BaseWrites
	c.AuxWrites += o.AuxWrites
	c.Hits += o.Hits
	c.Misses += o.Misses
	c.Evictions += o.Evictions
	c.WriteBacks += o.WriteBacks
	c.Cost += o.Cost
	c.Faults += o.Faults
	c.TornWrites += o.TornWrites
	c.Crashes += o.Crashes
	c.Retries += o.Retries
	c.FaultCost += o.FaultCost
	c.Batches += o.Batches
	c.BatchedPages += o.BatchedPages
}

func (c *PageCounts) add(ev storage.Event, class rum.Class, cost uint64) {
	switch ev {
	case storage.EvFault, storage.EvTorn, storage.EvCrash:
		// Failed operations count no device traffic; their cost payload is
		// the attempted cost, ledgered separately so Cost stays equal to
		// the device's CostUnits.
		c.FaultCost += cost
	default:
		c.Cost += cost
	}
	switch ev {
	case storage.EvRead:
		if class == rum.Base {
			c.BaseReads++
		} else {
			c.AuxReads++
		}
	case storage.EvWrite:
		if class == rum.Base {
			c.BaseWrites++
		} else {
			c.AuxWrites++
		}
	case storage.EvHit:
		c.Hits++
	case storage.EvMiss:
		c.Misses++
	case storage.EvEvict:
		c.Evictions++
	case storage.EvWriteBack:
		c.WriteBacks++
	case storage.EvFault:
		c.Faults++
	case storage.EvTorn:
		// A torn write is also a fault; EvTorn arrives instead of (not in
		// addition to) EvFault, so count it in both ledgers.
		c.Faults++
		c.TornWrites++
	case storage.EvCrash:
		c.Crashes++
	case storage.EvRetry:
		c.Retries++
	}
}

// Span is the record of one traced logical operation: the rum.Meter delta it
// caused (physical and logical bytes) and the physical page events that
// occurred while it was open. Nested operations (a bulkload falling back to
// inserts, a compaction inside an insert) are absorbed into the outermost
// span, so summing span deltas reconstructs the run's meter totals exactly.
type Span struct {
	Seq    uint64 // 1-based operation sequence number across the run
	Method string // label of the structure the operation ran against
	Op     string // core.OpName* constant
	Meter  rum.Meter
	Pages  PageCounts
}

// Sample is one point of the RUM trajectory: the cumulative meter of the
// current target at a moment of the run, the window delta since the previous
// sample, and the space amplification measured at sampling time. Windowed
// amplifications make bursts (compactions, adaptation) visible where
// cumulative ratios smooth them away.
type Sample struct {
	Seq    uint64 // operation sequence number at sampling time
	Method string
	Cum    rum.Meter
	Win    rum.Meter
	MO     float64
	Cost   uint64 // cumulative observed cost units
}

// OpKey identifies one histogram family: a (structure, operation) pair.
type OpKey struct {
	Method string
	Op     string
}

// OpHist holds the per-operation distributions for one (method, op) pair.
type OpHist struct {
	// Pages is the distribution of device pages touched per operation.
	Pages *Histogram
	// Amp is the distribution of per-operation amplification: physical
	// bytes moved per logical byte of the operation's payload. Operations
	// with no logical payload (flushes) are not recorded here.
	Amp *Histogram
}

// Observer collects spans, histograms, and time-series samples for one run.
// It observes one target structure at a time (Target re-points it) but may
// be attached as a storage.Hook to any number of devices and pools, e.g. by
// threading it through methods.Options.Hook. Observer is not safe for
// concurrent use, matching the rest of the simulation substrate.
type Observer struct {
	cfg Config

	// Current target.
	method string
	meter  *rum.Meter
	size   func() rum.SizeInfo

	// Span state.
	depth int
	curOp string
	start rum.Meter
	pages PageCounts

	seq        uint64
	spans      []Span
	dropped    uint64
	total      PageCounts // all attributed events across the run
	untraced   PageCounts // events arriving outside any span
	traced     rum.Meter  // sum of span meter deltas
	hists      map[OpKey]*OpHist
	ops        map[OpKey]uint64
	samples    []Sample
	lastSample rum.Meter
	sinceSamp  int
}

// New creates an Observer.
func New(cfg Config) *Observer {
	cfg.defaults()
	return &Observer{
		cfg:   cfg,
		hists: make(map[OpKey]*OpHist),
		ops:   make(map[OpKey]uint64),
	}
}

// Target points the observer at a structure: subsequent spans carry the
// given method label and meter deltas are taken from the structure's meter.
// The observer registers itself as the wrapper's OpObserver and records a
// baseline time-series sample. Call Target before preloading so the load is
// traced too. Re-targeting closes out the previous target's sampling window.
func (o *Observer) Target(am *core.Instrumented, method string) {
	if o.meter != nil && o.sinceSamp > 0 {
		o.sample()
	}
	o.method = method
	o.meter = am.Meter()
	o.size = am.Size
	o.lastSample = o.meter.Snapshot()
	o.sinceSamp = 0
	am.SetObserver(o)
	o.sample() // baseline point so trajectories start at the load state
}

// BeginOp implements core.OpObserver. Nested operations attribute to the
// outermost open span.
func (o *Observer) BeginOp(op string) {
	o.depth++
	if o.depth > 1 {
		return
	}
	o.curOp = op
	if o.meter != nil {
		o.start = *o.meter
	}
	o.pages = PageCounts{}
}

// EndOp implements core.OpObserver, closing the current span.
func (o *Observer) EndOp(op string) {
	o.depth--
	if o.depth > 0 {
		return
	}
	o.depth = 0
	var d rum.Meter
	if o.meter != nil {
		d = o.meter.Diff(o.start)
	}
	o.seq++
	o.traced.Add(d)
	key := OpKey{Method: o.method, Op: o.curOp}
	o.ops[key]++
	h, ok := o.hists[key]
	if !ok {
		h = &OpHist{
			Pages: NewHistogram(PowerOfTwoBounds(21)), // up to 2^20 pages/op
			Amp:   NewHistogram(PowerOfTwoBounds(25)), // up to 2^24x amplification
		}
		o.hists[key] = h
	}
	h.Pages.Record(float64(o.pages.Touched()))
	if logical := d.LogicalRead + d.LogicalWritten; logical > 0 {
		physical := d.PhysicalRead() + d.PhysicalWritten()
		h.Amp.Record(float64(physical) / float64(logical))
	}
	if uint64(len(o.spans)) < uint64(o.cfg.MaxSpans) {
		o.spans = append(o.spans, Span{Seq: o.seq, Method: o.method, Op: o.curOp, Meter: d, Pages: o.pages})
	} else {
		o.dropped++
	}
	o.pages = PageCounts{}
	o.sinceSamp++
	if o.sinceSamp >= o.cfg.SampleEvery {
		o.sample()
	}
}

// StorageEvent implements storage.Hook: the event is attributed to the open
// span, or to the untraced counters when no span is open.
func (o *Observer) StorageEvent(ev storage.Event, _ storage.PageID, class rum.Class, cost uint64) {
	o.total.add(ev, class, cost)
	if o.depth > 0 {
		o.pages.add(ev, class, cost)
	} else {
		o.untraced.add(ev, class, cost)
	}
}

// StorageBatch implements storage.BatchHook: one amortized batch submission,
// attributed like any page event. The batch's per-page events arrived first
// (the BatchHook contract), so totals already hold its traffic and cost —
// this records only the submission shape (count and pages carried).
func (o *Observer) StorageBatch(_ bool, pages, _ int, _ uint64) {
	o.total.Batches++
	o.total.BatchedPages += uint64(pages)
	if o.depth > 0 {
		o.pages.Batches++
		o.pages.BatchedPages += uint64(pages)
	} else {
		o.untraced.Batches++
		o.untraced.BatchedPages += uint64(pages)
	}
}

func (o *Observer) sample() {
	o.sinceSamp = 0
	if o.meter == nil {
		return
	}
	cum := o.meter.Snapshot()
	s := Sample{
		Seq:    o.seq,
		Method: o.method,
		Cum:    cum,
		Win:    cum.Diff(o.lastSample),
		Cost:   o.total.Cost,
	}
	if o.size != nil {
		s.MO = o.size().SpaceAmplification()
	}
	o.samples = append(o.samples, s)
	o.lastSample = cum
}

// Spans returns the retained spans in operation order.
func (o *Observer) Spans() []Span { return o.spans }

// Samples returns the RUM time series in sampling order.
func (o *Observer) Samples() []Sample { return o.samples }

// Dropped returns the number of spans discarded after MaxSpans was reached.
func (o *Observer) Dropped() uint64 { return o.dropped }

// Totals returns all page events observed across the run.
func (o *Observer) Totals() PageCounts { return o.total }

// Untraced returns page events that arrived while no span was open — traffic
// the tracing could not attribute to a logical operation.
func (o *Observer) Untraced() PageCounts { return o.untraced }

// TracedMeter returns the sum of all span meter deltas; for a run whose
// meter traffic all happened inside spans it equals the structure's final
// meter.
func (o *Observer) TracedMeter() rum.Meter { return o.traced }

// OpCounts returns the operation counters keyed by (method, op).
func (o *Observer) OpCounts() map[OpKey]uint64 { return o.ops }

// Hist returns the histograms for one (method, op) pair, or nil.
func (o *Observer) Hist(key OpKey) *OpHist { return o.hists[key] }

// HistKeys returns every (method, op) pair with recorded histograms, sorted
// for deterministic export.
func (o *Observer) HistKeys() []OpKey {
	keys := make([]OpKey, 0, len(o.hists))
	for k := range o.hists {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Method != keys[j].Method {
			return keys[i].Method < keys[j].Method
		}
		return keys[i].Op < keys[j].Op
	})
	return keys
}
