package obs_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenObserver runs the fixed-seed workload all three golden files are
// derived from. Any behavioural drift in the observer or an exporter shows
// up as a golden diff.
func goldenObserver(t *testing.T) *obs.Observer {
	t.Helper()
	o, _ := runTraced(t, obs.Config{SampleEvery: 32}, 100, 200)
	return o
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -run Golden -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden file (rerun with -update if intended)\n got %d bytes, want %d bytes\n first got lines:\n%s",
			name, len(got), len(want), firstLines(got, 5))
	}
}

func firstLines(b []byte, n int) string {
	lines := strings.SplitN(string(b), "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

func TestGoldenTraceJSONL(t *testing.T) {
	o := goldenObserver(t)
	var buf bytes.Buffer
	if err := o.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace.golden.jsonl", buf.Bytes())
}

func TestGoldenTimeSeriesCSV(t *testing.T) {
	o := goldenObserver(t)
	var buf bytes.Buffer
	if err := o.WriteTimeSeries(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "timeseries.golden.csv", buf.Bytes())
}

func TestGoldenMetricsPrometheus(t *testing.T) {
	o := goldenObserver(t)
	var buf bytes.Buffer
	if err := o.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.golden.txt", buf.Bytes())
}
