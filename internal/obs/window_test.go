package obs_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rum"
)

// point fabricates a snapshot: at seconds after t0, each of nShards shards
// has executed ops operations, read rd and written wr physical bytes, and
// holds length len records (all split evenly).
func point(t0 time.Time, seconds float64, nShards int, ops, rd, wr, logical uint64, lat *obs.Histogram) *obs.WindowPoint {
	p := &obs.WindowPoint{
		At:      t0.Add(time.Duration(seconds * float64(time.Second))),
		Latency: lat,
	}
	for i := 0; i < nShards; i++ {
		p.Shards = append(p.Shards, obs.ShardPoint{
			Shard: i,
			Ops:   ops / uint64(nShards),
			Meter: rum.Meter{
				BaseRead:       rd / uint64(nShards),
				BaseWritten:    wr / uint64(nShards),
				LogicalRead:    logical / uint64(nShards),
				LogicalWritten: logical / uint64(nShards),
			},
			Size: rum.SizeInfo{BaseBytes: 1000, AuxBytes: 250},
			Len:  10,
		})
	}
	return p
}

func TestRollingRingRetention(t *testing.T) {
	r := obs.NewRolling(4)
	if r.Last() != nil || r.Len() != 0 {
		t.Fatal("empty ring reports points")
	}
	t0 := time.Unix(1000, 0)
	for i := 0; i < 10; i++ {
		r.Push(point(t0, float64(i), 1, uint64(i*100), 0, 0, 0, nil))
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", r.Len())
	}
	pts := r.Points()
	if len(pts) != 4 {
		t.Fatalf("Points returned %d, want 4", len(pts))
	}
	for i, p := range pts {
		want := t0.Add(time.Duration(6+i) * time.Second)
		if !p.At.Equal(want) {
			t.Fatalf("point %d at %v, want %v (oldest-first order)", i, p.At, want)
		}
	}
	if last := r.Last(); !last.At.Equal(t0.Add(9 * time.Second)) {
		t.Fatalf("Last at %v, want t0+9s", last.At)
	}
}

func TestWindowStats(t *testing.T) {
	t0 := time.Unix(2000, 0)
	lat0, lat1 := obs.NewLatencyHistogram(), obs.NewLatencyHistogram()
	lat0.RecordDuration(time.Microsecond)
	lat1.Merge(lat0)
	for i := 0; i < 98; i++ {
		lat1.RecordDuration(3 * time.Microsecond)
	}
	lat1.RecordDuration(500 * time.Microsecond)

	r := obs.NewRolling(8)
	// 1000 ops and 64k read / 32k written bytes happen between the points,
	// over 10 seconds, with 16k logical bytes in each direction.
	r.Push(point(t0, 0, 4, 1000, 1<<20, 1<<20, 1<<18, lat0))
	r.Push(point(t0, 10, 4, 2000, 1<<20+65536, 1<<20+32768, 1<<18+16384, lat1))

	st, ok := r.Window(30 * time.Second)
	if !ok {
		t.Fatal("Window found no span")
	}
	if st.Span != 10*time.Second {
		t.Fatalf("Span = %v, want 10s", st.Span)
	}
	if st.Ops != 1000 {
		t.Fatalf("Ops = %d, want 1000", st.Ops)
	}
	if st.OpsPerSec != 100 {
		t.Fatalf("OpsPerSec = %g, want 100", st.OpsPerSec)
	}
	if st.ReadBytesPerOp != 65536.0/1000 {
		t.Fatalf("ReadBytesPerOp = %g", st.ReadBytesPerOp)
	}
	if st.WriteBytesPerOp != 32768.0/1000 {
		t.Fatalf("WriteBytesPerOp = %g", st.WriteBytesPerOp)
	}
	// Windowed amplification: 65536 physical / 16384 logical read = 4x;
	// 32768 / 16384 = 2x. MO from the newest point: 1250/1000 per shard.
	if st.RO != 4 || st.UO != 2 {
		t.Fatalf("window RO=%g UO=%g, want 4 and 2", st.RO, st.UO)
	}
	if st.MO != 1.25 {
		t.Fatalf("window MO = %g, want 1.25", st.MO)
	}
	// The window's latency distribution excludes lat0's observation: its
	// p50 sits in the 4096ns bucket (3µs recordings), p99 at ~512µs.
	if st.P50 != 4096*time.Nanosecond {
		t.Fatalf("window p50 = %v, want 4.096µs", st.P50)
	}
	if st.P99 < 500*time.Microsecond || st.P99 > time.Millisecond {
		t.Fatalf("window p99 = %v, want ≈512µs", st.P99)
	}
	if st.Balance != 1 {
		t.Fatalf("Balance = %g, want 1 for even shards", st.Balance)
	}
}

func TestWindowPicksCutoff(t *testing.T) {
	t0 := time.Unix(3000, 0)
	r := obs.NewRolling(16)
	for i := 0; i <= 10; i++ {
		r.Push(point(t0, float64(i), 1, uint64(i)*100, 0, 0, 0, nil))
	}
	// A 3-second window must span exactly the last 3 seconds, not all 10.
	st, ok := r.Window(3 * time.Second)
	if !ok {
		t.Fatal("no window")
	}
	if st.Span != 3*time.Second || st.Ops != 300 {
		t.Fatalf("Span=%v Ops=%d, want 3s / 300", st.Span, st.Ops)
	}
	// A window wider than retention clamps to the oldest retained point.
	st, _ = r.Window(time.Hour)
	if st.Span != 10*time.Second || st.Ops != 1000 {
		t.Fatalf("clamped Span=%v Ops=%d, want 10s / 1000", st.Span, st.Ops)
	}
	// One point only: no window.
	one := obs.NewRolling(4)
	one.Push(point(t0, 0, 1, 0, 0, 0, 0, nil))
	if _, ok := one.Window(time.Second); ok {
		t.Fatal("single-point ring produced a window")
	}
}

func TestShardBalanceSkew(t *testing.T) {
	t0 := time.Unix(4000, 0)
	p0 := point(t0, 0, 2, 0, 0, 0, 0, nil)
	p1 := point(t0, 1, 2, 0, 0, 0, 0, nil)
	p1.Shards[0].Ops = 900
	p1.Shards[1].Ops = 100
	st := obs.StatsBetween(p0, p1)
	if want := 100.0 / 900.0; st.Balance != want {
		t.Fatalf("Balance = %g, want %g", st.Balance, want)
	}
	// All idle: balanced by absence of evidence.
	if st := obs.StatsBetween(p0, point(t0, 1, 2, 0, 0, 0, 0, nil)); st.Balance != 1 {
		t.Fatalf("idle Balance = %g, want 1", st.Balance)
	}
}

// TestRollingConcurrentReaders hammers the ring with one writer and many
// readers; under -race this is the lock-free-read proof. Readers check that
// every traversal is time-ordered (a lapped read must retry, not return a
// torn sequence).
func TestRollingConcurrentReaders(t *testing.T) {
	r := obs.NewRolling(8)
	t0 := time.Unix(5000, 0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				pts := r.Points()
				for i := 1; i < len(pts); i++ {
					if pts[i].At.Before(pts[i-1].At) {
						t.Error("Points returned a torn, out-of-order sequence")
						return
					}
				}
				r.Window(time.Minute)
				r.Last()
			}
		}()
	}
	for i := 0; i < 5000; i++ {
		r.Push(point(t0, float64(i), 2, uint64(i), uint64(i)*64, uint64(i)*64, uint64(i)*16, nil))
	}
	close(stop)
	wg.Wait()
}

func TestHistogramCloneAndDiff(t *testing.T) {
	h := obs.NewLatencyHistogram()
	h.RecordDuration(time.Microsecond)
	snap := h.Clone()
	h.RecordDuration(time.Millisecond)
	h.RecordDuration(2 * time.Millisecond)
	// Clone is independent: recording into h must not touch snap.
	if snap.Count() != 1 {
		t.Fatalf("clone Count = %d, want 1", snap.Count())
	}
	d := h.Diff(snap)
	if d.Count() != 2 {
		t.Fatalf("diff Count = %d, want 2", d.Count())
	}
	// The µs observation is excluded: the diff's p50 sits near 1ms.
	if got := d.QuantileDuration(0.5); got < time.Millisecond || got > 4*time.Millisecond {
		t.Fatalf("diff p50 = %v, want ≈1ms", got)
	}
	if d.Sum() != h.Sum()-snap.Sum() {
		t.Fatalf("diff Sum = %g, want %g", d.Sum(), h.Sum()-snap.Sum())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Diff of mismatched layouts did not panic")
		}
	}()
	h.Diff(obs.NewHistogram(obs.PowerOfTwoBounds(3)))
}
