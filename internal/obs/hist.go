package obs

import "math"

// Histogram is a fixed-bucket (HDR-style) histogram: values are counted
// against a static, monotonically increasing list of upper bounds, so
// recording is a branch-free binary search and an increment, and quantiles
// are answered with bounded relative error (one bucket width) without
// retaining samples. The zero bucket layout used throughout this package is
// powers of two, which matches the log-scale nature of amplification
// factors and page counts.
type Histogram struct {
	bounds []float64 // inclusive upper bounds; an implicit +Inf bucket follows
	counts []uint64  // len(bounds)+1
	n      uint64
	sum    float64
	max    float64
}

// PowerOfTwoBounds returns the bucket bounds 1, 2, 4, … 2^(n-1).
func PowerOfTwoBounds(n int) []float64 {
	b := make([]float64, n)
	v := 1.0
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}

// NewHistogram creates a histogram over the given inclusive upper bounds,
// which must be sorted ascending.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Record counts one observation of v.
func (h *Histogram) Record(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.n++
	if !math.IsInf(v, 1) {
		h.sum += v
	}
	if v > h.max {
		h.max = v
	}
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo]++
}

// Merge folds o's observations into h. Both histograms must share the same
// bucket layout (they always do inside this package, where every family uses
// a fixed power-of-two layout); mismatched layouts panic rather than silently
// mis-binning.
func (h *Histogram) Merge(o *Histogram) {
	if len(o.bounds) != len(h.bounds) {
		panic("obs: merge of histograms with different bucket layouts")
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.n += o.n
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Clone returns an independent copy of h. The rolling-window plane clones
// cumulative histograms at sampling instants so later Diff calls can derive
// per-window distributions without retaining samples.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{
		bounds: h.bounds, // bounds are immutable after construction
		counts: make([]uint64, len(h.counts)),
		n:      h.n,
		sum:    h.sum,
		max:    h.max,
	}
	copy(c.counts, h.counts)
	return c
}

// Diff returns the observations recorded in h since the earlier snapshot
// prev: per-bucket count deltas, count and sum deltas. prev must be a
// snapshot of the same histogram's past (same layout, counts no greater
// than h's); mismatched layouts panic like Merge. Max is not differenced —
// it carries h's cumulative max, an upper bound for the window.
func (h *Histogram) Diff(prev *Histogram) *Histogram {
	if len(prev.bounds) != len(h.bounds) {
		panic("obs: diff of histograms with different bucket layouts")
	}
	d := &Histogram{
		bounds: h.bounds,
		counts: make([]uint64, len(h.counts)),
		n:      h.n - prev.n,
		sum:    h.sum - prev.sum,
		max:    h.max,
	}
	for i := range d.counts {
		d.counts[i] = h.counts[i] - prev.counts[i]
	}
	return d
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of all finite recorded observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Max returns the largest recorded observation (0 when empty).
func (h *Histogram) Max() float64 { return h.max }

// Mean returns the mean of finite observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile returns the upper bound of the bucket holding the q-quantile
// observation (0 <= q <= 1). Observations beyond the last bound report +Inf;
// an empty histogram reports 0. The answer overestimates the true quantile
// by at most one bucket width — the HDR tradeoff.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// BucketIndex returns the index of the bucket that counts v: the first
// bound >= v, or len(bounds) for the implicit +Inf bucket.
func (h *Histogram) BucketIndex(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Buckets returns the bucket upper bounds and their cumulative counts in
// Prometheus order: the final implicit +Inf bucket equals Count(). The
// returned slices are freshly allocated.
func (h *Histogram) Buckets() (bounds []float64, cumulative []uint64) {
	bounds = append([]float64(nil), h.bounds...)
	cumulative = make([]uint64, len(h.counts))
	var cum uint64
	for i, c := range h.counts {
		cum += c
		cumulative[i] = cum
	}
	return bounds, cumulative[:len(h.bounds)+1]
}
