package obs_test

import (
	"bytes"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

var metricName = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)

// lintExposition holds an exposition to the format rules every consumer of
// the shared encoder relies on: each emitted series belongs to a family
// with # HELP and # TYPE lines, and every family name is a legal Prometheus
// metric name. Returns the number of sample lines checked.
func lintExposition(t *testing.T, data []byte) int {
	t.Helper()
	helped := map[string]bool{}
	typed := map[string]string{}
	samples := 0
	for ln, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		if line == "" {
			t.Errorf("line %d: empty line in exposition", ln+1)
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 || fields[3] == "" {
				t.Errorf("line %d: malformed comment %q", ln+1, line)
				continue
			}
			name := fields[2]
			if !metricName.MatchString(name) {
				t.Errorf("line %d: illegal metric name %q", ln+1, name)
			}
			if fields[1] == "HELP" {
				helped[name] = true
			} else {
				switch typ := fields[3]; typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
					typed[name] = typ
				default:
					t.Errorf("line %d: unknown metric type %q", ln+1, typ)
				}
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("line %d: unexpected comment %q", ln+1, line)
			continue
		}
		samples++
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		family := name
		if typed[family] == "" {
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if base := strings.TrimSuffix(name, suffix); base != name && typed[base] == "histogram" {
					family = base
					break
				}
			}
		}
		if !metricName.MatchString(name) {
			t.Errorf("line %d: illegal series name %q", ln+1, name)
		}
		if !helped[family] {
			t.Errorf("line %d: series %q has no # HELP line", ln+1, name)
		}
		if typed[family] == "" {
			t.Errorf("line %d: series %q has no # TYPE line", ln+1, name)
		}
	}
	return samples
}

// TestMetricsExpositionLint lints the file-export path: every series
// WriteMetrics emits must carry HELP/TYPE and a legal name.
func TestMetricsExpositionLint(t *testing.T) {
	o := goldenObserver(t)
	var buf bytes.Buffer
	if err := o.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if n := lintExposition(t, buf.Bytes()); n == 0 {
		t.Fatal("WriteMetrics emitted no samples")
	}
}

// TestRegistryRendersSources lints the live-scrape path and checks that a
// Registry renders its sources in registration order, through both Render
// and the HTTP handler.
func TestRegistryRendersSources(t *testing.T) {
	r := obs.NewRegistry()
	r.Register(obs.SourceFunc(func(e *obs.Encoder) {
		e.Family("live_uptime_seconds", "gauge", "Seconds since start.")
		e.Float("live_uptime_seconds", nil, 12.5)
	}))
	h := obs.NewLatencyHistogram()
	h.RecordDuration(3 * time.Microsecond)
	h.RecordDuration(90 * time.Microsecond)
	r.Register(obs.SourceFunc(func(e *obs.Encoder) {
		e.Family("live_latency_ns", "histogram", "Request latency in nanoseconds.")
		e.Histo("live_latency_ns", obs.L("client", "0"), h)
	}))

	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if n := lintExposition(t, buf.Bytes()); n == 0 {
		t.Fatal("registry emitted no samples")
	}
	up := strings.Index(out, "live_uptime_seconds 12.5")
	lat := strings.Index(out, `live_latency_ns_bucket{client="0",le="4096"} 1`)
	if up < 0 || lat < 0 {
		t.Fatalf("render missing expected series:\n%s", out)
	}
	if up > lat {
		t.Fatal("sources rendered out of registration order")
	}
	if !strings.Contains(out, `live_latency_ns_count{client="0"} 2`) {
		t.Fatalf("histogram count series missing:\n%s", out)
	}

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("scrape status %d", rec.Code)
	}
	if got := rec.Header().Get("Content-Type"); !strings.HasPrefix(got, "text/plain") {
		t.Fatalf("scrape content-type %q", got)
	}
	if rec.Body.String() != out {
		t.Fatal("HTTP scrape differs from Render output")
	}
}
