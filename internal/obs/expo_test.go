package obs_test

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

var metricName = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)

// exemplarSuffix matches the payload after " # " on a bucket line: a label
// set and a float value.
var exemplarSuffix = regexp.MustCompile(`^\{[a-z_][a-z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-z_][a-z0-9_]*="(?:[^"\\]|\\.)*")*\} \S+$`)

// lintExposition holds an exposition to the format rules every consumer of
// the shared encoder relies on: each emitted series belongs to a family
// with # HELP and # TYPE lines, and every family name is a legal Prometheus
// metric name. Returns the number of sample lines checked.
func lintExposition(t *testing.T, data []byte) int {
	t.Helper()
	helped := map[string]bool{}
	typed := map[string]string{}
	samples := 0
	for ln, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		if line == "" {
			t.Errorf("line %d: empty line in exposition", ln+1)
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 || fields[3] == "" {
				t.Errorf("line %d: malformed comment %q", ln+1, line)
				continue
			}
			name := fields[2]
			if !metricName.MatchString(name) {
				t.Errorf("line %d: illegal metric name %q", ln+1, name)
			}
			if fields[1] == "HELP" {
				helped[name] = true
			} else {
				switch typ := fields[3]; typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
					typed[name] = typ
				default:
					t.Errorf("line %d: unknown metric type %q", ln+1, typ)
				}
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("line %d: unexpected comment %q", ln+1, line)
			continue
		}
		samples++
		// OpenMetrics-style exemplar suffix: only bucket lines may carry one,
		// and it must be a label set followed by a value.
		if i := strings.Index(line, " # "); i >= 0 {
			suffix := line[i+len(" # "):]
			line = line[:i]
			if !strings.Contains(line, "_bucket") {
				t.Errorf("line %d: exemplar on non-bucket series %q", ln+1, line)
			}
			if !exemplarSuffix.MatchString(suffix) {
				t.Errorf("line %d: malformed exemplar %q", ln+1, suffix)
			}
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		family := name
		if typed[family] == "" {
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if base := strings.TrimSuffix(name, suffix); base != name && typed[base] == "histogram" {
					family = base
					break
				}
			}
		}
		if !metricName.MatchString(name) {
			t.Errorf("line %d: illegal series name %q", ln+1, name)
		}
		if !helped[family] {
			t.Errorf("line %d: series %q has no # HELP line", ln+1, name)
		}
		if typed[family] == "" {
			t.Errorf("line %d: series %q has no # TYPE line", ln+1, name)
		}
	}
	return samples
}

// TestMetricsExpositionLint lints the file-export path: every series
// WriteMetrics emits must carry HELP/TYPE and a legal name.
func TestMetricsExpositionLint(t *testing.T) {
	o := goldenObserver(t)
	var buf bytes.Buffer
	if err := o.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if n := lintExposition(t, buf.Bytes()); n == 0 {
		t.Fatal("WriteMetrics emitted no samples")
	}
}

// TestRegistryRendersSources lints the live-scrape path and checks that a
// Registry renders its sources in registration order, through both Render
// and the HTTP handler.
func TestRegistryRendersSources(t *testing.T) {
	r := obs.NewRegistry()
	r.Register(obs.SourceFunc(func(e *obs.Encoder) {
		e.Family("live_uptime_seconds", "gauge", "Seconds since start.")
		e.Float("live_uptime_seconds", nil, 12.5)
	}))
	h := obs.NewLatencyHistogram()
	h.RecordDuration(3 * time.Microsecond)
	h.RecordDuration(90 * time.Microsecond)
	r.Register(obs.SourceFunc(func(e *obs.Encoder) {
		e.Family("live_latency_ns", "histogram", "Request latency in nanoseconds.")
		e.Histo("live_latency_ns", obs.L("client", "0"), h)
	}))

	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if n := lintExposition(t, buf.Bytes()); n == 0 {
		t.Fatal("registry emitted no samples")
	}
	up := strings.Index(out, "live_uptime_seconds 12.5")
	lat := strings.Index(out, `live_latency_ns_bucket{client="0",le="4096"} 1`)
	if up < 0 || lat < 0 {
		t.Fatalf("render missing expected series:\n%s", out)
	}
	if up > lat {
		t.Fatal("sources rendered out of registration order")
	}
	if !strings.Contains(out, `live_latency_ns_count{client="0"} 2`) {
		t.Fatalf("histogram count series missing:\n%s", out)
	}

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("scrape status %d", rec.Code)
	}
	if got := rec.Header().Get("Content-Type"); !strings.HasPrefix(got, "text/plain") {
		t.Fatalf("scrape content-type %q", got)
	}
	if rec.Body.String() != out {
		t.Fatal("HTTP scrape differs from Render output")
	}
}

// TestEncoderLabelEscaping pins the label-value escaping rules of the text
// format: backslash, double quote, and newline must come out as \\, \", and
// \n inside the quoted value. The encoder leans on Go's %q, whose escaping
// coincides with Prometheus's for exactly these three characters — this test
// is what keeps that coincidence load-bearing.
func TestEncoderLabelEscaping(t *testing.T) {
	cases := []struct {
		name  string
		value string
		want  string
	}{
		{"backslash", `a\b`, `esc_total{path="a\\b"} 1`},
		{"quote", `say "hi"`, `esc_total{path="say \"hi\""} 1`},
		{"newline", "line1\nline2", `esc_total{path="line1\nline2"} 1`},
		{"mixed", "q\"\\\n", `esc_total{path="q\"\\\n"} 1`},
		{"plain", "plain", `esc_total{path="plain"} 1`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			e := obs.NewEncoder(&buf)
			e.Family("esc_total", "counter", "Escaping probe.")
			e.Uint("esc_total", obs.L("path", tc.value), 1)
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
			lintExposition(t, buf.Bytes())
			lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
			if got := lines[len(lines)-1]; got != tc.want {
				t.Fatalf("escaped sample:\n got %s\nwant %s", got, tc.want)
			}
		})
	}
}

// TestHistoScaledExemplars checks the scaled-histogram path: nanosecond
// buckets render as seconds, and an exemplar rides its bucket line in
// OpenMetrics form with the scaled service time as its value.
func TestHistoScaledExemplars(t *testing.T) {
	h := obs.NewLatencyHistogram()
	h.RecordDuration(3 * time.Microsecond)
	ex := []obs.Exemplar{{
		Bucket:  h.BucketIndex(float64(3 * time.Microsecond.Nanoseconds())),
		Op:      "get", Key: 42, Shard: 1,
		Queue: time.Microsecond, Service: 3 * time.Microsecond,
		Total: 4 * time.Microsecond, Pages: 2,
	}}
	var buf bytes.Buffer
	e := obs.NewEncoder(&buf)
	e.Family("svc_seconds", "histogram", "Service time in seconds.")
	e.HistoScaled("svc_seconds", nil, h, 1e-9, ex)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if lintExposition(t, buf.Bytes()) == 0 {
		t.Fatal("no samples emitted")
	}
	// 3µs lands in the 2^12 ns bucket; all values render scaled to seconds.
	// Expected strings are built with the encoder's own arithmetic
	// (float64(ns) * scale) so the assertion is not hostage to float
	// shortest-representation quirks.
	sec := func(ns int64) string {
		return strconv.FormatFloat(float64(ns)*1e-9, 'g', -1, 64)
	}
	want := fmt.Sprintf(
		`svc_seconds_bucket{le="%s"} 1 # {op="get",key="42",shard="1",queue="%s",total="%s",pages="2"} %s`,
		sec(4096), sec(1000), sec(4000), sec(3000))
	if !strings.Contains(out, want) {
		t.Fatalf("missing exemplar bucket line %q in:\n%s", want, out)
	}
	if !strings.Contains(out, "svc_seconds_sum "+sec(3000)) {
		t.Fatalf("sum not scaled to seconds:\n%s", out)
	}
}
