package obs

import (
	"time"

	"repro/internal/rum"
	"repro/internal/storage"
)

// Request lifecycle phases. The serving layer stamps every mailbox message
// at enqueue and decomposes each executed operation into queue wait (enqueue
// to execution start) and service time (execution itself); a PhaseRecorder
// is the per-shard sink for that decomposition. It follows the single-owner
// contract of everything else beneath a shard: only the shard goroutine
// records, and other goroutines see the state exclusively through immutable
// Snapshot clones published over the mailbox (the same happens-before edge
// every ShardReport rides). A nil recorder is the disabled state — the
// serving hot path then pays one nil check and allocates nothing.

// Exemplar is the worst recent operation that landed in one service-time
// bucket: a concrete trace a histogram bucket can be blamed on. Buckets
// index the power-of-two nanosecond latency layout (NewLatencyHistogram).
type Exemplar struct {
	Bucket  int           `json:"bucket"` // service-histogram bucket index
	Op      string        `json:"op"`
	Key     uint64        `json:"key"`
	Shard   int           `json:"shard"`
	Queue   time.Duration `json:"queue_ns"`
	Service time.Duration `json:"service_ns"`
	Total   time.Duration `json:"total_ns"`
	Pages   uint64        `json:"pages"`
	At      time.Time     `json:"at"`
}

// exemplarTTL bounds how long a bucket's exemplar survives without being
// beaten: past it, any new op in the bucket replaces the stale champion, so
// exemplars describe recent traffic rather than a startup outlier.
const exemplarTTL = time.Minute

// PhaseRecorder accumulates one shard's lifecycle decomposition: queue-wait
// and service-time histograms (power-of-two nanosecond buckets, Clone/Diff
// compatible with the rolling-window plane), a batch-size histogram (ops
// per mailbox message), and one exemplar per service bucket.
//
// PhaseRecorder also implements storage.Hook. When the shard's builder
// threads it into the storage stack (methods.Options.Hook, possibly behind
// a tee), the pages/faults/retries charged between BeginOpWork and OpWork
// are attributed to the operation in flight; unwired, those counts stay
// zero and traces carry meter-derived byte counts only.
type PhaseRecorder struct {
	queue   *Histogram
	service *Histogram
	batch   *Histogram
	ex      []Exemplar // one slot per service bucket; Total==0 means empty

	// In-flight op device work, fed by StorageEvent.
	pages, faults, retries uint64
}

// batchBuckets covers 1 .. 2^15 operations per mailbox message.
const batchBuckets = 16

// NewPhaseRecorder returns an empty recorder.
func NewPhaseRecorder() *PhaseRecorder {
	return &PhaseRecorder{
		queue:   NewLatencyHistogram(),
		service: NewLatencyHistogram(),
		batch:   NewHistogram(PowerOfTwoBounds(batchBuckets)),
		ex:      make([]Exemplar, latencyBuckets+1),
	}
}

// StorageEvent implements storage.Hook: device and fault-path events are
// charged to the operation currently in flight.
func (r *PhaseRecorder) StorageEvent(ev storage.Event, _ storage.PageID, _ rum.Class, _ uint64) {
	switch ev {
	case storage.EvRead, storage.EvWrite:
		r.pages++
	case storage.EvFault, storage.EvTorn:
		r.faults++
	case storage.EvRetry:
		r.retries++
	}
}

// BeginOpWork zeroes the device-work counters for the next operation.
func (r *PhaseRecorder) BeginOpWork() { r.pages, r.faults, r.retries = 0, 0, 0 }

// OpWork returns the device work charged since BeginOpWork.
func (r *PhaseRecorder) OpWork() (pages, faults, retries uint64) {
	return r.pages, r.faults, r.retries
}

// RecordBatch counts one mailbox message carrying n operations.
func (r *PhaseRecorder) RecordBatch(n int) { r.batch.Record(float64(n)) }

// Observe records one operation's decomposition and refreshes the exemplar
// of its service bucket. The exemplar is replaced when the new op's total
// latency is at least the incumbent's, or when the incumbent is older than
// a minute — "worst recent", not "worst ever".
func (r *PhaseRecorder) Observe(t SlowTrace) {
	r.queue.RecordDuration(t.Queue)
	r.service.RecordDuration(t.Service)
	b := r.service.BucketIndex(float64(t.Service.Nanoseconds()))
	cur := &r.ex[b]
	if cur.Total == 0 || t.Total >= cur.Total || t.At.Sub(cur.At) > exemplarTTL {
		*cur = Exemplar{
			Bucket: b, Op: t.Op, Key: t.Key, Shard: t.Shard,
			Queue: t.Queue, Service: t.Service, Total: t.Total,
			Pages: t.Pages, At: t.At,
		}
	}
}

// PhaseSnapshot is an immutable copy of a recorder's state, safe to publish
// across goroutines and to Merge with other shards' snapshots. Histograms
// are cumulative clones, so two snapshots of the same system Diff into the
// distribution of the traffic between them — which is how the rolling
// window derives queue-p99 and service-p99.
type PhaseSnapshot struct {
	Queue   *Histogram
	Service *Histogram
	Batch   *Histogram
	// Exemplars holds the occupied service-bucket exemplars, bucket order.
	Exemplars []Exemplar
}

// Snapshot clones the recorder's state. Called by the owning shard
// goroutine only; the clone is immutable afterwards.
func (r *PhaseRecorder) Snapshot() *PhaseSnapshot {
	s := &PhaseSnapshot{
		Queue:   r.queue.Clone(),
		Service: r.service.Clone(),
		Batch:   r.batch.Clone(),
	}
	for _, e := range r.ex {
		if e.Total != 0 {
			s.Exemplars = append(s.Exemplars, e)
		}
	}
	return s
}

// Merge folds o into s: histograms merge bucket-wise; per bucket the worse
// (larger-total) exemplar wins. Merging per-shard snapshots taken at one
// sampling instant yields the server-wide phase state at that instant.
func (s *PhaseSnapshot) Merge(o *PhaseSnapshot) {
	if o == nil {
		return
	}
	s.Queue.Merge(o.Queue)
	s.Service.Merge(o.Service)
	s.Batch.Merge(o.Batch)
	byBucket := make(map[int]Exemplar, len(s.Exemplars)+len(o.Exemplars))
	for _, e := range s.Exemplars {
		byBucket[e.Bucket] = e
	}
	for _, e := range o.Exemplars {
		if cur, ok := byBucket[e.Bucket]; !ok || e.Total > cur.Total {
			byBucket[e.Bucket] = e
		}
	}
	s.Exemplars = s.Exemplars[:0]
	for b := 0; b <= latencyBuckets; b++ {
		if e, ok := byBucket[b]; ok {
			s.Exemplars = append(s.Exemplars, e)
		}
	}
}

// Clone returns an independent deep copy.
func (s *PhaseSnapshot) Clone() *PhaseSnapshot {
	if s == nil {
		return nil
	}
	return &PhaseSnapshot{
		Queue:     s.Queue.Clone(),
		Service:   s.Service.Clone(),
		Batch:     s.Batch.Clone(),
		Exemplars: append([]Exemplar(nil), s.Exemplars...),
	}
}
