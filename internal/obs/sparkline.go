package obs

import (
	"fmt"
	"math"
	"strings"
)

// sparkRunes are the eight block heights of an ASCII/Unicode sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders vals as a fixed-width sparkline. Values are resampled
// to width by averaging, then scaled between the finite min and max of the
// series; +Inf values clamp to the top block, NaN renders as a space. An
// empty series renders as spaces.
func Sparkline(vals []float64, width int) string {
	if width <= 0 {
		width = 40
	}
	if len(vals) == 0 {
		return strings.Repeat(" ", width)
	}
	resampled := resample(vals, width)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range resampled {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range resampled {
		switch {
		case math.IsNaN(v):
			b.WriteByte(' ')
		case math.IsInf(v, 1):
			b.WriteRune(sparkRunes[len(sparkRunes)-1])
		case lo > hi || hi == lo:
			b.WriteRune(sparkRunes[0])
		default:
			idx := int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkRunes) {
				idx = len(sparkRunes) - 1
			}
			b.WriteRune(sparkRunes[idx])
		}
	}
	return b.String()
}

// resample shrinks or stretches vals to exactly width points by bucket
// averaging (shrink) or nearest-neighbour (stretch). NaN and +Inf inputs
// poison their bucket, deliberately: a window with an infinite burst is an
// infinite bucket.
func resample(vals []float64, width int) []float64 {
	out := make([]float64, width)
	n := len(vals)
	for i := 0; i < width; i++ {
		lo := i * n / width
		hi := (i + 1) * n / width
		if hi <= lo {
			hi = lo + 1
		}
		sum, cnt := 0.0, 0
		poison := math.NaN()
		clean := true
		for _, v := range vals[lo:hi] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				poison = v
				clean = false
				continue
			}
			sum += v
			cnt++
		}
		switch {
		case clean && cnt > 0:
			out[i] = sum / float64(cnt)
		case cnt > 0:
			// mixed finite and non-finite: prefer the non-finite signal
			out[i] = poison
		default:
			out[i] = poison
		}
	}
	return out
}

// fmtRange renders the [min max] annotation of a trajectory line.
func fmtRange(vals []float64) string {
	lo, hi := math.Inf(1), math.Inf(-1)
	anyInf := false
	for _, v := range vals {
		if math.IsInf(v, 1) {
			anyInf = true
			continue
		}
		if math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(lo, 1) {
		return "[all inf]"
	}
	if anyInf {
		return fmt.Sprintf("[%.2f .. inf]", lo)
	}
	return fmt.Sprintf("[%.2f .. %.2f]", lo, hi)
}

// RenderTrajectory renders the sampled RUM trajectory as sparklines, one
// block per method in first-seen order: windowed read and write
// amplification (bursts visible) and space amplification over the run —
// the paper's Figure-3 evolution, over time instead of phases.
func RenderTrajectory(samples []Sample, width int) string {
	if len(samples) == 0 {
		return "(no samples)\n"
	}
	var order []string
	byMethod := map[string][]Sample{}
	for _, s := range samples {
		if _, ok := byMethod[s.Method]; !ok {
			order = append(order, s.Method)
		}
		byMethod[s.Method] = append(byMethod[s.Method], s)
	}
	var b strings.Builder
	for _, m := range order {
		ss := byMethod[m]
		ro := make([]float64, len(ss))
		uo := make([]float64, len(ss))
		mo := make([]float64, len(ss))
		for i, s := range ss {
			ro[i] = s.Win.ReadAmplification()
			uo[i] = s.Win.WriteAmplification()
			mo[i] = s.MO
		}
		fmt.Fprintf(&b, "— %s (%d samples, %d ops)\n", m, len(ss), ss[len(ss)-1].Seq)
		fmt.Fprintf(&b, "  RO(win) %s %s\n", Sparkline(ro, width), fmtRange(ro))
		fmt.Fprintf(&b, "  UO(win) %s %s\n", Sparkline(uo, width), fmtRange(uo))
		fmt.Fprintf(&b, "  MO      %s %s\n", Sparkline(mo, width), fmtRange(mo))
	}
	return b.String()
}
