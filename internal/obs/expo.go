package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// This file is the single Prometheus text-format encoder of the repository.
// Two consumers share it: the post-hoc file exporter (Observer.WriteMetrics,
// rumbench -metrics) and the live scrape path (Registry, cmd/rumserve's
// GET /metrics). Keeping one encoder means one set of formatting rules —
// HELP/TYPE preambles, label quoting, le-bound rendering — and a single
// lint test (expo_test.go) that holds every emitted series to them.

// fmtFloat renders a float for CSV: fixed precision, "inf" for +Inf so
// spreadsheet tooling doesn't choke on Go's "+Inf".
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	if math.IsNaN(v) {
		return "nan"
	}
	return strconv.FormatFloat(v, 'f', 4, 64)
}

// fmtLe renders a histogram bound (or any exposition float) as Prometheus
// text: shortest round-trip form, "+Inf" for positive infinity.
func fmtLe(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Label is one name="value" pair attached to a sample.
type Label struct {
	Name, Value string
}

// L builds a label list from alternating name, value strings; it is the
// compact literal form used throughout the exporters.
func L(nv ...string) []Label {
	if len(nv)%2 != 0 {
		panic("obs: L called with an odd number of strings")
	}
	ls := make([]Label, 0, len(nv)/2)
	for i := 0; i < len(nv); i += 2 {
		ls = append(ls, Label{Name: nv[i], Value: nv[i+1]})
	}
	return ls
}

// Encoder writes Prometheus text format (version 0.0.4). It is a thin
// stateful wrapper over a buffered writer: Family emits the # HELP / # TYPE
// preamble for a metric family, the sample methods emit one series line
// each. The encoder does not reorder or deduplicate — callers emit families
// and their samples contiguously, as the format requires.
type Encoder struct {
	bw *bufio.Writer
}

// NewEncoder returns an encoder writing to w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{bw: bufio.NewWriter(w)}
}

// Flush flushes the underlying buffered writer and reports any write error
// accumulated during encoding.
func (e *Encoder) Flush() error { return e.bw.Flush() }

// Family emits the # HELP and # TYPE preamble for one metric family.
// metricType is one of "counter", "gauge", "histogram".
func (e *Encoder) Family(name, metricType, help string) {
	fmt.Fprintf(e.bw, "# HELP %s %s\n", name, help)
	fmt.Fprintf(e.bw, "# TYPE %s %s\n", name, metricType)
}

// writeLabels renders {a="x",b="y"} (nothing for an empty list).
func (e *Encoder) writeLabels(ls []Label) {
	if len(ls) == 0 {
		return
	}
	e.bw.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			e.bw.WriteByte(',')
		}
		fmt.Fprintf(e.bw, "%s=%q", l.Name, l.Value)
	}
	e.bw.WriteByte('}')
}

// Uint emits one sample line with an integer value.
func (e *Encoder) Uint(name string, ls []Label, v uint64) {
	e.bw.WriteString(name)
	e.writeLabels(ls)
	fmt.Fprintf(e.bw, " %d\n", v)
}

// Float emits one sample line with a float value in exposition form.
func (e *Encoder) Float(name string, ls []Label, v float64) {
	e.bw.WriteString(name)
	e.writeLabels(ls)
	e.bw.WriteByte(' ')
	e.bw.WriteString(fmtLe(v))
	e.bw.WriteByte('\n')
}

// Histo emits the bucket/sum/count series of one histogram under the given
// base labels, in Prometheus cumulative-bucket form ending at le="+Inf".
// The family preamble (# TYPE name histogram) is the caller's via Family.
func (e *Encoder) Histo(name string, ls []Label, h *Histogram) {
	e.HistoScaled(name, ls, h, 1, nil)
}

// HistoScaled emits h like Histo with every bound and the sum multiplied by
// scale — the nanosecond-bucket latency histograms render as base-unit
// seconds (scale 1e-9) without re-binning — and, when exemplars are given,
// attaches each to its bucket line in OpenMetrics exemplar form:
//
//	name_bucket{le="0.001"} 17 # {op="get",key="42",shard="1"} 0.00093
//
// The exemplar value is the exemplar's service time in scaled units; its
// labels carry the op kind, key, shard, and the queue/total decomposition.
// Exemplars must be sorted by bucket index (PhaseSnapshot order).
func (e *Encoder) HistoScaled(name string, ls []Label, h *Histogram, scale float64, exemplars []Exemplar) {
	bounds, cum := h.Buckets()
	bl := make([]Label, len(ls), len(ls)+1)
	copy(bl, ls)
	next := 0
	writeExemplar := func(bucket int) {
		for next < len(exemplars) && exemplars[next].Bucket < bucket {
			next++
		}
		if next >= len(exemplars) || exemplars[next].Bucket != bucket {
			return
		}
		x := exemplars[next]
		e.bw.WriteString(" # ")
		e.writeLabels(L(
			"op", x.Op,
			"key", strconv.FormatUint(x.Key, 10),
			"shard", strconv.Itoa(x.Shard),
			"queue", fmtLe(float64(x.Queue.Nanoseconds())*scale),
			"total", fmtLe(float64(x.Total.Nanoseconds())*scale),
			"pages", strconv.FormatUint(x.Pages, 10),
		))
		e.bw.WriteByte(' ')
		e.bw.WriteString(fmtLe(float64(x.Service.Nanoseconds()) * scale))
	}
	emitBucket := func(le string, bucket int, v uint64) {
		e.bw.WriteString(name + "_bucket")
		e.writeLabels(append(bl, Label{Name: "le", Value: le}))
		fmt.Fprintf(e.bw, " %d", v)
		writeExemplar(bucket)
		e.bw.WriteByte('\n')
	}
	for i, b := range bounds {
		emitBucket(fmtLe(b*scale), i, cum[i])
	}
	emitBucket("+Inf", len(bounds), cum[len(cum)-1])
	e.Float(name+"_sum", ls, h.Sum()*scale)
	e.Uint(name+"_count", ls, h.Count())
}

// Source produces metrics when scraped. Implementations must be safe to
// call from any goroutine: the live scrape path invokes them from HTTP
// handler goroutines while the system keeps running.
type Source interface {
	CollectMetrics(e *Encoder)
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func(e *Encoder)

// CollectMetrics implements Source.
func (f SourceFunc) CollectMetrics(e *Encoder) { f(e) }

// Registry renders a set of live metric sources to Prometheus text format
// on demand. It is the live half of the metrics plane: where
// Observer.WriteMetrics exports one finished run to a file, a Registry is
// scraped repeatedly while the system serves. Registration order is
// rendering order.
type Registry struct {
	mu      sync.RWMutex
	sources []Source
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register appends a source; it renders after all previously registered
// sources on every scrape.
func (r *Registry) Register(s Source) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sources = append(r.sources, s)
}

// Render writes every registered source's metrics to w.
func (r *Registry) Render(w io.Writer) error {
	r.mu.RLock()
	sources := r.sources
	r.mu.RUnlock()
	e := NewEncoder(w)
	for _, s := range sources {
		s.CollectMetrics(e)
	}
	return e.Flush()
}

// ServeHTTP implements http.Handler: a GET /metrics scrape endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, b.String())
}
