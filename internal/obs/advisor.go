package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// The RUM advisor: map a workload fingerprint through the paper's
// read/update/memory cost plane and report which catalog configuration the
// current traffic is best placed on. Report-only by design — the advisor
// publishes "you are on X, this window wants Y, here is the predicted RUM
// delta" and never actuates; closing the loop (online substitution) is a
// future PR, and keeping the advisor pure keeps it deterministic and free
// to run on every window rotation.
//
// The model is the analytic one the paper sketches, in page accesses per
// operation with pageEntries records per page. It deliberately reuses the
// wizard's framing (per-method RO/UO/MO formulas parameterised by the
// structural knobs) rather than measured counters: the advisor must price
// configurations that are NOT currently running, which only a model can do.

// Advisor model constants: records per page, memtable capacity in records
// (mirrors the catalog's lsm defaults), inner-node cache hit rate for
// tree-structured methods, the memory-rent weight λ that converts a space
// amplification into cost units, and the fraction of hot-share reads the
// buffer pool absorbs.
const (
	advPageEntries = 128
	advMemtable    = 1024
	advInnerCache  = 0.8
	advMemRent     = 0.05
	advHotHit      = 0.75
)

// AdvisorChoice is one priced candidate configuration.
type AdvisorChoice struct {
	// Config is the catalog-flavoured name, e.g. "lsm-tier(T=10,bloom=10b)".
	Config string `json:"config"`
	// RO/UO are predicted page accesses per point read / per write; ScanRO
	// per scan at the fingerprint's median scan length; MO is the space
	// amplification factor.
	RO     float64 `json:"ro"`
	UO     float64 `json:"uo"`
	ScanRO float64 `json:"scan_ro"`
	MO     float64 `json:"mo"`
	// Cost is the mix-weighted total: readFrac·RO + writeFrac·UO +
	// scanFrac·ScanRO + λ·MO. Lower is better placed.
	Cost float64 `json:"cost"`
}

// Advice is the advisor's verdict for one fingerprint: every candidate
// priced and ranked, the current configuration's row, and the predicted
// gain from moving.
type Advice struct {
	// Ranked holds every candidate, best (lowest cost) first.
	Ranked []AdvisorChoice `json:"ranked"`
	// Current is the priced row for the configuration the server is on
	// (matched by method-name prefix; a best-effort guess if the exact
	// knobs differ from any candidate).
	Current AdvisorChoice `json:"current"`
	// Best is Ranked[0].
	Best AdvisorChoice `json:"best"`
	// Delta is Current.Cost − Best.Cost: the predicted per-op page-access
	// saving of moving (0 when already best placed).
	Delta float64 `json:"delta"`
}

// Moved reports whether the advisor recommends a different configuration
// than the current one.
func (a Advice) Moved() bool { return a.Best.Config != a.Current.Config }

// String renders the one-line report form:
//
//	advisor: on btree(fill=0.67) cost 2.41 → lsm-tier(T=10,bloom=10b) cost 0.87 (Δ1.54/op; RO 1.9 UO 0.1 MO 1.6)
func (a Advice) String() string {
	if !a.Moved() {
		return fmt.Sprintf("advisor: on %s cost %.2f — best placed", a.Current.Config, a.Current.Cost)
	}
	return fmt.Sprintf("advisor: on %s cost %.2f → %s cost %.2f (Δ%.2f/op; RO %.2f UO %.2f MO %.2f)",
		a.Current.Config, a.Current.Cost, a.Best.Config, a.Best.Cost, a.Delta,
		a.Best.RO, a.Best.UO, a.Best.MO)
}

// advCandidate is one catalog configuration the advisor prices.
type advCandidate struct {
	name string
	// price returns (RO, UO, ScanRO, MO) for a dataset of n records, a scan
	// of scanRows rows, with reads discounted by cacheHit (fraction of point
	// reads the pool absorbs).
	price func(n, scanRows, cacheHit float64) (ro, uo, scan, mo float64)
}

// lsmLevels returns the level count for n records under size ratio t.
func lsmLevels(n, t float64) float64 {
	if n <= advMemtable {
		return 1
	}
	l := math.Ceil(math.Log(n/advMemtable) / math.Log(t))
	if l < 1 {
		l = 1
	}
	return l
}

// bloomFP is the false-positive rate of a Bloom filter with b bits per key.
func bloomFP(b float64) float64 { return math.Pow(0.6185, b) }

// advCandidates is the catalog slice the advisor prices: B-trees at two fill
// factors, an open-addressing hash table, and leveled/tiered LSMs across
// size ratio and Bloom budget. Names mirror the repository's method names
// before the parenthesis so the current method maps by prefix.
func advCandidates() []advCandidate {
	btree := func(fill float64) advCandidate {
		return advCandidate{
			name: fmt.Sprintf("btree(fill=%.2f)", fill),
			price: func(n, scanRows, cacheHit float64) (float64, float64, float64, float64) {
				fanout := advPageEntries * fill
				h := math.Max(1, math.Ceil(math.Log(math.Max(n, 2))/math.Log(fanout)))
				// Inner nodes are pool-resident; the leaf read misses
				// (1-cacheHit) of the time.
				ro := (1 + (h-1)*(1-advInnerCache)) * (1 - cacheHit)
				// Write-back pool: the leaf page absorbs repeated updates
				// before eviction, plus an amortised split share.
				uo := ro + 0.5 + 1/(fanout*(1-fill+0.01))
				// Leaves chain in key order: descend once, then sequential.
				scan := ro + scanRows/(advPageEntries*fill)
				mo := 1/fill + h*0.01
				return ro, uo, scan, mo
			},
		}
	}
	lsm := func(tiered bool, t, bloom float64) advCandidate {
		kind := "lsm-level"
		if tiered {
			kind = "lsm-tier"
		}
		return advCandidate{
			name: fmt.Sprintf("%s(T=%.0f,bloom=%.0fb)", kind, t, bloom),
			price: func(n, scanRows, cacheHit float64) (float64, float64, float64, float64) {
				l := lsmLevels(n, t)
				fp := bloomFP(bloom)
				runs := l // sorted runs a read/scan must consider
				if tiered {
					runs = 1 + (t-1)*(l-1) // every tier keeps up to T-1 runs per level
				}
				// Point read: one true hit, a false-positive page per other
				// run, and a filter/fence probe per run.
				ro := (1 + (runs-1)*fp + 0.02*runs) * (1 - cacheHit)
				// Merge amplification, read AND written, amortised to pages,
				// plus the memtable flush share: leveled rewrites ~T pages
				// per level crossed, tiered ~1.
				amp := l
				if !tiered {
					amp = t * l
				}
				uo := 2*amp/advPageEntries + 1.0/advPageEntries
				// Scans cannot use Bloom filters: a seek per run, then the
				// merged rows with per-run iterator/stale-version overhead.
				scan := runs*(1-cacheHit) + scanRows/advPageEntries*(1+0.15*runs)
				mo := 1 + bloom/advPageEntries
				if tiered {
					mo += (t - 1) / t // overlapping runs hold stale versions
				} else {
					mo += 1 / t
				}
				return ro, uo, scan, mo
			},
		}
	}
	return []advCandidate{
		btree(0.67),
		btree(0.90),
		{
			name: "hash",
			price: func(n, scanRows, cacheHit float64) (float64, float64, float64, float64) {
				ro := 1 * (1 - cacheHit)
				uo := ro + 0.5
				// No order: a scan is a full sweep.
				scan := math.Max(scanRows, n) / advPageEntries
				return ro, uo, scan, 1.5
			},
		},
		{
			name: "skiplist",
			price: func(n, scanRows, cacheHit float64) (float64, float64, float64, float64) {
				// Pointer-chasing towers: no page packing on the way down.
				ro := (1 + 0.3*math.Log2(math.Max(n, 2))) * (1 - cacheHit)
				uo := ro + 0.5
				scan := ro + scanRows/advPageEntries
				return ro, uo, scan, 1.8
			},
		},
		lsm(false, 4, 10),
		lsm(false, 10, 10),
		lsm(false, 10, 2),
		lsm(true, 4, 10),
		lsm(true, 10, 10),
	}
}

// Advise prices every candidate under fp's traffic shape and ranks them.
// current is the running configuration's method name (e.g. "btree",
// "lsm-level"); it maps to the candidate whose name shares the longest
// prefix, falling back to the first candidate. n is the live record count
// (the fingerprint's working set is used when larger — the advisor never
// assumes the structure is smaller than the traffic it serves).
func Advise(fp *Fingerprint, n float64, current string) Advice {
	st := fp.Stats()
	if ws := st.Distinct; ws > n {
		n = ws
	}
	if n < 2 {
		n = 2
	}
	scanRows := st.ScanP50
	if scanRows < 1 {
		scanRows = 1
	}
	// Hot-share reads hit the buffer pool; the discount applies to every
	// candidate equally, so skew narrows the read gaps without reordering
	// writes — which is exactly what a shared pool does.
	cacheHit := advHotHit * st.HotShare
	readF := st.Get
	writeF := st.Insert + st.Update + st.Delete
	scanF := st.Scan

	var out Advice
	for _, c := range advCandidates() {
		ro, uo, scan, mo := c.price(n, scanRows, cacheHit)
		out.Ranked = append(out.Ranked, AdvisorChoice{
			Config: c.name, RO: ro, UO: uo, ScanRO: scan, MO: mo,
			Cost: readF*ro + writeF*uo + scanF*scan + advMemRent*mo,
		})
	}
	sort.SliceStable(out.Ranked, func(i, j int) bool {
		if out.Ranked[i].Cost != out.Ranked[j].Cost {
			return out.Ranked[i].Cost < out.Ranked[j].Cost
		}
		return out.Ranked[i].Config < out.Ranked[j].Config
	})
	out.Best = out.Ranked[0]
	out.Current = matchCurrent(out.Ranked, current)
	out.Delta = out.Current.Cost - out.Best.Cost
	return out
}

// matchCurrent finds the ranked row whose config name best matches the
// running method name (longest common prefix wins, ties to the cheaper row).
func matchCurrent(ranked []AdvisorChoice, current string) AdvisorChoice {
	best, bestLen := ranked[0], -1
	for _, r := range ranked {
		base := r.Config
		if i := strings.IndexByte(base, '('); i >= 0 {
			base = base[:i]
		}
		l := 0
		for l < len(base) && l < len(current) && base[l] == current[l] {
			l++
		}
		if l == len(base) && l == len(current) && l > bestLen {
			best, bestLen = r, l
		}
	}
	if bestLen >= 0 {
		return best
	}
	// No exact method match: fall back to the longest prefix.
	for _, r := range ranked {
		if strings.HasPrefix(r.Config, current) && len(current) > bestLen {
			best, bestLen = r, len(current)
		}
	}
	return best
}
