package obs

import (
	"math"

	"repro/internal/approx"
	"repro/internal/sketch"
)

// Workload fingerprinting. A WorkloadRecorder taps one shard's op stream —
// the same single-owner hook path as the PhaseRecorder: only the shard
// goroutine records, and everything crosses goroutines as immutable
// Snapshot clones over mailbox happens-before edges. Where the phase plane
// answers "how long did operations take", the workload plane answers "what
// is the traffic *shaped* like": read/write/scan/delete mix, key skew
// (count-min + heavy-hitter top-k), working-set cardinality (HyperLogLog
// distinct estimator), and the scan-length distribution.
//
// The recorder is windowed by operation count, not wall time: every
// WindowOps operations it freezes the accumulating state into a Fingerprint,
// scores the drift distance against the previous window, latches a
// DriftEvent when the distance crosses the threshold, and starts the next
// window. Op-count windows are what make the drift experiment
// byte-deterministic — the same stream always rotates at the same points —
// and they are the natural denominator for mix fractions anyway.

// WorkloadOp enumerates the op kinds a recorder distinguishes. The first
// four mirror serve.Op by value, so the serving layer converts by cast;
// WScan is the extra kind a broadcast range scan records.
type WorkloadOp uint8

const (
	WGet WorkloadOp = iota
	WInsert
	WUpdate
	WDelete
	WScan
	// NumWorkloadOps sizes per-kind count arrays.
	NumWorkloadOps
)

// String names the op kind.
func (o WorkloadOp) String() string {
	switch o {
	case WGet:
		return "get"
	case WInsert:
		return "insert"
	case WUpdate:
		return "update"
	case WDelete:
		return "delete"
	case WScan:
		return "scan"
	default:
		return "op(?)"
	}
}

// Fingerprint is one completed window's workload shape, built from mergeable
// raw material: per-kind op counts, the window's heavy hitters with
// count-min-estimated frequencies, the distinct-key estimator's registers,
// and the scan-length histogram. Shard fingerprints merge exactly on the
// mix/scan side and by union on the probabilistic side; hot-key sets from
// different shards are disjoint by construction (a key routes to one shard),
// so concatenation is a true merge there too.
type Fingerprint struct {
	// Window is the 1-based window sequence number on the owning shard
	// (after a merge: the largest input window number).
	Window uint64 `json:"window"`
	// Ops counts the window's operations by kind, WorkloadOp order.
	Ops [NumWorkloadOps]uint64 `json:"ops"`
	// Hot is the window's heavy hitters, heaviest first, counts estimated by
	// the window's count-min sketch (tight for heavy keys).
	Hot []sketch.KeyCount `json:"hot,omitempty"`
	// ScanRows is the window's scan-length distribution (rows per scan).
	ScanRows *Histogram `json:"-"`

	distinct *approx.Distinct
}

// Total returns the window's total op count.
func (f *Fingerprint) Total() uint64 {
	var t uint64
	for _, c := range f.Ops {
		t += c
	}
	return t
}

// KeyedOps returns the point ops (everything but scans) — the denominator
// for key-skew fractions.
func (f *Fingerprint) KeyedOps() uint64 { return f.Total() - f.Ops[WScan] }

// MixFrac returns kind's fraction of the window's ops (0 for an empty
// window).
func (f *Fingerprint) MixFrac(op WorkloadOp) float64 {
	t := f.Total()
	if t == 0 {
		return 0
	}
	return float64(f.Ops[op]) / float64(t)
}

// HotShare returns the fraction of keyed ops that targeted the window's
// heavy hitters — the cache-friendliness signal. Count-min overestimates,
// so the share is clamped to 1.
func (f *Fingerprint) HotShare() float64 {
	keyed := f.KeyedOps()
	if keyed == 0 {
		return 0
	}
	var hot uint64
	for _, h := range f.Hot {
		hot += h.Count
	}
	s := float64(hot) / float64(keyed)
	if s > 1 {
		s = 1
	}
	return s
}

// ZipfSlope estimates the key-skew exponent: the least-squares slope of
// ln(count) against ln(rank) over the heavy hitters, negated so a uniform
// window reports ~0 and a zipf(θ) window reports ~θ. Fewer than two hot
// keys report 0.
func (f *Fingerprint) ZipfSlope() float64 {
	var xs, ys []float64
	for i, h := range f.Hot {
		if h.Count == 0 {
			break
		}
		xs = append(xs, math.Log(float64(i+1)))
		ys = append(ys, math.Log(float64(h.Count)))
	}
	if len(xs) < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	n := float64(len(xs))
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return -(n*sxy - sx*sy) / den
}

// DistinctKeys returns the window's estimated working-set cardinality.
func (f *Fingerprint) DistinctKeys() float64 {
	if f.distinct == nil {
		return 0
	}
	return f.distinct.Estimate()
}

// Clone returns an independent deep copy.
func (f *Fingerprint) Clone() *Fingerprint {
	if f == nil {
		return nil
	}
	c := *f
	c.Hot = append([]sketch.KeyCount(nil), f.Hot...)
	if f.ScanRows != nil {
		c.ScanRows = f.ScanRows.Clone()
	}
	c.distinct = f.distinct.Clone()
	return &c
}

// Merge folds o into f: counts sum, hot sets concatenate (disjoint across
// shards) and re-rank, distinct registers union, scan histograms merge, and
// the window number takes the max. kept bounds the merged hot list; pass
// len(f.Hot)+len(o.Hot) to keep everything.
func (f *Fingerprint) Merge(o *Fingerprint, kept int) {
	if o == nil {
		return
	}
	if o.Window > f.Window {
		f.Window = o.Window
	}
	for i := range f.Ops {
		f.Ops[i] += o.Ops[i]
	}
	f.Hot = mergeHot(f.Hot, o.Hot, kept)
	if f.ScanRows != nil && o.ScanRows != nil {
		f.ScanRows.Merge(o.ScanRows)
	} else if f.ScanRows == nil && o.ScanRows != nil {
		f.ScanRows = o.ScanRows.Clone()
	}
	if f.distinct == nil {
		f.distinct = o.distinct.Clone()
	} else {
		f.distinct.Merge(o.distinct)
	}
}

// mergeHot concatenates two ranked hot lists, sums duplicate keys (a key
// appears twice only when merging overlapping streams, never across
// shards), re-ranks by (count desc, key asc), and keeps the top kept.
func mergeHot(a, b []sketch.KeyCount, kept int) []sketch.KeyCount {
	t := sketch.NewTopK(kept)
	for _, h := range a {
		t.Add(h.Key, h.Count)
	}
	for _, h := range b {
		t.Add(h.Key, h.Count)
	}
	return t.Items()
}

// FingerprintStats is the compact derived summary of a fingerprint — what
// drift events record for their before/after sides and what the JSON
// endpoint publishes.
type FingerprintStats struct {
	Window    uint64  `json:"window"`
	Ops       uint64  `json:"ops"`
	Get       float64 `json:"get"`
	Insert    float64 `json:"insert"`
	Update    float64 `json:"update"`
	Delete    float64 `json:"delete"`
	Scan      float64 `json:"scan"`
	HotShare  float64 `json:"hot_share"`
	ZipfSlope float64 `json:"zipf_slope"`
	Distinct  float64 `json:"distinct_keys"`
	ScanP50   float64 `json:"scan_rows_p50"`
}

// Stats derives the compact summary.
func (f *Fingerprint) Stats() FingerprintStats {
	s := FingerprintStats{
		Window:    f.Window,
		Ops:       f.Total(),
		Get:       f.MixFrac(WGet),
		Insert:    f.MixFrac(WInsert),
		Update:    f.MixFrac(WUpdate),
		Delete:    f.MixFrac(WDelete),
		Scan:      f.MixFrac(WScan),
		HotShare:  f.HotShare(),
		ZipfSlope: f.ZipfSlope(),
		Distinct:  f.DistinctKeys(),
	}
	if f.ScanRows != nil && f.ScanRows.Count() > 0 {
		s.ScanP50 = f.ScanRows.Quantile(0.50)
	}
	return s
}

// DriftScore is the distance between two window fingerprints:
//
//	½·L1(mix fractions)            ∈ [0,1]  what the traffic does
//	+ |Δ hot share|                ∈ [0,1]  where it concentrates
//	+ ½·min(2, |log2 ratio of working sets|)  ∈ [0,1]  how wide it ranges
//	+ ⅛·min(2, |log2 ratio of scan p50s|)     ∈ [0,.25] how far scans reach
//
// Identical windows score 0; a full phase change (read-heavy uniform →
// write-heavy zipf) lands well above 1. The default latch threshold is
// DefaultDriftThreshold. The scan term is weighted so a p50 hopping one
// power-of-2 histogram bucket (a quantization flap, not a workload shift)
// cannot cross the threshold on its own.
func DriftScore(a, b FingerprintStats) float64 {
	l1 := math.Abs(a.Get-b.Get) + math.Abs(a.Insert-b.Insert) +
		math.Abs(a.Update-b.Update) + math.Abs(a.Delete-b.Delete) +
		math.Abs(a.Scan-b.Scan)
	score := l1/2 + math.Abs(a.HotShare-b.HotShare)
	score += 0.5 * logRatio(a.Distinct, b.Distinct, 2)
	score += 0.125 * logRatio(a.ScanP50, b.ScanP50, 2)
	return score
}

// logRatio returns |log2((x+1)/(y+1))| capped at lim — a symmetric,
// zero-safe magnitude-shift measure.
func logRatio(x, y, lim float64) float64 {
	r := math.Abs(math.Log2((x + 1) / (y + 1)))
	if r > lim {
		r = lim
	}
	return r
}

// DefaultDriftThreshold is the drift score at which a DriftEvent latches.
const DefaultDriftThreshold = 0.25

// DriftEvent is one latched workload shift: the window at which it was
// detected, the score, and the before/after summaries — the flight-recorder
// entry the advisor (and a future controller) reads.
type DriftEvent struct {
	Window uint64           `json:"window"`
	Score  float64          `json:"score"`
	From   FingerprintStats `json:"from"`
	To     FingerprintStats `json:"to"`
}

// Workload-recorder sizing: the heavy-hitter rank depth, the count-min
// shape (ε=1/256 of the window, δ≈e⁻³), and the scan-length histogram
// buckets (1 .. 2^19 rows).
const (
	workloadTopK      = 8
	workloadEpsilon   = 1.0 / 256
	workloadDelta     = 0.05
	scanRowsBuckets   = 20
	defaultWindowOps  = 4096
	defaultKeepRecent = 16
)

// WorkloadRecorder accumulates one shard's workload fingerprint state.
// Single-owner: only the shard goroutine calls RecordOp/RecordScan/Snapshot.
// The quiet path (no recorder) costs the serving layer one nil check per
// message, allocation-identical to a build without fingerprinting.
type WorkloadRecorder struct {
	windowOps uint64
	keep      int
	threshold float64

	// Cumulative plane (diffable across snapshots).
	cum      [NumWorkloadOps]uint64
	cumScans *Histogram

	// Current window.
	curOps   [NumWorkloadOps]uint64
	curScans *Histogram
	cm       *sketch.CountMin
	topk     *sketch.TopK
	distinct *approx.Distinct

	windows    uint64
	recent     []Fingerprint // completed windows, oldest first, ≤ keep
	last       FingerprintStats
	haveLast   bool
	drift      float64
	driftCount uint64
	events     []DriftEvent // latched drifts, oldest first, ≤ keep
}

// NewWorkloadRecorder returns a recorder rotating every windowOps operations
// (≤0 selects 4096) and retaining the last keep window fingerprints and
// drift events (≤0 selects 16).
func NewWorkloadRecorder(windowOps, keep int) *WorkloadRecorder {
	if windowOps <= 0 {
		windowOps = defaultWindowOps
	}
	if keep <= 0 {
		keep = defaultKeepRecent
	}
	return &WorkloadRecorder{
		windowOps: uint64(windowOps),
		keep:      keep,
		threshold: DefaultDriftThreshold,
		cumScans:  NewHistogram(PowerOfTwoBounds(scanRowsBuckets)),
		curScans:  NewHistogram(PowerOfTwoBounds(scanRowsBuckets)),
		cm:        sketch.New(workloadEpsilon, workloadDelta, nil),
		topk:      sketch.NewTopK(workloadTopK),
		distinct:  approx.NewDefaultDistinct(),
	}
}

// WindowOps returns the rotation cadence.
func (r *WorkloadRecorder) WindowOps() uint64 { return r.windowOps }

// RecordOp observes one keyed operation.
func (r *WorkloadRecorder) RecordOp(op WorkloadOp, key uint64) {
	r.cum[op]++
	r.curOps[op]++
	r.cm.Add(key, 1)
	r.topk.Add(key, 1)
	r.distinct.Add(key)
	r.maybeRotate()
}

// RecordScan observes one range scan that returned rows records on this
// shard.
func (r *WorkloadRecorder) RecordScan(rows int) {
	r.cum[WScan]++
	r.curOps[WScan]++
	r.cumScans.Record(float64(rows))
	r.curScans.Record(float64(rows))
	r.maybeRotate()
}

func (r *WorkloadRecorder) windowTotal() uint64 {
	var t uint64
	for _, c := range r.curOps {
		t += c
	}
	return t
}

// maybeRotate completes the window once it has WindowOps operations.
func (r *WorkloadRecorder) maybeRotate() {
	if r.windowTotal() < r.windowOps {
		return
	}
	r.Rotate()
}

// Rotate freezes the in-progress window into a Fingerprint, scores drift
// against the previous window, latches an event past the threshold, and
// clears the window state. Callers normally never need it — RecordOp
// rotates automatically — but an experiment draining a stream shorter than
// a full window can force the final partial window out. Rotating an empty
// window is a no-op.
func (r *WorkloadRecorder) Rotate() {
	if r.windowTotal() == 0 {
		return
	}
	r.windows++
	fp := Fingerprint{
		Window:   r.windows,
		Ops:      r.curOps,
		ScanRows: r.curScans.Clone(),
		distinct: r.distinct.Clone(),
	}
	// Heavy-hitter identities from the top-k table, frequencies from the
	// count-min sketch: the sketch never underestimates and is tight for
	// heavy keys, so the skew numbers survive top-k compaction churn.
	for _, h := range r.topk.ItemsInto(nil) {
		fp.Hot = append(fp.Hot, sketch.KeyCount{Key: h.Key, Count: r.cm.Estimate(h.Key)})
	}
	st := fp.Stats()
	if r.haveLast {
		r.drift = DriftScore(r.last, st)
		if r.drift >= r.threshold {
			r.driftCount++
			r.events = append(r.events, DriftEvent{
				Window: fp.Window, Score: r.drift, From: r.last, To: st,
			})
			if len(r.events) > r.keep {
				r.events = r.events[len(r.events)-r.keep:]
			}
		}
	}
	r.last, r.haveLast = st, true
	r.recent = append(r.recent, fp)
	if len(r.recent) > r.keep {
		r.recent = r.recent[len(r.recent)-r.keep:]
	}
	r.curOps = [NumWorkloadOps]uint64{}
	r.curScans = NewHistogram(PowerOfTwoBounds(scanRowsBuckets))
	r.cm.Clear()
	r.topk.Clear()
	r.distinct.Clear()
}

// WorkloadSnapshot is an immutable copy of a recorder's state, published
// over the same happens-before edges as every other shard ledger and
// mergeable across shards.
type WorkloadSnapshot struct {
	// WindowOps is the rotation cadence; Windows counts completed windows.
	WindowOps uint64 `json:"window_ops"`
	Windows   uint64 `json:"windows"`
	// Cum is the cumulative per-kind op ledger (diffable across snapshots);
	// CumScanRows the cumulative scan-length histogram.
	Cum         [NumWorkloadOps]uint64 `json:"cum"`
	CumScanRows *Histogram             `json:"-"`
	// Last is the newest completed window's fingerprint (nil before the
	// first rotation); Recent the retained history, oldest first.
	Last   *Fingerprint  `json:"last,omitempty"`
	Recent []Fingerprint `json:"recent,omitempty"`
	// Drift is the newest window-to-window drift score; DriftCount the
	// events latched so far; Events the retained ring, oldest first.
	Drift      float64      `json:"drift"`
	DriftCount uint64       `json:"drift_count"`
	Events     []DriftEvent `json:"events,omitempty"`
}

// Snapshot clones the recorder's state. Called by the owning shard
// goroutine only; the clone is immutable afterwards.
func (r *WorkloadRecorder) Snapshot() *WorkloadSnapshot {
	s := &WorkloadSnapshot{
		WindowOps:   r.windowOps,
		Windows:     r.windows,
		Cum:         r.cum,
		CumScanRows: r.cumScans.Clone(),
		Drift:       r.drift,
		DriftCount:  r.driftCount,
		Events:      append([]DriftEvent(nil), r.events...),
	}
	for i := range r.recent {
		s.Recent = append(s.Recent, *r.recent[i].Clone())
	}
	if n := len(s.Recent); n > 0 {
		s.Last = &s.Recent[n-1]
	}
	return s
}

// Clone returns an independent deep copy.
func (s *WorkloadSnapshot) Clone() *WorkloadSnapshot {
	if s == nil {
		return nil
	}
	c := &WorkloadSnapshot{
		WindowOps:  s.WindowOps,
		Windows:    s.Windows,
		Cum:        s.Cum,
		Drift:      s.Drift,
		DriftCount: s.DriftCount,
		Events:     append([]DriftEvent(nil), s.Events...),
	}
	if s.CumScanRows != nil {
		c.CumScanRows = s.CumScanRows.Clone()
	}
	for i := range s.Recent {
		c.Recent = append(c.Recent, *s.Recent[i].Clone())
	}
	if n := len(c.Recent); n > 0 {
		c.Last = &c.Recent[n-1]
	}
	return c
}

// Merge folds o into s: cumulative ledgers sum, the newest fingerprints
// merge (shards rotate on their own op counts, so "last windows" align in
// size, not wall time — the merged view is per-shard-latest), drift takes
// the worst shard, and event rings concatenate in window order. Recent
// histories are not merged pairwise — after a merge, Recent holds only the
// merged Last (per-window history is a per-shard notion).
func (s *WorkloadSnapshot) Merge(o *WorkloadSnapshot) {
	if o == nil {
		return
	}
	if o.Windows > s.Windows {
		s.Windows = o.Windows
	}
	for i := range s.Cum {
		s.Cum[i] += o.Cum[i]
	}
	if s.CumScanRows != nil && o.CumScanRows != nil {
		s.CumScanRows.Merge(o.CumScanRows)
	} else if s.CumScanRows == nil && o.CumScanRows != nil {
		s.CumScanRows = o.CumScanRows.Clone()
	}
	var last *Fingerprint
	if s.Last != nil {
		last = s.Last.Clone()
		last.Merge(o.Last, workloadTopK)
	} else if o.Last != nil {
		last = o.Last.Clone()
	}
	s.Recent = nil
	s.Last = nil
	if last != nil {
		s.Recent = []Fingerprint{*last}
		s.Last = &s.Recent[0]
	}
	if o.Drift > s.Drift {
		s.Drift = o.Drift
	}
	s.DriftCount += o.DriftCount
	s.Events = mergeEvents(s.Events, o.Events)
}

// mergeEvents concatenates two event rings in (window, score desc) order.
func mergeEvents(a, b []DriftEvent) []DriftEvent {
	out := append(append([]DriftEvent(nil), a...), b...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			if out[j].Window < out[j-1].Window ||
				(out[j].Window == out[j-1].Window && out[j].Score > out[j-1].Score) {
				out[j], out[j-1] = out[j-1], out[j]
			} else {
				break
			}
		}
	}
	return out
}
