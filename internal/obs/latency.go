package obs

import (
	"math"
	"time"
)

// Latency support: the serving layer (internal/serve and the bench `serve`
// experiment) measures request latency into the same fixed-bucket Histogram
// used for amplification and page counts — power-of-two nanosecond buckets,
// merged across clients with Histogram.Merge. Latency distributions are
// wall-clock facts and therefore live outside the determinism contract;
// callers print them to stderr or mark them non-deterministic.

// latencyBuckets covers 1ns .. ~2^39ns (≈9 minutes) — wider than any
// per-batch latency a simulated serving run can produce.
const latencyBuckets = 40

// NewLatencyHistogram returns a histogram with power-of-two nanosecond
// buckets, for recording time.Duration observations via RecordDuration.
func NewLatencyHistogram() *Histogram {
	return NewHistogram(PowerOfTwoBounds(latencyBuckets))
}

// RecordDuration counts one latency observation.
func (h *Histogram) RecordDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Record(float64(d.Nanoseconds()))
}

// QuantileDuration returns the q-quantile as a duration, with the same
// one-bucket overestimate as Quantile. Observations beyond the last bucket
// saturate at the largest bound instead of +Inf so the result stays a valid
// duration.
func (h *Histogram) QuantileDuration(q float64) time.Duration {
	v := h.Quantile(q)
	if math.IsInf(v, 1) {
		v = h.bounds[len(h.bounds)-1]
	}
	return time.Duration(int64(v))
}
