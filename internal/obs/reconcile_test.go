package obs_test

import (
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/rum"
	"repro/internal/storage"
)

// failAt is a minimal scripted storage.FaultInjector for reconciliation
// tests: it fails exact 1-based read/write attempt indices.
type failAt struct {
	reads, writes uint64
	failRead      map[uint64]error
	failWrite     map[uint64]error
	tornAt        map[uint64]int
}

func (s *failAt) ReadFault(storage.PageID) error {
	s.reads++
	return s.failRead[s.reads]
}

func (s *failAt) WriteFault(storage.PageID, int) (int, error) {
	s.writes++
	return s.tornAt[s.writes], s.failWrite[s.writes]
}

// TestObserverReconcilesWithStorageLedgers is the accounting acceptance
// gate: everything the observer counts must reconcile exactly with the
// device and pool ledgers — page traffic, cost units, hit ratio, batch
// submissions — and fault-event costs must sit in their own ledger without
// contaminating the successful-traffic cost.
func TestObserverReconcilesWithStorageLedgers(t *testing.T) {
	o := obs.New(obs.Config{})
	dev := storage.NewDevice(64, storage.MQSSD, nil)
	pool := storage.NewBufferPool(dev, 8)
	dev.SetHook(o)
	pool.SetHook(o)

	// Clean phase: allocations, batched write-back, readahead, demand hits
	// and misses, evictions.
	var ids []storage.PageID
	for i := 0; i < 12; i++ {
		f, err := pool.NewPage(rum.Base)
		if err != nil {
			t.Fatal(err)
		}
		f.Data()[0] = byte(i + 1)
		ids = append(ids, f.ID())
		pool.Release(f)
	}
	pool.FlushAll()
	pool.Readahead(ids) // the first 8 were evicted during the 12-page fill
	for _, id := range ids {
		f, err := pool.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		pool.Release(f)
	}

	dst, pst, tot := dev.Stats(), pool.Stats(), o.Totals()
	if tot.Cost != dst.CostUnits {
		t.Fatalf("observed cost %d != device cost units %d", tot.Cost, dst.CostUnits)
	}
	if tot.Reads() != dst.PageReads || tot.Writes() != dst.PageWrites {
		t.Fatalf("observed traffic r=%d w=%d != device r=%d w=%d",
			tot.Reads(), tot.Writes(), dst.PageReads, dst.PageWrites)
	}
	if tot.Hits != pst.Hits || tot.Misses != pst.Misses {
		t.Fatalf("observed hits/misses %d/%d != pool %d/%d", tot.Hits, tot.Misses, pst.Hits, pst.Misses)
	}
	// Every pool miss is a successful device read and vice versa (no
	// retries ran): the miss ledger and the read ledger are the same ledger.
	if tot.Misses != dst.PageReads {
		t.Fatalf("misses %d != device reads %d", tot.Misses, dst.PageReads)
	}
	if got, want := float64(tot.Hits)/float64(tot.Hits+tot.Misses), pst.HitRatio(); got != want {
		t.Fatalf("observed hit ratio %v != pool hit ratio %v", got, want)
	}
	if tot.Batches != dst.Batches || tot.BatchedPages != dst.BatchedPages {
		t.Fatalf("observed batches %d/%d != device %d/%d",
			tot.Batches, tot.BatchedPages, dst.Batches, dst.BatchedPages)
	}
	if tot.FaultCost != 0 || tot.Faults != 0 {
		t.Fatalf("clean phase recorded faults: %+v", tot)
	}

	// Faulted phase: one failed read, one torn write, one torn crash. Each
	// failure's event carries the attempted op's weighted cost (MQSSD: read
	// 4, write 20), ledgered as FaultCost — device CostUnits must not move.
	costBefore, faultsBase := dev.Stats().CostUnits, o.Totals()
	inj := &failAt{
		failRead:  map[uint64]error{1: fmt.Errorf("%w: scripted", storage.ErrInjected)},
		failWrite: map[uint64]error{1: fmt.Errorf("%w: scripted", storage.ErrInjected), 2: fmt.Errorf("%w: scripted", storage.ErrCrash)},
		tornAt:    map[uint64]int{2: 8},
	}
	dev.SetInjector(inj)
	if _, err := pool.Fetch(dev.Alloc(rum.Base)); err == nil {
		t.Fatal("expected read fault")
	}
	if err := dev.Write(ids[0], make([]byte, 64)); err == nil {
		t.Fatal("expected write fault")
	}
	if err := dev.Write(ids[1], make([]byte, 64)); err == nil {
		t.Fatal("expected torn crash")
	}

	dst, pst, tot = dev.Stats(), pool.Stats(), o.Totals()
	if dst.CostUnits != costBefore {
		t.Fatalf("failed ops moved device cost: %d -> %d", costBefore, dst.CostUnits)
	}
	if tot.Cost != dst.CostUnits {
		t.Fatalf("observed cost %d != device cost units %d after faults", tot.Cost, dst.CostUnits)
	}
	// One failed read (4) + one failed write (20) + one torn crash: the torn
	// event and the crash event both price the attempted write (20 each).
	if want := faultsBase.FaultCost + 4 + 20 + 20 + 20; tot.FaultCost != want {
		t.Fatalf("fault cost %d, want %d", tot.FaultCost, want)
	}
	// EvTorn counts in both the fault and torn ledgers, so three failed ops
	// show as three faults, one of them torn, one of them the crash point.
	if tot.Faults != 3 || tot.TornWrites != 1 || tot.Crashes != 1 {
		t.Fatalf("fault event counts: %+v", tot)
	}
	// The failed fetch counted neither hit nor miss; miss/read reconciliation
	// still holds against successful reads only.
	if pst.FetchFailures != 1 {
		t.Fatalf("fetch failures: %+v", pst)
	}
	if tot.Misses != pst.Misses || tot.Misses != dst.PageReads {
		t.Fatalf("post-fault miss ledger: obs %d pool %d device %d", tot.Misses, pst.Misses, dst.PageReads)
	}
}
