package obs_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func trace(total time.Duration, at time.Time) obs.SlowTrace {
	return obs.SlowTrace{
		At: at, Op: "get", Key: uint64(total),
		Queue: total / 4, Service: total - total/4, Total: total,
	}
}

// TestSlowLogKeepsSlowestK drives a full pass of distinct latencies through
// a small ring and checks exactly the slowest K survive, sorted slowest
// first.
func TestSlowLogKeepsSlowestK(t *testing.T) {
	l := obs.NewSlowLog(3, 0)
	base := time.Unix(100, 0)
	for i := 1; i <= 10; i++ {
		l.Offer(trace(time.Duration(i)*time.Millisecond, base))
	}
	got := l.Snapshot()
	if len(got) != 3 {
		t.Fatalf("retained %d traces, want 3", len(got))
	}
	for i, want := range []time.Duration{10, 9, 8} {
		if got[i].Total != want*time.Millisecond {
			t.Fatalf("slot %d: total %v, want %v", i, got[i].Total, want*time.Millisecond)
		}
	}
	// A fast op must not displace anything once the ring is full.
	l.Offer(trace(time.Millisecond, base))
	if got := l.Snapshot(); got[len(got)-1].Total != 8*time.Millisecond {
		t.Fatalf("fast op displaced a retained trace: %v", got)
	}
}

// TestSlowLogTTLEviction checks that with a TTL, an aged-out trace becomes
// evictable by an op that would otherwise be below the floor — the guard
// against a startup burst freezing the ring.
func TestSlowLogTTLEviction(t *testing.T) {
	l := obs.NewSlowLog(2, time.Second)
	base := time.Unix(100, 0)
	l.Offer(trace(10*time.Millisecond, base))
	l.Offer(trace(9*time.Millisecond, base))
	// Below the floor but two seconds later: the stale champions age out.
	l.Offer(trace(time.Millisecond, base.Add(2*time.Second)))
	got := l.Snapshot()
	if len(got) != 2 {
		t.Fatalf("retained %d traces, want 2", len(got))
	}
	found := false
	for _, tr := range got {
		if tr.Total == time.Millisecond {
			found = true
		}
	}
	if !found {
		t.Fatalf("aged ring refused a fresh trace: %v", got)
	}

	// Without aging, the same below-floor offer is dropped.
	l2 := obs.NewSlowLog(2, time.Second)
	l2.Offer(trace(10*time.Millisecond, base))
	l2.Offer(trace(9*time.Millisecond, base))
	l2.Offer(trace(time.Millisecond, base.Add(time.Millisecond)))
	for _, tr := range l2.Snapshot() {
		if tr.Total == time.Millisecond {
			t.Fatal("fresh ring admitted a below-floor trace")
		}
	}
}

// TestSlowLogConcurrent hammers one ring from several goroutines under the
// race detector and checks the invariant that survives concurrency: the
// retained set is exactly the K largest totals offered.
func TestSlowLogConcurrent(t *testing.T) {
	const writers, perWriter, k = 4, 200, 8
	l := obs.NewSlowLog(k, 0)
	base := time.Unix(100, 0)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Totals 1..800 ms, all distinct across writers.
				total := time.Duration(w*perWriter+i+1) * time.Millisecond
				l.Offer(trace(total, base))
				if i%32 == 0 {
					l.Snapshot() // readers must never block or tear
				}
			}
		}(w)
	}
	wg.Wait()
	got := l.Snapshot()
	if len(got) != k {
		t.Fatalf("retained %d traces, want %d", len(got), k)
	}
	for i, tr := range got {
		want := time.Duration(writers*perWriter-i) * time.Millisecond
		if tr.Total != want {
			t.Fatalf("slot %d: total %v, want %v", i, tr.Total, want)
		}
	}
}
