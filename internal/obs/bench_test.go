package obs_test

import (
	"testing"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/methods"
	"repro/internal/obs"
)

// BenchmarkInstrumentedGet compares the untraced hot path (nil observer, nil
// storage hook — the default) against the fully observed path. The nil-hook
// case must stay allocation-free and within noise of the seed's performance:
// the observability layer is paid for only when attached.
func BenchmarkInstrumentedGet(b *testing.B) {
	const n = 4096
	build := func(o *obs.Observer) *core.Instrumented {
		opt := methods.Options{PoolPages: 64}
		if o != nil {
			opt.Hook = o
		}
		am := methods.NewBTree(opt, btree.Config{})
		if o != nil {
			o.Target(am, "btree")
		}
		recs := make([]core.Record, n)
		for i := range recs {
			recs[i] = core.Record{Key: core.Key(i * 7), Value: core.Value(i)}
		}
		if err := am.BulkLoad(recs); err != nil {
			b.Fatal(err)
		}
		am.Flush()
		return am
	}

	b.Run("nil-hook", func(b *testing.B) {
		am := build(nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			am.Get(core.Key((i % n) * 7))
		}
	})
	b.Run("observed", func(b *testing.B) {
		// A small span cap keeps memory flat; dropped spans still feed
		// histograms, which is the steady-state tracing cost.
		am := build(obs.New(obs.Config{MaxSpans: 1024, SampleEvery: 1 << 20}))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			am.Get(core.Key((i % n) * 7))
		}
	})
}
