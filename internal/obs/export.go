package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// SpanJSON is the flat JSONL encoding of one Span. Field order is fixed by
// the struct, so traces are byte-stable across runs with the same seed.
type SpanJSON struct {
	Seq            uint64 `json:"seq"`
	Method         string `json:"method"`
	Op             string `json:"op"`
	BaseRead       uint64 `json:"base_read"`
	AuxRead        uint64 `json:"aux_read"`
	BaseWritten    uint64 `json:"base_written"`
	AuxWritten     uint64 `json:"aux_written"`
	LogicalRead    uint64 `json:"logical_read"`
	LogicalWritten uint64 `json:"logical_written"`
	PageReadsBase  uint64 `json:"page_reads_base"`
	PageReadsAux   uint64 `json:"page_reads_aux"`
	PageWritesBase uint64 `json:"page_writes_base"`
	PageWritesAux  uint64 `json:"page_writes_aux"`
	PoolHits       uint64 `json:"pool_hits"`
	PoolMisses     uint64 `json:"pool_misses"`
	PoolEvictions  uint64 `json:"pool_evictions"`
	PoolWriteBacks uint64 `json:"pool_writebacks"`
	CostUnits      uint64 `json:"cost_units"`
	// Fault-path counters are omitted when zero, so fault-free traces are
	// byte-identical to those of builds without fault injection.
	Faults     uint64 `json:"faults,omitempty"`
	TornWrites uint64 `json:"torn_writes,omitempty"`
	Crashes    uint64 `json:"crashes,omitempty"`
	Retries    uint64 `json:"retries,omitempty"`
	FaultCost  uint64 `json:"fault_cost_units,omitempty"`
	// Batch-submission counters are likewise omitted when zero, keeping
	// flat-media traces byte-identical to pre-batching ones.
	Batches      uint64 `json:"batches,omitempty"`
	BatchedPages uint64 `json:"batched_pages,omitempty"`
}

// ToJSON converts a span to its export form.
func (s Span) ToJSON() SpanJSON {
	return SpanJSON{
		Seq:            s.Seq,
		Method:         s.Method,
		Op:             s.Op,
		BaseRead:       s.Meter.BaseRead,
		AuxRead:        s.Meter.AuxRead,
		BaseWritten:    s.Meter.BaseWritten,
		AuxWritten:     s.Meter.AuxWritten,
		LogicalRead:    s.Meter.LogicalRead,
		LogicalWritten: s.Meter.LogicalWritten,
		PageReadsBase:  s.Pages.BaseReads,
		PageReadsAux:   s.Pages.AuxReads,
		PageWritesBase: s.Pages.BaseWrites,
		PageWritesAux:  s.Pages.AuxWrites,
		PoolHits:       s.Pages.Hits,
		PoolMisses:     s.Pages.Misses,
		PoolEvictions:  s.Pages.Evictions,
		PoolWriteBacks: s.Pages.WriteBacks,
		CostUnits:      s.Pages.Cost,
		Faults:         s.Pages.Faults,
		TornWrites:     s.Pages.TornWrites,
		Crashes:        s.Pages.Crashes,
		Retries:        s.Pages.Retries,
		FaultCost:      s.Pages.FaultCost,
		Batches:        s.Pages.Batches,
		BatchedPages:   s.Pages.BatchedPages,
	}
}

// WriteTrace writes every retained span as one JSON object per line.
func (o *Observer) WriteTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range o.spans {
		if err := enc.Encode(s.ToJSON()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteTimeSeries writes the sampled RUM trajectory as CSV. Cumulative
// read/write amplification (ro, uo) give the headline trajectory; windowed
// amplification (ro_win, uo_win) expose bursts between samples; mo is the
// space amplification measured at sampling time.
func (o *Observer) WriteTimeSeries(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "seq,method,base_read,aux_read,base_written,aux_written,logical_read,logical_written,ro,uo,mo,ro_win,uo_win,cost_units"); err != nil {
		return err
	}
	for _, s := range o.samples {
		_, err := fmt.Fprintf(bw, "%d,%s,%d,%d,%d,%d,%d,%d,%s,%s,%s,%s,%s,%d\n",
			s.Seq, s.Method,
			s.Cum.BaseRead, s.Cum.AuxRead, s.Cum.BaseWritten, s.Cum.AuxWritten,
			s.Cum.LogicalRead, s.Cum.LogicalWritten,
			fmtFloat(s.Cum.ReadAmplification()), fmtFloat(s.Cum.WriteAmplification()),
			fmtFloat(s.MO),
			fmtFloat(s.Win.ReadAmplification()), fmtFloat(s.Win.WriteAmplification()),
			s.Cost)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteMetrics writes a Prometheus text-format exposition of the run:
// page-event counters, traced byte counters, per-(method, op) operation
// counts, and the pages-touched and amplification histograms. It shares the
// exposition encoder with the live scrape path (Registry), so a file export
// and a /metrics scrape render identically.
func (o *Observer) WriteMetrics(w io.Writer) error {
	e := NewEncoder(w)
	o.CollectMetrics(e)
	return e.Flush()
}

// CollectMetrics implements Source, emitting the run's metrics through the
// shared exposition encoder. An Observer is single-goroutine, so collecting
// it live is only safe from the goroutine that owns it; the live plane
// (cmd/rumserve) instead collects snapshot-derived sources.
func (o *Observer) CollectMetrics(e *Encoder) {
	e.Family("rum_pages_total", "counter", "Device page operations observed, by direction and data class.")
	e.Uint("rum_pages_total", L("dir", "read", "class", "base"), o.total.BaseReads)
	e.Uint("rum_pages_total", L("dir", "read", "class", "aux"), o.total.AuxReads)
	e.Uint("rum_pages_total", L("dir", "write", "class", "base"), o.total.BaseWrites)
	e.Uint("rum_pages_total", L("dir", "write", "class", "aux"), o.total.AuxWrites)

	e.Family("rum_pool_events_total", "counter", "Buffer pool events observed.")
	e.Uint("rum_pool_events_total", L("event", "hit"), o.total.Hits)
	e.Uint("rum_pool_events_total", L("event", "miss"), o.total.Misses)
	e.Uint("rum_pool_events_total", L("event", "eviction"), o.total.Evictions)
	e.Uint("rum_pool_events_total", L("event", "writeback"), o.total.WriteBacks)

	e.Family("rum_fault_events_total", "counter", "Fault-path events observed: injected faults, torn writes, crash points, retry attempts.")
	e.Uint("rum_fault_events_total", L("event", "fault"), o.total.Faults)
	e.Uint("rum_fault_events_total", L("event", "torn"), o.total.TornWrites)
	e.Uint("rum_fault_events_total", L("event", "crash"), o.total.Crashes)
	e.Uint("rum_fault_events_total", L("event", "retry"), o.total.Retries)

	e.Family("rum_cost_units_total", "counter", "Medium-weighted cost units observed (successful traffic; reconciles with DeviceStats.CostUnits).")
	e.Uint("rum_cost_units_total", nil, o.total.Cost)

	e.Family("rum_fault_cost_units_total", "counter", "Medium-weighted cost of failed operations (EvFault/EvTorn/EvCrash payloads); counted apart from rum_cost_units_total.")
	e.Uint("rum_fault_cost_units_total", nil, o.total.FaultCost)

	e.Family("rum_batch_submissions_total", "counter", "Amortized batch submissions observed (multi-queue media only).")
	e.Uint("rum_batch_submissions_total", nil, o.total.Batches)

	e.Family("rum_batched_pages_total", "counter", "Pages carried by amortized batch submissions.")
	e.Uint("rum_batched_pages_total", nil, o.total.BatchedPages)

	e.Family("rum_traced_bytes_total", "counter", "Bytes accumulated by traced spans, by kind, direction, and class.")
	e.Uint("rum_traced_bytes_total", L("kind", "physical", "dir", "read", "class", "base"), o.traced.BaseRead)
	e.Uint("rum_traced_bytes_total", L("kind", "physical", "dir", "read", "class", "aux"), o.traced.AuxRead)
	e.Uint("rum_traced_bytes_total", L("kind", "physical", "dir", "write", "class", "base"), o.traced.BaseWritten)
	e.Uint("rum_traced_bytes_total", L("kind", "physical", "dir", "write", "class", "aux"), o.traced.AuxWritten)
	e.Uint("rum_traced_bytes_total", L("kind", "logical", "dir", "read"), o.traced.LogicalRead)
	e.Uint("rum_traced_bytes_total", L("kind", "logical", "dir", "write"), o.traced.LogicalWritten)

	e.Family("rum_untraced_pages_total", "counter", "Device page operations that arrived outside any span.")
	e.Uint("rum_untraced_pages_total", L("dir", "read"), o.untraced.Reads())
	e.Uint("rum_untraced_pages_total", L("dir", "write"), o.untraced.Writes())

	e.Family("rum_spans_dropped_total", "counter", "Spans discarded after the retention cap.")
	e.Uint("rum_spans_dropped_total", nil, o.dropped)

	keys := o.HistKeys()

	e.Family("rum_ops_total", "counter", "Traced logical operations.")
	for _, k := range keys {
		e.Uint("rum_ops_total", L("method", k.Method, "op", k.Op), o.ops[k])
	}

	writeHist := func(name, help string, pick func(*OpHist) *Histogram) {
		e.Family(name, "histogram", help)
		for _, k := range keys {
			e.Histo(name, L("method", k.Method, "op", k.Op), pick(o.hists[k]))
		}
	}
	writeHist("rum_op_pages", "Device pages touched per traced operation.",
		func(h *OpHist) *Histogram { return h.Pages })
	writeHist("rum_op_amplification", "Physical bytes per logical byte, per traced operation.",
		func(h *OpHist) *Histogram { return h.Amp })
}

// SummaryLine renders one compact human-readable line per (method, op) with
// HDR quantiles of the pages-touched distribution — the trace's headline.
func (o *Observer) SummaryLine(k OpKey) string {
	h := o.hists[k]
	if h == nil {
		return ""
	}
	return fmt.Sprintf("%s/%s: n=%d pages p50=%g p90=%g p99=%g max=%g amp p50=%g p99=%g",
		k.Method, k.Op, h.Pages.Count(),
		h.Pages.Quantile(0.50), h.Pages.Quantile(0.90), h.Pages.Quantile(0.99), h.Pages.Max(),
		h.Amp.Quantile(0.50), h.Amp.Quantile(0.99))
}
