package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// SpanJSON is the flat JSONL encoding of one Span. Field order is fixed by
// the struct, so traces are byte-stable across runs with the same seed.
type SpanJSON struct {
	Seq            uint64 `json:"seq"`
	Method         string `json:"method"`
	Op             string `json:"op"`
	BaseRead       uint64 `json:"base_read"`
	AuxRead        uint64 `json:"aux_read"`
	BaseWritten    uint64 `json:"base_written"`
	AuxWritten     uint64 `json:"aux_written"`
	LogicalRead    uint64 `json:"logical_read"`
	LogicalWritten uint64 `json:"logical_written"`
	PageReadsBase  uint64 `json:"page_reads_base"`
	PageReadsAux   uint64 `json:"page_reads_aux"`
	PageWritesBase uint64 `json:"page_writes_base"`
	PageWritesAux  uint64 `json:"page_writes_aux"`
	PoolHits       uint64 `json:"pool_hits"`
	PoolMisses     uint64 `json:"pool_misses"`
	PoolEvictions  uint64 `json:"pool_evictions"`
	PoolWriteBacks uint64 `json:"pool_writebacks"`
	CostUnits      uint64 `json:"cost_units"`
	// Fault-path counters are omitted when zero, so fault-free traces are
	// byte-identical to those of builds without fault injection.
	Faults     uint64 `json:"faults,omitempty"`
	TornWrites uint64 `json:"torn_writes,omitempty"`
	Crashes    uint64 `json:"crashes,omitempty"`
	Retries    uint64 `json:"retries,omitempty"`
}

// ToJSON converts a span to its export form.
func (s Span) ToJSON() SpanJSON {
	return SpanJSON{
		Seq:            s.Seq,
		Method:         s.Method,
		Op:             s.Op,
		BaseRead:       s.Meter.BaseRead,
		AuxRead:        s.Meter.AuxRead,
		BaseWritten:    s.Meter.BaseWritten,
		AuxWritten:     s.Meter.AuxWritten,
		LogicalRead:    s.Meter.LogicalRead,
		LogicalWritten: s.Meter.LogicalWritten,
		PageReadsBase:  s.Pages.BaseReads,
		PageReadsAux:   s.Pages.AuxReads,
		PageWritesBase: s.Pages.BaseWrites,
		PageWritesAux:  s.Pages.AuxWrites,
		PoolHits:       s.Pages.Hits,
		PoolMisses:     s.Pages.Misses,
		PoolEvictions:  s.Pages.Evictions,
		PoolWriteBacks: s.Pages.WriteBacks,
		CostUnits:      s.Pages.Cost,
		Faults:         s.Pages.Faults,
		TornWrites:     s.Pages.TornWrites,
		Crashes:        s.Pages.Crashes,
		Retries:        s.Pages.Retries,
	}
}

// WriteTrace writes every retained span as one JSON object per line.
func (o *Observer) WriteTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range o.spans {
		if err := enc.Encode(s.ToJSON()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// fmtFloat renders a float for CSV: fixed precision, "inf" for +Inf so
// spreadsheet tooling doesn't choke on Go's "+Inf".
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	if math.IsNaN(v) {
		return "nan"
	}
	return strconv.FormatFloat(v, 'f', 4, 64)
}

// WriteTimeSeries writes the sampled RUM trajectory as CSV. Cumulative
// read/write amplification (ro, uo) give the headline trajectory; windowed
// amplification (ro_win, uo_win) expose bursts between samples; mo is the
// space amplification measured at sampling time.
func (o *Observer) WriteTimeSeries(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "seq,method,base_read,aux_read,base_written,aux_written,logical_read,logical_written,ro,uo,mo,ro_win,uo_win,cost_units"); err != nil {
		return err
	}
	for _, s := range o.samples {
		_, err := fmt.Fprintf(bw, "%d,%s,%d,%d,%d,%d,%d,%d,%s,%s,%s,%s,%s,%d\n",
			s.Seq, s.Method,
			s.Cum.BaseRead, s.Cum.AuxRead, s.Cum.BaseWritten, s.Cum.AuxWritten,
			s.Cum.LogicalRead, s.Cum.LogicalWritten,
			fmtFloat(s.Cum.ReadAmplification()), fmtFloat(s.Cum.WriteAmplification()),
			fmtFloat(s.MO),
			fmtFloat(s.Win.ReadAmplification()), fmtFloat(s.Win.WriteAmplification()),
			s.Cost)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// fmtLe renders a histogram bound as a Prometheus le label value.
func fmtLe(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteMetrics writes a Prometheus text-format exposition of the run:
// page-event counters, traced byte counters, per-(method, op) operation
// counts, and the pages-touched and amplification histograms.
func (o *Observer) WriteMetrics(w io.Writer) error {
	bw := bufio.NewWriter(w)

	fmt.Fprintln(bw, "# HELP rum_pages_total Device page operations observed, by direction and data class.")
	fmt.Fprintln(bw, "# TYPE rum_pages_total counter")
	fmt.Fprintf(bw, "rum_pages_total{dir=\"read\",class=\"base\"} %d\n", o.total.BaseReads)
	fmt.Fprintf(bw, "rum_pages_total{dir=\"read\",class=\"aux\"} %d\n", o.total.AuxReads)
	fmt.Fprintf(bw, "rum_pages_total{dir=\"write\",class=\"base\"} %d\n", o.total.BaseWrites)
	fmt.Fprintf(bw, "rum_pages_total{dir=\"write\",class=\"aux\"} %d\n", o.total.AuxWrites)

	fmt.Fprintln(bw, "# HELP rum_pool_events_total Buffer pool events observed.")
	fmt.Fprintln(bw, "# TYPE rum_pool_events_total counter")
	fmt.Fprintf(bw, "rum_pool_events_total{event=\"hit\"} %d\n", o.total.Hits)
	fmt.Fprintf(bw, "rum_pool_events_total{event=\"miss\"} %d\n", o.total.Misses)
	fmt.Fprintf(bw, "rum_pool_events_total{event=\"eviction\"} %d\n", o.total.Evictions)
	fmt.Fprintf(bw, "rum_pool_events_total{event=\"writeback\"} %d\n", o.total.WriteBacks)

	fmt.Fprintln(bw, "# HELP rum_fault_events_total Fault-path events observed: injected faults, torn writes, crash points, retry attempts.")
	fmt.Fprintln(bw, "# TYPE rum_fault_events_total counter")
	fmt.Fprintf(bw, "rum_fault_events_total{event=\"fault\"} %d\n", o.total.Faults)
	fmt.Fprintf(bw, "rum_fault_events_total{event=\"torn\"} %d\n", o.total.TornWrites)
	fmt.Fprintf(bw, "rum_fault_events_total{event=\"crash\"} %d\n", o.total.Crashes)
	fmt.Fprintf(bw, "rum_fault_events_total{event=\"retry\"} %d\n", o.total.Retries)

	fmt.Fprintln(bw, "# HELP rum_cost_units_total Medium-weighted cost units observed.")
	fmt.Fprintln(bw, "# TYPE rum_cost_units_total counter")
	fmt.Fprintf(bw, "rum_cost_units_total %d\n", o.total.Cost)

	fmt.Fprintln(bw, "# HELP rum_traced_bytes_total Bytes accumulated by traced spans, by kind, direction, and class.")
	fmt.Fprintln(bw, "# TYPE rum_traced_bytes_total counter")
	fmt.Fprintf(bw, "rum_traced_bytes_total{kind=\"physical\",dir=\"read\",class=\"base\"} %d\n", o.traced.BaseRead)
	fmt.Fprintf(bw, "rum_traced_bytes_total{kind=\"physical\",dir=\"read\",class=\"aux\"} %d\n", o.traced.AuxRead)
	fmt.Fprintf(bw, "rum_traced_bytes_total{kind=\"physical\",dir=\"write\",class=\"base\"} %d\n", o.traced.BaseWritten)
	fmt.Fprintf(bw, "rum_traced_bytes_total{kind=\"physical\",dir=\"write\",class=\"aux\"} %d\n", o.traced.AuxWritten)
	fmt.Fprintf(bw, "rum_traced_bytes_total{kind=\"logical\",dir=\"read\"} %d\n", o.traced.LogicalRead)
	fmt.Fprintf(bw, "rum_traced_bytes_total{kind=\"logical\",dir=\"write\"} %d\n", o.traced.LogicalWritten)

	fmt.Fprintln(bw, "# HELP rum_untraced_pages_total Device page operations that arrived outside any span.")
	fmt.Fprintln(bw, "# TYPE rum_untraced_pages_total counter")
	fmt.Fprintf(bw, "rum_untraced_pages_total{dir=\"read\"} %d\n", o.untraced.Reads())
	fmt.Fprintf(bw, "rum_untraced_pages_total{dir=\"write\"} %d\n", o.untraced.Writes())

	fmt.Fprintln(bw, "# HELP rum_spans_dropped_total Spans discarded after the retention cap.")
	fmt.Fprintln(bw, "# TYPE rum_spans_dropped_total counter")
	fmt.Fprintf(bw, "rum_spans_dropped_total %d\n", o.dropped)

	keys := o.HistKeys()

	fmt.Fprintln(bw, "# HELP rum_ops_total Traced logical operations.")
	fmt.Fprintln(bw, "# TYPE rum_ops_total counter")
	for _, k := range keys {
		fmt.Fprintf(bw, "rum_ops_total{method=%q,op=%q} %d\n", k.Method, k.Op, o.ops[k])
	}

	writeHist := func(name string, pick func(*OpHist) *Histogram) {
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		for _, k := range keys {
			h := pick(o.hists[k])
			bounds, cum := h.Buckets()
			for i, b := range bounds {
				fmt.Fprintf(bw, "%s_bucket{method=%q,op=%q,le=%q} %d\n", name, k.Method, k.Op, fmtLe(b), cum[i])
			}
			fmt.Fprintf(bw, "%s_bucket{method=%q,op=%q,le=\"+Inf\"} %d\n", name, k.Method, k.Op, cum[len(cum)-1])
			fmt.Fprintf(bw, "%s_sum{method=%q,op=%q} %s\n", name, k.Method, k.Op, fmtLe(h.Sum()))
			fmt.Fprintf(bw, "%s_count{method=%q,op=%q} %d\n", name, k.Method, k.Op, h.Count())
		}
	}
	fmt.Fprintln(bw, "# HELP rum_op_pages Device pages touched per traced operation.")
	writeHist("rum_op_pages", func(h *OpHist) *Histogram { return h.Pages })
	fmt.Fprintln(bw, "# HELP rum_op_amplification Physical bytes per logical byte, per traced operation.")
	writeHist("rum_op_amplification", func(h *OpHist) *Histogram { return h.Amp })

	return bw.Flush()
}

// SummaryLine renders one compact human-readable line per (method, op) with
// HDR quantiles of the pages-touched distribution — the trace's headline.
func (o *Observer) SummaryLine(k OpKey) string {
	h := o.hists[k]
	if h == nil {
		return ""
	}
	return fmt.Sprintf("%s/%s: n=%d pages p50=%g p90=%g p99=%g max=%g amp p50=%g p99=%g",
		k.Method, k.Op, h.Pages.Count(),
		h.Pages.Quantile(0.50), h.Pages.Quantile(0.90), h.Pages.Quantile(0.99), h.Pages.Max(),
		h.Amp.Quantile(0.50), h.Amp.Quantile(0.99))
}
