package obs_test

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rum"
	"repro/internal/storage"
)

func phaseTrace(op string, key uint64, q, s time.Duration, at time.Time) obs.SlowTrace {
	return obs.SlowTrace{At: at, Op: op, Key: key, Queue: q, Service: s, Total: q + s}
}

// TestPhaseRecorderObserve checks that observations land in the queue and
// service histograms and that each service bucket retains its worst-total
// operation as the exemplar.
func TestPhaseRecorderObserve(t *testing.T) {
	r := obs.NewPhaseRecorder()
	base := time.Unix(100, 0)
	// Two ops in the same service bucket (~3µs): the one with the larger
	// total must own the exemplar.
	r.Observe(phaseTrace("get", 1, 50*time.Microsecond, 3*time.Microsecond, base))
	r.Observe(phaseTrace("get", 2, 1*time.Microsecond, 3*time.Microsecond, base))
	// One op in a different bucket.
	r.Observe(phaseTrace("insert", 3, time.Microsecond, 80*time.Microsecond, base))

	s := r.Snapshot()
	if s.Queue.Count() != 3 || s.Service.Count() != 3 {
		t.Fatalf("histogram counts queue=%d service=%d, want 3/3", s.Queue.Count(), s.Service.Count())
	}
	if len(s.Exemplars) != 2 {
		t.Fatalf("exemplars %v, want 2 buckets", s.Exemplars)
	}
	if s.Exemplars[0].Key != 1 {
		t.Fatalf("bucket kept key %d, want worst-total key 1", s.Exemplars[0].Key)
	}
	if s.Exemplars[0].Bucket >= s.Exemplars[1].Bucket {
		t.Fatal("exemplars not in bucket order")
	}

	// A later op in the 3µs bucket with a smaller total loses to the
	// incumbent while it is fresh, but wins once the incumbent is stale.
	r.Observe(phaseTrace("get", 4, time.Microsecond, 3*time.Microsecond, base.Add(time.Second)))
	if got := r.Snapshot().Exemplars[0].Key; got != 1 {
		t.Fatalf("fresh incumbent displaced by faster op (key %d)", got)
	}
	r.Observe(phaseTrace("get", 5, time.Microsecond, 3*time.Microsecond, base.Add(10*time.Minute)))
	if got := r.Snapshot().Exemplars[0].Key; got != 5 {
		t.Fatalf("stale incumbent survived TTL (key %d, want 5)", got)
	}
}

// TestPhaseRecorderStorageHook checks the storage.Hook implementation:
// read/write events count pages, fault-path events count faults and
// retries, and BeginOpWork resets the in-flight charge.
func TestPhaseRecorderStorageHook(t *testing.T) {
	r := obs.NewPhaseRecorder()
	r.BeginOpWork()
	r.StorageEvent(storage.EvRead, 1, rum.Base, 4096)
	r.StorageEvent(storage.EvWrite, 2, rum.Base, 4096)
	r.StorageEvent(storage.EvHit, 3, rum.Base, 0) // cache hit: no device page
	r.StorageEvent(storage.EvFault, 4, rum.Base, 0)
	r.StorageEvent(storage.EvTorn, 5, rum.Base, 0)
	r.StorageEvent(storage.EvRetry, 6, rum.Base, 0)
	pages, faults, retries := r.OpWork()
	if pages != 2 || faults != 2 || retries != 1 {
		t.Fatalf("op work %d/%d/%d, want 2/2/1", pages, faults, retries)
	}
	r.BeginOpWork()
	if p, f, re := r.OpWork(); p != 0 || f != 0 || re != 0 {
		t.Fatalf("BeginOpWork did not reset: %d/%d/%d", p, f, re)
	}
}

// TestPhaseSnapshotMergeAndDiff checks the cross-shard and cross-time
// algebra the rolling window relies on: Merge folds shards together (worse
// exemplar wins per bucket), and Diff over two snapshots isolates the
// window's traffic.
func TestPhaseSnapshotMergeAndDiff(t *testing.T) {
	base := time.Unix(100, 0)
	r0, r1 := obs.NewPhaseRecorder(), obs.NewPhaseRecorder()
	r0.Observe(phaseTrace("get", 10, time.Microsecond, 3*time.Microsecond, base))
	r1.Observe(phaseTrace("get", 11, 90*time.Microsecond, 3*time.Microsecond, base))
	r1.Observe(phaseTrace("scan", 12, time.Microsecond, time.Millisecond, base))

	m := r0.Snapshot()
	m.Merge(r1.Snapshot())
	if m.Service.Count() != 3 {
		t.Fatalf("merged service count %d, want 3", m.Service.Count())
	}
	if len(m.Exemplars) != 2 {
		t.Fatalf("merged exemplars %v, want 2 buckets", m.Exemplars)
	}
	// Shard 1's key-11 op has the larger total in the shared bucket.
	if m.Exemplars[0].Key != 11 {
		t.Fatalf("merge kept key %d, want worse-total key 11", m.Exemplars[0].Key)
	}

	// Snapshot, add traffic, snapshot again: the diff sees only the delta.
	r := obs.NewPhaseRecorder()
	r.Observe(phaseTrace("get", 1, time.Microsecond, 2*time.Microsecond, base))
	p0 := r.Snapshot()
	r.Observe(phaseTrace("get", 2, time.Microsecond, 2*time.Microsecond, base))
	r.Observe(phaseTrace("get", 3, time.Microsecond, 2*time.Microsecond, base))
	p1 := r.Snapshot()
	if d := p1.Service.Diff(p0.Service); d.Count() != 2 {
		t.Fatalf("window diff count %d, want 2", d.Count())
	}
	if c := p1.Clone(); c.Queue.Count() != p1.Queue.Count() || len(c.Exemplars) != len(p1.Exemplars) {
		t.Fatal("clone lost state")
	}
}

// TestWindowStatsPhases checks that StatsBetween surfaces queue/service
// quantiles when both points carry phase snapshots, and leaves them zero
// when tracing is off.
func TestWindowStatsPhases(t *testing.T) {
	base := time.Unix(100, 0)
	r := obs.NewPhaseRecorder()
	mk := func(at time.Time, ops uint64) *obs.WindowPoint {
		return &obs.WindowPoint{
			At:     at,
			Shards: []obs.ShardPoint{{Shard: 0, Ops: ops}},
			Phases: r.Snapshot(),
		}
	}
	p0 := mk(base, 0)
	for i := 0; i < 100; i++ {
		r.Observe(phaseTrace("get", uint64(i), 4*time.Microsecond, 16*time.Microsecond, base))
	}
	p1 := mk(base.Add(time.Second), 100)
	st := obs.StatsBetween(p0, p1)
	if st.QueueP99 == 0 || st.ServiceP99 == 0 {
		t.Fatalf("phase quantiles missing: %+v", st)
	}
	if st.QueueP99 >= st.ServiceP99 {
		t.Fatalf("queue p99 %v should be below service p99 %v here", st.QueueP99, st.ServiceP99)
	}
	// Untraced points leave the decomposition zero.
	q0 := &obs.WindowPoint{At: base, Shards: p0.Shards}
	q1 := &obs.WindowPoint{At: base.Add(time.Second), Shards: p1.Shards}
	if st := obs.StatsBetween(q0, q1); st.QueueP99 != 0 || st.ServiceP99 != 0 {
		t.Fatalf("untraced window reported phase quantiles: %+v", st)
	}
}
