package obs

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// feedMix drives ops 0..n-1 through the recorder with the given kind
// fractions over a key universe of keys (uniform unless zipf).
func feedMix(r *WorkloadRecorder, n int, get, ins, upd, del, scan float64, keys int, zipf bool, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	var z *rand.Zipf
	if zipf {
		z = rand.NewZipf(rng, 1.2, 1, uint64(keys-1))
	}
	for i := 0; i < n; i++ {
		var k uint64
		if zipf {
			k = z.Uint64()
		} else {
			k = uint64(rng.Intn(keys))
		}
		switch f := rng.Float64(); {
		case f < get:
			r.RecordOp(WGet, k)
		case f < get+ins:
			r.RecordOp(WInsert, k)
		case f < get+ins+upd:
			r.RecordOp(WUpdate, k)
		case f < get+ins+upd+del:
			r.RecordOp(WDelete, k)
		default:
			r.RecordScan(64 + rng.Intn(64))
		}
	}
}

func TestWorkloadRecorderRotation(t *testing.T) {
	r := NewWorkloadRecorder(1000, 8)
	feedMix(r, 3500, 0.90, 0.05, 0.05, 0, 0, 256, false, 1)
	s := r.Snapshot()
	if s.Windows != 3 {
		t.Fatalf("3500 ops at window 1000: %d windows, want 3", s.Windows)
	}
	if len(s.Recent) != 3 || s.Last == nil || s.Last.Window != 3 {
		t.Fatalf("recent=%d last=%v", len(s.Recent), s.Last)
	}
	var cum uint64
	for _, c := range s.Cum {
		cum += c
	}
	if cum != 3500 {
		t.Fatalf("cumulative ops %d, want 3500", cum)
	}
	if got := s.Last.Total(); got != 1000 {
		t.Fatalf("window ops %d, want 1000", got)
	}
	st := s.Last.Stats()
	if st.Get < 0.85 || st.Get > 0.95 {
		t.Fatalf("get fraction %.3f, want ≈0.90", st.Get)
	}
	if st.Distinct < 200 || st.Distinct > 320 {
		t.Fatalf("distinct %.0f over 256-key universe, want ≈256", st.Distinct)
	}
	// The final partial window (500 ops) is still accumulating; Rotate
	// forces it out for end-of-run reporting.
	r.Rotate()
	if s2 := r.Snapshot(); s2.Windows != 4 || s2.Last.Total() != 500 {
		t.Fatalf("forced rotation: windows=%d lastOps=%d, want 4/500", s2.Windows, s2.Last.Total())
	}
	r.Rotate() // empty window: no-op
	if s3 := r.Snapshot(); s3.Windows != 4 {
		t.Fatalf("empty rotation bumped windows to %d", s3.Windows)
	}
}

func TestWorkloadSkewSignals(t *testing.T) {
	uni := NewWorkloadRecorder(4096, 4)
	feedMix(uni, 4096, 1, 0, 0, 0, 0, 4096, false, 2)
	zip := NewWorkloadRecorder(4096, 4)
	feedMix(zip, 4096, 1, 0, 0, 0, 0, 4096, true, 2)
	u, z := uni.Snapshot().Last.Stats(), zip.Snapshot().Last.Stats()
	if u.HotShare >= z.HotShare {
		t.Fatalf("uniform hot share %.3f ≥ zipf hot share %.3f", u.HotShare, z.HotShare)
	}
	if z.HotShare < 0.3 {
		t.Fatalf("zipf(1.2) hot share %.3f, want ≥ 0.3", z.HotShare)
	}
	if u.ZipfSlope > 0.5 {
		t.Fatalf("uniform zipf slope %.3f, want ≈0", u.ZipfSlope)
	}
	if z.ZipfSlope < 0.7 {
		t.Fatalf("zipf(1.2) slope %.3f, want ≥ 0.7", z.ZipfSlope)
	}
	if u.Distinct <= z.Distinct {
		t.Fatalf("uniform working set %.0f ≤ zipf working set %.0f", u.Distinct, z.Distinct)
	}
}

func TestWorkloadDriftLatch(t *testing.T) {
	r := NewWorkloadRecorder(2048, 16)
	// Two steady read-heavy windows, then a hard phase change to
	// write-heavy scanning traffic.
	feedMix(r, 4096, 0.90, 0.05, 0.05, 0, 0, 1024, false, 3)
	if s := r.Snapshot(); s.DriftCount != 0 {
		t.Fatalf("steady phase latched %d drift events", s.DriftCount)
	}
	feedMix(r, 2048, 0.10, 0.50, 0.20, 0.05, 0.15, 1024, false, 3)
	s := r.Snapshot()
	if s.DriftCount == 0 || len(s.Events) == 0 {
		t.Fatal("phase change latched no drift event")
	}
	ev := s.Events[len(s.Events)-1]
	if ev.Score < DefaultDriftThreshold {
		t.Fatalf("latched event below threshold: %.3f", ev.Score)
	}
	if ev.From.Get < 0.8 || ev.To.Get > 0.3 {
		t.Fatalf("event sides wrong way round: from.get=%.2f to.get=%.2f", ev.From.Get, ev.To.Get)
	}
	if s.Drift < DefaultDriftThreshold {
		t.Fatalf("latest drift %.3f below threshold after phase change", s.Drift)
	}
}

func TestDriftScoreProperties(t *testing.T) {
	a := FingerprintStats{Get: 0.9, Insert: 0.1, HotShare: 0.4, Distinct: 1000, ScanP50: 0}
	if got := DriftScore(a, a); got != 0 {
		t.Fatalf("self-distance %.3f, want 0", got)
	}
	b := FingerprintStats{Insert: 0.9, Get: 0.1, HotShare: 0.1, Distinct: 64000, ScanP50: 256}
	if DriftScore(a, b) != DriftScore(b, a) {
		t.Fatal("drift score is not symmetric")
	}
	if got := DriftScore(a, b); got < 1 {
		t.Fatalf("full phase change scores %.3f, want ≥ 1", got)
	}
}

func TestWorkloadSnapshotMergeDisjointShards(t *testing.T) {
	// Two shards with disjoint key spaces, same cadence — the merged hot
	// list must interleave both shards' heavy hitters exactly.
	a, b := NewWorkloadRecorder(1024, 4), NewWorkloadRecorder(1024, 4)
	for i := 0; i < 1024; i++ {
		a.RecordOp(WGet, uint64(i%4)) // shard A hammers keys 0..3
	}
	for i := 0; i < 1024; i++ {
		b.RecordOp(WInsert, uint64(1000+i%2)) // shard B hammers 1000,1001
	}
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Cum[WGet] != 1024 || s.Cum[WInsert] != 1024 {
		t.Fatalf("merged cum %v", s.Cum)
	}
	if s.Last == nil || s.Last.Total() != 2048 {
		t.Fatalf("merged last window ops = %v, want 2048", s.Last)
	}
	hot := map[uint64]bool{}
	for _, h := range s.Last.Hot {
		hot[h.Key] = true
	}
	for _, want := range []uint64{0, 1, 2, 3, 1000, 1001} {
		if !hot[want] {
			t.Fatalf("merged hot list lost key %d: %v", want, s.Last.Hot)
		}
	}
	if ws := s.Last.DistinctKeys(); math.Abs(ws-6) > 1 {
		t.Fatalf("merged working set %.1f, want ≈6", ws)
	}
	// Merging into an empty snapshot adopts the other side.
	empty := NewWorkloadRecorder(1024, 4).Snapshot()
	empty.Merge(a.Snapshot())
	if empty.Last == nil || empty.Last.Total() != 1024 {
		t.Fatal("merge into empty snapshot lost the fingerprint")
	}
}

func TestWorkloadSnapshotImmutable(t *testing.T) {
	r := NewWorkloadRecorder(512, 4)
	feedMix(r, 512, 0.5, 0.5, 0, 0, 0, 64, false, 5)
	s1 := r.Snapshot()
	before := s1.Last.Stats()
	feedMix(r, 2048, 0, 0, 0, 1, 0, 64, false, 6)
	after := s1.Last.Stats()
	if before != after {
		t.Fatalf("snapshot mutated by later recording:\n before %+v\n after  %+v", before, after)
	}
}

func TestAdvisorPhases(t *testing.T) {
	mk := func(get, ins, upd, del, scan float64, keys int, zipf bool, rows int) *Fingerprint {
		r := NewWorkloadRecorder(4096, 4)
		rng := rand.New(rand.NewSource(11))
		var z *rand.Zipf
		if zipf {
			z = rand.NewZipf(rng, 1.2, 1, uint64(keys-1))
		}
		for i := 0; i < 4096; i++ {
			k := uint64(rng.Intn(keys))
			if zipf {
				k = z.Uint64()
			}
			switch f := rng.Float64(); {
			case f < get:
				r.RecordOp(WGet, k)
			case f < get+ins:
				r.RecordOp(WInsert, k)
			case f < get+ins+upd:
				r.RecordOp(WUpdate, k)
			case f < get+ins+upd+del:
				r.RecordOp(WDelete, k)
			default:
				r.RecordScan(rows)
			}
		}
		r.Rotate()
		return r.Snapshot().Last
	}
	const n = 1 << 15
	ingest := Advise(mk(0.15, 0.70, 0.10, 0.05, 0, n, false, 0), n, "btree")
	if !strings.HasPrefix(ingest.Best.Config, "lsm-tier") {
		t.Fatalf("write-heavy ingest advised %q, want lsm-tier", ingest.Best.Config)
	}
	serve := Advise(mk(0.90, 0.05, 0.05, 0, 0, n, true, 0), n, "btree")
	if !strings.HasPrefix(serve.Best.Config, "lsm-level") {
		t.Fatalf("point-read serving advised %q, want lsm-level", serve.Best.Config)
	}
	storm := Advise(mk(0.50, 0.05, 0.05, 0, 0.40, n, false, 512), n, "lsm-level")
	if !strings.HasPrefix(storm.Best.Config, "btree") {
		t.Fatalf("scan storm advised %q, want btree", storm.Best.Config)
	}
	// Report-only sanity: the current row is priced, the delta is the gap,
	// and moving is recommended exactly when the best differs.
	if !storm.Moved() || storm.Delta <= 0 {
		t.Fatalf("scan storm on lsm-level should recommend moving: %+v", storm)
	}
	if math.Abs(storm.Delta-(storm.Current.Cost-storm.Best.Cost)) > 1e-12 {
		t.Fatalf("delta %.4f ≠ current-best %.4f", storm.Delta, storm.Current.Cost-storm.Best.Cost)
	}
	if got := Advise(mk(0.15, 0.70, 0.10, 0.05, 0, n, false, 0), n, "lsm-tier"); got.Moved() {
		t.Fatalf("already best placed but advised to move: %s", got.String())
	}
	if !strings.Contains(ingest.String(), "advisor: on btree") {
		t.Fatalf("report line: %q", ingest.String())
	}
}

func TestAdvisorMapsEveryCatalogMethod(t *testing.T) {
	fp := &Fingerprint{Window: 1, Ops: [NumWorkloadOps]uint64{100, 50, 25, 5, 0}}
	for _, m := range []string{"btree", "hash", "skiplist", "lsm-level", "lsm-tier"} {
		a := Advise(fp, 1<<14, m)
		base := a.Current.Config
		if i := strings.IndexByte(base, '('); i >= 0 {
			base = base[:i]
		}
		if base != m {
			t.Fatalf("method %q mapped to current %q", m, a.Current.Config)
		}
	}
}

func TestRollingWindowRejectsNonPositive(t *testing.T) {
	r := NewRolling(4)
	base := time.Unix(0, 0)
	for i := 0; i < 4; i++ {
		r.Push(&WindowPoint{At: base.Add(time.Duration(i) * time.Second)})
	}
	for _, w := range []time.Duration{0, -time.Second} {
		if _, ok := r.Window(w); ok {
			t.Fatalf("Window(%v) accepted", w)
		}
	}
	if _, ok := r.Window(time.Second); !ok {
		t.Fatal("positive window rejected on a full ring")
	}
}

func TestRollingPartiallyFilled(t *testing.T) {
	r := NewRolling(8)
	if _, ok := r.Window(time.Second); ok {
		t.Fatal("empty ring produced a window")
	}
	base := time.Unix(100, 0)
	r.Push(&WindowPoint{At: base, Shards: []ShardPoint{{Ops: 10}}})
	if _, ok := r.Window(time.Second); ok {
		t.Fatal("single point produced a window")
	}
	if r.Len() != 1 || len(r.Points()) != 1 {
		t.Fatalf("len=%d points=%d after one push", r.Len(), len(r.Points()))
	}
	r.Push(&WindowPoint{At: base.Add(time.Second), Shards: []ShardPoint{{Ops: 30}}})
	st, ok := r.Window(10 * time.Second)
	if !ok || st.Ops != 20 || st.Span != time.Second {
		t.Fatalf("two-point ring: ok=%v ops=%d span=%v", ok, st.Ops, st.Span)
	}
	pts := r.Points()
	if len(pts) != 2 || !pts[0].At.Before(pts[1].At) {
		t.Fatalf("partially-filled traversal out of order: %v", pts)
	}
}

// TestRollingWrapAroundOrder hammers a small ring with a concurrent reader:
// every traversal must come back time-ordered even while pushes reuse
// slots. Before the seqlock this could observe the newest point in the
// oldest slot and return a decreasing sequence.
func TestRollingWrapAroundOrder(t *testing.T) {
	r := NewRolling(3)
	base := time.Unix(0, 0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.Push(&WindowPoint{At: base.Add(time.Duration(i) * time.Millisecond)})
		}
	}()
	for i := 0; i < 20000; i++ {
		pts := r.Points()
		for j := 1; j < len(pts); j++ {
			if pts[j].At.Before(pts[j-1].At) {
				close(stop)
				t.Fatalf("iteration %d: points out of order: %v then %v", i, pts[j-1].At, pts[j].At)
			}
		}
	}
	close(stop)
	wg.Wait()
}
