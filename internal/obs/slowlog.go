package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The flight recorder of the live serving plane: a fixed-size ring that
// retains the slowest-K recent request traces, each carrying the full
// lifecycle decomposition (queue wait, service time, device-charged work).
// Writers are the shard goroutines — admission is gated by one atomic load
// on the fast path, so an op faster than everything retained costs a single
// comparison — and readers (the /debug/slow handler, the SIGINT final
// report) traverse the slots lock-free, exactly like obs.Rolling: every
// retained trace is an immutable heap object published through an atomic
// slot pointer.

// SlowTrace is one traced request's lifecycle record. Queue is the time
// from enqueue (the client's Do call stamping the message) to the moment
// the shard goroutine began executing this operation — mailbox wait plus
// in-batch wait behind earlier operations of the same message. Service is
// the operation's own execution time. Total = Queue + Service exactly (all
// three derive from the same monotonic clock readings), which is the
// decomposition invariant the serve tests hold property-style.
type SlowTrace struct {
	At    time.Time `json:"at"`    // completion instant
	Shard int       `json:"shard"` // shard that executed the op
	Op    string    `json:"op"`    // get / insert / update / delete
	Key   uint64    `json:"key"`
	Batch int       `json:"batch"` // ops carried by the same mailbox message

	Queue   time.Duration `json:"queue_ns"`
	Service time.Duration `json:"service_ns"`
	Total   time.Duration `json:"total_ns"`

	// Device-charged work attributed to the op: physical bytes from the
	// shard's meter delta (always present), and page/fault/retry counts
	// from the storage hook when the recorder is wired into the shard's
	// storage stack (zero otherwise).
	ReadBytes  uint64 `json:"read_bytes"`
	WriteBytes uint64 `json:"write_bytes"`
	Pages      uint64 `json:"pages"`
	Faults     uint64 `json:"faults"`
	Retries    uint64 `json:"retries"`
}

// SlowLog retains the K slowest recent traces. Offer may be called
// concurrently from any number of goroutines; Snapshot readers never block
// writers or each other. With a positive TTL a retained trace older than
// the TTL becomes evictable by any admitted trace, so a burst at startup
// cannot freeze the ring forever; with TTL zero the log is a pure
// slowest-K-since-reset record (deterministic, used by tests).
type SlowLog struct {
	slots []atomic.Pointer[SlowTrace]
	// floor is the admission gate read on the fast path: the smallest Total
	// (in ns) among retained traces once the ring is full, or -1 while any
	// slot is still empty. An op with Total <= floor is dropped with no lock.
	floor atomic.Int64
	// oldest is the earliest retained At (unix ns), maintained under mu; the
	// fast path compares it against the candidate's At so TTL eviction does
	// not force every offer through the lock.
	oldest atomic.Int64
	ttl    time.Duration

	mu sync.Mutex // serializes writers past the gate
}

// NewSlowLog returns a flight recorder retaining the k slowest traces
// (minimum 1). ttl <= 0 disables age-based eviction.
func NewSlowLog(k int, ttl time.Duration) *SlowLog {
	if k < 1 {
		k = 1
	}
	l := &SlowLog{slots: make([]atomic.Pointer[SlowTrace], k), ttl: ttl}
	l.floor.Store(-1)
	return l
}

// Cap returns the ring capacity K.
func (l *SlowLog) Cap() int { return len(l.slots) }

// Offer submits one trace. It is retained if a slot is empty, if it is
// slower than the current slowest-K floor, or (with a TTL) if some retained
// trace has aged out. The fast path — a trace that cannot be admitted — is
// one atomic load and a comparison.
func (l *SlowLog) Offer(t SlowTrace) {
	if f := l.floor.Load(); f >= 0 && int64(t.Total) <= f {
		if l.ttl <= 0 || t.At.UnixNano()-l.oldest.Load() <= int64(l.ttl) {
			return
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	// Pick the victim slot: an empty slot beats an expired trace beats the
	// minimum-Total trace; an unexpired minimum only loses to a slower trace.
	victim, victimTotal := -1, int64(-1)
	expired := -1
	for i := range l.slots {
		p := l.slots[i].Load()
		if p == nil {
			victim = i
			break
		}
		if l.ttl > 0 && t.At.Sub(p.At) > l.ttl && expired < 0 {
			expired = i
		}
		if victimTotal < 0 || int64(p.Total) < victimTotal {
			victim, victimTotal = i, int64(p.Total)
		}
	}
	if p := l.slots[victim].Load(); p != nil {
		if expired >= 0 {
			victim = expired
		} else if int64(t.Total) <= victimTotal {
			return // raced with another writer; no longer above the floor
		}
	}
	l.slots[victim].Store(&t)
	// Recompute the admission floor and the oldest instant under the lock.
	floor, oldest := int64(-1), int64(0)
	full := true
	for i := range l.slots {
		p := l.slots[i].Load()
		if p == nil {
			full = false
			break
		}
		if floor < 0 || int64(p.Total) < floor {
			floor = int64(p.Total)
		}
		if at := p.At.UnixNano(); oldest == 0 || at < oldest {
			oldest = at
		}
	}
	if !full {
		floor = -1
	}
	l.floor.Store(floor)
	l.oldest.Store(oldest)
}

// Snapshot returns the retained traces sorted slowest-first. It is
// lock-free: slots are read through their atomic pointers and every trace
// is immutable after publication.
func (l *SlowLog) Snapshot() []SlowTrace {
	out := make([]SlowTrace, 0, len(l.slots))
	for i := range l.slots {
		if p := l.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// Len returns the number of retained traces.
func (l *SlowLog) Len() int {
	n := 0
	for i := range l.slots {
		if l.slots[i].Load() != nil {
			n++
		}
	}
	return n
}
