package skiplist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestBasicOps(t *testing.T) {
	l := New(1, 0.5, nil)
	if _, ok := l.Get(1); ok {
		t.Fatal("get on empty")
	}
	if err := l.Insert(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := l.Insert(1, 11); err != core.ErrKeyExists {
		t.Fatalf("dup: %v", err)
	}
	if v, ok := l.Get(1); !ok || v != 10 {
		t.Fatal("get")
	}
	if !l.Update(1, 20) {
		t.Fatal("update")
	}
	if l.Update(2, 0) {
		t.Fatal("phantom update")
	}
	if !l.Delete(1) {
		t.Fatal("delete")
	}
	if l.Delete(1) {
		t.Fatal("double delete")
	}
	if l.Len() != 0 {
		t.Fatal("len")
	}
}

func TestRandomizedAgainstMap(t *testing.T) {
	l := New(2, 0.5, nil)
	rng := rand.New(rand.NewSource(6))
	ref := map[uint64]uint64{}
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Intn(4000))
		switch rng.Intn(4) {
		case 0:
			err := l.Insert(k, k)
			if _, ok := ref[k]; ok != (err == core.ErrKeyExists) {
				t.Fatalf("op %d: insert consistency", i)
			}
			if err == nil {
				ref[k] = k
			}
		case 1:
			v, ok := l.Get(k)
			rv, rok := ref[k]
			if ok != rok || (ok && v != rv) {
				t.Fatalf("op %d: get(%d)", i, k)
			}
		case 2:
			nv := rng.Uint64()
			if l.Update(k, nv) {
				ref[k] = nv
			}
		case 3:
			if got, want := l.Delete(k), mapHas(ref, k); got != want {
				t.Fatalf("op %d: delete", i)
			}
			delete(ref, k)
		}
		if l.Len() != len(ref) {
			t.Fatalf("op %d: len", i)
		}
	}
}

func mapHas(m map[uint64]uint64, k uint64) bool { _, ok := m[k]; return ok }

func TestAscendingOrderProperty(t *testing.T) {
	f := func(keys []uint64) bool {
		l := New(3, 0.5, nil)
		for _, k := range keys {
			_ = l.Insert(k, k)
		}
		prev, first, ok := uint64(0), true, true
		l.RangeScan(0, ^uint64(0), func(k core.Key, v core.Value) bool {
			if !first && k <= prev {
				ok = false
				return false
			}
			first, prev = false, k
			return true
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPutShadowsAndCounts(t *testing.T) {
	l := New(4, 0.5, nil)
	if l.Put(9, 1) {
		t.Fatal("put of fresh key reported existing")
	}
	if !l.Put(9, 2) {
		t.Fatal("put of existing key reported fresh")
	}
	if v, _ := l.Get(9); v != 2 {
		t.Fatal("put did not overwrite")
	}
	if l.Len() != 1 {
		t.Fatalf("len %d", l.Len())
	}
}

func TestRangeScanBounds(t *testing.T) {
	l := New(5, 0.5, nil)
	for k := uint64(0); k < 100; k += 2 {
		if err := l.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	n := l.RangeScan(10, 20, func(k core.Key, v core.Value) bool {
		if k < 10 || k > 20 {
			t.Fatalf("out of range %d", k)
		}
		return true
	})
	if n != 6 { // 10,12,14,16,18,20
		t.Fatalf("emitted %d", n)
	}
}

func TestAscendFrom(t *testing.T) {
	l := New(6, 0.5, nil)
	for k := uint64(0); k < 50; k++ {
		if err := l.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	l.Ascend(40, func(k core.Key, v core.Value) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 10 || got[0] != 40 {
		t.Fatalf("ascend: %v", got)
	}
}

func TestReset(t *testing.T) {
	l := New(7, 0.5, nil)
	for k := uint64(0); k < 100; k++ {
		if err := l.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	l.Reset()
	if l.Len() != 0 {
		t.Fatal("len after reset")
	}
	if _, ok := l.Get(5); ok {
		t.Fatal("data survived reset")
	}
	if err := l.Insert(5, 5); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoad(t *testing.T) {
	l := New(8, 0.5, nil)
	recs := make([]core.Record, 500)
	for i := range recs {
		recs[i] = core.Record{Key: uint64(i), Value: uint64(i * 2)}
	}
	if err := l.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 500 {
		t.Fatal("len")
	}
	if v, ok := l.Get(250); !ok || v != 500 {
		t.Fatal("get after bulk")
	}
}

func TestDeterministicTowers(t *testing.T) {
	a, b := New(9, 0.5, nil), New(9, 0.5, nil)
	for k := uint64(0); k < 1000; k++ {
		_ = a.Insert(k, k)
		_ = b.Insert(k, k)
	}
	if a.Size() != b.Size() {
		t.Fatal("same seed produced different towers")
	}
}

// TestHigherPLowersSearchCost: the Section-5 tunability claim for the
// skiplist — more pointers (higher p, higher MO) buy shorter searches.
func TestHigherPLowersSearchCost(t *testing.T) {
	cost := func(p float64) (reads uint64, aux uint64) {
		l := New(10, p, nil)
		for k := uint64(0); k < 20000; k++ {
			_ = l.Insert(k*7, k)
		}
		m0 := l.Meter().Snapshot()
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 500; i++ {
			l.Get(uint64(rng.Intn(20000)) * 7)
		}
		return l.Meter().Diff(m0).PhysicalRead(), l.Size().AuxBytes
	}
	lowReads, lowAux := cost(0.1)
	highReads, highAux := cost(0.5)
	if highAux <= lowAux {
		t.Fatalf("higher p should store more pointers: %d vs %d", highAux, lowAux)
	}
	if highReads >= lowReads {
		t.Fatalf("higher p should read less: %d vs %d", highReads, lowReads)
	}
}

func TestKnobs(t *testing.T) {
	l := New(1, 0.5, nil)
	if err := l.SetKnob("p", 0.7); err != nil {
		t.Fatal(err)
	}
	if err := l.SetKnob("p", 1.5); err == nil {
		t.Fatal("invalid p accepted")
	}
	if err := l.SetKnob("zzz", 0.5); err == nil {
		t.Fatal("unknown knob accepted")
	}
	if l.Knobs()[0].Current != 0.7 {
		t.Fatal("knob not applied")
	}
}
