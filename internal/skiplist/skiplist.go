// Package skiplist implements Pugh's skip list, one of the read-optimized
// logarithmic structures at the top corner of Figure 1. It is an in-memory
// structure: physical accounting meters the node bytes each operation
// touches, and the tower pointers are the space overhead that buys
// logarithmic search.
//
// The skip list doubles as the LSM-tree's memtable (internal/lsm), so it
// exposes ordered ascent in addition to the core.AccessMethod operations.
package skiplist

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/rum"
)

// MaxLevel bounds tower height; 2^24 expected elements at p=0.5 is far above
// anything the experiments use.
const MaxLevel = 24

const pointerSize = 8

type node struct {
	key  core.Key
	val  core.Value
	next []*node
}

// size is the accounted footprint of the node: record plus tower pointers.
func (n *node) size() int { return core.RecordSize + len(n.next)*pointerSize }

// List is a skip list. Not safe for concurrent use.
type List struct {
	head     *node
	level    int
	count    int
	ptrBytes uint64 // total tower-pointer bytes, for Size()
	rng      *rand.Rand
	p        float64
	meter    *rum.Meter
}

// New creates an empty list with promotion probability p (0 means 0.5),
// deterministic under seed. A nil meter gets a private one.
func New(seed int64, p float64, meter *rum.Meter) *List {
	if meter == nil {
		meter = &rum.Meter{}
	}
	if p <= 0 || p >= 1 {
		p = 0.5
	}
	head := &node{next: make([]*node, MaxLevel)}
	return &List{
		head:     head,
		level:    1,
		rng:      rand.New(rand.NewSource(seed)),
		p:        p,
		meter:    meter,
		ptrBytes: MaxLevel * pointerSize,
	}
}

// Name returns "skiplist".
func (l *List) Name() string { return "skiplist" }

// Len returns the number of records.
func (l *List) Len() int { return l.count }

// Meter returns the RUM accounting.
func (l *List) Meter() *rum.Meter { return l.meter }

// Size reports records as base bytes and tower pointers as auxiliary bytes.
func (l *List) Size() rum.SizeInfo {
	return rum.SizeInfo{
		BaseBytes: uint64(l.count) * core.RecordSize,
		AuxBytes:  l.ptrBytes,
	}
}

// randomLevel draws a tower height with geometric distribution.
func (l *List) randomLevel() int {
	lvl := 1
	for lvl < MaxLevel && l.rng.Float64() < l.p {
		lvl++
	}
	return lvl
}

// findPredecessors walks the list charging one node read per visited node
// and fills pred[i] with the rightmost node at level i whose key < k.
func (l *List) findPredecessors(k core.Key, pred *[MaxLevel]*node) *node {
	x := l.head
	l.meter.CountRead(rum.Base, rum.LineCost(x.size()))
	for i := l.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < k {
			x = x.next[i]
			l.meter.CountRead(rum.Base, rum.LineCost(x.size()))
		}
		pred[i] = x
	}
	return x.next[0]
}

// Get searches for k in expected logarithmic node visits.
func (l *List) Get(k core.Key) (core.Value, bool) {
	var pred [MaxLevel]*node
	n := l.findPredecessors(k, &pred)
	if n != nil && n.key == k {
		l.meter.CountRead(rum.Base, rum.LineCost(n.size()))
		return n.val, true
	}
	return 0, false
}

// Insert adds a record.
func (l *List) Insert(k core.Key, v core.Value) error {
	var pred [MaxLevel]*node
	n := l.findPredecessors(k, &pred)
	if n != nil && n.key == k {
		return core.ErrKeyExists
	}
	lvl := l.randomLevel()
	if lvl > l.level {
		for i := l.level; i < lvl; i++ {
			pred[i] = l.head
		}
		l.level = lvl
	}
	nn := &node{key: k, val: v, next: make([]*node, lvl)}
	for i := 0; i < lvl; i++ {
		nn.next[i] = pred[i].next[i]
		pred[i].next[i] = nn
	}
	l.count++
	l.ptrBytes += uint64(lvl) * pointerSize
	// One node write plus a pointer write in each predecessor.
	l.meter.CountWrite(rum.Base, rum.LineCost(nn.size()))
	l.meter.CountWrite(rum.Aux, lvl*rum.LineSize)
	return nil
}

// Put inserts or overwrites (used by the LSM memtable, where the newest
// version shadows). It reports whether the key already existed.
func (l *List) Put(k core.Key, v core.Value) bool {
	var pred [MaxLevel]*node
	n := l.findPredecessors(k, &pred)
	if n != nil && n.key == k {
		n.val = v
		l.meter.CountWrite(rum.Base, rum.LineCost(core.RecordSize))
		return true
	}
	// Reuse Insert's path; the predecessor walk is already charged, so do
	// the link-in directly.
	lvl := l.randomLevel()
	if lvl > l.level {
		for i := l.level; i < lvl; i++ {
			pred[i] = l.head
		}
		l.level = lvl
	}
	nn := &node{key: k, val: v, next: make([]*node, lvl)}
	for i := 0; i < lvl; i++ {
		nn.next[i] = pred[i].next[i]
		pred[i].next[i] = nn
	}
	l.count++
	l.ptrBytes += uint64(lvl) * pointerSize
	l.meter.CountWrite(rum.Base, rum.LineCost(nn.size()))
	l.meter.CountWrite(rum.Aux, lvl*rum.LineSize)
	return false
}

// Update overwrites the record for k in place.
func (l *List) Update(k core.Key, v core.Value) bool {
	var pred [MaxLevel]*node
	n := l.findPredecessors(k, &pred)
	if n == nil || n.key != k {
		return false
	}
	n.val = v
	l.meter.CountWrite(rum.Base, rum.LineCost(core.RecordSize))
	return true
}

// Delete unlinks the record for k.
func (l *List) Delete(k core.Key) bool {
	var pred [MaxLevel]*node
	n := l.findPredecessors(k, &pred)
	if n == nil || n.key != k {
		return false
	}
	for i := 0; i < len(n.next); i++ {
		if pred[i].next[i] == n {
			pred[i].next[i] = n.next[i]
		}
	}
	for l.level > 1 && l.head.next[l.level-1] == nil {
		l.level--
	}
	l.count--
	l.ptrBytes -= uint64(len(n.next)) * pointerSize
	l.meter.CountWrite(rum.Aux, len(n.next)*rum.LineSize)
	return true
}

// RangeScan emits records with lo <= key <= hi in ascending order.
func (l *List) RangeScan(lo, hi core.Key, emit func(core.Key, core.Value) bool) int {
	var pred [MaxLevel]*node
	n := l.findPredecessors(lo, &pred)
	emitted := 0
	for ; n != nil && n.key <= hi; n = n.next[0] {
		l.meter.CountRead(rum.Base, rum.LineCost(n.size()))
		emitted++
		if !emit(n.key, n.val) {
			break
		}
	}
	return emitted
}

// Ascend emits every record with key >= from in ascending order without
// charging the meter; it is the internal bulk-drain path used when the list
// serves as an LSM memtable (the flush itself is charged as page writes by
// the LSM).
func (l *List) Ascend(from core.Key, emit func(core.Key, core.Value) bool) {
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < from {
			x = x.next[i]
		}
	}
	for n := x.next[0]; n != nil; n = n.next[0] {
		if !emit(n.key, n.val) {
			return
		}
	}
}

// Reset empties the list, keeping the meter.
func (l *List) Reset() {
	l.head = &node{next: make([]*node, MaxLevel)}
	l.level = 1
	l.count = 0
	l.ptrBytes = MaxLevel * pointerSize
}

// BulkLoad replaces the contents with the key-sorted recs.
func (l *List) BulkLoad(recs []core.Record) error {
	l.Reset()
	for _, r := range recs {
		if err := l.Insert(r.Key, r.Value); err != nil {
			return fmt.Errorf("skiplist: bulk load: %w", err)
		}
	}
	return nil
}

// Knobs exposes the tunable promotion probability (core.Tunable).
func (l *List) Knobs() []core.Knob {
	return []core.Knob{{
		Name: "p", Min: 0.1, Max: 0.9, Current: l.p,
		Doc: "tower promotion probability; raising it toward ~0.5 stores more pointers (higher MO) and shortens searches (lower RO); past ~0.5 searches lengthen again",
	}}
}

// SetKnob adjusts a tuning parameter (core.Tunable); it affects nodes
// created afterwards.
func (l *List) SetKnob(name string, value float64) error {
	if name != "p" {
		return fmt.Errorf("skiplist: unknown knob %q", name)
	}
	if value <= 0 || value >= 1 {
		return fmt.Errorf("skiplist: p must be in (0,1)")
	}
	l.p = value
	return nil
}
