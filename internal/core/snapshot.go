package core

import "repro/internal/rum"

// Snapshot is an immutable point-in-time view of an access method, the unit
// of the single-writer/many-reader contract: the writer goroutine keeps
// mutating the live structure while any number of reader goroutines run Get
// and RangeScan against an acquired Snapshot concurrently, with zero
// coordination between them.
//
// Read methods take the caller's private rum.Meter instead of charging the
// structure's own ledger: a snapshot is shared between readers, so metering
// into shared state would either race or serialize the very reads MVCC
// exists to parallelize. Each reader accumulates into its own plain Meter
// and the serving layer merges those into the shard ledger when the snapshot
// is released — one atomic merge per reader session, not one per byte —
// keeping the RUM accounting exact.
//
// Get and RangeScan are safe for concurrent use from any goroutine (each
// call with its own meter). Release is safe from any goroutine but must be
// called exactly once per Acquire, after which the snapshot must not be
// touched; it is what lets the writer's reclamation epoch advance past the
// pages this snapshot pins.
type Snapshot interface {
	// Epoch returns the write epoch the snapshot was published at. Epochs
	// are strictly increasing across publishes, so two snapshots of the same
	// structure are ordered by Epoch.
	Epoch() uint64

	// Len returns the number of live records in the snapshot.
	Len() int

	// Get returns the value for k as of the snapshot, charging physical and
	// logical read traffic to m.
	Get(k Key, m *rum.Meter) (Value, bool)

	// RangeScan calls emit for every snapshot record with lo <= key <= hi in
	// ascending key order, stopping early if emit returns false. It returns
	// the number of records emitted and charges traffic to m.
	RangeScan(lo, hi Key, m *rum.Meter, emit func(Key, Value) bool) int

	// Release drops the caller's reference. The underlying version stays
	// readable for other holders; once every reference is gone the writer's
	// next reclamation pass may recycle the pages it pinned.
	Release()
}

// SnapshotStats describes the version state of a SnapshotReader, for
// telemetry and memory-overhead (MO) accounting.
type SnapshotStats struct {
	// Epoch is the current write epoch (the epoch the next publish stamps).
	Epoch uint64
	// Versions is the number of published versions currently retained.
	Versions int
	// RetainedBytes is the space pinned by retired-but-unreclaimed pages —
	// the MO tax paid for snapshot isolation, over and above the live
	// structure reported by Size().
	RetainedBytes uint64
}

// SnapshotReader is implemented by access methods that support MVCC snapshot
// reads. Publish, Acquire, and SnapshotStats are writer-side calls: they
// must run on the goroutine that owns the structure (the same single-writer
// discipline as every mutating call). Only the returned Snapshot's methods
// may be used from other goroutines.
type SnapshotReader interface {
	// Publish makes the current state available to subsequent Acquires as a
	// new immutable version, flushing buffered writes so the version is
	// fully materialized, and advances the write epoch. Retention is
	// bounded: publishing may retire the oldest version and reclaim pages no
	// live snapshot can reach.
	Publish() error

	// Acquire returns the newest published version with a reference held,
	// or nil if nothing has been published yet. The caller must Release it.
	Acquire() Snapshot

	// SnapshotStats reports the current version state.
	SnapshotStats() SnapshotStats
}
