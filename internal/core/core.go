// Package core defines the access-method abstraction the rest of the
// repository is built around, together with the paper's primary
// contribution: RUM profiling of access methods (profiler.go), a tunable
// engine that moves through RUM space (tunable.go), a morphing engine that
// adapts the physical structure to the observed workload (morph.go), and an
// access-method wizard (wizard.go) — the Section 5 roadmap items.
//
// Records are fixed-size (Key, Value) pairs of uint64, matching the paper's
// running example of an array of fixed-size integers organized in blocks;
// the fixed 16-byte record makes amplification accounting exact and
// structure-independent.
package core

import (
	"encoding/binary"
	"errors"

	"repro/internal/rum"
)

// Key is the search key of a record.
type Key = uint64

// Value is the payload of a record.
type Value = uint64

// KeySize, ValueSize and RecordSize are the fixed on-page encodings.
const (
	KeySize    = 8
	ValueSize  = 8
	RecordSize = KeySize + ValueSize
)

// Record is one (key, value) pair.
type Record struct {
	Key   Key
	Value Value
}

// EncodeRecord writes r into b, which must be at least RecordSize long.
func EncodeRecord(b []byte, r Record) {
	binary.LittleEndian.PutUint64(b[0:8], r.Key)
	binary.LittleEndian.PutUint64(b[8:16], r.Value)
}

// DecodeRecord reads a record from b, which must be at least RecordSize long.
func DecodeRecord(b []byte) Record {
	return Record{
		Key:   binary.LittleEndian.Uint64(b[0:8]),
		Value: binary.LittleEndian.Uint64(b[8:16]),
	}
}

// Errors shared by access-method implementations.
var (
	// ErrKeyExists is returned by Insert when the key is already present in a
	// structure that enforces key uniqueness.
	ErrKeyExists = errors.New("core: key already exists")
	// ErrOutOfRange is returned by structures with a bounded key domain
	// (e.g. the Prop-1 direct-address array) for keys they cannot store.
	ErrOutOfRange = errors.New("core: key out of supported range")
	// ErrNotTunable is returned when a knob is set on a structure that does
	// not implement Tunable.
	ErrNotTunable = errors.New("core: access method is not tunable")
	// ErrNoSnapshots is returned by Publish when the underlying structure
	// does not implement SnapshotReader.
	ErrNoSnapshots = errors.New("core: access method does not support snapshots")
)

// AccessMethod is the uniform interface over every structure in this
// repository ("algorithms and data structures for organizing and accessing
// data", the paper's definition). All implementations meter the physical and
// logical bytes of every operation through a rum.Meter, so their read, write
// and space amplification can be compared like for like.
//
// Key uniqueness: Insert of an existing key returns ErrKeyExists for
// structures that can check it at no extra asymptotic cost, and is documented
// per structure otherwise (the append-only log simply shadows older
// versions). Update and Delete report whether the key existed.
type AccessMethod interface {
	// Name identifies the structure (and its tuning), e.g. "btree(B=256)".
	Name() string

	// Get returns the value for k and whether it was found.
	Get(k Key) (Value, bool)

	// Insert adds a new record.
	Insert(k Key, v Value) error

	// Update modifies an existing record, reporting whether it existed.
	Update(k Key, v Value) bool

	// Delete removes a record, reporting whether it existed.
	Delete(k Key) bool

	// RangeScan calls emit for every record with lo <= key <= hi, in
	// ascending key order where the structure supports order (hash-based
	// structures document their scan order). Scanning stops early if emit
	// returns false. It returns the number of records emitted.
	RangeScan(lo, hi Key, emit func(Key, Value) bool) int

	// Len returns the number of live records.
	Len() int

	// Meter exposes the structure's cumulative RUM accounting.
	Meter() *rum.Meter

	// Size reports current space usage split into base and auxiliary bytes.
	Size() rum.SizeInfo
}

// BulkLoader is implemented by structures that support bulk creation from a
// key-sorted record slice (the "Bulk Creation Cost" column of Table 1).
type BulkLoader interface {
	// BulkLoad replaces the structure's contents with recs, which must be
	// sorted by key and free of duplicates.
	BulkLoad(recs []Record) error
}

// Flusher is implemented by structures that buffer writes (e.g. through a
// buffer pool or memtable) and can force them to the simulated device so that
// write amplification includes deferred traffic.
type Flusher interface {
	Flush()
}

// Tunable is implemented by structures whose RUM position can be moved at
// runtime by adjusting named knobs — the Section 5 "tunable RUM balance".
type Tunable interface {
	// Knobs lists the available tuning parameters.
	Knobs() []Knob
	// SetKnob adjusts one parameter; implementations may reorganize data.
	SetKnob(name string, value float64) error
}

// Knob describes one tuning parameter of a Tunable access method.
type Knob struct {
	Name    string  // identifier, e.g. "size_ratio"
	Min     float64 // smallest accepted value
	Max     float64 // largest accepted value
	Current float64 // value now in effect
	Doc     string  // human description of the RUM effect
}

// Flush forces am's buffered writes down to its device if it buffers at all.
func Flush(am AccessMethod) {
	if f, ok := am.(Flusher); ok {
		f.Flush()
	}
}
