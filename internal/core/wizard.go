package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/workload"
)

// Priorities weights the three RUM overheads for the wizard: how much the
// user cares about read cost, write cost, and space. Zero values are
// normalized away; equal weights model "no preference".
type Priorities struct {
	Read  float64
	Write float64
	Space float64
}

func (p Priorities) normalized() Priorities {
	sum := p.Read + p.Write + p.Space
	if sum <= 0 {
		return Priorities{Read: 1.0 / 3, Write: 1.0 / 3, Space: 1.0 / 3}
	}
	return Priorities{Read: p.Read / sum, Write: p.Write / sum, Space: p.Space / sum}
}

// Requirements describes the workload the wizard recommends for.
type Requirements struct {
	Mix        workload.Mix
	DataSize   int // expected record count
	Priorities Priorities
	// FlashLike biases against write amplification (limited-endurance
	// storage, Section 2's "storage with limited endurance … favors
	// minimizing the update overhead").
	FlashLike bool
	// MemoryTight biases against space amplification ("scarce cache
	// capacity justifies reducing the space overhead").
	MemoryTight bool
}

// Recommendation is one ranked suggestion from the wizard.
type Recommendation struct {
	Method    string
	Score     float64 // lower = better (weighted predicted log-amplification)
	Rationale string
	Knobs     map[string]float64
}

// costModel predicts per-dimension log2 amplification of a method under a
// mix. The numbers encode the Table-1 complexity classes on a coarse log
// scale (0 ≈ amplification 1, each +1 doubles), not exact measurements —
// the wizard is a planner, the profiler is the ground truth.
type costModel struct {
	name      string
	rationale string
	knobs     map[string]float64
	cost      func(mix workload.Mix, n int) (r, u, m float64)
}

func logN(n int) float64 {
	if n < 2 {
		return 1
	}
	return math.Log2(float64(n))
}

func models() []costModel {
	return []costModel{
		{
			name:      "btree",
			rationale: "logarithmic point and range access; pays page writes per update and index space",
			cost: func(mix workload.Mix, n int) (float64, float64, float64) {
				h := math.Max(1, logN(n)/8) // height at fanout ~256
				r := mix.Get*h + mix.Range*(h*0.5)
				u := (mix.Insert + mix.Update + mix.Delete) * (h + 4) // read-modify-write of a page
				return r, u, 1.5
			},
			knobs: map[string]float64{"bulk_fill": 1.0},
		},
		{
			name:      "hash",
			rationale: "O(1) point access; ranges degenerate to full scans; directory plus bucket slack",
			cost: func(mix workload.Mix, n int) (float64, float64, float64) {
				r := mix.Get*1 + mix.Range*logN(n)*2 // ranges scan everything
				u := (mix.Insert + mix.Update + mix.Delete) * 4
				return r, u, 1.8
			},
			knobs: map[string]float64{"max_load": 0.8},
		},
		{
			name:      "lsm",
			rationale: "blind writes absorbed in a memtable; reads probe multiple runs unless filtered",
			cost: func(mix workload.Mix, n int) (float64, float64, float64) {
				r := mix.Get*3 + mix.Range*2.5
				u := (mix.Insert + mix.Update + mix.Delete) * 1.5 // amortized merge cost
				return r, u, 2.2
			},
			knobs: map[string]float64{"size_ratio": 10, "bloom_bits": 10},
		},
		{
			name:      "zonemap",
			rationale: "near-zero index space; every query scans summaries plus a partition",
			cost: func(mix workload.Mix, n int) (float64, float64, float64) {
				scan := math.Max(2, logN(n)-4) // summary scan grows with N
				r := mix.Get*scan + mix.Range*(scan*0.6)
				u := (mix.Insert + mix.Update + mix.Delete) * (scan * 0.8)
				return r, u, 1.05
			},
			knobs: map[string]float64{"partition_size": 128},
		},
		{
			name:      "sorted-column",
			rationale: "binary search with zero auxiliary space; inserts shift the tail",
			cost: func(mix workload.Mix, n int) (float64, float64, float64) {
				r := mix.Get*math.Log2(math.Max(2, float64(n)))*0.3 + mix.Range*1
				u := mix.Update*1 + (mix.Insert+mix.Delete)*logN(n)*3 // linear shifts
				return r, u, 1.0
			},
		},
		{
			name:      "unsorted-column",
			rationale: "constant-time appends with zero auxiliary space; every read scans",
			cost: func(mix workload.Mix, n int) (float64, float64, float64) {
				scan := logN(n) * 1.5
				r := mix.Get*scan + mix.Range*scan
				u := mix.Insert*0.2 + (mix.Update+mix.Delete)*scan*0.5
				return r, u, 1.0
			},
		},
		{
			name:      "cracking",
			rationale: "adaptive: early queries pay partitioning, repeated ranges converge to index probes",
			cost: func(mix workload.Mix, n int) (float64, float64, float64) {
				r := mix.Get*3 + mix.Range*2
				u := (mix.Insert+mix.Delete)*2 + mix.Update*2 + (mix.Get+mix.Range)*1 // query-driven swaps
				return r, u, 2.0
			},
		},
	}
}

// Recommend ranks the known access methods for the requirements, best first.
// The score is the priority-weighted predicted log-amplification; the
// rationale explains the RUM position of each candidate.
func Recommend(req Requirements) []Recommendation {
	pr := req.Priorities
	if req.FlashLike {
		pr.Write += 1
	}
	if req.MemoryTight {
		pr.Space += 1
	}
	p := pr.normalized()

	var out []Recommendation
	for _, m := range models() {
		r, u, sp := m.cost(req.Mix, req.DataSize)
		score := p.Read*r + p.Write*u + p.Space*math.Log2(math.Max(1, sp))*4
		out = append(out, Recommendation{
			Method:    m.name,
			Score:     score,
			Rationale: m.rationale,
			Knobs:     m.knobs,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Score < out[j].Score })
	return out
}

// Explain renders a ranked recommendation list as text.
func Explain(recs []Recommendation) string {
	s := ""
	for i, r := range recs {
		s += fmt.Sprintf("%d. %-16s score=%.2f  %s\n", i+1, r.Method, r.Score, r.Rationale)
	}
	return s
}
