package core

import "repro/internal/rum"

// Op names used when reporting operation spans to an OpObserver. They are
// untyped string constants so observer implementations can use them as map
// keys and export labels without conversion.
const (
	OpNameGet      = "get"
	OpNameRange    = "range"
	OpNameInsert   = "insert"
	OpNameUpdate   = "update"
	OpNameDelete   = "delete"
	OpNameFlush    = "flush"
	OpNameBulkLoad = "bulkload"
)

// OpObserver observes the boundaries of every logical operation executed
// through an Instrumented wrapper, so physical traffic (metered bytes,
// storage events) occurring between BeginOp and EndOp can be attributed to
// the operation that caused it. Calls may nest (a BulkLoad that falls back
// to Inserts); observers are expected to attribute nested work to the
// outermost span. A nil observer is the default; the hooks then cost one
// pointer comparison per operation and allocate nothing.
type OpObserver interface {
	BeginOp(op string)
	EndOp(op string)
}

// Instrumented wraps an AccessMethod and performs the *logical* side of the
// paper's overhead accounting centrally: every operation records the payload
// the caller asked to read or write, while the wrapped structure records the
// physical bytes it touched. Keeping logical accounting out of the
// structures means nested composites (an LSM whose memtable is a skiplist, a
// zone map over a column) never double-count.
//
// The conventions, applied uniformly:
//
//   - a point query accounts one record of logical read, hit or miss (the
//     paper's "data intended to be read");
//   - a range query accounts one record per emitted result;
//   - an insert, update, or delete accounts one record of logical write,
//     whether or not the key existed.
type Instrumented struct {
	inner AccessMethod
	obs   OpObserver
}

// Instrument wraps am. The returned value shares am's meter.
func Instrument(am AccessMethod) *Instrumented {
	if w, ok := am.(*Instrumented); ok {
		return w
	}
	return &Instrumented{inner: am}
}

// SetObserver attaches (or, with nil, detaches) a per-operation observer.
func (w *Instrumented) SetObserver(o OpObserver) { w.obs = o }

// Unwrap returns the wrapped access method.
func (w *Instrumented) Unwrap() AccessMethod { return w.inner }

// Name delegates to the wrapped structure.
func (w *Instrumented) Name() string { return w.inner.Name() }

// Get performs a point query, accounting one logical record read.
func (w *Instrumented) Get(k Key) (Value, bool) {
	if w.obs != nil {
		w.obs.BeginOp(OpNameGet)
		defer w.obs.EndOp(OpNameGet)
	}
	w.inner.Meter().CountLogicalRead(RecordSize)
	return w.inner.Get(k)
}

// Insert accounts one logical record write.
func (w *Instrumented) Insert(k Key, v Value) error {
	if w.obs != nil {
		w.obs.BeginOp(OpNameInsert)
		defer w.obs.EndOp(OpNameInsert)
	}
	w.inner.Meter().CountLogicalWrite(RecordSize)
	return w.inner.Insert(k, v)
}

// Update accounts one logical record write.
func (w *Instrumented) Update(k Key, v Value) bool {
	if w.obs != nil {
		w.obs.BeginOp(OpNameUpdate)
		defer w.obs.EndOp(OpNameUpdate)
	}
	w.inner.Meter().CountLogicalWrite(RecordSize)
	return w.inner.Update(k, v)
}

// Delete accounts one logical record write.
func (w *Instrumented) Delete(k Key) bool {
	if w.obs != nil {
		w.obs.BeginOp(OpNameDelete)
		defer w.obs.EndOp(OpNameDelete)
	}
	w.inner.Meter().CountLogicalWrite(RecordSize)
	return w.inner.Delete(k)
}

// RangeScan accounts one logical record read per emitted result (and one
// read operation).
func (w *Instrumented) RangeScan(lo, hi Key, emit func(Key, Value) bool) int {
	if w.obs != nil {
		w.obs.BeginOp(OpNameRange)
		defer w.obs.EndOp(OpNameRange)
	}
	n := w.inner.RangeScan(lo, hi, emit)
	w.inner.Meter().CountLogicalRead(n * RecordSize)
	return n
}

// Len delegates to the wrapped structure.
func (w *Instrumented) Len() int { return w.inner.Len() }

// Meter delegates to the wrapped structure.
func (w *Instrumented) Meter() *rum.Meter { return w.inner.Meter() }

// Size delegates to the wrapped structure.
func (w *Instrumented) Size() rum.SizeInfo { return w.inner.Size() }

// Flush forwards to the wrapped structure if it buffers writes.
func (w *Instrumented) Flush() {
	if w.obs != nil {
		w.obs.BeginOp(OpNameFlush)
		defer w.obs.EndOp(OpNameFlush)
	}
	Flush(w.inner)
}

// BulkLoad forwards when supported; the load is accounted as logical writes
// for every record.
func (w *Instrumented) BulkLoad(recs []Record) error {
	if w.obs != nil {
		w.obs.BeginOp(OpNameBulkLoad)
		defer w.obs.EndOp(OpNameBulkLoad)
	}
	bl, ok := w.inner.(BulkLoader)
	if !ok {
		for _, r := range recs {
			if err := w.Insert(r.Key, r.Value); err != nil {
				return err
			}
		}
		return nil
	}
	w.inner.Meter().CountLogicalWrite(len(recs) * RecordSize)
	return bl.BulkLoad(recs)
}

// Publish forwards to the wrapped structure when it is a SnapshotReader.
// Writer-side call, like every mutating call through the wrapper.
func (w *Instrumented) Publish() error {
	sr, ok := w.inner.(SnapshotReader)
	if !ok {
		return ErrNoSnapshots
	}
	return sr.Publish()
}

// Acquire returns the newest published snapshot wrapped for logical
// accounting, or nil if the inner structure does not support snapshots or
// has not published yet. The wrapper applies the same conventions as the
// writer-side operations — one logical record per point read, one per
// emitted range result — but charges them to the reader's private meter, so
// per-reader totals merge exactly into the shard ledger. Writer-side call.
func (w *Instrumented) Acquire() Snapshot {
	sr, ok := w.inner.(SnapshotReader)
	if !ok {
		return nil
	}
	s := sr.Acquire()
	if s == nil {
		return nil
	}
	return instrumentedSnapshot{s}
}

// SnapshotStats forwards to the wrapped structure; the zero value is
// returned when snapshots are unsupported. Writer-side call.
func (w *Instrumented) SnapshotStats() SnapshotStats {
	if sr, ok := w.inner.(SnapshotReader); ok {
		return sr.SnapshotStats()
	}
	return SnapshotStats{}
}

// instrumentedSnapshot layers the logical half of the accounting over an
// inner snapshot, mirroring what Instrumented does for the live structure:
// the inner snapshot charges physical bytes to the reader's meter, this
// wrapper charges the logical payload.
type instrumentedSnapshot struct{ inner Snapshot }

func (s instrumentedSnapshot) Epoch() uint64 { return s.inner.Epoch() }
func (s instrumentedSnapshot) Len() int      { return s.inner.Len() }
func (s instrumentedSnapshot) Release()      { s.inner.Release() }

func (s instrumentedSnapshot) Get(k Key, m *rum.Meter) (Value, bool) {
	m.CountLogicalRead(RecordSize)
	return s.inner.Get(k, m)
}

func (s instrumentedSnapshot) RangeScan(lo, hi Key, m *rum.Meter, emit func(Key, Value) bool) int {
	n := s.inner.RangeScan(lo, hi, m, emit)
	m.CountLogicalRead(n * RecordSize)
	return n
}

// Knobs forwards to the wrapped structure when it is Tunable.
func (w *Instrumented) Knobs() []Knob {
	if t, ok := w.inner.(Tunable); ok {
		return t.Knobs()
	}
	return nil
}

// SetKnob forwards to the wrapped structure when it is Tunable.
func (w *Instrumented) SetKnob(name string, value float64) error {
	if t, ok := w.inner.(Tunable); ok {
		return t.SetKnob(name, value)
	}
	return ErrNotTunable
}
