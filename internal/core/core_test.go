package core

import (
	"testing"
	"testing/quick"

	"repro/internal/rum"
	"repro/internal/workload"
)

func TestRecordEncoding(t *testing.T) {
	f := func(k, v uint64) bool {
		var buf [RecordSize]byte
		EncodeRecord(buf[:], Record{Key: k, Value: v})
		r := DecodeRecord(buf[:])
		return r.Key == k && r.Value == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// fakeAM is a map-backed access method for wrapper tests.
type fakeAM struct {
	m     map[Key]Value
	meter rum.Meter
	flush int
}

func newFake() *fakeAM { return &fakeAM{m: map[Key]Value{}} }

func (f *fakeAM) Name() string { return "fake" }
func (f *fakeAM) Get(k Key) (Value, bool) {
	f.meter.CountRead(rum.Base, 16)
	v, ok := f.m[k]
	return v, ok
}
func (f *fakeAM) Insert(k Key, v Value) error {
	if _, ok := f.m[k]; ok {
		return ErrKeyExists
	}
	f.meter.CountWrite(rum.Base, 16)
	f.m[k] = v
	return nil
}
func (f *fakeAM) Update(k Key, v Value) bool {
	if _, ok := f.m[k]; !ok {
		return false
	}
	f.meter.CountWrite(rum.Base, 16)
	f.m[k] = v
	return true
}
func (f *fakeAM) Delete(k Key) bool {
	if _, ok := f.m[k]; !ok {
		return false
	}
	f.meter.CountWrite(rum.Base, 16)
	delete(f.m, k)
	return true
}
func (f *fakeAM) RangeScan(lo, hi Key, emit func(Key, Value) bool) int {
	n := 0
	for k, v := range f.m {
		if k >= lo && k <= hi {
			n++
			if !emit(k, v) {
				break
			}
		}
	}
	return n
}
func (f *fakeAM) Len() int           { return len(f.m) }
func (f *fakeAM) Meter() *rum.Meter  { return &f.meter }
func (f *fakeAM) Size() rum.SizeInfo { return rum.SizeInfo{BaseBytes: uint64(len(f.m)) * 16} }
func (f *fakeAM) Flush()             { f.flush++ }

func TestInstrumentLogicalAccounting(t *testing.T) {
	w := Instrument(newFake())
	w.Get(1)           // miss: still one logical read
	_ = w.Insert(1, 2) // one logical write
	w.Update(1, 3)     // one logical write
	w.Update(99, 3)    // miss: still accounted
	w.Delete(1)        // one logical write
	m := w.Meter().Snapshot()
	if m.LogicalRead != RecordSize {
		t.Fatalf("logical reads %d", m.LogicalRead)
	}
	if m.LogicalWritten != 4*RecordSize {
		t.Fatalf("logical writes %d", m.LogicalWritten)
	}
	if m.ReadOps != 1 || m.WriteOps != 4 {
		t.Fatalf("ops %d/%d", m.ReadOps, m.WriteOps)
	}
}

func TestInstrumentRangeAccounting(t *testing.T) {
	w := Instrument(newFake())
	for k := Key(0); k < 10; k++ {
		if err := w.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	before := w.Meter().Snapshot()
	n := w.RangeScan(0, 4, func(Key, Value) bool { return true })
	if n != 5 {
		t.Fatalf("emitted %d", n)
	}
	d := w.Meter().Diff(before)
	if d.LogicalRead != 5*RecordSize {
		t.Fatalf("range logical %d", d.LogicalRead)
	}
}

func TestInstrumentIdempotent(t *testing.T) {
	f := newFake()
	w := Instrument(f)
	if Instrument(w) != w {
		t.Fatal("double wrap")
	}
	if w.Unwrap() != AccessMethod(f) {
		t.Fatal("unwrap")
	}
	w.Flush()
	if f.flush != 1 {
		t.Fatal("flush not forwarded")
	}
}

func TestInstrumentBulkLoadFallsBackToInserts(t *testing.T) {
	w := Instrument(newFake()) // fakeAM is not a BulkLoader
	recs := []Record{{Key: 1, Value: 2}, {Key: 3, Value: 4}}
	if err := w.BulkLoad(recs); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 2 {
		t.Fatal("len")
	}
	if v, ok := w.Get(3); !ok || v != 4 {
		t.Fatal("get")
	}
}

func TestInstrumentKnobsOnNonTunable(t *testing.T) {
	w := Instrument(newFake())
	if w.Knobs() != nil {
		t.Fatal("knobs on non-tunable")
	}
	if err := w.SetKnob("x", 1); err != ErrNotTunable {
		t.Fatalf("err = %v", err)
	}
}

func TestRunProfile(t *testing.T) {
	gen := workload.New(workload.Config{Seed: 1, Mix: workload.Balanced, InitialLen: 500})
	prof, err := RunProfile(newFake(), gen, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Name != "fake" {
		t.Fatal("name")
	}
	st := prof.Ops
	total := st.Gets + st.Ranges + st.Inserts + st.Updates + st.Deletes
	if total != 2000 {
		t.Fatalf("ops %d", total)
	}
	if st.InsertFailures != 0 {
		t.Fatalf("insert failures %d", st.InsertFailures)
	}
	if st.Hits == 0 || st.UpdateHits == 0 {
		t.Fatal("no hits: generator/live-set mismatch")
	}
	if prof.Point.R <= 0 || prof.Point.U <= 0 {
		t.Fatalf("degenerate point %v", prof.Point)
	}
	if prof.String() == "" {
		t.Fatal("string")
	}
}

func TestMixWindow(t *testing.T) {
	w := NewMixWindow(4)
	if w.Total() != 0 {
		t.Fatal("empty total")
	}
	w.Observe(workload.OpGet)
	w.Observe(workload.OpGet)
	w.Observe(workload.OpInsert)
	mix := w.Mix()
	if mix.Get < 0.6 || mix.Insert < 0.3 {
		t.Fatalf("mix %+v", mix)
	}
	// Rolling: old entries leave the window.
	for i := 0; i < 4; i++ {
		w.Observe(workload.OpDelete)
	}
	if m := w.Mix(); m.Delete != 1 || m.Get != 0 {
		t.Fatalf("rolled mix %+v", m)
	}
	if w.Total() != 4 {
		t.Fatalf("total %d", w.Total())
	}
}

func TestWizardRankings(t *testing.T) {
	// Point-read heavy: a point index must rank first.
	recs := Recommend(Requirements{
		Mix:      workload.Mix{Get: 0.9, Update: 0.1},
		DataSize: 1 << 20,
	})
	if len(recs) < 5 {
		t.Fatal("too few recommendations")
	}
	if top := recs[0].Method; top != "hash" && top != "btree" {
		t.Fatalf("read workload top pick %q", top)
	}

	// Write-heavy on flash: the LSM must rank first.
	recs = Recommend(Requirements{
		Mix:       workload.Mix{Insert: 0.7, Update: 0.2, Get: 0.1},
		DataSize:  1 << 20,
		FlashLike: true,
	})
	if recs[0].Method != "lsm" {
		t.Fatalf("flash write workload top pick %q", recs[0].Method)
	}

	// Scan-heavy and memory-tight: sparse structures over fat trees.
	recs = Recommend(Requirements{
		Mix:         workload.Mix{Range: 0.8, Get: 0.1, Insert: 0.1},
		DataSize:    1 << 20,
		MemoryTight: true,
	})
	rank := map[string]int{}
	for i, r := range recs {
		rank[r.Method] = i
	}
	if rank["zonemap"] > rank["hash"] {
		t.Fatalf("memory-tight scan: zonemap ranked %d below hash %d", rank["zonemap"], rank["hash"])
	}
	if Explain(recs) == "" {
		t.Fatal("explain")
	}
}

func TestWizardPrioritiesNormalize(t *testing.T) {
	p := Priorities{}.normalized()
	if p.Read+p.Write+p.Space != 1 {
		t.Fatalf("normalized %+v", p)
	}
	q := Priorities{Read: 2, Write: 1, Space: 1}.normalized()
	if q.Read != 0.5 {
		t.Fatalf("weighted %+v", q)
	}
}

// shapeAM wraps fakeAM with a fixed name for morphing tests.
type shapeAM struct {
	*fakeAM
	name  string
	meter *rum.Meter
}

func (s *shapeAM) Name() string      { return s.name }
func (s *shapeAM) Meter() *rum.Meter { return s.meter }

func TestMorphingSwitchesShape(t *testing.T) {
	flavors := []Flavor{
		{
			Name: "reader",
			New: func(m *rum.Meter) AccessMethod {
				return &shapeAM{fakeAM: newFake(), name: "reader", meter: m}
			},
			Score: func(mix workload.Mix) float64 { return mix.Get },
		},
		{
			Name: "writer",
			New: func(m *rum.Meter) AccessMethod {
				return &shapeAM{fakeAM: newFake(), name: "writer", meter: m}
			},
			Score: func(mix workload.Mix) float64 { return mix.Insert + mix.Update + mix.Delete },
		},
	}
	eng, err := NewMorphing(flavors, 0, MorphPolicy{Window: 64, Interval: 32, Hysteresis: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if eng.CurrentFlavor() != "reader" {
		t.Fatal("start flavor")
	}
	// Read phase: stays reader.
	for i := 0; i < 200; i++ {
		eng.Get(Key(i))
	}
	if eng.CurrentFlavor() != "reader" {
		t.Fatal("switched without cause")
	}
	// Write phase: must migrate to writer, keeping the data.
	for i := 0; i < 100; i++ {
		_ = eng.Insert(Key(i), Value(i))
	}
	for i := 0; i < 300; i++ {
		eng.Update(Key(i%100), 7)
	}
	if eng.CurrentFlavor() != "writer" {
		t.Fatalf("did not morph: %s", eng.CurrentFlavor())
	}
	if eng.Migrations() != 1 {
		t.Fatalf("migrations %d", eng.Migrations())
	}
	if eng.Len() != 100 {
		t.Fatalf("records lost in migration: %d", eng.Len())
	}
	for i := 0; i < 100; i++ {
		if v, ok := eng.Get(Key(i)); !ok || v != 7 {
			t.Fatalf("Get(%d) after migration = %d,%v", i, v, ok)
		}
	}
}

func TestMorphingValidation(t *testing.T) {
	if _, err := NewMorphing(nil, 0, MorphPolicy{}); err == nil {
		t.Fatal("empty flavors accepted")
	}
	fl := []Flavor{{Name: "x", New: func(m *rum.Meter) AccessMethod { return newFake() }, Score: func(workload.Mix) float64 { return 0 }}}
	if _, err := NewMorphing(fl, 5, MorphPolicy{}); err == nil {
		t.Fatal("bad start index accepted")
	}
}

func TestMorphingBulkLoad(t *testing.T) {
	fl := []Flavor{{
		Name:  "only",
		New:   func(m *rum.Meter) AccessMethod { return &shapeAM{fakeAM: newFake(), name: "only", meter: m} },
		Score: func(workload.Mix) float64 { return 1 },
	}}
	eng, err := NewMorphing(fl, 0, MorphPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.BulkLoad([]Record{{Key: 1, Value: 2}}); err != nil {
		t.Fatal(err)
	}
	if v, ok := eng.Get(1); !ok || v != 2 {
		t.Fatal("bulk load")
	}
}
