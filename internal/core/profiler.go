package core

import (
	"fmt"
	"sort"

	"repro/internal/rum"
	"repro/internal/workload"
)

// OpStats aggregates the outcome of a profiled workload run.
type OpStats struct {
	Gets, Hits     int
	Ranges         int
	RangeRows      int
	Inserts        int
	Updates        int
	UpdateHits     int
	Deletes        int
	DeleteHits     int
	InsertFailures int
}

// Profile is the measured RUM position of an access method under a
// workload: the paper's mapping of a structure to a point in RUM space.
type Profile struct {
	Name  string
	Point rum.Point
	Meter rum.Meter // counts accumulated during the profiled phase only
	Size  rum.SizeInfo
	Ops   OpStats
}

// String renders the profile compactly.
func (p Profile) String() string {
	return fmt.Sprintf("%-24s %s (%s)", p.Name, p.Point, p.Point.Classify())
}

// Preload feeds the generator's initial records into the structure via
// BulkLoad when supported (sorted first), or via individual inserts.
// Preloading happens before measurement, mirroring the paper's separation of
// bulk creation cost from steady-state overheads.
func Preload(am AccessMethod, gen *workload.Generator) error {
	ops := gen.InitialRecords()
	w := Instrument(am)
	if _, ok := w.Unwrap().(BulkLoader); ok {
		recs := make([]Record, len(ops))
		for i, op := range ops {
			recs[i] = Record{Key: op.Key, Value: op.Value}
		}
		sortRecords(recs)
		return w.BulkLoad(recs)
	}
	for _, op := range ops {
		if err := w.Insert(op.Key, op.Value); err != nil && err != ErrKeyExists {
			return err
		}
	}
	return nil
}

func sortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
}

// Apply executes one workload operation against the (instrumented) access
// method and records its outcome in st.
func Apply(w *Instrumented, op workload.Op, st *OpStats) {
	switch op.Kind {
	case workload.OpGet:
		st.Gets++
		if _, ok := w.Get(op.Key); ok {
			st.Hits++
		}
	case workload.OpRange:
		st.Ranges++
		st.RangeRows += w.RangeScan(op.Key, op.Hi, func(Key, Value) bool { return true })
	case workload.OpInsert:
		st.Inserts++
		if err := w.Insert(op.Key, op.Value); err != nil {
			st.InsertFailures++
		}
	case workload.OpUpdate:
		st.Updates++
		if w.Update(op.Key, op.Value) {
			st.UpdateHits++
		}
	case workload.OpDelete:
		st.Deletes++
		if w.Delete(op.Key) {
			st.DeleteHits++
		}
	}
}

// RunProfile preloads the structure, replays n operations from gen, flushes
// buffered writes, and returns the measured RUM point of the run (physical
// traffic during the measured phase only; space measured at the end).
func RunProfile(am AccessMethod, gen *workload.Generator, n int) (Profile, error) {
	w := Instrument(am)
	// Preload through the same wrapper so an attached OpObserver sees the
	// load as spans too (Preload's own Instrument call returns w unchanged).
	if err := Preload(w, gen); err != nil {
		return Profile{}, fmt.Errorf("preload %s: %w", am.Name(), err)
	}
	w.Flush()
	start := w.Meter().Snapshot()
	var st OpStats
	for i := 0; i < n; i++ {
		Apply(w, gen.Next(), &st)
	}
	w.Flush()
	m := w.Meter().Diff(start)
	size := w.Size()
	return Profile{
		Name:  am.Name(),
		Point: rum.PointOf(m, size),
		Meter: m,
		Size:  size,
		Ops:   st,
	}, nil
}
