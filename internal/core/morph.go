package core

import (
	"fmt"

	"repro/internal/rum"
	"repro/internal/workload"
)

// MixWindow observes the recent operation mix — the signal the paper's
// envisioned "morphing access methods" and "dynamic RUM balance" adapt to.
type MixWindow struct {
	kinds []workload.OpKind
	next  int
	full  bool
	count [5]int
}

// NewMixWindow creates a sliding window over the last n operations.
func NewMixWindow(n int) *MixWindow {
	if n < 1 {
		n = 1
	}
	return &MixWindow{kinds: make([]workload.OpKind, n)}
}

// Observe records one operation.
func (w *MixWindow) Observe(k workload.OpKind) {
	if w.full {
		w.count[w.kinds[w.next]]--
	}
	w.kinds[w.next] = k
	w.count[k]++
	w.next++
	if w.next == len(w.kinds) {
		w.next = 0
		w.full = true
	}
}

// Total returns the number of observed operations in the window.
func (w *MixWindow) Total() int {
	if w.full {
		return len(w.kinds)
	}
	return w.next
}

// Mix returns the observed operation fractions.
func (w *MixWindow) Mix() workload.Mix {
	n := w.Total()
	if n == 0 {
		return workload.Mix{}
	}
	f := func(k workload.OpKind) float64 { return float64(w.count[k]) / float64(n) }
	return workload.Mix{
		Get:    f(workload.OpGet),
		Range:  f(workload.OpRange),
		Insert: f(workload.OpInsert),
		Update: f(workload.OpUpdate),
		Delete: f(workload.OpDelete),
	}
}

// Flavor is one physical shape a morphing engine can take. Score returns the
// fitness of the flavor for an observed mix; higher wins.
type Flavor struct {
	Name  string
	New   func(meter *rum.Meter) AccessMethod
	Score func(mix workload.Mix) float64
}

// MorphPolicy controls when the engine reconsiders its shape.
type MorphPolicy struct {
	// Window is the op-mix observation window (default 512).
	Window int
	// Interval is how many operations pass between shape decisions
	// (default 256).
	Interval int
	// Hysteresis is the score margin a challenger must exceed the incumbent
	// by before a migration is worth its cost (default 0.15).
	Hysteresis float64
}

func (p *MorphPolicy) defaults() {
	if p.Window <= 0 {
		p.Window = 512
	}
	if p.Interval <= 0 {
		p.Interval = 256
	}
	if p.Hysteresis <= 0 {
		p.Hysteresis = 0.15
	}
}

// Morphing is the Section-5 "morphing access method": a store that changes
// its physical structure online as the observed workload shifts, migrating
// its records between flavors. All incarnations share one meter, so the
// migration cost (a full read of the old shape and a full write of the new)
// is part of the measured RUM position. Not safe for concurrent use.
type Morphing struct {
	flavors    []Flavor
	cur        AccessMethod
	curIdx     int
	meter      *rum.Meter
	window     *MixWindow
	policy     MorphPolicy
	sinceCheck int
	migrations int
}

// NewMorphing creates a morphing store starting as flavors[start]. The
// flavor list must be non-empty.
func NewMorphing(flavors []Flavor, start int, policy MorphPolicy) (*Morphing, error) {
	if len(flavors) == 0 {
		return nil, fmt.Errorf("core: morphing needs at least one flavor")
	}
	if start < 0 || start >= len(flavors) {
		return nil, fmt.Errorf("core: start flavor %d out of range", start)
	}
	policy.defaults()
	meter := &rum.Meter{}
	return &Morphing{
		flavors: flavors,
		cur:     flavors[start].New(meter),
		curIdx:  start,
		meter:   meter,
		window:  NewMixWindow(policy.Window),
		policy:  policy,
	}, nil
}

// Name reports the engine and its current shape.
func (m *Morphing) Name() string { return fmt.Sprintf("morphing[%s]", m.flavors[m.curIdx].Name) }

// CurrentFlavor returns the name of the active shape.
func (m *Morphing) CurrentFlavor() string { return m.flavors[m.curIdx].Name }

// Migrations returns how many times the engine has changed shape.
func (m *Morphing) Migrations() int { return m.migrations }

// Meter returns the engine-lifetime RUM accounting (shared across shapes).
func (m *Morphing) Meter() *rum.Meter { return m.meter }

// Size delegates to the current shape.
func (m *Morphing) Size() rum.SizeInfo { return m.cur.Size() }

// Len delegates to the current shape.
func (m *Morphing) Len() int { return m.cur.Len() }

// Flush delegates to the current shape.
func (m *Morphing) Flush() { Flush(m.cur) }

// observe records the op kind and periodically reconsiders the shape.
func (m *Morphing) observe(k workload.OpKind) {
	m.window.Observe(k)
	m.sinceCheck++
	if m.sinceCheck < m.policy.Interval {
		return
	}
	m.sinceCheck = 0
	m.maybeMorph()
}

func (m *Morphing) maybeMorph() {
	if m.window.Total() < m.policy.Window/2 {
		return // not enough signal yet
	}
	mix := m.window.Mix()
	best, bestScore := m.curIdx, m.flavors[m.curIdx].Score(mix)
	for i, f := range m.flavors {
		if s := f.Score(mix); s > bestScore {
			best, bestScore = i, s
		}
	}
	if best == m.curIdx || bestScore < m.flavors[m.curIdx].Score(mix)+m.policy.Hysteresis {
		return
	}
	m.migrate(best)
}

// migrate drains the current shape into a fresh instance of flavor idx. The
// drain and refill are charged on the shared meter — morphing is not free,
// which is why the hysteresis exists.
func (m *Morphing) migrate(idx int) {
	recs := make([]Record, 0, m.cur.Len())
	m.cur.RangeScan(0, ^Key(0), func(k Key, v Value) bool {
		recs = append(recs, Record{Key: k, Value: v})
		return true
	})
	sortRecords(recs)
	next := m.flavors[idx].New(m.meter)
	if bl, ok := next.(BulkLoader); ok {
		if err := bl.BulkLoad(recs); err != nil {
			return // keep the current shape on failure
		}
	} else {
		for _, r := range recs {
			if err := next.Insert(r.Key, r.Value); err != nil && err != ErrKeyExists {
				return
			}
		}
	}
	Flush(next)
	m.cur = next
	m.curIdx = idx
	m.migrations++
}

// Get delegates and observes.
func (m *Morphing) Get(k Key) (Value, bool) {
	m.observe(workload.OpGet)
	return m.cur.Get(k)
}

// Insert delegates and observes.
func (m *Morphing) Insert(k Key, v Value) error {
	m.observe(workload.OpInsert)
	return m.cur.Insert(k, v)
}

// Update delegates and observes.
func (m *Morphing) Update(k Key, v Value) bool {
	m.observe(workload.OpUpdate)
	return m.cur.Update(k, v)
}

// Delete delegates and observes.
func (m *Morphing) Delete(k Key) bool {
	m.observe(workload.OpDelete)
	return m.cur.Delete(k)
}

// RangeScan delegates and observes.
func (m *Morphing) RangeScan(lo, hi Key, emit func(Key, Value) bool) int {
	m.observe(workload.OpRange)
	return m.cur.RangeScan(lo, hi, emit)
}

// BulkLoad loads into the current shape.
func (m *Morphing) BulkLoad(recs []Record) error {
	if bl, ok := m.cur.(BulkLoader); ok {
		return bl.BulkLoad(recs)
	}
	for _, r := range recs {
		if err := m.cur.Insert(r.Key, r.Value); err != nil && err != ErrKeyExists {
			return err
		}
	}
	return nil
}
