package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := func(keys []uint64) bool {
		flt := NewFilter(len(keys)+1, 10, nil)
		for _, k := range keys {
			flt.Add(k)
		}
		for _, k := range keys {
			if !flt.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFalsePositiveRateNearTheory(t *testing.T) {
	const n = 10000
	flt := NewFilter(n, 10, nil)
	for k := uint64(0); k < n; k++ {
		flt.Add(k)
	}
	fp := 0
	const probes = 20000
	for k := uint64(n); k < n+probes; k++ {
		if flt.MayContain(k) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// Theory for 10 bits/key, k=7: ~0.8%. Allow generous slack.
	if rate > 0.03 {
		t.Fatalf("false positive rate %v too high", rate)
	}
	if est := flt.FalsePositiveRate(); est <= 0 || est > 0.05 {
		t.Fatalf("estimated FP rate %v", est)
	}
}

func TestMoreBitsFewerFalsePositives(t *testing.T) {
	rate := func(bitsPerKey float64) float64 {
		const n = 5000
		flt := NewFilter(n, bitsPerKey, nil)
		for k := uint64(0); k < n; k++ {
			flt.Add(k)
		}
		fp := 0
		for k := uint64(n); k < n+10000; k++ {
			if flt.MayContain(k) {
				fp++
			}
		}
		return float64(fp) / 10000
	}
	if small, big := rate(4), rate(12); big >= small {
		t.Fatalf("12 bits/key (%v) should beat 4 bits/key (%v)", big, small)
	}
}

func TestSizeScalesWithBits(t *testing.T) {
	a := NewFilter(1000, 4, nil)
	b := NewFilter(1000, 16, nil)
	if b.SizeBytes() <= a.SizeBytes() {
		t.Fatalf("sizes: %d vs %d", b.SizeBytes(), a.SizeBytes())
	}
	if a.K() < 1 || b.K() > 16 {
		t.Fatalf("probe counts: %d, %d", a.K(), b.K())
	}
}

func TestClamps(t *testing.T) {
	f := NewFilter(0, 0, nil)
	f.Add(1)
	if !f.MayContain(1) {
		t.Fatal("degenerate filter lost a key")
	}
	if f.Bits() < 64 {
		t.Fatal("minimum size not enforced")
	}
	g := NewFilter(10, 1000, nil)
	if g.K() > 16 {
		t.Fatalf("k clamp: %d", g.K())
	}
}

func TestMeterCharges(t *testing.T) {
	f := NewFilter(100, 10, nil)
	f.Add(5)
	if f.Meter().AuxWritten == 0 {
		t.Fatal("Add not charged")
	}
	f.MayContain(5)
	if f.Meter().AuxRead == 0 {
		t.Fatal("MayContain not charged")
	}
	if f.Count() != 1 {
		t.Fatal("count")
	}
}

func TestCountingAddRemove(t *testing.T) {
	c := NewCounting(1000, 10, nil)
	for k := uint64(0); k < 500; k++ {
		c.Add(k)
	}
	for k := uint64(0); k < 500; k++ {
		if !c.MayContain(k) {
			t.Fatalf("false negative %d", k)
		}
	}
	// Remove half; removed keys usually disappear, kept keys never do.
	for k := uint64(0); k < 500; k += 2 {
		c.Remove(k)
	}
	for k := uint64(1); k < 500; k += 2 {
		if !c.MayContain(k) {
			t.Fatalf("remove caused false negative on %d", k)
		}
	}
	gone := 0
	for k := uint64(0); k < 500; k += 2 {
		if !c.MayContain(k) {
			gone++
		}
	}
	if gone < 200 {
		t.Fatalf("only %d/250 removed keys disappeared", gone)
	}
	if c.Count() != 250 {
		t.Fatalf("count %d", c.Count())
	}
}

func TestCountingNoFalseNegativesProperty(t *testing.T) {
	f := func(add []uint64, removeIdx []uint8) bool {
		c := NewCounting(len(add)+1, 8, nil)
		for _, k := range add {
			c.Add(k)
		}
		removed := map[uint64]bool{}
		for _, i := range removeIdx {
			if len(add) == 0 {
				break
			}
			k := add[int(i)%len(add)]
			if !removed[k] {
				c.Remove(k)
				removed[k] = true
			}
		}
		for _, k := range add {
			if !removed[k] && !c.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCountingSaturation(t *testing.T) {
	c := NewCounting(4, 4, nil)
	// Hammer one key far past the 4-bit counter limit.
	for i := 0; i < 100; i++ {
		c.Add(42)
	}
	for i := 0; i < 100; i++ {
		c.Remove(42)
	}
	// Saturated counters never decrement: still (conservatively) present.
	if !c.MayContain(42) {
		t.Fatal("saturated counter was decremented to zero")
	}
}

func TestCountingSize(t *testing.T) {
	c := NewCounting(1000, 10, nil)
	f := NewFilter(1000, 10, nil)
	if c.SizeBytes() < 3*f.SizeBytes() {
		t.Fatalf("counting filter should cost ~4x: %d vs %d", c.SizeBytes(), f.SizeBytes())
	}
}

func TestProbeDistribution(t *testing.T) {
	// Double hashing with an odd step must not degenerate: adding many keys
	// should set a spread of bits, not a handful.
	f := NewFilter(1000, 10, nil)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		f.Add(rng.Uint64())
	}
	ones := 0
	for _, w := range f.bits {
		for ; w != 0; w &= w - 1 {
			ones++
		}
	}
	if ones < 3000 {
		t.Fatalf("only %d bits set for 1000 keys x %d probes", ones, f.K())
	}
}
