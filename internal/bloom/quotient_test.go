package bloom

import (
	"math/rand"
	"testing"
)

func TestQuotientValidation(t *testing.T) {
	if _, err := NewQuotient(2, 0, nil); err == nil {
		t.Fatal("q=2 accepted")
	}
	if _, err := NewQuotient(8, 8, nil); err == nil {
		t.Fatal("p=q accepted")
	}
	if f, err := NewQuotient(8, 0, nil); err != nil || f.r != 8 {
		t.Fatalf("defaults: %v r=%d", err, f.r)
	}
}

func TestQuotientBasic(t *testing.T) {
	f, err := NewQuotient(8, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.MayContain(42) {
		t.Fatal("empty filter contains")
	}
	f.Add(42)
	if !f.MayContain(42) {
		t.Fatal("added key missing")
	}
	if f.Count() != 1 {
		t.Fatalf("count %d", f.Count())
	}
	f.Add(42) // idempotent at fingerprint level
	if f.Count() != 1 {
		t.Fatalf("duplicate add changed count: %d", f.Count())
	}
	if !f.Remove(42) {
		t.Fatal("remove failed")
	}
	if f.MayContain(42) {
		t.Fatal("removed key still present")
	}
	if f.Remove(42) {
		t.Fatal("double remove")
	}
}

// TestQuotientNoFalseNegatives: every added (and not removed) key answers
// true.
func TestQuotientNoFalseNegatives(t *testing.T) {
	f, err := NewQuotient(10, 26, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 600)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Add(keys[i])
	}
	for _, k := range keys {
		if !f.MayContain(k) {
			t.Fatalf("false negative for %d", k)
		}
	}
}

// TestQuotientDifferential: with a fixed table (no growth) the filter must
// agree EXACTLY with a model set of fingerprints — the quotient filter is
// lossless at the fingerprint level.
func TestQuotientDifferential(t *testing.T) {
	f, err := NewQuotient(7, 15, nil) // 128 slots: heavy collisions
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	model := map[uint64]bool{} // fingerprints present
	keyOf := map[uint64][]uint64{}
	var keys []uint64
	for i := 0; i < 6000; i++ {
		var k uint64
		if len(keys) > 0 && rng.Intn(2) == 0 {
			k = keys[rng.Intn(len(keys))]
		} else {
			k = rng.Uint64()
			keys = append(keys, k)
		}
		fp := f.fingerprint(k)
		switch rng.Intn(3) {
		case 0: // add
			if f.LoadFactor() > 0.8 {
				continue // avoid growth in the differential test
			}
			f.Add(k)
			model[fp] = true
			keyOf[fp] = append(keyOf[fp], k)
		case 1: // contains
			if got, want := f.MayContain(k), model[fp]; got != want {
				t.Fatalf("op %d: MayContain fingerprint %x = %v want %v (n=%d)", i, fp, got, want, f.n)
			}
		case 2: // remove
			got := f.Remove(k)
			if got != model[fp] {
				t.Fatalf("op %d: Remove fingerprint %x = %v want %v", i, fp, got, model[fp])
			}
			delete(model, fp)
		}
		if f.Count() != len(model) {
			t.Fatalf("op %d: count %d want %d", i, f.Count(), len(model))
		}
	}
	// Final exhaustive agreement.
	for _, k := range keys {
		fp := f.fingerprint(k)
		if f.MayContain(k) != model[fp] {
			t.Fatalf("final: fingerprint %x", fp)
		}
	}
}

func TestQuotientGrowth(t *testing.T) {
	f, err := NewQuotient(4, 20, nil) // 16 slots: grows fast
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	keys := make([]uint64, 500)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Add(keys[i])
	}
	if f.q == 4 {
		t.Fatal("filter never grew")
	}
	for _, k := range keys {
		if !f.MayContain(k) {
			t.Fatalf("key lost in growth")
		}
	}
	// Load stays workable after growth.
	if f.LoadFactor() > 0.95 {
		t.Fatalf("load %v after growth", f.LoadFactor())
	}
}

func TestQuotientFalsePositiveRate(t *testing.T) {
	f, err := NewQuotient(12, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 3000; k++ {
		f.Add(k)
	}
	fp := 0
	const probes = 20000
	for k := uint64(1 << 40); k < 1<<40+probes; k++ {
		if f.MayContain(k) {
			fp++
		}
	}
	// 20-bit remainders at load ~0.73: collisions should be rare.
	if rate := float64(fp) / probes; rate > 0.01 {
		t.Fatalf("FP rate %v", rate)
	}
}

func TestQuotientMeterCharges(t *testing.T) {
	f, err := NewQuotient(8, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.Add(1)
	if f.Meter().AuxWritten == 0 {
		t.Fatal("Add not charged")
	}
	f.MayContain(1)
	if f.Meter().AuxRead == 0 {
		t.Fatal("MayContain not charged")
	}
	if f.SizeBytes() != 256*uint64(f.slotBytes()) {
		t.Fatalf("size %d", f.SizeBytes())
	}
}

func TestQuotientRemoveUnderChurn(t *testing.T) {
	f, err := NewQuotient(8, 24, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	live := map[uint64]bool{}
	for i := 0; i < 4000; i++ {
		k := uint64(rng.Intn(300))
		if live[k] {
			if !f.Remove(k) {
				t.Fatalf("op %d: remove of live key %d failed", i, k)
			}
			delete(live, k)
		} else {
			if f.LoadFactor() > 0.8 {
				continue
			}
			f.Add(k)
			live[k] = true
		}
		for kk := range live {
			if !f.MayContain(kk) {
				t.Fatalf("op %d: churn caused false negative on %d", i, kk)
			}
			break // spot check one per op
		}
	}
}
