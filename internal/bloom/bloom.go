// Package bloom implements Bloom filters (Bloom, CACM 1970), the canonical
// space-optimized lossy structure at the right corner of Figure 1: a few
// bits per key buy constant-time membership with a tunable false-positive
// rate, at zero false negatives.
//
// Three variants are provided:
//
//   - Filter: the classic bitmap with k double-hashed probes.
//   - Counting: 4-bit counters, supporting deletes at 4x the space.
//   - The LSM tree (internal/lsm) attaches a Filter per run — the paper's
//     "iterative logs enhanced by probabilistic data structures".
package bloom

import (
	"math"

	"repro/internal/rum"
)

const wordBytes = 8

// Filter is a classic Bloom filter over uint64 keys. Not safe for concurrent
// use.
type Filter struct {
	bits  []uint64
	m     uint64 // number of bits
	k     int    // probes per key
	n     int    // keys added
	meter *rum.Meter
}

// NewFilter sizes a filter for expectedN keys at bitsPerKey bits each
// (clamped to [1, 64]), choosing the optimal probe count k = bpk·ln2.
// A nil meter gets a private one.
func NewFilter(expectedN int, bitsPerKey float64, meter *rum.Meter) *Filter {
	if meter == nil {
		meter = &rum.Meter{}
	}
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	if bitsPerKey > 64 {
		bitsPerKey = 64
	}
	if expectedN < 1 {
		expectedN = 1
	}
	m := uint64(math.Ceil(float64(expectedN) * bitsPerKey))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(bitsPerKey * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &Filter{
		bits:  make([]uint64, (m+63)/64),
		m:     m,
		k:     k,
		meter: meter,
	}
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	return x ^ (x >> 33)
}

// probes returns the double-hashing base and step for key.
func probes(key uint64) (h1, h2 uint64) {
	h1 = mix(key)
	h2 = mix(key ^ 0x9e3779b97f4a7c15)
	h2 |= 1 // odd step visits all positions
	return
}

// Add inserts key, charging one word write per probe.
func (f *Filter) Add(key uint64) {
	h, step := probes(key)
	for i := 0; i < f.k; i++ {
		pos := h % f.m
		f.bits[pos/64] |= 1 << (pos % 64)
		h += step
	}
	f.meter.CountWrite(rum.Aux, f.k*wordBytes)
	f.n++
}

// MayContain reports whether key may be present: false means definitely
// absent. One word read is charged per probe (short-circuiting on the first
// zero bit).
func (f *Filter) MayContain(key uint64) bool {
	h, step := probes(key)
	for i := 0; i < f.k; i++ {
		pos := h % f.m
		f.meter.CountRead(rum.Aux, wordBytes)
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
		h += step
	}
	return true
}

// MayContainMetered is MayContain charging probe traffic to m instead of
// the filter's own meter. Once the filter is fully built it reads only
// immutable state, so concurrent snapshot readers — which must not touch
// the structure's shared accounting — may call it from any goroutine, each
// with its own meter.
func (f *Filter) MayContainMetered(key uint64, m *rum.Meter) bool {
	h, step := probes(key)
	for i := 0; i < f.k; i++ {
		pos := h % f.m
		m.CountRead(rum.Aux, wordBytes)
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
		h += step
	}
	return true
}

// K returns the probe count.
func (f *Filter) K() int { return f.k }

// Bits returns the filter size in bits.
func (f *Filter) Bits() uint64 { return f.m }

// Count returns the number of keys added.
func (f *Filter) Count() int { return f.n }

// SizeBytes returns the filter's storage footprint.
func (f *Filter) SizeBytes() uint64 { return uint64(len(f.bits)) * wordBytes }

// Meter returns the RUM accounting.
func (f *Filter) Meter() *rum.Meter { return f.meter }

// FalsePositiveRate returns the expected FP rate for the current load:
// (1 - e^(-kn/m))^k.
func (f *Filter) FalsePositiveRate() float64 {
	if f.n == 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-float64(f.k)*float64(f.n)/float64(f.m)), float64(f.k))
}

// Counting is a counting Bloom filter with 4-bit counters, supporting
// Remove. Counters saturate at 15 and saturated counters are never
// decremented, preserving the no-false-negative guarantee.
type Counting struct {
	counters []uint8 // two 4-bit counters per byte
	m        uint64
	k        int
	n        int
	meter    *rum.Meter
}

// NewCounting sizes a counting filter like NewFilter; it occupies 4x the
// bits of the equivalent Filter.
func NewCounting(expectedN int, bitsPerKey float64, meter *rum.Meter) *Counting {
	f := NewFilter(expectedN, bitsPerKey, meter)
	return &Counting{
		counters: make([]uint8, (f.m+1)/2),
		m:        f.m,
		k:        f.k,
		meter:    f.meter,
	}
}

func (c *Counting) get(pos uint64) uint8 {
	b := c.counters[pos/2]
	if pos%2 == 0 {
		return b & 0x0f
	}
	return b >> 4
}

func (c *Counting) set(pos uint64, v uint8) {
	b := c.counters[pos/2]
	if pos%2 == 0 {
		b = (b & 0xf0) | (v & 0x0f)
	} else {
		b = (b & 0x0f) | (v << 4)
	}
	c.counters[pos/2] = b
}

// Add inserts key, incrementing k counters.
func (c *Counting) Add(key uint64) {
	h, step := probes(key)
	for i := 0; i < c.k; i++ {
		pos := h % c.m
		if v := c.get(pos); v < 15 {
			c.set(pos, v+1)
		}
		h += step
	}
	c.meter.CountWrite(rum.Aux, c.k)
	c.n++
}

// Remove deletes one occurrence of key. Removing a key that was never added
// can introduce false negatives, as with any counting filter; callers must
// only remove keys they added.
func (c *Counting) Remove(key uint64) {
	h, step := probes(key)
	for i := 0; i < c.k; i++ {
		pos := h % c.m
		if v := c.get(pos); v > 0 && v < 15 {
			c.set(pos, v-1)
		}
		h += step
	}
	c.meter.CountWrite(rum.Aux, c.k)
	if c.n > 0 {
		c.n--
	}
}

// MayContain reports whether key may be present.
func (c *Counting) MayContain(key uint64) bool {
	h, step := probes(key)
	for i := 0; i < c.k; i++ {
		pos := h % c.m
		c.meter.CountRead(rum.Aux, 1)
		if c.get(pos) == 0 {
			return false
		}
		h += step
	}
	return true
}

// Count returns the number of live keys.
func (c *Counting) Count() int { return c.n }

// SizeBytes returns the filter's storage footprint.
func (c *Counting) SizeBytes() uint64 { return uint64(len(c.counters)) }

// Meter returns the RUM accounting.
func (c *Counting) Meter() *rum.Meter { return c.meter }
