package bloom

import (
	"fmt"
	"sort"

	"repro/internal/rum"
)

// Quotient is a quotient filter (Bender et al., "Don't Thrash: How to Cache
// Your Hash on Flash"): an approximate membership structure that, unlike a
// plain Bloom filter, supports deletes and exact resizing — the "updatable
// probabilistic data structure" Section 5 of the paper names for absorbing
// updates in approximate indexes.
//
// A p-bit fingerprint f of each key splits into a q-bit quotient (its home
// slot) and an r-bit remainder stored in the slot. Remainders that collide
// on a home slot form sorted runs shifted right within a cluster, tracked
// by three metadata bits per slot (occupied / continuation / shifted).
//
// Mutations decode the affected cluster into its fingerprints, modify the
// set, and re-encode canonically — touching exactly the cluster (expected
// O(1) slots at moderate load), which is also what the meter charges.
// The filter doubles past load 0.85, stealing one remainder bit so the
// fingerprint width stays constant; fingerprints are recoverable from the
// table, so resizing needs no access to the original keys (impossible for a
// Bloom filter). Not safe for concurrent use.
type Quotient struct {
	q     uint // log2 slots
	r     uint // remainder bits
	slots []qslot
	n     int
	meter *rum.Meter
}

type qslot struct {
	remainder uint64
	used      bool // slot holds a remainder
	occupied  bool // some fingerprint's home is this slot
	cont      bool // continues the previous slot's run
	shifted   bool // remainder is not in its home slot
}

// slotBytes is the accounted footprint of one slot: r remainder bits plus
// three metadata bits, rounded up to whole bytes.
func (f *Quotient) slotBytes() int { return int(f.r+3+7) / 8 }

// NewQuotient creates a filter with 2^q slots and p total fingerprint bits
// (p > q; p = 0 defaults to q+8). A nil meter gets a private one.
func NewQuotient(q uint, p uint, meter *rum.Meter) (*Quotient, error) {
	if q < 3 || q > 30 {
		return nil, fmt.Errorf("bloom: quotient q=%d out of range [3,30]", q)
	}
	if p == 0 {
		p = q + 8
	}
	if p <= q || p > 60 {
		return nil, fmt.Errorf("bloom: fingerprint bits p=%d invalid for q=%d", p, q)
	}
	if meter == nil {
		meter = &rum.Meter{}
	}
	return &Quotient{q: q, r: p - q, slots: make([]qslot, 1<<q), meter: meter}, nil
}

// Count returns the number of stored fingerprints.
func (f *Quotient) Count() int { return f.n }

// SizeBytes returns the filter's accounted footprint.
func (f *Quotient) SizeBytes() uint64 { return uint64(len(f.slots)) * uint64(f.slotBytes()) }

// Meter returns the RUM accounting.
func (f *Quotient) Meter() *rum.Meter { return f.meter }

// LoadFactor returns stored fingerprints per slot.
func (f *Quotient) LoadFactor() float64 { return float64(f.n) / float64(len(f.slots)) }

// FingerprintBits returns the total fingerprint width p = q + r.
func (f *Quotient) FingerprintBits() uint { return f.q + f.r }

func (f *Quotient) mask() uint64 { return uint64(len(f.slots) - 1) }

// fingerprint derives the p-bit fingerprint of key.
func (f *Quotient) fingerprint(key uint64) uint64 {
	return mix(key) & ((1 << (f.q + f.r)) - 1)
}

func (f *Quotient) split(fp uint64) (quot, rem uint64) {
	return fp >> f.r, fp & ((1 << f.r) - 1)
}

// fpEntry is one decoded fingerprint: home quotient + remainder.
type fpEntry struct{ q, r uint64 }

// clusterStart returns the start slot of the cluster containing quot, or
// quot itself with ok=false when no cluster covers it.
func (f *Quotient) clusterStart(quot uint64) (uint64, bool) {
	if !f.slots[quot].used {
		return quot, false
	}
	i := quot
	for f.slots[i].shifted {
		i = (i - 1) & f.mask()
	}
	return i, true
}

// decodeRegion reads the maximal used region starting at the cluster start
// `start`, returning its fingerprints in canonical order, the first unused
// slot after it, and the number of slots read. The region may contain
// several runs but is one cluster by construction (contiguous used slots).
func (f *Quotient) decodeRegion(start uint64) (entries []fpEntry, end uint64, read int) {
	i := start
	runHome := start
	first := true
	for f.slots[i].used {
		read++
		if !f.slots[i].cont {
			h := runHome
			if !first {
				h = (runHome + 1) & f.mask()
			}
			for !f.slots[h].occupied {
				h = (h + 1) & f.mask()
			}
			runHome = h
		}
		entries = append(entries, fpEntry{q: runHome, r: f.slots[i].remainder})
		first = false
		i = (i + 1) & f.mask()
		if i == start {
			break // the table is one full cluster
		}
	}
	return entries, i, read
}

// offset is the circular distance from base to pos.
func (f *Quotient) offset(base, pos uint64) uint64 {
	return (pos - base) & f.mask()
}

// encodeRegion writes entries (sorted by (q, r)) canonically starting at
// base, clearing `span` slots first, and returns the slots written.
// Placement: each run sits at max(its home, end of the previous run);
// gaps between runs stay empty, naturally splitting clusters.
func (f *Quotient) encodeRegion(base uint64, span uint64, entries []fpEntry) int {
	for off := uint64(0); off < span; off++ {
		f.slots[(base+off)&f.mask()] = qslot{}
	}
	writes := int(span)
	cursor := uint64(0) // next free offset from base
	i := 0
	for i < len(entries) {
		// One run: all entries sharing a home quotient.
		home := entries[i].q
		j := i
		for j < len(entries) && entries[j].q == home {
			j++
		}
		homeOff := f.offset(base, home)
		runOff := homeOff
		if cursor > runOff {
			runOff = cursor
		}
		f.slots[home].occupied = true
		for k := i; k < j; k++ {
			pos := (base + runOff + uint64(k-i)) & f.mask()
			s := &f.slots[pos]
			s.remainder = entries[k].r
			s.used = true
			s.cont = k != i
			s.shifted = runOff+uint64(k-i) != homeOff
			writes++
		}
		cursor = runOff + uint64(j-i)
		i = j
	}
	return writes
}

// neededSpan returns the region length the entries occupy when encoded from
// base.
func (f *Quotient) neededSpan(base uint64, entries []fpEntry) uint64 {
	cursor := uint64(0)
	i := 0
	for i < len(entries) {
		home := entries[i].q
		j := i
		for j < len(entries) && entries[j].q == home {
			j++
		}
		runOff := f.offset(base, home)
		if cursor > runOff {
			runOff = cursor
		}
		cursor = runOff + uint64(j-i)
		i = j
	}
	return cursor
}

// modify decodes the region around quot, applies fn to its fingerprints,
// and re-encodes, absorbing following clusters when the encoding grows into
// them. fn must return the new (possibly identical) entry set.
func (f *Quotient) modify(quot uint64, fn func([]fpEntry) []fpEntry) {
	start, ok := f.clusterStart(quot)
	var entries []fpEntry
	end := start
	read := 0
	if ok {
		entries, end, read = f.decodeRegion(start)
	}
	newEntries := fn(entries)
	sort.Slice(newEntries, func(a, b int) bool {
		oa, ob := f.offset(start, newEntries[a].q), f.offset(start, newEntries[b].q)
		if oa != ob {
			return oa < ob
		}
		return newEntries[a].r < newEntries[b].r
	})

	// Grow the working region until the encoding fits before the next
	// cluster (or over empty slots).
	span := f.offset(start, end)
	if end == start && ok {
		span = uint64(len(f.slots)) // decoded the whole table
	}
	for {
		need := f.neededSpan(start, newEntries)
		if need <= span || span >= uint64(len(f.slots)) {
			break
		}
		if !f.slots[end].used {
			end = (end + 1) & f.mask()
			span++
			continue
		}
		more, newEnd, r := f.decodeRegion(end)
		read += r
		newEntries = append(newEntries, more...)
		if newEnd == end { // wrapped the table
			span = uint64(len(f.slots))
			break
		}
		span += f.offset(end, newEnd)
		end = newEnd
	}
	if span > uint64(len(f.slots)) {
		span = uint64(len(f.slots))
	}
	writes := f.encodeRegion(start, span, newEntries)
	f.meter.CountRead(rum.Aux, read*f.slotBytes())
	f.meter.CountWrite(rum.Aux, writes*f.slotBytes())
}

// MayContain reports whether key may be present (false = definitely absent).
func (f *Quotient) MayContain(key uint64) bool {
	quot, rem := f.split(f.fingerprint(key))
	if !f.slots[quot].occupied {
		f.meter.CountRead(rum.Aux, f.slotBytes())
		return false
	}
	start, _ := f.clusterStart(quot)
	entries, _, read := f.decodeRegion(start)
	f.meter.CountRead(rum.Aux, read*f.slotBytes())
	for _, e := range entries {
		if e.q == quot && e.r == rem {
			return true
		}
	}
	return false
}

// Add inserts key's fingerprint (idempotent per fingerprint).
func (f *Quotient) Add(key uint64) {
	if f.LoadFactor() > 0.85 {
		f.grow()
	}
	quot, rem := f.split(f.fingerprint(key))
	f.modify(quot, func(entries []fpEntry) []fpEntry {
		for _, e := range entries {
			if e.q == quot && e.r == rem {
				return entries // already present
			}
		}
		f.n++
		return append(entries, fpEntry{q: quot, r: rem})
	})
}

// Remove deletes key's fingerprint, reporting whether it was present. As
// with any approximate filter, remove only keys that were added.
func (f *Quotient) Remove(key uint64) bool {
	quot, rem := f.split(f.fingerprint(key))
	if !f.slots[quot].occupied {
		f.meter.CountRead(rum.Aux, f.slotBytes())
		return false
	}
	removed := false
	f.modify(quot, func(entries []fpEntry) []fpEntry {
		out := entries[:0]
		for _, e := range entries {
			if !removed && e.q == quot && e.r == rem {
				removed = true
				continue
			}
			out = append(out, e)
		}
		return out
	})
	if removed {
		f.n--
	}
	return removed
}

// grow doubles the table, stealing one remainder bit so the fingerprint
// width stays constant, and reinserts every fingerprint recovered from the
// old table.
func (f *Quotient) grow() {
	if f.r <= 1 || f.q >= 30 {
		return // cannot grow further; load will climb
	}
	old := f.slots
	oldMask := uint64(len(old) - 1)
	oldR := f.r

	// Recover all fingerprints by decoding every cluster of the old table.
	var fps []uint64
	visited := make([]bool, len(old))
	for s := uint64(0); s < uint64(len(old)); s++ {
		if !old[s].used || old[s].shifted || visited[s] {
			continue
		}
		// Decode the cluster starting at s using the old geometry.
		i := s
		runHome := s
		first := true
		for old[i].used && !visited[i] {
			visited[i] = true
			if !old[i].cont {
				h := runHome
				if !first {
					h = (runHome + 1) & oldMask
				}
				for !old[h].occupied {
					h = (h + 1) & oldMask
				}
				runHome = h
			}
			fps = append(fps, runHome<<oldR|old[i].remainder)
			first = false
			i = (i + 1) & oldMask
		}
	}

	f.q++
	f.r--
	f.slots = make([]qslot, 1<<f.q)
	f.n = 0
	for _, fp := range fps {
		quot, rem := f.split(fp)
		f.modify(quot, func(entries []fpEntry) []fpEntry {
			for _, e := range entries {
				if e.q == quot && e.r == rem {
					return entries
				}
			}
			f.n++
			return append(entries, fpEntry{q: quot, r: rem})
		})
	}
}
