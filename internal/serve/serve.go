// Package serve is the concurrent front-end of the repository: a sharded,
// actor-style serving layer that partitions the keyspace across N shards,
// each owning one core.Instrumented access method pinned to the goroutine
// that built it. Clients submit batches of requests; the server splits each
// batch into per-shard sub-batches and delivers every sub-batch as a single
// mailbox message, so the channel-hop cost is amortized over the whole
// sub-batch rather than paid per operation.
//
// The design keeps two invariants the rest of the repository depends on:
//
//   - Single writer, many readers per shard. Every structure (and the
//     simulated Device and BufferPool beneath it) is built on its shard's
//     goroutine and mutated by no other goroutine, so the -tags racecheck
//     goroutine-binding assertions hold unchanged. With Config.Snapshots,
//     any number of client goroutines may additionally read epoch-stamped
//     immutable snapshots the writer publishes (see mvcc.go) — readers
//     touch frozen state and raw device pages only, never the structure or
//     the pool, and the racecheck build's page-generation stamps verify it.
//
//   - Truthful RUM accounting. Each shard's rum.Meter is a plain Meter on
//     the hot path (no atomics per byte); meters are snapshotted by the
//     shard goroutine when it exits and published through the happens-before
//     edge of Server.Stop, where they merge into one aggregate. Snapshot
//     readers charge private meters that the shard absorbs at snapshot
//     retirement. The merged logical side is exact: every request is
//     accounted on exactly one shard.
//
// Ordering: requests from one client (one Do call at a time) are executed in
// submission order on every shard they touch, because a Do call enqueues at
// most one message per shard per MaxBatch chunk and mailboxes are FIFO.
// Requests from different concurrent clients interleave arbitrarily —
// callers that need deterministic outcomes partition the keyspace between
// clients (the serve experiment in internal/bench does exactly that).
package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rum"
	"repro/internal/wal"
)

// Op enumerates the request kinds a shard executes.
type Op uint8

const (
	// OpGet is a point query.
	OpGet Op = iota
	// OpInsert adds a record.
	OpInsert
	// OpUpdate modifies an existing record.
	OpUpdate
	// OpDelete removes a record.
	OpDelete
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Request is one operation submitted to the server. Value is ignored for
// OpGet and OpDelete.
type Request struct {
	Op    Op
	Key   core.Key
	Value core.Value
}

// Result is the outcome of one Request, written into the caller's slice by
// the shard that executed it. OK means: found (get), inserted without error
// (insert), or key existed (update, delete). Value is set for a found get.
type Result struct {
	Value core.Value
	OK    bool
}

// Config sizes a Server. The zero value of every field selects a default.
type Config struct {
	// Shards is the number of keyspace partitions, each with its own
	// goroutine and structure instance (default 1).
	Shards int
	// MaxBatch caps the requests carried by one mailbox message; larger
	// per-shard sub-batches are split (default 256).
	MaxBatch int
	// Queue is the mailbox depth in messages per shard (default 4).
	Queue int
	// Build constructs shard i's structure. It runs on the shard's own
	// goroutine — never on the caller's — which is what pins the structure,
	// and the storage stack under it, to a single owner. Required.
	Build func(shard int) *core.Instrumented
	// Trace enables request lifecycle tracing (queue/service decomposition,
	// per-shard phase histograms, the slow-op flight recorder). Nil — the
	// default — keeps the hot path free of clock reads and allocations.
	Trace *TraceConfig
	// Workload enables workload fingerprinting (mix/skew/working-set
	// windows, drift detection; see workload.go). Nil — the default — costs
	// the hot path one nil check per message.
	Workload *WorkloadConfig
	// Snapshots enables the MVCC read path (see mvcc.go): shards publish
	// epoch-stamped snapshots and pure-read sub-batches execute against them
	// on the caller's goroutine, bypassing the mailbox entirely. Build's
	// structures must support core.SnapshotReader (btree/lsm with
	// Config.Versions > 0); a shard whose structure does not keeps serving
	// reads through its mailbox, unchanged.
	Snapshots bool
	// StalenessOps caps the writes a shard applies between snapshot
	// publishes when Snapshots is on. The default 1 republishes after every
	// write-carrying message — strict mode, giving read-your-writes across
	// Do calls. Larger values amortize publish cost over up to StalenessOps
	// writes; snapshot reads may then be up to that many writes stale.
	StalenessOps int
}

func (c *Config) defaults() error {
	if c.Build == nil {
		return errors.New("serve: Config.Build is required")
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Shards < 0 {
		return fmt.Errorf("serve: %d shards; need at least 1", c.Shards)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.Queue <= 0 {
		c.Queue = 4
	}
	if c.StalenessOps <= 0 {
		c.StalenessOps = 1
	}
	return nil
}

// ErrStopped is returned by calls made after Stop.
var ErrStopped = errors.New("serve: server is stopped")

// message is one mailbox delivery: a sub-batch of operations (idxs into the
// shared reqs/res slices), a bulk load, a flush barrier, or a range-scan
// collection. done is decremented once per message.
type message struct {
	kind msgKind

	// kindOps
	reqs []Request
	res  []Result
	idxs []uint32

	// kindBulk
	recs    []core.Record
	bulkErr *error

	// kindScan
	scan *scanPart

	// kindSnap
	snap *ShardReport

	// enqueuedAt is the Do call's send instant, stamped only when tracing is
	// enabled (zero otherwise); queue wait is measured from it.
	enqueuedAt time.Time

	done *completion
}

type msgKind uint8

const (
	kindOps msgKind = iota
	kindBulk
	kindFlush
	kindScan
	kindSnap
)

// scanPart collects one shard's contribution to a broadcast range scan.
type scanPart struct {
	lo, hi core.Key
	out    []core.Record
}

// Committer is implemented by write-ahead-logged structures (wal.Logged)
// whose acknowledged mutations become durable only at an explicit group
// commit. A shard whose structure implements it commits once at the end of
// every write-carrying mailbox message — the sub-batch is the commit group,
// so the sync cost is amortized over the whole message for free. Structures
// without it are unaffected.
type Committer interface {
	Commit() error
}

// completion counts outstanding messages of one client call; the channel
// closes when the last shard finishes.
type completion struct {
	pending atomic.Int32
	done    chan struct{}
}

func (c *completion) finish() {
	if c.pending.Add(-1) == 0 {
		close(c.done)
	}
}

// ShardReport is one shard's final ledger, published at Stop: the structure
// it served, how many requests it executed, and its meter, size, and record
// count at shutdown.
type ShardReport struct {
	Shard int
	Name  string
	Ops   uint64
	Meter rum.Meter
	Size  rum.SizeInfo
	Len   int
	// Phases is the shard's lifecycle decomposition (queue/service/batch
	// histograms and exemplars) — nil when tracing is disabled, and nil in
	// the report of a shard that died mid-run: a dead shard publishes its
	// error, never partial phase records.
	Phases *obs.PhaseSnapshot
	// SnapVersions is the structure's retained snapshot version count at
	// report time (0 when the MVCC read path is off or unsupported).
	SnapVersions int
	// WAL is the structure's write-ahead-log ledger (nil when it is not
	// logged), read on the shard goroutine like every other ledger field.
	WAL *obs.WALPoint
	// Workload is the shard's workload fingerprint snapshot (mix, skew,
	// working set, drift events) — nil when fingerprinting is disabled, and
	// nil in a dead shard's report.
	Workload *obs.WorkloadSnapshot
	// Err records a shard that died mid-run (a Build or operation panic).
	// Requests routed to a dead shard complete with zero Results.
	Err error
}

// shard is the per-partition actor state. Everything below mailbox is owned
// by the shard goroutine and read by others only after Stop's wg.Wait.
type shard struct {
	id      int
	mailbox chan message
	ops     uint64
	report  ShardReport
	// rec is the shard's phase recorder (nil when tracing is disabled),
	// owned by the shard goroutine like everything else here; slow is the
	// server-wide flight recorder it offers traces to; wrec is the shard's
	// workload fingerprinter (nil when fingerprinting is disabled).
	rec  *obs.PhaseRecorder
	slow *obs.SlowLog
	wrec *obs.WorkloadRecorder
	// commit is the structure's group-commit hook (nil for structures that
	// are not write-ahead logged), asserted once after Build.
	commit Committer

	// MVCC state (Config.Snapshots; see mvcc.go). cur and bypassOps are the
	// reader-facing atomics; everything else is shard-goroutine-owned.
	cur          atomic.Pointer[shardSnap]
	bypassOps    atomic.Uint64 // reads served off snapshots, mailbox bypassed
	snapEvery    int           // publish cadence in writes; 0 = MVCC off
	writesSince  int           // writes applied since the last publish
	snapVersions int           // SnapshotStats.Versions as of the last publish
	snapMeter    rum.Meter     // reader traffic absorbed from dead snapshots
	retiredSnaps []*shardSnap  // superseded snapshots awaiting absorption
}

// Server is the sharded serving front-end. All exported methods are safe for
// concurrent use by any number of client goroutines, except Stop, which must
// be called once, after every client call has returned.
type Server struct {
	cfg    Config
	shards []*shard
	slow   *obs.SlowLog // flight recorder; nil when tracing is disabled
	wg     sync.WaitGroup

	// readersActive gauges client goroutines currently executing snapshot
	// reads (the rum_reader_concurrency metric).
	readersActive atomic.Int64

	mu      sync.RWMutex // guards stopped against in-flight sends
	stopped bool
}

// New starts cfg.Shards shard goroutines and returns the serving front-end.
// Build runs asynchronously on each shard's goroutine; requests submitted
// before a shard finishes building simply queue in its mailbox.
func New(cfg Config) (*Server, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	if tc := cfg.Trace; tc != nil {
		s.slow = obs.NewSlowLog(tc.slowK(), tc.SlowTTL)
	}
	for i := range s.shards {
		s.shards[i] = &shard{id: i, mailbox: make(chan message, cfg.Queue)}
	}
	s.wg.Add(len(s.shards))
	for _, sh := range s.shards {
		go s.runShard(sh)
	}
	return s, nil
}

// Shards returns the configured shard count.
func (s *Server) Shards() int { return len(s.shards) }

// shardOf routes a key to its home shard with a finalizer-style mix so
// sequential and scattered key patterns both spread evenly. The mapping
// depends only on (key, shard count) — never on scheduling — so request
// routing is deterministic.
func (s *Server) shardOf(k core.Key) int {
	if len(s.shards) == 1 {
		return 0
	}
	x := uint64(k)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return int(x % uint64(len(s.shards)))
}

// runShard is the actor loop: build the structure, then apply messages until
// the mailbox closes. A panic (in Build or in an operation) marks the shard
// dead and drains the mailbox, completing every remaining message so no
// client deadlocks; the error surfaces from Stop.
func (s *Server) runShard(sh *shard) {
	defer s.wg.Done()
	defer func() {
		if v := recover(); v != nil {
			sh.report.Err = fmt.Errorf("serve: shard %d: %v", sh.id, v)
			sh.report.Shard = sh.id
			sh.report.Ops = sh.ops + sh.bypassOps.Load()
			// Uninstall the snapshot so readers stop serving from a dead
			// shard and fall back to the mailbox (completing with zero
			// Results, like every other request here). In-flight readers may
			// still hold references, so the chain is not absorbed — the
			// shard is dead and its ledger is the error report.
			if cur := sh.cur.Swap(nil); cur != nil {
				cur.refs.Add(-1)
			}
			for msg := range sh.mailbox {
				// A dead shard still answers snapshots — with its error
				// report — so a live telemetry plane sees the death instead
				// of hanging or reading zeros.
				if msg.kind == kindSnap {
					*msg.snap = sh.report
				}
				msg.done.finish()
			}
		}
	}()
	if tc := s.cfg.Trace; tc != nil {
		// The recorder is created (or fetched) on the shard goroutine before
		// Build runs, so a Build closure can pick it up — e.g. to thread it
		// into the storage stack as a hook — without crossing goroutines.
		if tc.Recorder != nil {
			sh.rec = tc.Recorder(sh.id)
		}
		if sh.rec == nil {
			sh.rec = obs.NewPhaseRecorder()
		}
		sh.slow = s.slow
	}
	if wc := s.cfg.Workload; wc != nil {
		// Same contract as the phase recorder: created or fetched on the
		// shard goroutine before Build, single-owner afterwards.
		if wc.Recorder != nil {
			sh.wrec = wc.Recorder(sh.id)
		}
		if sh.wrec == nil {
			sh.wrec = obs.NewWorkloadRecorder(wc.WindowOps, wc.Keep)
		}
	}
	am := s.cfg.Build(sh.id)
	sh.commit, _ = am.Unwrap().(Committer)
	if s.cfg.Snapshots {
		// The first publish (of the freshly built, possibly empty structure)
		// also probes snapshot support: a structure without it flips the
		// shard back to mailbox-only reads.
		sh.snapEvery = s.cfg.StalenessOps
		sh.publishSnap(am)
	}
	for msg := range sh.mailbox {
		sh.apply(am, msg)
	}
	sh.shutdownSnaps()
	if sh.wrec != nil {
		// Force the final partial window out so the last phase of a run
		// shorter than a window still fingerprints deterministically.
		sh.wrec.Rotate()
	}
	sh.report = ShardReport{
		Shard:        sh.id,
		Name:         am.Name(),
		Ops:          sh.ops + sh.bypassOps.Load(),
		Meter:        sh.ledgerMeter(am),
		Size:         am.Size(),
		Len:          am.Len(),
		SnapVersions: sh.snapVersions,
		WAL:          walLedger(am),
	}
	if sh.rec != nil {
		sh.report.Phases = sh.rec.Snapshot()
	}
	if sh.wrec != nil {
		sh.report.Workload = sh.wrec.Snapshot()
	}
}

// apply executes one message. The completion fires even if an operation
// panics (the panic then kills the shard via runShard's recover).
func (sh *shard) apply(am *core.Instrumented, msg message) {
	defer msg.done.finish()
	switch msg.kind {
	case kindOps:
		if sh.rec != nil {
			sh.applyOpsTraced(am, msg)
		} else {
			for _, i := range msg.idxs {
				req := &msg.reqs[i]
				// Assign whole Results: callers reuse res buffers across Do
				// calls, so a partial write (OK only) would leak a stale Value
				// from an earlier batch into this one's outcome.
				var out Result
				switch req.Op {
				case OpGet:
					out.Value, out.OK = am.Get(req.Key)
				case OpInsert:
					out.OK = am.Insert(req.Key, req.Value) == nil
				case OpUpdate:
					out.OK = am.Update(req.Key, req.Value)
				case OpDelete:
					out.OK = am.Delete(req.Key)
				}
				msg.res[i] = out
			}
			sh.ops += uint64(len(msg.idxs))
		}
		if sh.wrec != nil {
			// A separate pass after execution keeps the batch loop above
			// byte-for-byte identical to the unfingerprinted build.
			sh.recordOps(msg)
		}
		if sh.commit != nil || sh.snapEvery > 0 {
			writes := 0
			for _, i := range msg.idxs {
				if msg.reqs[i].Op != OpGet {
					writes++
				}
			}
			// Group commit before the deferred completion fires: when the
			// completion releases the client, every write it acknowledged OK
			// is already in the log. A failed commit poisons the log — the
			// batch's records were acked but not promised durable, and every
			// later write on this shard fails loudly — so the error is not
			// re-raised here.
			if writes > 0 && sh.commit != nil {
				_ = sh.commit.Commit()
			}
			// Republish before the deferred completion fires: strict mode's
			// read-your-writes rides on this ordering.
			if sh.snapEvery > 0 {
				sh.noteWrites(am, writes)
			}
		}
	case kindBulk:
		if err := am.BulkLoad(msg.recs); err != nil {
			*msg.bulkErr = fmt.Errorf("serve: shard %d bulkload: %w", sh.id, err)
		}
		if sh.commit != nil && len(msg.recs) > 0 {
			_ = sh.commit.Commit()
		}
		sh.noteWrites(am, len(msg.recs))
	case kindFlush:
		am.Flush()
		if sh.snapEvery > 0 {
			// Flush is a barrier; give readers the freshest possible view.
			sh.publishSnap(am)
		}
	case kindScan:
		p := msg.scan
		am.RangeScan(p.lo, p.hi, func(k core.Key, v core.Value) bool {
			p.out = append(p.out, core.Record{Key: k, Value: v})
			return true
		})
		if sh.wrec != nil {
			sh.wrec.RecordScan(len(p.out))
		}
	case kindSnap:
		// Read on the shard goroutine, like every other access: the meter,
		// size, and record count are touched only by their single owner, so
		// the -tags racecheck assertions hold and no lock shadows the hot
		// path. The write is published to the requester through the
		// completion's channel-close edge.
		rep := ShardReport{
			Shard:        sh.id,
			Name:         am.Name(),
			Ops:          sh.ops + sh.bypassOps.Load(),
			Meter:        sh.ledgerMeter(am),
			Size:         am.Size(),
			Len:          am.Len(),
			SnapVersions: sh.snapVersions,
			WAL:          walLedger(am),
		}
		if sh.rec != nil {
			rep.Phases = sh.rec.Snapshot()
		}
		if sh.wrec != nil {
			rep.Workload = sh.wrec.Snapshot()
		}
		*msg.snap = rep
	}
}

// Do executes a batch of requests and fills res (which must be the same
// length) with their outcomes. The call blocks until every request has
// executed; requests from this call are applied to each shard in slice
// order. Do may be called concurrently from any number of goroutines.
func (s *Server) Do(reqs []Request, res []Result) error {
	if len(reqs) != len(res) {
		return fmt.Errorf("serve: Do: %d requests but %d result slots", len(reqs), len(res))
	}
	if len(reqs) == 0 {
		return nil
	}
	nsh := len(s.shards)
	// Partition request indices by home shard: one counting pass, then a
	// placement pass into a single backing array, so a Do call allocates a
	// constant number of slices regardless of batch size. The counting pass
	// also classifies each shard's sub-batch: pure-read sub-batches skip
	// MaxBatch chunking (chunking amortizes write latency; a read sub-batch
	// split N ways pays N mailbox messages for nothing), and under
	// Config.Snapshots they bypass the mailbox entirely when the shard has a
	// published snapshot.
	counts := make([]int, nsh)
	home := make([]uint32, len(reqs))
	readOnly := make([]bool, nsh)
	for i := range readOnly {
		readOnly[i] = true
	}
	for i := range reqs {
		h := s.shardOf(reqs[i].Key)
		home[i] = uint32(h)
		counts[h]++
		if reqs[i].Op != OpGet {
			readOnly[h] = false
		}
	}
	idxBuf := make([]uint32, len(reqs))
	starts := make([]int, nsh+1)
	for i := 0; i < nsh; i++ {
		starts[i+1] = starts[i] + counts[i]
	}
	fill := make([]int, nsh)
	copy(fill, starts[:nsh])
	for i := range reqs {
		h := home[i]
		idxBuf[fill[h]] = uint32(i)
		fill[h]++
	}

	s.mu.RLock()
	if s.stopped {
		s.mu.RUnlock()
		return ErrStopped
	}
	// Snapshot acquisition and message counting happen together, before any
	// send: the completion's pending count must be final before the first
	// shard can finish. bypass[sh] non-nil marks a sub-batch this goroutine
	// will execute itself.
	var bypass []*shardSnap
	total := 0
	for sh := 0; sh < nsh; sh++ {
		c := counts[sh]
		if c == 0 {
			continue
		}
		if readOnly[sh] {
			if s.cfg.Snapshots {
				if ss := s.shards[sh].acquireSnap(); ss != nil {
					if bypass == nil {
						bypass = make([]*shardSnap, nsh)
					}
					bypass[sh] = ss
					continue
				}
			}
			total++ // one unchunked message
		} else {
			total += (c + s.cfg.MaxBatch - 1) / s.cfg.MaxBatch
		}
	}
	comp := &completion{done: make(chan struct{})}
	comp.pending.Store(int32(total))
	// One enqueue stamp per Do call when traced; the zero Time (and zero
	// clock reads) otherwise.
	var enq time.Time
	if s.cfg.Trace != nil && total > 0 {
		enq = time.Now()
	}
	for sh := 0; sh < nsh; sh++ {
		idxs := idxBuf[starts[sh]:starts[sh+1]]
		if len(idxs) == 0 || (bypass != nil && bypass[sh] != nil) {
			continue
		}
		if readOnly[sh] {
			s.shards[sh].mailbox <- message{
				kind: kindOps, reqs: reqs, res: res, idxs: idxs,
				enqueuedAt: enq, done: comp,
			}
			continue
		}
		for len(idxs) > 0 {
			n := len(idxs)
			if n > s.cfg.MaxBatch {
				n = s.cfg.MaxBatch
			}
			s.shards[sh].mailbox <- message{
				kind: kindOps, reqs: reqs, res: res, idxs: idxs[:n],
				enqueuedAt: enq, done: comp,
			}
			idxs = idxs[n:]
		}
	}
	s.mu.RUnlock()

	// Execute bypassed sub-batches on this goroutine — the client is the
	// reader — overlapping with whatever the mailboxes are doing. Each
	// sub-batch charges a private stack meter, merged once into the
	// snapshot's AtomicMeter for the owning shard to absorb later.
	if bypass != nil {
		s.readersActive.Add(1)
		var m rum.Meter
		for sh, ss := range bypass {
			if ss == nil {
				continue
			}
			idxs := idxBuf[starts[sh]:starts[sh+1]]
			for _, i := range idxs {
				var out Result
				out.Value, out.OK = ss.snap.Get(reqs[i].Key, &m)
				res[i] = out
			}
			ss.meter.Merge(m)
			m.Reset()
			ss.refs.Add(-1)
			s.shards[sh].bypassOps.Add(uint64(len(idxs)))
		}
		s.readersActive.Add(-1)
	}
	if total > 0 {
		<-comp.done
	}
	return nil
}

// broadcast sends one message per shard (sharing a completion) and waits.
func (s *Server) broadcast(prepare func(shard int) message) error {
	comp := &completion{done: make(chan struct{})}
	comp.pending.Store(int32(len(s.shards)))
	s.mu.RLock()
	if s.stopped {
		s.mu.RUnlock()
		return ErrStopped
	}
	for i, sh := range s.shards {
		m := prepare(i)
		m.done = comp
		sh.mailbox <- m
	}
	s.mu.RUnlock()
	<-comp.done
	return nil
}

// Get executes a single point query. Single-op calls pay a full mailbox
// round-trip; batch with Do where throughput matters.
func (s *Server) Get(k core.Key) (core.Value, bool) {
	req := [1]Request{{Op: OpGet, Key: k}}
	var res [1]Result
	if s.Do(req[:], res[:]) != nil {
		return 0, false
	}
	return res[0].Value, res[0].OK
}

// Insert executes a single insert; it reports ErrStopped after Stop and nil
// otherwise (a duplicate key surfaces as Result.OK=false through Do).
func (s *Server) Insert(k core.Key, v core.Value) error {
	req := [1]Request{{Op: OpInsert, Key: k, Value: v}}
	var res [1]Result
	if err := s.Do(req[:], res[:]); err != nil {
		return err
	}
	if !res[0].OK {
		return core.ErrKeyExists
	}
	return nil
}

// Update executes a single update, reporting whether the key existed.
func (s *Server) Update(k core.Key, v core.Value) bool {
	req := [1]Request{{Op: OpUpdate, Key: k, Value: v}}
	var res [1]Result
	if s.Do(req[:], res[:]) != nil {
		return false
	}
	return res[0].OK
}

// Delete executes a single delete, reporting whether the key existed.
func (s *Server) Delete(k core.Key) bool {
	req := [1]Request{{Op: OpDelete, Key: k}}
	var res [1]Result
	if s.Do(req[:], res[:]) != nil {
		return false
	}
	return res[0].OK
}

// Preload bulk-loads recs, which must be sorted by key and duplicate-free,
// splitting them across shards by key route. Each shard bulk-loads its
// (still sorted) subset through its structure's BulkLoad path.
func (s *Server) Preload(recs []core.Record) error {
	parts := make([][]core.Record, len(s.shards))
	for _, r := range recs {
		h := s.shardOf(r.Key)
		parts[h] = append(parts[h], r)
	}
	errs := make([]error, len(s.shards))
	if err := s.broadcast(func(i int) message {
		return message{kind: kindBulk, recs: parts[i], bulkErr: &errs[i]}
	}); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Flush forces every shard's buffered writes down to its device — a
// broadcast barrier: when Flush returns, all prior requests of this caller
// have executed and every shard has flushed.
func (s *Server) Flush() error {
	return s.broadcast(func(int) message { return message{kind: kindFlush} })
}

// Snapshot reads every shard's live ledger — meter, size, record count,
// operations executed — without stopping the server: a broadcast message
// that each shard answers on its own goroutine between batches. Snapshots
// are non-destructive (no counter resets, no barriers on other shards'
// traffic) and monotone per shard: each shard's counters in a later
// snapshot are ≥ those in an earlier one, and the final Stop report equals
// the last snapshot plus whatever executed in between. The reports are
// Aggregate-compatible.
//
// The snapshot is a per-shard-consistent cut, not a global one: shard A's
// ledger may be read a few batches before shard B's. For rate math over
// rolling windows that skew is harmless — each shard's series is exact.
//
// Snapshot may be called concurrently with Do/Flush/RangeScan from any
// goroutine. After Stop it returns ErrStopped; a shard that died mid-run
// answers with its error report, surfaced in the returned error while live
// shards still report real state.
func (s *Server) Snapshot() ([]ShardReport, error) {
	reports := make([]ShardReport, len(s.shards))
	if err := s.broadcast(func(i int) message {
		return message{kind: kindSnap, snap: &reports[i]}
	}); err != nil {
		return nil, err
	}
	var err error
	for i := range reports {
		if reports[i].Err != nil && err == nil {
			err = reports[i].Err
		}
	}
	return reports, err
}

// RangeScan runs a broadcast range query: every shard collects its records
// in [lo, hi], the parts are merged and sorted by key, and emit is called in
// ascending key order until it returns false. It returns the number of
// records emitted. Unlike a single-structure scan, the collection is not
// streamed: shards gather their full contribution before the merge, so emit
// stopping early saves emission, not shard work.
func (s *Server) RangeScan(lo, hi core.Key, emit func(core.Key, core.Value) bool) int {
	if s.cfg.Snapshots {
		// Serve the scan from snapshots on this goroutine when every shard
		// has one (see mvcc.go); otherwise fall through to the broadcast.
		if n, ok := s.snapshotScan(lo, hi, emit); ok {
			return n
		}
	}
	parts := make([]*scanPart, len(s.shards))
	if err := s.broadcast(func(i int) message {
		parts[i] = &scanPart{lo: lo, hi: hi}
		return message{kind: kindScan, scan: parts[i]}
	}); err != nil {
		return 0
	}
	var all []core.Record
	for _, p := range parts {
		all = append(all, p.out...)
	}
	// Hash routing scatters key order across shards; one sort restores it
	// (and tolerates structures whose per-shard scan order is unsorted).
	sortRecords(all)
	n := 0
	for _, r := range all {
		if !emit(r.Key, r.Value) {
			break
		}
		n++
	}
	return n
}

// Stop closes every mailbox, waits for the shard goroutines to exit, and
// returns the per-shard reports in shard order. It must be called exactly
// once, after all client calls have returned; the reported error joins any
// shard that died mid-run. Calling any method after Stop returns ErrStopped
// (or its zero-value equivalent).
func (s *Server) Stop() ([]ShardReport, error) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil, ErrStopped
	}
	s.stopped = true
	for _, sh := range s.shards {
		close(sh.mailbox)
	}
	s.mu.Unlock()
	s.wg.Wait()
	reports := make([]ShardReport, len(s.shards))
	var err error
	for i, sh := range s.shards {
		reports[i] = sh.report
		if sh.report.Err != nil && err == nil {
			err = sh.report.Err
		}
	}
	return reports, err
}

// walLedger mirrors the structure's log counters into an obs.WALPoint when
// it is write-ahead logged; nil for every other structure.
func walLedger(am *core.Instrumented) *obs.WALPoint {
	lg, ok := am.Unwrap().(*wal.Logged)
	if !ok {
		return nil
	}
	st := lg.Stats()
	return &obs.WALPoint{
		Committed:       lg.Committed(),
		Commits:         st.Commits,
		Syncs:           st.Syncs,
		Checkpoints:     st.Checkpoints,
		LogPagesWritten: st.LogPagesWritten,
		LogBytesWritten: st.LogBytesWritten,
		PagesRecycled:   st.PagesRecycled,
		LiveLogPages:    st.LiveLogPages,
		OverlayRecords:  st.OverlayRecords,
	}
}

// sortRecords orders recs by key ascending.
func sortRecords(recs []core.Record) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
}

// Aggregate merges per-shard reports into the server-wide ledger: summed
// meters (exact on the logical side — every request executed on exactly one
// shard), summed sizes, and the total record count.
func Aggregate(reports []ShardReport) (rum.Meter, rum.SizeInfo, int) {
	var m rum.Meter
	var sz rum.SizeInfo
	n := 0
	for _, r := range reports {
		m.Add(r.Meter)
		sz = sz.Add(r.Size)
		n += r.Len
	}
	return m, sz, n
}
