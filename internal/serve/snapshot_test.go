package serve

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/methods"
	"repro/internal/rum"
)

// meterMonotone reports whether every counter of b is ≥ its counter in a.
func meterMonotone(a, b rum.Meter) bool {
	return b.BaseRead >= a.BaseRead && b.AuxRead >= a.AuxRead &&
		b.BaseWritten >= a.BaseWritten && b.AuxWritten >= a.AuxWritten &&
		b.LogicalRead >= a.LogicalRead && b.LogicalWritten >= a.LogicalWritten &&
		b.ReadOps >= a.ReadOps && b.WriteOps >= a.WriteOps
}

// TestSnapshotMonotoneAndNonDestructive: consecutive snapshots are monotone
// per shard, and the final Stop report is byte-identical to a snapshot taken
// after the last request — proof that snapshotting consumed nothing.
func TestSnapshotMonotoneAndNonDestructive(t *testing.T) {
	s := mustNew(t, Config{Shards: 4, Build: buildSkiplist})
	if err, _ := runClient(s, 0, 1000); err != nil {
		t.Fatalf("client: %v", err)
	}
	snap1, err := s.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err, _ := runClient(s, 1, 1000); err != nil {
		t.Fatalf("client: %v", err)
	}
	snap2, err := s.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if len(snap1) != 4 || len(snap2) != 4 {
		t.Fatalf("snapshot lengths %d, %d; want 4", len(snap1), len(snap2))
	}
	var ops1, ops2 uint64
	for i := range snap2 {
		if snap1[i].Shard != i || snap2[i].Shard != i {
			t.Fatalf("snapshot out of shard order: %+v / %+v", snap1[i], snap2[i])
		}
		if snap2[i].Ops < snap1[i].Ops {
			t.Fatalf("shard %d ops went backwards: %d then %d", i, snap1[i].Ops, snap2[i].Ops)
		}
		if !meterMonotone(snap1[i].Meter, snap2[i].Meter) {
			t.Fatalf("shard %d meter not monotone:\n%+v\nthen\n%+v", i, snap1[i].Meter, snap2[i].Meter)
		}
		if snap2[i].Name != "skiplist" {
			t.Fatalf("shard %d name = %q", i, snap2[i].Name)
		}
		ops1 += snap1[i].Ops
		ops2 += snap2[i].Ops
	}
	if ops1 != 1000 || ops2 != 2000 {
		t.Fatalf("snapshot op totals %d, %d; want 1000, 2000", ops1, ops2)
	}
	// A second snapshot with no traffic in between is identical — reading
	// the ledger does not move it.
	snap3, err := s.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if !reflect.DeepEqual(snap2, snap3) {
		t.Fatalf("idle snapshots differ:\n%+v\nvs\n%+v", snap2, snap3)
	}
	// And the Stop report equals the last snapshot exactly, aggregate and
	// per shard.
	reports, err := s.Stop()
	if err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if !reflect.DeepEqual(snap3, reports) {
		t.Fatalf("Stop report differs from last snapshot:\n%+v\nvs\n%+v", reports, snap3)
	}
	m1, sz1, n1 := Aggregate(snap3)
	m2, sz2, n2 := Aggregate(reports)
	if m1 != m2 || sz1 != sz2 || n1 != n2 {
		t.Fatal("snapshot aggregate differs from Stop aggregate")
	}
}

// TestSnapshotAfterStop: a clean ErrStopped, never a deadlock or a send on
// a closed mailbox.
func TestSnapshotAfterStop(t *testing.T) {
	s := mustNew(t, Config{Shards: 2, Build: buildSkiplist})
	if _, err := s.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	reports, err := s.Snapshot()
	if err != ErrStopped {
		t.Fatalf("Snapshot after Stop = (%v, %v), want ErrStopped", reports, err)
	}
	if reports != nil {
		t.Fatalf("Snapshot after Stop returned reports: %+v", reports)
	}
}

// TestSnapshotDeadShard: a panicked shard answers snapshots with its error
// report instead of hanging the broadcast; live shards report real state.
func TestSnapshotDeadShard(t *testing.T) {
	s := mustNew(t, Config{Shards: 2, Build: func(i int) *core.Instrumented {
		if i == 1 {
			panic("shard 1 refuses to build")
		}
		return methods.NewSkiplist()
	}})
	// Route traffic so shard death is flushed through the mailbox.
	reqs := make([]Request, 64)
	for i := range reqs {
		reqs[i] = Request{Op: OpInsert, Key: core.Key(i), Value: 1}
	}
	if err := s.Do(reqs, make([]Result, len(reqs))); err != nil {
		t.Fatalf("Do: %v", err)
	}
	reports, err := s.Snapshot()
	if err == nil {
		t.Fatal("Snapshot of a dead shard reported no error")
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports", len(reports))
	}
	if reports[1].Err == nil {
		t.Fatalf("dead shard's report carries no error: %+v", reports[1])
	}
	if reports[0].Err != nil || reports[0].Name != "skiplist" {
		t.Fatalf("live shard's report broken: %+v", reports[0])
	}
	if _, err := s.Stop(); err == nil {
		t.Fatal("Stop reported no error for a panicked shard")
	}
}

// TestSnapshotUnderLoad interleaves snapshots with full-rate client traffic
// on a storage-backed stack; with -race and -tags racecheck this is the
// proof that live snapshots keep the single-owner contract.
func TestSnapshotUnderLoad(t *testing.T) {
	s := mustNew(t, Config{Shards: 4, Build: func(i int) *core.Instrumented {
		return methods.NewBTree(methods.Options{PoolPages: 8}, btree.Config{})
	}})
	stop := make(chan struct{})
	var snaps atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev []ShardReport
		for {
			select {
			case <-stop:
				return
			default:
			}
			cur, err := s.Snapshot()
			if err != nil {
				t.Errorf("Snapshot under load: %v", err)
				return
			}
			snaps.Add(1)
			if prev != nil {
				for i := range cur {
					if cur[i].Ops < prev[i].Ops || !meterMonotone(prev[i].Meter, cur[i].Meter) {
						t.Errorf("shard %d regressed under load", i)
						return
					}
				}
			}
			prev = cur
		}
	}()
	var cwg sync.WaitGroup
	errs := make([]error, 4)
	for c := 0; c < 4; c++ {
		cwg.Add(1)
		go func(c int) {
			defer cwg.Done()
			errs[c], _ = runClient(s, c, 1500)
		}(c)
	}
	cwg.Wait()
	close(stop)
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	if snaps.Load() == 0 {
		t.Fatal("snapshot loop never ran")
	}
	if _, err := s.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
}

// TestDoReusedBufferAcrossCalls locks in the PR 4 stale-Value fix across
// calls: a Result buffer recycled between Do calls must never leak an
// earlier call's Value into a later outcome.
func TestDoReusedBufferAcrossCalls(t *testing.T) {
	s := mustNew(t, Config{Shards: 2, Build: buildSkiplist})
	defer s.Stop()
	res := make([]Result, 2)
	// Call 1 fills both slots with found Values.
	if err := s.Do([]Request{
		{Op: OpInsert, Key: 1, Value: 11},
		{Op: OpInsert, Key: 2, Value: 22},
	}, res); err != nil {
		t.Fatal(err)
	}
	if err := s.Do([]Request{{Op: OpGet, Key: 1}, {Op: OpGet, Key: 2}}, res); err != nil {
		t.Fatal(err)
	}
	if res[0].Value != 11 || res[1].Value != 22 {
		t.Fatalf("warmup gets = %+v", res)
	}
	// Call 2 reuses the buffer for ops that produce no Value: a miss and a
	// delete. Stale 11/22 must not survive.
	if err := s.Do([]Request{{Op: OpGet, Key: 404}, {Op: OpDelete, Key: 2}}, res); err != nil {
		t.Fatal(err)
	}
	if res[0] != (Result{}) {
		t.Errorf("missed get leaked stale result: %+v", res[0])
	}
	if res[1] != (Result{OK: true}) {
		t.Errorf("delete leaked stale value: %+v", res[1])
	}
}

// BenchmarkSnapshot measures a snapshot's cost as shard count grows — the
// O(shards) claim: one mailbox round-trip and one struct copy per shard, no
// dependence on data volume or request history.
func BenchmarkSnapshot(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(map[int]string{1: "shards=1", 4: "shards=4", 16: "shards=16"}[shards], func(b *testing.B) {
			s, err := New(Config{Shards: shards, Build: buildSkiplist})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Stop()
			if err, _ := runClient(s, 0, 2000); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Snapshot(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDoUnderSnapshots measures the Do hot path with and without a
// concurrent snapshotter — the "telemetry overhead with no scraper / with a
// scraper" comparison quoted in the PR. Snapshots ride the same mailboxes
// as requests, so the no-scraper path carries zero extra synchronization.
func BenchmarkDoUnderSnapshots(b *testing.B) {
	run := func(b *testing.B, snapshots bool) {
		s, err := New(Config{Shards: 4, Build: buildSkiplist})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Stop()
		stop := make(chan struct{})
		defer close(stop)
		if snapshots {
			go func() {
				for {
					select {
					case <-stop:
						return
					default:
						s.Snapshot()
					}
				}
			}()
		}
		const batch = 64
		reqs := make([]Request, batch)
		res := make([]Result, batch)
		for i := range reqs {
			reqs[i] = Request{Op: OpInsert, Key: core.Key(i), Value: 1}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.Do(reqs, res); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(batch * core.RecordSize)
	}
	b.Run("quiet", func(b *testing.B) { run(b, false) })
	b.Run("scraped-hard", func(b *testing.B) { run(b, true) })
}
