package serve

import "repro/internal/obs"

// Workload fingerprinting. With a WorkloadConfig in the server's Config,
// every shard owns an obs.WorkloadRecorder and records each operation it
// executes — kind and key for point ops, returned row count for scans —
// after the batch has run, in a second pass over the message's indices.
// The recorder windows the stream by op count, latches drift events, and
// publishes fingerprints through ShardReport.Workload over the same
// happens-before edges as every other shard ledger.
//
// Costs and blind spots, stated plainly:
//
//   - With Workload nil nothing changes: the only hot-path cost is one nil
//     check per message, and the batch loop itself is untouched — the
//     recording pass is a separate loop, so the unfingerprinted path is
//     allocation-identical to a build without this file (pinned by the
//     BenchmarkDo / BenchmarkDoFingerprinted pair in workload_test.go).
//   - MVCC bypass reads (Config.Snapshots) execute on client goroutines and
//     never pass through a shard mailbox, so they are NOT fingerprinted:
//     under snapshot serving the fingerprint describes mailbox traffic —
//     writes, scans, and whatever reads fall back to the mailbox. The
//     bypass ledger (ShardReport.Ops includes bypassed reads) still counts
//     them; only the mix/skew plane is blind there.
type WorkloadConfig struct {
	// WindowOps is the per-shard fingerprint window in operations
	// (default 4096). Op-count windows, not wall time, keep deterministic
	// streams byte-reproducible.
	WindowOps int
	// Keep bounds the retained fingerprint history and drift-event ring per
	// shard (default 16).
	Keep int
	// Recorder, when set, supplies shard i's WorkloadRecorder, created or
	// fetched on the shard's own goroutine immediately before Config.Build —
	// the same contract as TraceConfig.Recorder, so a caller can keep a
	// handle for sampling between snapshots. Nil (or a nil return) means the
	// shard builds its own private recorder.
	Recorder func(shard int) *obs.WorkloadRecorder
}

// recordOps mirrors an executed kindOps message into the shard's workload
// recorder. Runs on the shard goroutine, after the batch executed.
func (sh *shard) recordOps(msg message) {
	for _, i := range msg.idxs {
		req := &msg.reqs[i]
		// Op and obs.WorkloadOp agree by construction on the four point
		// kinds (WGet..WDelete mirror OpGet..OpDelete).
		sh.wrec.RecordOp(obs.WorkloadOp(req.Op), uint64(req.Key))
	}
}

// AggregateWorkload merges the per-shard workload snapshots of a report set
// into one server-wide snapshot (nil when no shard carried one). The inputs
// are not mutated. Shard hot sets are disjoint (a key routes to one shard),
// so the merged heavy-hitter list and working-set union are exact in the
// sketch sense; window alignment is per-shard op count, not wall time.
func AggregateWorkload(reports []ShardReport) *obs.WorkloadSnapshot {
	var agg *obs.WorkloadSnapshot
	for i := range reports {
		w := reports[i].Workload
		if w == nil {
			continue
		}
		if agg == nil {
			agg = w.Clone()
		} else {
			agg.Merge(w)
		}
	}
	return agg
}
