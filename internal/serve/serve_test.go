package serve

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"sync"
	"testing"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/methods"
)

// buildSkiplist is the cheapest catalog structure for correctness tests.
func buildSkiplist(int) *core.Instrumented { return methods.NewSkiplist() }

func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without Build succeeded")
	}
	if _, err := New(Config{Shards: -1, Build: buildSkiplist}); err == nil {
		t.Fatal("New with negative shards succeeded")
	}
}

// TestSingleOpsAgainstModel drives one server with every op kind and checks
// outcomes against a map model.
func TestSingleOpsAgainstModel(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s := mustNew(t, Config{Shards: shards, Build: buildSkiplist})
			model := map[core.Key]core.Value{}
			rng := rand.New(rand.NewPCG(7, uint64(shards)))
			for i := 0; i < 4000; i++ {
				k := core.Key(rng.Uint64N(512))
				v := core.Value(rng.Uint64())
				switch rng.UintN(4) {
				case 0:
					got, ok := s.Get(k)
					want, wantOK := model[k]
					if ok != wantOK || (ok && got != want) {
						t.Fatalf("Get(%d) = (%d,%v), want (%d,%v)", k, got, ok, want, wantOK)
					}
				case 1:
					err := s.Insert(k, v)
					if _, exists := model[k]; exists {
						if err == nil {
							t.Fatalf("Insert(%d) of existing key succeeded", k)
						}
					} else {
						if err != nil {
							t.Fatalf("Insert(%d): %v", k, err)
						}
						model[k] = v
					}
				case 2:
					ok := s.Update(k, v)
					_, exists := model[k]
					if ok != exists {
						t.Fatalf("Update(%d) = %v, want %v", k, ok, exists)
					}
					if exists {
						model[k] = v
					}
				case 3:
					ok := s.Delete(k)
					_, exists := model[k]
					if ok != exists {
						t.Fatalf("Delete(%d) = %v, want %v", k, ok, exists)
					}
					delete(model, k)
				}
			}
			reports, err := s.Stop()
			if err != nil {
				t.Fatalf("Stop: %v", err)
			}
			if _, _, n := Aggregate(reports); n != len(model) {
				t.Fatalf("aggregate Len = %d, model has %d", n, len(model))
			}
		})
	}
}

// TestWALGroupCommit drives write-ahead-logged shards through the server:
// the shard must commit once per write-carrying mailbox message (not per
// op), every acknowledged write must be durably committed by Stop, and the
// shard reports must carry the log ledger.
func TestWALGroupCommit(t *testing.T) {
	// CommitBatch far above the workload: every commit observed below was
	// issued by the serving layer's batch-end hook, not by the log's own
	// auto-commit trigger.
	opt := methods.Options{PageSize: 512, PoolPages: 8, WAL: true, CommitBatch: 1 << 20}
	s := mustNew(t, Config{Shards: 2, Build: func(int) *core.Instrumented {
		return methods.NewWALBTree(opt, btree.Config{})
	}})
	const n = 500
	reqs := make([]Request, 0, n)
	for k := 0; k < n; k++ {
		reqs = append(reqs, Request{Op: OpInsert, Key: core.Key(k), Value: core.Value(k * 3)})
	}
	res := make([]Result, len(reqs))
	if err := s.Do(reqs, res); err != nil {
		t.Fatalf("Do: %v", err)
	}
	for i, r := range res {
		if !r.OK {
			t.Fatalf("insert %d not acknowledged", i)
		}
	}
	// A pure-read batch re-checks the data and must not add commits.
	for i := range reqs {
		reqs[i].Op = OpGet
	}
	if err := s.Do(reqs, res); err != nil {
		t.Fatalf("Do(get): %v", err)
	}
	for i, r := range res {
		if !r.OK || r.Value != core.Value(i*3) {
			t.Fatalf("Get(%d) = (%d,%v) after WAL insert", i, r.Value, r.OK)
		}
	}
	reports, err := s.Stop()
	if err != nil {
		t.Fatalf("Stop: %v", err)
	}
	var committed, commits uint64
	for _, r := range reports {
		if r.WAL == nil {
			t.Fatalf("shard %d report has no WAL ledger", r.Shard)
		}
		committed += r.WAL.Committed
		commits += r.WAL.Commits
	}
	if committed != n {
		t.Fatalf("committed %d records, %d were acknowledged", committed, n)
	}
	// n/2 writes per shard and MaxBatch 256 means at most 2 messages per
	// shard — the commits must be per-message, orders of magnitude fewer
	// than the records they made durable.
	if commits == 0 || commits > 4 {
		t.Fatalf("%d group commits for %d records; want 1-2 per shard", commits, n)
	}
}

// TestDoBatchOrdering asserts per-call order: ops on the same key inside one
// Do batch (and across sequential Do calls) apply in submission order.
func TestDoBatchOrdering(t *testing.T) {
	s := mustNew(t, Config{Shards: 4, MaxBatch: 3, Build: buildSkiplist})
	const k = core.Key(42)
	reqs := []Request{
		{Op: OpInsert, Key: k, Value: 1},
		{Op: OpUpdate, Key: k, Value: 2},
		{Op: OpGet, Key: k},
		{Op: OpDelete, Key: k},
		{Op: OpGet, Key: k},
		{Op: OpInsert, Key: k, Value: 3},
	}
	res := make([]Result, len(reqs))
	if err := s.Do(reqs, res); err != nil {
		t.Fatalf("Do: %v", err)
	}
	want := []Result{
		{OK: true},           // insert
		{OK: true},           // update existing
		{Value: 2, OK: true}, // get sees the update
		{OK: true},           // delete existing
		{OK: false},          // get after delete misses
		{OK: true},           // reinsert
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatalf("Do results = %+v, want %+v", res, want)
	}
	if _, err := s.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
}

// TestConcurrentClientsConflictFree runs many clients over disjoint key
// subspaces; every client's outcomes must match its private model exactly,
// regardless of shard count, batch splitting, or scheduling. This is the
// test the race detector leans on.
func TestConcurrentClientsConflictFree(t *testing.T) {
	const clients = 6
	const opsPerClient = 3000
	for _, shards := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s := mustNew(t, Config{Shards: shards, MaxBatch: 64, Build: buildSkiplist})
			var wg sync.WaitGroup
			errs := make([]error, clients)
			lens := make([]int, clients)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					errs[c], lens[c] = runClient(s, c, opsPerClient)
				}(c)
			}
			wg.Wait()
			total := 0
			for c, err := range errs {
				if err != nil {
					t.Fatalf("client %d: %v", c, err)
				}
				total += lens[c]
			}
			reports, err := s.Stop()
			if err != nil {
				t.Fatalf("Stop: %v", err)
			}
			m, _, n := Aggregate(reports)
			if n != total {
				t.Fatalf("aggregate Len = %d, clients hold %d", n, total)
			}
			var served uint64
			for _, r := range reports {
				served += r.Ops
			}
			if served != clients*opsPerClient {
				t.Fatalf("shards served %d ops, want %d", served, clients*opsPerClient)
			}
			// Logical accounting is exact: every op charged once, 16 bytes.
			wantLogical := uint64(clients*opsPerClient) * core.RecordSize
			if got := m.LogicalRead + m.LogicalWritten; got != wantLogical {
				t.Fatalf("merged logical bytes = %d, want %d", got, wantLogical)
			}
		})
	}
}

// runClient replays a deterministic conflict-free stream in batches,
// checking every outcome against a private model; returns the model's final
// size.
func runClient(s *Server, id, ops int) (error, int) {
	rng := rand.New(rand.NewPCG(99, uint64(id)))
	model := map[core.Key]core.Value{}
	ns := core.Key(id+1) << 48
	const batch = 37 // deliberately not a divisor or power of two
	reqs := make([]Request, 0, batch)
	want := make([]Result, 0, batch)
	flush := func() error {
		res := make([]Result, len(reqs))
		if err := s.Do(reqs, res); err != nil {
			return err
		}
		for i := range res {
			if res[i] != want[i] {
				return fmt.Errorf("op %+v: got %+v, want %+v", reqs[i], res[i], want[i])
			}
		}
		reqs, want = reqs[:0], want[:0]
		return nil
	}
	for i := 0; i < ops; i++ {
		k := ns | core.Key(rng.Uint64N(256))
		v := core.Value(rng.Uint64())
		switch rng.UintN(4) {
		case 0:
			wv, ok := model[k]
			reqs = append(reqs, Request{Op: OpGet, Key: k})
			want = append(want, Result{Value: wv, OK: ok})
		case 1:
			_, exists := model[k]
			reqs = append(reqs, Request{Op: OpInsert, Key: k, Value: v})
			want = append(want, Result{OK: !exists})
			if !exists {
				model[k] = v
			}
		case 2:
			_, exists := model[k]
			reqs = append(reqs, Request{Op: OpUpdate, Key: k, Value: v})
			want = append(want, Result{OK: exists})
			if exists {
				model[k] = v
			}
		case 3:
			_, exists := model[k]
			reqs = append(reqs, Request{Op: OpDelete, Key: k})
			want = append(want, Result{OK: exists})
			delete(model, k)
		}
		if len(reqs) == batch {
			if err := flush(); err != nil {
				return err, 0
			}
		}
	}
	if err := flush(); err != nil {
		return err, 0
	}
	return nil, len(model)
}

// TestPreloadAndRangeScan bulk-loads a sorted dataset and checks broadcast
// scans return globally sorted, complete results at several shard counts.
func TestPreloadAndRangeScan(t *testing.T) {
	recs := make([]core.Record, 500)
	for i := range recs {
		recs[i] = core.Record{Key: core.Key(i * 3), Value: core.Value(i)}
	}
	for _, shards := range []int{1, 5} {
		s := mustNew(t, Config{Shards: shards, Build: buildSkiplist})
		if err := s.Preload(recs); err != nil {
			t.Fatalf("shards=%d Preload: %v", shards, err)
		}
		var got []core.Record
		n := s.RangeScan(30, 300, func(k core.Key, v core.Value) bool {
			got = append(got, core.Record{Key: k, Value: v})
			return true
		})
		if n != len(got) {
			t.Fatalf("shards=%d RangeScan count %d != emitted %d", shards, n, len(got))
		}
		var want []core.Record
		for _, r := range recs {
			if r.Key >= 30 && r.Key <= 300 {
				want = append(want, r)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d RangeScan = %v, want %v", shards, got, want)
		}
		// Early-terminating emit stops the count.
		if n := s.RangeScan(0, ^core.Key(0), func(core.Key, core.Value) bool { return false }); n != 0 {
			t.Fatalf("shards=%d early-stop scan emitted %d", shards, n)
		}
		if _, err := s.Stop(); err != nil {
			t.Fatalf("shards=%d Stop: %v", shards, err)
		}
	}
}

// TestStorageBackedShards runs the full stack (btree over device + pool) with
// concurrent clients and a Flush barrier; under -race and -tags racecheck
// this is the proof that each shard's storage stack stays single-owner.
func TestStorageBackedShards(t *testing.T) {
	s := mustNew(t, Config{Shards: 4, Build: func(i int) *core.Instrumented {
		return methods.NewBTree(methods.Options{PoolPages: 8}, btree.Config{})
	}})
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			errs[c], _ = runClient(s, c, 1500)
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	reports, err := s.Stop()
	if err != nil {
		t.Fatalf("Stop: %v", err)
	}
	m, _, _ := Aggregate(reports)
	if m.PhysicalWritten() == 0 {
		t.Fatal("btree shards flushed no physical bytes")
	}
}

// TestMeterDeterminism: identical sequential runs produce identical merged
// meters and identical per-shard reports (modulo nothing — byte for byte).
func TestMeterDeterminism(t *testing.T) {
	run := func() []ShardReport {
		s := mustNew(t, Config{Shards: 4, Build: buildSkiplist})
		if err, _ := runClient(s, 0, 2000); err != nil {
			t.Fatalf("client: %v", err)
		}
		reports, err := s.Stop()
		if err != nil {
			t.Fatalf("Stop: %v", err)
		}
		return reports
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sequential runs diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestStoppedServer: every entry point reports ErrStopped after Stop, and a
// second Stop errors instead of re-closing mailboxes.
func TestStoppedServer(t *testing.T) {
	s := mustNew(t, Config{Build: buildSkiplist})
	if _, err := s.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if err := s.Do([]Request{{Op: OpGet}}, make([]Result, 1)); err != ErrStopped {
		t.Fatalf("Do after Stop = %v, want ErrStopped", err)
	}
	if err := s.Flush(); err != ErrStopped {
		t.Fatalf("Flush after Stop = %v, want ErrStopped", err)
	}
	if err := s.Preload(nil); err != ErrStopped {
		t.Fatalf("Preload after Stop = %v, want ErrStopped", err)
	}
	if err := s.Insert(1, 1); err != ErrStopped {
		t.Fatalf("Insert after Stop = %v, want ErrStopped", err)
	}
	if _, err := s.Stop(); err != ErrStopped {
		t.Fatalf("second Stop = %v, want ErrStopped", err)
	}
}

// TestShardPanicDoesNotDeadlock: a shard whose Build panics completes every
// request routed to it (with zero results) and surfaces the panic from Stop.
func TestShardPanicDoesNotDeadlock(t *testing.T) {
	s := mustNew(t, Config{Shards: 2, Build: func(i int) *core.Instrumented {
		if i == 1 {
			panic("shard 1 refuses to build")
		}
		return methods.NewSkiplist()
	}})
	// Enough keys that both shards are hit.
	reqs := make([]Request, 64)
	for i := range reqs {
		reqs[i] = Request{Op: OpInsert, Key: core.Key(i), Value: 1}
	}
	res := make([]Result, len(reqs))
	if err := s.Do(reqs, res); err != nil {
		t.Fatalf("Do: %v", err)
	}
	_, err := s.Stop()
	if err == nil {
		t.Fatal("Stop reported no error for a panicked shard")
	}
}

func TestDoLengthMismatch(t *testing.T) {
	s := mustNew(t, Config{Build: buildSkiplist})
	defer s.Stop()
	if err := s.Do(make([]Request, 2), make([]Result, 1)); err == nil {
		t.Fatal("Do with mismatched slices succeeded")
	}
	if err := s.Do(nil, nil); err != nil {
		t.Fatalf("empty Do: %v", err)
	}
}

// TestShardOfDeterministicAndBalanced: routing depends only on key and shard
// count, and splitmix-scattered keys spread within 25% of even.
func TestShardOfDeterministicAndBalanced(t *testing.T) {
	s := mustNew(t, Config{Shards: 8, Build: buildSkiplist})
	defer s.Stop()
	counts := make([]int, 8)
	rng := rand.New(rand.NewPCG(3, 1))
	const n = 1 << 16
	for i := 0; i < n; i++ {
		k := core.Key(rng.Uint64() >> 24)
		h := s.shardOf(k)
		if h != s.shardOf(k) {
			t.Fatal("shardOf is not deterministic")
		}
		counts[h]++
	}
	for i, c := range counts {
		if c < n/8*3/4 || c > n/8*5/4 {
			t.Fatalf("shard %d holds %d of %d keys (counts %v)", i, c, n, counts)
		}
	}
	// Sequential keys must spread too (the mixer, not the raw key, routes).
	seq := make([]int, 8)
	for i := 0; i < n; i++ {
		seq[s.shardOf(core.Key(i))]++
	}
	for i, c := range seq {
		if c < n/8*3/4 || c > n/8*5/4 {
			t.Fatalf("sequential keys: shard %d holds %d of %d (counts %v)", i, c, n, seq)
		}
	}
}

// Do must fully overwrite every result slot: clients reuse res buffers
// across batches, and a stale Value surviving a write op's OK-only update
// would corrupt outcome verification downstream.
func TestDoOverwritesReusedResults(t *testing.T) {
	s := mustNew(t, Config{Shards: 1, Build: buildSkiplist})
	defer s.Stop()
	if err := s.Insert(7, 70); err != nil {
		t.Fatal(err)
	}
	res := []Result{{Value: 0xdead, OK: true}, {Value: 0xbeef, OK: true}}
	reqs := []Request{{Op: OpUpdate, Key: 7, Value: 71}, {Op: OpGet, Key: 404}}
	if err := s.Do(reqs, res); err != nil {
		t.Fatal(err)
	}
	if res[0] != (Result{OK: true}) {
		t.Errorf("update result = %+v, want {Value:0 OK:true}", res[0])
	}
	if res[1] != (Result{}) {
		t.Errorf("missing-get result = %+v, want zero", res[1])
	}
}
