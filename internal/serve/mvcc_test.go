package serve

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/lsm"
	"repro/internal/methods"
)

func buildMVCCBTree(int) *core.Instrumented {
	return methods.NewBTree(methods.Options{PageSize: 512, PoolPages: 64}, btree.Config{Versions: 3})
}

func buildMVCCLSM(int) *core.Instrumented {
	return methods.NewLSM(methods.Options{PageSize: 512, PoolPages: 64},
		lsm.Config{MemtableRecords: 256, BloomBitsPerKey: 10, Versions: 3})
}

// TestSnapshotsUnsupportedFallsBack: a structure without SnapshotReader
// keeps working with Config.Snapshots on — reads just flow through the
// mailbox.
func TestSnapshotsUnsupportedFallsBack(t *testing.T) {
	s := mustNew(t, Config{Shards: 2, Snapshots: true, Build: buildSkiplist})
	if err := s.Insert(1, 10); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if v, ok := s.Get(1); !ok || v != 10 {
		t.Fatalf("Get(1) = %d,%v; want 10,true", v, ok)
	}
	if active, ops := s.ReaderStats(); active != 0 || ops != 0 {
		t.Fatalf("ReaderStats = %d,%d on an unsupported structure; want 0,0", active, ops)
	}
	if _, err := s.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
}

// TestSnapshotReadYourWrites: in strict mode (StalenessOps=1, the default),
// a client that completed a write call observes it in subsequent reads even
// though those reads bypass the mailbox.
func TestSnapshotReadYourWrites(t *testing.T) {
	for name, build := range map[string]func(int) *core.Instrumented{
		"btree": buildMVCCBTree, "lsm": buildMVCCLSM,
	} {
		t.Run(name, func(t *testing.T) {
			s := mustNew(t, Config{Shards: 4, Snapshots: true, Build: build})
			for k := uint64(0); k < 500; k++ {
				if err := s.Insert(k, k*2); err != nil {
					t.Fatalf("Insert(%d): %v", k, err)
				}
				if v, ok := s.Get(k); !ok || v != k*2 {
					t.Fatalf("Get(%d) after Insert = %d,%v; want %d,true", k, v, ok, k*2)
				}
			}
			_, ops := s.ReaderStats()
			if ops == 0 {
				t.Fatal("no reads were served from snapshots")
			}
			if _, err := s.Stop(); err != nil {
				t.Fatalf("Stop: %v", err)
			}
		})
	}
}

// TestSnapshotBatchOutcomes runs a mixed workload against a model with
// pure-read batches interleaved, exercising the bypass and the unchunked
// read path (MaxBatch smaller than the batches).
func TestSnapshotBatchOutcomes(t *testing.T) {
	s := mustNew(t, Config{Shards: 4, MaxBatch: 16, Snapshots: true, Build: buildMVCCBTree})
	model := map[core.Key]core.Value{}
	rng := rand.New(rand.NewPCG(3, 9))
	for round := 0; round < 40; round++ {
		// A write batch...
		reqs := make([]Request, 64)
		res := make([]Result, 64)
		for i := range reqs {
			k := core.Key(rng.Uint64N(800))
			v := core.Value(rng.Uint64())
			if _, exists := model[k]; exists {
				reqs[i] = Request{Op: OpUpdate, Key: k, Value: v}
			} else {
				reqs[i] = Request{Op: OpInsert, Key: k, Value: v}
			}
			model[k] = v
		}
		if err := s.Do(reqs, res); err != nil {
			t.Fatalf("Do(write): %v", err)
		}
		// ...then a pure-read batch over the whole keyspace.
		for i := range reqs {
			reqs[i] = Request{Op: OpGet, Key: core.Key(rng.Uint64N(800))}
		}
		if err := s.Do(reqs, res); err != nil {
			t.Fatalf("Do(read): %v", err)
		}
		for i := range reqs {
			want, wantOK := model[reqs[i].Key]
			if res[i].OK != wantOK || (wantOK && res[i].Value != want) {
				t.Fatalf("round %d: Get(%d) = (%d,%v), want (%d,%v)",
					round, reqs[i].Key, res[i].Value, res[i].OK, want, wantOK)
			}
		}
	}
	// RangeScan from snapshots must agree with the model too.
	got := map[core.Key]core.Value{}
	s.RangeScan(0, ^core.Key(0), func(k core.Key, v core.Value) bool {
		got[k] = v
		return true
	})
	if len(got) != len(model) {
		t.Fatalf("RangeScan saw %d records, model has %d", len(got), len(model))
	}
	for k, v := range model {
		if got[k] != v {
			t.Fatalf("RangeScan[%d] = %d, want %d", k, got[k], v)
		}
	}
	reports, err := s.Stop()
	if err != nil {
		t.Fatalf("Stop: %v", err)
	}
	var snaps int
	for _, r := range reports {
		snaps += r.SnapVersions
	}
	if snaps == 0 {
		t.Fatal("no shard reported retained snapshot versions")
	}
}

// TestSnapshotMeterExact: the aggregated Stop ledger must contain every
// logical read exactly once, whether it was served by the shard goroutine or
// by a bypass reader. Logical accounting is deterministic (RecordSize per
// point read), so the total is checked against the op count.
func TestSnapshotMeterExact(t *testing.T) {
	const n = 600
	s := mustNew(t, Config{Shards: 4, Snapshots: true, Build: buildMVCCBTree})
	for k := uint64(0); k < n; k++ {
		if err := s.Insert(k, k); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	// Pure-read batches: all served off snapshots.
	reqs := make([]Request, n)
	res := make([]Result, n)
	for i := range reqs {
		reqs[i] = Request{Op: OpGet, Key: core.Key(i)}
	}
	const rounds = 5
	for r := 0; r < rounds; r++ {
		if err := s.Do(reqs, res); err != nil {
			t.Fatalf("Do: %v", err)
		}
	}
	reports, err := s.Stop()
	if err != nil {
		t.Fatalf("Stop: %v", err)
	}
	m, _, _ := Aggregate(reports)
	wantReads := uint64(n*rounds) * core.RecordSize
	if m.LogicalRead != wantReads {
		t.Fatalf("aggregate LogicalRead = %d, want %d (reader traffic lost or duplicated)", m.LogicalRead, wantReads)
	}
	var ops uint64
	for _, r := range reports {
		ops += r.Ops
	}
	if ops != uint64(n+n*rounds) {
		t.Fatalf("aggregate Ops = %d, want %d", ops, n+n*rounds)
	}
}

// TestSnapshotConcurrentReadersStress is the serve-level single-writer/
// many-reader stress: per the issue, one writer client and eight reader
// clients per shard, readers asserting no torn reads (values always match
// the key's generation discipline) and monotone snapshot epochs. Run with
// -race.
func TestSnapshotConcurrentReadersStress(t *testing.T) {
	for name, build := range map[string]func(int) *core.Instrumented{
		"btree": buildMVCCBTree, "lsm": buildMVCCLSM,
	} {
		t.Run(name, func(t *testing.T) {
			const (
				shards  = 2
				readers = 8 * shards
				n       = 2000
			)
			s := mustNew(t, Config{Shards: shards, Snapshots: true, Build: build})
			// Keys hold v = k ^ (gen<<32); readers accept any generation but
			// never a torn mix.
			for k := uint64(0); k < n; k++ {
				if err := s.Insert(k, k); err != nil {
					t.Fatalf("Insert: %v", err)
				}
			}

			var stop atomic.Bool
			var torn atomic.Int64
			var wg sync.WaitGroup
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					rng := rand.New(rand.NewPCG(seed, 17))
					reqs := make([]Request, 32)
					res := make([]Result, 32)
					for !stop.Load() {
						for i := range reqs {
							reqs[i] = Request{Op: OpGet, Key: core.Key(rng.Uint64N(n))}
						}
						if err := s.Do(reqs, res); err != nil {
							return
						}
						for i := range res {
							if !res[i].OK {
								torn.Add(1) // keys are never deleted
								return
							}
							k := uint64(reqs[i].Key)
							if res[i].Value != k && res[i].Value&0xffffffff != k {
								torn.Add(1)
								return
							}
						}
					}
				}(uint64(r + 1))
			}

			// One writer client: update generations batch by batch.
			reqs := make([]Request, 100)
			res := make([]Result, 100)
			for gen := uint64(1); gen <= 30; gen++ {
				for b := 0; b < n/len(reqs); b++ {
					for i := range reqs {
						k := uint64(b*len(reqs) + i)
						reqs[i] = Request{Op: OpUpdate, Key: core.Key(k), Value: core.Value(k | gen<<32)}
					}
					if err := s.Do(reqs, res); err != nil {
						t.Fatalf("writer Do: %v", err)
					}
				}
			}
			stop.Store(true)
			wg.Wait()
			if torn.Load() != 0 {
				t.Fatalf("%d torn/stale reads", torn.Load())
			}
			if _, err := s.Stop(); err != nil {
				t.Fatalf("Stop: %v", err)
			}
		})
	}
}

// TestSnapshotEpochsMonotonePerShard acquires snapshots repeatedly while
// writing and checks each shard's published epoch never goes backwards.
func TestSnapshotEpochsMonotonePerShard(t *testing.T) {
	const shards = 2
	s := mustNew(t, Config{Shards: shards, Snapshots: true, Build: buildMVCCBTree})
	last := make([]uint64, shards)
	for k := uint64(0); k < 400; k++ {
		if err := s.Insert(k, k); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		for i, sh := range s.shards {
			ss := sh.acquireSnap()
			if ss == nil {
				continue
			}
			if ss.epoch < last[i] {
				t.Fatalf("shard %d epoch went backwards: %d -> %d", i, last[i], ss.epoch)
			}
			last[i] = ss.epoch
			ss.refs.Add(-1)
		}
	}
	if _, err := s.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	for i, e := range last {
		if e == 0 {
			t.Fatalf("shard %d never published", i)
		}
	}
}

// TestSnapshotStaleness: with a relaxed staleness budget the server
// publishes less often; reads still see some published prefix and writes
// are never lost (verified after a Flush barrier, which republishes).
func TestSnapshotStaleness(t *testing.T) {
	s := mustNew(t, Config{Shards: 2, Snapshots: true, StalenessOps: 64, Build: buildMVCCBTree})
	for k := uint64(0); k < 300; k++ {
		if err := s.Insert(k, k+7); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	for k := uint64(0); k < 300; k++ {
		if v, ok := s.Get(k); !ok || v != k+7 {
			t.Fatalf("Get(%d) after Flush = %d,%v; want %d,true", k, v, ok, k+7)
		}
	}
	if _, err := s.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
}

func ExampleServer_snapshots() {
	s, _ := New(Config{Shards: 2, Snapshots: true, Build: func(int) *core.Instrumented {
		return methods.NewBTree(methods.Options{}, btree.Config{Versions: 2})
	}})
	for k := uint64(0); k < 100; k++ {
		_ = s.Insert(k, k*k)
	}
	v, ok := s.Get(36) // pure read: served from a snapshot, no mailbox hop
	fmt.Println(v, ok)
	_, ops := s.ReaderStats()
	fmt.Println(ops > 0)
	_, _ = s.Stop()
	// Output:
	// 1296 true
	// true
}
