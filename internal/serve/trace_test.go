package serve

import (
	"math/rand/v2"
	"testing"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/methods"
	"repro/internal/obs"
)

// tracedWorkload drives a mixed batch workload through s and returns the
// number of operations submitted.
func tracedWorkload(t *testing.T, s *Server, ops int) int {
	t.Helper()
	rng := rand.New(rand.NewPCG(11, 23))
	const batch = 64
	reqs := make([]Request, batch)
	res := make([]Result, batch)
	submitted := 0
	for submitted < ops {
		for i := range reqs {
			k := core.Key(rng.Uint64N(2048))
			switch rng.UintN(4) {
			case 0:
				reqs[i] = Request{Op: OpGet, Key: k}
			case 1:
				reqs[i] = Request{Op: OpInsert, Key: k, Value: rng.Uint64()}
			case 2:
				reqs[i] = Request{Op: OpUpdate, Key: k, Value: rng.Uint64()}
			case 3:
				reqs[i] = Request{Op: OpDelete, Key: k}
			}
		}
		if err := s.Do(reqs, res); err != nil {
			t.Fatalf("Do: %v", err)
		}
		submitted += batch
	}
	return submitted
}

// TestTraceDecomposition is the property test of the lifecycle invariant:
// for every retained trace, Total == Queue + Service exactly — all three
// durations derive from the same monotonic readings, so the equality is ==,
// not within-tolerance. It also checks the phase histograms account for
// every executed operation.
func TestTraceDecomposition(t *testing.T) {
	s := mustNew(t, Config{
		Shards: 4,
		Build:  buildSkiplist,
		Trace:  &TraceConfig{SlowK: 32},
	})
	ops := tracedWorkload(t, s, 4000)

	traces := s.SlowTraces()
	if len(traces) != 32 {
		t.Fatalf("flight recorder holds %d traces, want 32", len(traces))
	}
	for _, tr := range traces {
		if tr.Total != tr.Queue+tr.Service {
			t.Fatalf("decomposition broken: total %v != queue %v + service %v",
				tr.Total, tr.Queue, tr.Service)
		}
		if tr.Queue < 0 || tr.Service < 0 {
			t.Fatalf("negative phase: %+v", tr)
		}
		if tr.Op == "" || tr.Batch <= 0 || tr.Shard < 0 || tr.Shard >= 4 {
			t.Fatalf("malformed trace: %+v", tr)
		}
	}
	for i := 1; i < len(traces); i++ {
		if traces[i].Total > traces[i-1].Total {
			t.Fatal("SlowTraces not sorted slowest-first")
		}
	}

	reports, err := s.Stop()
	if err != nil {
		t.Fatalf("Stop: %v", err)
	}
	agg := AggregatePhases(reports)
	if agg == nil {
		t.Fatal("traced run produced no phase snapshots")
	}
	if got := agg.Queue.Count(); got != uint64(ops) {
		t.Fatalf("queue histogram counts %d ops, want %d", got, ops)
	}
	if got := agg.Service.Count(); got != uint64(ops) {
		t.Fatalf("service histogram counts %d ops, want %d", got, ops)
	}
	// Every mailbox message recorded its batch size, and the sizes sum back
	// to the op count.
	if got := uint64(agg.Batch.Sum()); got != uint64(ops) {
		t.Fatalf("batch histogram sums %d ops, want %d", got, ops)
	}
	if len(agg.Exemplars) == 0 {
		t.Fatal("no exemplars retained")
	}
}

// TestTraceDisabledReportsNothing pins the disabled contract: no Phases on
// any report (the determinism tests DeepEqual ShardReports), no slow traces,
// and MailboxDepths still works as a plain gauge.
func TestTraceDisabledReportsNothing(t *testing.T) {
	s := mustNew(t, Config{Shards: 2, Build: buildSkiplist})
	tracedWorkload(t, s, 500)
	if got := s.SlowTraces(); got != nil {
		t.Fatalf("untraced server returned traces: %v", got)
	}
	if d := s.MailboxDepths(); len(d) != 2 {
		t.Fatalf("MailboxDepths len %d, want 2", len(d))
	}
	snaps, err := s.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	for _, r := range snaps {
		if r.Phases != nil {
			t.Fatalf("untraced snapshot carries phases: shard %d", r.Shard)
		}
	}
	reports, err := s.Stop()
	if err != nil {
		t.Fatalf("Stop: %v", err)
	}
	for _, r := range reports {
		if r.Phases != nil {
			t.Fatalf("untraced report carries phases: shard %d", r.Shard)
		}
	}
	if AggregatePhases(reports) != nil {
		t.Fatal("AggregatePhases of untraced reports is non-nil")
	}
}

// TestTraceRecorderWiring checks the Recorder hook contract: it runs on the
// shard goroutine before Build, so a builder can thread the recorder into
// its storage stack as a hook and traces then carry per-op page counts.
func TestTraceRecorderWiring(t *testing.T) {
	recs := make([]*obs.PhaseRecorder, 2)
	s := mustNew(t, Config{
		Shards:   2,
		MaxBatch: 8,
		Trace: &TraceConfig{
			SlowK: 16,
			Recorder: func(shard int) *obs.PhaseRecorder {
				recs[shard] = obs.NewPhaseRecorder()
				return recs[shard]
			},
		},
		Build: func(shard int) *core.Instrumented {
			// Recorder ran first on this same goroutine, so the slot is set.
			if recs[shard] == nil {
				panic("Build ran before Recorder")
			}
			return methods.NewBTree(methods.Options{PoolPages: 4, Hook: recs[shard]}, btree.Config{})
		},
	})
	// Preload through the untraced bulk path, then read far more pages than
	// the 4-page pools hold: every retained trace is a get whose misses were
	// charged through the hook, so the attribution is visible regardless of
	// which ops the flight recorder ranks slowest.
	recs2 := make([]core.Record, 4096)
	for i := range recs2 {
		recs2[i] = core.Record{Key: core.Key(i), Value: core.Value(i)}
	}
	if err := s.Preload(recs2); err != nil {
		t.Fatalf("Preload: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	reqs := make([]Request, 256)
	res := make([]Result, 256)
	for round := 0; round < 4; round++ {
		for i := range reqs {
			reqs[i] = Request{Op: OpGet, Key: core.Key((i*17 + round) % 4096)}
		}
		if err := s.Do(reqs, res); err != nil {
			t.Fatalf("Do: %v", err)
		}
	}
	pages, bytes := uint64(0), uint64(0)
	for _, tr := range s.SlowTraces() {
		if tr.Op != "get" {
			t.Fatalf("unexpected trace op %q", tr.Op)
		}
		pages += tr.Pages
		bytes += tr.ReadBytes + tr.WriteBytes
	}
	if pages == 0 {
		t.Fatal("hook-wired traces charged no pages")
	}
	if bytes == 0 {
		t.Fatal("traces carried no meter-derived bytes")
	}
	if _, err := s.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
}

// TestTraceDeadShardDrain: a shard that panics with tracing enabled still
// completes every queued message, answers snapshots with its error report
// and no partial phase records, and leaves the flight recorder serving the
// surviving shards' traces.
func TestTraceDeadShardDrain(t *testing.T) {
	s := mustNew(t, Config{
		Shards: 4,
		Build: func(i int) *core.Instrumented {
			if i == 1 {
				panic("shard 1 refuses to build")
			}
			return buildSkiplist(i)
		},
		Trace: &TraceConfig{SlowK: 16},
	})
	// Every batch completes even though shard 1 is dead.
	tracedWorkload(t, s, 2000)

	snaps, err := s.Snapshot()
	if err == nil {
		t.Fatal("Snapshot reported no error for a dead shard")
	}
	for _, r := range snaps {
		if r.Shard == 1 {
			if r.Err == nil {
				t.Fatal("dead shard snapshot carries no error")
			}
			if r.Phases != nil {
				t.Fatal("dead shard published partial phase records")
			}
		} else if r.Err != nil {
			t.Fatalf("live shard %d reports error: %v", r.Shard, r.Err)
		} else if r.Phases == nil {
			t.Fatalf("live shard %d lost its phases", r.Shard)
		}
	}
	// The flight recorder is not wedged: it holds traces, none from shard 1.
	traces := s.SlowTraces()
	if len(traces) == 0 {
		t.Fatal("flight recorder empty after load on live shards")
	}
	for _, tr := range traces {
		if tr.Shard == 1 {
			t.Fatalf("dead shard produced a trace: %+v", tr)
		}
	}
	if _, err := s.Stop(); err == nil {
		t.Fatal("Stop reported no error for a panicked shard")
	}
}

// benchDo measures the Do round-trip for one configuration.
func benchDo(b *testing.B, trace *TraceConfig) {
	s, err := New(Config{Shards: 4, Build: buildSkiplist, Trace: trace})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Stop()
	const batch = 256
	reqs := make([]Request, batch)
	res := make([]Result, batch)
	for i := range reqs {
		reqs[i] = Request{Op: OpInsert, Key: core.Key(i), Value: 1}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range reqs {
			reqs[j].Op = OpGet
		}
		if err := s.Do(reqs, res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDo is the quiet-path baseline; BenchmarkDoTraced is the same
// workload with tracing on. Comparing allocs/op pins the zero-allocation
// claim for the disabled path and bounds the traced path's overhead.
func BenchmarkDo(b *testing.B)       { benchDo(b, nil) }
func BenchmarkDoTraced(b *testing.B) { benchDo(b, &TraceConfig{SlowK: 32}) }
