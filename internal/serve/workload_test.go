package serve

import (
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// driveMix pushes a deterministic mixed batch stream through s: inserts
// 0..n-1, then gets hammering a hot subset, then updates and deletes.
func driveMix(t *testing.T, s *Server, n int) {
	t.Helper()
	reqs := make([]Request, 0, n)
	for i := 0; i < n; i++ {
		reqs = append(reqs, Request{Op: OpInsert, Key: core.Key(i), Value: core.Value(i)})
	}
	res := make([]Result, len(reqs))
	if err := s.Do(reqs, res); err != nil {
		t.Fatal(err)
	}
	reqs = reqs[:0]
	for i := 0; i < n; i++ {
		reqs = append(reqs, Request{Op: OpGet, Key: core.Key(i % 8)}) // hot 8 keys
	}
	for i := 0; i < n/4; i++ {
		reqs = append(reqs, Request{Op: OpUpdate, Key: core.Key(i), Value: 7})
	}
	for i := 0; i < n/8; i++ {
		reqs = append(reqs, Request{Op: OpDelete, Key: core.Key(i)})
	}
	res = make([]Result, len(reqs))
	if err := s.Do(reqs, res); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadTap(t *testing.T) {
	s, err := New(Config{
		Shards: 4, Build: buildSkiplist,
		Workload: &WorkloadConfig{WindowOps: 64, Keep: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 512
	driveMix(t, s, n)
	if got := s.RangeScan(0, core.Key(n), func(core.Key, core.Value) bool { return true }); got == 0 {
		t.Fatal("scan returned nothing")
	}
	reports, err := s.Stop()
	if err != nil {
		t.Fatal(err)
	}
	agg := AggregateWorkload(reports)
	if agg == nil {
		t.Fatal("no workload snapshot in reports")
	}
	want := map[obs.WorkloadOp]uint64{
		obs.WGet: n, obs.WInsert: n, obs.WUpdate: n / 4, obs.WDelete: n / 8,
	}
	for op, w := range want {
		if agg.Cum[op] != w {
			t.Fatalf("%v: cum %d, want %d", op, agg.Cum[op], w)
		}
	}
	if agg.Cum[obs.WScan] != 4 {
		t.Fatalf("scan cum %d, want 4 (one per shard)", agg.Cum[obs.WScan])
	}
	if agg.CumScanRows == nil || agg.CumScanRows.Count() != 4 {
		t.Fatal("scan-length histogram not recorded")
	}
	// Every shard rotated its final partial window at shutdown, so the
	// merged last fingerprint exists and sees the hot get keys.
	if agg.Last == nil {
		t.Fatal("no merged last fingerprint")
	}
	if agg.Windows == 0 {
		t.Fatal("no windows completed")
	}
	// The fingerprint ledger must agree with the serving ledger.
	var ops uint64
	for _, r := range reports {
		ops += r.Ops
	}
	var cum uint64
	for _, c := range agg.Cum {
		cum += c
	}
	if scans := agg.Cum[obs.WScan]; cum-scans != ops {
		t.Fatalf("fingerprinted point ops %d != served ops %d", cum-scans, ops)
	}
}

func TestWorkloadLiveSnapshotAndDrift(t *testing.T) {
	s, err := New(Config{
		Shards: 1, Build: buildSkiplist,
		Workload: &WorkloadConfig{WindowOps: 128, Keep: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	driveMix(t, s, 256)
	reports, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	w := reports[0].Workload
	if w == nil || w.Windows == 0 {
		t.Fatalf("live snapshot carries no workload windows: %+v", w)
	}
	// driveMix's phases (pure insert → read-heavy) are a drift the recorder
	// must have latched by now.
	if w.DriftCount == 0 {
		t.Fatal("insert→read phase change latched no drift event")
	}
}

func TestWorkloadDisabledReportsNil(t *testing.T) {
	s, err := New(Config{Shards: 2, Build: buildSkiplist})
	if err != nil {
		t.Fatal(err)
	}
	driveMix(t, s, 64)
	reports, err := s.Stop()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.Workload != nil {
			t.Fatalf("shard %d carries a workload snapshot with fingerprinting off", r.Shard)
		}
	}
	if AggregateWorkload(reports) != nil {
		t.Fatal("aggregate of nil snapshots is not nil")
	}
}

func TestWorkloadRecorderSupplier(t *testing.T) {
	recs := make([]*obs.WorkloadRecorder, 2)
	s, err := New(Config{
		Shards: 2, Build: buildSkiplist,
		Workload: &WorkloadConfig{
			WindowOps: 32,
			Recorder: func(shard int) *obs.WorkloadRecorder {
				recs[shard] = obs.NewWorkloadRecorder(32, 4)
				return recs[shard]
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	driveMix(t, s, 128)
	reports, err := s.Stop()
	if err != nil {
		t.Fatal(err)
	}
	// The supplied recorders are the ones the shards used: their state (read
	// here after Stop's happens-before edge) matches the published reports.
	for i, r := range reports {
		if recs[i] == nil {
			t.Fatalf("supplier never ran for shard %d", i)
		}
		if got, want := recs[i].Snapshot().Cum, r.Workload.Cum; got != want {
			t.Fatalf("shard %d: supplied recorder cum %v, report %v", i, got, want)
		}
	}
}

// benchDoWorkload mirrors benchDo with fingerprinting toggled instead of
// tracing.
func benchDoWorkload(b *testing.B, wc *WorkloadConfig) {
	s, err := New(Config{Shards: 4, Build: buildSkiplist, Workload: wc})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Stop()
	const batch = 256
	reqs := make([]Request, batch)
	res := make([]Result, batch)
	for i := range reqs {
		reqs[i] = Request{Op: OpInsert, Key: core.Key(i), Value: 1}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range reqs {
			reqs[j].Op = OpGet
		}
		if err := s.Do(reqs, res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDoFingerprinted is BenchmarkDo's twin with fingerprinting on;
// comparing the pair's allocs/op pins the claim that the disabled path is
// allocation-identical and bounds the fingerprinted path's overhead.
func BenchmarkDoFingerprinted(b *testing.B) {
	benchDoWorkload(b, &WorkloadConfig{WindowOps: 4096})
}
