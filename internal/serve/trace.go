package serve

import (
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Request lifecycle tracing. With a TraceConfig in the server's Config,
// every Do call stamps its mailbox messages at enqueue and each shard
// decomposes every operation it executes into queue wait (enqueue to
// execution start: mailbox wait plus in-batch wait behind earlier ops of the
// same message) and service time (the op's own execution). All three numbers
// derive from the same monotonic clock readings, so
//
//	Total = Queue + Service
//
// holds exactly, not within tolerance — the serve tests assert it with ==.
//
// The decomposition flows to three sinks, all owned shard-side under the
// same single-owner contract as the structures themselves:
//
//   - a per-shard obs.PhaseRecorder (queue/service/batch histograms plus
//     per-bucket exemplars), published as ShardReport.Phases through the
//     usual snapshot edges;
//   - a server-wide obs.SlowLog flight recorder retaining the slowest-K
//     recent traces (Offer is one atomic load on the fast path);
//   - the storage hook, when the builder threads the recorder into the
//     shard's stack, which attributes pages/faults/retries to each op.
//
// With Trace nil nothing changes: no clock is read, nothing allocates, and
// the only cost on the hot path is one nil check per message — a property
// pinned by BenchmarkDo in trace_test.go.

// TraceConfig enables request lifecycle tracing. The zero value of every
// field selects a default.
type TraceConfig struct {
	// SlowK is the flight-recorder capacity: the number of slowest recent
	// traces retained (default 64).
	SlowK int
	// SlowTTL makes retained traces older than this evictable by any newer
	// trace, so a startup burst cannot freeze the recorder (default 0: pure
	// slowest-K, deterministic, what tests use).
	SlowTTL time.Duration
	// Recorder, when set, supplies shard i's PhaseRecorder. It runs on the
	// shard's own goroutine immediately before Config.Build, so a caller can
	// stash the recorder where its Build closure finds it and thread it into
	// the storage stack as a hook — same goroutine, no race. Nil (or a nil
	// return) means the shard builds its own private recorder.
	Recorder func(shard int) *obs.PhaseRecorder
}

func (tc *TraceConfig) slowK() int {
	if tc.SlowK <= 0 {
		return 64
	}
	return tc.SlowK
}

// applyOpsTraced is the traced twin of apply's kindOps branch: identical
// operation semantics plus N+1 clock readings per message (one before the
// batch, one after each op — each op's end is the next op's start).
func (sh *shard) applyOpsTraced(am *core.Instrumented, msg message) {
	rec := sh.rec
	rec.RecordBatch(len(msg.idxs))
	batch := len(msg.idxs)
	start := time.Now()
	for _, i := range msg.idxs {
		req := &msg.reqs[i]
		rec.BeginOpWork()
		pre := am.Meter().Snapshot()
		var out Result
		switch req.Op {
		case OpGet:
			out.Value, out.OK = am.Get(req.Key)
		case OpInsert:
			out.OK = am.Insert(req.Key, req.Value) == nil
		case OpUpdate:
			out.OK = am.Update(req.Key, req.Value)
		case OpDelete:
			out.OK = am.Delete(req.Key)
		}
		msg.res[i] = out
		end := time.Now()
		post := am.Meter().Snapshot()
		d := post.Diff(pre)
		pages, faults, retries := rec.OpWork()
		t := obs.SlowTrace{
			At: end, Shard: sh.id, Op: req.Op.String(), Key: uint64(req.Key),
			Batch:   batch,
			Queue:   start.Sub(msg.enqueuedAt),
			Service: end.Sub(start),
			Total:   end.Sub(msg.enqueuedAt),
			ReadBytes: d.PhysicalRead(), WriteBytes: d.PhysicalWritten(),
			Pages: pages, Faults: faults, Retries: retries,
		}
		rec.Observe(t)
		sh.slow.Offer(t)
		start = end
	}
	sh.ops += uint64(len(msg.idxs))
}

// SlowTraces returns the flight recorder's retained traces, slowest first.
// It is lock-free and safe to call at any time — concurrently with traffic,
// after Stop, and against a server whose shards have died. Without tracing
// it returns nil.
func (s *Server) SlowTraces() []obs.SlowTrace {
	if s.slow == nil {
		return nil
	}
	return s.slow.Snapshot()
}

// MailboxDepths reports each shard's current mailbox occupancy in messages —
// the instantaneous queue-depth gauge behind the queue-wait histogram. Safe
// from any goroutine at any time.
func (s *Server) MailboxDepths() []int {
	d := make([]int, len(s.shards))
	for i, sh := range s.shards {
		d[i] = len(sh.mailbox)
	}
	return d
}

// AggregatePhases merges the per-shard phase snapshots of a report set into
// one server-wide snapshot (nil when no shard carried one — tracing off or
// every traced shard dead). The inputs are not mutated.
func AggregatePhases(reports []ShardReport) *obs.PhaseSnapshot {
	var agg *obs.PhaseSnapshot
	for i := range reports {
		p := reports[i].Phases
		if p == nil {
			continue
		}
		if agg == nil {
			agg = p.Clone()
		} else {
			agg.Merge(p)
		}
	}
	return agg
}
