// MVCC read path for the serving layer: single-writer/many-reader shards
// with lock-free concurrent readers.
//
// When Config.Snapshots is on, each shard publishes epoch-stamped immutable
// snapshots of its structure (core.SnapshotReader) and installs the newest
// one in an atomic pointer. A Do call whose sub-batch for a shard is pure
// reads acquires that snapshot with one CAS and executes the reads on the
// client's own goroutine — no mailbox message, no channel hop, no lock. The
// calling clients are the reader pool: N concurrent client goroutines read N
// snapshots with zero coordination while the shard goroutine keeps writing.
//
// The single-owner contract of the storage stack is preserved by
// construction: readers touch only the snapshot (frozen state plus a
// storage.PageView over raw device pages) and never call into the structure,
// the buffer pool, or the device. The -tags racecheck build enforces both
// halves — goroutine binding for the writer, page-generation stamps for the
// readers.
//
// Exact RUM accounting is preserved by meter handoff. Each reader charges a
// stack-local plain rum.Meter (no shared state on the hot path), then merges
// it once per sub-batch into the snapshot's AtomicMeter. The shard goroutine
// is the only absorber: when a snapshot is superseded and its reference
// count drains to zero, the shard folds the AtomicMeter into its own ledger
// (snapMeter) and releases the structure-level snapshot. Reports therefore
// see every byte exactly once: live structure meter + absorbed reader
// traffic + still-live snapshots' atomic meters, all read on the shard
// goroutine.
//
// Freshness is governed by Config.StalenessOps. The default (1) republishes
// after every write-carrying message, before that message's completion
// fires; the happens-before edge through the completion channel then gives
// read-your-writes across Do calls — a client that finished a write call is
// guaranteed to observe it in its next snapshot read. Larger values
// amortize publish cost over up to StalenessOps writes and give up that
// guarantee, bounding staleness by op count instead.
package serve

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/rum"
)

// shardSnap is one published snapshot in the reader-visible chain. refs
// counts the writer's installation reference (held until the snapshot is
// superseded) plus one per in-flight reader; the snapshot is absorbable once
// it is out of the pointer and refs reaches zero.
type shardSnap struct {
	snap  core.Snapshot
	epoch uint64
	meter rum.AtomicMeter
	refs  atomic.Int64
}

// acquireSnap takes a reference on the shard's current snapshot, or returns
// nil when the shard has none (MVCC off, unsupported structure, or nothing
// published yet). Lock-free: the CAS-from-nonzero loop refuses to resurrect
// a snapshot whose count already drained — zero means the writer may be
// absorbing it right now — and reloads the pointer instead, which by then
// holds the successor.
func (sh *shard) acquireSnap() *shardSnap {
	for {
		ss := sh.cur.Load()
		if ss == nil {
			return nil
		}
		r := ss.refs.Load()
		if r == 0 {
			continue
		}
		if ss.refs.CompareAndSwap(r, r+1) {
			return ss
		}
	}
}

// publishSnap (shard goroutine only) publishes the structure's current
// state and installs it for readers, retiring the previous snapshot. A
// structure without snapshot support turns the MVCC path off for this shard
// on the first attempt; reads then flow through the mailbox as before.
func (sh *shard) publishSnap(am *core.Instrumented) {
	if err := am.Publish(); err != nil {
		sh.snapEvery = 0
		return
	}
	cs := am.Acquire()
	if cs == nil {
		sh.snapEvery = 0
		return
	}
	sh.snapVersions = am.SnapshotStats().Versions
	ns := &shardSnap{snap: cs, epoch: cs.Epoch()}
	ns.refs.Store(1) // the installation reference
	if old := sh.cur.Swap(ns); old != nil {
		old.refs.Add(-1)
		sh.retiredSnaps = append(sh.retiredSnaps, old)
	}
	sh.writesSince = 0
	sh.sweepSnaps(false)
}

// sweepSnaps (shard goroutine only) absorbs retired snapshots whose readers
// have all left: their reader-charged AtomicMeters fold into the shard
// ledger and the structure-level snapshot is released, unpinning its pages
// for epoch reclamation. final (Stop path, after every client call has
// returned by contract) absorbs unconditionally.
func (sh *shard) sweepSnaps(final bool) {
	keep := sh.retiredSnaps[:0]
	for _, rs := range sh.retiredSnaps {
		if !final && rs.refs.Load() != 0 {
			keep = append(keep, rs)
			continue
		}
		sh.snapMeter.Add(rs.meter.Snapshot())
		rs.snap.Release()
	}
	for i := len(keep); i < len(sh.retiredSnaps); i++ {
		sh.retiredSnaps[i] = nil
	}
	sh.retiredSnaps = keep
}

// shutdownSnaps (shard goroutine only) uninstalls the current snapshot and
// absorbs the whole chain; called after the mailbox closes, when no reader
// can still be in flight.
func (sh *shard) shutdownSnaps() {
	if cur := sh.cur.Swap(nil); cur != nil {
		cur.refs.Add(-1)
		sh.retiredSnaps = append(sh.retiredSnaps, cur)
	}
	sh.sweepSnaps(true)
}

// ledgerMeter (shard goroutine only) is the shard's full RUM ledger: the
// structure's own meter, reader traffic absorbed from dead snapshots, and
// the still-live snapshots' atomic meters. Monotone across calls — absorbing
// moves a snapshot's total from one term to another without changing the
// sum, and AtomicMeters only grow.
func (sh *shard) ledgerMeter(am *core.Instrumented) rum.Meter {
	m := am.Meter().Snapshot()
	m.Add(sh.snapMeter)
	for _, rs := range sh.retiredSnaps {
		m.Add(rs.meter.Snapshot())
	}
	if cur := sh.cur.Load(); cur != nil {
		m.Add(cur.meter.Snapshot())
	}
	return m
}

// noteWrites (shard goroutine only) advances the publish cadence after a
// message that applied n writes and republishes when the staleness budget is
// spent. Runs before the message's completion fires, which is what makes
// StalenessOps=1 read-your-writes.
func (sh *shard) noteWrites(am *core.Instrumented, n int) {
	if sh.snapEvery <= 0 || n == 0 {
		return
	}
	sh.writesSince += n
	if sh.writesSince >= sh.snapEvery {
		sh.publishSnap(am)
	}
}

// ReaderStats reports the MVCC read path's counters: bypass readers active
// right now, and the total operations served from snapshots since start.
// Both are zero when Config.Snapshots is off.
func (s *Server) ReaderStats() (active int64, ops uint64) {
	for _, sh := range s.shards {
		ops += sh.bypassOps.Load()
	}
	return s.readersActive.Load(), ops
}

// snapshotScan serves a broadcast range scan entirely from snapshots on the
// caller's goroutine, reporting ok=false (and acquiring nothing net) when
// any shard lacks one — the caller then falls back to the mailbox path.
// Like Snapshot, the cut is per-shard-consistent, not global: each shard
// contributes its latest published epoch.
func (s *Server) snapshotScan(lo, hi core.Key, emit func(core.Key, core.Value) bool) (int, bool) {
	s.mu.RLock()
	if s.stopped {
		s.mu.RUnlock()
		return 0, false
	}
	sss := make([]*shardSnap, len(s.shards))
	for i, sh := range s.shards {
		ss := sh.acquireSnap()
		if ss == nil {
			for j := 0; j < i; j++ {
				sss[j].refs.Add(-1)
			}
			s.mu.RUnlock()
			return 0, false
		}
		sss[i] = ss
	}
	s.mu.RUnlock()

	s.readersActive.Add(1)
	defer s.readersActive.Add(-1)
	var all []core.Record
	var m rum.Meter
	for i, ss := range sss {
		ss.snap.RangeScan(lo, hi, &m, func(k core.Key, v core.Value) bool {
			all = append(all, core.Record{Key: k, Value: v})
			return true
		})
		ss.meter.Merge(m)
		m.Reset()
		ss.refs.Add(-1)
		s.shards[i].bypassOps.Add(1)
	}
	sortRecords(all)
	n := 0
	for _, r := range all {
		if !emit(r.Key, r.Value) {
			break
		}
		n++
	}
	return n, true
}
