package bench

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Key-popularity distributions for generated client streams. The default
// chooser is uniform over the client's live keys — exactly one rng.IntN
// draw, byte-identical to the pre-distribution generator. The skewed
// choosers exist to exercise the workload fingerprinter: zipf concentrates
// traffic on a few ranks, hotspot splits it into a hot set and a cold tail.
//
// Ranks index the client's live-key slice, whose order is maintenance
// order (inserts append, deletes swap-remove). Under a read-mostly phase
// the slice is stable and the hot set is a fixed set of keys; under write
// churn the hot *positions* stay hot while the keys occupying them change
// slowly — both are realistic skew, and both are deterministic.

// KeyDist selects how a stream picks among live keys.
type KeyDist struct {
	// Kind is "uniform", "zipf", or "hotspot".
	Kind string
	// Theta is the zipf exponent (Kind "zipf"; 0.99 when unset).
	Theta float64
	// HotAccess/HotKeys parameterize "hotspot": HotAccess of the traffic
	// targets the hottest HotKeys fraction of live keys (e.g. 0.90/0.10).
	HotAccess, HotKeys float64
}

// UniformDist returns the default chooser.
func UniformDist() KeyDist { return KeyDist{Kind: "uniform"} }

// Validate checks the distribution's parameters.
func (d KeyDist) Validate() error {
	switch d.Kind {
	case "", "uniform":
		return nil
	case "zipf":
		if d.Theta <= 0 || d.Theta >= 8 {
			return fmt.Errorf("dist: zipf theta %g outside (0,8)", d.Theta)
		}
		return nil
	case "hotspot":
		if d.HotAccess <= 0 || d.HotAccess >= 1 || d.HotKeys <= 0 || d.HotKeys >= 1 {
			return fmt.Errorf("dist: hotspot %g/%g; want fractions in (0,1)", d.HotAccess, d.HotKeys)
		}
		return nil
	default:
		return fmt.Errorf("dist: unknown kind %q (want uniform, zipf:THETA, hotspot:HOT/KEYS)", d.Kind)
	}
}

// ParseKeyDist parses "uniform", "zipf:1.1", or "hotspot:90/10" (90% of
// accesses to the hottest 10% of keys; percentages or fractions both work).
func ParseKeyDist(s string) (KeyDist, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "uniform" {
		return UniformDist(), nil
	}
	kind, arg, _ := strings.Cut(s, ":")
	switch kind {
	case "zipf":
		d := KeyDist{Kind: "zipf", Theta: 0.99}
		if arg != "" {
			t, err := strconv.ParseFloat(arg, 64)
			if err != nil {
				return d, fmt.Errorf("dist: zipf theta %q: %v", arg, err)
			}
			d.Theta = t
		}
		return d, d.Validate()
	case "hotspot":
		d := KeyDist{Kind: "hotspot", HotAccess: 0.90, HotKeys: 0.10}
		if arg != "" {
			a, k, ok := strings.Cut(arg, "/")
			if !ok {
				return d, fmt.Errorf("dist: hotspot wants HOT/KEYS, got %q", arg)
			}
			av, err1 := strconv.ParseFloat(a, 64)
			kv, err2 := strconv.ParseFloat(k, 64)
			if err1 != nil || err2 != nil {
				return d, fmt.Errorf("dist: hotspot %q: bad numbers", arg)
			}
			if av > 1 {
				av /= 100
			}
			if kv > 1 {
				kv /= 100
			}
			d.HotAccess, d.HotKeys = av, kv
		}
		return d, d.Validate()
	default:
		return KeyDist{}, fmt.Errorf("dist: unknown kind %q (want uniform, zipf:THETA, hotspot:HOT/KEYS)", kind)
	}
}

// String renders the distribution in ParseKeyDist form.
func (d KeyDist) String() string {
	switch d.Kind {
	case "zipf":
		return fmt.Sprintf("zipf:%g", d.Theta)
	case "hotspot":
		return fmt.Sprintf("hotspot:%g/%g", d.HotAccess*100, d.HotKeys*100)
	default:
		return "uniform"
	}
}

// rank picks an index in [0,n) from the distribution given one uniform
// draw u in [0,1) and, for hotspot, a second draw u2. Uniform never calls
// this — StreamGen keeps its exact single-IntN path.
func (d KeyDist) rank(u, u2 float64, n int) int {
	switch d.Kind {
	case "zipf":
		// Inverse CDF of a truncated continuous pareto over [1, n+1): rank 0
		// is hottest, mass ~ 1/rank^theta.
		var x float64
		if math.Abs(d.Theta-1) < 1e-9 {
			x = math.Pow(float64(n+1), u)
		} else {
			e := 1 - d.Theta
			x = math.Pow(1+u*(math.Pow(float64(n+1), e)-1), 1/e)
		}
		i := int(x) - 1
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return i
	case "hotspot":
		hot := int(d.HotKeys * float64(n))
		if hot < 1 {
			hot = 1
		}
		if u < d.HotAccess {
			return clampIdx(int(u2*float64(hot)), hot)
		}
		if hot >= n {
			return clampIdx(int(u2*float64(n)), n)
		}
		return hot + clampIdx(int(u2*float64(n-hot)), n-hot)
	default:
		return clampIdx(int(u*float64(n)), n)
	}
}

// clampIdx guards the float→index conversion against the u≈1 rounding edge.
func clampIdx(i, n int) int {
	if i >= n {
		return n - 1
	}
	if i < 0 {
		return 0
	}
	return i
}
