package bench

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"repro/internal/core"
	"repro/internal/cracking"
	"repro/internal/methods"
	"repro/internal/workload"
)

// CrackStep is one decile of the cracking query sequence.
type CrackStep struct {
	Queries   int
	AvgRead   float64 // physical bytes read per query in this decile
	Pieces    int
	CumSwaps  uint64
	CumCracks uint64
}

// PhaseResult is one workload phase of the morphing run.
type PhaseResult struct {
	Phase      string
	Flavor     string // shape at the end of the phase
	ReadBytes  uint64
	WriteBytes uint64
	Migrated   int // cumulative migrations
}

// AdaptiveResult is the Section-4/5 adaptivity experiment: cracking
// converges from scan cost toward index cost as queries accrue, and the
// morphing engine changes physical shape as the workload shifts.
type AdaptiveResult struct {
	N          int
	CrackSteps []CrackStep
	// Converged: the last decile reads at most a fifth of the first.
	Converged  bool
	FirstOverN float64 // first-decile read bytes / column bytes
	LastOverN  float64

	Phases     []PhaseResult
	Migrations int
}

// RunAdaptive measures the adaptive middle of the RUM triangle.
//
// Part 1 (cracking): a column of N records answers a sequence of random
// range queries; the per-query read cost must fall as cracking accumulates
// structure — "the index creation overhead is amortized over a period of
// time, gradually reducing the read overhead".
//
// Part 2 (morphing): the Section-5 morphing engine serves three workload
// phases (read-heavy → write-heavy → scan-heavy) and is expected to change
// its physical shape between them.
func RunAdaptive(cfg Config) AdaptiveResult {
	cfg.Defaults()
	res := AdaptiveResult{N: cfg.N}

	// The two parts are independent structures and run as separate cells;
	// each writes a disjoint set of result fields.
	cracked := func(cfg Config) {
		st := cracking.New(1<<20, nil)
		recs := makeRecords(cfg.Seed, cfg.N)
		// Load via the unsorted path: cracking starts from an unordered heap.
		// PCG keyed by (seed, stream) per the rand/v2 convention the fault
		// injector and serve streams use; the legacy math/rand source is gone.
		rng := rand.New(rand.NewPCG(uint64(cfg.Seed), 9))
		shuffled := make([]core.Record, len(recs))
		copy(shuffled, recs)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if err := st.BulkLoad(shuffled); err != nil {
			panic(err)
		}

		const queries = 500
		const deciles = 10
		perDecile := queries / deciles
		span := uint64(1) << 28 // narrow ranges over the 40-bit domain
		start := st.Meter().Snapshot()
		for d := 0; d < deciles; d++ {
			for q := 0; q < perDecile; q++ {
				lo := recs[rng.IntN(len(recs))].Key
				st.RangeScan(lo, lo+span, func(core.Key, core.Value) bool { return true })
			}
			diff := st.Meter().Diff(start)
			start = st.Meter().Snapshot()
			res.CrackSteps = append(res.CrackSteps, CrackStep{
				Queries:   (d + 1) * perDecile,
				AvgRead:   float64(diff.PhysicalRead()) / float64(perDecile),
				Pieces:    st.Pieces(),
				CumSwaps:  st.Stats().Swaps,
				CumCracks: st.Stats().Cracks,
			})
		}
		colBytes := float64(cfg.N * core.RecordSize)
		res.FirstOverN = res.CrackSteps[0].AvgRead / colBytes
		res.LastOverN = res.CrackSteps[len(res.CrackSteps)-1].AvgRead / colBytes
		res.Converged = res.LastOverN < res.FirstOverN/5
	}

	morphing := func(cfg Config) {
		m, err := core.NewMorphing(methods.Flavors(cfg.Storage), 0, core.MorphPolicy{})
		if err != nil {
			panic(err)
		}
		w := core.Instrument(m)
		gen := workload.New(workload.Config{
			Seed:       cfg.Seed,
			Mix:        workload.ReadHeavy,
			InitialLen: cfg.N / 4,
			RangeLen:   1 << 30,
		})
		if err := core.Preload(m, gen); err != nil {
			panic(err)
		}
		phases := []struct {
			name string
			mix  workload.Mix
		}{
			{"read-heavy", workload.ReadHeavy},
			{"write-heavy", workload.WriteHeavy},
			{"scan-heavy", workload.ScanHeavy},
		}
		for _, ph := range phases {
			gen := workload.New(workload.Config{
				Seed:       cfg.Seed + 13,
				Mix:        ph.mix,
				InitialLen: 0,
				RangeLen:   1 << 30,
			})
			// Seed the generator's live set from the store's keys so updates
			// and deletes target real records.
			seedLiveSet(gen, w)
			before := w.Meter().Snapshot()
			var st core.OpStats
			for i := 0; i < cfg.Ops/2; i++ {
				core.Apply(w, gen.Next(), &st)
			}
			w.Flush()
			d := w.Meter().Diff(before)
			res.Phases = append(res.Phases, PhaseResult{
				Phase:      ph.name,
				Flavor:     m.CurrentFlavor(),
				ReadBytes:  d.PhysicalRead(),
				WriteBytes: d.PhysicalWritten(),
				Migrated:   m.Migrations(),
			})
		}
		res.Migrations = m.Migrations()
	}

	cfg.runCells("adaptive", []Cell{
		{Label: "cracking", Run: cracked},
		{Label: "morphing", Run: morphing},
	})
	return res
}

// seedLiveSet replays a sample of the store's keys into the generator as
// pre-existing inserts so the phase workload targets live records.
func seedLiveSet(gen *workload.Generator, w *core.Instrumented) {
	// InitialRecords was zero-length; register keys by draining a scan into
	// generator inserts applied as no-ops (keys already exist in the store).
	count := 0
	w.Unwrap().RangeScan(0, ^core.Key(0), func(k core.Key, v core.Value) bool {
		gen.RegisterLive(k)
		count++
		return count < 4096
	})
}

// Render prints both adaptivity runs.
func (r AdaptiveResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Adaptive access methods (Sections 4–5), N=%d\n\n", r.N)
	b.WriteString("Database cracking: per-query read cost vs. queries executed\n")
	rows := make([][]string, 0, len(r.CrackSteps))
	for _, s := range r.CrackSteps {
		rows = append(rows, []string{
			fmt.Sprintf("%d", s.Queries),
			fmtBytes(s.AvgRead),
			fmt.Sprintf("%d", s.Pieces),
			fmt.Sprintf("%d", s.CumCracks),
			fmt.Sprintf("%d", s.CumSwaps),
		})
	}
	b.WriteString(table([]string{"queries", "avg read/query", "pieces", "cracks", "swaps"}, rows))
	fmt.Fprintf(&b, "First decile reads %.1f%% of the column per query; last decile %.2f%%. Converged (>5x drop): %v\n\n",
		r.FirstOverN*100, r.LastOverN*100, r.Converged)

	b.WriteString("Morphing engine under workload shift:\n")
	rows = rows[:0]
	for _, p := range r.Phases {
		rows = append(rows, []string{
			p.Phase, p.Flavor, fmtBytes(float64(p.ReadBytes)), fmtBytes(float64(p.WriteBytes)), fmt.Sprintf("%d", p.Migrated),
		})
	}
	b.WriteString(table([]string{"phase", "shape at end", "phys reads", "phys writes", "migrations"}, rows))
	fmt.Fprintf(&b, "Total migrations: %d\n", r.Migrations)
	return b.String()
}
