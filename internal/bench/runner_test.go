package bench

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/rum"
)

// TestRunnerMapBounded checks that Map never runs more than the pool width
// concurrently and visits every index exactly once.
func TestRunnerMapBounded(t *testing.T) {
	const workers = 3
	r := NewRunner(workers)
	var cur, peak, total atomic.Int64
	var mu sync.Mutex
	seen := map[int]int{}
	errs := r.Map(50, func(i int) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		mu.Lock()
		seen[i]++
		mu.Unlock()
		total.Add(1)
		cur.Add(-1)
	})
	for i, e := range errs {
		if e != nil {
			t.Fatalf("index %d errored: %v", i, e)
		}
	}
	if total.Load() != 50 || len(seen) != 50 {
		t.Fatalf("ran %d cells over %d indices, want 50/50", total.Load(), len(seen))
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("index %d ran %d times", i, n)
		}
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("concurrency peaked at %d with %d workers", p, workers)
	}
	if s := r.Stats(); s.Cells != 50 || s.Failed != 0 {
		t.Fatalf("stats = %+v, want 50 cells, 0 failed", s)
	}
}

// TestRunnerMapSequentialInline checks the nil-runner and one-worker paths run
// in enumeration order on the caller's goroutine.
func TestRunnerMapSequentialInline(t *testing.T) {
	for _, r := range []*Runner{nil, NewRunner(1)} {
		var order []int
		r.Map(5, func(i int) { order = append(order, i) }) // no locking: must be inline
		for i, v := range order {
			if v != i {
				t.Fatalf("workers=%d: order %v, want ascending", r.Workers(), order)
			}
		}
		if len(order) != 5 {
			t.Fatalf("ran %d of 5", len(order))
		}
	}
	if w := (*Runner)(nil).Workers(); w != 1 {
		t.Fatalf("nil runner Workers() = %d, want 1", w)
	}
}

// TestRunnerMapRecovers checks that a panicking cell is captured as a
// CellError while the other cells still run.
func TestRunnerMapRecovers(t *testing.T) {
	for _, workers := range []int{1, 4} {
		r := NewRunner(workers)
		var ran atomic.Int64
		errs := r.Map(6, func(i int) {
			if i == 2 {
				panic(errors.New("boom"))
			}
			ran.Add(1)
		})
		if ran.Load() != 5 {
			t.Fatalf("workers=%d: %d clean cells ran, want 5", workers, ran.Load())
		}
		for i, e := range errs {
			if (e != nil) != (i == 2) {
				t.Fatalf("workers=%d: errs[%d] = %v", workers, i, e)
			}
		}
		if errs[2].Value.(error).Error() != "boom" || len(errs[2].Stack) == 0 {
			t.Fatalf("workers=%d: bad CellError %+v", workers, errs[2])
		}
		if s := r.Stats(); s.Cells != 6 || s.Failed != 1 {
			t.Fatalf("workers=%d: stats = %+v", workers, s)
		}
	}
}

// TestRunCellsSuiteError checks that a failing cell surfaces as a SuiteError
// naming the experiment and cell, only after every cell has run.
func TestRunCellsSuiteError(t *testing.T) {
	cfg := Config{Runner: NewRunner(2)}
	var after atomic.Bool
	defer func() {
		v := recover()
		se, ok := v.(*SuiteError)
		if !ok {
			t.Fatalf("recovered %T %v, want *SuiteError", v, v)
		}
		if se.Exp != "exp" || len(se.Cells) != 1 || se.Cells[0].Label != "bad" {
			t.Fatalf("SuiteError = %+v", se)
		}
		if !strings.Contains(se.Error(), "exp/bad") {
			t.Fatalf("error text %q lacks cell name", se.Error())
		}
		if !after.Load() {
			t.Fatal("later cell did not run after the failure")
		}
	}()
	cfg.runCells("exp", []Cell{
		{Label: "ok", Run: func(Config) {}},
		{Label: "bad", Run: func(Config) { panic("kaput") }},
		{Label: "also-ok", Run: func(Config) { after.Store(true) }},
	})
	t.Fatal("runCells did not panic")
}

// TestRunnerMergeTraced checks the concurrent drain into the grand meter.
func TestRunnerMergeTraced(t *testing.T) {
	r := NewRunner(4)
	r.Map(8, func(i int) {
		var m rum.Meter
		m.CountRead(rum.Base, 100)
		r.MergeTraced(m)
	})
	if got := r.Stats().Traced.BaseRead; got != 800 {
		t.Fatalf("grand BaseRead = %d, want 800", got)
	}
	(*Runner)(nil).MergeTraced(rum.Meter{}) // must not crash
}

// TestMakeRecordsCached checks the memoized dataset cache: same (seed, n)
// yields equal content, distinct backing arrays (callers may mutate), and no
// regeneration; different keys yield different data.
func TestMakeRecordsCached(t *testing.T) {
	a := makeRecords(7, 512)
	b := makeRecords(7, 512)
	if len(a) != 512 || len(b) != 512 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	if &a[0] == &b[0] {
		t.Fatal("makeRecords returned the shared canonical slice, not a copy")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cached dataset differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
	a[0].Key = ^a[0].Key // caller mutation must not poison the cache
	c := makeRecords(7, 512)
	if c[0] != b[0] {
		t.Fatal("caller mutation leaked into the cache")
	}
	d := makeRecords(8, 512)
	same := true
	for i := range d {
		if d[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

// TestMakeRecordsCachedConcurrent hits one cache key from many goroutines;
// under -race this proves the sync.Once fill is sound.
func TestMakeRecordsCachedConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := makeRecords(11, 256)
			if len(r) != 256 {
				t.Errorf("got %d records", len(r))
			}
		}()
	}
	wg.Wait()
}
