package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/approx"
	"repro/internal/btree"
	"repro/internal/cobtree"
	"repro/internal/core"
	"repro/internal/lsm"
	"repro/internal/pbt"
	"repro/internal/storage"
	"repro/internal/zonemap"
)

// ExtensionsResult measures the Section-4/5 designs beyond the core cast:
// the approximate index over quotient filters, the partitioned B-tree, and
// the cache-oblivious search tree.
type ExtensionsResult struct {
	N int

	// Approximate indexing (§5): zone map vs filter-backed zones on point
	// misses.
	ZonemapMissRead uint64  // base bytes read per 1k misses, plain zone map
	ApproxMissRead  uint64  // same with quotient filters
	ApproxMO        float64 // space price of the filters
	ZonemapMO       float64
	FilterSkipRate  float64 // fraction of misses the filters pruned

	// Differential structures (§4): page writes per insert.
	BTreeWrites uint64
	PBTWrites   uint64
	LSMWrites   uint64

	// Cache-oblivious ablation (§4): distinct cache lines per search.
	VEBLines    float64
	BinaryLines float64
	VEBMO       float64
}

// RunExtensions measures the three extension claims. The approximate-index
// comparison, each differential-structure insert run, and the cache-oblivious
// ablation are all independent — five run cells.
func RunExtensions(cfg Config) ExtensionsResult {
	cfg.Defaults()
	res := ExtensionsResult{N: cfg.N}

	// --- Approximate indexing: misses inside zone ranges ---
	approxCell := func(cfg Config) {
		recs := makeRecords(cfg.Seed, cfg.N)
		zm := zonemap.New(256, nil)
		ap := approx.New(approx.Config{Partition: 256, FingerprintBits: 20}, nil)
		if err := zm.BulkLoad(recs); err != nil {
			panic(err)
		}
		if err := ap.BulkLoad(recs); err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(cfg.Seed + 21))
		z0, a0 := zm.Meter().Snapshot(), ap.Meter().Snapshot()
		const misses = 1000
		for i := 0; i < misses; i++ {
			k := recs[rng.Intn(len(recs))].Key + 1 // between keys: in-range miss
			zm.Get(k)
			ap.Get(k)
		}
		res.ZonemapMissRead = zm.Meter().Diff(z0).BaseRead
		res.ApproxMissRead = ap.Meter().Diff(a0).BaseRead
		res.ZonemapMO = zm.Size().SpaceAmplification()
		res.ApproxMO = ap.Size().SpaceAmplification()
		res.FilterSkipRate = float64(ap.FilterSkips()) / misses
	}

	// --- Differential structures: insert write cost ---
	type inserter interface {
		Insert(core.Key, core.Value) error
		Flush()
	}
	// The differential advantage needs data well beyond the pool (8 pages
	// = 2k records), or the buffer pool absorbs the in-place tree's
	// writes too.
	inserts := cfg.Ops
	if inserts < 20000 {
		inserts = 20000
	}
	// The active partition must fit the pool (8 pages ≈ 2k records) for
	// its writes to be absorbed — that is the design's point.
	partition := inserts / 8
	if partition < 256 {
		partition = 256
	}
	if partition > 1024 {
		partition = 1024
	}
	// Each differential run owns a private device + pool, independent of the
	// cell Config's storage stack.
	insertRun := func(seed int64, build func(pool *storage.BufferPool) inserter) uint64 {
		dev := storage.NewDevice(4096, storage.SSD, nil)
		pool := storage.NewBufferPool(dev, 8)
		am := build(pool)
		rng := rand.New(rand.NewSource(seed + 22))
		for i := 0; i < inserts; i++ {
			_ = am.Insert(rng.Uint64()>>24, 1)
		}
		am.Flush()
		return dev.Stats().PageWrites
	}
	btreeCell := func(cfg Config) {
		res.BTreeWrites = insertRun(cfg.Seed, func(p *storage.BufferPool) inserter {
			t, err := btree.New(p, btree.Config{})
			if err != nil {
				panic(err)
			}
			return t
		})
	}
	pbtCell := func(cfg Config) {
		res.PBTWrites = insertRun(cfg.Seed, func(p *storage.BufferPool) inserter {
			t, err := pbt.New(p, pbt.Config{PartitionRecords: partition, MergeFanIn: 4})
			if err != nil {
				panic(err)
			}
			return t
		})
	}
	lsmCell := func(cfg Config) {
		res.LSMWrites = insertRun(cfg.Seed, func(p *storage.BufferPool) inserter {
			return lsm.New(p, lsm.Config{MemtableRecords: partition, SizeRatio: 10})
		})
	}

	// --- Cache-oblivious ablation ---
	cobtreeCell := func(cfg Config) {
		recs := makeRecords(cfg.Seed, cfg.N)
		tr, err := cobtree.Build(recs, nil)
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(cfg.Seed + 23))
		veb, bin := 0, 0
		const searches = 2000
		for i := 0; i < searches; i++ {
			k := recs[rng.Intn(len(recs))].Key
			veb += tr.SearchLines(k)
			bin += tr.BinarySearchLines(k)
		}
		res.VEBLines = float64(veb) / searches
		res.BinaryLines = float64(bin) / searches
		res.VEBMO = tr.Size().SpaceAmplification()
	}

	cfg.runCells("extensions", []Cell{
		{Label: "approx-vs-zonemap", Run: approxCell},
		{Label: "writes/btree", Run: btreeCell},
		{Label: "writes/pbt", Run: pbtCell},
		{Label: "writes/lsm", Run: lsmCell},
		{Label: "cobtree-ablation", Run: cobtreeCell},
	})
	return res
}

// Render prints the extension measurements.
func (r ExtensionsResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 4–5 extensions (N=%d)\n\n", r.N)

	fmt.Fprintf(&b, "Approximate indexing (§5): quotient-filter zones vs plain zone map, 1000 in-range point misses\n")
	rows := [][]string{
		{"zonemap", fmtBytes(float64(r.ZonemapMissRead)), fmt.Sprintf("%.4f", r.ZonemapMO), "-"},
		{"approx (quotient filters)", fmtBytes(float64(r.ApproxMissRead)), fmt.Sprintf("%.4f", r.ApproxMO),
			fmt.Sprintf("%.1f%%", r.FilterSkipRate*100)},
	}
	b.WriteString(table([]string{"structure", "base bytes read", "MO", "misses pruned"}, rows))
	fmt.Fprintf(&b, "Filters cut miss reads %.0fx for %.1f%% extra space.\n\n",
		float64(r.ZonemapMissRead)/float64(max64(r.ApproxMissRead, 1)),
		(r.ApproxMO-r.ZonemapMO)*100)

	b.WriteString("Differential structures (§4): device page writes for the run's random inserts (4 KiB pages, MEM=8)\n")
	rows = [][]string{
		{"btree (in-place)", fmt.Sprintf("%d", r.BTreeWrites)},
		{"pbt (partitioned)", fmt.Sprintf("%d", r.PBTWrites)},
		{"lsm (leveled)", fmt.Sprintf("%d", r.LSMWrites)},
	}
	b.WriteString(table([]string{"structure", "page writes"}, rows))
	b.WriteString("Both differential designs undercut the in-place tree; the LSM's pure-sequential runs write least.\n\n")

	fmt.Fprintf(&b, "Cache-oblivious ablation (§4): distinct 64B lines per search over the same sorted data\n")
	rows = [][]string{
		{"vEB-layout tree", fmt.Sprintf("%.2f", r.VEBLines), fmt.Sprintf("%.2f", r.VEBMO)},
		{"binary search", fmt.Sprintf("%.2f", r.BinaryLines), "1.00"},
	}
	b.WriteString(table([]string{"method", "lines/search", "MO"}, rows))
	fmt.Fprintf(&b, "The cache-oblivious layout touches %.0f%% fewer lines and pays %.1fx space in pointers — the paper's stated tradeoff.\n",
		100*(1-r.VEBLines/r.BinaryLines), r.VEBMO)
	return b.String()
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
