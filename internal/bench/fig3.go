package bench

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/approx"
	"repro/internal/bitmap"
	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/lsm"
	"repro/internal/methods"
	"repro/internal/pbt"
	"repro/internal/rum"
	"repro/internal/workload"
)

// ConfigPoint is one tuning configuration of a structure and its measured
// RUM position.
type ConfigPoint struct {
	Config string
	Point  rum.Point
}

// Fig3Family is one tunable structure swept over its knobs: the set of
// positions it can reach in the RUM space.
type Fig3Family struct {
	Name   string
	Points []ConfigPoint
	// SpreadR/U/M is the log2 range each dimension covers across the sweep:
	// a structure that is "an area, not a point" has nonzero spread.
	SpreadR, SpreadU, SpreadM float64
	// FrontierSize counts configurations not dominated by another of the
	// same family; the RUM tradeoff predicts a frontier, not a single
	// winner.
	FrontierSize int
}

// Fig3Result is the measured Figure 3: tunable access methods cover areas
// of the RUM space.
type Fig3Result struct {
	N        int
	Ops      int
	Families []Fig3Family
}

// fig3Mix exercises all three overheads: reads, scans, and writes.
var fig3Mix = workload.Mix{Get: 0.45, Range: 0.05, Insert: 0.25, Update: 0.20, Delete: 0.05}

// fig3Sweep enumerates the whole configuration grid: every entry is one
// (family, label, builder) triple. Builders take the cell's Config so each
// configuration is constructed against its own isolated storage stack.
type fig3Config struct {
	family string
	label  string
	build  func(Config) *core.Instrumented
}

func fig3Sweep(cfg Config) []fig3Config {
	var sweep []fig3Config
	add := func(family, label string, build func(Config) *core.Instrumented) {
		sweep = append(sweep, fig3Config{family: family, label: label, build: build})
	}

	// --- B+-tree: node capacity and bulk fill ---
	for _, maxLeaf := range []int{16, 64, 0} { // 0 = full page
		for _, fill := range []float64{0.5, 1.0} {
			maxLeaf, fill := maxLeaf, fill
			add("btree", fmt.Sprintf("leaf=%d,fill=%.1f", maxLeaf, fill), func(c Config) *core.Instrumented {
				return methods.NewBTree(c.Storage, btree.Config{MaxLeaf: maxLeaf, BulkFill: fill})
			})
		}
	}

	// --- LSM: size ratio, tier/level, bloom bits ---
	for _, t := range []int{2, 4, 10} {
		for _, tier := range []bool{false, true} {
			for _, bloomBits := range []float64{0, 10} {
				t, tier, bloomBits := t, tier, bloomBits
				mode := "level"
				if tier {
					mode = "tier"
				}
				add("lsm", fmt.Sprintf("T=%d,%s,bloom=%g", t, mode, bloomBits), func(c Config) *core.Instrumented {
					return methods.NewLSM(c.Storage, lsm.Config{
						MemtableRecords: 1024, SizeRatio: t, Tiering: tier, BloomBitsPerKey: bloomBits,
					})
				})
			}
		}
	}

	// --- Zone maps: partition size ---
	for _, p := range []int{32, 128, 512, 4096} {
		p := p
		add("zonemap", fmt.Sprintf("P=%d", p), func(Config) *core.Instrumented {
			return methods.NewZoneMap(p)
		})
	}

	// --- Update-friendly bitmaps: merge threshold ---
	for _, th := range []int{16, 256, 4096} {
		th := th
		add("bitmap", fmt.Sprintf("merge=%d", th), func(Config) *core.Instrumented {
			return methods.NewBitmap(bitmap.Config{Cardinality: 16, MergeThreshold: th})
		})
	}

	// --- Trie: stride (16-bit strides are omitted: over scattered keys every
	// record would materialize multiple 2^16-pointer nodes) ---
	for _, stride := range []uint{4, 8} {
		stride := stride
		add("trie", fmt.Sprintf("stride=%d", stride), func(Config) *core.Instrumented {
			return methods.NewTrie(stride)
		})
	}

	// --- Partitioned B-tree: partition size × merge fan-in (partitions
	// scale with N so every configuration seals and merges during the run) ---
	for _, part := range []int{cfg.N / 64, cfg.N / 8} {
		if part < 16 {
			part = 16
		}
		for _, fan := range []int{2, 8} {
			part, fan := part, fan
			add("pbt", fmt.Sprintf("part=%d,fan=%d", part, fan), func(c Config) *core.Instrumented {
				return methods.NewPBT(c.Storage, pbt.Config{PartitionRecords: part, MergeFanIn: fan})
			})
		}
	}

	// --- Approximate index: partition × fingerprint bits ---
	for _, part := range []int{64, 512} {
		for _, bits := range []uint{12, 24} {
			part, bits := part, bits
			add("approx", fmt.Sprintf("P=%d,fp=%d", part, bits), func(Config) *core.Instrumented {
				return methods.NewApprox(approx.Config{Partition: part, FingerprintBits: bits})
			})
		}
	}
	return sweep
}

// RunFig3 sweeps each tunable structure across its knobs, profiling every
// configuration under the same workload, and reports the area each family
// covers in the RUM space — the paper's vision of access methods that
// "seamlessly transition" between the three corners. Every configuration is
// one run cell; families are assembled from the cell results in sweep order.
func RunFig3(cfg Config) Fig3Result {
	cfg.Defaults()
	if cfg.Storage.PoolPages == 0 {
		cfg.Storage.PoolPages = 8
	}
	res := Fig3Result{N: cfg.N, Ops: cfg.Ops}

	sweep := fig3Sweep(cfg)
	points := make([]ConfigPoint, len(sweep))
	cells := make([]Cell, len(sweep))
	for i, sc := range sweep {
		i, sc := i, sc
		cells[i] = Cell{
			Label: sc.family + ":" + sc.label,
			Run: func(ccfg Config) {
				am := sc.build(ccfg)
				// The structure's own name (e.g. "btree(B=256)") is the trace
				// label: unlike the sweep label it is unique across families.
				ccfg.observe(am, am.Name())
				gen := workload.New(workload.Config{
					Seed:       ccfg.Seed,
					Mix:        fig3Mix,
					InitialLen: ccfg.N,
					RangeLen:   1 << 30,
				})
				prof, err := core.RunProfile(am, gen, ccfg.Ops)
				if err != nil {
					panic(fmt.Sprintf("fig3: %s: %v", sc.label, err))
				}
				points[i] = ConfigPoint{Config: sc.label, Point: prof.Point}
			},
		}
	}
	cfg.runCells("fig3", cells)

	for i, sc := range sweep {
		if len(res.Families) == 0 || res.Families[len(res.Families)-1].Name != sc.family {
			res.Families = append(res.Families, Fig3Family{Name: sc.family})
		}
		fam := &res.Families[len(res.Families)-1]
		fam.Points = append(fam.Points, points[i])
	}
	for i := range res.Families {
		res.Families[i] = finishFamily(res.Families[i])
	}
	return res
}

func finishFamily(f Fig3Family) Fig3Family {
	span := func(get func(rum.Point) float64) float64 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, p := range f.Points {
			v := math.Log2(math.Max(1, get(p.Point)))
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		return hi - lo
	}
	f.SpreadR = span(func(p rum.Point) float64 { return p.R })
	f.SpreadU = span(func(p rum.Point) float64 { return p.U })
	f.SpreadM = span(func(p rum.Point) float64 { return p.M })
	for i, a := range f.Points {
		dominated := false
		for j, b := range f.Points {
			if i != j && b.Point.Dominates(a.Point) {
				dominated = true
				break
			}
		}
		if !dominated {
			f.FrontierSize++
		}
	}
	return f
}

// Render prints the sweep results and a triangle per family.
func (r Fig3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 (measured): tunable access methods cover areas of the RUM space (N=%d, ops=%d per config)\n\n", r.N, r.Ops)
	for _, fam := range r.Families {
		fmt.Fprintf(&b, "— %s: %d configurations, Pareto frontier %d, log2 spread R=%.2f U=%.2f M=%.2f\n",
			fam.Name, len(fam.Points), fam.FrontierSize, fam.SpreadR, fam.SpreadU, fam.SpreadM)
		rows := make([][]string, 0, len(fam.Points))
		for _, p := range fam.Points {
			rows = append(rows, []string{
				p.Config,
				fmt.Sprintf("%.1f", p.Point.R),
				fmt.Sprintf("%.1f", p.Point.U),
				fmt.Sprintf("%.3f", p.Point.M),
			})
		}
		b.WriteString(table([]string{"config", "RO", "UO", "MO"}, rows))
		b.WriteString("\n")
	}
	// One triangle with every configuration, placed relative to the full
	// swept cohort; all configurations of a family share its marker, so each
	// family reads as an area.
	var all []rum.Point
	var famIdx []int
	for fi, fam := range r.Families {
		for _, p := range fam.Points {
			all = append(all, p.Point)
			famIdx = append(famIdx, fi)
		}
	}
	ws := rum.RelativeWeights(all)
	pts := make([]NamedPoint, 0, len(all))
	for i := range all {
		w := ws[i]
		pts = append(pts, NamedPoint{
			Label:  r.Families[famIdx[i]].Name,
			Point:  all[i],
			W:      &w,
			Marker: 'A' + byte(famIdx[i]),
		})
	}
	b.WriteString(RenderTriangle(pts, 61))
	b.WriteString("\nMarkers: ")
	for i, fam := range r.Families {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%c = %s (%d configs)", 'A'+byte(i), fam.Name, len(fam.Points))
	}
	b.WriteString("\n")
	return b.String()
}
