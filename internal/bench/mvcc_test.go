package bench

import (
	"strings"
	"testing"
)

// The -mix presets: a preset alone, a preset with overrides, and the
// unknown-preset error every CLI surfaces.
func TestParseServeMixPresets(t *testing.T) {
	for _, name := range ServeMixPresets() {
		m, err := ParseServeMix(name)
		if err != nil {
			t.Errorf("ParseServeMix(%q): %v", name, err)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("preset %q does not validate: %v", name, err)
		}
	}
	m, err := ParseServeMix("read99")
	if err != nil || m.Get != 0.99 {
		t.Fatalf("ParseServeMix(read99) = %+v, %v; want Get=0.99", m, err)
	}
	m, err = ParseServeMix("read99,getmiss=0.5")
	if err != nil || m.Get != 0.99 || m.GetMiss != 0.5 {
		t.Fatalf("ParseServeMix(read99,getmiss=0.5) = %+v, %v; want Get=0.99 GetMiss=0.5", m, err)
	}
	if _, err := ParseServeMix("read42"); err == nil || !strings.Contains(err.Error(), "unknown preset") {
		t.Fatalf("ParseServeMix(read42) err = %v; want unknown-preset error naming the presets", err)
	}
	if _, err := ParseServeMix("read42"); err == nil || !strings.Contains(err.Error(), "read99") {
		t.Fatalf("unknown-preset error should list valid presets, got %v", err)
	}
}

func quickMVCCCfg() MVCCConfig {
	return MVCCConfig{Clients: 4, Stalenesses: []int{1, 64}, Mixes: []string{"read90"}}
}

// The stdout contract, mirroring the serve experiment: every Render column
// is independent of shard count, batch size, and runner width — only the
// stderr timing report may move.
func TestMVCCRenderDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, N: 2048, Ops: 1000}
	m := quickMVCCCfg()
	m.Shards, m.Batch = 1, 16
	a := RunMVCC(cfg, m)
	m = quickMVCCCfg()
	m.Shards, m.Batch = 8, 64
	b := RunMVCC(cfg, m)
	wide := cfg
	wide.Runner = NewRunner(4)
	m = quickMVCCCfg()
	m.Shards, m.Batch = 3, 32
	c := RunMVCC(wide, m)
	if a.Render() != b.Render() {
		t.Errorf("Render differs between shards=1 and shards=8:\n--- shards=1\n%s--- shards=8\n%s", a.Render(), b.Render())
	}
	if a.Render() != c.Render() {
		t.Errorf("Render differs between sequential and 4-worker runner:\n--- seq\n%s--- wide\n%s", a.Render(), c.Render())
	}
	for _, row := range a.Rows {
		if !row.Verified {
			t.Errorf("%s/%s/k=%d: live run not verified (err %q)", row.Method, row.Mix, row.Staleness, row.ServeErr)
		}
		if row.Clean.R <= 0 || row.Clean.M < 1 {
			t.Errorf("%s/%s/k=%d: implausible clean point %+v", row.Method, row.Mix, row.Staleness, row.Clean)
		}
		if row.SnapReads == 0 {
			t.Errorf("%s/%s/k=%d: no reads served off snapshots", row.Method, row.Mix, row.Staleness)
		}
	}
	if !strings.Contains(a.Render(), "served") || strings.Contains(a.Render(), "FAIL") {
		t.Errorf("unexpected render:\n%s", a.Render())
	}
	if strings.TrimSpace(a.RenderTiming()) == "" {
		t.Error("RenderTiming is empty")
	}
}

// Relaxing the publish cadence must never relax correctness: the streams
// are stable-read by construction, so outcomes verify at any staleness.
func TestMVCCStalenessSweepStaysVerified(t *testing.T) {
	cfg := Config{Seed: 7, N: 1024, Ops: 600}
	r := RunMVCC(cfg, MVCCConfig{Clients: 2, Shards: 2, Batch: 8,
		Stalenesses: []int{1, 7, 1000}, Mixes: []string{"read50", "read100"}})
	for _, row := range r.Rows {
		if !row.Verified {
			t.Errorf("%s/%s/k=%d: not verified (err %q)", row.Method, row.Mix, row.Staleness, row.ServeErr)
		}
	}
}

// An unknown mix preset is a configuration error, surfaced as a panic like
// every other bad experiment parameter.
func TestMVCCUnknownMixPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "unknown mix preset") {
			t.Fatalf("recover() = %v; want unknown-mix panic", r)
		}
	}()
	RunMVCC(Config{Seed: 1, N: 64, Ops: 32}, MVCCConfig{Mixes: []string{"nope"}})
}
