package bench

import (
	"fmt"
	"strings"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/hashindex"
	"repro/internal/lsm"
	"repro/internal/rum"
	"repro/internal/storage"
	"repro/internal/workload"
)

// The chaos experiment is the Section-5 "what happens off the happy path"
// companion to Table 1: the same page-backed access methods, the same
// balanced workload, but the device misbehaves — transient and permanent
// read/write faults, torn writes, and a crash trial. Each method is measured
// three ways:
//
//   - clean: the usual RUM point, as a baseline;
//   - degraded: the same workload with the fault plan armed and the buffer
//     pool retrying transients. A failed transfer charges no meter traffic,
//     so when every transient is repaired within the retry budget the
//     degraded RUM point equals the clean one — the paper's accounting is
//     preserved, and the price of tolerance shows in the retry ledger
//     instead. Permanent faults and exhausted budgets do move the point:
//     they surface as failed ops, misses, and unflushable pages;
//   - crash: a seeded crash-consistency check (faults.CheckCrash) holding the
//     method to its declared durability contract.
//
// Faults are armed after the preload: the degraded phase isolates steady-state
// behaviour under a failing device, while build-time crashes are exactly what
// the crash trial exercises. Each cell salts the plan with the method name, so
// cells draw independent fault streams that do not depend on worker count.

// chaosRetryBudget is the pool's transparent retry allowance for transient
// faults during the degraded phase.
const chaosRetryBudget = 3

// chaosSubject is one method under chaos: how to build it, how (if at all)
// to recover it, and the durability contract the crash trial holds it to.
type chaosSubject struct {
	name       string
	build      func(pool *storage.BufferPool) (core.AccessMethod, error)
	reopen     func(pool *storage.BufferPool) (core.AccessMethod, error)
	durability faults.Durability
}

// chaosSubjects is the cast: the Table-1 methods that live on the simulated
// device (the in-memory structures have no device to degrade). The LSM runs
// with its manifest enabled so the crash trial can hold it to
// DurableToFlush; the manifest's checkpoint writes are charged like any
// other traffic, visible in the degraded UO column.
func chaosSubjects() []chaosSubject {
	lsmCfg := lsm.Config{MemtableRecords: 1024, SizeRatio: 10, Manifest: true}
	return []chaosSubject{
		{
			name:       "btree",
			build:      func(p *storage.BufferPool) (core.AccessMethod, error) { return btree.New(p, btree.Config{}) },
			reopen:     func(p *storage.BufferPool) (core.AccessMethod, error) { return btree.Recover(p, btree.Config{}) },
			durability: faults.Lossy,
		},
		{
			name:       "hash",
			build:      func(p *storage.BufferPool) (core.AccessMethod, error) { return hashindex.New(p, hashindex.Config{}) },
			reopen:     nil, // no persisted directory: declared fully lossy
			durability: faults.Lossy,
		},
		{
			name:       "lsm-level",
			build:      func(p *storage.BufferPool) (core.AccessMethod, error) { return lsm.New(p, lsmCfg), nil },
			reopen:     func(p *storage.BufferPool) (core.AccessMethod, error) { return lsm.Recover(p, lsmCfg) },
			durability: faults.DurableToFlush,
		},
	}
}

// ChaosRow is one method's measurements under the chaos plan.
type ChaosRow struct {
	Method     string
	Clean      rum.Point // RUM point on a healthy device
	Degraded   rum.Point // RUM point with the fault plan armed
	Faults     faults.Stats
	Pool       storage.PoolStats // degraded-phase pool ledger (retries etc.)
	FailedOps  int               // inserts that surfaced an error to the workload
	Crash      faults.CheckResult
	Durability faults.Durability
}

// ChaosResult is the rendered chaos experiment.
type ChaosResult struct {
	Plan        faults.Plan
	RetryBudget int
	Rows        []ChaosRow
}

// RunChaos measures every chaos subject under plan. An inactive plan gets a
// default degradation profile so `-exp chaos` alone shows something: 1%
// transient faults on both paths, half of the write faults torn.
func RunChaos(cfg Config, plan faults.Plan) ChaosResult {
	cfg.Defaults()
	if cfg.Storage.PoolPages == 0 {
		// Like Table 1: MEM must be small relative to N, or the pool hides
		// the device — and a healthy-looking device has nothing to degrade.
		cfg.Storage.PoolPages = 8
	}
	if !plan.Active() {
		plan = faults.Plan{Seed: uint64(cfg.Seed), PRead: 0.01, PWrite: 0.01, PTorn: 0.5}
	}
	res := ChaosResult{Plan: plan, RetryBudget: chaosRetryBudget}
	subjects := chaosSubjects()
	rows := make([]ChaosRow, len(subjects))
	cells := make([]Cell, len(subjects))
	for i, sub := range subjects {
		i, sub := i, sub
		cells[i] = Cell{
			Label: sub.name,
			Run:   func(ccfg Config) { rows[i] = runChaosCell(ccfg, sub, plan) },
		}
	}
	cfg.runCells("chaos", cells)
	res.Rows = rows
	return res
}

func runChaosCell(cfg Config, sub chaosSubject, plan faults.Plan) ChaosRow {
	row := ChaosRow{Method: sub.name, Durability: sub.durability}
	salted := plan.Salted(sub.name)

	row.Clean, _, _, _ = chaosProfile(cfg, sub, faults.Plan{}, 0, sub.name+"/clean")
	// The plan's crash point belongs to the crash trial below; the degraded
	// phase strips it so the profile measures degradation under faults, not
	// a latched device refusing every op after a mid-run crash.
	degraded := salted
	degraded.CrashAtWrite = 0
	var st core.OpStats
	row.Degraded, row.Faults, row.Pool, st = chaosProfile(cfg, sub, degraded, chaosRetryBudget, sub.name+"/degraded")
	row.FailedOps = st.InsertFailures

	row.Crash = faults.CheckCrash(faults.CheckConfig{Seed: salted.Seed, CrashAtWrite: plan.CrashAtWrite}, faults.Subject{
		Open:       sub.build,
		Reopen:     sub.reopen,
		Durability: sub.durability,
	})
	return row
}

// chaosProfile preloads the subject on a healthy device, then replays cfg.Ops
// workload operations with the plan armed (inactive plan = clean baseline)
// and returns the measured RUM point plus the fault and pool ledgers of the
// degraded phase.
func chaosProfile(cfg Config, sub chaosSubject, plan faults.Plan, retries int, label string) (rum.Point, faults.Stats, storage.PoolStats, core.OpStats) {
	dev := storage.NewDevice(pageSize(cfg), cfg.Storage.Medium, nil)
	pool := storage.NewBufferPool(dev, poolPages(cfg))
	if cfg.Storage.Hook != nil {
		dev.SetHook(cfg.Storage.Hook)
		pool.SetHook(cfg.Storage.Hook)
	}
	m, err := sub.build(pool)
	if err != nil {
		panic(fmt.Sprintf("chaos: build %s: %v", sub.name, err))
	}
	am := core.Instrument(m)
	cfg.observe(am, label)

	gen := workload.New(workload.Config{
		Seed:       cfg.Seed,
		Mix:        workload.Balanced,
		InitialLen: cfg.N,
	})
	if err := core.Preload(am, gen); err != nil {
		panic(fmt.Sprintf("chaos: preload %s: %v", sub.name, err))
	}
	am.Flush()

	var injector *faults.Injector
	if plan.Active() {
		injector = faults.New(plan)
		dev.SetInjector(injector)
		pool.SetRetryBudget(retries)
	}
	poolBefore := pool.Stats()
	start := am.Meter().Snapshot()
	var st core.OpStats
	for i := 0; i < cfg.Ops; i++ {
		core.Apply(am, gen.Next(), &st)
	}
	am.Flush()
	point := rum.PointOf(am.Meter().Diff(start), am.Size())

	var fstats faults.Stats
	if injector != nil {
		fstats = injector.Stats()
	}
	pstats := pool.Stats()
	pstats.Retries -= poolBefore.Retries
	pstats.RetryFailures -= poolBefore.RetryFailures
	pstats.FlushFailures -= poolBefore.FlushFailures
	return point, fstats, pstats, st
}

// Render prints the chaos table plus one crash-trial line per method.
func (r ChaosResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos (Section 5): Table-1 methods on a degraded device\n")
	fmt.Fprintf(&b, "plan: %s   pool retry budget: %d\n\n", r.Plan, r.RetryBudget)
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		f := row.Faults
		rows = append(rows, []string{
			row.Method,
			fmt.Sprintf("%.2f", row.Clean.R),
			fmt.Sprintf("%.2f", row.Clean.U),
			fmt.Sprintf("%.2f", row.Degraded.R),
			fmt.Sprintf("%.2f", row.Degraded.U),
			fmt.Sprintf("%d/%d", f.TransientReads, f.TransientWrites),
			fmt.Sprintf("%d", f.PermanentReads+f.PermanentWrites),
			fmt.Sprintf("%d", f.Torn),
			fmt.Sprintf("%d(%d)", row.Pool.Retries, row.Pool.RetryFailures),
			fmt.Sprintf("%d", row.FailedOps),
		})
	}
	b.WriteString(table(
		[]string{"method", "RO", "UO", "RO'", "UO'", "tr-r/w", "perm", "torn", "retries(fail)", "failed-ops"},
		rows,
	))
	b.WriteString("\nCrash trial (seeded crash point, reopen from surviving image):\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-10s %-16s %s\n", row.Method, row.Durability, row.Crash)
	}
	b.WriteString("\nRO/UO: clean device; RO'/UO': fault plan armed. Failed transfers charge\nno traffic, so fully-retried transients leave the RUM point unchanged —\nthe tolerance cost is the retry ledger; permanent faults and exhausted\nbudgets move the point via failed ops and lost pages.\n")
	return b.String()
}
