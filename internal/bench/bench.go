// Package bench is the experiment harness: one entry point per artifact of
// the paper — the Section-2 propositions, Table 1, Figures 1–3, the
// Section-3 conjecture grid, and the Section-4/5 adaptivity runs — each
// regenerating the artifact from measurements of the implemented structures
// and rendering it in a paper-like textual form. Beyond the paper's own
// artifacts, the harness prices the operational subsystems the Section-5
// roadmap motivates: chaos (a degraded device), serve (sharded
// concurrency), mvcc (snapshot reads), and walsweep (write-ahead logging
// and the group-commit durability trade).
package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/methods"
	"repro/internal/obs"
)

// Config holds the common experiment parameters.
type Config struct {
	// Seed makes every experiment deterministic.
	Seed int64
	// N is the dataset size in records where an experiment uses a single
	// size (default 1 << 16).
	N int
	// Ops is the measured operation count per run (default 20000).
	Ops int
	// Storage configures the simulated substrate for page-based methods.
	Storage methods.Options
	// Obs, when non-nil, traces every structure an experiment profiles:
	// spans, histograms, and the RUM time series. Set Storage.Hook to the
	// same observer to attribute page events too (cmd/rumbench does both).
	// Experiments never hand this observer to their run cells directly:
	// each cell traces into an isolated child observer, and the children
	// are absorbed back in cell order once the experiment's cells are done.
	Obs *obs.Observer
	// Runner executes the experiment's run cells. nil (or a 1-worker
	// runner) runs every cell inline in enumeration order — the fully
	// sequential behaviour; a wider runner executes cells concurrently,
	// each on its own isolated storage stack. Results are identical either
	// way; only wall-clock changes.
	Runner *Runner
	// Perf, when non-nil, collects per-cell deterministic throughput
	// samples for the -benchjson artifact (nil records nothing).
	Perf *Perf
}

// observe points the run's observer (if any) at a freshly built structure.
func (c Config) observe(am *core.Instrumented, label string) {
	if c.Obs != nil {
		c.Obs.Target(am, label)
	}
}

// Defaults fills zero fields.
func (c *Config) Defaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.N == 0 {
		c.N = 1 << 16
	}
	if c.Ops == 0 {
		c.Ops = 20000
	}
}

// makeRecords returns n records with unique scattered keys, sorted by key.
// Generation is memoized per (seed, n) — many cells of one suite ask for the
// same dataset, concurrently — and the canonical slice is kept immutable:
// callers get a private copy they may hand to structures that take ownership.
func makeRecords(seed int64, n int) []core.Record {
	e, _ := recordCache.LoadOrStore(recordKey{seed: seed, n: n}, &recordEntry{})
	entry := e.(*recordEntry)
	entry.once.Do(func() { entry.recs = generateRecords(seed, n) })
	out := make([]core.Record, len(entry.recs))
	copy(out, entry.recs)
	return out
}

func generateRecords(seed int64, n int) []core.Record {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[uint64]bool, n)
	recs := make([]core.Record, 0, n)
	for len(recs) < n {
		k := rng.Uint64() >> 24 // 40-bit domain
		if seen[k] {
			continue
		}
		seen[k] = true
		recs = append(recs, core.Record{Key: k, Value: rng.Uint64() >> 1})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
	return recs
}

// fmtBytes renders a byte count human-readably.
func fmtBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}

// table renders rows of cells with aligned columns.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
