package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/extreme"
	"repro/internal/rum"
)

// PropResult is the measured RUM position of one Section-2 extreme
// structure, against the proposition it must satisfy.
type PropResult struct {
	Prop      int
	Structure string
	Claim     string
	Point     rum.Point
	Holds     bool
	Detail    string
}

// PropsResult aggregates the three propositions.
type PropsResult struct {
	N       int
	Results []PropResult
}

// RunProps drives each Section-2 extreme structure with the paper's
// workload — inserts, membership queries, value changes, deletes over a set
// of integers — and checks Props 1–3 empirically:
//
//	Prop 1: min(RO) = 1.0 ⇒ UO = 2.0 (changes) and MO unbounded
//	Prop 2: min(UO) = 1.0 ⇒ RO and MO grow with appended updates
//	Prop 3: min(MO) = 1.0 ⇒ RO = Θ(N) scans and UO = 1.0
func RunProps(cfg Config) PropsResult {
	cfg.Defaults()
	n := cfg.N
	if n > 1<<16 {
		n = 1 << 16 // dense-array scans are quadratic in the driver loop
	}
	res := PropsResult{N: n}

	domain := uint64(n) * 1024 // sparse domain: values 1024x wider than N

	// Each proposition drives its own in-memory structure — three
	// independent run cells, merged in proposition order.
	results := make([]PropResult, 3)

	prop1 := func(cfg Config) {
		d := extreme.NewDirectArray(domain)
		vals := distinctValues(cfg.Seed, n, domain)
		for _, v := range vals {
			d.Insert(v)
		}
		// Measured phase: membership + changes.
		start := d.Meter().Snapshot()
		rng := rand.New(rand.NewSource(cfg.Seed + 1))
		for i := 0; i < n; i++ {
			d.Has(vals[rng.Intn(len(vals))])
		}
		for i := 0; i < n/2; i++ {
			old := vals[i]
			nv := (old + 1 + uint64(rng.Intn(1000))) % domain
			if d.Change(old, nv) {
				vals[i] = nv
			}
		}
		m := d.Meter().Diff(start)
		p := rum.PointOf(m, d.Size())
		holds := p.R == 1.0 && p.U > 1.9 && p.U <= 2.0+1e-9 && p.M > 100
		results[0] = PropResult{
			Prop: 1, Structure: d.Name(),
			Claim: "min(RO)=1.0 ⇒ UO=2.0, MO unbounded",
			Point: p, Holds: holds,
			Detail: fmt.Sprintf("RO=%.3f (claim 1.0), UO=%.3f (claim 2.0 for changes), MO=%.0f (domain/N=%d)", p.R, p.U, p.M, domain/uint64(n)),
		}
	}

	prop2 := func(cfg Config) {
		l := extreme.NewAppendLog()
		vals := distinctValues(cfg.Seed, n, domain)
		for _, v := range vals {
			l.Insert(v)
		}
		// RO measured early vs late: it must grow as updates accumulate.
		early := measureLogRO(l, vals, cfg.Seed+2)
		// Churn: changes keep appending without reclaiming.
		rng := rand.New(rand.NewSource(cfg.Seed + 3))
		startU := l.Meter().Snapshot()
		for i := 0; i < 2*n; i++ {
			j := rng.Intn(len(vals))
			old := vals[j]
			nv := (old + 1 + uint64(rng.Intn(1000))) % domain
			if l.Change(old, nv) {
				vals[j] = nv
			}
		}
		uo := l.Meter().Diff(startU).WriteAmplification()
		late := measureLogRO(l, vals, cfg.Seed+4)
		p := rum.Point{R: late, U: uo, M: l.Size().SpaceAmplification()}
		holds := uo <= 1.0+1e-9 && late > early && p.M > 1.5
		results[1] = PropResult{
			Prop: 2, Structure: l.Name(),
			Claim: "min(UO)=1.0 ⇒ RO and MO grow without bound",
			Point: p, Holds: holds,
			Detail: fmt.Sprintf("UO=%.3f (claim 1.0), RO grew %.1f → %.1f after churn, MO=%.2f and rising", uo, early, late, p.M),
		}
	}

	prop3 := func(cfg Config) {
		a := extreme.NewDenseArray()
		vals := distinctValues(cfg.Seed, n, domain)
		for _, v := range vals {
			a.Insert(v)
		}
		start := a.Meter().Snapshot()
		rng := rand.New(rand.NewSource(cfg.Seed + 5))
		queries := 200
		for i := 0; i < queries; i++ {
			a.Has(vals[rng.Intn(len(vals))])
		}
		ro := a.Meter().Diff(start).ReadAmplification()
		startU := a.Meter().Snapshot()
		for i := 0; i < 200; i++ {
			j := rng.Intn(len(vals))
			old := vals[j]
			nv := (old + 1 + uint64(rng.Intn(1000))) % domain
			if a.Change(old, nv) {
				vals[j] = nv
			}
		}
		uo := a.Meter().Diff(startU).WriteAmplification()
		p := rum.Point{R: ro, U: uo, M: a.Size().SpaceAmplification()}
		// Expected scan length ≈ N/2 slots per probe.
		holds := p.M == 1.0 && uo <= 1.0+1e-9 && ro > float64(n)/8
		results[2] = PropResult{
			Prop: 3, Structure: a.Name(),
			Claim: "min(MO)=1.0 ⇒ RO=Θ(N), UO=1.0",
			Point: p, Holds: holds,
			Detail: fmt.Sprintf("MO=%.3f (claim 1.0), UO=%.3f (claim 1.0), RO=%.0f ≈ N/2=%d", p.M, uo, ro, n/2),
		}
	}

	cfg.runCells("props", []Cell{
		{Label: "prop1/direct-array", Run: prop1},
		{Label: "prop2/append-log", Run: prop2},
		{Label: "prop3/dense-array", Run: prop3},
	})
	res.Results = results
	return res
}

// measureLogRO probes the log with existing values and returns the read
// amplification of the probe batch.
func measureLogRO(l *extreme.AppendLog, vals []uint64, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	start := l.Meter().Snapshot()
	for i := 0; i < 200; i++ {
		l.Has(vals[rng.Intn(len(vals))])
	}
	return l.Meter().Diff(start).ReadAmplification()
}

// distinctValues draws n distinct values below domain.
func distinctValues(seed int64, n int, domain uint64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[uint64]bool, n)
	out := make([]uint64, 0, n)
	for len(out) < n {
		v := rng.Uint64() % domain
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// Render prints the proposition table.
func (r PropsResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 2 propositions (N=%d)\n\n", r.N)
	rows := make([][]string, 0, len(r.Results))
	for _, p := range r.Results {
		ok := "HOLDS"
		if !p.Holds {
			ok = "VIOLATED"
		}
		rows = append(rows, []string{
			fmt.Sprintf("Prop %d", p.Prop), p.Structure, p.Claim, p.Point.String(), ok,
		})
	}
	b.WriteString(table([]string{"prop", "structure", "claim", "measured", "verdict"}, rows))
	b.WriteString("\n")
	for _, p := range r.Results {
		fmt.Fprintf(&b, "  Prop %d: %s\n", p.Prop, p.Detail)
	}
	return b.String()
}
