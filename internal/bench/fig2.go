package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/hierarchy"
	"repro/internal/storage"
)

// Fig2Point is one sweep step of the memory-hierarchy experiment: the
// capacity given to level n−1 and the resulting overheads at levels n−1
// and n.
type Fig2Point struct {
	UpperFrac  float64 // level n−1 capacity as a fraction of the data
	UpperMO    float64 // MO(n−1): replicated bytes / base bytes
	LowerReads float64 // RO(n) proxy: level-n page reads per logical read
	LowerWrite float64 // UO(n) proxy: level-n page writes per logical write
	UpperHit   float64 // hit ratio at level n−1
}

// Fig2Result is the measured Figure 2: growing the space overhead at one
// hierarchy level reduces the read and write overheads of the level below.
type Fig2Result struct {
	DataPages int
	Ops       int
	Levels    []string
	Points    []Fig2Point
	Monotone  bool // LowerReads non-increasing as UpperMO grows
}

// RunFig2 builds a cache → RAM → disk hierarchy over a page-resident
// dataset, sweeps the RAM level's capacity from 1% to 75% of the data, and
// measures the Figure-2 interaction: MO at level n−1 rises while RO and UO
// at level n fall.
func RunFig2(cfg Config) Fig2Result {
	cfg.Defaults()
	dataPages := cfg.N / 256
	if dataPages < 256 {
		dataPages = 256
	}
	ops := cfg.Ops
	res := Fig2Result{
		DataPages: dataPages,
		Ops:       ops,
		Levels:    []string{"cache", "ram", "disk"},
	}
	// Every sweep point builds its own private hierarchy, so each is one
	// independent run cell.
	fractions := []float64{0.01, 0.05, 0.10, 0.25, 0.50, 0.75}
	points := make([]Fig2Point, len(fractions))
	cells := make([]Cell, len(fractions))
	for i, frac := range fractions {
		i, frac := i, frac
		cells[i] = Cell{
			Label: fmt.Sprintf("ram=%.0f%%", frac*100),
			Run: func(ccfg Config) {
				ramPages := int(frac * float64(dataPages))
				if ramPages < 1 {
					ramPages = 1
				}
				h, err := hierarchy.New(4096, []hierarchy.Level{
					{Name: "cache", Capacity: dataPages / 100, Medium: storage.RAM},
					{Name: "ram", Capacity: ramPages, Medium: storage.RAM},
					{Name: "disk", Medium: storage.HDD},
				})
				if err != nil {
					panic(err)
				}
				h.Populate(dataPages)
				rng := rand.New(rand.NewSource(ccfg.Seed))
				// Zipf-skewed page accesses: a realistic working set.
				zipf := rand.NewZipf(rng, 1.2, 1, uint64(dataPages-1))
				reads, writes := 0, 0
				for i := 0; i < ops; i++ {
					p := zipf.Uint64()
					if rng.Float64() < 0.25 {
						h.Write(p)
						writes++
					} else {
						h.Read(p)
						reads++
					}
				}
				h.FlushAll()
				ram := h.Levels()[1]
				disk := h.Levels()[2]
				points[i] = Fig2Point{
					UpperFrac: frac,
					UpperMO:   h.SpaceAmplification(1),
					UpperHit:  float64(ram.Hits()) / float64(ram.Hits()+ram.Misses()),
					LowerReads: float64(disk.Meter().PhysicalRead()) / 4096 /
						float64(reads),
					LowerWrite: float64(disk.Meter().PhysicalWritten()) / 4096 /
						float64(writes),
				}
			},
		}
	}
	cfg.runCells("fig2", cells)
	res.Points = points
	res.Monotone = true
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].LowerReads > res.Points[i-1].LowerReads+1e-9 {
			res.Monotone = false
		}
		if res.Points[i].UpperMO < res.Points[i-1].UpperMO {
			res.Monotone = false
		}
	}
	return res
}

// Render prints the sweep.
func (r Fig2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 (measured): RUM overheads across a %s hierarchy (%d data pages, %d ops, zipf accesses)\n",
		strings.Join(r.Levels, " → "), r.DataPages, r.Ops)
	b.WriteString("Growing MO at level n-1 (ram) lowers RO and UO at level n (disk):\n\n")
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", p.UpperFrac*100),
			fmt.Sprintf("%.3f", p.UpperMO),
			fmt.Sprintf("%.1f%%", p.UpperHit*100),
			fmt.Sprintf("%.4f", p.LowerReads),
			fmt.Sprintf("%.4f", p.LowerWrite),
		})
	}
	b.WriteString(table([]string{"ram capacity", "MO(ram)", "hit(ram)", "disk reads/op", "disk writes/op"}, rows))
	if r.Monotone {
		b.WriteString("\nMonotone: MO(n-1) up ⇒ RO(n) down, as Figure 2 predicts.\n")
	} else {
		b.WriteString("\nWARNING: monotonicity violated.\n")
	}
	return b.String()
}
